package mcio_test

import (
	"fmt"

	"mcio"
)

// Example demonstrates the smallest complete collective write: four ranks
// on two nodes, each contributing one contiguous kilobyte.
func Example() {
	sys, err := mcio.NewSystem(mcio.SystemConfig{
		Ranks:        4,
		RanksPerNode: 2,
		Params:       mcio.DefaultParams(1 << 10),
	})
	if err != nil {
		panic(err)
	}
	f, err := sys.Open("example", mcio.MemoryConscious())
	if err != nil {
		panic(err)
	}
	args := make([]mcio.CollArgs, sys.Ranks())
	for r := range args {
		if err := f.SetView(r, mcio.View{
			Disp:     int64(r) << 10,
			Filetype: mcio.Contiguous{Bytes: 1},
		}); err != nil {
			panic(err)
		}
		args[r] = mcio.CollArgs{Buf: make([]byte, 1<<10)}
	}
	res, err := f.WriteAll(args)
	if err != nil {
		panic(err)
	}
	fmt.Printf("wrote %d bytes collectively with strategy %q\n", res.UserBytes, res.Strategy)
	// Output: wrote 4096 bytes collectively with strategy "memory-conscious"
}

// ExampleSystem_Plan shows inspecting a strategy's placement decisions
// without performing any I/O.
func ExampleSystem_Plan() {
	sys, err := mcio.NewSystem(mcio.SystemConfig{
		Ranks:        6,
		RanksPerNode: 2,
		Params:       mcio.DefaultParams(8192),
	})
	if err != nil {
		panic(err)
	}
	// Rank 0 lives on node 0, rank 3 on node 1. Node 1 has far more free
	// memory, so the single file domain's aggregator — chosen among the
	// hosts of the ranks whose data it holds — lands there.
	if err := sys.SetAvailableMemory([]int64{600, 1 << 20, 700}); err != nil {
		panic(err)
	}
	reqs := []mcio.RankRequest{
		{Rank: 0, Extents: []mcio.Extent{{Offset: 0, Length: 2048}}},
		{Rank: 3, Extents: []mcio.Extent{{Offset: 2048, Length: 2048}}},
	}
	plan, err := sys.Plan(mcio.MemoryConscious(), reqs)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d domain, aggregator host: node %d\n",
		len(plan.Domains), plan.Domains[0].AggNode)
	// Output: 1 domain, aggregator host: node 1
}

// ExampleSystem_ApplyMemoryVariance shows inducing the paper's per-node
// memory scarcity and observing the availability vector.
func ExampleSystem_ApplyMemoryVariance() {
	sys, err := mcio.NewSystem(mcio.SystemConfig{Ranks: 8, RanksPerNode: 2})
	if err != nil {
		panic(err)
	}
	avail := sys.ApplyMemoryVariance(1<<20, 1<<20, 1<<16, 1234)
	fmt.Printf("%d nodes with varying availability, floor respected: %v\n",
		len(avail), minOf(avail) >= 1<<16)
	// Output: 4 nodes with varying availability, floor respected: true
}

// ExampleIOR shows generating the paper's IOR access pattern directly.
func ExampleIOR() {
	w := mcio.IOR{Ranks: 3, BlockSize: 100, TransferSize: 100, Segments: 2}
	reqs, err := w.Requests()
	if err != nil {
		panic(err)
	}
	fmt.Printf("rank 1 extents: %v\n", reqs[1].Extents)
	// Output: rank 1 extents: [{100 100} {400 100}]
}

func minOf(xs []int64) int64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}
