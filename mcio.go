// Package mcio is a library-level reproduction of "Memory-Conscious
// Collective I/O for Extreme Scale HPC Systems" (Lu, Chen, Zhuang, Thakur).
//
// It bundles a simulated HPC substrate — a message-passing runtime, a
// machine model with per-node memory availability, and a Lustre-style
// striped parallel file system that stores real bytes — with two
// collective I/O strategies on top of it:
//
//   - TwoPhase: ROMIO's classic two-phase collective I/O (the paper's
//     baseline): even file-domain split, one fixed aggregator per node,
//     oblivious to data distribution and memory availability.
//   - MemoryConscious: the paper's contribution: disjoint aggregation
//     groups, a binary-partition-tree workload partition terminated at
//     Msg_ind, remerging of memory-starved portions, and run-time
//     aggregator placement on the related host with the most available
//     memory (at most N_ah aggregators per host, Mem_min floor).
//
// The quickest route is NewSystem + Open + WriteAll/ReadAll: collective
// calls really move bytes onto the striped file store (verifiable with
// ReadAll or independent reads) and simultaneously price the operation on
// the machine model, returning the bandwidth the paper's figures plot.
//
//	sys, _ := mcio.NewSystem(mcio.SystemConfig{Ranks: 12, RanksPerNode: 4})
//	f, _ := sys.Open("checkpoint", mcio.MemoryConscious())
//	res, _ := f.WriteAll(args)
//	fmt.Println(res.Bandwidth)
package mcio

import (
	"fmt"

	"mcio/internal/collio"
	"mcio/internal/core"
	"mcio/internal/datatype"
	"mcio/internal/layoutaware"
	"mcio/internal/machine"
	"mcio/internal/memmodel"
	"mcio/internal/mpi"
	"mcio/internal/mpiio"
	"mcio/internal/pfs"
	"mcio/internal/sim"
	"mcio/internal/stats"
	"mcio/internal/tuner"
	"mcio/internal/twophase"
	"mcio/internal/workload"
)

// Re-exported building blocks. The aliases give external callers the full
// types without reaching into internal packages.
type (
	// MachineConfig describes a machine design point (nodes, cores,
	// memory, bandwidths). Presets: Testbed640, Petascale2010,
	// Exascale2018.
	MachineConfig = machine.Config
	// FSConfig describes the striped parallel file system (targets,
	// stripe unit, cost parameters).
	FSConfig = pfs.Config
	// Params carries the strategy tunables the paper names: CollBufSize,
	// Msg_ind, Msg_group, N_ah, Mem_min.
	Params = collio.Params
	// Strategy plans collective operations; TwoPhase and MemoryConscious
	// construct the two shipped implementations.
	Strategy = collio.Strategy
	// Plan is a strategy's decision: groups, file domains, aggregators.
	Plan = collio.Plan
	// CostResult is a priced collective operation (bandwidth, rounds,
	// aggregator accounting).
	CostResult = collio.CostResult
	// RankRequest is one rank's flattened file-extent access list.
	RankRequest = collio.RankRequest
	// Extent is a contiguous file range.
	Extent = pfs.Extent
	// File is an open MPI-IO-style file handle with per-rank views.
	File = mpiio.File
	// CollArgs is one rank's buffer in a collective call.
	CollArgs = mpiio.CollArgs
	// View is an MPI file view (displacement + filetype).
	View = datatype.View
	// Datatype is the layout interface for file views (Contiguous,
	// Vector, Indexed, Subarray).
	Datatype = datatype.Type
	// Contiguous, Vector, Indexed, Subarray, Darray and Repeated are the
	// shipped datatypes; Distribution selects Darray's per-dimension
	// distribution.
	Contiguous   = datatype.Contiguous
	Vector       = datatype.Vector
	Indexed      = datatype.Indexed
	Subarray     = datatype.Subarray
	Darray       = datatype.Darray
	Repeated     = datatype.Repeated
	Distribution = datatype.Distribution
	// CollPerf and IOR generate the paper's benchmark access patterns.
	CollPerf = workload.CollPerf
	IOR      = workload.IOR
	// Op is a collective operation direction (Read or Write).
	Op = collio.Op
)

// Collective operation directions.
const (
	Read  = collio.Read
	Write = collio.Write
)

// Darray distributions.
const (
	DistNone   = datatype.DistNone
	DistBlock  = datatype.DistBlock
	DistCyclic = datatype.DistCyclic
)

// Strategy constructors.

// TwoPhase returns the classic ROMIO two-phase baseline strategy.
func TwoPhase() Strategy { return twophase.New() }

// MemoryConscious returns the paper's memory-conscious strategy.
func MemoryConscious() Strategy { return core.New() }

// LayoutAware returns the LACIO-style layout-aware strategy (stripe-
// aligned file domains, fixed placement) — the related-work comparison
// point of the paper's §5.
func LayoutAware() Strategy { return layoutaware.New() }

// Machine presets.

// Testbed640 is the paper's 640-node evaluation cluster.
func Testbed640() MachineConfig { return machine.Testbed640() }

// Petascale2010 is the 2010 design point of the paper's Table 1.
func Petascale2010() MachineConfig { return machine.Petascale2010() }

// Exascale2018 is the projected exascale design point of Table 1.
func Exascale2018() MachineConfig { return machine.Exascale2018() }

// Table1 renders the paper's Table 1 from the two design-point presets.
func Table1() string { return machine.RenderTable1() }

// ContigView is the default byte-stream file view.
func ContigView() View { return datatype.ContigView() }

// DefaultParams sizes strategy parameters around one collective buffer.
func DefaultParams(collBuf int64) Params { return collio.DefaultParams(collBuf) }

// SystemConfig assembles a simulated platform.
type SystemConfig struct {
	// Machine is the design point; the zero value uses Testbed640 scaled
	// to the topology's node count.
	Machine MachineConfig
	// Ranks and RanksPerNode place the MPI-style processes.
	Ranks        int
	RanksPerNode int
	// FS is the file-system layout; the zero value uses the paper's
	// defaults (1 MB stripes) over 8 targets.
	FS FSConfig
	// Params are the strategy tunables; the zero value uses
	// DefaultParams(16 MB).
	Params Params
}

// System is an instantiated platform: machine, topology, availability
// state and file system.
type System struct {
	ctx  *collio.Context
	fsys *pfs.FileSystem
	mach *machine.Machine
}

// NewSystem builds a System, applying the documented defaults for zero
// fields.
func NewSystem(cfg SystemConfig) (*System, error) {
	if cfg.Ranks <= 0 {
		return nil, fmt.Errorf("mcio: Ranks must be positive")
	}
	if cfg.RanksPerNode <= 0 {
		cfg.RanksPerNode = 1
	}
	topo, err := mpi.BlockTopology(cfg.Ranks, cfg.RanksPerNode)
	if err != nil {
		return nil, err
	}
	mc := cfg.Machine
	if mc.Nodes == 0 {
		mc = machine.Testbed640().Scaled(topo.Nodes())
	}
	if mc.Nodes < topo.Nodes() {
		return nil, fmt.Errorf("mcio: machine has %d nodes, topology needs %d", mc.Nodes, topo.Nodes())
	}
	fsCfg := cfg.FS
	if fsCfg.Targets == 0 {
		fsCfg = pfs.DefaultConfig(8)
	}
	params := cfg.Params
	if params.CollBufSize == 0 {
		params = collio.DefaultParams(16 << 20)
	}
	mach, err := machine.New(mc)
	if err != nil {
		return nil, err
	}
	fsys, err := pfs.NewFileSystem(fsCfg)
	if err != nil {
		return nil, err
	}
	ctx := &collio.Context{
		Topo:    topo,
		Machine: mc,
		Avail:   mach.AvailMemory(),
		FS:      fsCfg,
		Params:  params,
	}
	if err := ctx.Validate(); err != nil {
		return nil, err
	}
	return &System{ctx: ctx, fsys: fsys, mach: mach}, nil
}

// Ranks returns the number of simulated processes.
func (s *System) Ranks() int { return s.ctx.Topo.Size() }

// Nodes returns the number of compute nodes the ranks span.
func (s *System) Nodes() int { return s.ctx.Topo.Nodes() }

// NodeOf returns the node hosting a rank.
func (s *System) NodeOf(rank int) int { return s.ctx.Topo.NodeOf(rank) }

// AvailableMemory returns the current per-node available aggregation
// memory in bytes.
func (s *System) AvailableMemory() []int64 {
	return append([]int64(nil), s.ctx.Avail...)
}

// SetAvailableMemory pins each node's available aggregation memory —
// the state the paper's run-time aggregator selection inspects.
func (s *System) SetAvailableMemory(avail []int64) error {
	if len(avail) < s.ctx.Topo.Nodes() {
		return fmt.Errorf("mcio: %d availability entries for %d nodes", len(avail), s.ctx.Topo.Nodes())
	}
	s.ctx.Avail = append([]int64(nil), avail...)
	return nil
}

// ApplyMemoryVariance draws each node's available memory from
// N(mean, sigma²) bytes, clamped to [floor, capacity], with a seeded
// generator — the paper's §4 experimental setup. It returns the resulting
// availability vector.
func (s *System) ApplyMemoryVariance(mean, sigma, floor int64, seed uint64) []int64 {
	dist := memmodel.Normal{Mean: float64(mean), Sigma: float64(sigma)}
	avail := memmodel.ApplyAvailability(s.mach, dist, stats.NewRNG(seed), floor)
	s.ctx.Avail = avail
	return append([]int64(nil), avail...)
}

// Open opens (creating if needed) a file for collective access under the
// given strategy.
func (s *System) Open(name string, strategy Strategy) (*File, error) {
	return mpiio.Open(s.fsys, name, s.ctx, strategy)
}

// Plan runs a strategy's planner over explicit rank requests without
// touching any file — useful for inspecting placement decisions.
func (s *System) Plan(strategy Strategy, reqs []RankRequest) (*Plan, error) {
	plan, err := strategy.Plan(s.ctx, reqs)
	if err != nil {
		return nil, err
	}
	if err := plan.Validate(reqs); err != nil {
		return nil, err
	}
	return plan, nil
}

// TuneResult is the outcome of AutoTune: the evaluated parameter
// candidates, best first.
type TuneResult = tuner.Result

// AutoTune searches N_ah, Msg_ind and Msg_group for the given workload on
// the system's current memory state — the parameter-determination step
// the paper performs empirically — and installs the best combination as
// the system's parameters. It returns the full search result.
func (s *System) AutoTune(reqs []RankRequest, op Op) (*TuneResult, error) {
	res, err := tuner.Tune(s.ctx, reqs, op, sim.DefaultOptions(), tuner.Grid{})
	if err != nil {
		return nil, err
	}
	s.ctx.Params = res.Best.Params
	return res, nil
}

// Params returns the system's current strategy parameters.
func (s *System) Params() Params { return s.ctx.Params }
