module mcio

go 1.22
