// Autotune: runs the parameter search the paper defers to future work —
// "we leave the examination of these optimal values to a future study" —
// on a live workload, then shows the tuned parameters beating the naive
// defaults.
//
//	go run ./examples/autotune
package main

import (
	"fmt"
	"log"

	"mcio"
)

func main() {
	const ranks, perNode = 48, 4
	buf := int64(512 << 10)
	sys, err := mcio.NewSystem(mcio.SystemConfig{
		Ranks:        ranks,
		RanksPerNode: perNode,
		Params:       mcio.DefaultParams(buf),
	})
	if err != nil {
		log.Fatal(err)
	}
	sys.ApplyMemoryVariance(buf, 2<<20, 32<<10, 99)

	w := mcio.IOR{Ranks: ranks, BlockSize: 1 << 20, TransferSize: 1 << 20, Segments: 4}
	reqs, err := w.Requests()
	if err != nil {
		log.Fatal(err)
	}

	// Baseline: price the collective write with the naive defaults.
	before, err := price(sys, reqs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("default parameters:  Nah=%d MsgInd=%s -> %.1f MB/s\n",
		sys.Params().Nah, kb(sys.Params().MsgInd), before/1e6)

	// Search the grid and install the winner.
	res, err := sys.AutoTune(reqs, mcio.Write)
	if err != nil {
		log.Fatal(err)
	}
	after, err := price(sys, reqs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tuned parameters:    Nah=%d MsgInd=%s -> %.1f MB/s  (%d candidates evaluated)\n",
		res.Best.Params.Nah, kb(res.Best.Params.MsgInd), after/1e6, res.Evaluations)
	if after >= before {
		fmt.Printf("auto-tuning gained %+.1f%%\n", (after/before-1)*100)
	}
}

// price plans and prices a collective write without touching any file.
func price(sys *mcio.System, reqs []mcio.RankRequest) (float64, error) {
	f, err := sys.Open("probe", mcio.MemoryConscious())
	if err != nil {
		return 0, err
	}
	res, err := f.PlanOnly(reqs, mcio.Write)
	if err != nil {
		return 0, err
	}
	return res.Bandwidth, nil
}

func kb(n int64) string { return fmt.Sprintf("%dKB", n>>10) }
