// Exascale: runs the same collective workload on the paper's Table 1
// design points — the 2010 petascale machine and the projected 2018
// exascale machine — showing why collective I/O must become
// memory-conscious: memory per core collapses from gigabytes to
// megabytes while node concurrency explodes.
//
//	go run ./examples/exascale
package main

import (
	"fmt"
	"log"

	"mcio"
)

func main() {
	fmt.Println(mcio.Table1())

	// A fixed 16-node, 192-rank slice of each design point; per-node
	// resources (memory per core, bandwidths) come from the presets.
	const nodes, ranks = 16, 192
	for _, preset := range []mcio.MachineConfig{mcio.Petascale2010(), mcio.Exascale2018()} {
		mc := preset.Scaled(nodes)
		fmt.Printf("%s: %d B/core memory, %.2f GB/s/core off-chip bandwidth\n",
			preset.Name, mc.MemPerCore(), mc.MemBWPerCore()/1e9)

		// Aggregation memory per node scales with what the design point
		// actually leaves per core after the application's working set:
		// model it as 4 cores' worth of memory per node.
		aggMem := 4 * mc.MemPerCore()
		params := mcio.DefaultParams(aggMem)
		params.MsgInd = 4 * aggMem
		params.MsgGroup = 16 * aggMem

		sys, err := mcio.NewSystem(mcio.SystemConfig{
			Machine:      mc,
			Ranks:        ranks,
			RanksPerNode: ranks / nodes,
			Params:       params,
		})
		if err != nil {
			log.Fatal(err)
		}
		// Same relative variance on both machines.
		sys.ApplyMemoryVariance(aggMem, 2*aggMem, aggMem/16, 5)

		w := mcio.IOR{Ranks: ranks, BlockSize: aggMem, TransferSize: aggMem, Segments: 4}
		reqs, err := w.Requests()
		if err != nil {
			log.Fatal(err)
		}
		for _, strategy := range []mcio.Strategy{mcio.TwoPhase(), mcio.MemoryConscious()} {
			f, err := sys.Open("exa-"+strategy.Name(), strategy)
			if err != nil {
				log.Fatal(err)
			}
			res, err := f.PlanOnly(reqs, mcio.Write)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-18s write %10.1f MB/s  (%d aggregators, %d paged, buffer CV %.3f)\n",
				strategy.Name(), res.Bandwidth/1e6, res.Aggregators,
				res.PagedAggregators, res.BufferSummary.CV())
		}
		fmt.Println()
	}
}
