// Quickstart: a collective write and read-back with both collective I/O
// strategies on the default simulated platform.
//
//	go run ./examples/quickstart
package main

import (
	"bytes"
	"fmt"
	"log"

	"mcio"
)

func main() {
	// 48 processes on 12 four-core nodes, default testbed-like machine,
	// 512 KB collective buffers.
	sys, err := mcio.NewSystem(mcio.SystemConfig{
		Ranks:        48,
		RanksPerNode: 4,
		Params:       mcio.DefaultParams(512 << 10),
	})
	if err != nil {
		log.Fatal(err)
	}

	// Induce the paper's memory scarcity: per-node available aggregation
	// memory ~ N(512 KB, (2 MB)²), so some nodes are starved and some
	// have plenty — the regime the memory-conscious strategy targets.
	sys.ApplyMemoryVariance(512<<10, 2<<20, 32<<10, 7)

	for _, strategy := range []mcio.Strategy{mcio.TwoPhase(), mcio.MemoryConscious()} {
		f, err := sys.Open("quickstart-"+strategy.Name(), strategy)
		if err != nil {
			log.Fatal(err)
		}
		// Each rank contributes 1 MB at its own displacement: a
		// contiguous, disjoint layout (rank r owns bytes [r MB, r+1 MB)).
		const chunk = 1 << 20
		args := make([]mcio.CollArgs, sys.Ranks())
		for r := range args {
			if err := f.SetView(r, mcio.View{
				Disp:     int64(r) * chunk,
				Filetype: mcio.Contiguous{Bytes: 1},
			}); err != nil {
				log.Fatal(err)
			}
			buf := make([]byte, chunk)
			for i := range buf {
				buf[i] = byte(r ^ i)
			}
			args[r] = mcio.CollArgs{Buf: buf}
		}

		res, err := f.WriteAll(args)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s collective write: %8.1f MB/s  (%d aggregators, %d paged)\n",
			strategy.Name(), res.Bandwidth/1e6, res.Aggregators, res.PagedAggregators)

		// Read back into fresh buffers and verify every byte.
		read := make([]mcio.CollArgs, sys.Ranks())
		for r := range read {
			read[r] = mcio.CollArgs{Buf: make([]byte, chunk)}
		}
		res, err = f.ReadAll(read)
		if err != nil {
			log.Fatal(err)
		}
		for r := range read {
			if !bytes.Equal(read[r].Buf, args[r].Buf) {
				log.Fatalf("%s: rank %d read back corrupted data", strategy.Name(), r)
			}
		}
		fmt.Printf("%-18s collective read:  %8.1f MB/s  (all %d ranks verified)\n",
			strategy.Name(), res.Bandwidth/1e6, sys.Ranks())
	}
}
