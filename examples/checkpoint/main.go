// Checkpoint: a 3-D block-distributed simulation array (the access
// pattern of the paper's coll_perf benchmark) written as a checkpoint and
// read back for restart, with subarray file views doing the layout work.
//
//	go run ./examples/checkpoint
package main

import (
	"fmt"
	"log"

	"mcio"
)

const (
	edge   = 64 // 64^3 elements
	ranks  = 8  // 2x2x2 process grid
	elemSz = 8  // float64 field values
)

func main() {
	sys, err := mcio.NewSystem(mcio.SystemConfig{
		Ranks:        ranks,
		RanksPerNode: 2,
		Params:       mcio.DefaultParams(256 << 10),
	})
	if err != nil {
		log.Fatal(err)
	}
	sys.ApplyMemoryVariance(256<<10, 512<<10, 64<<10, 11)

	f, err := sys.Open("checkpoint.dat", mcio.MemoryConscious())
	if err != nil {
		log.Fatal(err)
	}

	// Each rank owns a 32x32x32 block of the 64^3 global array; its file
	// view is the matching subarray, so the rank writes its block as one
	// linear stream and the view scatters it into the global row-major
	// layout.
	const sub = edge / 2
	blockBytes := int64(sub * sub * sub * elemSz)
	args := make([]mcio.CollArgs, ranks)
	for r := 0; r < ranks; r++ {
		i, j, k := int64(r/4), int64(r/2%2), int64(r%2)
		view := mcio.View{Filetype: mcio.Subarray{
			Sizes:     []int64{edge, edge, edge},
			Subsizes:  []int64{sub, sub, sub},
			Starts:    []int64{i * sub, j * sub, k * sub},
			ElemBytes: elemSz,
		}}
		if err := f.SetView(r, view); err != nil {
			log.Fatal(err)
		}
		// Fill the block with a rank-tagged field so restart can verify.
		buf := make([]byte, blockBytes)
		for b := range buf {
			buf[b] = byte(r*37 + b)
		}
		args[r] = mcio.CollArgs{Buf: buf}
	}

	res, err := f.WriteAll(args)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpoint: wrote %d MB in %d domains at %.1f MB/s (simulated)\n",
		res.UserBytes>>20, res.Domains, res.Bandwidth/1e6)

	// Restart: read the whole checkpoint back through the same views.
	restart := make([]mcio.CollArgs, ranks)
	for r := range restart {
		restart[r] = mcio.CollArgs{Buf: make([]byte, blockBytes)}
	}
	res, err = f.ReadAll(restart)
	if err != nil {
		log.Fatal(err)
	}
	for r := range restart {
		for b := range restart[r].Buf {
			if restart[r].Buf[b] != byte(r*37+b) {
				log.Fatalf("restart verification failed at rank %d byte %d", r, b)
			}
		}
	}
	fmt.Printf("restart:    read  %d MB at %.1f MB/s — all %d blocks verified\n",
		res.UserBytes>>20, res.Bandwidth/1e6, ranks)

	// An independent (non-collective) spot-check through a strided view:
	// one plane of rank 0's block, read with data sieving.
	plane := make([]byte, sub*sub*elemSz)
	if err := f.SieveReadAtRank(0, 0, plane); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("spot check: first plane of rank 0 (%d bytes) read independently with data sieving\n",
		len(plane))
}
