// Memvariance: shows the run-time aggregator placement reacting to
// node-to-node memory availability — the paper's §3.3 mechanism — by
// planning the same IOR-style workload under increasing variance and
// printing where the aggregators land.
//
//	go run ./examples/memvariance
package main

import (
	"fmt"
	"log"

	"mcio"
)

func main() {
	const ranks, perNode = 48, 4 // 12 nodes
	mean := int64(1 << 20)
	params := mcio.DefaultParams(mean)
	params.MsgInd = 4 * mean
	params.MsgGroup = 16 * mean

	w := mcio.IOR{Ranks: ranks, BlockSize: 512 << 10, TransferSize: 512 << 10, Segments: 4}
	reqs, err := w.Requests()
	if err != nil {
		log.Fatal(err)
	}

	for _, sigma := range []int64{0, mean / 2, 2 * mean, 8 * mean} {
		sys, err := mcio.NewSystem(mcio.SystemConfig{
			Ranks:        ranks,
			RanksPerNode: perNode,
			Params:       params,
		})
		if err != nil {
			log.Fatal(err)
		}
		avail := sys.ApplyMemoryVariance(mean, sigma, 64<<10, 21)

		plan, err := sys.Plan(mcio.MemoryConscious(), reqs)
		if err != nil {
			log.Fatal(err)
		}
		perHost := map[int]int{}
		for _, d := range plan.Domains {
			perHost[d.AggNode]++
		}
		fmt.Printf("sigma = %4d KB: %2d domains on %2d hosts\n",
			sigma>>10, len(plan.Domains), len(perHost))
		for node := 0; node < sys.Nodes(); node++ {
			bar := ""
			for i := 0; i < perHost[node]; i++ {
				bar += "#"
			}
			fmt.Printf("   node %2d: avail %6d KB  aggregators %s\n",
				node, avail[node]>>10, bar)
		}

		// The paper's claim in one number: the baseline pays for its
		// obliviousness as variance grows, the memory-conscious strategy
		// does not.
		f, err := sys.Open("probe", mcio.MemoryConscious())
		if err != nil {
			log.Fatal(err)
		}
		mcRes, err := f.PlanOnly(reqs, mcio.Write)
		if err != nil {
			log.Fatal(err)
		}
		g, err := sys.Open("probe2", mcio.TwoPhase())
		if err != nil {
			log.Fatal(err)
		}
		baseRes, err := g.PlanOnly(reqs, mcio.Write)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("   write bandwidth: two-phase %.1f MB/s (paged aggs %d), memory-conscious %.1f MB/s (paged aggs %d)\n\n",
			baseRes.Bandwidth/1e6, baseRes.PagedAggregators,
			mcRes.Bandwidth/1e6, mcRes.PagedAggregators)
	}
}
