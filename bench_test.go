package mcio

// Benchmarks regenerating each table and figure of the paper's evaluation,
// plus micro-benchmarks of the load-bearing machinery. The figure
// benchmarks report the memory-conscious strategy's mean improvement over
// two-phase (improve_pct) alongside the simulated baseline bandwidth at
// the scarcest sweep point — the quantities the paper's figures plot.
//
//	go test -bench=. -benchmem
//
// benchScale divides the paper's byte sizes (see internal/bench); shapes
// are scale-invariant, so benchmarks run at a high scale to stay fast.

import (
	"testing"

	"mcio/internal/bench"
	"mcio/internal/collio"
	"mcio/internal/core"
	"mcio/internal/datatype"
	"mcio/internal/machine"
	"mcio/internal/mpi"
	"mcio/internal/pfs"
	"mcio/internal/sim"
	"mcio/internal/twophase"
	"mcio/internal/workload"
)

const benchScale = 256

// BenchmarkTable1 regenerates the paper's Table 1 (exascale vs 2010
// design points).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(machine.Table1()) == 0 {
			b.Fatal("empty table")
		}
	}
}

func benchFigure(b *testing.B, run func(int64, uint64) (*bench.Series, error)) {
	b.Helper()
	var s *bench.Series
	var err error
	for i := 0; i < b.N; i++ {
		s, err = run(benchScale, 42)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(s.Improvement("write")*100, "improveW_pct")
	b.ReportMetric(s.Improvement("read")*100, "improveR_pct")
	if p := s.Points; len(p) > 0 {
		b.ReportMetric(p[0].MBps, "base2MB_MBps")
	}
}

// BenchmarkFig6 regenerates Figure 6: coll_perf write/read bandwidth vs
// per-aggregator memory at 120 processes, two-phase vs memory-conscious.
func BenchmarkFig6(b *testing.B) { benchFigure(b, bench.Fig6) }

// BenchmarkFig7 regenerates Figure 7: IOR bandwidth vs per-aggregator
// memory at 120 processes.
func BenchmarkFig7(b *testing.B) { benchFigure(b, bench.Fig7) }

// BenchmarkFig8 regenerates Figure 8: IOR bandwidth vs per-aggregator
// memory at 1080 processes.
func BenchmarkFig8(b *testing.B) { benchFigure(b, bench.Fig8) }

// BenchmarkAblationGrouping prices the contribution of aggregation-group
// division (§3.1).
func BenchmarkAblationGrouping(b *testing.B) { benchAblation(b, bench.AblationGrouping) }

// BenchmarkAblationNah sweeps the per-host aggregator limit N_ah.
func BenchmarkAblationNah(b *testing.B) { benchAblation(b, bench.AblationNah) }

// BenchmarkAblationSigma sweeps the availability variance.
func BenchmarkAblationSigma(b *testing.B) { benchAblation(b, bench.AblationSigma) }

// BenchmarkAblationOverlap prices phase pipelining for both strategies.
func BenchmarkAblationOverlap(b *testing.B) { benchAblation(b, bench.AblationOverlap) }

// BenchmarkAblationAggsPerNode compares static multi-aggregator baselines
// with dynamic placement.
func BenchmarkAblationAggsPerNode(b *testing.B) { benchAblation(b, bench.AblationAggsPerNode) }

func benchAblation(b *testing.B, run func(int64, uint64) (*bench.Table, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := run(benchScale, 42); err != nil {
			b.Fatal(err)
		}
	}
}

// --- micro-benchmarks of the machinery ---

func benchContext(b *testing.B, ranks, perNode int) (*collio.Context, []collio.RankRequest) {
	b.Helper()
	topo, err := mpi.BlockTopology(ranks, perNode)
	if err != nil {
		b.Fatal(err)
	}
	mc := machine.Testbed640().Scaled(topo.Nodes())
	avail := make([]int64, topo.Nodes())
	for i := range avail {
		avail[i] = int64((i%5)+1) * (1 << 20)
	}
	params := collio.DefaultParams(1 << 20)
	params.MsgInd = 4 << 20
	params.MsgGroup = 32 << 20
	ctx := &collio.Context{
		Topo:    topo,
		Machine: mc,
		Avail:   avail,
		FS:      pfs.DefaultConfig(16),
		Params:  params,
	}
	w := workload.IOR{Ranks: ranks, BlockSize: 1 << 20, TransferSize: 1 << 20, Segments: 4}
	reqs, err := w.Requests()
	if err != nil {
		b.Fatal(err)
	}
	return ctx, reqs
}

// BenchmarkPlanTwoPhase measures the baseline planner at 120 ranks.
func BenchmarkPlanTwoPhase(b *testing.B) {
	ctx, reqs := benchContext(b, 120, 12)
	s := twophase.New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Plan(ctx, reqs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlanMemoryConscious measures the full memory-conscious planner
// (groups, partition tree, remerge, placement) at 120 ranks.
func BenchmarkPlanMemoryConscious(b *testing.B) {
	ctx, reqs := benchContext(b, 120, 12)
	s := core.New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Plan(ctx, reqs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCost measures the round-pricing executor for a planned
// operation at 120 ranks.
func BenchmarkCost(b *testing.B) {
	ctx, reqs := benchContext(b, 120, 12)
	plan, err := core.New().Plan(ctx, reqs)
	if err != nil {
		b.Fatal(err)
	}
	opt := sim.DefaultOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := collio.Cost(ctx, plan, reqs, collio.Write, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPartitionTree measures recursive-bisection tree construction
// over a megabyte-scale region.
func BenchmarkPartitionTree(b *testing.B) {
	exts := []pfs.Extent{{Offset: 0, Length: 1 << 30}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.BuildTree(exts, 1<<20); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSubarrayFlatten measures 3-D subarray flattening (the
// coll_perf hot path).
func BenchmarkSubarrayFlatten(b *testing.B) {
	s := datatype.Subarray{
		Sizes:     []int64{256, 256, 256},
		Subsizes:  []int64{64, 64, 64},
		Starts:    []int64{32, 32, 32},
		ElemBytes: 4,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(s.Flatten()) == 0 {
			b.Fatal("empty flatten")
		}
	}
}

// BenchmarkStripedWrite measures the striped file store's data path.
func BenchmarkStripedWrite(b *testing.B) {
	fs, err := pfs.NewFileSystem(pfs.DefaultConfig(16))
	if err != nil {
		b.Fatal(err)
	}
	f := fs.Open("bench")
	buf := make([]byte, 4<<20)
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.WriteAt(buf, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMPIAllgather measures the message-passing runtime's collective
// path at 64 ranks.
func BenchmarkMPIAllgather(b *testing.B) {
	topo, err := mpi.BlockTopology(64, 8)
	if err != nil {
		b.Fatal(err)
	}
	payload := []byte{1, 2, 3, 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := mpi.NewWorld(topo)
		err := w.Run(func(p *mpi.Proc) {
			p.Allgather(payload)
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExecRoundTrip measures the real data path: plan + byte
// movement through the runtime onto the striped store.
func BenchmarkExecRoundTrip(b *testing.B) {
	ctx, reqs := benchContext(b, 24, 4)
	plan, err := core.New().Plan(ctx, reqs)
	if err != nil {
		b.Fatal(err)
	}
	var total int64
	data := make([]collio.RankData, ctx.Topo.Size())
	for r := range data {
		var req collio.RankRequest
		req.Rank = r
		for _, q := range reqs {
			if q.Rank == r {
				req = q
			}
		}
		data[r] = collio.RankData{Req: req, Buf: make([]byte, req.Bytes())}
		total += req.Bytes()
	}
	fs, err := pfs.NewFileSystem(ctx.FS)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(total)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		file := fs.Open("exec-bench")
		if err := collio.Exec(ctx, plan, data, file, collio.Write); err != nil {
			b.Fatal(err)
		}
		fs.Remove("exec-bench")
	}
}

// BenchmarkMotivation prices independent vs collective I/O across
// interleaving granularities (the paper's §2 rationale).
func BenchmarkMotivation(b *testing.B) { benchAblation(b, bench.Motivation) }

// BenchmarkScaling runs the weak-scaling sweep (120 to 2160 processes).
func BenchmarkScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.ScalingSweep(benchScale, 42, 16); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTuner runs the parameter auto-tuner grid on the Figure 7
// workload.
func BenchmarkTuner(b *testing.B) {
	cfg := bench.Fig7Config(benchScale, 42)
	cfg.MemMB = []int{16}
	wl, _ := bench.Fig7Workload(cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.TuneWorkload(cfg, wl); err != nil {
			b.Fatal(err)
		}
	}
}
