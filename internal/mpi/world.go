package mpi

import (
	"fmt"
	"strconv"
	"sync"
	"time"

	"mcio/internal/obs"
)

// message is one in-flight point-to-point transfer.
type message struct {
	src  int
	tag  int
	data []byte
}

// World is a set of ranks that can communicate. Create one with NewWorld,
// then execute a rank program with Run.
type World struct {
	topo    Topology
	inboxes []chan message

	// Failure machinery: the first rank that dies closes down (carrying
	// its error in downErr), which unwinds every rank still blocked in
	// Send/Recv instead of deadlocking the world. timeout, when set,
	// arms a watchdog on each blocking Send/Recv so a peer that never
	// sends is diagnosed rather than hung on.
	timeout  time.Duration
	down     chan struct{}
	downOnce sync.Once
	downErr  error

	// Per-rank traffic counters, pre-resolved at SetObserver time so the
	// Send/Recv hot path pays one nil check plus atomic adds. All slices
	// are nil when no observer is attached.
	sentMsgs  []*obs.Counter
	sentBytes []*obs.Counter
	recvMsgs  []*obs.Counter
	recvBytes []*obs.Counter
	collCalls map[string]*obs.Counter
}

// defaultMailboxFactor sizes each rank's mailbox: enough buffering that
// every peer can have several sends outstanding, which keeps naive
// exchange patterns (everyone sends, then everyone receives) deadlock-free
// at the scales this simulator runs.
const defaultMailboxFactor = 8

// NewWorld creates a world whose ranks are placed by topo.
func NewWorld(topo Topology) *World {
	w := &World{
		topo:    topo,
		inboxes: make([]chan message, topo.Size()),
		down:    make(chan struct{}),
	}
	capacity := topo.Size()*defaultMailboxFactor + 16
	for i := range w.inboxes {
		w.inboxes[i] = make(chan message, capacity)
	}
	return w
}

// SetObserver attaches metrics to the world: per-rank point-to-point
// traffic (mpi.msgs_sent{rank}, mpi.bytes_sent{rank}, and the recv
// counterparts) and per-kind collective call counts
// (mpi.collective_calls{kind}). Counters are shared by all rank
// goroutines and atomically updated. A nil observer (or one without a
// registry) leaves the world uninstrumented. Call before Run.
func (w *World) SetObserver(o *obs.Observer) {
	if o == nil || o.Metrics == nil {
		w.sentMsgs, w.sentBytes, w.recvMsgs, w.recvBytes, w.collCalls = nil, nil, nil, nil, nil
		return
	}
	n := w.topo.Size()
	w.sentMsgs = make([]*obs.Counter, n)
	w.sentBytes = make([]*obs.Counter, n)
	w.recvMsgs = make([]*obs.Counter, n)
	w.recvBytes = make([]*obs.Counter, n)
	for r := 0; r < n; r++ {
		l := obs.L("rank", strconv.Itoa(r))
		w.sentMsgs[r] = o.Counter("mpi.msgs_sent", l)
		w.sentBytes[r] = o.Counter("mpi.bytes_sent", l)
		w.recvMsgs[r] = o.Counter("mpi.msgs_recv", l)
		w.recvBytes[r] = o.Counter("mpi.bytes_recv", l)
	}
	w.collCalls = map[string]*obs.Counter{}
	for _, kind := range []string{"barrier", "bcast", "gather", "allgather", "alltoall", "allreduce"} {
		w.collCalls[kind] = o.Counter("mpi.collective_calls", obs.L("kind", kind))
	}
}

// SetTimeout arms a watchdog on every blocking Send and Recv: a call
// that waits longer than d fails the world with a diagnostic naming the
// blocked rank, peer and tag instead of hanging the process. Zero (the
// default) disables the watchdog. Call before Run.
func (w *World) SetTimeout(d time.Duration) { w.timeout = d }

// teardown is the panic payload used to unwind ranks blocked on a world
// that another rank has already failed; Run reports such panics as
// secondary, keeping the root cause as the world's error.
type teardown struct{ msg string }

// fail records the world's first failure and closes down, releasing
// every rank blocked in Send or Recv. downErr is safe to read after
// down is closed (the write happens-before the close).
func (w *World) fail(err error) {
	w.downOnce.Do(func() {
		w.downErr = err
		close(w.down)
	})
}

// failure returns the root-cause error; call only after down is closed.
func (w *World) failure() error {
	select {
	case <-w.down:
		return w.downErr
	default:
		return nil
	}
}

// countCollective bumps the per-kind collective counter when observed.
func (w *World) countCollective(kind string) {
	if w.collCalls != nil {
		w.collCalls[kind].Inc()
	}
}

// Proc is one rank's handle onto the world. A Proc is confined to the
// goroutine Run started for it.
type Proc struct {
	world   *World
	rank    int
	pending []message // received but not yet matched
}

// Rank returns this process's rank in [0, Size).
func (p *Proc) Rank() int { return p.rank }

// Size returns the number of ranks in the world.
func (p *Proc) Size() int { return p.world.topo.Size() }

// Node returns the machine node hosting this rank.
func (p *Proc) Node() int { return p.world.topo.NodeOf(p.rank) }

// Topology returns the world's rank placement.
func (p *Proc) Topology() Topology { return p.world.topo }

// Run executes body once per rank, each in its own goroutine, and waits
// for all of them. A panic in any rank is recovered and fails the world:
// the down channel is closed so every other rank blocked in Send or Recv
// unwinds gracefully instead of deadlocking, and Run returns the
// root-cause error (the first rank that died), not the secondary
// teardown unwinds it triggered.
func (w *World) Run(body func(p *Proc)) error {
	var wg sync.WaitGroup
	for r := 0; r < w.topo.Size(); r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if rec := recover(); rec != nil {
					if _, secondary := rec.(teardown); secondary {
						return // world already failed; root cause recorded
					}
					w.fail(fmt.Errorf("mpi: rank %d panicked: %v", rank, rec))
				}
			}()
			body(&Proc{world: w, rank: rank})
		}(r)
	}
	wg.Wait()
	return w.failure()
}

// Send delivers data to rank dst with the given tag. The slice is handed
// off by reference; senders must not mutate it afterwards (collective code
// in this repository always sends freshly built or read-only buffers).
// Send blocks only when dst's mailbox is full; a blocked Send unwinds if
// the world fails and, with SetTimeout armed, diagnoses a receiver that
// never drains its mailbox.
func (p *Proc) Send(dst, tag int, data []byte) {
	if dst < 0 || dst >= p.Size() {
		panic(fmt.Sprintf("mpi: send to invalid rank %d", dst))
	}
	w := p.world
	if w.sentMsgs != nil {
		w.sentMsgs[p.rank].Inc()
		w.sentBytes[p.rank].Add(int64(len(data)))
	}
	m := message{src: p.rank, tag: tag, data: data}
	select {
	case w.inboxes[dst] <- m:
		return
	default:
	}
	var timeC <-chan time.Time
	if w.timeout > 0 {
		timer := time.NewTimer(w.timeout)
		defer timer.Stop()
		timeC = timer.C
	}
	select {
	case w.inboxes[dst] <- m:
	case <-w.down:
		panic(teardown{msg: fmt.Sprintf("rank %d torn down while sending to rank %d (tag %d)", p.rank, dst, tag)})
	case <-timeC:
		panic(fmt.Errorf("mpi: rank %d: send watchdog fired after %v: rank %d's mailbox stayed full (tag %d) — receiver dead or not receiving", p.rank, w.timeout, dst, tag))
	}
}

// Recv blocks until a message from src with the given tag arrives and
// returns its payload. Matching is FIFO per (src, tag). A blocked Recv
// unwinds if the world fails; with SetTimeout armed it panics with a
// diagnostic naming the awaited peer and tag instead of hanging the
// test binary on a dead or never-sending rank. The watchdog deadline is
// per call: unrelated arrivals do not extend it.
func (p *Proc) Recv(src, tag int) []byte {
	if src < 0 || src >= p.Size() {
		panic(fmt.Sprintf("mpi: recv from invalid rank %d", src))
	}
	for i, m := range p.pending {
		if m.src == src && m.tag == tag {
			p.pending = append(p.pending[:i], p.pending[i+1:]...)
			p.countRecv(m)
			return m.data
		}
	}
	w := p.world
	var timeC <-chan time.Time
	if w.timeout > 0 {
		timer := time.NewTimer(w.timeout)
		defer timer.Stop()
		timeC = timer.C
	}
	for {
		select {
		case m := <-w.inboxes[p.rank]:
			if m.src == src && m.tag == tag {
				p.countRecv(m)
				return m.data
			}
			p.pending = append(p.pending, m)
		case <-w.down:
			panic(teardown{msg: fmt.Sprintf("rank %d torn down while receiving from rank %d (tag %d)", p.rank, src, tag)})
		case <-timeC:
			panic(fmt.Errorf("mpi: rank %d: receive watchdog fired after %v waiting for rank %d (tag %d) — peer dead or never sent", p.rank, w.timeout, src, tag))
		}
	}
}

// countRecv accounts a matched message to the receiving rank's counters.
func (p *Proc) countRecv(m message) {
	if w := p.world; w.recvMsgs != nil {
		w.recvMsgs[p.rank].Inc()
		w.recvBytes[p.rank].Add(int64(len(m.data)))
	}
}

// Internal tags for collectives; user code must use tags >= 0.
const (
	tagBarrier = -1 - iota
	tagBcast
	tagGather
	tagReduce
	tagAlltoall
)

// Barrier blocks until every rank has entered it.
func (p *Proc) Barrier() {
	p.world.countCollective("barrier")
	// Linear: everyone checks in with rank 0, rank 0 releases everyone.
	if p.rank == 0 {
		for r := 1; r < p.Size(); r++ {
			p.Recv(r, tagBarrier)
		}
		for r := 1; r < p.Size(); r++ {
			p.Send(r, tagBarrier, nil)
		}
		return
	}
	p.Send(0, tagBarrier, nil)
	p.Recv(0, tagBarrier)
}

// Bcast distributes root's data to every rank and returns it. Non-root
// callers may pass nil.
func (p *Proc) Bcast(root int, data []byte) []byte {
	p.world.countCollective("bcast")
	if p.rank == root {
		for r := 0; r < p.Size(); r++ {
			if r != root {
				p.Send(r, tagBcast, data)
			}
		}
		return data
	}
	return p.Recv(root, tagBcast)
}

// Gather collects each rank's data at root. On root the result holds one
// entry per rank (root's own contribution included, by rank order); other
// ranks get nil.
func (p *Proc) Gather(root int, data []byte) [][]byte {
	p.world.countCollective("gather")
	if p.rank == root {
		out := make([][]byte, p.Size())
		out[root] = data
		for r := 0; r < p.Size(); r++ {
			if r != root {
				out[r] = p.Recv(r, tagGather)
			}
		}
		return out
	}
	p.Send(root, tagGather, data)
	return nil
}

// Allgather collects each rank's data everywhere: the result always holds
// one entry per rank, in rank order.
func (p *Proc) Allgather(data []byte) [][]byte {
	p.world.countCollective("allgather")
	gathered := p.Gather(0, data)
	if p.rank == 0 {
		for r := 1; r < p.Size(); r++ {
			for i := 0; i < p.Size(); i++ {
				p.Send(r, tagBcast, gathered[i])
			}
		}
		return gathered
	}
	out := make([][]byte, p.Size())
	for i := 0; i < p.Size(); i++ {
		out[i] = p.Recv(0, tagBcast)
	}
	return out
}

// Alltoall delivers send[i] to rank i and returns what every rank sent to
// this one, in rank order. Entries may be nil/empty.
func (p *Proc) Alltoall(send [][]byte) [][]byte {
	p.world.countCollective("alltoall")
	if len(send) != p.Size() {
		panic(fmt.Sprintf("mpi: Alltoall with %d buffers for %d ranks", len(send), p.Size()))
	}
	for r := 0; r < p.Size(); r++ {
		p.Send(r, tagAlltoall, send[r])
	}
	out := make([][]byte, p.Size())
	for r := 0; r < p.Size(); r++ {
		out[r] = p.Recv(r, tagAlltoall)
	}
	return out
}

// AllreduceInt64 combines one int64 per rank with op and returns the
// result everywhere. Op must be associative and commutative.
func (p *Proc) AllreduceInt64(x int64, op func(a, b int64) int64) int64 {
	p.world.countCollective("allreduce")
	buf := make([]byte, 8)
	putInt64(buf, x)
	if p.rank == 0 {
		acc := x
		for r := 1; r < p.Size(); r++ {
			acc = op(acc, getInt64(p.Recv(r, tagReduce)))
		}
		out := make([]byte, 8)
		putInt64(out, acc)
		for r := 1; r < p.Size(); r++ {
			p.Send(r, tagReduce, out)
		}
		return acc
	}
	p.Send(0, tagReduce, buf)
	return getInt64(p.Recv(0, tagReduce))
}

func putInt64(b []byte, v int64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func getInt64(b []byte) int64 {
	var v int64
	for i := 0; i < 8; i++ {
		v |= int64(b[i]) << (8 * i)
	}
	return v
}
