package mpi

import (
	"strconv"
	"testing"

	"mcio/internal/obs"
)

// TestWorldObserver checks the per-rank traffic counters against a known
// exchange pattern; run under -race it also proves the counters are safe
// for the goroutine-per-rank runtime.
func TestWorldObserver(t *testing.T) {
	topo, err := BlockTopology(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWorld(topo)
	o := obs.New()
	w.SetObserver(o)
	payload := 100
	err = w.Run(func(p *Proc) {
		// Ring: each rank sends payload bytes to the next rank.
		next := (p.Rank() + 1) % p.Size()
		prev := (p.Rank() + p.Size() - 1) % p.Size()
		p.Send(next, 7, make([]byte, payload))
		p.Recv(prev, 7)
		p.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < topo.Size(); r++ {
		l := obs.L("rank", strconv.Itoa(r))
		// One explicit send plus the barrier's check-in/release traffic.
		wantMsgs := int64(2)
		if r == 0 {
			wantMsgs = 1 + int64(topo.Size()-1) // ring send + releases
		}
		if got := o.Counter("mpi.msgs_sent", l).Value(); got != wantMsgs {
			t.Errorf("rank %d msgs_sent = %d, want %d", r, got, wantMsgs)
		}
		if got := o.Counter("mpi.bytes_sent", l).Value(); got < int64(payload) {
			t.Errorf("rank %d bytes_sent = %d, want >= %d", r, got, payload)
		}
		if got := o.Counter("mpi.msgs_recv", l).Value(); got != wantMsgs {
			t.Errorf("rank %d msgs_recv = %d, want %d", r, got, wantMsgs)
		}
	}
	if got := o.Counter("mpi.collective_calls", obs.L("kind", "barrier")).Value(); got != int64(topo.Size()) {
		t.Errorf("barrier calls = %d, want %d", got, topo.Size())
	}
}

// TestWorldObserverDetach checks that a nil observer leaves the world
// uninstrumented and that detaching works after attaching.
func TestWorldObserverDetach(t *testing.T) {
	topo, err := BlockTopology(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWorld(topo)
	o := obs.New()
	w.SetObserver(o)
	w.SetObserver(nil)
	if err := w.Run(func(p *Proc) {
		if p.Rank() == 0 {
			p.Send(1, 1, []byte("x"))
		} else {
			p.Recv(0, 1)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if got := o.Counter("mpi.msgs_sent", obs.L("rank", "0")).Value(); got != 0 {
		t.Fatalf("detached world still counted %d sends", got)
	}
}
