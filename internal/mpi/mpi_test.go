package mpi

import (
	"bytes"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
)

func TestBlockTopology(t *testing.T) {
	topo, err := BlockTopology(10, 4)
	if err != nil {
		t.Fatal(err)
	}
	if topo.Size() != 10 || topo.Nodes() != 3 {
		t.Fatalf("size/nodes = %d/%d", topo.Size(), topo.Nodes())
	}
	wantNodes := []int{0, 0, 0, 0, 1, 1, 1, 1, 2, 2}
	for r, want := range wantNodes {
		if topo.NodeOf(r) != want {
			t.Errorf("NodeOf(%d) = %d, want %d", r, topo.NodeOf(r), want)
		}
	}
	if got := topo.RanksOnNode(1); !reflect.DeepEqual(got, []int{4, 5, 6, 7}) {
		t.Fatalf("RanksOnNode(1) = %v", got)
	}
	if got := topo.RanksOnNode(2); !reflect.DeepEqual(got, []int{8, 9}) {
		t.Fatalf("RanksOnNode(2) = %v", got)
	}
}

func TestTopologyErrors(t *testing.T) {
	if _, err := BlockTopology(0, 1); err == nil {
		t.Error("size 0 accepted")
	}
	if _, err := BlockTopology(4, 0); err == nil {
		t.Error("ranksPerNode 0 accepted")
	}
	if _, err := ExplicitTopology(nil); err == nil {
		t.Error("empty explicit topology accepted")
	}
	if _, err := ExplicitTopology([]int{0, -1}); err == nil {
		t.Error("negative node accepted")
	}
}

func TestExplicitTopology(t *testing.T) {
	topo, err := ExplicitTopology([]int{2, 0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if topo.Nodes() != 3 || topo.NodeOf(0) != 2 || topo.NodeOf(1) != 0 {
		t.Fatalf("bad explicit topology: %+v", topo)
	}
}

func world(t *testing.T, size, perNode int) *World {
	t.Helper()
	topo, err := BlockTopology(size, perNode)
	if err != nil {
		t.Fatal(err)
	}
	return NewWorld(topo)
}

func TestSendRecv(t *testing.T) {
	w := world(t, 2, 2)
	err := w.Run(func(p *Proc) {
		if p.Rank() == 0 {
			p.Send(1, 7, []byte("hello"))
		} else {
			if got := p.Recv(0, 7); string(got) != "hello" {
				panic(fmt.Sprintf("got %q", got))
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvMatchesTagAndSource(t *testing.T) {
	w := world(t, 3, 3)
	err := w.Run(func(p *Proc) {
		switch p.Rank() {
		case 0:
			p.Send(2, 5, []byte("from0tag5"))
			p.Send(2, 6, []byte("from0tag6"))
		case 1:
			p.Send(2, 5, []byte("from1tag5"))
		case 2:
			// Receive out of arrival order: tag 6 first, then the others.
			if got := p.Recv(0, 6); string(got) != "from0tag6" {
				panic(string(got))
			}
			if got := p.Recv(1, 5); string(got) != "from1tag5" {
				panic(string(got))
			}
			if got := p.Recv(0, 5); string(got) != "from0tag5" {
				panic(string(got))
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFIFOPerSourceAndTag(t *testing.T) {
	w := world(t, 2, 2)
	err := w.Run(func(p *Proc) {
		const n = 50
		if p.Rank() == 0 {
			for i := 0; i < n; i++ {
				p.Send(1, 3, []byte{byte(i)})
			}
		} else {
			for i := 0; i < n; i++ {
				if got := p.Recv(0, 3); got[0] != byte(i) {
					panic(fmt.Sprintf("message %d out of order: %d", i, got[0]))
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunPropagatesPanic(t *testing.T) {
	w := world(t, 2, 2)
	err := w.Run(func(p *Proc) {
		if p.Rank() == 1 {
			panic("boom")
		}
	})
	if err == nil {
		t.Fatal("expected error from panicking rank")
	}
}

func TestBarrier(t *testing.T) {
	w := world(t, 8, 4)
	var entered int32
	err := w.Run(func(p *Proc) {
		atomic.AddInt32(&entered, 1)
		p.Barrier()
		if n := atomic.LoadInt32(&entered); n != 8 {
			panic(fmt.Sprintf("rank %d passed barrier with only %d entered", p.Rank(), n))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBcast(t *testing.T) {
	w := world(t, 5, 5)
	err := w.Run(func(p *Proc) {
		var data []byte
		if p.Rank() == 2 {
			data = []byte("payload")
		}
		got := p.Bcast(2, data)
		if string(got) != "payload" {
			panic(fmt.Sprintf("rank %d got %q", p.Rank(), got))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGather(t *testing.T) {
	w := world(t, 4, 4)
	err := w.Run(func(p *Proc) {
		res := p.Gather(1, []byte{byte(p.Rank() * 10)})
		if p.Rank() != 1 {
			if res != nil {
				panic("non-root got a gather result")
			}
			return
		}
		for r := 0; r < 4; r++ {
			if res[r][0] != byte(r*10) {
				panic(fmt.Sprintf("slot %d = %d", r, res[r][0]))
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllgather(t *testing.T) {
	w := world(t, 6, 3)
	err := w.Run(func(p *Proc) {
		res := p.Allgather([]byte{byte(p.Rank())})
		if len(res) != 6 {
			panic("wrong size")
		}
		for r := 0; r < 6; r++ {
			if res[r][0] != byte(r) {
				panic(fmt.Sprintf("rank %d slot %d = %d", p.Rank(), r, res[r][0]))
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlltoall(t *testing.T) {
	w := world(t, 4, 2)
	err := w.Run(func(p *Proc) {
		send := make([][]byte, 4)
		for dst := range send {
			send[dst] = []byte{byte(p.Rank()), byte(dst)}
		}
		got := p.Alltoall(send)
		for src := range got {
			want := []byte{byte(src), byte(p.Rank())}
			if !bytes.Equal(got[src], want) {
				panic(fmt.Sprintf("rank %d from %d: %v want %v", p.Rank(), src, got[src], want))
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlltoallSizeMismatchPanics(t *testing.T) {
	w := world(t, 2, 2)
	err := w.Run(func(p *Proc) {
		p.Alltoall(make([][]byte, 1))
	})
	if err == nil {
		t.Fatal("expected panic to surface as error")
	}
}

func TestAllreduceInt64(t *testing.T) {
	w := world(t, 7, 7)
	sum := func(a, b int64) int64 { return a + b }
	max := func(a, b int64) int64 {
		if a > b {
			return a
		}
		return b
	}
	err := w.Run(func(p *Proc) {
		if got := p.AllreduceInt64(int64(p.Rank()+1), sum); got != 28 {
			panic(fmt.Sprintf("sum = %d", got))
		}
		if got := p.AllreduceInt64(int64(p.Rank()), max); got != 6 {
			panic(fmt.Sprintf("max = %d", got))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendInvalidRankPanics(t *testing.T) {
	w := world(t, 2, 2)
	err := w.Run(func(p *Proc) {
		if p.Rank() == 0 {
			p.Send(5, 0, nil)
		}
	})
	if err == nil {
		t.Fatal("expected error")
	}
}

func TestProcAccessors(t *testing.T) {
	w := world(t, 6, 2)
	err := w.Run(func(p *Proc) {
		if p.Size() != 6 {
			panic("size")
		}
		if p.Node() != p.Rank()/2 {
			panic("node")
		}
		if p.Topology().Nodes() != 3 {
			panic("topology")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestInt64Codec(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 1 << 40, -(1 << 40), 9223372036854775807, -9223372036854775808} {
		b := make([]byte, 8)
		putInt64(b, v)
		if got := getInt64(b); got != v {
			t.Errorf("roundtrip %d -> %d", v, got)
		}
	}
}

func TestManyRanksStress(t *testing.T) {
	// 120 ranks on 10 nodes — the paper's small configuration — doing a
	// full allgather+barrier cycle.
	w := world(t, 120, 12)
	err := w.Run(func(p *Proc) {
		res := p.Allgather([]byte{byte(p.Rank() % 251)})
		for r := range res {
			if res[r][0] != byte(r%251) {
				panic("allgather corrupted")
			}
		}
		p.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}
