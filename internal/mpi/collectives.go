package mpi

import "fmt"

// Additional world-level collectives beyond the core set in world.go:
// scatter, variable-size gathers/exchanges, prefix scan, and tree-based
// broadcast/reduce for large worlds.

// Internal tags continuing the sequence from world.go.
const (
	tagScatter = -100 - iota
	tagGatherv
	tagScan
	tagTreeBcast
	tagTreeReduce
)

// Scatter distributes send[i] from root to rank i and returns this rank's
// piece. Only root's send argument is consulted.
func (p *Proc) Scatter(root int, send [][]byte) []byte {
	if p.rank == root {
		if len(send) != p.Size() {
			panic(fmt.Sprintf("mpi: Scatter with %d buffers for %d ranks", len(send), p.Size()))
		}
		for r := 0; r < p.Size(); r++ {
			if r != root {
				p.Send(r, tagScatter, send[r])
			}
		}
		return send[root]
	}
	return p.Recv(root, tagScatter)
}

// Gatherv collects variable-size contributions at root, like Gather but
// making the variable-size contract explicit (the runtime carries sizes
// implicitly, as slices).
func (p *Proc) Gatherv(root int, data []byte) [][]byte {
	if p.rank == root {
		out := make([][]byte, p.Size())
		out[root] = data
		for r := 0; r < p.Size(); r++ {
			if r != root {
				out[r] = p.Recv(r, tagGatherv)
			}
		}
		return out
	}
	p.Send(root, tagGatherv, data)
	return nil
}

// Alltoallv delivers send[i] to rank i and returns what each rank sent
// here, with per-pair sizes varying freely — the collective ROMIO's data
// shuffle phase is built on. It is an alias of Alltoall in this runtime,
// which already carries variable sizes.
func (p *Proc) Alltoallv(send [][]byte) [][]byte { return p.Alltoall(send) }

// ScanInt64 computes an inclusive prefix reduction: rank r receives
// op(x_0, ..., x_r). Op must be associative.
func (p *Proc) ScanInt64(x int64, op func(a, b int64) int64) int64 {
	// Linear chain: receive prefix from the left neighbour, combine,
	// forward to the right neighbour.
	acc := x
	if p.rank > 0 {
		left := getInt64(p.Recv(p.rank-1, tagScan))
		acc = op(left, x)
	}
	if p.rank < p.Size()-1 {
		buf := make([]byte, 8)
		putInt64(buf, acc)
		p.Send(p.rank+1, tagScan, buf)
	}
	return acc
}

// TreeBcast distributes root's data with a binomial tree — O(log P)
// rounds instead of the linear Bcast, the shape real MPI implementations
// use at scale. The result is identical to Bcast.
func (p *Proc) TreeBcast(root int, data []byte) []byte {
	size := p.Size()
	// Re-number so the root is virtual rank 0.
	vrank := (p.rank - root + size) % size
	if vrank != 0 {
		src := (vrank - lowestSetBit(vrank) + root) % size
		data = p.Recv(src, tagTreeBcast)
	}
	// Forward to children: vrank + 2^k for increasing k until covered or
	// the bit overlaps our own lowest set bit.
	for mask := 1; mask < size; mask <<= 1 {
		if vrank&(mask-1) != 0 || vrank&mask != 0 {
			continue
		}
		child := vrank + mask
		if child < size {
			p.Send((child+root)%size, tagTreeBcast, data)
		}
	}
	return data
}

// TreeReduceInt64 combines one int64 per rank at root with a binomial
// tree; non-roots return 0. Op must be associative and commutative.
func (p *Proc) TreeReduceInt64(root int, x int64, op func(a, b int64) int64) int64 {
	size := p.Size()
	vrank := (p.rank - root + size) % size
	acc := x
	for mask := 1; mask < size; mask <<= 1 {
		if vrank&mask != 0 {
			// Send to the parent and stop participating (the root has
			// virtual rank 0 and never takes this branch).
			buf := make([]byte, 8)
			putInt64(buf, acc)
			parent := (vrank - mask + root) % size
			p.Send(parent, tagTreeReduce, buf)
			return 0
		}
		child := vrank + mask
		if child < size {
			acc = op(acc, getInt64(p.Recv((child+root)%size, tagTreeReduce)))
		}
	}
	if p.rank == root {
		return acc
	}
	return 0
}

// lowestSetBit returns the value of x's lowest set bit; x must be > 0.
func lowestSetBit(x int) int { return x & (-x) }
