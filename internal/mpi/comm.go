package mpi

import (
	"fmt"
	"sort"
)

// Comm is a sub-communicator: an ordered subset of the world's ranks with
// its own rank numbering, as produced by MPI_Comm_split. The
// memory-conscious strategy's aggregation groups (§3.1) correspond
// exactly to such subsets — group-confined traffic is traffic on a Comm.
//
// A Comm is valid only for the Proc that created it. Internal collective
// tags are namespaced per split so concurrent communicators do not
// interfere.
type Comm struct {
	p       *Proc
	members []int // world ranks, ordered by (key, world rank)
	myIdx   int   // this proc's rank within the comm
	tagBase int   // distinct negative tag namespace
}

// splitSeqTag reserves the tag space below the built-in collective tags
// for communicator-scoped collectives.
const splitTagStride = 16

// Split partitions the world by color, as MPI_Comm_split does: every rank
// calls Split collectively with its color and key; ranks sharing a color
// form one communicator, ordered by (key, world rank). A negative color
// returns nil for that rank (MPI_UNDEFINED), but the call is still
// collective. seq distinguishes concurrent split "generations": calls
// that should form one collective must use the same seq, and successive
// splits in one program must use increasing seq values.
func (p *Proc) Split(color, key, seq int) *Comm {
	if seq < 0 {
		panic("mpi: negative split sequence")
	}
	// Exchange (color, key) pairs.
	payload := make([]byte, 16)
	putInt64(payload[:8], int64(color))
	putInt64(payload[8:], int64(key))
	all := p.Allgather(payload)
	if color < 0 {
		return nil
	}
	type member struct{ rank, key int }
	var ms []member
	for r, b := range all {
		c := int(getInt64(b[:8]))
		k := int(getInt64(b[8:]))
		if c == color {
			ms = append(ms, member{rank: r, key: k})
		}
	}
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].key != ms[j].key {
			return ms[i].key < ms[j].key
		}
		return ms[i].rank < ms[j].rank
	})
	comm := &Comm{
		p:       p,
		members: make([]int, len(ms)),
		myIdx:   -1,
		// Namespace: below the world collectives' tags, one stride per
		// (seq, color) pair. Colors are assumed small non-negative ints.
		tagBase: -1000 - (seq*4096+color)*splitTagStride,
	}
	for i, m := range ms {
		comm.members[i] = m.rank
		if m.rank == p.rank {
			comm.myIdx = i
		}
	}
	if comm.myIdx < 0 {
		panic("mpi: split bookkeeping failure")
	}
	return comm
}

// Rank returns this process's rank within the communicator.
func (c *Comm) Rank() int { return c.myIdx }

// Size returns the communicator's size.
func (c *Comm) Size() int { return len(c.members) }

// WorldRank translates a communicator rank to a world rank.
func (c *Comm) WorldRank(rank int) int {
	if rank < 0 || rank >= len(c.members) {
		panic(fmt.Sprintf("mpi: comm rank %d out of range [0,%d)", rank, len(c.members)))
	}
	return c.members[rank]
}

// Send delivers data to the communicator rank dst under a
// communicator-scoped tag. User tags must be non-negative.
func (c *Comm) Send(dst, tag int, data []byte) {
	if tag < 0 {
		panic("mpi: negative user tag on comm")
	}
	c.p.Send(c.WorldRank(dst), c.tagBase-splitTagStride-tag, data)
}

// Recv receives from the communicator rank src with the given tag.
func (c *Comm) Recv(src, tag int) []byte {
	if tag < 0 {
		panic("mpi: negative user tag on comm")
	}
	return c.p.Recv(c.WorldRank(src), c.tagBase-splitTagStride-tag)
}

// ctag returns the communicator-internal tag for collective slot i.
func (c *Comm) ctag(i int) int { return c.tagBase - i }

// Barrier blocks until every member has entered it.
func (c *Comm) Barrier() {
	if c.myIdx == 0 {
		for r := 1; r < c.Size(); r++ {
			c.p.Recv(c.members[r], c.ctag(0))
		}
		for r := 1; r < c.Size(); r++ {
			c.p.Send(c.members[r], c.ctag(0), nil)
		}
		return
	}
	c.p.Send(c.members[0], c.ctag(0), nil)
	c.p.Recv(c.members[0], c.ctag(0))
}

// Bcast distributes root's data (a communicator rank) to every member.
func (c *Comm) Bcast(root int, data []byte) []byte {
	if c.myIdx == root {
		for r := 0; r < c.Size(); r++ {
			if r != root {
				c.p.Send(c.members[r], c.ctag(1), data)
			}
		}
		return data
	}
	return c.p.Recv(c.members[root], c.ctag(1))
}

// Gather collects every member's data at the communicator rank root, in
// communicator rank order; non-roots get nil.
func (c *Comm) Gather(root int, data []byte) [][]byte {
	if c.myIdx == root {
		out := make([][]byte, c.Size())
		out[root] = data
		for r := 0; r < c.Size(); r++ {
			if r != root {
				out[r] = c.p.Recv(c.members[r], c.ctag(2))
			}
		}
		return out
	}
	c.p.Send(c.members[root], c.ctag(2), data)
	return nil
}

// Allgather collects every member's data everywhere, in communicator rank
// order.
func (c *Comm) Allgather(data []byte) [][]byte {
	gathered := c.Gather(0, data)
	if c.myIdx == 0 {
		for r := 1; r < c.Size(); r++ {
			for i := 0; i < c.Size(); i++ {
				c.p.Send(c.members[r], c.ctag(3), gathered[i])
			}
		}
		return gathered
	}
	out := make([][]byte, c.Size())
	for i := 0; i < c.Size(); i++ {
		out[i] = c.p.Recv(c.members[0], c.ctag(3))
	}
	return out
}

// AllreduceInt64 combines one int64 per member with op and returns the
// result everywhere. Op must be associative and commutative.
func (c *Comm) AllreduceInt64(x int64, op func(a, b int64) int64) int64 {
	buf := make([]byte, 8)
	putInt64(buf, x)
	if c.myIdx == 0 {
		acc := x
		for r := 1; r < c.Size(); r++ {
			acc = op(acc, getInt64(c.p.Recv(c.members[r], c.ctag(4))))
		}
		out := make([]byte, 8)
		putInt64(out, acc)
		for r := 1; r < c.Size(); r++ {
			c.p.Send(c.members[r], c.ctag(4), out)
		}
		return acc
	}
	c.p.Send(c.members[0], c.ctag(4), buf)
	return getInt64(c.p.Recv(c.members[0], c.ctag(4)))
}
