package mpi

import (
	"bytes"
	"fmt"
	"testing"
)

func TestScatter(t *testing.T) {
	w := world(t, 5, 5)
	err := w.Run(func(p *Proc) {
		var send [][]byte
		if p.Rank() == 2 {
			send = make([][]byte, 5)
			for i := range send {
				send[i] = []byte{byte(i * 3)}
			}
		}
		got := p.Scatter(2, send)
		if got[0] != byte(p.Rank()*3) {
			panic(fmt.Sprintf("rank %d got %d", p.Rank(), got[0]))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScatterSizeMismatch(t *testing.T) {
	w := world(t, 2, 2)
	err := w.Run(func(p *Proc) {
		if p.Rank() == 0 {
			p.Scatter(0, make([][]byte, 1))
		}
	})
	if err == nil {
		t.Fatal("expected error")
	}
}

func TestGathervVariableSizes(t *testing.T) {
	w := world(t, 4, 2)
	err := w.Run(func(p *Proc) {
		data := bytes.Repeat([]byte{byte(p.Rank())}, p.Rank()+1)
		res := p.Gatherv(0, data)
		if p.Rank() != 0 {
			return
		}
		for r := 0; r < 4; r++ {
			if len(res[r]) != r+1 {
				panic(fmt.Sprintf("slot %d size %d", r, len(res[r])))
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlltoallvAlias(t *testing.T) {
	w := world(t, 3, 3)
	err := w.Run(func(p *Proc) {
		send := make([][]byte, 3)
		for dst := range send {
			send[dst] = bytes.Repeat([]byte{byte(p.Rank())}, dst+1)
		}
		got := p.Alltoallv(send)
		for src := range got {
			if len(got[src]) != p.Rank()+1 || got[src][0] != byte(src) {
				panic("alltoallv payload")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScanInt64(t *testing.T) {
	w := world(t, 6, 3)
	sum := func(a, b int64) int64 { return a + b }
	err := w.Run(func(p *Proc) {
		got := p.ScanInt64(int64(p.Rank()+1), sum)
		want := int64((p.Rank() + 1) * (p.Rank() + 2) / 2)
		if got != want {
			panic(fmt.Sprintf("rank %d scan = %d, want %d", p.Rank(), got, want))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTreeBcastMatchesLinear(t *testing.T) {
	for _, size := range []int{1, 2, 3, 5, 8, 13, 16} {
		for root := 0; root < size; root += 3 {
			w := world(t, size, 4)
			payload := []byte("tree-payload")
			err := w.Run(func(p *Proc) {
				var data []byte
				if p.Rank() == root {
					data = payload
				}
				got := p.TreeBcast(root, data)
				if !bytes.Equal(got, payload) {
					panic(fmt.Sprintf("size %d root %d rank %d got %q", size, root, p.Rank(), got))
				}
			})
			if err != nil {
				t.Fatalf("size %d root %d: %v", size, root, err)
			}
		}
	}
}

func TestTreeReduceInt64(t *testing.T) {
	sum := func(a, b int64) int64 { return a + b }
	for _, size := range []int{1, 2, 3, 7, 8, 12} {
		for root := 0; root < size; root += 2 {
			w := world(t, size, 4)
			err := w.Run(func(p *Proc) {
				got := p.TreeReduceInt64(root, int64(p.Rank()+1), sum)
				want := int64(size * (size + 1) / 2)
				if p.Rank() == root && got != want {
					panic(fmt.Sprintf("size %d root %d: reduce = %d, want %d", size, root, got, want))
				}
				if p.Rank() != root && got != 0 {
					panic("non-root got a reduce result")
				}
			})
			if err != nil {
				t.Fatalf("size %d root %d: %v", size, root, err)
			}
		}
	}
}

func TestSplitByNode(t *testing.T) {
	w := world(t, 12, 4) // 3 nodes
	err := w.Run(func(p *Proc) {
		c := p.Split(p.Node(), p.Rank(), 0)
		if c == nil {
			panic("nil comm for non-negative color")
		}
		if c.Size() != 4 {
			panic(fmt.Sprintf("comm size %d", c.Size()))
		}
		if c.WorldRank(c.Rank()) != p.Rank() {
			panic("rank translation broken")
		}
		// Members are the node's ranks in order.
		if c.Rank() != p.Rank()%4 {
			panic(fmt.Sprintf("rank %d has comm rank %d", p.Rank(), c.Rank()))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitUndefinedColor(t *testing.T) {
	w := world(t, 4, 2)
	err := w.Run(func(p *Proc) {
		color := 0
		if p.Rank() == 3 {
			color = -1
		}
		c := p.Split(color, 0, 0)
		if p.Rank() == 3 {
			if c != nil {
				panic("undefined color must return nil")
			}
			return
		}
		if c.Size() != 3 {
			panic(fmt.Sprintf("comm size %d", c.Size()))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitKeyOrdersRanks(t *testing.T) {
	w := world(t, 4, 4)
	err := w.Run(func(p *Proc) {
		// Reverse ordering by key.
		c := p.Split(0, -p.Rank(), 0)
		if c.WorldRank(0) != 3 || c.WorldRank(3) != 0 {
			panic("key ordering not respected")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCommCollectives(t *testing.T) {
	w := world(t, 12, 4)
	sum := func(a, b int64) int64 { return a + b }
	err := w.Run(func(p *Proc) {
		c := p.Split(p.Node(), p.Rank(), 0)
		// Bcast within the node group.
		var data []byte
		if c.Rank() == 0 {
			data = []byte{byte(p.Node() + 100)}
		}
		got := c.Bcast(0, data)
		if got[0] != byte(p.Node()+100) {
			panic("comm bcast leaked across groups")
		}
		// Allgather within the group.
		all := c.Allgather([]byte{byte(p.Rank())})
		for i := range all {
			if all[i][0] != byte(p.Node()*4+i) {
				panic("comm allgather wrong membership")
			}
		}
		// Allreduce within the group: sum of the node's world ranks.
		base := p.Node() * 4
		want := int64(base + base + 1 + base + 2 + base + 3)
		if got := c.AllreduceInt64(int64(p.Rank()), sum); got != want {
			panic(fmt.Sprintf("comm allreduce = %d, want %d", got, want))
		}
		c.Barrier()
		// Gather at group root.
		res := c.Gather(0, []byte{byte(p.Rank())})
		if c.Rank() == 0 {
			for i := range res {
				if res[i][0] != byte(base+i) {
					panic("comm gather wrong")
				}
			}
		} else if res != nil {
			panic("non-root comm gather result")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCommSendRecv(t *testing.T) {
	w := world(t, 6, 3)
	err := w.Run(func(p *Proc) {
		c := p.Split(p.Node(), p.Rank(), 1)
		if c.Rank() == 0 {
			c.Send(1, 5, []byte{byte(p.Node())})
		}
		if c.Rank() == 1 {
			if got := c.Recv(0, 5); got[0] != byte(p.Node()) {
				panic("comm p2p crossed groups")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCommTagValidation(t *testing.T) {
	w := world(t, 2, 2)
	err := w.Run(func(p *Proc) {
		c := p.Split(0, 0, 2)
		if c.Rank() == 0 {
			c.Send(1, -1, nil) // negative user tag must panic
		}
	})
	if err == nil {
		t.Fatal("expected error")
	}
}

func TestConcurrentSplitsDoNotInterfere(t *testing.T) {
	w := world(t, 8, 4)
	err := w.Run(func(p *Proc) {
		byNode := p.Split(p.Node(), p.Rank(), 0)
		parity := p.Split(p.Rank()%2, p.Rank(), 1)
		// Interleave collectives on both communicators.
		a := byNode.AllreduceInt64(1, func(x, y int64) int64 { return x + y })
		b := parity.AllreduceInt64(1, func(x, y int64) int64 { return x + y })
		if a != 4 || b != 4 {
			panic(fmt.Sprintf("interfering comms: %d %d", a, b))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
