// Package mpi implements the message-passing runtime the collective I/O
// stack runs on: ranks execute as goroutines inside one process, exchange
// real byte slices through buffered mailboxes, and are placed onto the
// simulated machine's nodes by a Topology.
//
// Only the semantics MPI-IO needs are implemented — point-to-point send
// and receive with tags, the collectives ROMIO's two-phase code path uses
// (barrier, broadcast, gather, allgather, alltoallv, reduce), and
// rank-to-node placement. Message matching is FIFO per (source, tag) pair,
// as in MPI. Delivery is deterministic: collectives iterate peers in rank
// order and point-to-point receives name their source, so a program that
// is deterministic over ranks produces identical results on every run.
package mpi

import "fmt"

// Topology places ranks onto machine nodes.
type Topology struct {
	nodeOf []int
	nodes  int
	// Ranks grouped by node in CSR form: node n's ranks are
	// rankIdx[rankStart[n]:rankStart[n+1]], ascending. Built once at
	// construction so per-node lookups are O(1) rather than a scan over
	// all ranks — planners query every node.
	rankIdx   []int
	rankStart []int
}

// index builds the by-node CSR grouping. nodeOf iterates in rank order,
// so each node's slice comes out ascending.
func (t *Topology) index() {
	counts := make([]int, t.nodes)
	for _, n := range t.nodeOf {
		counts[n]++
	}
	t.rankStart = make([]int, t.nodes+1)
	for i, c := range counts {
		t.rankStart[i+1] = t.rankStart[i] + c
	}
	t.rankIdx = make([]int, len(t.nodeOf))
	pos := append([]int(nil), t.rankStart[:t.nodes]...)
	for r, n := range t.nodeOf {
		t.rankIdx[pos[n]] = r
		pos[n]++
	}
}

// BlockTopology places size ranks onto consecutive nodes, ranksPerNode at
// a time: ranks 0..k-1 on node 0, k..2k-1 on node 1, and so on. This is
// the default MPI process-manager placement the paper assumes (e.g. 120
// ranks on 10 nodes of 12 cores).
func BlockTopology(size, ranksPerNode int) (Topology, error) {
	if size <= 0 {
		return Topology{}, fmt.Errorf("mpi: topology size %d must be positive", size)
	}
	if ranksPerNode <= 0 {
		return Topology{}, fmt.Errorf("mpi: ranksPerNode %d must be positive", ranksPerNode)
	}
	t := Topology{nodeOf: make([]int, size)}
	for r := 0; r < size; r++ {
		t.nodeOf[r] = r / ranksPerNode
	}
	t.nodes = (size + ranksPerNode - 1) / ranksPerNode
	t.index()
	return t, nil
}

// ExplicitTopology builds a topology from an explicit rank→node map.
func ExplicitTopology(nodeOf []int) (Topology, error) {
	if len(nodeOf) == 0 {
		return Topology{}, fmt.Errorf("mpi: empty topology")
	}
	max := -1
	for r, n := range nodeOf {
		if n < 0 {
			return Topology{}, fmt.Errorf("mpi: rank %d on negative node %d", r, n)
		}
		if n > max {
			max = n
		}
	}
	t := Topology{nodeOf: append([]int(nil), nodeOf...), nodes: max + 1}
	t.index()
	return t, nil
}

// Size returns the number of ranks.
func (t Topology) Size() int { return len(t.nodeOf) }

// Nodes returns the number of nodes spanned (highest node index + 1).
func (t Topology) Nodes() int { return t.nodes }

// NodeOf returns the node hosting the given rank.
func (t Topology) NodeOf(rank int) int { return t.nodeOf[rank] }

// RanksOnNode returns the ranks placed on a node, in ascending order.
// The slice aliases the topology's index: callers must not modify it.
func (t Topology) RanksOnNode(node int) []int {
	return t.rankIdx[t.rankStart[node]:t.rankStart[node+1]]
}
