package mpi

import (
	"strings"
	"testing"
	"time"
)

// A rank that waits on a peer that never sends must fail fast with a
// diagnostic instead of hanging the test binary.
func TestWatchdogDiagnosesNeverSendingPeer(t *testing.T) {
	w := NewWorld(mustTopo(t, 2, 2))
	w.SetTimeout(50 * time.Millisecond)
	done := make(chan error, 1)
	go func() {
		done <- w.Run(func(p *Proc) {
			if p.Rank() == 0 {
				p.Recv(1, 7) // rank 1 never sends
			}
		})
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("expected a watchdog error, got nil")
		}
		for _, want := range []string{"watchdog", "rank 0", "rank 1", "tag 7"} {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("diagnostic %q missing %q", err, want)
			}
		}
	case <-time.After(5 * time.Second):
		t.Fatal("watchdog did not fire; world hung")
	}
}

// A rank dying mid-collective must tear the world down: every other
// rank unwinds, Run returns the root cause, and the process does not
// deadlock even without a watchdog.
func TestDeadRankTearsDownWorld(t *testing.T) {
	w := NewWorld(mustTopo(t, 4, 2))
	done := make(chan error, 1)
	go func() {
		done <- w.Run(func(p *Proc) {
			if p.Rank() == 2 {
				panic("simulated node crash")
			}
			p.Barrier() // blocks on rank 2 forever without teardown
		})
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("expected the crash to surface, got nil")
		}
		if !strings.Contains(err.Error(), "rank 2") || !strings.Contains(err.Error(), "simulated node crash") {
			t.Errorf("root cause not reported: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("world deadlocked after rank death")
	}
}

// The root cause is stable: whichever secondary teardown unwinds later,
// Run reports the first failure.
func TestTeardownReportsRootCauseOnly(t *testing.T) {
	for i := 0; i < 10; i++ {
		w := NewWorld(mustTopo(t, 6, 3))
		err := w.Run(func(p *Proc) {
			if p.Rank() == 5 {
				panic("first failure")
			}
			p.Barrier()
		})
		if err == nil || !strings.Contains(err.Error(), "first failure") {
			t.Fatalf("iteration %d: got %v, want the rank 5 panic", i, err)
		}
	}
}

// A healthy world with a watchdog armed behaves identically to one
// without: the timeout only fires on genuine stalls.
func TestWatchdogInertOnHealthyWorld(t *testing.T) {
	w := NewWorld(mustTopo(t, 4, 2))
	w.SetTimeout(2 * time.Second)
	sum := make([]int64, 4)
	err := w.Run(func(p *Proc) {
		sum[p.Rank()] = p.AllreduceInt64(int64(p.Rank()), func(a, b int64) int64 { return a + b })
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, s := range sum {
		if s != 6 {
			t.Fatalf("rank %d reduced to %d, want 6", r, s)
		}
	}
}

// A blocked Send (full mailbox, receiver dead) must also unwind.
func TestBlockedSendUnwindsOnFailure(t *testing.T) {
	w := NewWorld(mustTopo(t, 2, 2))
	done := make(chan error, 1)
	go func() {
		done <- w.Run(func(p *Proc) {
			if p.Rank() == 1 {
				// Give rank 0 time to fill the mailbox and block.
				time.Sleep(20 * time.Millisecond)
				panic("receiver died")
			}
			for {
				p.Send(1, 3, make([]byte, 1)) // eventually fills rank 1's mailbox
			}
		})
	}()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "receiver died") {
			t.Fatalf("got %v, want the receiver's panic", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blocked sender was not unwound")
	}
}

func mustTopo(t *testing.T, size, perNode int) Topology {
	t.Helper()
	topo, err := BlockTopology(size, perNode)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}
