// Package tuner searches for the collective I/O parameters the paper
// determines empirically and defers to future work ("We leave the
// examination of these optimal values to a future study as it is
// correlated with the I/O pattern of a particular application"): the
// per-host aggregator limit N_ah, the saturation message size Msg_ind,
// and the group size Msg_group.
//
// The search evaluates the memory-conscious strategy on the cost model
// over a small grid per workload — cheap, deterministic, and exactly the
// procedure §3 describes performing by hand ("the corresponding
// parameters are measured for optimizing the performance").
package tuner

import (
	"fmt"
	"sort"
	"strings"

	"mcio/internal/collio"
	"mcio/internal/core"
	"mcio/internal/sim"
)

// Candidate is one evaluated parameter combination.
type Candidate struct {
	Params    collio.Params
	Bandwidth float64 // bytes/s on the cost model
	Domains   int
	Paged     int
}

// Result is the outcome of a parameter search.
type Result struct {
	Best        Candidate
	Candidates  []Candidate // all evaluations, best first
	Evaluations int
}

// Grid controls the search space. Zero values select the defaults.
type Grid struct {
	// NahValues are the per-host aggregator limits to try.
	NahValues []int
	// MsgIndFactors multiply the collective buffer size to form Msg_ind
	// candidates.
	MsgIndFactors []int64
	// GroupFactors multiply Msg_ind to form Msg_group candidates.
	GroupFactors []int64
}

func (g Grid) withDefaults() Grid {
	if len(g.NahValues) == 0 {
		g.NahValues = []int{1, 2, 4, 8}
	}
	if len(g.MsgIndFactors) == 0 {
		g.MsgIndFactors = []int64{1, 2, 4, 8, 16}
	}
	if len(g.GroupFactors) == 0 {
		g.GroupFactors = []int64{8}
	}
	return g
}

// Tune evaluates the grid for the given workload and machine state and
// returns the candidates ordered best-first. The context's CollBufSize
// and MemMin are kept; Nah, MsgInd and MsgGroup are searched.
func Tune(ctx *collio.Context, reqs []collio.RankRequest, op collio.Op, opt sim.Options, grid Grid) (*Result, error) {
	if err := ctx.Validate(); err != nil {
		return nil, err
	}
	grid = grid.withDefaults()
	strategy := core.New()
	res := &Result{}
	seen := map[string]bool{}
	for _, nah := range grid.NahValues {
		if nah <= 0 {
			return nil, fmt.Errorf("tuner: non-positive Nah candidate %d", nah)
		}
		for _, mf := range grid.MsgIndFactors {
			for _, gf := range grid.GroupFactors {
				if mf <= 0 || gf <= 0 {
					return nil, fmt.Errorf("tuner: non-positive grid factor")
				}
				params := ctx.Params
				params.Nah = nah
				params.MsgInd = params.CollBufSize * mf
				params.MsgGroup = params.MsgInd * gf
				key := fmt.Sprintf("%d/%d/%d", nah, params.MsgInd, params.MsgGroup)
				if seen[key] {
					continue
				}
				seen[key] = true

				cctx := *ctx
				cctx.Params = params
				copt := opt
				copt.NahOpt = nah
				// Memoized: repeated tuner runs (and sweeps sharing a
				// parameter combo) reuse the identical partition tree.
				plan, err := collio.CachedPlan(strategy, &cctx, reqs)
				if err != nil {
					return nil, err
				}
				cost, err := collio.Cost(&cctx, plan, reqs, op, copt)
				if err != nil {
					return nil, err
				}
				res.Candidates = append(res.Candidates, Candidate{
					Params:    params,
					Bandwidth: cost.Bandwidth,
					Domains:   cost.Domains,
					Paged:     cost.PagedAggregators,
				})
				res.Evaluations++
			}
		}
	}
	if res.Evaluations == 0 {
		return nil, fmt.Errorf("tuner: empty search grid")
	}
	sort.SliceStable(res.Candidates, func(i, j int) bool {
		return res.Candidates[i].Bandwidth > res.Candidates[j].Bandwidth
	})
	res.Best = res.Candidates[0]
	return res, nil
}

// Render formats the top candidates as an aligned table.
func (r *Result) Render(top int) string {
	if top <= 0 || top > len(r.Candidates) {
		top = len(r.Candidates)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "parameter search (%d evaluations)\n", r.Evaluations)
	fmt.Fprintf(&b, "%4s %12s %12s %12s %8s %6s\n", "Nah", "MsgInd", "MsgGroup", "MB/s", "domains", "paged")
	for _, c := range r.Candidates[:top] {
		fmt.Fprintf(&b, "%4d %12d %12d %12.1f %8d %6d\n",
			c.Params.Nah, c.Params.MsgInd, c.Params.MsgGroup,
			c.Bandwidth/1e6, c.Domains, c.Paged)
	}
	return b.String()
}
