package tuner

import (
	"strings"
	"testing"

	"mcio/internal/collio"
	"mcio/internal/machine"
	"mcio/internal/mpi"
	"mcio/internal/pfs"
	"mcio/internal/sim"
	"mcio/internal/workload"
)

func testContext(t *testing.T) (*collio.Context, []collio.RankRequest) {
	t.Helper()
	topo, err := mpi.BlockTopology(24, 4)
	if err != nil {
		t.Fatal(err)
	}
	mc := machine.Testbed640().Scaled(topo.Nodes())
	avail := make([]int64, topo.Nodes())
	for i := range avail {
		avail[i] = int64(i+1) * (512 << 10)
	}
	ctx := &collio.Context{
		Topo:    topo,
		Machine: mc,
		Avail:   avail,
		FS:      pfs.DefaultConfig(8),
		Params:  collio.DefaultParams(256 << 10),
	}
	w := workload.IOR{Ranks: 24, BlockSize: 512 << 10, TransferSize: 512 << 10, Segments: 4}
	reqs, err := w.Requests()
	if err != nil {
		t.Fatal(err)
	}
	return ctx, reqs
}

func TestTuneFindsACandidate(t *testing.T) {
	ctx, reqs := testContext(t)
	res, err := Tune(ctx, reqs, collio.Write, sim.DefaultOptions(), Grid{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluations != 4*5 { // default grid: 4 Nah x 5 MsgInd x 1 group
		t.Fatalf("evaluations = %d", res.Evaluations)
	}
	if res.Best.Bandwidth <= 0 {
		t.Fatal("best candidate has no bandwidth")
	}
	// Candidates are sorted best-first.
	for i := 1; i < len(res.Candidates); i++ {
		if res.Candidates[i].Bandwidth > res.Candidates[i-1].Bandwidth {
			t.Fatal("candidates not sorted")
		}
	}
}

func TestTuneBestBeatsDefaults(t *testing.T) {
	ctx, reqs := testContext(t)
	opt := sim.DefaultOptions()
	res, err := Tune(ctx, reqs, collio.Write, opt, Grid{})
	if err != nil {
		t.Fatal(err)
	}
	// The tuned parameters must be at least as good as the untuned
	// defaults (which are in the grid's span).
	defaultIdx := -1
	for i, c := range res.Candidates {
		if c.Params.Nah == ctx.Params.Nah && c.Params.MsgInd == ctx.Params.CollBufSize {
			defaultIdx = i
			break
		}
	}
	if defaultIdx == -1 {
		t.Skip("default point not in grid")
	}
	if res.Best.Bandwidth < res.Candidates[defaultIdx].Bandwidth {
		t.Fatal("best candidate worse than default")
	}
}

func TestTuneDeterministic(t *testing.T) {
	ctx, reqs := testContext(t)
	a, err := Tune(ctx, reqs, collio.Read, sim.DefaultOptions(), Grid{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Tune(ctx, reqs, collio.Read, sim.DefaultOptions(), Grid{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Best.Bandwidth != b.Best.Bandwidth || a.Best.Params != b.Best.Params {
		t.Fatal("tuner not deterministic")
	}
}

func TestTuneCustomGrid(t *testing.T) {
	ctx, reqs := testContext(t)
	res, err := Tune(ctx, reqs, collio.Write, sim.DefaultOptions(), Grid{
		NahValues:     []int{2},
		MsgIndFactors: []int64{4},
		GroupFactors:  []int64{4, 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluations != 2 {
		t.Fatalf("evaluations = %d", res.Evaluations)
	}
	for _, c := range res.Candidates {
		if c.Params.Nah != 2 || c.Params.MsgInd != 4*ctx.Params.CollBufSize {
			t.Fatalf("grid not respected: %+v", c.Params)
		}
	}
}

func TestTuneRejectsBadInput(t *testing.T) {
	ctx, reqs := testContext(t)
	if _, err := Tune(ctx, reqs, collio.Write, sim.DefaultOptions(), Grid{NahValues: []int{0}}); err == nil {
		t.Fatal("zero Nah accepted")
	}
	if _, err := Tune(ctx, reqs, collio.Write, sim.DefaultOptions(), Grid{MsgIndFactors: []int64{-1}}); err == nil {
		t.Fatal("negative factor accepted")
	}
	bad := *ctx
	bad.Avail = nil
	if _, err := Tune(&bad, reqs, collio.Write, sim.DefaultOptions(), Grid{}); err == nil {
		t.Fatal("invalid context accepted")
	}
}

func TestRender(t *testing.T) {
	ctx, reqs := testContext(t)
	res, err := Tune(ctx, reqs, collio.Write, sim.DefaultOptions(), Grid{})
	if err != nil {
		t.Fatal(err)
	}
	out := res.Render(3)
	if !strings.Contains(out, "Nah") || !strings.Contains(out, "MB/s") {
		t.Fatalf("render output:\n%s", out)
	}
	if strings.Count(out, "\n") != 5 { // title + header + 3 rows
		t.Fatalf("render should show 3 rows:\n%s", out)
	}
	// Render with out-of-range top shows everything.
	all := res.Render(0)
	if strings.Count(all, "\n") != 2+len(res.Candidates) {
		t.Fatal("render(0) should show all candidates")
	}
}
