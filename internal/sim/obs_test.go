package sim

import (
	"testing"

	"mcio/internal/obs"
)

// tracedEngine is testEngine with round tracing on.
func tracedEngine(t *testing.T) *Engine {
	t.Helper()
	opt := DefaultOptions()
	opt.Trace = true
	return testEngine(t, opt)
}

func TestBindingIOBound(t *testing.T) {
	e := tracedEngine(t)
	e.RunRound(Round{
		Messages: []Message{{SrcNode: 0, DstNode: 1, Bytes: 1 << 10}},
		IOOps:    []IOOp{{Target: 3, Node: 1, Bytes: 512 << 20, Requests: 1, Contiguous: true, Write: true}},
	})
	tr := e.Trace()
	if len(tr) != 1 {
		t.Fatalf("got %d trace entries, want 1", len(tr))
	}
	b := tr[0].Binding
	if b.CommBound {
		t.Fatalf("512 MB of storage vs 1 KB of comm classified comm-bound: %v", b)
	}
	if b.IOTarget != 3 {
		t.Fatalf("binding io target = %d, want 3 (%v)", b.IOTarget, b)
	}
	if b.String() == "" {
		t.Fatal("binding renders empty")
	}
}

func TestBindingCommBound(t *testing.T) {
	e := tracedEngine(t)
	e.RunRound(Round{
		Messages: []Message{{SrcNode: 2, DstNode: 5, Bytes: 512 << 20}},
		IOOps:    []IOOp{{Target: 0, Node: 5, Bytes: 1 << 10, Requests: 1, Contiguous: true, Write: true}},
	})
	b := e.Trace()[0].Binding
	if !b.CommBound {
		t.Fatalf("512 MB of comm vs 1 KB of storage classified io-bound: %v", b)
	}
	if b.CommNode != 2 && b.CommNode != 5 {
		t.Fatalf("binding comm node = %d, want an endpoint of the transfer (%v)", b.CommNode, b)
	}
	if b.CommResource == "" {
		t.Fatalf("comm-bound binding has no resource: %v", b)
	}
}

func TestBindingPagedNodeAttributed(t *testing.T) {
	e := tracedEngine(t)
	// A fully paged aggregator slows everything the destination node
	// touches; the binding must attribute the round to that node (its
	// DRAM or its now-degraded NIC), not to the healthy sender.
	e.SetAggregators([]AggregatorPlacement{{Node: 1, BufferBytes: 1 << 20, PagedSeverity: 1}})
	e.RunRound(Round{Messages: []Message{{SrcNode: 0, DstNode: 1, Bytes: 64 << 20}}})
	b := e.Trace()[0].Binding
	if !b.CommBound || b.CommNode != 1 {
		t.Fatalf("paged destination should bind on node 1, got %v", b)
	}
	if b.CommResource != BindMem && b.CommResource != BindNICIn {
		t.Fatalf("paged destination bound by %q, want mem or nic-in", b.CommResource)
	}
}

func TestEngineObserver(t *testing.T) {
	opt := DefaultOptions()
	opt.Trace = true
	e := testEngine(t, opt)
	o := obs.New()
	pid := o.Tracer().PID("test-strategy")
	e.SetObserver(o, pid, obs.L("strategy", "test-strategy"))
	e.SetAggregators([]AggregatorPlacement{
		{Node: 1, BufferBytes: 1 << 20, PagedSeverity: 0.5},
		{Node: 2, BufferBytes: 1 << 20},
	})
	for i := 0; i < 2; i++ {
		e.RunRound(Round{
			Messages: []Message{{SrcNode: 0, DstNode: 1, Bytes: 4 << 20}},
			IOOps:    []IOOp{{Target: 3, Node: 1, Bytes: 8 << 20, Requests: 2, Contiguous: true, Write: true}},
		})
	}

	strat := obs.L("strategy", "test-strategy")
	if got := o.Counter("sim.rounds", strat).Value(); got != 2 {
		t.Fatalf("sim.rounds = %d, want 2", got)
	}
	if got := o.Counter("sim.shuffle_bytes", strat).Value(); got != 2*(4<<20) {
		t.Fatalf("sim.shuffle_bytes = %d, want %d", got, 2*(4<<20))
	}
	if got := o.Counter("pfs.bytes_written", strat, obs.L("ost", "3")).Value(); got != 2*(8<<20) {
		t.Fatalf("pfs.bytes_written{ost=3} = %d, want %d", got, 2*(8<<20))
	}
	if got := o.Counter("net.bytes_out", strat, obs.L("node", "0")).Value(); got != 2*(4<<20) {
		t.Fatalf("net.bytes_out{node=0} = %d, want %d", got, 2*(4<<20))
	}
	if got := o.Counter("memmodel.paging_events", strat, obs.L("node", "1")).Value(); got != 1 {
		t.Fatalf("paging_events{node=1} = %d, want 1", got)
	}
	// The zero-severity aggregator still registers the family.
	if got := o.Counter("memmodel.paging_events", strat, obs.L("node", "2")).Value(); got != 0 {
		t.Fatalf("paging_events{node=2} = %d, want 0", got)
	}

	spans := o.Tracer().Spans()
	if len(spans) == 0 {
		t.Fatal("engine emitted no spans")
	}
	var rounds int
	for _, s := range spans {
		if s.Start < 0 || s.Dur < 0 {
			t.Fatalf("span %q has negative time [%v, +%v]", s.Name, s.Start, s.Dur)
		}
		if s.Name == "round 0" || s.Name == "round 1" {
			rounds++
		}
	}
	if rounds != 2 {
		t.Fatalf("got %d round spans, want 2", rounds)
	}
	// Round 1 starts where round 0's simulated time ended.
	var r0End, r1Start float64
	for _, s := range spans {
		if s.Name == "round 0" {
			r0End = s.Start + s.Dur
		}
		if s.Name == "round 1" {
			r1Start = s.Start
		}
	}
	if r1Start != r0End {
		t.Fatalf("round 1 starts at %v, round 0 ends at %v: spans not on simulated time", r1Start, r0End)
	}
}
