package sim

import (
	"math/rand"
	"reflect"
	"testing"

	"mcio/internal/machine"
)

// aggregate folds a byte-path round into its aggregate form the way the
// fast path does: one AggMessage per (src,dst) route with the total
// bytes and the positive-byte message count.
func aggregate(r Round) AggRound {
	type route struct{ src, dst int }
	idx := map[route]int{}
	agg := AggRound{Kind: r.Kind, IOOps: r.IOOps, TraceMessages: len(r.Messages)}
	for _, m := range r.Messages {
		k := route{m.SrcNode, m.DstNode}
		i, ok := idx[k]
		if !ok {
			i = len(agg.Messages)
			idx[k] = i
			agg.Messages = append(agg.Messages, AggMessage{SrcNode: m.SrcNode, DstNode: m.DstNode})
		}
		agg.Messages[i].Bytes += m.Bytes
		if m.Bytes > 0 {
			agg.Messages[i].Count++
		}
	}
	return agg
}

// TestRunAggRoundMatchesRunRound feeds the same randomized traffic to
// one engine as point-to-point messages and to a second as per-route
// bundles, and demands bit-identical costs, totals and trace entries —
// the invariant the analytical fast path rests on.
func TestRunAggRoundMatchesRunRound(t *testing.T) {
	mc := machine.Testbed640()
	st := StorageParams{Targets: 8, TargetBW: 500e6, ReqOverhead: 0.5e-3, NoncontigFactor: 4, ReadBWFactor: 1.25}
	for _, overlap := range []bool{false, true} {
		opt := DefaultOptions()
		opt.Overlap = overlap
		opt.Trace = true
		byteEng, err := NewEngine(mc, st, opt)
		if err != nil {
			t.Fatal(err)
		}
		aggEng, err := NewEngine(mc, st, opt)
		if err != nil {
			t.Fatal(err)
		}
		aggs := []AggregatorPlacement{
			{Node: 0, BufferBytes: 16 << 20, PagedSeverity: 0},
			{Node: 1, BufferBytes: 16 << 20, PagedSeverity: 0.4},
			{Node: 1, BufferBytes: 16 << 20, PagedSeverity: 0.1},
			{Node: 2, BufferBytes: 16 << 20, PagedSeverity: 1},
		}
		byteEng.SetAggregators(aggs)
		aggEng.SetAggregators(aggs)
		for _, e := range []*Engine{byteEng, aggEng} {
			e.SetNodeSlowdown(2, 1.8)
			e.SetTargetSlowdown(3, 2.5)
		}

		rng := rand.New(rand.NewSource(7))
		for round := 0; round < 20; round++ {
			var r Round
			if round%5 == 0 {
				r.Kind = RoundMetadata
			}
			nMsgs := rng.Intn(40)
			for i := 0; i < nMsgs; i++ {
				b := int64(rng.Intn(1 << 20))
				if rng.Intn(8) == 0 {
					b = 0 // zero-byte messages are skipped but trace-counted
				}
				r.Messages = append(r.Messages, Message{
					SrcNode: rng.Intn(6), DstNode: rng.Intn(6), Bytes: b,
				})
			}
			if r.Kind == RoundData {
				nOps := rng.Intn(6)
				for i := 0; i < nOps; i++ {
					r.IOOps = append(r.IOOps, IOOp{
						Target:     rng.Intn(st.Targets),
						Node:       rng.Intn(6),
						Bytes:      int64(rng.Intn(4 << 20)),
						Requests:   1 + rng.Intn(5),
						Contiguous: rng.Intn(2) == 0,
						Write:      rng.Intn(2) == 0,
					})
				}
			}
			got := aggEng.RunAggRound(aggregate(r))
			want := byteEng.RunRound(r)
			if got != want {
				t.Fatalf("overlap=%v round %d: agg cost %+v != byte cost %+v", overlap, round, got, want)
			}
		}
		if gt, wt := aggEng.Totals(), byteEng.Totals(); !reflect.DeepEqual(gt, wt) {
			t.Fatalf("overlap=%v: totals diverge:\nagg:  %+v\nbyte: %+v", overlap, gt, wt)
		}
		if gt, wt := aggEng.Trace(), byteEng.Trace(); !reflect.DeepEqual(gt, wt) {
			t.Fatalf("overlap=%v: traces diverge", overlap)
		}
	}
}

// TestAccExchangeMatchesMessages expands randomized all-to-all bundles
// into their constituent per-rank messages and demands that an Exchange
// prices bit-identically to the dense message form — including sources
// that are themselves destination nodes (intra-node deliveries).
func TestAccExchangeMatchesMessages(t *testing.T) {
	mc := machine.Testbed640()
	st := StorageParams{Targets: 4, TargetBW: 500e6, ReqOverhead: 0.5e-3, NoncontigFactor: 4, ReadBWFactor: 1.25}
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 50; trial++ {
		opt := DefaultOptions()
		opt.Overlap = trial%2 == 0
		opt.Trace = true
		byteEng, err := NewEngine(mc, st, opt)
		if err != nil {
			t.Fatal(err)
		}
		exEng, err := NewEngine(mc, st, opt)
		if err != nil {
			t.Fatal(err)
		}
		// Random exchange: a handful of source nodes, each with 1-3
		// sending ranks, and destination slots that overlap the sources.
		var x Exchange
		var msgs Round
		msgs.Kind = RoundMetadata
		nSrc := 1 + rng.Intn(5)
		nDst := 1 + rng.Intn(4)
		for d := 0; d < nDst; d++ {
			x.Dsts = append(x.Dsts, ExchangeDst{Node: rng.Intn(6), Slots: rng.Intn(3)})
		}
		for s := 0; s < nSrc; s++ {
			node := rng.Intn(6)
			ranks := 1 + rng.Intn(3)
			var bytes int64
			perRank := make([]int64, ranks)
			for i := range perRank {
				perRank[i] = int64(1 + rng.Intn(4096))
				bytes += perRank[i]
			}
			x.Srcs = append(x.Srcs, ExchangeSrc{Node: node, Bytes: bytes, Count: ranks})
			for _, d := range x.Dsts {
				for s := 0; s < d.Slots; s++ {
					for _, b := range perRank {
						msgs.Messages = append(msgs.Messages, Message{SrcNode: node, DstNode: d.Node, Bytes: b})
					}
				}
			}
		}
		want := byteEng.RunRound(msgs)
		got := exEng.RunAggRound(AggRound{Kind: RoundMetadata, Exchanges: []Exchange{x}})
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: round costs diverge\nexchange: %+v\nmessages: %+v", trial, got, want)
		}
		if !reflect.DeepEqual(exEng.Totals(), byteEng.Totals()) {
			t.Fatalf("trial %d: totals diverge\nexchange: %+v\nmessages: %+v", trial, exEng.Totals(), byteEng.Totals())
		}
		if !reflect.DeepEqual(exEng.Trace(), byteEng.Trace()) {
			t.Fatalf("trial %d: traces diverge", trial)
		}
	}
}

// TestAggRecoveryRoundAccounting pins the recovery attribution the
// fault-aware fast path relies on: RunAggRecoveryRound prices exactly
// like RunAggRound and additionally books the round's time as recovery,
// matching the byte path's RunRecoveryRound; AddRecoveryLatency charges
// wall time and recovery time together.
func TestAggRecoveryRoundAccounting(t *testing.T) {
	mc := machine.Testbed640()
	st := StorageParams{Targets: 4, TargetBW: 500e6, ReqOverhead: 0.5e-3, NoncontigFactor: 4, ReadBWFactor: 1.25}
	newEng := func() *Engine {
		e, err := NewEngine(mc, st, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		e.SetAggregators([]AggregatorPlacement{{Node: 0, BufferBytes: 8 << 20}})
		return e
	}
	round := AggRound{Kind: RoundMetadata, Messages: []AggMessage{
		{SrcNode: 1, DstNode: 0, Bytes: 3 << 20, Count: 12},
		{SrcNode: 2, DstNode: 0, Bytes: 1 << 20, Count: 4},
	}}

	plain, recov := newEng(), newEng()
	pc := plain.RunAggRound(round)
	rc := recov.RunAggRecoveryRound(round)
	if pc != rc {
		t.Fatalf("recovery attribution changed the price: %+v vs %+v", pc, rc)
	}
	pt, rt := plain.Totals(), recov.Totals()
	if pt.RecoveryRounds != 0 || pt.RecoverySeconds != 0 {
		t.Fatalf("plain round booked recovery: %+v", pt)
	}
	if rt.RecoveryRounds != 1 || rt.RecoverySeconds != rc.Time {
		t.Fatalf("recovery round misbooked: rounds=%d seconds=%v (round time %v)",
			rt.RecoveryRounds, rt.RecoverySeconds, rc.Time)
	}
	if rt.Time != pt.Time {
		t.Fatalf("wall time diverged: %v vs %v", rt.Time, pt.Time)
	}

	recov.AddRecoveryLatency(0.25, "detect")
	after := recov.Totals()
	if after.RecoverySeconds != rt.RecoverySeconds+0.25 || after.Time != rt.Time+0.25 {
		t.Fatalf("AddRecoveryLatency misbooked: %+v", after)
	}
}
