// Package sim computes the simulated time of collective I/O operations.
//
// A collective I/O strategy (two-phase or memory-conscious) executes as a
// sequence of rounds; in each round aggregators exchange data with compute
// processes over the network and issue reads/writes to storage targets.
// The engine prices each round by its bottleneck resources:
//
//   - NIC injection/ejection time per node (bytes through the NIC / NIC BW,
//     plus a per-message latency charge),
//   - off-chip memory time per node (every byte shuffled through a node
//     crosses DRAM MemCopyFactor times; the node's memory bandwidth is
//     degraded when aggregation buffers exceed available memory — paging —
//     and when more aggregators than the per-node optimum N_ah are active —
//     contention),
//   - storage time per target (per-request overhead plus streaming time,
//     inflated for noncontiguous access).
//
// Round time is the maximum (overlapped phases) or the sum (classic
// blocking two-phase) of the communication and storage bottlenecks;
// operation time is the sum over rounds. Reported bandwidth is user bytes
// divided by operation time, which is how IOR and coll_perf report.
package sim

import (
	"fmt"
	"sort"
	"strconv"

	"mcio/internal/machine"
	"mcio/internal/obs"
	"mcio/internal/obs/timeline"
	"mcio/internal/sim/pricing"
)

// StorageParams prices accesses to the parallel-file-system targets.
type StorageParams struct {
	Targets     int     // number of storage targets (OSTs)
	TargetBW    float64 // streaming write bandwidth per target, bytes/s
	ReqOverhead float64 // fixed cost per storage request, seconds (seek+RPC)
	// NoncontigFactor inflates the streaming time of an access marked
	// noncontiguous (>1: noncontiguous I/O is slower per byte).
	NoncontigFactor float64
	// ReadBWFactor scales TargetBW for read accesses; the zero value means
	// symmetric (factor 1).
	ReadBWFactor float64
}

// readBW returns the effective streaming bandwidth for reads.
func (s StorageParams) readBW() float64 {
	return s.pricing().StreamBW(false)
}

// pricing converts the per-target parameters into the shared pricing
// core's storage model.
func (s StorageParams) pricing() pricing.Storage {
	return pricing.Storage{
		TargetBW:        s.TargetBW,
		ReadBWFactor:    s.ReadBWFactor,
		ReqOverhead:     s.ReqOverhead,
		NoncontigFactor: s.NoncontigFactor,
	}
}

// Validate reports an error for parameters the engine cannot price.
func (s StorageParams) Validate() error {
	switch {
	case s.Targets <= 0:
		return fmt.Errorf("sim: Targets = %d, must be positive", s.Targets)
	case s.TargetBW <= 0:
		return fmt.Errorf("sim: TargetBW must be positive")
	case s.ReqOverhead < 0:
		return fmt.Errorf("sim: ReqOverhead must be non-negative")
	case s.NoncontigFactor < 1:
		return fmt.Errorf("sim: NoncontigFactor must be >= 1")
	case s.ReadBWFactor < 0:
		return fmt.Errorf("sim: ReadBWFactor must be non-negative")
	}
	return nil
}

// Options tunes engine behaviour not tied to a machine or storage preset.
type Options struct {
	// Overlap makes communication and I/O phases of one round proceed
	// concurrently (pipelined collective buffering). ROMIO's classic
	// two-phase is blocking, so the default (false) sums the phases.
	Overlap bool
	// Trace records a TraceEntry per round, retrievable via Trace().
	// Off by default: operations can run hundreds of rounds.
	Trace bool
	// MemCopyFactor is how many times each shuffled byte crosses a node's
	// DRAM (copy into the aggregation buffer and out to the NIC ≈ 2).
	MemCopyFactor float64
	// NahOpt is the number of aggregators one node can host before
	// off-chip contention degrades bandwidth (the paper's N_ah).
	NahOpt int
	// ContentionBeta scales the bandwidth degradation per aggregator
	// beyond NahOpt: effBW = memBW / (1 + beta*max(0, k-NahOpt)).
	ContentionBeta float64
}

// DefaultOptions returns the options used by the shipped experiments.
func DefaultOptions() Options {
	return Options{
		Overlap:        false,
		MemCopyFactor:  2,
		NahOpt:         4,
		ContentionBeta: 0.35,
	}
}

// Validate reports an error for unusable options.
func (o Options) Validate() error {
	switch {
	case o.MemCopyFactor <= 0:
		return fmt.Errorf("sim: MemCopyFactor must be positive")
	case o.NahOpt <= 0:
		return fmt.Errorf("sim: NahOpt must be positive")
	case o.ContentionBeta < 0:
		return fmt.Errorf("sim: ContentionBeta must be non-negative")
	}
	return nil
}

// Message is one network transfer within a round. Intra-node transfers
// (SrcNode == DstNode) skip the NIC and only consume memory bandwidth.
type Message struct {
	SrcNode int
	DstNode int
	Bytes   int64
}

// IOOp is one storage access issued by an aggregator within a round.
type IOOp struct {
	Target     int   // storage target (OST) index
	Node       int   // compute node issuing the access
	Bytes      int64 // payload bytes
	Requests   int   // number of distinct requests this access costs
	Contiguous bool  // whether the access streams contiguously
	Write      bool  // direction; pricing is symmetric but totals separate
	// DelaySeconds is extra service time charged to the target beyond
	// the request/stream model — retry backoff or degraded-target
	// penalties from fault injection. Zero for healthy accesses.
	DelaySeconds float64
	// Degraded marks a breaker fast-fail: the issuer did not wait on
	// the target's normal service path (it streamed degraded instead,
	// priced through DelaySeconds), so a gray target-slowdown
	// multiplier does not apply — that waiting is exactly what the
	// open breaker avoids.
	Degraded bool
}

// Round kinds for blame attribution. A data round moves user bytes; a
// metadata round carries the request-list exchange that precedes them.
// Recovery traffic is marked by RunRecoveryRound, not by kind.
const (
	RoundData     = ""
	RoundMetadata = "metadata"
)

// Round is one step of a collective operation.
type Round struct {
	Messages []Message
	IOOps    []IOOp
	// Kind tags the round for critical-path blame attribution; the zero
	// value is a data round, RoundMetadata marks a request exchange.
	Kind string
}

// AggregatorPlacement declares one aggregator for the duration of an
// operation: which node hosts it, how large its aggregation buffer is, and
// how severely that buffer over-committed the host's available memory.
//
// PagedSeverity is the over-committed fraction of the buffer in [0, 1]:
// 0 means the aggregation buffer fits entirely in available memory, 1
// means none of it does and every buffer access pages. The node's
// effective memory bandwidth interpolates between full speed and
// PagedBandwidthFraction accordingly, so a mildly over-committed
// aggregator degrades mildly — which is what makes the baseline's
// performance fall off progressively as buffers shrink below the
// (variance-afflicted) available memory, as in the paper's Figures 6-8.
type AggregatorPlacement struct {
	Node          int
	BufferBytes   int64
	PagedSeverity float64
}

// Paged reports whether the placement over-commits its host at all.
func (a AggregatorPlacement) Paged() bool { return a.PagedSeverity > 0 }

// RoundCost is the engine's pricing of one round.
type RoundCost struct {
	CommTime float64 // network + memory bottleneck, seconds
	IOTime   float64 // storage bottleneck, seconds
	Time     float64 // round wall time (max or sum per Options.Overlap)
}

// Totals accumulates operation-level accounting.
type Totals struct {
	Rounds    int
	CommTime  float64
	IOTime    float64
	Time      float64
	NetBytes  int64 // bytes that crossed a NIC (inter-node only)
	ShufBytes int64 // all shuffled bytes incl. intra-node
	IOBytes   int64
	Requests  int
	// RecoverySeconds is the simulated time spent on failure handling:
	// detection stalls, reboot waits, and recovery rounds. Included in
	// Time; zero on fault-free runs.
	RecoverySeconds float64
	// RecoveryRounds counts rounds priced via RunRecoveryRound.
	RecoveryRounds int
	// PerNodeShuffle records shuffled bytes through each node that hosted
	// an aggregator or endpoint, for memory-pressure reporting.
	PerNodeShuffle map[int]int64
}

// Comm-phase binding resources for Binding.CommResource, aliased from
// the shared pricing core.
const (
	BindNICOut  = pricing.BindNICOut
	BindNICIn   = pricing.BindNICIn
	BindMem     = pricing.BindMem
	BindLatency = pricing.BindLatency
)

// Binding identifies the resources that bounded one round: the node whose
// communication load set the comm-phase time (and which of its resources
// dominated), and the storage target that set the I/O-phase time.
type Binding struct {
	// CommNode is the node with the largest communication time, -1 when
	// the round moved no data.
	CommNode int
	// CommResource is what bound CommNode: BindNICOut, BindNICIn, BindMem
	// or BindLatency (per-message latency exceeding every byte-stream
	// term). Empty when CommNode is -1.
	CommResource string
	// IOTarget is the storage target with the largest I/O time, -1 when
	// the round issued no I/O.
	IOTarget int
	// CommBound reports whether the comm phase (rather than I/O) set the
	// round's critical path. With overlapped phases it marks the larger
	// phase; without overlap both phases contribute and it marks the
	// larger contributor.
	CommBound bool
}

// String renders the binding compactly for trace views, e.g.
// "comm node 3 (mem)" or "io ost 5".
func (b Binding) String() string {
	comm := "idle"
	if b.CommNode >= 0 {
		comm = fmt.Sprintf("node %d (%s)", b.CommNode, b.CommResource)
	}
	io := "idle"
	if b.IOTarget >= 0 {
		io = fmt.Sprintf("ost %d", b.IOTarget)
	}
	if b.CommBound {
		return "comm " + comm + " | io " + io
	}
	return "io " + io + " | comm " + comm
}

// TraceEntry is one round's record when tracing is enabled.
type TraceEntry struct {
	Round     int
	Cost      RoundCost
	Messages  int
	IOOps     int
	CommBytes int64
	IOBytes   int64
	// Binding is the round's bottleneck attribution.
	Binding Binding
	// Recovery marks rounds priced via RunRecoveryRound (failure
	// handling, not user data movement).
	Recovery bool
	// Kind is the round's Round.Kind (RoundData or RoundMetadata).
	Kind string
	// CommPagedFrac is the fraction of CommTime the bound node spent
	// waiting on paging — the excess over the same traffic at full DRAM
	// speed. Zero when the bound node's aggregation buffers fit.
	CommPagedFrac float64
	// IOPagedFrac is the paging share of IOTime on the bound target:
	// accesses issued from paged nodes drain their buffers at degraded
	// speed, and this is the excess fraction so charged.
	IOPagedFrac float64
	// IODelayFrac is the share of IOTime that was injected fault delay
	// (retry backoff, degraded-target penalties) on the bound target.
	IODelayFrac float64
	// IODir is the round's storage direction: "write", "read", "mixed",
	// or "" when the round issued no I/O.
	IODir string
}

// Engine prices rounds against a machine design point and storage
// parameters. It is not safe for concurrent use.
type Engine struct {
	mc       machine.Config
	st       StorageParams
	opt      Options
	aggsPer  map[int]int     // node -> active aggregator count
	paged    map[int]float64 // node -> worst paging severity present
	slowdown map[int]float64 // node -> straggler bandwidth divisor (> 1)
	tgtSlow  map[int]float64 // target -> gray service-time multiplier (> 1)
	totals   Totals
	trace    []TraceEntry
	eo       *engineObs
	rec      *timeline.Recorder
	tlPhase  string // last phase journaled to the timeline recorder

	// runRound scratch, recycled round to round (the Engine is
	// single-goroutine by contract). The maps are drained into the
	// freelists at the start of each round; emitRound reads them
	// synchronously, so nothing outlives the call that filled it.
	scLoads     map[int]*nodeLoad
	scTargets   map[int]*targetLoad
	freeLoads   []*nodeLoad
	freeTargets []*targetLoad
	scNodeIDs   []int
	scTargetIDs []int
	scNodeTime  []float64
}

// Track id conventions for engine-emitted spans. Tid 1 holds the
// op/round/phase timeline (spans nest by containment); per-node shuffle
// work and per-target storage work get one track each so the Perfetto
// view shows exactly which resource was busy when.
const (
	TIDTimeline = 1
	tidNodeBase = 100
	tidOSTBase  = 200
)

// engineObs carries the engine's observability wiring: the sinks, the
// process track, base labels (e.g. strategy), and per-index instrument
// caches so the per-round hot path pays atomic updates, not lookups.
type engineObs struct {
	o    *obs.Observer
	pid  int
	base []obs.Label
	tids map[int]bool // tids already named
	cs   map[string]*obs.Counter
	hs   map[string]*obs.Histogram
}

// counter resolves (and caches) a counter with the base labels plus one
// indexed label like ost=3 or node=7; an empty labelKey means base labels
// only.
func (eo *engineObs) counter(metric, labelKey string, idx int) *obs.Counter {
	k := metric + "\x00" + strconv.Itoa(idx)
	if c, ok := eo.cs[k]; ok {
		return c
	}
	labels := append([]obs.Label(nil), eo.base...)
	if labelKey != "" {
		labels = append(labels, obs.L(labelKey, strconv.Itoa(idx)))
	}
	c := eo.o.Counter(metric, labels...)
	eo.cs[k] = c
	return c
}

// histogram is counter's histogram counterpart; an empty labelKey means
// base labels only.
func (eo *engineObs) histogram(metric, labelKey string, idx int) *obs.Histogram {
	k := metric + "\x00" + strconv.Itoa(idx)
	if h, ok := eo.hs[k]; ok {
		return h
	}
	labels := append([]obs.Label(nil), eo.base...)
	if labelKey != "" {
		labels = append(labels, obs.L(labelKey, strconv.Itoa(idx)))
	}
	h := eo.o.Histogram(metric, labels...)
	eo.hs[k] = h
	return h
}

// nameTID lazily names a thread track once.
func (eo *engineObs) nameTID(tid int, name string) {
	if eo.tids[tid] {
		return
	}
	eo.tids[tid] = true
	eo.o.Tracer().SetThreadName(eo.pid, tid, name)
}

// SetObserver attaches observability sinks to the engine. Spans are
// emitted on process track pid with simulated-time timestamps; metrics
// carry the base labels (typically the strategy name) plus a per-node or
// per-target label. A nil observer detaches.
func (e *Engine) SetObserver(o *obs.Observer, pid int, base ...obs.Label) {
	if o == nil {
		e.eo = nil
		return
	}
	e.eo = &engineObs{
		o:    o,
		pid:  pid,
		base: base,
		tids: map[int]bool{},
		cs:   map[string]*obs.Counter{},
		hs:   map[string]*obs.Histogram{},
	}
	e.eo.nameTID(TIDTimeline, "rounds")
}

// SetTimeline attaches a timeline recorder: every round samples
// per-node busy time and NIC bytes and per-target busy time and queue
// depth into it, and phase changes (metadata / data / recovery) land
// in its journal. Recording is pure observation — pricing is
// unchanged. A nil recorder (the default) detaches.
func (e *Engine) SetTimeline(rec *timeline.Recorder) {
	e.rec = rec
	e.tlPhase = ""
}

// Timeline returns the attached recorder, nil when profiling is off.
func (e *Engine) Timeline() *timeline.Recorder { return e.rec }

// recordRound samples one priced round into the timeline recorder.
// Spans follow the trace-emission convention: communication starts at
// the round start; storage starts after it, or alongside it when
// phases overlap.
func (e *Engine) recordRound(start float64, rc RoundCost, kind string, recovery bool,
	nodeIDs []int, nodeTime []float64, loads map[int]*nodeLoad,
	targetIDs []int, targets map[int]*targetLoad) {
	rec := e.rec
	phase := "data"
	switch {
	case recovery:
		phase = "recovery"
	case kind == RoundMetadata:
		phase = "metadata"
	}
	if phase != e.tlPhase {
		e.tlPhase = phase
		rec.J().Record(start, timeline.EvPhase, "run", phase)
	}
	commStart, ioStart := start, start+rc.CommTime
	if e.opt.Overlap {
		ioStart = start
	}
	for i, n := range nodeIDs {
		ent := timeline.Ent("node", n)
		rec.AddSpan(ent, "busy", commStart, commStart+nodeTime[i])
		l := loads[n]
		rec.AddRate(ent, "nic_bytes", commStart, float64(l.in+l.out))
	}
	for _, t := range targetIDs {
		ent := timeline.Ent("ost", t)
		load := targets[t]
		rec.AddSpan(ent, "busy", ioStart, ioStart+load.time)
		rec.AddGauge(ent, "queue", ioStart, float64(load.requests))
	}
}

// NewEngine builds an engine. The machine config, storage parameters and
// options are validated once here.
func NewEngine(mc machine.Config, st StorageParams, opt Options) (*Engine, error) {
	if err := mc.Validate(); err != nil {
		return nil, err
	}
	if err := st.Validate(); err != nil {
		return nil, err
	}
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	return &Engine{
		mc:        mc,
		st:        st,
		opt:       opt,
		aggsPer:   map[int]int{},
		paged:     map[int]float64{},
		slowdown:  map[int]float64{},
		tgtSlow:   map[int]float64{},
		totals:    Totals{PerNodeShuffle: map[int]int64{}},
		scLoads:   map[int]*nodeLoad{},
		scTargets: map[int]*targetLoad{},
	}, nil
}

// SetAggregators declares the aggregator placement for the operation being
// priced. It resets any previous placement. Severities outside [0,1] are
// clamped.
func (e *Engine) SetAggregators(aggs []AggregatorPlacement) {
	e.aggsPer = map[int]int{}
	e.paged = map[int]float64{}
	for _, a := range aggs {
		e.aggsPer[a.Node]++
		s := a.PagedSeverity
		if s < 0 {
			s = 0
		}
		if s > 1 {
			s = 1
		}
		if s > e.paged[a.Node] {
			e.paged[a.Node] = s
		}
		if eo := e.eo; eo != nil {
			eo.counter("sim.aggregators", "node", a.Node).Inc()
			// Resolve the paging counter even at zero severity so every
			// aggregator node reports the family (value 0 = no paging).
			paging := eo.counter("memmodel.paging_events", "node", a.Node)
			if s > 0 {
				paging.Inc()
				eo.counter("memmodel.paged_bytes", "node", a.Node).Add(int64(s * float64(a.BufferBytes)))
			}
		}
	}
}

// SetNodeSlowdown declares a straggler: node's NIC and DRAM bandwidth
// are divided by factor until the next call. Factor <= 1 clears it.
func (e *Engine) SetNodeSlowdown(node int, factor float64) {
	if factor <= 1 {
		delete(e.slowdown, node)
		return
	}
	e.slowdown[node] = factor
}

// SetNodePaged updates one node's paging severity mid-operation (e.g.
// after a memory collapse) without re-declaring the whole aggregator
// placement. Severity is clamped to [0, 1].
func (e *Engine) SetNodePaged(node int, severity float64) {
	if severity < 0 {
		severity = 0
	}
	if severity > 1 {
		severity = 1
	}
	e.paged[node] = severity
}

// SetTargetSlowdown declares a gray storage degradation: service time
// for accesses to target is multiplied by factor until the next call.
// Factor <= 1 clears it. The excess over healthy service time is
// charged as injected delay, so blame attribution groups it with the
// other fault-induced waiting rather than with honest streaming work.
func (e *Engine) SetTargetSlowdown(target int, factor float64) {
	if factor <= 1 {
		delete(e.tgtSlow, target)
		return
	}
	e.tgtSlow[target] = factor
}

// targetSlowdown returns target's gray service-time multiplier (1 = healthy).
func (e *Engine) targetSlowdown(target int) float64 {
	if f, ok := e.tgtSlow[target]; ok {
		return f
	}
	return 1
}

// nodeSlowdown returns node's straggler bandwidth divisor (1 = healthy).
func (e *Engine) nodeSlowdown(node int) float64 {
	if f, ok := e.slowdown[node]; ok {
		return f
	}
	return 1
}

// pagedSlowdown returns the multiplicative slowdown of everything an
// aggregator on this node touches once its buffer pages: a paged
// aggregation buffer stalls the copy into/out of the buffer, the NIC
// transfers that feed it, and the storage accesses that drain it, because
// every one of those reads or writes the faulting pages. Severity s
// interpolates linearly between full speed (1x) and running the buffer at
// PagedBandwidthFraction of DRAM speed.
func (e *Engine) pagedSlowdown(node int) float64 {
	return pricing.PagedSlowdown(e.paged[node], e.mc.PagedBandwidthFraction)
}

// effMemBW returns the node's effective off-chip bandwidth for shuffle
// traffic given paging state and aggregator contention.
func (e *Engine) effMemBW(node int) float64 {
	return pricing.EffMemBW(e.mc.MemBandwidth, e.pagedSlowdown(node), e.nodeSlowdown(node),
		e.aggsPer[node], e.opt.NahOpt, e.opt.ContentionBeta)
}

// nodeLoad accumulates one node's traffic within a round.
type nodeLoad struct {
	in, out int64 // NIC bytes
	mem     int64 // DRAM bytes
	msgs    int
}

// targetLoad accumulates one storage target's work within a round.
type targetLoad struct {
	time     float64
	bytes    int64
	requests int
	seek     int64 // bytes of noncontiguous accesses
	// pagedExcess is service time beyond what the same accesses would
	// cost with unpaged issuing nodes; delay is injected fault delay.
	// Both are components of time, kept separate for blame attribution.
	pagedExcess float64
	delay       float64
}

// RunRound prices one round and accumulates it into the totals.
func (e *Engine) RunRound(r Round) RoundCost { return e.runRound(r, false) }

// RunRecoveryRound prices a round of failure-handling traffic (e.g. the
// metadata re-exchange after an aggregator failover). It is priced by
// the same bottleneck model but attributed to recovery in the totals
// and trace.
func (e *Engine) RunRecoveryRound(r Round) RoundCost { return e.runRound(r, true) }

// AggMessage is a bundle of same-route messages within a round: the
// total payload and the number of positive-byte point-to-point messages
// it stands for. The analytical fast path prices one AggMessage per
// (source node, destination node) pair instead of one Message per rank.
type AggMessage struct {
	SrcNode int
	DstNode int
	Bytes   int64 // total payload across the constituent messages
	Count   int   // number of positive-byte constituent messages
}

// Exchange is an all-to-all bundle within a round: every source entry
// ships its bytes to every destination slot. It is the aggregate form of
// the metadata scatter of collective I/O — each member rank sending its
// flattened extent list to each group aggregator — whose per-route form
// is dense (source nodes × aggregator nodes) and therefore quadratic to
// even enumerate at scale. The engine prices an Exchange in
// O(sources + destinations) from the row and column totals.
type Exchange struct {
	Srcs []ExchangeSrc
	Dsts []ExchangeDst
}

// ExchangeSrc is one sending node's side of an Exchange.
type ExchangeSrc struct {
	Node  int
	Bytes int64 // positive payload total across the node's sending ranks
	Count int   // sending ranks (each emits one positive-byte message per slot)
}

// ExchangeDst is one receiving node's side of an Exchange.
type ExchangeDst struct {
	Node  int
	Slots int // receiving slots (aggregators) hosted on the node
}

// AggRound is the aggregate form of a Round: per-route message bundles
// and all-to-all exchanges, plus the same per-target IOOps (storage
// accesses are already aggregated per target on the byte path, so they
// need no new form).
type AggRound struct {
	Messages  []AggMessage
	Exchanges []Exchange
	IOOps     []IOOp
	// Kind tags the round for blame attribution, as in Round.
	Kind string
	// TraceMessages is the number of point-to-point messages the round
	// stands for including zero-byte ones the engine skips — what
	// TraceEntry.Messages reports on the byte path. Zero means "use the
	// sum of Count".
	TraceMessages int
}

// RunAggRound prices one aggregate round and accumulates it into the
// totals, exactly as if RunRound had been fed the constituent
// point-to-point messages. The engine reduces messages to per-node byte
// loads before pricing, so the only rounding difference is the DRAM
// charge int64(MemCopyFactor*bytes), computed once per bundle instead of
// once per message: for integral MemCopyFactor (the default 2) the two
// are bit-identical; otherwise they differ by at most one byte per
// constituent message.
func (e *Engine) RunAggRound(r AggRound) RoundCost { return e.runAggRound(r, false) }

// RunAggRecoveryRound is RunAggRound attributed to recovery: the
// aggregate form of RunRecoveryRound, used by the fault-aware fast path
// to price a metadata re-exchange after a failover as per-node bundles
// instead of one message per surviving contributor.
func (e *Engine) RunAggRecoveryRound(r AggRound) RoundCost { return e.runAggRound(r, true) }

func (e *Engine) runAggRound(r AggRound, recovery bool) RoundCost {
	e.beginRound()
	var commBytes int64
	nMsgs := 0
	for _, m := range r.Messages {
		if m.Count < 0 {
			panic("sim: negative message count")
		}
		e.accMessage(m.SrcNode, m.DstNode, m.Bytes, m.Count)
		commBytes += m.Bytes
		nMsgs += m.Count
	}
	for _, x := range r.Exchanges {
		cb, n := e.accExchange(x)
		commBytes += cb
		nMsgs += n
	}
	if r.TraceMessages > 0 {
		nMsgs = r.TraceMessages
	}
	var ioBytes int64
	ioDir := ""
	for _, op := range r.IOOps {
		e.accIOOp(op)
		ioBytes += op.Bytes
		ioDir = mergeIODir(ioDir, op.Write)
	}
	return e.finishRound(r.Kind, recovery, nMsgs, len(r.IOOps), commBytes, ioBytes, ioDir)
}

// beginRound recycles the previous round's scratch: drained maps feed
// the freelists so steady-state rounds allocate nothing.
func (e *Engine) beginRound() {
	for n, l := range e.scLoads {
		*l = nodeLoad{}
		e.freeLoads = append(e.freeLoads, l)
		delete(e.scLoads, n)
	}
	for t, tl := range e.scTargets {
		*tl = targetLoad{}
		e.freeTargets = append(e.freeTargets, tl)
		delete(e.scTargets, t)
	}
}

// load returns the round's accumulator for a node, creating it from the
// freelist on first touch.
func (e *Engine) load(n int) *nodeLoad {
	l := e.scLoads[n]
	if l == nil {
		if k := len(e.freeLoads); k > 0 {
			l = e.freeLoads[k-1]
			e.freeLoads = e.freeLoads[:k-1]
		} else {
			l = &nodeLoad{}
		}
		e.scLoads[n] = l
	}
	return l
}

// target is load's counterpart for storage targets.
func (e *Engine) target(t int) *targetLoad {
	tl := e.scTargets[t]
	if tl == nil {
		if k := len(e.freeTargets); k > 0 {
			tl = e.freeTargets[k-1]
			e.freeTargets = e.freeTargets[:k-1]
		} else {
			tl = &targetLoad{}
		}
		e.scTargets[t] = tl
	}
	return tl
}

// accMessage accumulates a message bundle (count positive-byte messages
// totalling bytes on one src→dst route) into the round's node loads.
// The byte path calls it with count 1 per Message.
func (e *Engine) accMessage(src, dst int, bytes int64, count int) {
	if bytes < 0 {
		panic("sim: negative message size")
	}
	if bytes == 0 {
		return
	}
	e.totals.ShufBytes += bytes
	e.totals.PerNodeShuffle[src] += bytes
	if src == dst {
		// Intra-node: two extra DRAM crossings, no NIC.
		l := e.load(src)
		l.mem += pricing.IntraMemCopy(e.opt.MemCopyFactor, bytes)
		l.msgs += count
		return
	}
	e.totals.NetBytes += bytes
	e.totals.PerNodeShuffle[dst] += bytes
	sl, dl := e.load(src), e.load(dst)
	sl.out += bytes
	dl.in += bytes
	sl.mem += pricing.MemCopy(e.opt.MemCopyFactor, bytes)
	dl.mem += pricing.MemCopy(e.opt.MemCopyFactor, bytes)
	sl.msgs += count
	dl.msgs += count
}

// accExchange accumulates an all-to-all bundle into the round's node
// loads without enumerating routes: each endpoint's load depends only on
// its own entry and the exchange totals (minus its intra-node share), so
// the cost is linear in endpoints. Per-node sums equal what accMessage
// over the dense (src, dst) product would produce; as with AggMessage
// bundles, the DRAM charge rounds once per aggregate, bit-identical for
// integral MemCopyFactor. Returns the total bytes moved and the number
// of constituent point-to-point messages.
func (e *Engine) accExchange(x Exchange) (commBytes int64, msgs int) {
	var slots int64
	for _, d := range x.Dsts {
		if d.Slots < 0 {
			panic("sim: negative exchange slots")
		}
		slots += int64(d.Slots)
	}
	var totalBytes int64
	totalCount := 0
	for _, s := range x.Srcs {
		if s.Bytes < 0 {
			panic("sim: negative exchange size")
		}
		if s.Count < 0 {
			panic("sim: negative exchange count")
		}
		totalBytes += s.Bytes
		totalCount += s.Count
	}
	if slots == 0 || totalBytes == 0 {
		return 0, 0
	}
	// Intra-node split inputs: receiving slots per source node, sent
	// bytes per destination node.
	slotsAt := make(map[int]int64, len(x.Dsts))
	for _, d := range x.Dsts {
		slotsAt[d.Node] += int64(d.Slots)
	}
	sentAt := make(map[int]ExchangeSrc, len(x.Srcs))
	for _, s := range x.Srcs {
		a := sentAt[s.Node]
		a.Bytes += s.Bytes
		a.Count += s.Count
		sentAt[s.Node] = a
	}
	f := e.opt.MemCopyFactor
	for _, s := range x.Srcs {
		if s.Bytes == 0 {
			continue
		}
		e.totals.ShufBytes += s.Bytes * slots
		e.totals.PerNodeShuffle[s.Node] += s.Bytes * slots
		l := e.load(s.Node)
		if ms := slotsAt[s.Node]; ms > 0 {
			// Intra-node deliveries: two extra DRAM crossings, no NIC.
			l.mem += pricing.IntraMemCopy(f, s.Bytes*ms)
			l.msgs += s.Count * int(ms)
		}
		if inter := slots - slotsAt[s.Node]; inter > 0 {
			e.totals.NetBytes += s.Bytes * inter
			l.out += s.Bytes * inter
			l.mem += pricing.MemCopy(f, s.Bytes*inter)
			l.msgs += s.Count * int(inter)
		}
		commBytes += s.Bytes * slots
		msgs += s.Count * int(slots)
	}
	for _, d := range x.Dsts {
		if d.Slots == 0 {
			continue
		}
		own := sentAt[d.Node]
		recvBytes := (totalBytes - own.Bytes) * int64(d.Slots)
		if recvBytes == 0 {
			continue
		}
		e.totals.PerNodeShuffle[d.Node] += recvBytes
		l := e.load(d.Node)
		l.in += recvBytes
		l.mem += pricing.MemCopy(f, recvBytes)
		l.msgs += (totalCount - own.Count) * d.Slots
	}
	return commBytes, msgs
}

// accIOOp accumulates one storage access into the round's node and
// target loads. Storage accesses also traverse the issuing node's NIC
// and DRAM.
func (e *Engine) accIOOp(op IOOp) {
	if op.Bytes < 0 {
		panic("sim: negative I/O size")
	}
	if op.Target < 0 || op.Target >= e.st.Targets {
		panic(fmt.Sprintf("sim: I/O op for target %d outside [0,%d)", op.Target, e.st.Targets))
	}
	if op.Bytes == 0 && op.Requests == 0 {
		return
	}
	e.totals.IOBytes += op.Bytes
	e.totals.Requests += op.Requests
	l := e.load(op.Node)
	if op.Write {
		l.out += op.Bytes
	} else {
		l.in += op.Bytes
	}
	l.mem += pricing.MemCopy(e.opt.MemCopyFactor, op.Bytes)
	tl := e.target(op.Target)
	if op.DelaySeconds < 0 {
		panic("sim: negative I/O delay")
	}
	// A paged or straggling issuing node drains/fills its aggregation
	// buffer at degraded speed, throttling the storage access it
	// drives; injected retry/degradation delay is charged on top.
	unpaged := e.st.pricing().ServiceTime(op.Bytes, op.Requests, op.Contiguous, op.Write) * e.nodeSlowdown(op.Node)
	delay := op.DelaySeconds
	// A gray-degraded target serves every access slower; the excess
	// over healthy service counts as fault delay, not honest work.
	// Degraded (breaker fast-fail) accesses never waited on the
	// slowed service path, so they skip the multiplier.
	if f := e.targetSlowdown(op.Target); f > 1 && !op.Degraded {
		delay += unpaged * (f - 1)
	}
	tl.time += unpaged*e.pagedSlowdown(op.Node) + delay
	tl.pagedExcess += unpaged * (e.pagedSlowdown(op.Node) - 1)
	tl.delay += delay
	tl.bytes += op.Bytes
	tl.requests += op.Requests
	if !op.Contiguous {
		tl.seek += op.Bytes
	}
	if eo := e.eo; eo != nil {
		metric := "pfs.bytes_read"
		if op.Write {
			metric = "pfs.bytes_written"
		}
		eo.counter(metric, "ost", op.Target).Add(op.Bytes)
		eo.counter("pfs.requests", "ost", op.Target).Add(int64(op.Requests))
		if op.Contiguous {
			eo.counter("pfs.stream_bytes", "ost", op.Target).Add(op.Bytes)
		} else {
			eo.counter("pfs.noncontig_bytes", "ost", op.Target).Add(op.Bytes)
		}
	}
}

// mergeIODir folds one access's direction into the round's direction
// tag: "write", "read", "mixed", or "" when no I/O was seen yet.
func mergeIODir(dir string, write bool) string {
	d := "read"
	if write {
		d = "write"
	}
	switch dir {
	case "":
		return d
	case d:
		return dir
	default:
		return "mixed"
	}
}

func (e *Engine) runRound(r Round, recovery bool) RoundCost {
	e.beginRound()
	for _, m := range r.Messages {
		e.accMessage(m.SrcNode, m.DstNode, m.Bytes, 1)
	}
	for _, op := range r.IOOps {
		e.accIOOp(op)
	}
	var commBytes, ioBytes int64
	for _, m := range r.Messages {
		commBytes += m.Bytes
	}
	ioDir := ""
	for _, op := range r.IOOps {
		ioBytes += op.Bytes
		ioDir = mergeIODir(ioDir, op.Write)
	}
	return e.finishRound(r.Kind, recovery, len(r.Messages), len(r.IOOps), commBytes, ioBytes, ioDir)
}

// finishRound prices the accumulated node and target loads, folds the
// round into the totals, and publishes trace/timeline/observability
// records. traceMsgs/traceOps are the constituent counts reported in
// the trace entry; commBytes/ioBytes/ioDir summarize the round's
// traffic for the same consumers.
func (e *Engine) finishRound(kind string, recovery bool, traceMsgs, traceOps int, commBytes, ioBytes int64, ioDir string) RoundCost {
	loads, targets := e.scLoads, e.scTargets

	// Node iteration is sorted so bottleneck ties and emitted spans are
	// deterministic run to run.
	nodeIDs := e.scNodeIDs[:0]
	for n := range loads {
		nodeIDs = append(nodeIDs, n)
	}
	sort.Ints(nodeIDs)
	e.scNodeIDs = nodeIDs
	targetIDs := e.scTargetIDs[:0]
	for t := range targets {
		targetIDs = append(targetIDs, t)
	}
	sort.Ints(targetIDs)
	e.scTargetIDs = targetIDs

	binding := Binding{CommNode: -1, IOTarget: -1}
	var comm, commPagedFrac float64
	if cap(e.scNodeTime) < len(nodeIDs) {
		e.scNodeTime = make([]float64, len(nodeIDs))
	}
	nodeTime := e.scNodeTime[:len(nodeIDs)] // every slot is written below
	for i, n := range nodeIDs {
		l := loads[n]
		slow := e.pagedSlowdown(n) * e.nodeSlowdown(n)
		t, res, tlat := pricing.CommTime(pricing.NodeLoad{In: l.in, Out: l.out, Mem: l.mem, Msgs: l.msgs},
			e.mc.NICBandwidth, slow, e.effMemBW(n), e.mc.NetLatency)
		nodeTime[i] = t
		if t > comm {
			comm = t
			binding.CommNode, binding.CommResource = n, res
			commPagedFrac = pricing.PagedCommFraction(t, tlat, e.pagedSlowdown(n))
		}
	}
	var io, ioPagedFrac, ioDelayFrac float64
	for _, t := range targetIDs {
		if tt := targets[t].time; tt > io {
			io = tt
			binding.IOTarget = t
			ioPagedFrac, ioDelayFrac = 0, 0
			if tt > 0 {
				ioPagedFrac = targets[t].pagedExcess / tt
				ioDelayFrac = targets[t].delay / tt
			}
		}
	}
	binding.CommBound = comm >= io

	rc := RoundCost{CommTime: comm, IOTime: io}
	rc.Time = pricing.RoundWall(comm, io, e.opt.Overlap)

	start := e.totals.Time
	round := e.totals.Rounds
	e.totals.Rounds++
	e.totals.CommTime += comm
	e.totals.IOTime += io
	e.totals.Time += rc.Time
	if recovery {
		e.totals.RecoveryRounds++
		e.totals.RecoverySeconds += rc.Time
	}

	if e.opt.Trace {
		e.trace = append(e.trace, TraceEntry{
			Round:         round,
			Cost:          rc,
			Messages:      traceMsgs,
			IOOps:         traceOps,
			CommBytes:     commBytes,
			IOBytes:       ioBytes,
			Binding:       binding,
			Recovery:      recovery,
			Kind:          kind,
			CommPagedFrac: commPagedFrac,
			IOPagedFrac:   ioPagedFrac,
			IODelayFrac:   ioDelayFrac,
			IODir:         ioDir,
		})
	}
	if e.rec != nil {
		e.recordRound(start, rc, kind, recovery, nodeIDs, nodeTime, loads, targetIDs, targets)
	}
	if eo := e.eo; eo != nil {
		eo.emitRound(roundEmit{
			round:    round,
			start:    start,
			rc:       rc,
			overlap:  e.opt.Overlap,
			binding:  binding,
			nodeIDs:  nodeIDs,
			nodeTime: nodeTime,
			loads:    loads,
			targets:  targets, targetIDs: targetIDs,
			commBytes: commBytes, ioBytes: ioBytes,
			recovery:      recovery,
			kind:          kind,
			commPagedFrac: commPagedFrac,
			ioPagedFrac:   ioPagedFrac,
			ioDelayFrac:   ioDelayFrac,
			ioDir:         ioDir,
		})
	}
	return rc
}

// roundEmit bundles everything emitRound publishes about one round.
type roundEmit struct {
	round     int
	start     float64
	rc        RoundCost
	overlap   bool
	binding   Binding
	nodeIDs   []int
	nodeTime  []float64
	loads     map[int]*nodeLoad
	targetIDs []int
	targets   map[int]*targetLoad
	commBytes int64
	ioBytes   int64
	recovery  bool
	kind      string

	commPagedFrac float64
	ioPagedFrac   float64
	ioDelayFrac   float64
	ioDir         string
}

// formatFrac renders a blame fraction compactly, "" for zero (the
// attribute is then omitted to keep traces small).
func formatFrac(f float64) string {
	if f <= 0 {
		return ""
	}
	return strconv.FormatFloat(f, 'g', 6, 64)
}

// emitRound publishes one round's spans and counters: the round and its
// comm/io phases on the timeline track, per-node shuffle spans, and
// per-target storage spans, all at simulated time. Phase spans carry the
// attributes the critical-path analyzer consumes: "phase" (shuffle,
// metadata, read, write), "paged_frac" and "delay_frac".
func (eo *engineObs) emitRound(r roundEmit) {
	eo.counter("sim.rounds", "", 0).Inc()
	eo.counter("sim.shuffle_bytes", "", 0).Add(r.commBytes)
	eo.counter("sim.io_bytes", "", 0).Add(r.ioBytes)
	eo.histogram("sim.round_seconds", "", 0).Observe(r.rc.Time)
	if r.recovery {
		eo.counter("sim.recovery_rounds", "", 0).Inc()
		eo.histogram("sim.recovery_seconds", "", 0).Observe(r.rc.Time)
	}
	for i, n := range r.nodeIDs {
		l := r.loads[n]
		eo.counter("net.bytes_out", "node", n).Add(l.out)
		eo.counter("net.bytes_in", "node", n).Add(l.in)
		eo.counter("net.mem_bytes", "node", n).Add(l.mem)
		eo.counter("net.msgs", "node", n).Add(int64(l.msgs))
		eo.histogram("net.node_seconds", "node", n).Observe(r.nodeTime[i])
	}
	for _, t := range r.targetIDs {
		tl := r.targets[t]
		eo.histogram("pfs.queue_depth", "ost", t).Observe(float64(tl.requests))
		eo.histogram("pfs.target_seconds", "ost", t).Observe(tl.time)
	}

	tr := eo.o.Tracer()
	if tr == nil {
		return
	}
	name := fmt.Sprintf("round %d", r.round)
	kind := r.kind
	if kind == RoundData {
		kind = "data"
	}
	if r.recovery {
		name = fmt.Sprintf("recovery round %d", r.round)
		kind = "recovery"
	}
	roundSpan := tr.Begin(eo.pid, TIDTimeline, name, r.start,
		obs.A("binding", r.binding.String()),
		obs.A("kind", kind),
		obs.A("comm_bytes", strconv.FormatInt(r.commBytes, 10)),
		obs.A("io_bytes", strconv.FormatInt(r.ioBytes, 10)))
	roundSpan.End(r.start + r.rc.Time)
	commStart, ioStart := r.start, r.start+r.rc.CommTime
	if r.overlap {
		ioStart = r.start
	}
	if r.rc.CommTime > 0 {
		commPhase := "shuffle"
		if r.kind == RoundMetadata {
			commPhase = "metadata"
		}
		span := tr.Begin(eo.pid, TIDTimeline, "comm", commStart,
			obs.A("phase", commPhase),
			obs.A("bound_by", fmt.Sprintf("node %d (%s)", r.binding.CommNode, r.binding.CommResource)))
		if f := formatFrac(r.commPagedFrac); f != "" {
			span.Attr("paged_frac", f)
		}
		span.End(commStart + r.rc.CommTime)
	}
	if r.rc.IOTime > 0 {
		span := tr.Begin(eo.pid, TIDTimeline, "io", ioStart,
			obs.A("phase", r.ioDir),
			obs.A("bound_by", fmt.Sprintf("ost %d", r.binding.IOTarget)))
		if f := formatFrac(r.ioPagedFrac); f != "" {
			span.Attr("paged_frac", f)
		}
		if f := formatFrac(r.ioDelayFrac); f != "" {
			span.Attr("delay_frac", f)
		}
		span.End(ioStart + r.rc.IOTime)
	}
	for i, n := range r.nodeIDs {
		if r.nodeTime[i] <= 0 {
			continue
		}
		l := r.loads[n]
		eo.nameTID(tidNodeBase+n, fmt.Sprintf("node %d shuffle", n))
		span := tr.Begin(eo.pid, tidNodeBase+n, "shuffle", commStart,
			obs.A("out_bytes", strconv.FormatInt(l.out, 10)),
			obs.A("in_bytes", strconv.FormatInt(l.in, 10)),
			obs.A("mem_bytes", strconv.FormatInt(l.mem, 10)),
			obs.A("msgs", strconv.Itoa(l.msgs)))
		span.End(commStart + r.nodeTime[i])
	}
	for _, t := range r.targetIDs {
		tl := r.targets[t]
		if tl.time <= 0 {
			continue
		}
		eo.nameTID(tidOSTBase+t, fmt.Sprintf("ost %d", t))
		span := tr.Begin(eo.pid, tidOSTBase+t, "io", ioStart,
			obs.A("bytes", strconv.FormatInt(tl.bytes, 10)),
			obs.A("requests", strconv.Itoa(tl.requests)),
			obs.A("seek_bytes", strconv.FormatInt(tl.seek, 10)))
		span.End(ioStart + tl.time)
	}
}

// Trace returns the per-round records collected so far; empty unless
// Options.Trace was set.
func (e *Engine) Trace() []TraceEntry {
	return append([]TraceEntry(nil), e.trace...)
}

// AddLatency charges a flat latency (e.g. collective metadata exchange)
// to the operation without any byte movement.
func (e *Engine) AddLatency(seconds float64) {
	if seconds < 0 {
		panic("sim: negative latency")
	}
	e.totals.Time += seconds
	e.totals.CommTime += seconds
}

// AddRecoveryLatency charges time spent purely on failure handling — a
// detection delay before a failover or the baseline's reboot stall —
// attributing it to recovery in the totals and, when tracing, as a span
// named after kind on the timeline track.
func (e *Engine) AddRecoveryLatency(seconds float64, kind string) {
	if seconds < 0 {
		panic("sim: negative recovery latency")
	}
	if seconds == 0 {
		return
	}
	start := e.totals.Time
	e.totals.Time += seconds
	e.totals.RecoverySeconds += seconds
	if e.rec != nil {
		e.rec.J().Record(start, timeline.EvStall, "run",
			fmt.Sprintf("%s (%.4gs)", kind, seconds))
		e.rec.AddSpan("run", "stall", start, start+seconds)
	}
	if eo := e.eo; eo != nil {
		eo.counter("sim.recovery_stalls", "", 0).Inc()
		eo.histogram("sim.recovery_seconds", "", 0).Observe(seconds)
		if tr := eo.o.Tracer(); tr != nil {
			span := tr.Begin(eo.pid, TIDTimeline, "recovery: "+kind, start,
				obs.A("phase", "recovery"))
			span.End(start + seconds)
		}
	}
}

// Totals returns a copy of the accumulated accounting.
func (e *Engine) Totals() Totals {
	t := e.totals
	t.PerNodeShuffle = make(map[int]int64, len(e.totals.PerNodeShuffle))
	for k, v := range e.totals.PerNodeShuffle {
		t.PerNodeShuffle[k] = v
	}
	return t
}

// Elapsed returns the operation's accumulated simulated seconds.
func (e *Engine) Elapsed() float64 { return e.totals.Time }

// Bandwidth returns userBytes / elapsed time in bytes/second, or 0 when no
// time has elapsed.
func (e *Engine) Bandwidth(userBytes int64) float64 {
	if e.totals.Time == 0 {
		return 0
	}
	return float64(userBytes) / e.totals.Time
}
