// Package sim computes the simulated time of collective I/O operations.
//
// A collective I/O strategy (two-phase or memory-conscious) executes as a
// sequence of rounds; in each round aggregators exchange data with compute
// processes over the network and issue reads/writes to storage targets.
// The engine prices each round by its bottleneck resources:
//
//   - NIC injection/ejection time per node (bytes through the NIC / NIC BW,
//     plus a per-message latency charge),
//   - off-chip memory time per node (every byte shuffled through a node
//     crosses DRAM MemCopyFactor times; the node's memory bandwidth is
//     degraded when aggregation buffers exceed available memory — paging —
//     and when more aggregators than the per-node optimum N_ah are active —
//     contention),
//   - storage time per target (per-request overhead plus streaming time,
//     inflated for noncontiguous access).
//
// Round time is the maximum (overlapped phases) or the sum (classic
// blocking two-phase) of the communication and storage bottlenecks;
// operation time is the sum over rounds. Reported bandwidth is user bytes
// divided by operation time, which is how IOR and coll_perf report.
package sim

import (
	"fmt"
	"math"

	"mcio/internal/machine"
)

// StorageParams prices accesses to the parallel-file-system targets.
type StorageParams struct {
	Targets     int     // number of storage targets (OSTs)
	TargetBW    float64 // streaming write bandwidth per target, bytes/s
	ReqOverhead float64 // fixed cost per storage request, seconds (seek+RPC)
	// NoncontigFactor inflates the streaming time of an access marked
	// noncontiguous (>1: noncontiguous I/O is slower per byte).
	NoncontigFactor float64
	// ReadBWFactor scales TargetBW for read accesses; the zero value means
	// symmetric (factor 1).
	ReadBWFactor float64
}

// readBW returns the effective streaming bandwidth for reads.
func (s StorageParams) readBW() float64 {
	if s.ReadBWFactor <= 0 {
		return s.TargetBW
	}
	return s.TargetBW * s.ReadBWFactor
}

// Validate reports an error for parameters the engine cannot price.
func (s StorageParams) Validate() error {
	switch {
	case s.Targets <= 0:
		return fmt.Errorf("sim: Targets = %d, must be positive", s.Targets)
	case s.TargetBW <= 0:
		return fmt.Errorf("sim: TargetBW must be positive")
	case s.ReqOverhead < 0:
		return fmt.Errorf("sim: ReqOverhead must be non-negative")
	case s.NoncontigFactor < 1:
		return fmt.Errorf("sim: NoncontigFactor must be >= 1")
	case s.ReadBWFactor < 0:
		return fmt.Errorf("sim: ReadBWFactor must be non-negative")
	}
	return nil
}

// Options tunes engine behaviour not tied to a machine or storage preset.
type Options struct {
	// Overlap makes communication and I/O phases of one round proceed
	// concurrently (pipelined collective buffering). ROMIO's classic
	// two-phase is blocking, so the default (false) sums the phases.
	Overlap bool
	// Trace records a TraceEntry per round, retrievable via Trace().
	// Off by default: operations can run hundreds of rounds.
	Trace bool
	// MemCopyFactor is how many times each shuffled byte crosses a node's
	// DRAM (copy into the aggregation buffer and out to the NIC ≈ 2).
	MemCopyFactor float64
	// NahOpt is the number of aggregators one node can host before
	// off-chip contention degrades bandwidth (the paper's N_ah).
	NahOpt int
	// ContentionBeta scales the bandwidth degradation per aggregator
	// beyond NahOpt: effBW = memBW / (1 + beta*max(0, k-NahOpt)).
	ContentionBeta float64
}

// DefaultOptions returns the options used by the shipped experiments.
func DefaultOptions() Options {
	return Options{
		Overlap:        false,
		MemCopyFactor:  2,
		NahOpt:         4,
		ContentionBeta: 0.35,
	}
}

// Validate reports an error for unusable options.
func (o Options) Validate() error {
	switch {
	case o.MemCopyFactor <= 0:
		return fmt.Errorf("sim: MemCopyFactor must be positive")
	case o.NahOpt <= 0:
		return fmt.Errorf("sim: NahOpt must be positive")
	case o.ContentionBeta < 0:
		return fmt.Errorf("sim: ContentionBeta must be non-negative")
	}
	return nil
}

// Message is one network transfer within a round. Intra-node transfers
// (SrcNode == DstNode) skip the NIC and only consume memory bandwidth.
type Message struct {
	SrcNode int
	DstNode int
	Bytes   int64
}

// IOOp is one storage access issued by an aggregator within a round.
type IOOp struct {
	Target     int   // storage target (OST) index
	Node       int   // compute node issuing the access
	Bytes      int64 // payload bytes
	Requests   int   // number of distinct requests this access costs
	Contiguous bool  // whether the access streams contiguously
	Write      bool  // direction; pricing is symmetric but totals separate
}

// Round is one step of a collective operation.
type Round struct {
	Messages []Message
	IOOps    []IOOp
}

// AggregatorPlacement declares one aggregator for the duration of an
// operation: which node hosts it, how large its aggregation buffer is, and
// how severely that buffer over-committed the host's available memory.
//
// PagedSeverity is the over-committed fraction of the buffer in [0, 1]:
// 0 means the aggregation buffer fits entirely in available memory, 1
// means none of it does and every buffer access pages. The node's
// effective memory bandwidth interpolates between full speed and
// PagedBandwidthFraction accordingly, so a mildly over-committed
// aggregator degrades mildly — which is what makes the baseline's
// performance fall off progressively as buffers shrink below the
// (variance-afflicted) available memory, as in the paper's Figures 6-8.
type AggregatorPlacement struct {
	Node          int
	BufferBytes   int64
	PagedSeverity float64
}

// Paged reports whether the placement over-commits its host at all.
func (a AggregatorPlacement) Paged() bool { return a.PagedSeverity > 0 }

// RoundCost is the engine's pricing of one round.
type RoundCost struct {
	CommTime float64 // network + memory bottleneck, seconds
	IOTime   float64 // storage bottleneck, seconds
	Time     float64 // round wall time (max or sum per Options.Overlap)
}

// Totals accumulates operation-level accounting.
type Totals struct {
	Rounds    int
	CommTime  float64
	IOTime    float64
	Time      float64
	NetBytes  int64 // bytes that crossed a NIC (inter-node only)
	ShufBytes int64 // all shuffled bytes incl. intra-node
	IOBytes   int64
	Requests  int
	// PerNodeShuffle records shuffled bytes through each node that hosted
	// an aggregator or endpoint, for memory-pressure reporting.
	PerNodeShuffle map[int]int64
}

// TraceEntry is one round's record when tracing is enabled.
type TraceEntry struct {
	Round     int
	Cost      RoundCost
	Messages  int
	IOOps     int
	CommBytes int64
	IOBytes   int64
}

// Engine prices rounds against a machine design point and storage
// parameters. It is not safe for concurrent use.
type Engine struct {
	mc      machine.Config
	st      StorageParams
	opt     Options
	aggsPer map[int]int     // node -> active aggregator count
	paged   map[int]float64 // node -> worst paging severity present
	totals  Totals
	trace   []TraceEntry
}

// NewEngine builds an engine. The machine config, storage parameters and
// options are validated once here.
func NewEngine(mc machine.Config, st StorageParams, opt Options) (*Engine, error) {
	if err := mc.Validate(); err != nil {
		return nil, err
	}
	if err := st.Validate(); err != nil {
		return nil, err
	}
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	return &Engine{
		mc:      mc,
		st:      st,
		opt:     opt,
		aggsPer: map[int]int{},
		paged:   map[int]float64{},
		totals:  Totals{PerNodeShuffle: map[int]int64{}},
	}, nil
}

// SetAggregators declares the aggregator placement for the operation being
// priced. It resets any previous placement. Severities outside [0,1] are
// clamped.
func (e *Engine) SetAggregators(aggs []AggregatorPlacement) {
	e.aggsPer = map[int]int{}
	e.paged = map[int]float64{}
	for _, a := range aggs {
		e.aggsPer[a.Node]++
		s := a.PagedSeverity
		if s < 0 {
			s = 0
		}
		if s > 1 {
			s = 1
		}
		if s > e.paged[a.Node] {
			e.paged[a.Node] = s
		}
	}
}

// pagedSlowdown returns the multiplicative slowdown of everything an
// aggregator on this node touches once its buffer pages: a paged
// aggregation buffer stalls the copy into/out of the buffer, the NIC
// transfers that feed it, and the storage accesses that drain it, because
// every one of those reads or writes the faulting pages. Severity s
// interpolates linearly between full speed (1x) and running the buffer at
// PagedBandwidthFraction of DRAM speed.
func (e *Engine) pagedSlowdown(node int) float64 {
	s := e.paged[node]
	if s <= 0 {
		return 1
	}
	return 1 / (1 - s*(1-e.mc.PagedBandwidthFraction))
}

// effMemBW returns the node's effective off-chip bandwidth for shuffle
// traffic given paging state and aggregator contention.
func (e *Engine) effMemBW(node int) float64 {
	bw := e.mc.MemBandwidth / e.pagedSlowdown(node)
	if k := e.aggsPer[node]; k > e.opt.NahOpt {
		bw /= 1 + e.opt.ContentionBeta*float64(k-e.opt.NahOpt)
	}
	return bw
}

// RunRound prices one round and accumulates it into the totals.
func (e *Engine) RunRound(r Round) RoundCost {
	type nodeLoad struct {
		in, out int64 // NIC bytes
		mem     int64 // DRAM bytes
		msgs    int
	}
	loads := map[int]*nodeLoad{}
	load := func(n int) *nodeLoad {
		l := loads[n]
		if l == nil {
			l = &nodeLoad{}
			loads[n] = l
		}
		return l
	}

	for _, m := range r.Messages {
		if m.Bytes < 0 {
			panic("sim: negative message size")
		}
		if m.Bytes == 0 {
			continue
		}
		e.totals.ShufBytes += m.Bytes
		e.totals.PerNodeShuffle[m.SrcNode] += m.Bytes
		if m.SrcNode == m.DstNode {
			// Intra-node: two extra DRAM crossings, no NIC.
			l := load(m.SrcNode)
			l.mem += int64(e.opt.MemCopyFactor * float64(m.Bytes) * 2)
			l.msgs++
			continue
		}
		e.totals.NetBytes += m.Bytes
		e.totals.PerNodeShuffle[m.DstNode] += m.Bytes
		src, dst := load(m.SrcNode), load(m.DstNode)
		src.out += m.Bytes
		dst.in += m.Bytes
		src.mem += int64(e.opt.MemCopyFactor * float64(m.Bytes))
		dst.mem += int64(e.opt.MemCopyFactor * float64(m.Bytes))
		src.msgs++
		dst.msgs++
	}

	// Storage accesses also traverse the issuing node's NIC and DRAM.
	targetTime := make(map[int]float64)
	for _, op := range r.IOOps {
		if op.Bytes < 0 {
			panic("sim: negative I/O size")
		}
		if op.Target < 0 || op.Target >= e.st.Targets {
			panic(fmt.Sprintf("sim: I/O op for target %d outside [0,%d)", op.Target, e.st.Targets))
		}
		if op.Bytes == 0 && op.Requests == 0 {
			continue
		}
		e.totals.IOBytes += op.Bytes
		e.totals.Requests += op.Requests
		l := load(op.Node)
		if op.Write {
			l.out += op.Bytes
		} else {
			l.in += op.Bytes
		}
		l.mem += int64(e.opt.MemCopyFactor * float64(op.Bytes))
		bw := e.st.TargetBW
		if !op.Write {
			bw = e.st.readBW()
		}
		stream := float64(op.Bytes) / bw
		if !op.Contiguous {
			stream *= e.st.NoncontigFactor
		}
		// A paged issuing node drains/fills its aggregation buffer at
		// paged speed, throttling the storage access it drives.
		targetTime[op.Target] += (e.st.ReqOverhead*float64(op.Requests) + stream) * e.pagedSlowdown(op.Node)
	}

	var comm float64
	for n, l := range loads {
		slow := e.pagedSlowdown(n)
		t := float64(l.out) / e.mc.NICBandwidth * slow
		if tin := float64(l.in) / e.mc.NICBandwidth * slow; tin > t {
			t = tin
		}
		if tm := float64(l.mem) / e.effMemBW(n); tm > t {
			t = tm
		}
		t += float64(l.msgs) * e.mc.NetLatency
		if t > comm {
			comm = t
		}
	}
	var io float64
	for _, t := range targetTime {
		if t > io {
			io = t
		}
	}

	rc := RoundCost{CommTime: comm, IOTime: io}
	if e.opt.Overlap {
		rc.Time = math.Max(comm, io)
	} else {
		rc.Time = comm + io
	}
	e.totals.Rounds++
	e.totals.CommTime += comm
	e.totals.IOTime += io
	e.totals.Time += rc.Time
	if e.opt.Trace {
		entry := TraceEntry{Round: e.totals.Rounds - 1, Cost: rc, Messages: len(r.Messages), IOOps: len(r.IOOps)}
		for _, m := range r.Messages {
			entry.CommBytes += m.Bytes
		}
		for _, op := range r.IOOps {
			entry.IOBytes += op.Bytes
		}
		e.trace = append(e.trace, entry)
	}
	return rc
}

// Trace returns the per-round records collected so far; empty unless
// Options.Trace was set.
func (e *Engine) Trace() []TraceEntry {
	return append([]TraceEntry(nil), e.trace...)
}

// AddLatency charges a flat latency (e.g. collective metadata exchange)
// to the operation without any byte movement.
func (e *Engine) AddLatency(seconds float64) {
	if seconds < 0 {
		panic("sim: negative latency")
	}
	e.totals.Time += seconds
	e.totals.CommTime += seconds
}

// Totals returns a copy of the accumulated accounting.
func (e *Engine) Totals() Totals {
	t := e.totals
	t.PerNodeShuffle = make(map[int]int64, len(e.totals.PerNodeShuffle))
	for k, v := range e.totals.PerNodeShuffle {
		t.PerNodeShuffle[k] = v
	}
	return t
}

// Elapsed returns the operation's accumulated simulated seconds.
func (e *Engine) Elapsed() float64 { return e.totals.Time }

// Bandwidth returns userBytes / elapsed time in bytes/second, or 0 when no
// time has elapsed.
func (e *Engine) Bandwidth(userBytes int64) float64 {
	if e.totals.Time == 0 {
		return 0
	}
	return float64(userBytes) / e.totals.Time
}
