package pricing

import (
	"math"
	"testing"
)

func TestPagedSlowdown(t *testing.T) {
	if got := PagedSlowdown(0, 0.25); got != 1 {
		t.Fatalf("unpaged slowdown = %v, want 1", got)
	}
	if got := PagedSlowdown(-0.5, 0.25); got != 1 {
		t.Fatalf("negative severity slowdown = %v, want 1", got)
	}
	// Fully paged: buffer runs at pagedBWFrac of DRAM speed.
	if got, want := PagedSlowdown(1, 0.25), 4.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("fully paged slowdown = %v, want %v", got, want)
	}
	// Half severity interpolates linearly in the bandwidth loss.
	if got, want := PagedSlowdown(0.5, 0.25), 1/(1-0.5*0.75); got != want {
		t.Fatalf("half paged slowdown = %v, want %v", got, want)
	}
}

func TestEffMemBW(t *testing.T) {
	// At or under NahOpt: only paging and straggler divisors apply.
	if got, want := EffMemBW(100, 2, 1, 4, 4, 0.35), 50.0; got != want {
		t.Fatalf("effMemBW = %v, want %v", got, want)
	}
	// One aggregator over: contention divisor kicks in.
	if got, want := EffMemBW(100, 1, 1, 5, 4, 0.35), 100/1.35; got != want {
		t.Fatalf("contended effMemBW = %v, want %v", got, want)
	}
}

func TestCommTimeBinding(t *testing.T) {
	cases := []struct {
		name string
		l    NodeLoad
		res  string
	}{
		{"out-bound", NodeLoad{Out: 1 << 30, Msgs: 1}, BindNICOut},
		{"in-bound", NodeLoad{In: 1 << 30, Out: 1, Msgs: 1}, BindNICIn},
		{"mem-bound", NodeLoad{Mem: 1 << 40, Out: 1, Msgs: 1}, BindMem},
		{"latency-bound", NodeLoad{Out: 1, Msgs: 1 << 20}, BindLatency},
	}
	for _, c := range cases {
		t2, res, tlat := CommTime(c.l, 2e9, 1, 25e9, 5e-6)
		if res != c.res {
			t.Errorf("%s: bound by %s, want %s", c.name, res, c.res)
		}
		if tlat != float64(c.l.Msgs)*5e-6 {
			t.Errorf("%s: tlat = %v", c.name, tlat)
		}
		if t2 < tlat {
			t.Errorf("%s: time %v below latency term %v", c.name, t2, tlat)
		}
	}
}

func TestPagedCommFraction(t *testing.T) {
	if got := PagedCommFraction(1, 0.1, 1); got != 0 {
		t.Fatalf("unpaged fraction = %v, want 0", got)
	}
	if got := PagedCommFraction(0, 0, 2); got != 0 {
		t.Fatalf("zero-time fraction = %v, want 0", got)
	}
	// All stream, slowdown 2: half the time is paging excess.
	if got, want := PagedCommFraction(1, 0, 2), 0.5; got != want {
		t.Fatalf("fraction = %v, want %v", got, want)
	}
}

func TestStorageServiceTime(t *testing.T) {
	s := Storage{TargetBW: 500e6, ReadBWFactor: 1.25, ReqOverhead: 0.5e-3, NoncontigFactor: 4}
	if got, want := s.StreamBW(true), 500e6; got != want {
		t.Fatalf("write BW = %v, want %v", got, want)
	}
	if got, want := s.StreamBW(false), 625e6; got != want {
		t.Fatalf("read BW = %v, want %v", got, want)
	}
	if got, want := (Storage{TargetBW: 500e6}).StreamBW(false), 500e6; got != want {
		t.Fatalf("symmetric read BW = %v, want %v", got, want)
	}
	contig := s.ServiceTime(500e6, 2, true, true)
	if want := 0.5e-3*2 + 1; contig != want {
		t.Fatalf("contiguous service = %v, want %v", contig, want)
	}
	noncontig := s.ServiceTime(500e6, 2, false, true)
	if want := 0.5e-3*2 + 4; noncontig != want {
		t.Fatalf("noncontiguous service = %v, want %v", noncontig, want)
	}
}

func TestRoundWall(t *testing.T) {
	if got := RoundWall(2, 3, false); got != 5 {
		t.Fatalf("blocking wall = %v, want 5", got)
	}
	if got := RoundWall(2, 3, true); got != 3 {
		t.Fatalf("overlapped wall = %v, want 3", got)
	}
}
