// Package pricing holds the pure cost formulas shared by the two
// collective-I/O engines: the byte-accurate replayer (internal/sim
// driven rank-by-rank by internal/collio) and the analytical fast path
// (internal/fastsim, which feeds the same engine aggregate per-round
// quantities). Every formula here is a pure function of its arguments —
// no state, no maps, no observability — so both engines price a round
// with literally the same floating-point expressions and the
// fast-vs-byte cross-check can demand exact equality.
//
// Floating-point note: the functions preserve the historical operation
// order of the simulator (e.g. memBW / pagedSlow / nodeSlow, then the
// contention divisor) because reassociating float divisions changes
// low-order bits and would break the byte-identity contracts the bench
// ledger tests pin.
package pricing

import "math"

// Comm-phase binding resources: which term of a node's communication
// time set the bound.
const (
	BindNICOut  = "nic-out"
	BindNICIn   = "nic-in"
	BindMem     = "mem"
	BindLatency = "latency"
)

// NodeLoad is one node's traffic within a round: NIC bytes in/out, DRAM
// bytes, and the number of latency-charged messages.
type NodeLoad struct {
	In, Out int64
	Mem     int64
	Msgs    int
}

// PagedSlowdown is the multiplicative slowdown of everything an
// aggregator on a node touches once its buffer pages. Severity s in
// [0, 1] interpolates linearly between full speed (1x) and running the
// buffer at pagedBWFrac of DRAM speed; s <= 0 means unpaged.
func PagedSlowdown(severity, pagedBWFrac float64) float64 {
	if severity <= 0 {
		return 1
	}
	return 1 / (1 - severity*(1-pagedBWFrac))
}

// EffMemBW is a node's effective off-chip bandwidth for shuffle traffic
// given its paging and straggler state and aggregator contention: memBW
// degraded by paging and the straggler divisor, then by contention when
// more than nahOpt aggregators share the node.
func EffMemBW(memBW, pagedSlow, nodeSlow float64, aggs, nahOpt int, beta float64) float64 {
	bw := memBW / pagedSlow / nodeSlow
	if aggs > nahOpt {
		bw /= 1 + beta*float64(aggs-nahOpt)
	}
	return bw
}

// MemCopy is the DRAM traffic charged for moving bytes through a node
// once (copy in + copy out ≈ factor crossings).
func MemCopy(factor float64, bytes int64) int64 {
	return int64(factor * float64(bytes))
}

// IntraMemCopy is the DRAM traffic of an intra-node transfer: both
// endpoints live on the node, so the bytes cross DRAM twice as often.
// (Kept as a single float expression — int64(f*b*2), not
// 2*int64(f*b) — to match the simulator's historical rounding.)
func IntraMemCopy(factor float64, bytes int64) int64 {
	return int64(factor * float64(bytes) * 2)
}

// CommTime prices one node's communication phase: NIC injection and
// ejection streams scaled by the node's combined slowdown, the DRAM
// stream at effMemBW, and a per-message latency charge added on top of
// the largest stream term. It returns the phase time, which resource
// bound it, and the latency term (needed by paging blame, which excludes
// it).
func CommTime(l NodeLoad, nicBW, slow, effMemBW, netLatency float64) (t float64, res string, tlat float64) {
	tout := float64(l.Out) / nicBW * slow
	tin := float64(l.In) / nicBW * slow
	tm := float64(l.Mem) / effMemBW
	tlat = float64(l.Msgs) * netLatency
	t = tout
	res = BindNICOut
	if tin > t {
		t, res = tin, BindNICIn
	}
	if tm > t {
		t, res = tm, BindMem
	}
	if tlat > t {
		res = BindLatency
	}
	t += tlat
	return t, res, tlat
}

// PagedCommFraction is the share of a node's communication time spent
// waiting on paging: every byte-stream term of t scales linearly in the
// paging slowdown, the latency term does not, so the blame is the excess
// over the unpaged time of the same traffic.
func PagedCommFraction(t, tlat, pagedSlow float64) float64 {
	if pagedSlow <= 1 || t <= 0 {
		return 0
	}
	return (t - tlat) * (1 - 1/pagedSlow) / t
}

// Storage prices accesses to one class of parallel-file-system targets.
type Storage struct {
	TargetBW        float64 // streaming write bandwidth per target, bytes/s
	ReadBWFactor    float64 // scales TargetBW for reads; <= 0 means symmetric
	ReqOverhead     float64 // fixed cost per request, seconds (seek+RPC)
	NoncontigFactor float64 // stream-time inflation for noncontiguous access
}

// StreamBW is the effective streaming bandwidth for the direction.
func (s Storage) StreamBW(write bool) float64 {
	if write || s.ReadBWFactor <= 0 {
		return s.TargetBW
	}
	return s.TargetBW * s.ReadBWFactor
}

// ServiceTime is the unpaged, un-slowed service time of one access:
// per-request overhead plus streaming time, inflated when noncontiguous.
// Callers layer node slowdown, paging and injected delay on top.
func (s Storage) ServiceTime(bytes int64, requests int, contiguous, write bool) float64 {
	stream := float64(bytes) / s.StreamBW(write)
	if !contiguous {
		stream *= s.NoncontigFactor
	}
	return s.ReqOverhead*float64(requests) + stream
}

// RoundWall combines the communication and storage bottlenecks into the
// round's wall time: concurrent phases overlap (max), classic blocking
// two-phase sums them.
func RoundWall(comm, io float64, overlap bool) float64 {
	if overlap {
		return math.Max(comm, io)
	}
	return comm + io
}
