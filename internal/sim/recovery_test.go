package sim

import (
	"math"
	"testing"
)

func TestNodeSlowdownScalesRound(t *testing.T) {
	opt := DefaultOptions()
	base := testEngine(t, opt)
	msg := Round{Messages: []Message{{SrcNode: 0, DstNode: 1, Bytes: 1 << 30}}}
	rc0 := base.RunRound(msg)

	slow := testEngine(t, opt)
	slow.SetNodeSlowdown(0, 4)
	rc1 := slow.RunRound(msg)
	if rc1.CommTime <= rc0.CommTime {
		t.Fatalf("straggler round not slower: %v vs %v", rc1.CommTime, rc0.CommTime)
	}

	// Clearing the slowdown restores the healthy price.
	slow2 := testEngine(t, opt)
	slow2.SetNodeSlowdown(0, 4)
	slow2.SetNodeSlowdown(0, 1)
	rc2 := slow2.RunRound(msg)
	if math.Abs(rc2.CommTime-rc0.CommTime) > 1e-12 {
		t.Fatalf("cleared straggler still priced: %v vs %v", rc2.CommTime, rc0.CommTime)
	}
}

func TestIOOpDelaySeconds(t *testing.T) {
	opt := DefaultOptions()
	op := IOOp{Target: 0, Node: 0, Bytes: 1 << 20, Requests: 1, Contiguous: true, Write: true}
	base := testEngine(t, opt)
	rc0 := base.RunRound(Round{IOOps: []IOOp{op}})

	delayed := op
	delayed.DelaySeconds = 0.25
	e := testEngine(t, opt)
	rc1 := e.RunRound(Round{IOOps: []IOOp{delayed}})
	if got := rc1.IOTime - rc0.IOTime; math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("delay charged %v, want 0.25", got)
	}
}

func TestRecoveryAttribution(t *testing.T) {
	opt := DefaultOptions()
	opt.Trace = true
	e := testEngine(t, opt)
	e.RunRound(Round{Messages: []Message{{SrcNode: 0, DstNode: 1, Bytes: 1 << 20}}})
	rc := e.RunRecoveryRound(Round{Messages: []Message{{SrcNode: 1, DstNode: 2, Bytes: 1 << 16}}})
	e.AddRecoveryLatency(0.5, "detect")

	tot := e.Totals()
	if tot.RecoveryRounds != 1 {
		t.Fatalf("RecoveryRounds = %d, want 1", tot.RecoveryRounds)
	}
	want := rc.Time + 0.5
	if math.Abs(tot.RecoverySeconds-want) > 1e-12 {
		t.Fatalf("RecoverySeconds = %v, want %v", tot.RecoverySeconds, want)
	}
	tr := e.Trace()
	if len(tr) != 2 || tr[0].Recovery || !tr[1].Recovery {
		t.Fatalf("trace recovery flags wrong: %+v", tr)
	}
	if tot.RecoverySeconds >= tot.Time {
		t.Fatalf("recovery time %v must be a strict part of total %v", tot.RecoverySeconds, tot.Time)
	}
}

func TestSetNodePaged(t *testing.T) {
	opt := DefaultOptions()
	msg := Round{Messages: []Message{{SrcNode: 0, DstNode: 1, Bytes: 1 << 30}}}
	base := testEngine(t, opt)
	rc0 := base.RunRound(msg)

	e := testEngine(t, opt)
	e.SetNodePaged(0, 0.8)
	rc1 := e.RunRound(msg)
	if rc1.CommTime <= rc0.CommTime {
		t.Fatalf("paged node not slower: %v vs %v", rc1.CommTime, rc0.CommTime)
	}
	// Zero-severity update is inert.
	e2 := testEngine(t, opt)
	e2.SetNodePaged(0, 0)
	rc2 := e2.RunRound(msg)
	if rc2.CommTime != rc0.CommTime {
		t.Fatalf("zero-severity SetNodePaged changed pricing: %v vs %v", rc2.CommTime, rc0.CommTime)
	}
}
