package sim

import (
	"math"
	"testing"
	"testing/quick"

	"mcio/internal/machine"
)

func testEngine(t *testing.T, opt Options) *Engine {
	t.Helper()
	mc := machine.Testbed640()
	mc.Nodes = 16
	mc.NetLatency = 0 // most tests want pure bandwidth algebra
	st := StorageParams{Targets: 8, TargetBW: 500e6, ReqOverhead: 0, NoncontigFactor: 4}
	e, err := NewEngine(mc, st, opt)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewEngineValidates(t *testing.T) {
	mc := machine.Testbed640()
	good := StorageParams{Targets: 1, TargetBW: 1, ReqOverhead: 0, NoncontigFactor: 1}
	if _, err := NewEngine(mc, good, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	bads := []StorageParams{
		{Targets: 0, TargetBW: 1, NoncontigFactor: 1},
		{Targets: 1, TargetBW: 0, NoncontigFactor: 1},
		{Targets: 1, TargetBW: 1, ReqOverhead: -1, NoncontigFactor: 1},
		{Targets: 1, TargetBW: 1, NoncontigFactor: 0.5},
	}
	for i, st := range bads {
		if _, err := NewEngine(mc, st, DefaultOptions()); err == nil {
			t.Errorf("bad storage params %d accepted", i)
		}
	}
	badOpts := []Options{
		{MemCopyFactor: 0, NahOpt: 1},
		{MemCopyFactor: 1, NahOpt: 0},
		{MemCopyFactor: 1, NahOpt: 1, ContentionBeta: -1},
	}
	for i, o := range badOpts {
		if _, err := NewEngine(mc, good, o); err == nil {
			t.Errorf("bad options %d accepted", i)
		}
	}
	mc.Nodes = 0
	if _, err := NewEngine(mc, good, DefaultOptions()); err == nil {
		t.Error("bad machine accepted")
	}
}

func TestSingleMessageCost(t *testing.T) {
	e := testEngine(t, DefaultOptions())
	const bytes = 1 << 30
	rc := e.RunRound(Round{Messages: []Message{{SrcNode: 0, DstNode: 1, Bytes: bytes}}})
	// NIC at 2 GB/s is the bottleneck vs 25 GB/s DRAM with factor 2.
	wantNIC := float64(bytes) / (2 * float64(machine.GB))
	if math.Abs(rc.CommTime-wantNIC) > 1e-9 {
		t.Fatalf("comm time = %v, want %v (NIC bound)", rc.CommTime, wantNIC)
	}
	if rc.IOTime != 0 {
		t.Fatalf("io time = %v, want 0", rc.IOTime)
	}
}

func TestIntraNodeMessageSkipsNIC(t *testing.T) {
	e := testEngine(t, DefaultOptions())
	const bytes = 1 << 30
	rc := e.RunRound(Round{Messages: []Message{{SrcNode: 3, DstNode: 3, Bytes: bytes}}})
	// Intra-node: 2*MemCopyFactor crossings at 25 GB/s, no NIC term.
	want := 4 * float64(bytes) / (25 * float64(machine.GB))
	if math.Abs(rc.CommTime-want) > 1e-9 {
		t.Fatalf("intra-node comm = %v, want %v", rc.CommTime, want)
	}
	tot := e.Totals()
	if tot.NetBytes != 0 {
		t.Fatalf("intra-node message counted as network bytes: %d", tot.NetBytes)
	}
	if tot.ShufBytes != bytes {
		t.Fatalf("shuffle bytes = %d, want %d", tot.ShufBytes, bytes)
	}
}

func TestPagedNodeSlower(t *testing.T) {
	mk := func(severity float64) float64 {
		e := testEngine(t, DefaultOptions())
		e.SetAggregators([]AggregatorPlacement{{Node: 0, BufferBytes: 1 << 20, PagedSeverity: severity}})
		rc := e.RunRound(Round{Messages: []Message{{SrcNode: 0, DstNode: 0, Bytes: 1 << 30}}})
		return rc.CommTime
	}
	fast, half, slow := mk(0), mk(0.5), mk(1)
	if !(fast < half && half < slow) {
		t.Fatalf("severity not monotone: %v %v %v", fast, half, slow)
	}
	// Fully paged runs the memory path at PagedBandwidthFraction speed.
	frac := machine.Testbed640().PagedBandwidthFraction
	if ratio := slow / fast; math.Abs(ratio-1/frac) > 1e-6 {
		t.Fatalf("paging ratio = %v, want %v", ratio, 1/frac)
	}
	// Severity outside [0,1] clamps rather than exploding.
	if mk(2) != slow || mk(-1) != fast {
		t.Fatal("severity clamping broken")
	}
	if !(AggregatorPlacement{PagedSeverity: 0.1}).Paged() {
		t.Fatal("Paged() should report severity > 0")
	}
	if (AggregatorPlacement{}).Paged() {
		t.Fatal("Paged() should be false at severity 0")
	}
}

func TestAggregatorContention(t *testing.T) {
	cost := func(nAggs int) float64 {
		e := testEngine(t, DefaultOptions())
		aggs := make([]AggregatorPlacement, nAggs)
		for i := range aggs {
			aggs[i] = AggregatorPlacement{Node: 0, BufferBytes: 1 << 20}
		}
		e.SetAggregators(aggs)
		rc := e.RunRound(Round{Messages: []Message{{SrcNode: 0, DstNode: 0, Bytes: 1 << 30}}})
		return rc.CommTime
	}
	atOpt := cost(4) // NahOpt = 4: no contention
	over := cost(8)  // 4 beyond optimum
	if cost(1) != atOpt {
		t.Fatal("below-optimum aggregator counts must not contend")
	}
	want := atOpt * (1 + 0.35*4)
	if math.Abs(over-want) > 1e-9 {
		t.Fatalf("contended cost = %v, want %v", over, want)
	}
}

func TestIOOpCost(t *testing.T) {
	mc := machine.Testbed640()
	mc.NetLatency = 0
	st := StorageParams{Targets: 4, TargetBW: 100e6, ReqOverhead: 0.001, NoncontigFactor: 4}
	e, err := NewEngine(mc, st, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rc := e.RunRound(Round{IOOps: []IOOp{
		{Target: 0, Node: 0, Bytes: 100e6, Requests: 10, Contiguous: true, Write: true},
	}})
	want := 0.001*10 + 1.0
	if math.Abs(rc.IOTime-want) > 1e-9 {
		t.Fatalf("io time = %v, want %v", rc.IOTime, want)
	}
	// Noncontiguous inflates the streaming term by 4x.
	e2, _ := NewEngine(mc, st, DefaultOptions())
	rc2 := e2.RunRound(Round{IOOps: []IOOp{
		{Target: 0, Node: 0, Bytes: 100e6, Requests: 10, Contiguous: false, Write: true},
	}})
	want2 := 0.001*10 + 4.0
	if math.Abs(rc2.IOTime-want2) > 1e-9 {
		t.Fatalf("noncontig io time = %v, want %v", rc2.IOTime, want2)
	}
}

func TestTargetsRunInParallel(t *testing.T) {
	e := testEngine(t, DefaultOptions())
	// The same volume on one target vs spread over 4: parallel spread is 4x faster.
	one := e.RunRound(Round{IOOps: []IOOp{
		{Target: 0, Node: 0, Bytes: 400e6, Requests: 1, Contiguous: true},
	}})
	e2 := testEngine(t, DefaultOptions())
	var ops []IOOp
	for i := 0; i < 4; i++ {
		ops = append(ops, IOOp{Target: i, Node: 0, Bytes: 100e6, Requests: 1, Contiguous: true})
	}
	four := e2.RunRound(Round{IOOps: ops})
	if math.Abs(four.IOTime*4-one.IOTime) > 1e-9 {
		t.Fatalf("4 targets: %v, 1 target: %v — want 4x speedup", four.IOTime, one.IOTime)
	}
}

func TestOverlapOption(t *testing.T) {
	opt := DefaultOptions()
	round := Round{
		Messages: []Message{{SrcNode: 0, DstNode: 1, Bytes: 1 << 30}},
		IOOps:    []IOOp{{Target: 0, Node: 2, Bytes: 250e6, Requests: 1, Contiguous: true}},
	}
	blocking := testEngine(t, opt)
	bc := blocking.RunRound(round)
	opt.Overlap = true
	overlapped := testEngine(t, opt)
	oc := overlapped.RunRound(round)
	if math.Abs(bc.Time-(bc.CommTime+bc.IOTime)) > 1e-12 {
		t.Fatalf("blocking round time %v != comm+io %v", bc.Time, bc.CommTime+bc.IOTime)
	}
	if math.Abs(oc.Time-math.Max(oc.CommTime, oc.IOTime)) > 1e-12 {
		t.Fatalf("overlapped round time %v != max(comm,io)", oc.Time)
	}
	if oc.Time >= bc.Time {
		t.Fatal("overlap should be faster for mixed rounds")
	}
}

func TestLatencyCharge(t *testing.T) {
	mc := machine.Testbed640()
	mc.NetLatency = 1e-3
	st := StorageParams{Targets: 1, TargetBW: 1e9, NoncontigFactor: 1}
	e, err := NewEngine(mc, st, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rc := e.RunRound(Round{Messages: []Message{{SrcNode: 0, DstNode: 1, Bytes: 1}}})
	if rc.CommTime < 1e-3 {
		t.Fatalf("per-message latency not charged: %v", rc.CommTime)
	}
	e.AddLatency(0.5)
	if e.Elapsed() < 0.5 {
		t.Fatalf("AddLatency not accumulated: %v", e.Elapsed())
	}
}

func TestTotalsAccumulate(t *testing.T) {
	e := testEngine(t, DefaultOptions())
	e.RunRound(Round{
		Messages: []Message{{SrcNode: 0, DstNode: 1, Bytes: 100}},
		IOOps:    []IOOp{{Target: 0, Node: 1, Bytes: 200, Requests: 3, Contiguous: true, Write: true}},
	})
	e.RunRound(Round{Messages: []Message{{SrcNode: 1, DstNode: 0, Bytes: 50}}})
	tot := e.Totals()
	if tot.Rounds != 2 {
		t.Fatalf("rounds = %d", tot.Rounds)
	}
	if tot.NetBytes != 150 || tot.ShufBytes != 150 {
		t.Fatalf("net/shuffle bytes = %d/%d", tot.NetBytes, tot.ShufBytes)
	}
	if tot.IOBytes != 200 || tot.Requests != 3 {
		t.Fatalf("io bytes/requests = %d/%d", tot.IOBytes, tot.Requests)
	}
	if tot.PerNodeShuffle[0] != 150 || tot.PerNodeShuffle[1] != 150 {
		t.Fatalf("per-node shuffle = %v", tot.PerNodeShuffle)
	}
	// Totals must be a defensive copy.
	tot.PerNodeShuffle[0] = -1
	if e.Totals().PerNodeShuffle[0] == -1 {
		t.Fatal("Totals leaked internal map")
	}
}

func TestBandwidth(t *testing.T) {
	e := testEngine(t, DefaultOptions())
	if e.Bandwidth(100) != 0 {
		t.Fatal("bandwidth before any round should be 0")
	}
	e.RunRound(Round{IOOps: []IOOp{{Target: 0, Node: 0, Bytes: 500e6, Requests: 1, Contiguous: true}}})
	bw := e.Bandwidth(500e6)
	want := 500e6 / e.Elapsed()
	if math.Abs(bw-want) > 1e-6 {
		t.Fatalf("bandwidth = %v, want %v", bw, want)
	}
	// The storage target streams at 500 MB/s, so with the NIC/DRAM charges
	// on top the reported bandwidth must be strictly below that.
	if bw >= 500e6 {
		t.Fatalf("bandwidth %v should be below the 500e6 target stream rate", bw)
	}
}

func TestZeroByteWorkIsFree(t *testing.T) {
	e := testEngine(t, DefaultOptions())
	rc := e.RunRound(Round{
		Messages: []Message{{SrcNode: 0, DstNode: 1, Bytes: 0}},
		IOOps:    []IOOp{{Target: 0, Node: 0, Bytes: 0, Requests: 0, Contiguous: true}},
	})
	if rc.Time != 0 {
		t.Fatalf("zero-byte round cost = %v, want 0", rc.Time)
	}
}

func TestPanicsOnBadInput(t *testing.T) {
	for name, round := range map[string]Round{
		"negative message": {Messages: []Message{{SrcNode: 0, DstNode: 1, Bytes: -1}}},
		"negative io":      {IOOps: []IOOp{{Target: 0, Bytes: -1}}},
		"bad target":       {IOOps: []IOOp{{Target: 99, Bytes: 1, Requests: 1}}},
	} {
		e := testEngine(t, DefaultOptions())
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			e.RunRound(round)
		}()
	}
	e := testEngine(t, DefaultOptions())
	func() {
		defer func() {
			if recover() == nil {
				t.Error("negative latency: expected panic")
			}
		}()
		e.AddLatency(-1)
	}()
}

// Property: round time is monotone in message size and always non-negative.
func TestMonotoneInBytes(t *testing.T) {
	err := quick.Check(func(b1Raw, b2Raw uint32) bool {
		b1, b2 := int64(b1Raw), int64(b2Raw)
		if b1 > b2 {
			b1, b2 = b2, b1
		}
		cost := func(b int64) float64 {
			e := testEngine(t, DefaultOptions())
			return e.RunRound(Round{Messages: []Message{{SrcNode: 0, DstNode: 1, Bytes: b}}}).Time
		}
		c1, c2 := cost(b1), cost(b2)
		return c1 >= 0 && c2 >= 0 && c1 <= c2
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTraceRecordsRounds(t *testing.T) {
	opt := DefaultOptions()
	opt.Trace = true
	e := testEngine(t, opt)
	e.RunRound(Round{
		Messages: []Message{{SrcNode: 0, DstNode: 1, Bytes: 100}},
		IOOps:    []IOOp{{Target: 0, Node: 1, Bytes: 200, Requests: 1, Contiguous: true}},
	})
	e.RunRound(Round{Messages: []Message{{SrcNode: 1, DstNode: 0, Bytes: 50}}})
	tr := e.Trace()
	if len(tr) != 2 {
		t.Fatalf("trace length = %d", len(tr))
	}
	if tr[0].Round != 0 || tr[1].Round != 1 {
		t.Fatal("round numbering")
	}
	if tr[0].Messages != 1 || tr[0].IOOps != 1 || tr[0].CommBytes != 100 || tr[0].IOBytes != 200 {
		t.Fatalf("entry 0 = %+v", tr[0])
	}
	if tr[1].Cost.Time <= 0 {
		t.Fatal("entry cost missing")
	}
	// Trace returns a copy.
	tr[0].Messages = 99
	if e.Trace()[0].Messages == 99 {
		t.Fatal("Trace leaked internal slice")
	}
}

func TestTraceOffByDefault(t *testing.T) {
	e := testEngine(t, DefaultOptions())
	e.RunRound(Round{Messages: []Message{{SrcNode: 0, DstNode: 1, Bytes: 100}}})
	if len(e.Trace()) != 0 {
		t.Fatal("tracing should be off by default")
	}
}
