package faults

import (
	"sync"

	"mcio/internal/stats"
)

// Corrupter replays a Plan's silent-corruption events at the data level
// while collio.Exec really moves bytes. The cost engine's Injector
// prices corruption in simulated time; the Corrupter is its data-path
// twin: the same schedule, applied to real buffers so the integrity
// layer has something to catch.
//
// MsgBitFlip events are scheduled per node; the corrupter assigns them
// round-robin to the ranks hosted on that node, and each rank consumes
// its own pending counter. A rank's send order is deterministic inside
// its goroutine, so which of its messages gets flipped — and which bit —
// is reproducible even though ranks run concurrently.
//
// TornWrite events are per storage target, but concurrent aggregators
// reach the pfs write path in scheduling order, so consuming a shared
// event budget first-come-first-served would make *which* access lands
// torn vary run to run. Instead the scheduled event count sets a tear
// density, and each object access decides its own fate from a hash of
// (seed, target, file offset): a pure function of the access identity,
// so the set of torn accesses is identical across runs no matter how
// goroutines interleave. Each distinct offset tears at most once —
// a repair rewrite of a torn piece always lands whole — and the write
// path commits a tear only when dropping the tail would actually change
// the stored bytes; every committed tear is therefore a detectable
// corruption, which is what lets a campaign prove "detected == injected".
//
// Counters report committed (= injected) corruptions, not scheduled
// events: an event on a node with no ranks, or a density that no written
// access happened to match, never corrupted anything.
type Corrupter struct {
	mu          sync.Mutex
	seed        uint64
	flipPending map[int]int        // rank -> unconsumed bit flips
	tornEvents  map[int]int        // target -> scheduled tear events (density)
	tornSeen    map[int64]bool     // access offsets already torn
	bitRNG      map[int]*stats.RNG // rank -> bit-position stream
	flips       int
	torn        int
}

// NewCorrupter builds a corrupter from the plan's corruption events.
// ranksByNode maps each node index to the ranks it hosts (the collective
// context's placement); flip events on nodes outside the mapping, or on
// nodes hosting no ranks, are dropped. A nil plan yields a corrupter
// that never corrupts.
func NewCorrupter(plan *Plan, ranksByNode [][]int) *Corrupter {
	c := &Corrupter{
		flipPending: map[int]int{},
		tornEvents:  map[int]int{},
		tornSeen:    map[int64]bool{},
		bitRNG:      map[int]*stats.RNG{},
	}
	if plan == nil {
		return c
	}
	c.seed = plan.Spec.Seed
	rr := map[int]int{} // node -> round-robin cursor
	for _, ev := range plan.Events {
		switch ev.Kind {
		case MsgBitFlip:
			if ev.Node < 0 || ev.Node >= len(ranksByNode) || len(ranksByNode[ev.Node]) == 0 {
				continue
			}
			ranks := ranksByNode[ev.Node]
			rank := ranks[rr[ev.Node]%len(ranks)]
			rr[ev.Node]++
			c.flipPending[rank]++
		case TornWrite:
			c.tornEvents[ev.Target]++
		}
	}
	return c
}

// Empty reports whether the corrupter has nothing left to inject;
// executors use it to skip per-message bookkeeping entirely.
func (c *Corrupter) Empty() bool {
	if c == nil {
		return true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.flipPending) == 0 && len(c.tornEvents) == 0
}

// CorruptMsg consumes one pending bit flip on rank, flipping a
// deterministically chosen bit of data in place. It reports whether the
// message was corrupted; empty messages are never flipped (there is no
// bit to flip, so nothing would be injected).
func (c *Corrupter) CorruptMsg(rank int, data []byte) bool {
	if c == nil || len(data) == 0 {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.flipPending[rank] == 0 {
		return false
	}
	c.flipPending[rank]--
	if c.flipPending[rank] == 0 {
		delete(c.flipPending, rank)
	}
	r := c.bitRNG[rank]
	if r == nil {
		// A third SplitMix64 increment keeps the bit-position streams
		// disjoint from the schedule-generation streams in streamRNG.
		r = stats.NewRNG(c.seed ^ (uint64(rank)+1)*0x94d049bb133111eb)
		c.bitRNG[rank] = r
	}
	bit := r.Intn(len(data) * 8)
	data[bit/8] ^= 1 << (bit % 8)
	c.flips++
	return true
}

// PendingTorn reports whether target has any tear events scheduled; the
// pfs write path uses it as a cheap gate before comparing bytes.
func (c *Corrupter) PendingTorn(target int) bool {
	if c == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tornEvents[target] > 0
}

// TearWrite decides whether the object access starting at file offset
// off on target lands torn, and commits the tear. The decision is a
// pure hash of (seed, target, off) with density min(events, 8)/16, so
// it does not depend on the order concurrent writers reach the target;
// each offset tears at most once, so a repair rewrite always lands
// whole. The pfs layer calls it only after establishing that the torn
// tail differs from the stored bytes, so committed implies detectable.
func (c *Corrupter) TearWrite(target int, off int64) bool {
	if c == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	density := c.tornEvents[target]
	if density == 0 || c.tornSeen[off] {
		return false
	}
	if density > 8 {
		density = 8 // cap at half the accesses: repair must outpace tearing
	}
	if tornHash(c.seed, target, off)%16 >= uint64(density) {
		return false
	}
	c.tornSeen[off] = true
	c.torn++
	return true
}

// tornHash is a SplitMix64 finalizer over the access identity. Distinct
// multipliers keep it disjoint from the schedule and bit-position
// streams derived from the same seed.
func tornHash(seed uint64, target int, off int64) uint64 {
	z := seed ^ (uint64(target)+1)*0x9e3779b97f4a7c15 ^ (uint64(off)+1)*0xbf58476d1ce4e5b9
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	return z ^ z>>31
}

// InjectedFlips returns how many messages were actually bit-flipped.
func (c *Corrupter) InjectedFlips() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.flips
}

// InjectedTorn returns how many object writes were actually torn.
func (c *Corrupter) InjectedTorn() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.torn
}

// Injected returns the total corruptions consumed (flips + torn writes).
func (c *Corrupter) Injected() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.flips + c.torn
}
