// Package faults is the deterministic fault-injection subsystem of the
// collective-I/O simulator. A Spec describes per-component mean times
// between failures (in simulated seconds); Generate expands it into a
// Plan — a time-sorted schedule of concrete fault events over a machine
// of N nodes and T storage targets. An Injector replays that schedule
// against a simulated clock and answers the queries the cost engine and
// the planners ask while an operation is in flight: is this node dead,
// how slow is this straggler, does this message get dropped, how many
// retries does this OST access eat.
//
// Everything is a pure function of (Spec, node count, target count):
// each (fault kind, entity) pair draws its inter-arrival times from its
// own stats.RNG stream, so adding a fault kind or resizing the machine
// never perturbs the other streams, and a given seed reproduces the
// byte-identical schedule forever.
package faults

import (
	"fmt"
	"math"
	"sort"

	"mcio/internal/stats"
)

// Kind enumerates the fault taxonomy.
type Kind int

const (
	// NodeCrash kills a host: its aggregator role is lost and the work
	// must move (memory-conscious) or stall until reboot (baseline).
	NodeCrash Kind = iota
	// MemCollapse is a mid-operation loss of most of a host's available
	// memory (a co-resident application ballooning); the host survives
	// but can no longer back its aggregation buffers.
	MemCollapse
	// Straggler degrades a host's NIC and DRAM bandwidth by Severity×
	// for Duration seconds.
	Straggler
	// OSTTransient makes a storage target return retryable errors for
	// Duration seconds.
	OSTTransient
	// OSTPermanent degrades a storage target for the rest of the run.
	OSTPermanent
	// MsgDelay adds fixed latency to messages leaving a host for
	// Duration seconds.
	MsgDelay
	// MsgDrop loses one message leaving a host (it must be resent after
	// a timeout).
	MsgDrop
	// MsgBitFlip silently corrupts one shuffle message leaving a host:
	// the bytes arrive, bit-flipped, and only end-to-end checksums can
	// tell. New kinds append after the existing ones so per-(kind,
	// entity) RNG streams — and therefore every previously pinned
	// schedule — are unchanged.
	MsgBitFlip
	// TornWrite silently truncates one object write on a storage
	// target: the request reports success but only a prefix of the
	// bytes lands, as a power-fail mid-write would leave it.
	TornWrite
	// OSTSlowdown is a gray storage failure: the target keeps answering,
	// but its service time is multiplied by a degradation curve (step,
	// linear drip, or intermittent flap — Event.Profile) for Duration
	// seconds. No error is ever returned, so only latency observation
	// can tell.
	OSTSlowdown
	// NICFlaky is a gray network failure: messages leaving the node pay
	// extra latency for Duration seconds and every k-th one is dropped
	// (bursty per-link delay/drop, below the threshold a hard fault
	// detector would fire on).
	NICFlaky
	// MemLeak gradually decays a node's available memory (a co-resident
	// leak): the budget the planner reserved against shrinks linearly to
	// Severity× its size over Duration seconds, feeding
	// memmodel.SetAvail through the fault handler.
	MemLeak

	numKinds int = iota
)

// Profile shapes a gray-failure degradation curve over its window.
type Profile int

const (
	// ProfileStep holds the full severity for the whole window.
	ProfileStep Profile = iota
	// ProfileDrip ramps severity linearly from healthy to full across
	// the window — the slow-death disk.
	ProfileDrip
	// ProfileFlap alternates healthy and fully degraded eighths of the
	// window — the intermittent component hysteresis must not thrash on.
	ProfileFlap

	numProfiles int = iota
)

// String names the profile for reports.
func (p Profile) String() string {
	switch p {
	case ProfileStep:
		return "step"
	case ProfileDrip:
		return "drip"
	case ProfileFlap:
		return "flap"
	default:
		return fmt.Sprintf("profile(%d)", int(p))
	}
}

// String names the kind for metrics labels and reports.
func (k Kind) String() string {
	switch k {
	case NodeCrash:
		return "node-crash"
	case MemCollapse:
		return "mem-collapse"
	case Straggler:
		return "straggler"
	case OSTTransient:
		return "ost-transient"
	case OSTPermanent:
		return "ost-permanent"
	case MsgDelay:
		return "msg-delay"
	case MsgDrop:
		return "msg-drop"
	case MsgBitFlip:
		return "msg-bitflip"
	case TornWrite:
		return "torn-write"
	case OSTSlowdown:
		return "ost-slowdown"
	case NICFlaky:
		return "nic-flaky"
	case MemLeak:
		return "mem-leak"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Event is one scheduled fault. Node is set for host-level kinds,
// Target for OST kinds. Duration bounds time-windowed kinds
// (Straggler, OSTTransient, MsgDelay); Severity carries the
// kind-specific magnitude (fraction of memory lost for MemCollapse,
// slowdown factor for Straggler, added seconds for MsgDelay).
type Event struct {
	Kind     Kind
	Time     float64 // simulated seconds since operation start
	Node     int
	Target   int
	Duration float64
	Severity float64
	// Profile shapes gray-failure kinds (OSTSlowdown) over the window;
	// zero (ProfileStep) for every other kind.
	Profile Profile
}

// EntityLabel returns the timeline entity the event acts on: "ost N"
// for storage-target kinds, "node N" otherwise. The format matches
// timeline.Ent so journal overlays line up with utilization lanes.
func (e Event) EntityLabel() string {
	switch e.Kind {
	case OSTTransient, OSTPermanent, TornWrite, OSTSlowdown:
		return fmt.Sprintf("ost %d", e.Target)
	default:
		return fmt.Sprintf("node %d", e.Node)
	}
}

// Describe renders the event for journals and reports: kind plus the
// parameters that shape it.
func (e Event) Describe() string {
	d := e.Kind.String()
	if e.Severity != 0 {
		d += fmt.Sprintf(" sev %.3g", e.Severity)
	}
	if e.Duration > 0 {
		d += fmt.Sprintf(" for %.3gs", e.Duration)
	}
	switch e.Kind {
	case OSTSlowdown, NICFlaky:
		d += " (" + e.Profile.String() + ")"
	}
	return d
}

// Spec declares the fault environment. All MTBF fields are mean time
// between failures per entity in simulated seconds; zero disables that
// kind entirely. Horizon bounds the schedule: no event is generated at
// or beyond it.
type Spec struct {
	Seed    uint64
	Horizon float64

	NodeCrashMTBF    float64
	MemCollapseMTBF  float64
	CollapseFraction float64 // fraction of availability lost, (0,1]

	StragglerMTBF     float64
	StragglerDuration float64
	StragglerFactor   float64 // bandwidth divisor while straggling, > 1

	OSTTransientMTBF     float64
	OSTTransientDuration float64
	OSTPermanentMTBF     float64
	DegradedFactor       float64 // service-time multiplier on a degraded OST, >= 1

	MsgDelayMTBF     float64
	MsgDelayDuration float64
	MsgDelaySeconds  float64 // latency added per message while delayed

	MsgDropMTBF        float64
	DropTimeoutSeconds float64 // detection + resend cost of one dropped message

	// Silent-corruption kinds. Both default to 0 (off) so existing
	// schedules and the fault-free hot path are unchanged; WithCorruption
	// turns them on together.
	MsgBitFlipMTBF float64 // per-node MTBF of one corrupted shuffle message
	TornWriteMTBF  float64 // per-target MTBF of one torn object write

	// Gray-failure kinds. All default to 0 (off) so schedules pinned
	// before they existed are unchanged; WithGray turns them on together.
	OSTSlowdownMTBF     float64 // per-target MTBF of one degradation window
	OSTSlowdownDuration float64 // window length in simulated seconds
	OSTSlowdownFactor   float64 // peak service-time multiplier, > 1

	NICFlakyMTBF      float64 // per-node MTBF of one flaky-link window
	NICFlakyDuration  float64 // window length in simulated seconds
	NICFlakySeconds   float64 // latency added per message while flaky
	NICFlakyDropEvery int     // every k-th in-window message is dropped; 0 = delay only

	MemLeakMTBF     float64 // per-node MTBF of one leak onset
	MemLeakDuration float64 // seconds over which the leak ramps to full size
	MemLeakFraction float64 // fraction of the node budget leaked at full size, (0,1)

	// Recovery pricing knobs consumed by the handlers, kept here so one
	// Spec fully determines a faulted run.
	DetectSeconds float64 // failure-detection latency before a failover
	StallSeconds  float64 // baseline reboot-and-retry stall after a crash
	RetryBackoff  float64 // initial OST retry backoff, doubling per retry
	MaxRetries    int     // retry budget before a transient OST escalates
}

// DefaultSpec returns a fault environment calibrated to an operation
// expected to last about horizon simulated seconds: roughly one or two
// host-level events across a ten-node machine at rate 1, with detection
// and stall costs that are meaningful relative to the operation.
func DefaultSpec(seed uint64, horizon float64) Spec {
	if horizon <= 0 {
		horizon = 1
	}
	return Spec{
		Seed:    seed,
		Horizon: horizon,

		NodeCrashMTBF:    6 * horizon,
		MemCollapseMTBF:  6 * horizon,
		CollapseFraction: 0.9,

		StragglerMTBF:     3 * horizon,
		StragglerDuration: horizon / 4,
		StragglerFactor:   4,

		OSTTransientMTBF:     3 * horizon,
		OSTTransientDuration: horizon / 8,
		OSTPermanentMTBF:     30 * horizon,
		DegradedFactor:       1.5,

		MsgDelayMTBF:     3 * horizon,
		MsgDelayDuration: horizon / 8,
		MsgDelaySeconds:  horizon / 500,

		MsgDropMTBF:        3 * horizon,
		DropTimeoutSeconds: horizon / 200,

		DetectSeconds: horizon / 100,
		StallSeconds:  horizon / 4,
		RetryBackoff:  horizon / 2000,
		MaxRetries:    5,
	}
}

// WithRate scales every failure rate by rate: MTBFs are divided by it,
// so rate 2 doubles the expected event count and rate 0 disables every
// kind (the schedule is empty and the fault path fully inert).
func (s Spec) WithRate(rate float64) Spec {
	if rate <= 0 {
		s.NodeCrashMTBF = 0
		s.MemCollapseMTBF = 0
		s.StragglerMTBF = 0
		s.OSTTransientMTBF = 0
		s.OSTPermanentMTBF = 0
		s.MsgDelayMTBF = 0
		s.MsgDropMTBF = 0
		s.MsgBitFlipMTBF = 0
		s.TornWriteMTBF = 0
		s.OSTSlowdownMTBF = 0
		s.NICFlakyMTBF = 0
		s.MemLeakMTBF = 0
		return s
	}
	s.NodeCrashMTBF /= rate
	s.MemCollapseMTBF /= rate
	s.StragglerMTBF /= rate
	s.OSTTransientMTBF /= rate
	s.OSTPermanentMTBF /= rate
	s.MsgDelayMTBF /= rate
	s.MsgDropMTBF /= rate
	s.MsgBitFlipMTBF /= rate
	s.TornWriteMTBF /= rate
	s.OSTSlowdownMTBF /= rate
	s.NICFlakyMTBF /= rate
	s.MemLeakMTBF /= rate
	return s
}

// WithGray enables the gray-failure kinds — slow-but-answering OSTs,
// flaky NICs, leaking nodes — at the given rate multiplier (1 ≈ one
// window per entity across the horizon). Rate <= 0 leaves them off.
// DefaultSpec keeps all three at 0 so schedules pinned before gray
// faults existed are unchanged.
func (s Spec) WithGray(rate float64) Spec {
	if rate <= 0 {
		s.OSTSlowdownMTBF = 0
		s.NICFlakyMTBF = 0
		s.MemLeakMTBF = 0
		return s
	}
	s.OSTSlowdownMTBF = 2 * s.Horizon / rate
	s.OSTSlowdownDuration = s.Horizon / 3
	s.OSTSlowdownFactor = 6
	s.NICFlakyMTBF = 2 * s.Horizon / rate
	s.NICFlakyDuration = s.Horizon / 4
	s.NICFlakySeconds = s.Horizon / 250
	s.NICFlakyDropEvery = 64
	s.MemLeakMTBF = 4 * s.Horizon / rate
	s.MemLeakDuration = s.Horizon / 2
	s.MemLeakFraction = 0.6
	return s
}

// WithCorruption enables the silent-corruption kinds at the given rate
// multiplier (1 ≈ a couple of corruption events per entity across the
// horizon). Rate <= 0 leaves them off. DefaultSpec keeps both at 0 so
// schedules pinned before corruption faults existed are unchanged.
func (s Spec) WithCorruption(rate float64) Spec {
	if rate <= 0 {
		s.MsgBitFlipMTBF = 0
		s.TornWriteMTBF = 0
		return s
	}
	s.MsgBitFlipMTBF = 2 * s.Horizon / rate
	s.TornWriteMTBF = 2 * s.Horizon / rate
	return s
}

// Validate rejects specs that cannot be scheduled deterministically.
func (s Spec) Validate() error {
	if s.Horizon < 0 || math.IsNaN(s.Horizon) || math.IsInf(s.Horizon, 0) {
		return fmt.Errorf("faults: horizon %v must be finite and non-negative", s.Horizon)
	}
	for _, m := range []struct {
		name string
		v    float64
	}{
		{"NodeCrashMTBF", s.NodeCrashMTBF},
		{"MemCollapseMTBF", s.MemCollapseMTBF},
		{"StragglerMTBF", s.StragglerMTBF},
		{"OSTTransientMTBF", s.OSTTransientMTBF},
		{"OSTPermanentMTBF", s.OSTPermanentMTBF},
		{"MsgDelayMTBF", s.MsgDelayMTBF},
		{"MsgDropMTBF", s.MsgDropMTBF},
		{"MsgBitFlipMTBF", s.MsgBitFlipMTBF},
		{"TornWriteMTBF", s.TornWriteMTBF},
		{"OSTSlowdownMTBF", s.OSTSlowdownMTBF},
		{"NICFlakyMTBF", s.NICFlakyMTBF},
		{"MemLeakMTBF", s.MemLeakMTBF},
	} {
		if m.v < 0 || math.IsNaN(m.v) {
			return fmt.Errorf("faults: %s %v must be >= 0", m.name, m.v)
		}
	}
	if s.MemCollapseMTBF > 0 && (s.CollapseFraction <= 0 || s.CollapseFraction > 1) {
		return fmt.Errorf("faults: CollapseFraction %v must be in (0,1]", s.CollapseFraction)
	}
	if s.StragglerMTBF > 0 && s.StragglerFactor <= 1 {
		return fmt.Errorf("faults: StragglerFactor %v must be > 1", s.StragglerFactor)
	}
	if (s.OSTTransientMTBF > 0 || s.OSTPermanentMTBF > 0) && s.DegradedFactor < 1 {
		return fmt.Errorf("faults: DegradedFactor %v must be >= 1", s.DegradedFactor)
	}
	if s.OSTTransientMTBF > 0 && (s.RetryBackoff <= 0 || s.MaxRetries < 1) {
		return fmt.Errorf("faults: transient OST faults need RetryBackoff > 0 and MaxRetries >= 1")
	}
	if s.OSTSlowdownMTBF > 0 && s.OSTSlowdownFactor <= 1 {
		return fmt.Errorf("faults: OSTSlowdownFactor %v must be > 1", s.OSTSlowdownFactor)
	}
	if s.NICFlakyMTBF > 0 && s.NICFlakyDropEvery < 0 {
		return fmt.Errorf("faults: NICFlakyDropEvery %v must be >= 0", s.NICFlakyDropEvery)
	}
	if s.MemLeakMTBF > 0 && (s.MemLeakFraction <= 0 || s.MemLeakFraction >= 1) {
		return fmt.Errorf("faults: MemLeakFraction %v must be in (0,1)", s.MemLeakFraction)
	}
	return nil
}

// Plan is a generated fault schedule: events sorted by time (ties
// broken by kind, then node, then target, so iteration order is total
// and reproducible).
type Plan struct {
	Spec   Spec
	Events []Event
}

// Generate expands the spec into a schedule for a machine of nodes
// hosts and targets storage targets. Each (kind, entity) pair owns an
// independent RNG stream seeded from Spec.Seed, so schedules are stable
// under machine resizing and kind addition.
func (s Spec) Generate(nodes, targets int) (*Plan, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if nodes < 0 || targets < 0 {
		return nil, fmt.Errorf("faults: negative machine size (%d nodes, %d targets)", nodes, targets)
	}
	p := &Plan{Spec: s}
	addNodeKind := func(kind Kind, mtbf float64, mk func(r *stats.RNG, node int, t float64) Event) {
		if mtbf <= 0 {
			return
		}
		for node := 0; node < nodes; node++ {
			r := streamRNG(s.Seed, kind, node)
			for t := r.Exponential(1 / mtbf); t < s.Horizon; t += r.Exponential(1 / mtbf) {
				p.Events = append(p.Events, mk(r, node, t))
			}
		}
	}
	addTargetKind := func(kind Kind, mtbf float64, mk func(r *stats.RNG, target int, t float64) Event) {
		if mtbf <= 0 {
			return
		}
		for target := 0; target < targets; target++ {
			r := streamRNG(s.Seed, kind, target)
			for t := r.Exponential(1 / mtbf); t < s.Horizon; t += r.Exponential(1 / mtbf) {
				p.Events = append(p.Events, mk(r, target, t))
			}
		}
	}

	addNodeKind(NodeCrash, s.NodeCrashMTBF, func(_ *stats.RNG, node int, t float64) Event {
		return Event{Kind: NodeCrash, Time: t, Node: node, Target: -1}
	})
	addNodeKind(MemCollapse, s.MemCollapseMTBF, func(_ *stats.RNG, node int, t float64) Event {
		return Event{Kind: MemCollapse, Time: t, Node: node, Target: -1, Severity: s.CollapseFraction}
	})
	addNodeKind(Straggler, s.StragglerMTBF, func(_ *stats.RNG, node int, t float64) Event {
		return Event{Kind: Straggler, Time: t, Node: node, Target: -1,
			Duration: s.StragglerDuration, Severity: s.StragglerFactor}
	})
	addNodeKind(MsgDelay, s.MsgDelayMTBF, func(_ *stats.RNG, node int, t float64) Event {
		return Event{Kind: MsgDelay, Time: t, Node: node, Target: -1,
			Duration: s.MsgDelayDuration, Severity: s.MsgDelaySeconds}
	})
	addNodeKind(MsgDrop, s.MsgDropMTBF, func(_ *stats.RNG, node int, t float64) Event {
		return Event{Kind: MsgDrop, Time: t, Node: node, Target: -1, Severity: s.DropTimeoutSeconds}
	})
	addNodeKind(MsgBitFlip, s.MsgBitFlipMTBF, func(_ *stats.RNG, node int, t float64) Event {
		return Event{Kind: MsgBitFlip, Time: t, Node: node, Target: -1}
	})
	addTargetKind(TornWrite, s.TornWriteMTBF, func(_ *stats.RNG, target int, t float64) Event {
		return Event{Kind: TornWrite, Time: t, Node: -1, Target: target}
	})
	addTargetKind(OSTTransient, s.OSTTransientMTBF, func(_ *stats.RNG, target int, t float64) Event {
		return Event{Kind: OSTTransient, Time: t, Node: -1, Target: target, Duration: s.OSTTransientDuration}
	})
	addTargetKind(OSTPermanent, s.OSTPermanentMTBF, func(_ *stats.RNG, target int, t float64) Event {
		return Event{Kind: OSTPermanent, Time: t, Node: -1, Target: target, Severity: s.DegradedFactor}
	})
	// Gray kinds. Each event draws its degradation profile from the same
	// per-(kind, entity) stream as its arrival time, so the curve shape
	// is as schedule-pinned as the window itself.
	addTargetKind(OSTSlowdown, s.OSTSlowdownMTBF, func(r *stats.RNG, target int, t float64) Event {
		return Event{Kind: OSTSlowdown, Time: t, Node: -1, Target: target,
			Duration: s.OSTSlowdownDuration, Severity: s.OSTSlowdownFactor,
			Profile: Profile(r.Intn(numProfiles))}
	})
	addNodeKind(NICFlaky, s.NICFlakyMTBF, func(_ *stats.RNG, node int, t float64) Event {
		return Event{Kind: NICFlaky, Time: t, Node: node, Target: -1,
			Duration: s.NICFlakyDuration, Severity: s.NICFlakySeconds}
	})
	addNodeKind(MemLeak, s.MemLeakMTBF, func(_ *stats.RNG, node int, t float64) Event {
		return Event{Kind: MemLeak, Time: t, Node: node, Target: -1,
			Duration: s.MemLeakDuration, Severity: s.MemLeakFraction}
	})

	sort.Slice(p.Events, func(i, j int) bool {
		a, b := p.Events[i], p.Events[j]
		if a.Time != b.Time {
			return a.Time < b.Time
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.Target < b.Target
	})
	return p, nil
}

// Crashes returns how many NodeCrash events the plan schedules.
func (p *Plan) Crashes() int {
	n := 0
	for _, e := range p.Events {
		if e.Kind == NodeCrash {
			n++
		}
	}
	return n
}

// streamRNG derives the independent generator for one (kind, entity)
// pair. The mixing constants are the SplitMix64 increments, so distinct
// pairs land in well-separated seed space.
func streamRNG(seed uint64, kind Kind, entity int) *stats.RNG {
	return stats.NewRNG(seed ^
		(uint64(kind)+1)*0x9e3779b97f4a7c15 ^
		(uint64(entity)+1)*0xbf58476d1ce4e5b9)
}
