package faults

import (
	"math"
	"testing"
)

// Regression for the backoff-ladder mid-round recovery bug: the first
// access's ladder walks past the window end (the target has recovered
// in ladder time), so a second access in the same round must price zero
// retries instead of re-paying the full ladder from the round boundary.
func TestOSTPenaltyRecoversMidRound(t *testing.T) {
	plan := &Plan{
		Spec: Spec{RetryBackoff: 0.01, MaxRetries: 5},
		Events: []Event{
			{Kind: OSTTransient, Time: 1.5, Node: -1, Target: 0, Duration: 0.1},
		},
	}
	in := NewInjector(plan)
	in.Advance(1.55)

	r1, b1, deg := in.OSTPenalty(0, 1.55)
	if r1 == 0 || b1 <= 0 || deg {
		t.Fatalf("first access: retries=%d backoff=%v degraded=%v, want retries>0, no degradation", r1, b1, deg)
	}
	if 1.55+b1 < 1.6 {
		t.Fatalf("ladder should have cleared the window (paid to %v < 1.6)", 1.55+b1)
	}
	// Same round boundary, second access: the ladder already carried the
	// target past its window end — it has recovered mid-round.
	r2, b2, deg2 := in.OSTPenalty(0, 1.55)
	if r2 != 0 || b2 != 0 || deg2 {
		t.Fatalf("second access re-paid the ladder after mid-round recovery: retries=%d backoff=%v degraded=%v", r2, b2, deg2)
	}
}

// A window too long for one ladder is consumed incrementally: each
// access resumes from the previous access's cursor rather than
// restarting at the round boundary, so repeated accesses walk the
// window out instead of each paying the full ladder forever.
func TestOSTPenaltyLadderCursorAdvances(t *testing.T) {
	plan := &Plan{
		Spec: Spec{RetryBackoff: 0.001, MaxRetries: 2},
		Events: []Event{
			{Kind: OSTTransient, Time: 0.1, Node: -1, Target: 5, Duration: 10},
		},
	}
	in := NewInjector(plan)
	in.Advance(0.2)
	r1, b1, deg := in.OSTPenalty(5, 0.2)
	if r1 != 2 || !deg {
		t.Fatalf("first access: retries=%d degraded=%v, want 2/true", r1, deg)
	}
	r2, b2, _ := in.OSTPenalty(5, 0.2)
	if r2 != 2 {
		t.Fatalf("second access retries=%d, want 2 (window still active past the cursor)", r2)
	}
	if b2 <= 0 || b1 <= 0 {
		t.Fatalf("backoffs must be positive (b1=%v b2=%v)", b1, b2)
	}
	// The cursor advanced: only one escalation even across repeated
	// exhausted ladders.
	if in.Escalations() != 1 {
		t.Fatalf("escalations = %d, want 1", in.Escalations())
	}
}

func TestWithGrayGeneratesAllThreeKinds(t *testing.T) {
	spec := DefaultSpec(42, 10).WithRate(0).WithGray(4)
	plan, err := spec.Generate(8, 6)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[Kind]int{}
	for _, ev := range plan.Events {
		counts[ev.Kind]++
		switch ev.Kind {
		case OSTSlowdown, NICFlaky, MemLeak:
		default:
			t.Fatalf("WithRate(0).WithGray generated non-gray kind %v", ev.Kind)
		}
	}
	for _, k := range []Kind{OSTSlowdown, NICFlaky, MemLeak} {
		if counts[k] == 0 {
			t.Fatalf("no %v events at rate 4 over 8 nodes / 6 targets", k)
		}
	}

	// Determinism: same spec, byte-identical schedule.
	again, err := spec.Generate(8, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(again.Events) != len(plan.Events) {
		t.Fatalf("regenerated schedule has %d events, want %d", len(again.Events), len(plan.Events))
	}
	for i := range plan.Events {
		if plan.Events[i] != again.Events[i] {
			t.Fatalf("event %d differs across regenerations: %+v vs %+v", i, plan.Events[i], again.Events[i])
		}
	}
}

// Adding gray kinds must not perturb schedules pinned before they
// existed: the non-gray event sequence is identical with gray on or off.
func TestGrayKindsDoNotPerturbPinnedSchedules(t *testing.T) {
	base := DefaultSpec(7, 5).WithCorruption(1)
	withGray := base.WithGray(2)
	p1, err := base.Generate(10, 8)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := withGray.Generate(10, 8)
	if err != nil {
		t.Fatal(err)
	}
	var oldOnly []Event
	for _, ev := range p2.Events {
		switch ev.Kind {
		case OSTSlowdown, NICFlaky, MemLeak:
		default:
			oldOnly = append(oldOnly, ev)
		}
	}
	if len(oldOnly) != len(p1.Events) {
		t.Fatalf("gray kinds changed the pre-existing event count: %d vs %d", len(oldOnly), len(p1.Events))
	}
	for i := range p1.Events {
		if p1.Events[i] != oldOnly[i] {
			t.Fatalf("pinned event %d perturbed: %+v vs %+v", i, p1.Events[i], oldOnly[i])
		}
	}
}

func TestOSTSlowdownProfiles(t *testing.T) {
	mk := func(p Profile) *Injector {
		in := NewInjector(&Plan{Events: []Event{
			{Kind: OSTSlowdown, Time: 1, Node: -1, Target: 0, Duration: 8, Severity: 5, Profile: p},
		}})
		in.Advance(1)
		return in
	}

	in := mk(ProfileStep)
	for _, now := range []float64{1.0, 4.5, 8.9} {
		if got := in.OSTSlowdownFactor(0, now); got != 5 {
			t.Fatalf("step factor at %v = %v, want 5", now, got)
		}
	}
	if got := in.OSTSlowdownFactor(0, 9.0); got != 1 {
		t.Fatalf("factor after window = %v, want 1", got)
	}
	if got := in.OSTSlowdownFactor(1, 4); got != 1 {
		t.Fatalf("unaffected target factor = %v, want 1", got)
	}

	in = mk(ProfileDrip)
	early := in.OSTSlowdownFactor(0, 1.1)
	late := in.OSTSlowdownFactor(0, 8.9)
	if early >= late || early < 1 || late > 5 {
		t.Fatalf("drip must ramp: early=%v late=%v", early, late)
	}
	mid := in.OSTSlowdownFactor(0, 5) // frac = 0.5 -> 1 + 4*0.5
	if math.Abs(mid-3) > 1e-9 {
		t.Fatalf("drip midpoint = %v, want 3", mid)
	}

	in = mk(ProfileFlap)
	sawPeak, sawHealthy := false, false
	for now := 1.0; now < 9; now += 0.25 {
		switch in.OSTSlowdownFactor(0, now) {
		case 5:
			sawPeak = true
		case 1:
			sawHealthy = true
		}
	}
	if !sawPeak || !sawHealthy {
		t.Fatalf("flap must alternate (peak=%v healthy=%v)", sawPeak, sawHealthy)
	}
}

func TestNICFlakyDelayAndDrops(t *testing.T) {
	in := NewInjector(&Plan{
		Spec: Spec{NICFlakyDropEvery: 3},
		Events: []Event{
			{Kind: NICFlaky, Time: 2, Node: 4, Target: -1, Duration: 4, Severity: 0.02},
		},
	})
	in.Advance(3)
	if got := in.NICDelaySeconds(4, 3); got != 0.02 {
		t.Fatalf("in-window NIC delay = %v, want 0.02", got)
	}
	if got := in.NICDelaySeconds(4, 7); got != 0 {
		t.Fatalf("post-window NIC delay = %v, want 0", got)
	}
	if got := in.NICDelaySeconds(5, 3); got != 0 {
		t.Fatalf("unaffected node NIC delay = %v, want 0", got)
	}
	drops := 0
	for i := 0; i < 9; i++ {
		if in.TakeNICDrop(4, 3) {
			drops++
		}
	}
	if drops != 3 {
		t.Fatalf("9 in-window messages at DropEvery=3 dropped %d, want 3", drops)
	}
	if in.TakeNICDrop(4, 7) {
		t.Fatal("post-window message dropped")
	}
}

func TestMemLeakFractionRampsAndClamps(t *testing.T) {
	in := NewInjector(&Plan{Events: []Event{
		{Kind: MemLeak, Time: 1, Node: 2, Target: -1, Duration: 10, Severity: 0.6},
	}})
	in.Advance(1)
	if got := in.MemLeakFraction(2, 1); got != 0 {
		t.Fatalf("leak at onset = %v, want 0", got)
	}
	half := in.MemLeakFraction(2, 6) // halfway through the ramp
	if math.Abs(half-0.3) > 1e-9 {
		t.Fatalf("leak at ramp midpoint = %v, want 0.3", half)
	}
	if got := in.MemLeakFraction(2, 100); math.Abs(got-0.6) > 1e-9 {
		t.Fatalf("leak after ramp = %v, want 0.6 (holds, never recovers)", got)
	}
	if got := in.MemLeakFraction(3, 6); got != 0 {
		t.Fatalf("unaffected node leak = %v, want 0", got)
	}

	// Stacked leaks clamp below 1: the node never fully dies.
	in2 := NewInjector(&Plan{Events: []Event{
		{Kind: MemLeak, Time: 0, Node: 0, Target: -1, Duration: 1, Severity: 0.6},
		{Kind: MemLeak, Time: 0, Node: 0, Target: -1, Duration: 1, Severity: 0.6},
	}})
	in2.Advance(0)
	if got := in2.MemLeakFraction(0, 5); got != 0.95 {
		t.Fatalf("stacked leaks = %v, want clamp at 0.95", got)
	}
}
