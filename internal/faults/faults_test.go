package faults

import (
	"reflect"
	"testing"

	"mcio/internal/obs"
)

func TestGenerateDeterministic(t *testing.T) {
	spec := DefaultSpec(42, 2.0)
	a, err := spec.Generate(10, 16)
	if err != nil {
		t.Fatal(err)
	}
	b, err := spec.Generate(10, 16)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Events, b.Events) {
		t.Fatalf("same spec produced different schedules:\n%v\n%v", a.Events, b.Events)
	}
	if len(a.Events) == 0 {
		t.Fatal("default spec over 10 nodes / 16 targets scheduled no events")
	}
	diff, err := DefaultSpec(43, 2.0).Generate(10, 16)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Events, diff.Events) {
		t.Fatal("different seeds produced the identical schedule")
	}
}

func TestGenerateSortedAndBounded(t *testing.T) {
	spec := DefaultSpec(7, 3.0)
	p, err := spec.Generate(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range p.Events {
		if e.Time < 0 || e.Time >= spec.Horizon {
			t.Fatalf("event %d at %v outside [0, %v)", i, e.Time, spec.Horizon)
		}
		if i > 0 && p.Events[i-1].Time > e.Time {
			t.Fatalf("events not time-sorted at %d", i)
		}
		switch e.Kind {
		case OSTTransient, OSTPermanent:
			if e.Target < 0 || e.Target >= 8 {
				t.Fatalf("OST event with target %d", e.Target)
			}
		default:
			if e.Node < 0 || e.Node >= 8 {
				t.Fatalf("node event with node %d", e.Node)
			}
		}
	}
}

func TestStreamsIndependentOfMachineSize(t *testing.T) {
	// Growing the machine must not change the schedule of the existing
	// entities: per-(kind, entity) streams are independent.
	spec := DefaultSpec(11, 2.0)
	small, err := spec.Generate(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	big, err := spec.Generate(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	keep := func(p *Plan) []Event {
		var out []Event
		for _, e := range p.Events {
			if e.Node < 4 && e.Target < 4 {
				out = append(out, e)
			}
		}
		return out
	}
	if !reflect.DeepEqual(keep(small), keep(big)) {
		t.Fatal("resizing the machine perturbed existing entity streams")
	}
}

func TestWithRateZeroIsEmpty(t *testing.T) {
	p, err := DefaultSpec(42, 2.0).WithRate(0).Generate(10, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Events) != 0 {
		t.Fatalf("rate 0 scheduled %d events", len(p.Events))
	}
	if !NewInjector(p).Empty() {
		t.Fatal("injector over empty plan is not Empty")
	}
	if !NewInjector(nil).Empty() {
		t.Fatal("injector over nil plan is not Empty")
	}
}

func TestWithRateScalesEventCount(t *testing.T) {
	base := DefaultSpec(42, 4.0)
	lo, _ := base.Generate(16, 16)
	hi, _ := base.WithRate(4).Generate(16, 16)
	if len(hi.Events) <= len(lo.Events) {
		t.Fatalf("rate 4 gave %d events, rate 1 gave %d", len(hi.Events), len(lo.Events))
	}
}

func TestInjectorAdvanceAndQueries(t *testing.T) {
	plan := &Plan{
		Spec: Spec{RetryBackoff: 0.01, MaxRetries: 3},
		Events: []Event{
			{Kind: NodeCrash, Time: 0.5, Node: 2, Target: -1},
			{Kind: Straggler, Time: 1.0, Node: 1, Target: -1, Duration: 1.0, Severity: 4},
			{Kind: MsgDelay, Time: 1.0, Node: 3, Target: -1, Duration: 0.5, Severity: 0.02},
			{Kind: MsgDrop, Time: 1.2, Node: 3, Target: -1},
			{Kind: OSTTransient, Time: 1.5, Node: -1, Target: 0, Duration: 0.1},
		},
	}
	in := NewInjector(plan)
	in.SetObserver(obs.New())

	if evs := in.Advance(0.4); len(evs) != 0 {
		t.Fatalf("events before their time: %v", evs)
	}
	evs := in.Advance(1.1)
	if len(evs) != 3 {
		t.Fatalf("expected 3 events by t=1.1, got %v", evs)
	}
	if !in.NodeDead(2) || in.NodeDead(1) {
		t.Fatal("crash state wrong")
	}
	if got := in.NodeSlowdown(1, 1.1); got != 4 {
		t.Fatalf("straggler slowdown = %v, want 4", got)
	}
	if got := in.NodeSlowdown(1, 2.5); got != 1 {
		t.Fatalf("slowdown after window = %v, want 1", got)
	}
	if got := in.MsgDelaySeconds(3, 1.1); got != 0.02 {
		t.Fatalf("msg delay = %v, want 0.02", got)
	}
	if in.TakeDrop(3) {
		t.Fatal("drop fired before its event")
	}
	in.Advance(1.6)
	if !in.TakeDrop(3) || in.TakeDrop(3) {
		t.Fatal("each MsgDrop event must drop exactly one message")
	}

	// Inside the transient window the ladder 0.01+0.02 clears the 0.1s
	// window end (1.6 -> 1.55 boundary already past? window end = 1.6):
	retries, backoff, degraded := in.OSTPenalty(0, 1.55)
	if retries == 0 || backoff <= 0 {
		t.Fatalf("transient window priced no retries (r=%d b=%v)", retries, backoff)
	}
	if degraded {
		t.Fatal("window clearable inside retry budget must not degrade the target")
	}
	if r2, b2, _ := in.OSTPenalty(0, 1.7); r2 != 0 || b2 != 0 {
		t.Fatalf("post-window access still priced retries (r=%d b=%v)", r2, b2)
	}

	if got := in.Counts()["node-crash"]; got != 1 {
		t.Fatalf("crash count = %d, want 1", got)
	}
}

func TestInjectorEscalatesExhaustedWindow(t *testing.T) {
	plan := &Plan{
		Spec: Spec{RetryBackoff: 0.001, MaxRetries: 2},
		Events: []Event{
			{Kind: OSTTransient, Time: 0.1, Node: -1, Target: 5, Duration: 10},
		},
	}
	in := NewInjector(plan)
	in.Advance(0.2)
	retries, _, degraded := in.OSTPenalty(5, 0.2)
	if retries != 2 || !degraded {
		t.Fatalf("long window: retries=%d degraded=%v, want 2/true", retries, degraded)
	}
	if in.Escalations() != 1 {
		t.Fatalf("escalations = %d, want 1", in.Escalations())
	}
	// Once degraded, stays degraded.
	if _, _, d := in.OSTPenalty(5, 20); !d {
		t.Fatal("degradation did not persist")
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	bad := []Spec{
		{Horizon: -1},
		{Horizon: 1, NodeCrashMTBF: -2},
		{Horizon: 1, MemCollapseMTBF: 1, CollapseFraction: 1.5},
		{Horizon: 1, StragglerMTBF: 1, StragglerFactor: 0.5},
		{Horizon: 1, OSTTransientMTBF: 1, DegradedFactor: 1, RetryBackoff: 0},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %d validated but should not: %+v", i, s)
		}
	}
	if err := DefaultSpec(1, 1).Validate(); err != nil {
		t.Errorf("default spec rejected: %v", err)
	}
}

// TestPendingQueriesAreStateless pins the contract the analytical fast
// path leans on: PendingDrops, PendingFlips and NICDropActive report
// whether the matching Take query would be stateful, without consuming
// or mutating anything themselves — so a healthy node's messages can be
// bundled without ever touching the injector.
func TestPendingQueriesAreStateless(t *testing.T) {
	plan := &Plan{
		Spec: Spec{NICFlakyDropEvery: 2},
		Events: []Event{
			{Kind: MsgDrop, Time: 1.0, Node: 1, Target: -1},
			{Kind: MsgDrop, Time: 1.1, Node: 1, Target: -1},
			{Kind: MsgBitFlip, Time: 1.0, Node: 2, Target: -1},
			{Kind: NICFlaky, Time: 2.0, Node: 3, Target: -1, Duration: 1.0, Severity: 0.01},
		},
	}
	in := NewInjector(plan)

	if in.PendingDrops(1) != 0 || in.PendingFlips(2) != 0 || in.NICDropActive(3, 0.5) {
		t.Fatal("pending state before any event was applied")
	}
	in.Advance(1.5)
	if got := in.PendingDrops(1); got != 2 {
		t.Fatalf("PendingDrops = %d, want 2", got)
	}
	// Queries are pure: asking repeatedly must not consume.
	if in.PendingDrops(1) != 2 || in.PendingFlips(2) != 1 {
		t.Fatal("pending queries consumed state")
	}
	if !in.TakeDrop(1) {
		t.Fatal("TakeDrop with pending drops returned false")
	}
	if got := in.PendingDrops(1); got != 1 {
		t.Fatalf("after one TakeDrop, PendingDrops = %d, want 1", got)
	}
	if !in.TakeMsgFlip(2) || in.PendingFlips(2) != 0 {
		t.Fatal("TakeMsgFlip did not consume exactly one pending flip")
	}
	// Other nodes stay clean throughout.
	if in.PendingDrops(2) != 0 || in.PendingFlips(1) != 0 {
		t.Fatal("pending state leaked across nodes")
	}

	// NICDropActive brackets the flaky window: false before, true inside
	// (with a positive drop cadence), false after — and checking it never
	// advances the in-window message counter, so the first in-window
	// TakeNICDrop sequence is unperturbed.
	in.Advance(2.5)
	if in.NICDropActive(3, 1.9) {
		t.Fatal("active before window start")
	}
	for i := 0; i < 10; i++ {
		if !in.NICDropActive(3, 2.5) {
			t.Fatal("inactive inside window")
		}
	}
	if in.NICDropActive(3, 3.1) {
		t.Fatal("active after window end")
	}
	// DropEvery = 2: first in-window message passes, second drops — the
	// ten NICDropActive probes above must not have shifted the phase.
	if in.TakeNICDrop(3, 2.5) {
		t.Fatal("first in-window message dropped; cadence phase was perturbed")
	}
	if !in.TakeNICDrop(3, 2.5) {
		t.Fatal("second in-window message not dropped")
	}

	// A cadence of zero means delay-only windows: never drop-stateful.
	delayOnly := NewInjector(&Plan{Events: []Event{
		{Kind: NICFlaky, Time: 0, Node: 0, Target: -1, Duration: 1, Severity: 0.01},
	}})
	delayOnly.Advance(0.5)
	if delayOnly.NICDropActive(0, 0.5) {
		t.Fatal("delay-only flaky window reported drop-stateful")
	}
}
