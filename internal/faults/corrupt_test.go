package faults

import (
	"bytes"
	"reflect"
	"testing"
)

func TestWithCorruptionGeneratesBothKinds(t *testing.T) {
	p, err := DefaultSpec(42, 2.0).WithRate(0).WithCorruption(4).Generate(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[Kind]int{}
	for _, e := range p.Events {
		kinds[e.Kind]++
		switch e.Kind {
		case MsgBitFlip:
			if e.Node < 0 || e.Node >= 8 {
				t.Fatalf("bit-flip event with node %d", e.Node)
			}
		case TornWrite:
			if e.Target < 0 || e.Target >= 8 {
				t.Fatalf("torn-write event with target %d", e.Target)
			}
		default:
			t.Fatalf("corruption-only spec scheduled a %v event", e.Kind)
		}
	}
	if kinds[MsgBitFlip] == 0 || kinds[TornWrite] == 0 {
		t.Fatalf("corruption spec scheduled %d flips / %d tears, want both > 0", kinds[MsgBitFlip], kinds[TornWrite])
	}
	if off, err := DefaultSpec(1, 1).WithCorruption(0).Generate(4, 4); err != nil {
		t.Fatal(err)
	} else {
		for _, e := range off.Events {
			if e.Kind == MsgBitFlip || e.Kind == TornWrite {
				t.Fatal("rate 0 still scheduled corruption events")
			}
		}
	}
}

// TestCorruptionKindsPreservePinnedSchedules pins the satellite guarantee
// that appending new fault kinds never perturbs the schedules of the
// existing kinds: a seed that reproduced a campaign before MsgBitFlip and
// TornWrite existed still reproduces it, corruption on or off.
func TestCorruptionKindsPreservePinnedSchedules(t *testing.T) {
	base := DefaultSpec(42, 2.0)
	plain, err := base.Generate(10, 16)
	if err != nil {
		t.Fatal(err)
	}
	withCorr, err := base.WithCorruption(4).Generate(10, 16)
	if err != nil {
		t.Fatal(err)
	}
	var legacy []Event
	for _, e := range withCorr.Events {
		if e.Kind != MsgBitFlip && e.Kind != TornWrite {
			legacy = append(legacy, e)
		}
	}
	if !reflect.DeepEqual(plain.Events, legacy) {
		t.Fatal("enabling corruption kinds perturbed the pre-existing event streams")
	}
}

func TestInjectorConsumesCorruptionEvents(t *testing.T) {
	plan := &Plan{Events: []Event{
		{Kind: MsgBitFlip, Time: 0.2, Node: 1, Target: -1},
		{Kind: MsgBitFlip, Time: 0.3, Node: 1, Target: -1},
		{Kind: TornWrite, Time: 0.4, Node: -1, Target: 2},
	}}
	in := NewInjector(plan)
	if in.TakeMsgFlip(1) || in.TakeTornWrite(2) {
		t.Fatal("corruption consumed before its event fired")
	}
	in.Advance(1)
	if !in.TakeMsgFlip(1) || !in.TakeMsgFlip(1) || in.TakeMsgFlip(1) {
		t.Fatal("each MsgBitFlip event must corrupt exactly one message")
	}
	if in.TakeMsgFlip(0) {
		t.Fatal("flip leaked to the wrong node")
	}
	if !in.TakeTornWrite(2) || in.TakeTornWrite(2) {
		t.Fatal("each TornWrite event must tear exactly one access")
	}
	if got := in.Counts()["msg-bitflip"]; got != 2 {
		t.Fatalf("flip count = %d, want 2", got)
	}
	if got := in.Counts()["torn-write"]; got != 1 {
		t.Fatalf("tear count = %d, want 1", got)
	}
}

// TestOSTPermanentAppliesAtEventTime is the satellite regression test: an
// OSTPermanent event scheduled mid-round must degrade the target for
// queries at or after its event time, not only once the next Advance
// (round boundary) formally applies it.
func TestOSTPermanentAppliesAtEventTime(t *testing.T) {
	plan := &Plan{
		Spec: Spec{RetryBackoff: 0.01, MaxRetries: 4},
		Events: []Event{
			{Kind: OSTPermanent, Time: 1.0, Node: -1, Target: 3},
		},
	}
	in := NewInjector(plan)
	in.Advance(0.5) // round boundary before the event

	if _, _, deg := in.OSTPenalty(3, 0.9); deg {
		t.Fatal("target degraded before the event time")
	}
	// Mid-round access after the scheduled time: previously this reported
	// healthy until the next Advance; it must degrade at event time.
	if _, _, deg := in.OSTPenalty(3, 1.0); !deg {
		t.Fatal("mid-round access at the event time did not see the degradation")
	}
	// The event itself is still counted by Advance, exactly once.
	if got := in.Counts()["ost-permanent"]; got != 0 {
		t.Fatalf("mid-round visibility double-counted the event (%d)", got)
	}
	if evs := in.Advance(2); len(evs) != 1 {
		t.Fatalf("round boundary fired %d events, want 1", len(evs))
	}
	if got := in.Counts()["ost-permanent"]; got != 1 {
		t.Fatalf("event counted %d times, want 1", got)
	}
}

// TestOSTPermanentDuringBackoffLadder covers the other half of the fix: a
// retry ladder that backs off past the scheduled permanent failure must
// finish against a degraded target.
func TestOSTPermanentDuringBackoffLadder(t *testing.T) {
	plan := &Plan{
		Spec: Spec{RetryBackoff: 0.05, MaxRetries: 4},
		Events: []Event{
			{Kind: OSTTransient, Time: 0.1, Node: -1, Target: 0, Duration: 0.2},
			{Kind: OSTPermanent, Time: 0.25, Node: -1, Target: 0},
		},
	}
	in := NewInjector(plan)
	in.Advance(0.2) // transient window applied; permanent still pending
	// Ladder from t=0.2: backoff 0.05 -> t=0.25, which reaches the
	// scheduled permanent failure while still inside the window.
	if _, _, deg := in.OSTPenalty(0, 0.2); !deg {
		t.Fatal("ladder crossing the permanent-failure time did not degrade the target")
	}
}

func TestCorrupterDeterministicFlips(t *testing.T) {
	plan := &Plan{Events: []Event{
		{Kind: MsgBitFlip, Time: 0.1, Node: 0, Target: -1},
		{Kind: MsgBitFlip, Time: 0.2, Node: 0, Target: -1},
		{Kind: MsgBitFlip, Time: 0.3, Node: 1, Target: -1},
		{Kind: TornWrite, Time: 0.4, Node: -1, Target: 1},
	}}
	ranksByNode := [][]int{{0, 1}, {2, 3}}

	run := func() ([][]byte, int, int, int64) {
		c := NewCorrupter(plan, ranksByNode)
		var outs [][]byte
		for rank := 0; rank < 4; rank++ {
			for msg := 0; msg < 2; msg++ {
				buf := bytes.Repeat([]byte{0x5a}, 16)
				c.CorruptMsg(rank, buf)
				outs = append(outs, buf)
			}
		}
		if !c.PendingTorn(1) || c.PendingTorn(0) {
			panic("scheduled tear events not visible on the right target")
		}
		// Tear selection is a pure hash of (seed, target, offset): walk
		// stripe-aligned offsets until one is selected.
		tornOff := int64(-1)
		for off := int64(0); off < 64*1024; off += 64 {
			if c.TearWrite(0, off) {
				panic("target without tear events tore a write")
			}
			if c.TearWrite(1, off) {
				tornOff = off
				break
			}
		}
		if tornOff < 0 {
			panic("density 1/16 selected nothing in 1024 accesses")
		}
		if c.TearWrite(1, tornOff) {
			panic("the same offset tore twice; a repair rewrite could never land")
		}
		return outs, c.InjectedFlips(), c.InjectedTorn(), tornOff
	}
	a, flipsA, tornA, offA := run()
	b, flipsB, tornB, offB := run()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same plan and rank map produced different corrupted bytes")
	}
	if flipsA != flipsB || tornA != tornB || offA != offB || flipsA == 0 || tornA != 1 {
		t.Fatalf("injection: %d/%d@%d then %d/%d@%d", flipsA, tornA, offA, flipsB, tornB, offB)
	}

	// Node 0's two events went round-robin to ranks 0 and 1, one message
	// each; node 1's single event to rank 2. Every corrupted message
	// differs from the pristine pattern in exactly one bit.
	pristine := bytes.Repeat([]byte{0x5a}, 16)
	flipped := 0
	for i, out := range a {
		diff := 0
		for j := range out {
			diff += popcount8(out[j] ^ pristine[j])
		}
		if diff > 1 {
			t.Fatalf("message %d has %d flipped bits, want at most 1", i, diff)
		}
		flipped += diff
	}
	if flipped != 3 {
		t.Fatalf("%d messages corrupted in total, want 3", flipped)
	}

	var nilCorr *Corrupter = NewCorrupter(nil, nil)
	if !nilCorr.Empty() {
		t.Fatal("corrupter over nil plan is not Empty")
	}
	buf := []byte{1, 2, 3}
	if nilCorr.CorruptMsg(0, buf) {
		t.Fatal("empty corrupter corrupted a message")
	}
}

func popcount8(b byte) int {
	n := 0
	for ; b != 0; b &= b - 1 {
		n++
	}
	return n
}
