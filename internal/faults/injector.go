package faults

import (
	"sort"

	"mcio/internal/obs"
)

// Injector replays a Plan against a simulated clock. The cost loop
// calls Advance at each round boundary to learn which events fired
// since the last boundary, then queries per-node and per-target state
// while building the round. All methods are deterministic given the
// same call sequence; the Injector is not safe for concurrent use.
type Injector struct {
	spec   Spec
	events []Event
	next   int
	now    float64

	dead         map[int]bool    // crashed hosts
	stragglerEnd map[int]float64 // node -> window end
	stragglerFac map[int]float64 // node -> slowdown factor
	delayEnd     map[int]float64 // node -> msg-delay window end
	delaySec     map[int]float64 // node -> seconds added per message
	dropPending  map[int]int     // node -> undelivered drop events
	flipPending  map[int]int     // node -> unconsumed bit-flip events
	tornPending  map[int]int     // target -> unconsumed torn-write events
	ostWindowEnd map[int]float64 // target -> transient-error window end
	ostDegraded  map[int]bool    // target -> permanently degraded
	// ostPermAt is the scheduled time of each target's earliest
	// OSTPermanent event, precomputed so queries between round
	// boundaries see the degradation at event time, not at the next
	// Advance (retry ladders walk forward in time mid-round).
	ostPermAt map[int]float64
	// ostLadderPaid is how far into simulated time each target's retry
	// ladder has already walked: later accesses in the same round resume
	// from here instead of re-paying the ladder from the round boundary,
	// so a target that recovers mid-round is seen as recovered.
	ostLadderPaid map[int]float64

	// Gray-failure windows.
	slowStart map[int]float64 // target -> slowdown window start
	slowEnd   map[int]float64 // target -> slowdown window end
	slowFac   map[int]float64 // target -> peak service-time multiplier
	slowProf  map[int]Profile // target -> degradation curve shape
	nicStart  map[int]float64 // node -> flaky window start
	nicEnd    map[int]float64 // node -> flaky window end
	nicSec    map[int]float64 // node -> latency added per message
	nicEvery  map[int]int     // node -> every k-th in-window message dropped
	nicSeen   map[int]int     // node -> in-window messages observed so far
	leaks     map[int][]Event // node -> leak onsets (rare; summed on query)

	counts    map[Kind]int
	escalated int // transient windows that exhausted the retry budget

	o        *obs.Observer
	injected map[Kind]*obs.Counter
}

// NewInjector builds an injector for plan. A nil plan yields an empty
// injector (Empty reports true and every query is a no-op).
func NewInjector(plan *Plan) *Injector {
	in := &Injector{
		dead:          map[int]bool{},
		stragglerEnd:  map[int]float64{},
		stragglerFac:  map[int]float64{},
		delayEnd:      map[int]float64{},
		delaySec:      map[int]float64{},
		dropPending:   map[int]int{},
		flipPending:   map[int]int{},
		tornPending:   map[int]int{},
		ostWindowEnd:  map[int]float64{},
		ostDegraded:   map[int]bool{},
		ostPermAt:     map[int]float64{},
		ostLadderPaid: map[int]float64{},
		slowStart:     map[int]float64{},
		slowEnd:       map[int]float64{},
		slowFac:       map[int]float64{},
		slowProf:      map[int]Profile{},
		nicStart:      map[int]float64{},
		nicEnd:        map[int]float64{},
		nicSec:        map[int]float64{},
		nicEvery:      map[int]int{},
		nicSeen:       map[int]int{},
		leaks:         map[int][]Event{},
		counts:        map[Kind]int{},
		injected:      map[Kind]*obs.Counter{},
	}
	if plan != nil {
		in.spec = plan.Spec
		in.events = plan.Events
		for _, ev := range plan.Events {
			if ev.Kind != OSTPermanent {
				continue
			}
			if at, ok := in.ostPermAt[ev.Target]; !ok || ev.Time < at {
				in.ostPermAt[ev.Target] = ev.Time
			}
		}
	}
	return in
}

// Spec returns the spec the injector's plan was generated from.
func (in *Injector) Spec() Spec { return in.spec }

// Empty reports whether the injector has no events at all; callers use
// it to take the fault-free fast path (byte-identical to no injector).
func (in *Injector) Empty() bool { return in == nil || len(in.events) == 0 }

// SetObserver attaches metrics; injected events are counted under
// faults.injected{kind}.
func (in *Injector) SetObserver(o *obs.Observer) {
	if in == nil {
		return
	}
	in.o = o
	in.injected = map[Kind]*obs.Counter{}
}

// Advance moves the fault clock to now (simulated seconds) and returns
// the events that fired in (previous, now], already applied to the
// injector's per-node and per-target state. Time never moves backward.
func (in *Injector) Advance(now float64) []Event {
	if in == nil {
		return nil
	}
	if now < in.now {
		now = in.now
	}
	in.now = now
	var fired []Event
	for in.next < len(in.events) && in.events[in.next].Time <= now {
		ev := in.events[in.next]
		in.next++
		in.apply(ev)
		fired = append(fired, ev)
	}
	return fired
}

func (in *Injector) apply(ev Event) {
	in.counts[ev.Kind]++
	if in.o != nil {
		c := in.injected[ev.Kind]
		if c == nil {
			c = in.o.Counter("faults.injected", obs.L("kind", ev.Kind.String()))
			in.injected[ev.Kind] = c
		}
		c.Inc()
	}
	switch ev.Kind {
	case NodeCrash:
		in.dead[ev.Node] = true
	case MemCollapse:
		// State lives with the FaultHandler (it owns the memory model);
		// the injector only counts and reports the event.
	case Straggler:
		end := ev.Time + ev.Duration
		if end > in.stragglerEnd[ev.Node] {
			in.stragglerEnd[ev.Node] = end
			in.stragglerFac[ev.Node] = ev.Severity
		}
	case MsgDelay:
		end := ev.Time + ev.Duration
		if end > in.delayEnd[ev.Node] {
			in.delayEnd[ev.Node] = end
			in.delaySec[ev.Node] = ev.Severity
		}
	case MsgDrop:
		in.dropPending[ev.Node]++
	case MsgBitFlip:
		in.flipPending[ev.Node]++
	case TornWrite:
		in.tornPending[ev.Target]++
	case OSTTransient:
		end := ev.Time + ev.Duration
		if end > in.ostWindowEnd[ev.Target] {
			in.ostWindowEnd[ev.Target] = end
		}
	case OSTPermanent:
		in.ostDegraded[ev.Target] = true
	case OSTSlowdown:
		end := ev.Time + ev.Duration
		if end > in.slowEnd[ev.Target] {
			in.slowStart[ev.Target] = ev.Time
			in.slowEnd[ev.Target] = end
			in.slowFac[ev.Target] = ev.Severity
			in.slowProf[ev.Target] = ev.Profile
		}
	case NICFlaky:
		end := ev.Time + ev.Duration
		if end > in.nicEnd[ev.Node] {
			in.nicStart[ev.Node] = ev.Time
			in.nicEnd[ev.Node] = end
			in.nicSec[ev.Node] = ev.Severity
			in.nicEvery[ev.Node] = in.spec.NICFlakyDropEvery
		}
	case MemLeak:
		in.leaks[ev.Node] = append(in.leaks[ev.Node], ev)
	}
}

// NodeDead reports whether node has crashed as of the last Advance.
func (in *Injector) NodeDead(node int) bool {
	return in != nil && in.dead[node]
}

// DeadNodes returns the crashed hosts in ascending order.
func (in *Injector) DeadNodes() []int {
	if in == nil {
		return nil
	}
	var out []int
	for n := range in.dead {
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}

// NodeSlowdown returns the bandwidth divisor for node at time now: 1
// when healthy, the straggler factor while inside a straggler window.
func (in *Injector) NodeSlowdown(node int, now float64) float64 {
	if in == nil {
		return 1
	}
	if end, ok := in.stragglerEnd[node]; ok && now < end {
		return in.stragglerFac[node]
	}
	return 1
}

// MsgDelaySeconds returns the per-message latency added to messages
// leaving node at time now (0 when healthy).
func (in *Injector) MsgDelaySeconds(node int, now float64) float64 {
	if in == nil {
		return 0
	}
	if end, ok := in.delayEnd[node]; ok && now < end {
		return in.delaySec[node]
	}
	return 0
}

// TakeDrop consumes one pending message drop on node, reporting whether
// a message leaving it is lost. Each MsgDrop event loses exactly one
// message; consumption order is the (deterministic) query order.
func (in *Injector) TakeDrop(node int) bool {
	if in == nil || in.dropPending[node] == 0 {
		return false
	}
	in.dropPending[node]--
	return true
}

// TakeMsgFlip consumes one pending silent bit flip on node, reporting
// whether a message leaving it arrives corrupted. Like TakeDrop, each
// MsgBitFlip event corrupts exactly one message, in deterministic query
// order.
func (in *Injector) TakeMsgFlip(node int) bool {
	if in == nil || in.flipPending[node] == 0 {
		return false
	}
	in.flipPending[node]--
	return true
}

// PendingDrops returns how many unconsumed MsgDrop events node carries.
// While it is zero, TakeDrop on the node is a no-op returning false, so
// the analytical fast path can skip the per-message query entirely for
// nodes with no pending drops without changing any state or result.
func (in *Injector) PendingDrops(node int) int {
	if in == nil {
		return 0
	}
	return in.dropPending[node]
}

// PendingFlips is PendingDrops's counterpart for MsgBitFlip events:
// while zero, TakeMsgFlip on the node is a pure no-op.
func (in *Injector) PendingFlips(node int) int {
	if in == nil {
		return 0
	}
	return in.flipPending[node]
}

// NICDropActive reports whether TakeNICDrop on node at time now is
// stateful: inside a flaky-NIC window with a positive drop cadence,
// every query advances the node's in-window message counter. Outside
// such a window (or with cadence 0) TakeNICDrop is a pure no-op, which
// is what lets the fast path aggregate healthy nodes' messages.
func (in *Injector) NICDropActive(node int, now float64) bool {
	if in == nil {
		return false
	}
	end, ok := in.nicEnd[node]
	return ok && now < end && now >= in.nicStart[node] && in.nicEvery[node] > 0
}

// TakeTornWrite consumes one pending torn write on target, reporting
// whether an object write there lands truncated. Each TornWrite event
// tears exactly one access, in deterministic query order.
func (in *Injector) TakeTornWrite(target int) bool {
	if in == nil || in.tornPending[target] == 0 {
		return false
	}
	in.tornPending[target]--
	return true
}

// OSTPenalty prices one access to target at time now: the number of
// retries the transient window costs, the total backoff seconds spent
// on them (the exponential ladder RetryBackoff, 2×, 4×, … until the
// window ends or MaxRetries is exhausted), and whether the target is
// (now) permanently degraded. A window that outlives the retry budget
// escalates the target to degraded.
//
// The ladder re-checks schedule state at each retry step: an earlier
// access in the same round may already have walked its backoff past the
// window's end, in which case the target has recovered in ladder time
// and later accesses pay nothing — they are not charged as if the
// target stayed failed until the next round boundary.
func (in *Injector) OSTPenalty(target int, now float64) (retries int, backoffSeconds float64, degraded bool) {
	if in == nil {
		return 0, 0, false
	}
	// An OSTPermanent event scheduled at or before the query time degrades
	// the target immediately, even when the round boundary that will
	// formally apply (and count) it hasn't been reached yet: accesses and
	// retry ladders walk forward in time mid-round and must see the
	// degradation deterministically at event time, not a boundary late.
	if at, ok := in.ostPermAt[target]; ok && now >= at {
		in.ostDegraded[target] = true
	}
	if end, ok := in.ostWindowEnd[target]; ok && now < end {
		// Resume from wherever the target's ladder already got to this
		// round; a cursor at or past the window end means the target
		// recovered mid-round and the access succeeds first try.
		start := now
		if paid := in.ostLadderPaid[target]; paid > start {
			start = paid
		}
		if start >= end {
			return 0, 0, in.ostDegraded[target]
		}
		step := in.spec.RetryBackoff
		if step <= 0 {
			step = 1e-4
		}
		max := in.spec.MaxRetries
		if max < 1 {
			max = 1
		}
		for retries < max && start+backoffSeconds < end {
			backoffSeconds += step
			step *= 2
			retries++
			// A ladder that backs off past the scheduled permanent failure
			// finishes against a degraded target.
			if at, ok := in.ostPermAt[target]; ok && start+backoffSeconds >= at {
				in.ostDegraded[target] = true
			}
		}
		if cursor := start + backoffSeconds; cursor > in.ostLadderPaid[target] {
			in.ostLadderPaid[target] = cursor
		}
		if start+backoffSeconds < end && !in.ostDegraded[target] {
			// Retry budget exhausted inside the window: the target is
			// failed over to degraded service for the rest of the run.
			in.ostDegraded[target] = true
			in.escalated++
		}
	}
	return retries, backoffSeconds, in.ostDegraded[target]
}

// OSTWindowActive reports whether target is inside a transient-error
// window at time now, without walking (or charging) the retry ladder.
// Circuit breakers use it to probe schedule state cheaply.
func (in *Injector) OSTWindowActive(target int, now float64) bool {
	if in == nil {
		return false
	}
	end, ok := in.ostWindowEnd[target]
	return ok && now < end
}

// OSTSlowdownFactor returns the gray service-time multiplier for target
// at time now: 1 when healthy, otherwise the window's severity shaped
// by its degradation profile (step holds peak, drip ramps linearly,
// flap alternates healthy/degraded eighths of the window).
func (in *Injector) OSTSlowdownFactor(target int, now float64) float64 {
	if in == nil {
		return 1
	}
	end, ok := in.slowEnd[target]
	if !ok || now >= end || now < in.slowStart[target] {
		return 1
	}
	start := in.slowStart[target]
	peak := in.slowFac[target]
	if peak <= 1 {
		return 1
	}
	frac := (now - start) / (end - start)
	switch in.slowProf[target] {
	case ProfileDrip:
		return 1 + (peak-1)*frac
	case ProfileFlap:
		if int(frac*8)%2 == 1 {
			return 1
		}
		return peak
	default: // ProfileStep
		return peak
	}
}

// NICDelaySeconds returns the gray per-message latency added to
// messages leaving node at time now (0 when healthy). It stacks with
// MsgDelaySeconds: a flaky NIC inside a hard delay window pays both.
func (in *Injector) NICDelaySeconds(node int, now float64) float64 {
	if in == nil {
		return 0
	}
	if end, ok := in.nicEnd[node]; ok && now < end && now >= in.nicStart[node] {
		return in.nicSec[node]
	}
	return 0
}

// TakeNICDrop reports whether a message leaving node at time now is
// lost to its flaky NIC: while inside a flaky window, every k-th
// message observed (deterministic query order) is dropped. Unlike
// TakeDrop there is no fixed per-event budget — the burst lasts as long
// as the window does.
func (in *Injector) TakeNICDrop(node int, now float64) bool {
	if in == nil {
		return false
	}
	end, ok := in.nicEnd[node]
	if !ok || now >= end || now < in.nicStart[node] {
		return false
	}
	every := in.nicEvery[node]
	if every <= 0 {
		return false
	}
	in.nicSeen[node]++
	return in.nicSeen[node]%every == 0
}

// MemLeakFraction returns the cumulative fraction of node's memory
// budget lost to leaks by time now: each leak ramps linearly from 0 at
// onset to its severity over its duration, contributions sum, and the
// total clamps at 0.95 so a leaking node keeps a sliver of budget (the
// leak is gray — the node never actually dies).
func (in *Injector) MemLeakFraction(node int, now float64) float64 {
	if in == nil {
		return 0
	}
	total := 0.0
	for _, ev := range in.leaks[node] {
		if now <= ev.Time {
			continue
		}
		frac := 1.0
		if ev.Duration > 0 {
			frac = (now - ev.Time) / ev.Duration
			if frac > 1 {
				frac = 1
			}
		}
		total += ev.Severity * frac
	}
	if total > 0.95 {
		total = 0.95
	}
	return total
}

// Counts returns how many events of each kind have fired so far, keyed
// by Kind.String() for reporting.
func (in *Injector) Counts() map[string]int {
	out := map[string]int{}
	if in == nil {
		return out
	}
	for k, n := range in.counts {
		out[k.String()] = n
	}
	return out
}

// Escalations returns how many transient OST windows exhausted the
// retry budget and escalated to permanent degradation.
func (in *Injector) Escalations() int {
	if in == nil {
		return 0
	}
	return in.escalated
}
