package cliutil

import (
	"testing"

	"mcio/internal/machine"
)

func TestChoiceUsage(t *testing.T) {
	got := ChoiceUsage("mcio", "chaos", []string{"corruption", "gray"})
	want := "usage: mcio chaos [corruption|gray] [flags]"
	if got != want {
		t.Errorf("ChoiceUsage = %q, want %q", got, want)
	}
}

func TestUnknownChoice(t *testing.T) {
	err := UnknownChoice("chaos campaign", "blue", []string{"corruption", "gray"})
	want := `unknown chaos campaign "blue" (valid: corruption, gray)`
	if err == nil || err.Error() != want {
		t.Errorf("UnknownChoice = %v, want %q", err, want)
	}
}

func TestParseSize(t *testing.T) {
	cases := map[string]int64{
		"1":    1,
		"512":  512,
		"4k":   4 << 10,
		"16M":  16 << 20,
		"2g":   2 << 30,
		" 8m ": 8 << 20,
	}
	for in, want := range cases {
		got, err := ParseSize(in)
		if err != nil {
			t.Errorf("ParseSize(%q): %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("ParseSize(%q) = %d, want %d", in, got, want)
		}
	}
	for _, bad := range []string{"", "abc", "-4m", "0", "4q"} {
		if _, err := ParseSize(bad); err == nil {
			t.Errorf("ParseSize(%q) accepted", bad)
		}
	}
}

func TestFormatSize(t *testing.T) {
	cases := map[int64]string{
		1:         "1B",
		1023:      "1023B",
		1 << 10:   "1KB",
		4 << 20:   "4MB",
		2 << 30:   "2GB",
		3<<20 + 1: "3145729B",
	}
	for in, want := range cases {
		if got := FormatSize(in); got != want {
			t.Errorf("FormatSize(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestFormatParseRoundTrip(t *testing.T) {
	for _, n := range []int64{1, 512, 1 << 10, 3 << 20, 7 << 30} {
		s := FormatSize(n)
		got, err := ParseSize(s)
		if err != nil {
			t.Fatalf("round trip %d -> %q: %v", n, s, err)
		}
		if got != n {
			t.Fatalf("round trip %d -> %q -> %d", n, s, got)
		}
	}
}

func TestDrawAvailability(t *testing.T) {
	mc := machine.Testbed640()
	a := DrawAvailability(mc, 16, 1<<20, 4<<20, 7)
	if len(a) != 16 {
		t.Fatalf("nodes = %d", len(a))
	}
	for i, v := range a {
		if v < 64<<10 || v > mc.MemPerNode {
			t.Fatalf("node %d availability %d outside clamp", i, v)
		}
	}
	b := DrawAvailability(mc, 16, 1<<20, 4<<20, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must reproduce")
		}
	}
}
