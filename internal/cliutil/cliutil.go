// Package cliutil holds the small helpers shared by the command-line
// tools: human-friendly byte-size parsing/formatting and the seeded
// availability setup the IOR- and coll_perf-style drivers share.
package cliutil

import (
	"fmt"
	"strconv"
	"strings"

	"mcio/internal/machine"
	"mcio/internal/stats"
)

// ChoiceUsage renders the one-line usage banner for a subcommand that
// takes one choice from a fixed list — the single-source pattern the
// bench/observe/chaos/profile subcommands share, so adding a campaign
// or experiment updates the usage text automatically.
func ChoiceUsage(prog, sub string, choices []string) string {
	return fmt.Sprintf("usage: %s %s [%s] [flags]", prog, sub, strings.Join(choices, "|"))
}

// UnknownChoice renders the matching unknown-choice error, listing the
// valid values from the same slice the usage banner came from.
func UnknownChoice(what, got string, choices []string) error {
	return fmt.Errorf("unknown %s %q (valid: %s)", what, got, strings.Join(choices, ", "))
}

// ChoiceFlagUsage renders the usage text for a flag that takes one
// choice from a fixed list, single-sourced from the same slice
// UnknownChoice validates against.
func ChoiceFlagUsage(what string, choices []string) string {
	return what + ": " + strings.Join(choices, ", ")
}

// ParseSize parses "64k", "4m", "1g", "16MB", "512B" (binary units) or
// plain bytes.
func ParseSize(s string) (int64, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	if len(s) > 1 && strings.HasSuffix(s, "b") {
		s = strings.TrimSuffix(s, "b")
	}
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "k"):
		mult, s = 1<<10, strings.TrimSuffix(s, "k")
	case strings.HasSuffix(s, "m"):
		mult, s = 1<<20, strings.TrimSuffix(s, "m")
	case strings.HasSuffix(s, "g"):
		mult, s = 1<<30, strings.TrimSuffix(s, "g")
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil || v <= 0 {
		return 0, fmt.Errorf("bad size %q", s)
	}
	return v * mult, nil
}

// FormatSize renders a byte count with the largest exact binary unit.
func FormatSize(n int64) string {
	switch {
	case n >= 1<<30 && n%(1<<30) == 0:
		return fmt.Sprintf("%dGB", n>>30)
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dMB", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dKB", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// DrawAvailability builds the per-node availability vector the benchmark
// drivers use: N(mean, sigma²) per node, clamped to [64 KB, capacity].
func DrawAvailability(mc machine.Config, nodes int, mean, sigma int64, seed uint64) []int64 {
	r := stats.NewRNG(seed)
	avail := make([]int64, nodes)
	for i := range avail {
		v := int64(r.Normal(float64(mean), float64(sigma)))
		if v < 64<<10 {
			v = 64 << 10
		}
		if v > mc.MemPerNode {
			v = mc.MemPerNode
		}
		avail[i] = v
	}
	return avail
}
