package integrity

import (
	"strings"
	"testing"

	"mcio/internal/obs"
	"mcio/internal/pfs"
)

func TestDigestSensitivity(t *testing.T) {
	c := NewChecker(Config{Seed: 42})
	data := []byte("collective i/o moves these bytes")
	base := c.Digest(1024, data)

	if got := c.Digest(1024, data); got != base {
		t.Fatalf("digest not deterministic: %x then %x", base, got)
	}
	// A different offset with identical bytes must change the digest:
	// misdirected writes are corruption too.
	if got := c.Digest(1032, data); got == base {
		t.Fatalf("digest ignores the offset: %x at both 1024 and 1032", got)
	}
	// A different seed must change the digest.
	if got := NewChecker(Config{Seed: 43}).Digest(1024, data); got == base {
		t.Fatalf("digest ignores the seed: %x under seeds 42 and 43", got)
	}
	// Any single bit flip must change the digest.
	for bit := 0; bit < len(data)*8; bit += 7 {
		mut := append([]byte(nil), data...)
		mut[bit/8] ^= 1 << (bit % 8)
		if c.Digest(1024, mut) == base {
			t.Fatalf("bit flip at %d not reflected in digest", bit)
		}
	}
	// The nil checker digests too (unseeded) — hot-path helpers never
	// need a nil guard before hashing.
	var nilc *Checker
	if a, b := nilc.Digest(0, data), nilc.Digest(0, data); a != b {
		t.Fatalf("nil-checker digest not deterministic")
	}
}

func TestStampVerifyRoundTrip(t *testing.T) {
	c := NewChecker(Config{Seed: 7})
	want := []pfs.Extent{{Offset: 0, Length: 10}, {Offset: 64, Length: 22}}
	chunk := make([]byte, 32)
	for i := range chunk {
		chunk[i] = byte(i * 3)
	}

	sums := c.Stamp(want, chunk)
	if len(sums) != 2 {
		t.Fatalf("stamped %d sums, want 2", len(sums))
	}
	if sums[1].Offset != 64 || sums[1].Length != 22 {
		t.Fatalf("sum geometry %d/+%d, want 64/+22", sums[1].Offset, sums[1].Length)
	}
	if err := c.Verify(want, chunk, sums); err != nil {
		t.Fatalf("clean chunk failed verification: %v", err)
	}

	// One flipped bit anywhere in the chunk must fail verification.
	for _, pos := range []int{0, 9, 10, 31} {
		mut := append([]byte(nil), chunk...)
		mut[pos] ^= 0x10
		if err := c.Verify(want, mut, sums); err == nil {
			t.Fatalf("flip at byte %d passed verification", pos)
		}
	}
	// Shifted geometry must fail even with bit-identical bytes.
	shifted := []pfs.Extent{{Offset: 8, Length: 10}, {Offset: 64, Length: 22}}
	if err := c.Verify(shifted, chunk, sums); err == nil {
		t.Fatal("shifted extent geometry passed verification")
	}
	// Wrong sum count must fail.
	if err := c.Verify(want, chunk, sums[:1]); err == nil {
		t.Fatal("truncated sums list passed verification")
	}

	rep := c.Report()
	if rep.Stamped != 2 {
		t.Fatalf("Stamped = %d, want 2", rep.Stamped)
	}
	// 1 clean + 4 flips + 1 shifted + 1 truncated = 7 Verify calls; the
	// clean one and the six failures all count verified extents, and each
	// failure counts one detection.
	if rep.Detected != 6 {
		t.Fatalf("Detected = %d, want 6", rep.Detected)
	}
}

func TestStampFramingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Stamp absorbed a framing mismatch without panicking")
		}
	}()
	c := NewChecker(Config{})
	c.Stamp([]pfs.Extent{{Offset: 0, Length: 4}}, make([]byte, 8))
}

func TestEncodeDecodeSums(t *testing.T) {
	in := []Sum{
		{Offset: 0, Length: 1, Digest: 0xdeadbeefcafe},
		{Offset: 1 << 40, Length: 1 << 20, Digest: ^uint64(0)},
	}
	enc := EncodeSums(in)
	if len(enc) != 48 {
		t.Fatalf("encoded %d bytes, want 48", len(enc))
	}
	out, err := DecodeSums(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("sum %d round-tripped as %+v, want %+v", i, out[i], in[i])
		}
	}
	if _, err := DecodeSums(enc[:23]); err == nil {
		t.Fatal("truncated sums message decoded without error")
	}
	if got, err := DecodeSums(nil); err != nil || len(got) != 0 {
		t.Fatalf("empty sums message: %v, %d sums", err, len(got))
	}
}

func TestCountersAndObserver(t *testing.T) {
	o := obs.New()
	c := NewChecker(Config{Repair: true, MaxRepairs: 9})
	c.SetObserver(o)
	if !c.Repair() || c.MaxRepairs() != 9 {
		t.Fatalf("policy lost: repair=%v budget=%d", c.Repair(), c.MaxRepairs())
	}

	want := []pfs.Extent{{Offset: 0, Length: 8}}
	chunk := make([]byte, 8)
	sums := c.Stamp(want, chunk)
	chunk[3] ^= 1
	if err := c.Verify(want, chunk, sums); err == nil {
		t.Fatal("corrupted chunk passed")
	}
	chunk[3] ^= 1
	if !c.Recheck(want, chunk, sums) {
		t.Fatal("healed chunk failed recheck")
	}
	c.CountRepaired()
	c.CountRewritten(64)

	rep := c.Report()
	if rep.Detected != 1 || rep.Repaired != 1 || rep.RewrittenBytes != 64 {
		t.Fatalf("report %+v, want 1 detected / 1 repaired / 64 rewritten", rep)
	}
	if got := o.Counter("integrity.corruptions_detected").Value(); got != 1 {
		t.Fatalf("observer detected counter = %d, want 1", got)
	}
	if got := o.Counter("integrity.bytes_rewritten").Value(); got != 64 {
		t.Fatalf("observer rewritten counter = %d, want 64", got)
	}
	if s := rep.String(); !strings.Contains(s, "detected 1") {
		t.Fatalf("report string %q missing detection count", s)
	}
}

func TestNilCheckerIsInert(t *testing.T) {
	var c *Checker
	if c.Enabled() || c.Repair() || c.MaxRepairs() != 0 {
		t.Fatal("nil checker claims capabilities")
	}
	if sums := c.Stamp([]pfs.Extent{{Offset: 0, Length: 4}}, make([]byte, 4)); sums != nil {
		t.Fatalf("nil checker stamped %d sums", len(sums))
	}
	if err := c.Verify(nil, nil, nil); err != nil {
		t.Fatalf("nil checker verification failed: %v", err)
	}
	if !c.Recheck(nil, []byte{1}, nil) {
		t.Fatal("nil checker recheck failed")
	}
	c.CountDetected()
	c.CountRepaired()
	c.CountUnrepaired()
	c.CountRewritten(10)
	c.SetObserver(obs.New())
	if rep := c.Report(); rep != (Report{}) {
		t.Fatalf("nil checker report %+v, want zero", rep)
	}
}
