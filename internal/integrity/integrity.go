// Package integrity is the end-to-end data-integrity layer of the
// collective-I/O stack. Every byte a collective operation moves passes
// through several hops — producer rank, shuffle message, aggregator
// staging buffer, striped file — and a silent corruption at any hop
// (a flipped bit on the wire, a torn write on a storage target) would
// otherwise surface only as wrong answers long after the operation
// "succeeded".
//
// The defence is a seeded, offset-mixed checksum stamped per extent at
// the producer and re-verified at every subsequent hop:
//
//   - at aggregator gather (after the shuffle), against the sums the
//     producer stamped on the chunk it shipped;
//   - after PFS write-back, by reading the file domain back and
//     comparing against the sums of the staging buffer that was written;
//   - on collective reads, at the consumer after the scatter message.
//
// Mixing the file offset into each extent's sum means a byte that is
// bit-exact but lands at the wrong offset still fails verification —
// misdirected writes are corruption too.
//
// A Checker carries the seed, the repair policy and the campaign
// counters. It is safe for concurrent use: the executor runs one
// goroutine per rank, and aggregators verify concurrently. All methods
// are nil-safe so the fault-free hot path (no checker installed) pays
// nothing.
package integrity

import (
	"fmt"
	"sync/atomic"

	"mcio/internal/obs"
	"mcio/internal/obs/timeline"
	"mcio/internal/pfs"
)

// Sum is the checksum of one extent's bytes at a known file offset.
type Sum struct {
	Offset int64
	Length int64
	Digest uint64
}

// Config declares a checker's policy.
type Config struct {
	// Seed perturbs every digest so campaigns with different seeds
	// cannot mask each other's corruptions (and a buggy all-zeros
	// digest cannot pass by accident).
	Seed uint64
	// Repair enables the detect→re-request→rewrite path: a chunk that
	// fails verification is re-requested from its producer, and a file
	// domain that fails read-back verification is rewritten. With
	// Repair false the checker only detects and counts.
	Repair bool
	// MaxRepairs bounds repair attempts per chunk or domain; zero means
	// the default (4).
	MaxRepairs int
}

// Checker stamps and verifies extent checksums and accounts the
// campaign: how many sums were stamped, verified, how many corruptions
// were detected, repaired, or left unrepaired, and how many bytes the
// rewrite path re-issued to the file system.
type Checker struct {
	cfg Config

	stamped    atomic.Int64
	verified   atomic.Int64
	detected   atomic.Int64
	repaired   atomic.Int64
	unrepaired atomic.Int64
	rewritten  atomic.Int64 // bytes re-issued by domain rewrites

	// Pre-resolved obs counters; nil when unobserved.
	cStamped    *obs.Counter
	cVerified   *obs.Counter
	cDetected   *obs.Counter
	cRepaired   *obs.Counter
	cUnrepaired *obs.Counter
	cRewritten  *obs.Counter
}

// NewChecker builds a checker for the given policy.
func NewChecker(cfg Config) *Checker {
	if cfg.MaxRepairs <= 0 {
		cfg.MaxRepairs = 4
	}
	return &Checker{cfg: cfg}
}

// Config returns the checker's policy.
func (c *Checker) Config() Config { return c.cfg }

// Enabled reports whether verification is active; an executor given a
// nil checker takes the exact legacy byte path.
func (c *Checker) Enabled() bool { return c != nil }

// Repair reports whether the detect→re-request→rewrite path is on.
func (c *Checker) Repair() bool { return c != nil && c.cfg.Repair }

// MaxRepairs returns the per-chunk/per-domain repair attempt budget.
func (c *Checker) MaxRepairs() int {
	if c == nil {
		return 0
	}
	return c.cfg.MaxRepairs
}

// SetObserver attaches metrics: integrity.sums_stamped,
// integrity.sums_verified, integrity.corruptions_detected,
// integrity.corruptions_repaired, integrity.corruptions_unrepaired and
// integrity.bytes_rewritten. Nil detaches. Call before the operation.
func (c *Checker) SetObserver(o *obs.Observer) {
	if c == nil {
		return
	}
	if o == nil || o.Metrics == nil {
		c.cStamped, c.cVerified, c.cDetected = nil, nil, nil
		c.cRepaired, c.cUnrepaired, c.cRewritten = nil, nil, nil
		return
	}
	c.cStamped = o.Counter("integrity.sums_stamped")
	c.cVerified = o.Counter("integrity.sums_verified")
	c.cDetected = o.Counter("integrity.corruptions_detected")
	c.cRepaired = o.Counter("integrity.corruptions_repaired")
	c.cUnrepaired = o.Counter("integrity.corruptions_unrepaired")
	c.cRewritten = o.Counter("integrity.bytes_rewritten")
}

// fnv offsets/primes (FNV-1a, 64 bit).
const (
	fnvOffset = 0xcbf29ce484222325
	fnvPrime  = 0x100000001b3
)

// Digest computes the seeded checksum of p as the bytes at file offset
// off. The offset (and the seed) participate in the hash, so identical
// bytes at a different offset produce a different digest.
func (c *Checker) Digest(off int64, p []byte) uint64 {
	var h uint64 = fnvOffset
	if c != nil {
		h ^= c.cfg.Seed
		h *= fnvPrime
	}
	for i := 0; i < 8; i++ {
		h ^= uint64(byte(off >> (8 * i)))
		h *= fnvPrime
	}
	for _, b := range p {
		h ^= uint64(b)
		h *= fnvPrime
	}
	return h
}

// Stamp computes one Sum per extent of want over chunk, where chunk is
// the concatenation of the want extents' bytes in file order (the wire
// format of a shuffle message). Nil-safe: a nil checker stamps nothing.
func (c *Checker) Stamp(want []pfs.Extent, chunk []byte) []Sum {
	if c == nil {
		return nil
	}
	sums := make([]Sum, len(want))
	var pos int64
	for i, w := range want {
		sums[i] = Sum{Offset: w.Offset, Length: w.Length,
			Digest: c.Digest(w.Offset, chunk[pos:pos+w.Length])}
		pos += w.Length
	}
	c.stamped.Add(int64(len(sums)))
	if c.cStamped != nil {
		c.cStamped.Add(int64(len(sums)))
	}
	if pos != int64(len(chunk)) {
		// Framing bugs must not be silently absorbed into a digest.
		panic(fmt.Sprintf("integrity: stamped %d of %d chunk bytes", pos, len(chunk)))
	}
	return sums
}

// Verify re-computes the sums of chunk against the stamped sums and
// reports the first mismatch: extent geometry that differs from the
// stamp, or a digest that no longer matches. A verification failure is
// counted as one detected corruption. Nil-safe (always passes).
func (c *Checker) Verify(want []pfs.Extent, chunk []byte, sums []Sum) error {
	if c == nil {
		return nil
	}
	err := c.check(want, chunk, sums)
	c.verified.Add(int64(len(want)))
	if c.cVerified != nil {
		c.cVerified.Add(int64(len(want)))
	}
	if err != nil {
		c.CountDetected()
	}
	return err
}

// check is Verify without the counters (shared with re-verification
// inside repair loops, which must not double-count detections).
func (c *Checker) check(want []pfs.Extent, chunk []byte, sums []Sum) error {
	if len(sums) != len(want) {
		return fmt.Errorf("integrity: %d sums for %d extents", len(sums), len(want))
	}
	var pos int64
	for i, w := range want {
		s := sums[i]
		if s.Offset != w.Offset || s.Length != w.Length {
			return fmt.Errorf("integrity: extent %d stamped as [%d,+%d), expected [%d,+%d)",
				i, s.Offset, s.Length, w.Offset, w.Length)
		}
		if got := c.Digest(w.Offset, chunk[pos:pos+w.Length]); got != s.Digest {
			return fmt.Errorf("integrity: extent %d at offset %d (%d bytes): digest %016x != stamped %016x",
				i, w.Offset, w.Length, got, s.Digest)
		}
		pos += w.Length
	}
	if pos != int64(len(chunk)) {
		return fmt.Errorf("integrity: chunk is %d bytes, extents cover %d", len(chunk), pos)
	}
	return nil
}

// Recheck re-verifies after a repair attempt without counting a fresh
// detection; it reports whether the chunk is now clean.
func (c *Checker) Recheck(want []pfs.Extent, chunk []byte, sums []Sum) bool {
	return c == nil || c.check(want, chunk, sums) == nil
}

// CountDetected records one detected corruption outside Verify (the
// write-back read-verify path compares digests directly).
func (c *Checker) CountDetected() {
	if c == nil {
		return
	}
	c.detected.Add(1)
	if c.cDetected != nil {
		c.cDetected.Inc()
	}
}

// CountRepaired records one corruption healed by re-request or rewrite.
func (c *Checker) CountRepaired() {
	if c == nil {
		return
	}
	c.repaired.Add(1)
	if c.cRepaired != nil {
		c.cRepaired.Inc()
	}
}

// CountUnrepaired records a corruption that survived the repair budget
// (or was detected with repair disabled).
func (c *Checker) CountUnrepaired() {
	if c == nil {
		return
	}
	c.unrepaired.Add(1)
	if c.cUnrepaired != nil {
		c.cUnrepaired.Inc()
	}
}

// CountRewritten records bytes re-issued to the file system by the
// domain rewrite path, for bytes-written conservation accounting.
func (c *Checker) CountRewritten(n int64) {
	if c == nil {
		return
	}
	c.rewritten.Add(n)
	if c.cRewritten != nil {
		c.cRewritten.Add(n)
	}
}

// Report is a point-in-time snapshot of a checker's counters.
type Report struct {
	Stamped        int64 // extent sums stamped at producers
	Verified       int64 // extent sums re-verified at consumers
	Detected       int64 // corruptions detected (any hop)
	Repaired       int64 // corruptions healed by re-request or rewrite
	Unrepaired     int64 // detections that exhausted (or skipped) repair
	RewrittenBytes int64 // bytes re-issued by domain rewrites
}

// Report snapshots the counters. Nil-safe (zero report).
func (c *Checker) Report() Report {
	if c == nil {
		return Report{}
	}
	return Report{
		Stamped:        c.stamped.Load(),
		Verified:       c.verified.Load(),
		Detected:       c.detected.Load(),
		Repaired:       c.repaired.Load(),
		Unrepaired:     c.unrepaired.Load(),
		RewrittenBytes: c.rewritten.Load(),
	}
}

// String renders the report for campaign summaries.
func (r Report) String() string {
	return fmt.Sprintf("stamped %d, verified %d, detected %d, repaired %d, unrepaired %d, rewritten %d B",
		r.Stamped, r.Verified, r.Detected, r.Repaired, r.Unrepaired, r.RewrittenBytes)
}

// JournalInto records the report as one unstamped repair event in the
// journal. The checker's counters move concurrently across execution
// goroutines, so per-incident timestamps would not be deterministic —
// the end-of-run summary is. Quiet reports (nothing detected) journal
// nothing.
func (r Report) JournalInto(j *timeline.Journal, entity string) {
	if r.Detected == 0 && r.Repaired == 0 && r.Unrepaired == 0 {
		return
	}
	j.RecordSeq(timeline.EvRepair, entity, r.String())
}

// EncodeSums serializes sums for a shuffle side-channel message
// (little-endian 24-byte records).
func EncodeSums(sums []Sum) []byte {
	out := make([]byte, 24*len(sums))
	for i, s := range sums {
		putU64(out[24*i:], uint64(s.Offset))
		putU64(out[24*i+8:], uint64(s.Length))
		putU64(out[24*i+16:], s.Digest)
	}
	return out
}

// DecodeSums parses a sums message; a length that is not a whole number
// of records is an error (a truncated sums message is itself evidence
// of corruption).
func DecodeSums(p []byte) ([]Sum, error) {
	if len(p)%24 != 0 {
		return nil, fmt.Errorf("integrity: sums message of %d bytes is not a record multiple", len(p))
	}
	sums := make([]Sum, len(p)/24)
	for i := range sums {
		sums[i] = Sum{
			Offset: int64(getU64(p[24*i:])),
			Length: int64(getU64(p[24*i+8:])),
			Digest: getU64(p[24*i+16:]),
		}
	}
	return sums, nil
}

func putU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func getU64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}
