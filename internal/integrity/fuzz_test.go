package integrity

import (
	"bytes"
	"testing"

	"mcio/internal/pfs"
)

// FuzzIntegrityCodec throws arbitrary bytes at the sums-message decoder
// and arbitrary payloads at the stamp/verify round trip. The decoder
// must never panic, must reject non-record-multiple lengths, and must
// re-encode byte-identically; a clean round trip must always verify, and
// any single-bit payload flip must always be detected.
func FuzzIntegrityCodec(f *testing.F) {
	f.Add(uint64(0), int64(0), []byte{})
	f.Add(uint64(42), int64(4096), []byte("seed corpus payload"))
	f.Add(uint64(1), int64(1<<40), bytes.Repeat([]byte{0xa5}, 64))
	f.Add(^uint64(0), int64(-8), []byte{0, 0, 0, 0, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, seed uint64, off int64, payload []byte) {
		// Decoder: arbitrary input never panics; valid lengths round-trip.
		sums, err := DecodeSums(payload)
		if len(payload)%24 != 0 {
			if err == nil {
				t.Fatalf("decoded %d bytes (not a record multiple) without error", len(payload))
			}
		} else if err != nil {
			t.Fatalf("rejected a record-multiple message of %d bytes: %v", len(payload), err)
		} else if enc := EncodeSums(sums); !bytes.Equal(enc, payload) {
			t.Fatalf("re-encode differs from input: %x != %x", enc, payload)
		}

		// Stamp/verify: a clean chunk always passes, any flipped bit fails.
		c := NewChecker(Config{Seed: seed})
		want := []pfs.Extent{{Offset: off, Length: int64(len(payload))}}
		stamped := c.Stamp(want, payload)
		if err := c.Verify(want, payload, stamped); err != nil {
			t.Fatalf("clean chunk failed verification: %v", err)
		}
		decoded, err := DecodeSums(EncodeSums(stamped))
		if err != nil {
			t.Fatalf("stamped sums did not survive the codec: %v", err)
		}
		if len(payload) > 0 {
			mut := append([]byte(nil), payload...)
			bit := int(seed % uint64(len(mut)*8))
			mut[bit/8] ^= 1 << (bit % 8)
			if err := c.Verify(want, mut, decoded); err == nil {
				t.Fatalf("flip at bit %d passed verification", bit)
			}
		}
	})
}
