package pfs

import (
	"fmt"
	"sync"
)

// Layout is a per-file striping policy, the equivalent of Lustre's
// `lfs setstripe`: a stripe unit, a stripe count (how many of the file
// system's targets the file spreads over), and the first target index.
// The paper's experiments stripe "over all I/O servers with the round
// robin default striping strategy"; Layout lets individual files deviate.
type Layout struct {
	StripeUnit  int64
	StripeCount int // number of targets used; 0 means all
	FirstTarget int // offset into the target list
}

// normalize fills defaults against the file system configuration and
// validates the result.
func (l Layout) normalize(cfg Config) (Layout, error) {
	if l.StripeUnit == 0 {
		l.StripeUnit = cfg.StripeUnit
	}
	if l.StripeCount == 0 {
		l.StripeCount = cfg.Targets
	}
	switch {
	case l.StripeUnit <= 0:
		return l, fmt.Errorf("pfs: stripe unit %d must be positive", l.StripeUnit)
	case l.StripeCount < 1 || l.StripeCount > cfg.Targets:
		return l, fmt.Errorf("pfs: stripe count %d outside [1,%d]", l.StripeCount, cfg.Targets)
	case l.FirstTarget < 0 || l.FirstTarget >= cfg.Targets:
		return l, fmt.Errorf("pfs: first target %d outside [0,%d)", l.FirstTarget, cfg.Targets)
	}
	return l, nil
}

// layoutConfig derives the Config describing this layout's stripe math:
// same cost parameters, restricted target set.
func (l Layout) layoutConfig(cfg Config) Config {
	out := cfg
	out.StripeUnit = l.StripeUnit
	out.Targets = l.StripeCount
	return out
}

// mapTarget translates a layout-relative target index to a file-system
// target index.
func (l Layout) mapTarget(cfg Config, t int) int {
	return (l.FirstTarget + t) % cfg.Targets
}

// OpenStriped opens (creating if needed) a file with an explicit striping
// layout. Opening an existing file with a different layout is an error —
// stripe settings are fixed at creation, as on Lustre.
func (fs *FileSystem) OpenStriped(name string, layout Layout) (*File, error) {
	norm, err := layout.normalize(fs.cfg)
	if err != nil {
		return nil, err
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if f := fs.files[name]; f != nil {
		if f.layout != norm {
			return nil, fmt.Errorf("pfs: file %q already striped %+v", name, f.layout)
		}
		return f, nil
	}
	f := &File{
		fs:      fs,
		name:    name,
		layout:  norm,
		objects: make([][]byte, norm.StripeCount),
	}
	fs.files[name] = f
	return f, nil
}

// Layout returns the file's striping policy.
func (f *File) Layout() Layout { return f.layout }

// MapFileExtents decomposes file-space extents of this file into accesses
// on the file system's targets, honouring the file's own layout.
func (f *File) MapFileExtents(exts []Extent) []TargetAccess {
	cfg := f.layout.layoutConfig(f.fs.cfg)
	accs := cfg.MapExtents(exts)
	for i := range accs {
		accs[i].Target = f.layout.mapTarget(f.fs.cfg, accs[i].Target)
	}
	return accs
}

// TargetStats accumulates per-target byte counters for a file system —
// the "which OST is hot" view an administrator would pull from server
// statistics.
type TargetStats struct {
	mu      sync.Mutex
	read    []int64
	written []int64
}

// NewTargetStats creates counters for a file system's targets.
func NewTargetStats(targets int) *TargetStats {
	return &TargetStats{read: make([]int64, targets), written: make([]int64, targets)}
}

// RecordWrite adds written bytes for a target.
func (s *TargetStats) RecordWrite(target int, bytes int64) {
	s.mu.Lock()
	s.written[target] += bytes
	s.mu.Unlock()
}

// RecordRead adds read bytes for a target.
func (s *TargetStats) RecordRead(target int, bytes int64) {
	s.mu.Lock()
	s.read[target] += bytes
	s.mu.Unlock()
}

// Written returns per-target written bytes.
func (s *TargetStats) Written() []int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]int64(nil), s.written...)
}

// Read returns per-target read bytes.
func (s *TargetStats) Read() []int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]int64(nil), s.read...)
}

// Imbalance returns max/mean of written+read bytes across targets — 1.0
// is perfectly balanced; large values flag hotspots. Returns 0 when no
// traffic was recorded.
func (s *TargetStats) Imbalance() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var max, sum int64
	for i := range s.written {
		t := s.written[i] + s.read[i]
		sum += t
		if t > max {
			max = t
		}
	}
	if sum == 0 {
		return 0
	}
	mean := float64(sum) / float64(len(s.written))
	return float64(max) / mean
}
