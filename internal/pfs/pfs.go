// Package pfs simulates a striped parallel file system in the style of
// Lustre: a file's byte stream is split into stripe units distributed
// round-robin across object storage targets (OSTs). Files store real bytes,
// so every collective I/O strategy in this repository is verified
// end-to-end: what a collective write puts on the targets is exactly what a
// later read — collective or independent — must return.
//
// The package also performs the stripe mapping used for cost accounting:
// MapExtents converts a set of file-space extents into per-target accesses
// (bytes, request counts, contiguity) that the sim engine prices.
package pfs

import (
	"bytes"
	"fmt"
	"sort"
	"strconv"
	"sync"

	"mcio/internal/obs"
)

// Config describes the file system layout and the performance of its
// targets.
type Config struct {
	Targets    int   // number of OSTs
	StripeUnit int64 // bytes per stripe unit (the paper's runs use 1 MB)

	// Cost-model parameters consumed by the sim engine via StorageParams.
	TargetBW float64 // streaming write bandwidth per target, bytes/s
	// ReadBWFactor scales TargetBW for reads (storage reads stream faster
	// than writes). The zero value means symmetric (factor 1).
	ReadBWFactor    float64
	ReqOverhead     float64 // per-request overhead, seconds
	NoncontigFactor float64 // slowdown for fragmented target accesses
}

// Validate reports an error when the layout is unusable.
func (c Config) Validate() error {
	switch {
	case c.Targets <= 0:
		return fmt.Errorf("pfs: Targets = %d, must be positive", c.Targets)
	case c.StripeUnit <= 0:
		return fmt.Errorf("pfs: StripeUnit = %d, must be positive", c.StripeUnit)
	case c.TargetBW <= 0:
		return fmt.Errorf("pfs: TargetBW must be positive")
	case c.ReadBWFactor < 0:
		return fmt.Errorf("pfs: ReadBWFactor must be non-negative")
	case c.ReqOverhead < 0:
		return fmt.Errorf("pfs: ReqOverhead must be non-negative")
	case c.NoncontigFactor < 1:
		return fmt.Errorf("pfs: NoncontigFactor must be >= 1")
	}
	return nil
}

// DefaultConfig mirrors the paper's testbed file system: 1 MB stripes
// round-robin over all targets ("files were striped over all I/O servers
// with the round robin default striping strategy, 1 MB unit size").
func DefaultConfig(targets int) Config {
	return Config{
		Targets:         targets,
		StripeUnit:      1 << 20,
		TargetBW:        500e6,
		ReadBWFactor:    1.25, // reads stream faster than writes, as on the testbed
		ReqOverhead:     0.5e-3,
		NoncontigFactor: 4,
	}
}

// FileSystem is a namespace of striped files.
type FileSystem struct {
	cfg   Config
	stats *TargetStats
	mu    sync.Mutex
	files map[string]*File

	// Per-target observability counters, pre-resolved at SetObserver time;
	// nil when uninstrumented. Concurrent aggregator writers share them.
	obsWritten []*obs.Counter
	obsRead    []*obs.Counter
	obsReqs    []*obs.Counter
	obsRetries []*obs.Counter

	faultState
}

// NewFileSystem creates an empty file system with the given layout.
func NewFileSystem(cfg Config) (*FileSystem, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &FileSystem{
		cfg:   cfg,
		stats: NewTargetStats(cfg.Targets),
		files: map[string]*File{},
	}, nil
}

// Config returns the file system's layout configuration.
func (fs *FileSystem) Config() Config { return fs.cfg }

// Stats returns the per-target traffic counters.
func (fs *FileSystem) Stats() *TargetStats { return fs.stats }

// SetObserver attaches per-OST metrics to the file system:
// pfs.bytes_written{ost}, pfs.bytes_read{ost}, pfs.requests{ost}
// (one request per contiguous object access), and pfs.retries{ost}
// (accesses re-issued after an injected fault). A nil observer detaches.
// Call before issuing I/O; counters are safe for concurrent writers.
func (fs *FileSystem) SetObserver(o *obs.Observer) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if o == nil || o.Metrics == nil {
		fs.obsWritten, fs.obsRead, fs.obsReqs, fs.obsRetries = nil, nil, nil, nil
		return
	}
	fs.obsWritten = make([]*obs.Counter, fs.cfg.Targets)
	fs.obsRead = make([]*obs.Counter, fs.cfg.Targets)
	fs.obsReqs = make([]*obs.Counter, fs.cfg.Targets)
	fs.obsRetries = make([]*obs.Counter, fs.cfg.Targets)
	for t := 0; t < fs.cfg.Targets; t++ {
		l := obs.L("ost", strconv.Itoa(t))
		fs.obsWritten[t] = o.Counter("pfs.bytes_written", l)
		fs.obsRead[t] = o.Counter("pfs.bytes_read", l)
		fs.obsReqs[t] = o.Counter("pfs.requests", l)
		fs.obsRetries[t] = o.Counter("pfs.retries", l)
	}
}

// observe accounts one object access on a file-system target.
func (fs *FileSystem) observe(target int, bytes int64, write bool) {
	if fs.obsReqs == nil {
		return
	}
	fs.obsReqs[target].Inc()
	if write {
		fs.obsWritten[target].Add(bytes)
	} else {
		fs.obsRead[target].Add(bytes)
	}
}

// Open returns the named file, creating it empty with the file system's
// default striping if absent.
func (fs *FileSystem) Open(name string) *File {
	f, err := fs.OpenStriped(name, Layout{})
	if err != nil {
		// The zero layout always normalizes against a valid config; an
		// error here means the name exists with a custom layout — return
		// it, matching Open's historical always-succeeds contract.
		fs.mu.Lock()
		defer fs.mu.Unlock()
		return fs.files[name]
	}
	return f
}

// Remove deletes the named file. Removing an absent file is a no-op.
func (fs *FileSystem) Remove(name string) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	delete(fs.files, name)
}

// Files returns the names of all files, sorted.
func (fs *FileSystem) Files() []string {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	names := make([]string, 0, len(fs.files))
	for n := range fs.files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// File is one striped file. Methods are safe for concurrent use; writes to
// disjoint ranges from concurrent aggregators are the normal case.
type File struct {
	fs     *FileSystem
	name   string
	layout Layout

	mu      sync.RWMutex
	objects [][]byte // per layout-relative target object contents
	size    int64    // file size (highest written offset + 1)
}

// Name returns the file's name.
func (f *File) Name() string { return f.name }

// Size returns the current file size in bytes.
func (f *File) Size() int64 {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.size
}

// stripeLoc maps a file offset to (target, object offset).
func (c Config) stripeLoc(off int64) (target int, objOff int64) {
	su := c.StripeUnit
	stripe := off / su
	target = int(stripe % int64(c.Targets))
	objOff = (stripe/int64(c.Targets))*su + off%su
	return target, objOff
}

// WriteAt writes p at file offset off, growing the file as needed.
// It returns len(p). Negative offsets are an error.
func (f *File) WriteAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("pfs: WriteAt %s: negative offset %d", f.name, off)
	}
	if len(p) == 0 {
		return 0, nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	cfg := f.layout.layoutConfig(f.fs.cfg)
	su := cfg.StripeUnit
	for pos := 0; pos < len(p); {
		cur := off + int64(pos)
		target, objOff := cfg.stripeLoc(cur)
		// Bytes until the end of this stripe unit.
		n := int(su - cur%su)
		if rem := len(p) - pos; n > rem {
			n = rem
		}
		obj := f.objects[target]
		if need := objOff + int64(n); int64(len(obj)) < need {
			grown := make([]byte, need)
			copy(grown, obj)
			obj = grown
			f.objects[target] = obj
		}
		fsTarget := f.layout.mapTarget(f.fs.cfg, target)
		if err := f.fs.access(fsTarget, true); err != nil {
			return pos, fmt.Errorf("pfs: WriteAt %s: %w", f.name, err)
		}
		keep := n
		if wc := f.fs.corr; wc != nil && wc.PendingTorn(fsTarget) {
			// Tear the write only if dropping the tail actually changes the
			// stored bytes — a tear nobody could ever observe is no
			// corruption, and consuming the event for it would break the
			// "every injected corruption is detectable" accounting.
			half := n / 2
			if !bytes.Equal(obj[objOff+int64(half):objOff+int64(n)], p[pos+half:pos+n]) &&
				wc.TearWrite(fsTarget, cur) {
				keep = half
			}
		}
		copy(obj[objOff:objOff+int64(keep)], p[pos:pos+keep])
		// Stats record the full request: the target acknowledged all n
		// bytes, which is exactly what makes the tear silent.
		f.fs.stats.RecordWrite(fsTarget, int64(n))
		f.fs.observe(fsTarget, int64(n), true)
		pos += n
	}
	if end := off + int64(len(p)); end > f.size {
		f.size = end
	}
	return len(p), nil
}

// ReadAt reads len(p) bytes at file offset off. Bytes beyond the file size
// or never written read as zero, matching sparse-file semantics; n is
// len(p) with a nil error for non-negative offsets unless an injected
// fault exhausts its retries.
func (f *File) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("pfs: ReadAt %s: negative offset %d", f.name, off)
	}
	if len(p) == 0 {
		return 0, nil
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	cfg := f.layout.layoutConfig(f.fs.cfg)
	su := cfg.StripeUnit
	for pos := 0; pos < len(p); {
		cur := off + int64(pos)
		target, objOff := cfg.stripeLoc(cur)
		n := int(su - cur%su)
		if rem := len(p) - pos; n > rem {
			n = rem
		}
		fsTarget := f.layout.mapTarget(f.fs.cfg, target)
		if err := f.fs.access(fsTarget, false); err != nil {
			return pos, fmt.Errorf("pfs: ReadAt %s: %w", f.name, err)
		}
		f.fs.stats.RecordRead(fsTarget, int64(n))
		f.fs.observe(fsTarget, int64(n), false)
		obj := f.objects[target]
		have := int64(len(obj)) - objOff // stored bytes available at objOff
		if have > int64(n) {
			have = int64(n)
		}
		if have > 0 {
			copy(p[pos:pos+int(have)], obj[objOff:objOff+have])
		} else {
			have = 0
		}
		for i := int(have); i < n; i++ {
			p[pos+i] = 0 // sparse region reads as zero
		}
		pos += n
	}
	return len(p), nil
}

// Truncate resets the file to empty, keeping its striping layout.
func (f *File) Truncate() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.objects = make([][]byte, f.layout.StripeCount)
	f.size = 0
}
