package pfs

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestMapExtentsMatchesUnitWalk drives the closed-form decomposition
// against the original per-stripe-unit walk on randomized extent sets
// and stripe geometries — the two must agree exactly on every target's
// bytes, request count and contiguity.
func TestMapExtentsMatchesUnitWalk(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 500; trial++ {
		cfg := Config{
			Targets:    1 + rng.Intn(7),
			StripeUnit: int64(1 + rng.Intn(64)),
		}
		var exts []Extent
		for i, n := 0, rng.Intn(8); i < n; i++ {
			exts = append(exts, Extent{
				Offset: int64(rng.Intn(2048)),
				Length: int64(rng.Intn(512)),
			})
		}
		got := cfg.MapExtents(exts)
		want := cfg.mapExtentsByUnit(exts)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d (targets=%d su=%d exts=%v):\nclosed-form: %+v\nunit walk:   %+v",
				trial, cfg.Targets, cfg.StripeUnit, exts, got, want)
		}
	}
}

// TestMapExtentsLargeExtent checks the closed form on an extent far too
// large for the unit walk to verify cheaply at real stripe sizes: a
// single contiguous multi-cycle extent must land as one contiguous range
// on every target with the bytes partitioned exactly.
func TestMapExtentsLargeExtent(t *testing.T) {
	cfg := Config{Targets: 1024, StripeUnit: 1 << 20}
	length := int64(1) << 42 // 4 TiB: ~4M stripe units
	accs := cfg.MapExtents([]Extent{{Offset: 12345, Length: length}})
	if len(accs) != cfg.Targets {
		t.Fatalf("touched %d targets, want %d", len(accs), cfg.Targets)
	}
	var total int64
	for _, a := range accs {
		if !a.Contiguous || a.Requests != 1 {
			t.Fatalf("target %d: requests=%d contiguous=%v, want one contiguous range", a.Target, a.Requests, a.Contiguous)
		}
		total += a.Bytes
	}
	if total != length {
		t.Fatalf("bytes sum %d, want %d", total, length)
	}
}

func BenchmarkMapExtentsLarge(b *testing.B) {
	cfg := DefaultConfig(1024)
	exts := []Extent{{Offset: 0, Length: 1 << 40}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.MapExtents(exts)
	}
}
