package pfs

import (
	"reflect"
	"testing"
)

func TestIsNormalized(t *testing.T) {
	cases := []struct {
		name string
		exts []Extent
		want bool
	}{
		{"nil", nil, true},
		{"empty", []Extent{}, true},
		{"single", []Extent{{Offset: 0, Length: 10}}, true},
		{"zero length", []Extent{{Offset: 0, Length: 0}}, false},
		{"negative length", []Extent{{Offset: 0, Length: -5}}, false},
		{"ascending with gaps", []Extent{{Offset: 0, Length: 10}, {Offset: 20, Length: 5}}, true},
		{"adjacent unmerged", []Extent{{Offset: 0, Length: 10}, {Offset: 10, Length: 5}}, false},
		{"overlapping", []Extent{{Offset: 0, Length: 10}, {Offset: 5, Length: 10}}, false},
		{"descending", []Extent{{Offset: 20, Length: 5}, {Offset: 0, Length: 10}}, false},
		{"empty in the middle", []Extent{{Offset: 0, Length: 10}, {Offset: 15, Length: 0}, {Offset: 20, Length: 5}}, false},
	}
	for _, c := range cases {
		if got := IsNormalized(c.exts); got != c.want {
			t.Errorf("%s: IsNormalized(%v) = %v, want %v", c.name, c.exts, got, c.want)
		}
	}
}

// IsNormalized must agree with NormalizeExtents: its output is always
// normalized, and an input it accepts is already canonical (normalizing
// it changes nothing).
func TestIsNormalizedAgreesWithNormalize(t *testing.T) {
	inputs := [][]Extent{
		nil,
		{{Offset: 3, Length: 4}},
		{{Offset: 0, Length: 10}, {Offset: 10, Length: 5}},
		{{Offset: 50, Length: 10}, {Offset: 0, Length: 10}, {Offset: 5, Length: 20}},
		{{Offset: 0, Length: 0}, {Offset: 7, Length: 3}},
	}
	for _, exts := range inputs {
		norm := NormalizeExtents(exts)
		if !IsNormalized(norm) {
			t.Fatalf("NormalizeExtents(%v) = %v is not IsNormalized", exts, norm)
		}
		if IsNormalized(exts) && !reflect.DeepEqual(NormalizeExtents(exts), exts) {
			t.Fatalf("IsNormalized accepted %v but normalizing changes it", exts)
		}
	}
}

// normalized returns the input slice itself (no copy) when it is already
// canonical — the read-only fast path — and a normalized copy otherwise.
func TestNormalizedAliasesCanonicalInput(t *testing.T) {
	canonical := []Extent{{Offset: 0, Length: 10}, {Offset: 20, Length: 5}}
	if got := normalized(canonical); &got[0] != &canonical[0] {
		t.Fatal("normalized copied an already-canonical slice")
	}
	messy := []Extent{{Offset: 20, Length: 5}, {Offset: 0, Length: 10}}
	got := normalized(messy)
	if !IsNormalized(got) {
		t.Fatalf("normalized(%v) = %v not canonical", messy, got)
	}
	if &got[0] == &messy[0] {
		t.Fatal("normalized returned the messy slice unchanged")
	}
	// And the argument is untouched.
	if !reflect.DeepEqual(messy, []Extent{{Offset: 20, Length: 5}, {Offset: 0, Length: 10}}) {
		t.Fatal("normalized mutated its argument")
	}
}
