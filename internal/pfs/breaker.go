package pfs

import (
	"sort"
	"strconv"

	"mcio/internal/health"
	"mcio/internal/obs"
)

// BreakerSet holds one circuit breaker per storage target, layered
// *under* the retry ladder: the ladder handles the individual flaky
// access, the breaker notices that a target keeps needing the ladder
// and takes it out of normal service — open after N suspicion events,
// a half-open probe after a cool-down, closed again on a healthy
// probe. While a target's breaker is open, accesses fail fast into
// degraded service instead of each paying the full backoff ladder.
//
// Decisions depend only on the explicit simulated clock passed by the
// caller, never on host time or access interleaving: the deterministic
// single-goroutine cost loop owns the set. It is intentionally NOT
// wired into FileSystem.access, which runs under concurrent aggregator
// goroutines where breaker state transitions would make byte-level
// runs scheduling-dependent (see WriteCorrupter's determinism
// contract).
type BreakerSet struct {
	cfg      health.BreakerConfig
	breakers map[int]*health.Breaker

	o     *obs.Observer
	opens map[int]*obs.Counter
	fast  map[int]*obs.Counter
}

// NewBreakerSet builds an empty set; zero-value cfg fields take the
// health package defaults.
func NewBreakerSet(cfg health.BreakerConfig) *BreakerSet {
	return &BreakerSet{
		cfg:      cfg,
		breakers: map[int]*health.Breaker{},
		opens:    map[int]*obs.Counter{},
		fast:     map[int]*obs.Counter{},
	}
}

// SetObserver attaches metrics: pfs.breaker_opens{ost} and
// pfs.breaker_fast_fails{ost} counters.
func (bs *BreakerSet) SetObserver(o *obs.Observer) {
	if bs == nil {
		return
	}
	bs.o = o
	bs.opens = map[int]*obs.Counter{}
	bs.fast = map[int]*obs.Counter{}
}

func (bs *BreakerSet) breaker(target int) *health.Breaker {
	b := bs.breakers[target]
	if b == nil {
		b = health.NewBreaker(bs.cfg)
		bs.breakers[target] = b
	}
	return b
}

// Allow reports whether an access to target may take the normal path
// at simulated time now. False means the breaker is open: the caller
// should fail fast into degraded service instead of running the retry
// ladder.
func (bs *BreakerSet) Allow(target int, now float64) bool {
	if bs == nil {
		return true
	}
	ok := bs.breaker(target).Allow(now)
	if !ok && bs.o != nil {
		c := bs.fast[target]
		if c == nil {
			c = bs.o.Counter("pfs.breaker_fast_fails", obs.L("ost", strconv.Itoa(target)))
			bs.fast[target] = c
		}
		c.Inc()
	}
	return ok
}

// OnFailure records one suspicion event against target (its retry
// ladder fired, or a probe failed) at simulated time now.
func (bs *BreakerSet) OnFailure(target int, now float64) {
	if bs == nil {
		return
	}
	b := bs.breaker(target)
	before := b.Opens()
	b.OnFailure(now)
	if b.Opens() > before && bs.o != nil {
		c := bs.opens[target]
		if c == nil {
			c = bs.o.Counter("pfs.breaker_opens", obs.L("ost", strconv.Itoa(target)))
			bs.opens[target] = c
		}
		c.Inc()
	}
}

// OnSuccess records one healthy access to target at simulated time
// now, closing a half-open breaker.
func (bs *BreakerSet) OnSuccess(target int, now float64) {
	if bs == nil {
		return
	}
	bs.breaker(target).OnSuccess(now)
}

// State returns target's current breaker state (closed for unseen
// targets).
func (bs *BreakerSet) State(target int) health.BreakerState {
	if bs == nil {
		return health.BreakerClosed
	}
	if b := bs.breakers[target]; b != nil {
		return b.State()
	}
	return health.BreakerClosed
}

// Opens returns the total number of breaker openings across targets.
func (bs *BreakerSet) Opens() int {
	if bs == nil {
		return 0
	}
	n := 0
	for _, b := range bs.breakers {
		n += b.Opens()
	}
	return n
}

// FastFails returns the total number of fast-failed accesses.
func (bs *BreakerSet) FastFails() int {
	if bs == nil {
		return 0
	}
	n := 0
	for _, b := range bs.breakers {
		n += b.FastFails()
	}
	return n
}

// OpenTargets returns the targets whose breakers are currently open or
// half-open, ascending.
func (bs *BreakerSet) OpenTargets() []int {
	if bs == nil {
		return nil
	}
	var out []int
	for t, b := range bs.breakers {
		if b.State() != health.BreakerClosed {
			out = append(out, t)
		}
	}
	sort.Ints(out)
	return out
}
