package pfs

import (
	"testing"

	"mcio/internal/health"
	"mcio/internal/obs"
)

func TestBreakerSetPerTargetIsolation(t *testing.T) {
	bs := NewBreakerSet(health.BreakerConfig{FailureThreshold: 2, OpenSeconds: 1})
	o := obs.New()
	bs.SetObserver(o)

	bs.OnFailure(0, 0.1)
	bs.OnFailure(0, 0.2) // target 0 opens
	if bs.State(0) != health.BreakerOpen {
		t.Fatalf("target 0 state = %v, want open", bs.State(0))
	}
	if bs.State(1) != health.BreakerClosed || !bs.Allow(1, 0.3) {
		t.Fatal("target 1 must be unaffected by target 0's failures")
	}
	if bs.Allow(0, 0.3) {
		t.Fatal("open target 0 allowed traffic")
	}
	if got := bs.OpenTargets(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("open targets = %v, want [0]", got)
	}

	// Probe at 1.2 (>= 0.2+1), success closes.
	if !bs.Allow(0, 1.3) {
		t.Fatal("probe not admitted")
	}
	bs.OnSuccess(0, 1.4)
	if bs.State(0) != health.BreakerClosed {
		t.Fatalf("state after healthy probe = %v, want closed", bs.State(0))
	}

	if v := o.Counter("pfs.breaker_opens", obs.L("ost", "0")).Value(); v != 1 {
		t.Fatalf("pfs.breaker_opens{ost=0} = %d, want 1", v)
	}
	if v := o.Counter("pfs.breaker_fast_fails", obs.L("ost", "0")).Value(); v != 1 {
		t.Fatalf("pfs.breaker_fast_fails{ost=0} = %d, want 1", v)
	}
	if bs.Opens() != 1 || bs.FastFails() != 1 {
		t.Fatalf("totals opens=%d fastFails=%d, want 1/1", bs.Opens(), bs.FastFails())
	}
}

func TestBreakerSetNilSafe(t *testing.T) {
	var bs *BreakerSet
	if !bs.Allow(0, 0) || bs.State(0) != health.BreakerClosed ||
		bs.Opens() != 0 || bs.FastFails() != 0 || bs.OpenTargets() != nil {
		t.Fatal("nil BreakerSet must behave as all-closed")
	}
	bs.OnFailure(0, 0)
	bs.OnSuccess(0, 0)
}
