package pfs

import (
	"fmt"
	"sync/atomic"
)

// FaultFunc decides whether one object access on a target fails. It is
// consulted once per contiguous object access (plus once per retry);
// returning nil lets the access proceed. Implementations must be
// deterministic for reproducible runs and safe for concurrent callers
// (aggregators access disjoint files in parallel).
type FaultFunc func(target int, write bool) error

// RetryPolicy bounds the re-issue of failed object accesses: up to
// MaxRetries attempts after the first failure, the first retry priced
// at BackoffSeconds of simulated wall time and each further one at
// double the previous — the client-side exponential backoff a Lustre
// client performs against a flaky OST.
type RetryPolicy struct {
	MaxRetries     int
	BackoffSeconds float64
}

// SetFaults installs a fault function and retry policy on the file
// system. A nil FaultFunc removes injection entirely (the default):
// no access consults anything and behaviour is identical to a
// fault-free file system. Call before issuing I/O, like SetObserver.
func (fs *FileSystem) SetFaults(f FaultFunc, p RetryPolicy) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.fault = f
	fs.retry = p
}

// Retries returns how many object accesses were re-issued after a
// fault across the file system's lifetime.
func (fs *FileSystem) Retries() int64 { return fs.retries.Load() }

// RetryBackoffSeconds returns the total simulated backoff time the
// retries above waited, for recovery-overhead accounting.
func (fs *FileSystem) RetryBackoffSeconds() float64 {
	return float64(fs.backoffMicros.Load()) / 1e6
}

// access runs the fault/retry ladder for one object access. The fast
// path — no fault function installed — is a single nil check.
func (fs *FileSystem) access(target int, write bool) error {
	ff := fs.fault
	if ff == nil {
		return nil
	}
	err := ff(target, write)
	if err == nil {
		return nil
	}
	backoff := fs.retry.BackoffSeconds
	for i := 0; i < fs.retry.MaxRetries; i++ {
		fs.retries.Add(1)
		fs.backoffMicros.Add(int64(backoff * 1e6))
		if fs.obsRetries != nil {
			fs.obsRetries[target].Inc()
		}
		if err = ff(target, write); err == nil {
			return nil
		}
		backoff *= 2
	}
	return fmt.Errorf("pfs: target %d: %w (gave up after %d retries)",
		target, err, fs.retry.MaxRetries)
}

// WriteCorrupter injects silent torn writes: an object write that
// reports full success while only a prefix of its bytes lands, as a
// power failure mid-write would leave it. PendingTorn is a cheap gate
// consulted once per object write; TearWrite decides whether the access
// starting at file offset off lands torn, and commits the tear. The
// decision must be a pure function of the access identity — concurrent
// aggregators reach a target in scheduling order, and a first-come
// budget would make the set of torn accesses vary run to run. The write
// path calls TearWrite only after establishing that the dropped tail
// differs from the bytes already stored there, so every committed tear
// is a real, detectable corruption. Implementations must be safe for
// concurrent callers.
type WriteCorrupter interface {
	PendingTorn(target int) bool
	TearWrite(target int, off int64) bool
}

// SetCorrupter installs a torn-write corrupter on the file system. A
// nil corrupter removes injection (the default); the fault-free write
// path then pays a single nil check per object access. Call before
// issuing I/O, like SetObserver and SetFaults.
func (fs *FileSystem) SetCorrupter(c WriteCorrupter) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.corr = c
}

// faultState is embedded in FileSystem; split out so pfs.go stays
// focused on the striping logic.
type faultState struct {
	fault         FaultFunc
	retry         RetryPolicy
	retries       atomic.Int64
	backoffMicros atomic.Int64
	corr          WriteCorrupter
}
