package pfs

import (
	"bytes"
	"testing"
)

// FuzzFileVsFlatArray cross-checks the striped file against a flat byte
// array for arbitrary write/read sequences encoded in the fuzz input.
func FuzzFileVsFlatArray(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, uint8(3), uint8(7))
	f.Add([]byte{}, uint8(1), uint8(1))
	f.Add([]byte{0xff, 0x00, 0x7f, 0x80}, uint8(8), uint8(64))
	f.Fuzz(func(t *testing.T, script []byte, targetsRaw, stripeRaw uint8) {
		targets := int(targetsRaw%8) + 1
		stripe := int64(stripeRaw%64) + 1
		fs, err := NewFileSystem(Config{
			Targets: targets, StripeUnit: stripe,
			TargetBW: 1, NoncontigFactor: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		file := fs.Open("fuzz")
		const max = 4096
		oracle := make([]byte, max)
		// Interpret the script as a sequence of (op, off, len, fill)
		// 4-byte records.
		for i := 0; i+4 <= len(script); i += 4 {
			op := script[i] % 2
			off := int64(script[i+1]) * 13 % max
			n := int(script[i+2])%256 + 1
			if off+int64(n) > max {
				n = int(max - off)
			}
			if n <= 0 {
				continue
			}
			if op == 0 {
				buf := bytes.Repeat([]byte{script[i+3]}, n)
				if _, err := file.WriteAt(buf, off); err != nil {
					t.Fatal(err)
				}
				copy(oracle[off:off+int64(n)], buf)
			} else {
				got := make([]byte, n)
				if _, err := file.ReadAt(got, off); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, oracle[off:off+int64(n)]) {
					t.Fatalf("read mismatch at %d+%d", off, n)
				}
			}
		}
		full := make([]byte, max)
		file.ReadAt(full, 0)
		if !bytes.Equal(full, oracle) {
			t.Fatal("final contents differ from oracle")
		}
	})
}

// FuzzNormalizeExtents checks the canonicalization invariants for
// arbitrary extent lists.
func FuzzNormalizeExtents(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6})
	f.Add([]byte{0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		var exts []Extent
		for i := 0; i+2 <= len(data); i += 2 {
			exts = append(exts, Extent{
				Offset: int64(data[i]) * 7,
				Length: int64(data[i+1]) % 50,
			})
		}
		norm := NormalizeExtents(exts)
		// Sorted, non-overlapping, non-adjacent, no empties.
		for i, e := range norm {
			if e.Length <= 0 {
				t.Fatal("empty extent survived")
			}
			if i > 0 && e.Offset <= norm[i-1].End() {
				t.Fatal("unsorted, overlapping, or unmerged adjacency")
			}
		}
		// Idempotent.
		again := NormalizeExtents(norm)
		if len(again) != len(norm) {
			t.Fatal("normalize not idempotent")
		}
		for i := range norm {
			if norm[i] != again[i] {
				t.Fatal("normalize not idempotent")
			}
		}
		// Byte membership preserved: every byte of the input is in the
		// output and vice versa (checked via a bitmap).
		inBytes := map[int64]bool{}
		for _, e := range exts {
			for b := e.Offset; b < e.End(); b++ {
				inBytes[b] = true
			}
		}
		var outCount int64
		for _, e := range norm {
			for b := e.Offset; b < e.End(); b++ {
				if !inBytes[b] {
					t.Fatal("normalize invented bytes")
				}
				outCount++
			}
		}
		if outCount != int64(len(inBytes)) {
			t.Fatal("normalize lost bytes")
		}
	})
}

// FuzzSliceData checks that consecutive data-space slices partition the
// extent set.
func FuzzSliceData(f *testing.F) {
	f.Add([]byte{10, 5, 40, 8}, uint16(7))
	f.Fuzz(func(t *testing.T, data []byte, chunkRaw uint16) {
		var exts []Extent
		cur := int64(0)
		for i := 0; i+2 <= len(data) && len(exts) < 16; i += 2 {
			cur += int64(data[i])%64 + 1
			length := int64(data[i+1])%64 + 1
			exts = append(exts, Extent{Offset: cur, Length: length})
			cur += length
		}
		norm := NormalizeExtents(exts)
		total := TotalBytes(norm)
		chunk := int64(chunkRaw)%128 + 1
		var rebuilt []Extent
		for off := int64(0); off < total; off += chunk {
			n := chunk
			if off+n > total {
				n = total - off
			}
			piece := SliceData(norm, off, n)
			if TotalBytes(piece) != n {
				t.Fatalf("slice at %d+%d returned %d bytes", off, n, TotalBytes(piece))
			}
			rebuilt = append(rebuilt, piece...)
		}
		re := NormalizeExtents(rebuilt)
		if len(re) != len(norm) {
			t.Fatal("slices do not rebuild the extent set")
		}
		for i := range re {
			if re[i] != norm[i] {
				t.Fatal("slices do not rebuild the extent set")
			}
		}
	})
}
