package pfs

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"mcio/internal/obs"
)

// countdownFault fails the first n accesses to each listed target, then
// heals — a transient OST error window.
func countdownFault(n int, targets ...int) FaultFunc {
	left := map[int]int{}
	for _, t := range targets {
		left[t] = n
	}
	return func(target int, write bool) error {
		if left[target] > 0 {
			left[target]--
			return errors.New("EIO: transient")
		}
		return nil
	}
}

func TestTransientFaultRetriesAndSucceeds(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.StripeUnit = 64
	fs, err := NewFileSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	o := obs.New()
	fs.SetObserver(o)
	fs.SetFaults(countdownFault(2, 0), RetryPolicy{MaxRetries: 5, BackoffSeconds: 0.01})

	f := fs.Open("t")
	data := []byte("hello, faulted target zero")
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatalf("write under transient fault: %v", err)
	}
	got := make([]byte, len(data))
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("data corrupted by retry path")
	}
	if fs.Retries() != 2 {
		t.Fatalf("retries = %d, want 2", fs.Retries())
	}
	// Backoff doubles: 0.01 + 0.02.
	if want := 0.03; fs.RetryBackoffSeconds() < want-1e-9 || fs.RetryBackoffSeconds() > want+1e-9 {
		t.Fatalf("backoff = %v, want %v", fs.RetryBackoffSeconds(), want)
	}
	if v := o.Counter("pfs.retries", obs.L("ost", "0")).Value(); v != 2 {
		t.Fatalf("pfs.retries{ost=0} = %d, want 2", v)
	}
}

func TestPermanentFaultExhaustsRetries(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.StripeUnit = 64
	fs, err := NewFileSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fs.SetFaults(func(target int, write bool) error {
		if target == 1 && write {
			return errors.New("EIO: dead OST")
		}
		return nil
	}, RetryPolicy{MaxRetries: 3, BackoffSeconds: 0.001})

	f := fs.Open("t")
	// 128 bytes spans both targets with 64-byte stripes.
	_, err = f.WriteAt(make([]byte, 128), 0)
	if err == nil {
		t.Fatal("write to a permanently failed OST succeeded")
	}
	for _, want := range []string{"target 1", "3 retries", "dead OST"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
	// Reads on the same OST fail too when the fault covers reads.
	fs.SetFaults(func(target int, write bool) error {
		return fmt.Errorf("EIO: target %d down", target)
	}, RetryPolicy{MaxRetries: 1})
	if _, err := f.ReadAt(make([]byte, 10), 0); err == nil {
		t.Fatal("read through a failed OST succeeded")
	}
}

func TestNilFaultFuncFullyInert(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.StripeUnit = 32
	fs, err := NewFileSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f := fs.Open("t")
	data := make([]byte, 1000)
	for i := range data {
		data[i] = byte(i % 251)
	}
	if _, err := f.WriteAt(data, 13); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if _, err := f.ReadAt(got, 13); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip failed")
	}
	if fs.Retries() != 0 || fs.RetryBackoffSeconds() != 0 {
		t.Fatal("fault accounting moved without a fault func")
	}
}
