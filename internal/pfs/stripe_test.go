package pfs

import (
	"bytes"
	"testing"
)

func TestLayoutNormalize(t *testing.T) {
	cfg := DefaultConfig(8)
	l, err := Layout{}.normalize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if l.StripeUnit != cfg.StripeUnit || l.StripeCount != 8 || l.FirstTarget != 0 {
		t.Fatalf("defaults: %+v", l)
	}
	bads := []Layout{
		{StripeUnit: -1},
		{StripeCount: 9},
		{StripeCount: -1},
		{FirstTarget: 8},
		{FirstTarget: -1},
	}
	for i, b := range bads {
		if _, err := b.normalize(cfg); err == nil {
			t.Errorf("bad layout %d accepted", i)
		}
	}
}

func TestOpenStripedRoundTrip(t *testing.T) {
	fs := testFS(t, 8, 64)
	f, err := fs.OpenStriped("narrow", Layout{StripeUnit: 16, StripeCount: 2, FirstTarget: 3})
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("striping over a narrow slice of the targets")
	if _, err := f.WriteAt(data, 5); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if _, err := f.ReadAt(got, 5); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("round trip mismatch: %q", got)
	}
	if f.Layout().StripeCount != 2 {
		t.Fatalf("layout = %+v", f.Layout())
	}
}

func TestOpenStripedConflict(t *testing.T) {
	fs := testFS(t, 4, 32)
	if _, err := fs.OpenStriped("f", Layout{StripeCount: 2}); err != nil {
		t.Fatal(err)
	}
	// Same layout: fine (idempotent open).
	if _, err := fs.OpenStriped("f", Layout{StripeUnit: 32, StripeCount: 2}); err != nil {
		t.Fatal(err)
	}
	// Different layout: rejected.
	if _, err := fs.OpenStriped("f", Layout{StripeCount: 3}); err == nil {
		t.Fatal("conflicting restripe accepted")
	}
	// Default Open on a custom-striped file returns the existing file.
	g := fs.Open("f")
	if g == nil || g.Layout().StripeCount != 2 {
		t.Fatal("Open did not return the existing striped file")
	}
}

func TestMapFileExtentsHonorsLayout(t *testing.T) {
	fs := testFS(t, 8, 16)
	f, err := fs.OpenStriped("m", Layout{StripeUnit: 16, StripeCount: 2, FirstTarget: 5})
	if err != nil {
		t.Fatal(err)
	}
	// 64 bytes = stripes 0..3 → layout targets 0,1,0,1 → fs targets 5,6.
	accs := f.MapFileExtents([]Extent{{Offset: 0, Length: 64}})
	if len(accs) != 2 {
		t.Fatalf("accesses = %v", accs)
	}
	seen := map[int]int64{}
	for _, a := range accs {
		seen[a.Target] = a.Bytes
	}
	if seen[5] != 32 || seen[6] != 32 {
		t.Fatalf("per-target bytes = %v", seen)
	}
}

func TestMapFileExtentsWrap(t *testing.T) {
	fs := testFS(t, 4, 16)
	f, err := fs.OpenStriped("w", Layout{StripeUnit: 16, StripeCount: 3, FirstTarget: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Layout targets 0,1,2 map to fs targets 3,0,1 (wrap).
	accs := f.MapFileExtents([]Extent{{Offset: 0, Length: 48}})
	targets := map[int]bool{}
	for _, a := range accs {
		targets[a.Target] = true
	}
	for _, want := range []int{3, 0, 1} {
		if !targets[want] {
			t.Fatalf("missing fs target %d in %v", want, targets)
		}
	}
}

func TestTargetStats(t *testing.T) {
	fs := testFS(t, 4, 16)
	f := fs.Open("s")
	buf := make([]byte, 64) // 4 stripes over 4 targets
	f.WriteAt(buf, 0)
	f.ReadAt(buf[:32], 0)
	stats := fs.Stats()
	w := stats.Written()
	for i := 0; i < 4; i++ {
		if w[i] != 16 {
			t.Fatalf("written[%d] = %d, want 16", i, w[i])
		}
	}
	r := stats.Read()
	if r[0] != 16 || r[1] != 16 || r[2] != 0 {
		t.Fatalf("read = %v", r)
	}
	if imb := stats.Imbalance(); imb <= 1.0 {
		t.Fatalf("imbalance = %v, want > 1 for uneven reads", imb)
	}
}

func TestTargetStatsBalanced(t *testing.T) {
	s := NewTargetStats(3)
	if s.Imbalance() != 0 {
		t.Fatal("no-traffic imbalance should be 0")
	}
	for i := 0; i < 3; i++ {
		s.RecordWrite(i, 100)
	}
	if s.Imbalance() != 1.0 {
		t.Fatalf("balanced imbalance = %v", s.Imbalance())
	}
}

func TestNarrowStripingConcentratesTraffic(t *testing.T) {
	fs := testFS(t, 8, 16)
	wide := fs.Open("wide")
	narrow, err := fs.OpenStriped("narrow", Layout{StripeCount: 1, FirstTarget: 2})
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 256)
	wide.WriteAt(buf, 0)
	narrow.WriteAt(buf, 0)
	w := fs.Stats().Written()
	// The narrow file's 256 bytes all landed on target 2.
	if w[2] != 256+32 { // 32 from the wide file's share
		t.Fatalf("written[2] = %d", w[2])
	}
	if w[3] != 32 {
		t.Fatalf("written[3] = %d", w[3])
	}
}
