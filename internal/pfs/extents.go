package pfs

import (
	"cmp"
	"fmt"
	"slices"
	"sort"
)

// Extent is a contiguous range of file space.
type Extent struct {
	Offset int64
	Length int64
}

// End returns the first offset past the extent.
func (e Extent) End() int64 { return e.Offset + e.Length }

// Overlaps reports whether two extents share any byte.
func (e Extent) Overlaps(o Extent) bool {
	return e.Offset < o.End() && o.Offset < e.End()
}

// IsNormalized reports whether exts already is its own canonical form:
// every extent non-empty, ascending, and neither overlapping nor adjacent
// to its predecessor. Consumers that only read an extent list use this to
// skip the copy NormalizeExtents would make — most lists in the hot paths
// (plan domains, partition-tree leaves, generated requests) are built
// normalized.
func IsNormalized(exts []Extent) bool {
	for i, e := range exts {
		if e.Length <= 0 {
			return false
		}
		if i > 0 && e.Offset <= exts[i-1].End() {
			return false
		}
	}
	return true
}

// normalized returns exts itself when already canonical (read-only use
// only: the result may alias the argument), else a normalized copy.
func normalized(exts []Extent) []Extent {
	if IsNormalized(exts) {
		return exts
	}
	return NormalizeExtents(exts)
}

// NormalizeExtents sorts extents by offset and merges adjacent or
// overlapping ones, dropping empty extents. The result is the canonical
// minimal representation of the same byte set. It does not modify its
// argument.
func NormalizeExtents(exts []Extent) []Extent {
	var out []Extent
	for _, e := range exts {
		if e.Length < 0 {
			panic(fmt.Sprintf("pfs: negative extent length %d", e.Length))
		}
		if e.Length > 0 {
			out = append(out, e)
		}
	}
	slices.SortFunc(out, func(a, b Extent) int { return cmp.Compare(a.Offset, b.Offset) })
	merged := out[:0]
	for _, e := range out {
		if n := len(merged); n > 0 && e.Offset <= merged[n-1].End() {
			if e.End() > merged[n-1].End() {
				merged[n-1].Length = e.End() - merged[n-1].Offset
			}
			continue
		}
		merged = append(merged, e)
	}
	return merged
}

// TotalBytes sums the lengths of the extents (assumed non-overlapping).
func TotalBytes(exts []Extent) int64 {
	var n int64
	for _, e := range exts {
		n += e.Length
	}
	return n
}

// SliceData returns the file extents covering the data-space byte range
// [dataOff, dataOff+n) of exts, where data space is the concatenation of
// the normalized extents in file order. This is how an aggregator cycles a
// file domain through a fixed-size collective buffer: round k covers data
// bytes [k*buf, (k+1)*buf).
func SliceData(exts []Extent, dataOff, n int64) []Extent {
	return SliceDataAppend(nil, exts, dataOff, n)
}

// SliceDataAppend is SliceData appending to a caller-owned slice, so a
// loop slicing many rounds reuses one allocation.
func SliceDataAppend(out []Extent, exts []Extent, dataOff, n int64) []Extent {
	if dataOff < 0 || n < 0 {
		panic(fmt.Sprintf("pfs: negative data slice (%d,%d)", dataOff, n))
	}
	if n == 0 {
		return out
	}
	var pos int64
	for _, e := range normalized(exts) {
		if n <= 0 {
			break
		}
		if dataOff >= pos+e.Length {
			pos += e.Length
			continue
		}
		skip := dataOff - pos
		if skip < 0 {
			skip = 0
		}
		take := e.Length - skip
		if take > n {
			take = n
		}
		out = append(out, Extent{Offset: e.Offset + skip, Length: take})
		dataOff += take
		n -= take
		pos += e.Length
	}
	return out
}

// Intersect returns the bytes present in both extent sets, normalized.
// Inputs need not be normalized.
func Intersect(a, b []Extent) []Extent {
	na, nb := normalized(a), normalized(b)
	var out []Extent
	i, j := 0, 0
	for i < len(na) && j < len(nb) {
		lo := na[i].Offset
		if nb[j].Offset > lo {
			lo = nb[j].Offset
		}
		hi := na[i].End()
		if nb[j].End() < hi {
			hi = nb[j].End()
		}
		if hi > lo {
			out = append(out, Extent{Offset: lo, Length: hi - lo})
		}
		if na[i].End() < nb[j].End() {
			i++
		} else {
			j++
		}
	}
	return out
}

// Clip returns the part of the extents inside the window [lo, hi).
func Clip(exts []Extent, lo, hi int64) []Extent {
	if hi <= lo {
		return nil
	}
	return Intersect(exts, []Extent{{Offset: lo, Length: hi - lo}})
}

// Span returns the smallest extent covering all input extents, or the zero
// Extent when the input holds no bytes.
func Span(exts []Extent) Extent {
	norm := normalized(exts)
	if len(norm) == 0 {
		return Extent{}
	}
	first, last := norm[0], norm[len(norm)-1]
	return Extent{Offset: first.Offset, Length: last.End() - first.Offset}
}

// TargetAccess summarizes the object-space traffic one set of file extents
// generates on a single target: the payload bytes, how many distinct
// object-space ranges (requests) it decomposes into after merging, and
// whether the access is one contiguous object range.
type TargetAccess struct {
	Target     int
	Bytes      int64
	Requests   int
	Contiguous bool
}

// MapExtents decomposes file-space extents into per-target accesses.
//
// With round-robin striping, one contiguous file extent larger than a full
// stripe cycle lands as one contiguous object-space range on every target —
// this is why two-phase I/O's large merged requests are cheap. Fragmented
// extents land as many small object ranges, each a separate request. The
// returned slice is sorted by target; targets untouched by the extents are
// absent.
//
// The decomposition is closed-form: one extent spanning stripe units
// [first, last] touches min(units, Targets) targets, and on each the
// units it owns (first+i, first+i+Targets, ...) occupy consecutive
// object-space stripe slots, so they form exactly one object range —
// trimmed at the extremes by the extent's partial head and tail units.
// The cost is O(targets touched) per extent, independent of extent
// length, which is what lets the analytical engine price exabyte-scale
// accesses. (mapExtentsByUnit is the per-unit walk this replaces, kept
// as the property-test oracle.)
func (c Config) MapExtents(exts []Extent) []TargetAccess {
	out := c.NewMapper().Map(exts)
	if out == nil {
		out = []TargetAccess{}
	}
	return out
}

// Mapper is MapExtents with reusable scratch: after warm-up a Map call
// allocates nothing, which matters to the analytical engine mapping one
// slice per domain per round — millions of calls at exascale. Not safe
// for concurrent use; the returned slice is overwritten by the next Map.
type Mapper struct {
	cfg     Config
	accs    []mapAcc
	touched []int
	out     []TargetAccess
}

type mapAcc struct {
	bytes    int64
	requests int
	lastEnd  int64
	active   bool
}

// NewMapper builds a Mapper for the configuration.
func (c Config) NewMapper() *Mapper {
	return &Mapper{cfg: c, accs: make([]mapAcc, c.Targets)}
}

// Map decomposes the extents exactly as MapExtents does.
func (m *Mapper) Map(exts []Extent) []TargetAccess {
	su := m.cfg.StripeUnit
	tn := int64(m.cfg.Targets)
	for _, e := range normalized(exts) {
		off, end := e.Offset, e.End()
		firstUnit := off / su
		lastUnit := (end - 1) / su
		span := lastUnit - firstUnit + 1
		if span > tn {
			span = tn
		}
		for i := int64(0); i < span; i++ {
			// Units on this target: u1, u1+tn, ..., u2.
			u1 := firstUnit + i
			u2 := u1 + ((lastUnit-u1)/tn)*tn
			count := (u2-u1)/tn + 1
			var head, tail int64
			if u1 == firstUnit {
				head = off - firstUnit*su
			}
			if u2 == lastUnit {
				tail = (lastUnit+1)*su - end
			}
			a := &m.accs[u1%tn]
			if !a.active {
				a.active = true
				a.lastEnd = -1
				m.touched = append(m.touched, int(u1%tn))
			}
			a.bytes += count*su - head - tail
			// Ranges arrive in ascending object order (extents are
			// normalized and object offset is monotone in file offset per
			// target), so merging is a single adjacency check, exactly as
			// the per-unit walk's sort-and-merge would do.
			objStart := (u1/tn)*su + head
			if objStart > a.lastEnd {
				a.requests++
			}
			a.lastEnd = (u2/tn)*su + su - tail
		}
	}
	sort.Ints(m.touched)
	m.out = m.out[:0]
	for _, t := range m.touched {
		a := &m.accs[t]
		m.out = append(m.out, TargetAccess{
			Target:     t,
			Bytes:      a.bytes,
			Requests:   a.requests,
			Contiguous: a.requests == 1,
		})
		*a = mapAcc{}
	}
	m.touched = m.touched[:0]
	return m.out
}

// mapExtentsByUnit is the original stripe-unit-by-stripe-unit
// decomposition, O(bytes/StripeUnit) per extent. It survives as the
// oracle the closed-form MapExtents is property-tested against.
func (c Config) mapExtentsByUnit(exts []Extent) []TargetAccess {
	type objRange struct{ off, end int64 }
	perTarget := make(map[int][]objRange)
	su := c.StripeUnit
	for _, e := range normalized(exts) {
		off, remaining := e.Offset, e.Length
		for remaining > 0 {
			target, objOff := c.stripeLoc(off)
			n := su - off%su
			if n > remaining {
				n = remaining
			}
			perTarget[target] = append(perTarget[target], objRange{objOff, objOff + n})
			off += n
			remaining -= n
		}
	}
	targets := make([]int, 0, len(perTarget))
	for t := range perTarget {
		targets = append(targets, t)
	}
	sort.Ints(targets)
	out := make([]TargetAccess, 0, len(targets))
	for _, t := range targets {
		ranges := perTarget[t]
		sort.Slice(ranges, func(i, j int) bool { return ranges[i].off < ranges[j].off })
		var merged []objRange
		var bytes int64
		for _, r := range ranges {
			bytes += r.end - r.off
			if n := len(merged); n > 0 && r.off <= merged[n-1].end {
				if r.end > merged[n-1].end {
					merged[n-1].end = r.end
				}
				continue
			}
			merged = append(merged, r)
		}
		out = append(out, TargetAccess{
			Target:     t,
			Bytes:      bytes,
			Requests:   len(merged),
			Contiguous: len(merged) == 1,
		})
	}
	return out
}
