package pfs

import (
	"fmt"
	"sort"
)

// Extent is a contiguous range of file space.
type Extent struct {
	Offset int64
	Length int64
}

// End returns the first offset past the extent.
func (e Extent) End() int64 { return e.Offset + e.Length }

// Overlaps reports whether two extents share any byte.
func (e Extent) Overlaps(o Extent) bool {
	return e.Offset < o.End() && o.Offset < e.End()
}

// IsNormalized reports whether exts already is its own canonical form:
// every extent non-empty, ascending, and neither overlapping nor adjacent
// to its predecessor. Consumers that only read an extent list use this to
// skip the copy NormalizeExtents would make — most lists in the hot paths
// (plan domains, partition-tree leaves, generated requests) are built
// normalized.
func IsNormalized(exts []Extent) bool {
	for i, e := range exts {
		if e.Length <= 0 {
			return false
		}
		if i > 0 && e.Offset <= exts[i-1].End() {
			return false
		}
	}
	return true
}

// normalized returns exts itself when already canonical (read-only use
// only: the result may alias the argument), else a normalized copy.
func normalized(exts []Extent) []Extent {
	if IsNormalized(exts) {
		return exts
	}
	return NormalizeExtents(exts)
}

// NormalizeExtents sorts extents by offset and merges adjacent or
// overlapping ones, dropping empty extents. The result is the canonical
// minimal representation of the same byte set. It does not modify its
// argument.
func NormalizeExtents(exts []Extent) []Extent {
	var out []Extent
	for _, e := range exts {
		if e.Length < 0 {
			panic(fmt.Sprintf("pfs: negative extent length %d", e.Length))
		}
		if e.Length > 0 {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Offset < out[j].Offset })
	merged := out[:0]
	for _, e := range out {
		if n := len(merged); n > 0 && e.Offset <= merged[n-1].End() {
			if e.End() > merged[n-1].End() {
				merged[n-1].Length = e.End() - merged[n-1].Offset
			}
			continue
		}
		merged = append(merged, e)
	}
	return merged
}

// TotalBytes sums the lengths of the extents (assumed non-overlapping).
func TotalBytes(exts []Extent) int64 {
	var n int64
	for _, e := range exts {
		n += e.Length
	}
	return n
}

// SliceData returns the file extents covering the data-space byte range
// [dataOff, dataOff+n) of exts, where data space is the concatenation of
// the normalized extents in file order. This is how an aggregator cycles a
// file domain through a fixed-size collective buffer: round k covers data
// bytes [k*buf, (k+1)*buf).
func SliceData(exts []Extent, dataOff, n int64) []Extent {
	if dataOff < 0 || n < 0 {
		panic(fmt.Sprintf("pfs: negative data slice (%d,%d)", dataOff, n))
	}
	if n == 0 {
		return nil
	}
	var out []Extent
	var pos int64
	for _, e := range normalized(exts) {
		if n <= 0 {
			break
		}
		if dataOff >= pos+e.Length {
			pos += e.Length
			continue
		}
		skip := dataOff - pos
		if skip < 0 {
			skip = 0
		}
		take := e.Length - skip
		if take > n {
			take = n
		}
		out = append(out, Extent{Offset: e.Offset + skip, Length: take})
		dataOff += take
		n -= take
		pos += e.Length
	}
	return out
}

// Intersect returns the bytes present in both extent sets, normalized.
// Inputs need not be normalized.
func Intersect(a, b []Extent) []Extent {
	na, nb := normalized(a), normalized(b)
	var out []Extent
	i, j := 0, 0
	for i < len(na) && j < len(nb) {
		lo := na[i].Offset
		if nb[j].Offset > lo {
			lo = nb[j].Offset
		}
		hi := na[i].End()
		if nb[j].End() < hi {
			hi = nb[j].End()
		}
		if hi > lo {
			out = append(out, Extent{Offset: lo, Length: hi - lo})
		}
		if na[i].End() < nb[j].End() {
			i++
		} else {
			j++
		}
	}
	return out
}

// Clip returns the part of the extents inside the window [lo, hi).
func Clip(exts []Extent, lo, hi int64) []Extent {
	if hi <= lo {
		return nil
	}
	return Intersect(exts, []Extent{{Offset: lo, Length: hi - lo}})
}

// Span returns the smallest extent covering all input extents, or the zero
// Extent when the input holds no bytes.
func Span(exts []Extent) Extent {
	norm := normalized(exts)
	if len(norm) == 0 {
		return Extent{}
	}
	first, last := norm[0], norm[len(norm)-1]
	return Extent{Offset: first.Offset, Length: last.End() - first.Offset}
}

// TargetAccess summarizes the object-space traffic one set of file extents
// generates on a single target: the payload bytes, how many distinct
// object-space ranges (requests) it decomposes into after merging, and
// whether the access is one contiguous object range.
type TargetAccess struct {
	Target     int
	Bytes      int64
	Requests   int
	Contiguous bool
}

// MapExtents decomposes file-space extents into per-target accesses.
//
// With round-robin striping, one contiguous file extent larger than a full
// stripe cycle lands as one contiguous object-space range on every target —
// this is why two-phase I/O's large merged requests are cheap. Fragmented
// extents land as many small object ranges, each a separate request. The
// returned slice is sorted by target; targets untouched by the extents are
// absent.
func (c Config) MapExtents(exts []Extent) []TargetAccess {
	type objRange struct{ off, end int64 }
	perTarget := make(map[int][]objRange)
	su := c.StripeUnit
	for _, e := range normalized(exts) {
		off, remaining := e.Offset, e.Length
		for remaining > 0 {
			target, objOff := c.stripeLoc(off)
			n := su - off%su
			if n > remaining {
				n = remaining
			}
			perTarget[target] = append(perTarget[target], objRange{objOff, objOff + n})
			off += n
			remaining -= n
		}
	}
	targets := make([]int, 0, len(perTarget))
	for t := range perTarget {
		targets = append(targets, t)
	}
	sort.Ints(targets)
	out := make([]TargetAccess, 0, len(targets))
	for _, t := range targets {
		ranges := perTarget[t]
		sort.Slice(ranges, func(i, j int) bool { return ranges[i].off < ranges[j].off })
		var merged []objRange
		var bytes int64
		for _, r := range ranges {
			bytes += r.end - r.off
			if n := len(merged); n > 0 && r.off <= merged[n-1].end {
				if r.end > merged[n-1].end {
					merged[n-1].end = r.end
				}
				continue
			}
			merged = append(merged, r)
		}
		out = append(out, TargetAccess{
			Target:     t,
			Bytes:      bytes,
			Requests:   len(merged),
			Contiguous: len(merged) == 1,
		})
	}
	return out
}
