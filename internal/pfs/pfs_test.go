package pfs

import (
	"bytes"
	"sync"
	"testing"
	"testing/quick"

	"mcio/internal/stats"
)

func testFS(t *testing.T, targets int, stripe int64) *FileSystem {
	t.Helper()
	cfg := DefaultConfig(targets)
	cfg.StripeUnit = stripe
	fs, err := NewFileSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig(8).Validate(); err != nil {
		t.Fatal(err)
	}
	bads := []Config{
		{Targets: 0, StripeUnit: 1, TargetBW: 1, NoncontigFactor: 1},
		{Targets: 1, StripeUnit: 0, TargetBW: 1, NoncontigFactor: 1},
		{Targets: 1, StripeUnit: 1, TargetBW: 0, NoncontigFactor: 1},
		{Targets: 1, StripeUnit: 1, TargetBW: 1, ReqOverhead: -1, NoncontigFactor: 1},
		{Targets: 1, StripeUnit: 1, TargetBW: 1, NoncontigFactor: 0},
	}
	for i, c := range bads {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	fs := testFS(t, 4, 16)
	f := fs.Open("a")
	data := []byte("the quick brown fox jumps over the lazy dog, twice around the block")
	if _, err := f.WriteAt(data, 5); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if _, err := f.ReadAt(got, 5); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("round trip mismatch:\n got %q\nwant %q", got, data)
	}
	if f.Size() != 5+int64(len(data)) {
		t.Fatalf("size = %d", f.Size())
	}
}

func TestSparseReadsZero(t *testing.T) {
	fs := testFS(t, 4, 16)
	f := fs.Open("sparse")
	f.WriteAt([]byte{0xff}, 100)
	got := make([]byte, 5)
	f.ReadAt(got, 0)
	for i, b := range got {
		if b != 0 {
			t.Fatalf("unwritten byte %d = %#x, want 0", i, b)
		}
	}
	// A hole between written regions also reads zero.
	one := make([]byte, 1)
	f.ReadAt(one, 50)
	if one[0] != 0 {
		t.Fatalf("hole read %#x", one[0])
	}
}

func TestNegativeOffsets(t *testing.T) {
	fs := testFS(t, 2, 8)
	f := fs.Open("x")
	if _, err := f.WriteAt([]byte{1}, -1); err == nil {
		t.Fatal("negative write offset accepted")
	}
	if _, err := f.ReadAt(make([]byte, 1), -1); err == nil {
		t.Fatal("negative read offset accepted")
	}
}

func TestEmptyOps(t *testing.T) {
	fs := testFS(t, 2, 8)
	f := fs.Open("x")
	if n, err := f.WriteAt(nil, 3); n != 0 || err != nil {
		t.Fatalf("empty write: n=%d err=%v", n, err)
	}
	if n, err := f.ReadAt(nil, 3); n != 0 || err != nil {
		t.Fatalf("empty read: n=%d err=%v", n, err)
	}
	if f.Size() != 0 {
		t.Fatal("empty write must not grow the file")
	}
}

func TestOpenIsIdempotent(t *testing.T) {
	fs := testFS(t, 2, 8)
	a := fs.Open("f")
	a.WriteAt([]byte("abc"), 0)
	b := fs.Open("f")
	got := make([]byte, 3)
	b.ReadAt(got, 0)
	if string(got) != "abc" {
		t.Fatal("Open returned a different file for the same name")
	}
}

func TestRemoveAndList(t *testing.T) {
	fs := testFS(t, 2, 8)
	fs.Open("b")
	fs.Open("a")
	if got := fs.Files(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Files = %v", got)
	}
	fs.Remove("a")
	if got := fs.Files(); len(got) != 1 || got[0] != "b" {
		t.Fatalf("Files after remove = %v", got)
	}
	fs.Remove("never-existed") // no-op
}

func TestTruncate(t *testing.T) {
	fs := testFS(t, 2, 8)
	f := fs.Open("t")
	f.WriteAt([]byte("hello"), 0)
	f.Truncate()
	if f.Size() != 0 {
		t.Fatal("truncate did not reset size")
	}
	got := make([]byte, 5)
	f.ReadAt(got, 0)
	if !bytes.Equal(got, make([]byte, 5)) {
		t.Fatal("truncate did not clear data")
	}
}

func TestStripeLocRoundRobin(t *testing.T) {
	cfg := Config{Targets: 3, StripeUnit: 10, TargetBW: 1, NoncontigFactor: 1}
	cases := []struct {
		off    int64
		target int
		objOff int64
	}{
		{0, 0, 0}, {9, 0, 9}, {10, 1, 0}, {20, 2, 0}, {29, 2, 9},
		{30, 0, 10}, {35, 0, 15}, {40, 1, 10}, {65, 0, 25},
	}
	for _, c := range cases {
		target, objOff := cfg.stripeLoc(c.off)
		if target != c.target || objOff != c.objOff {
			t.Errorf("stripeLoc(%d) = (%d,%d), want (%d,%d)",
				c.off, target, objOff, c.target, c.objOff)
		}
	}
}

// Property: for random write/read patterns across stripe boundaries, the
// striped file behaves exactly like a flat byte array.
func TestFileMatchesFlatOracle(t *testing.T) {
	r := stats.NewRNG(41)
	err := quick.Check(func(seed uint64) bool {
		rr := stats.NewRNG(seed)
		fs, _ := NewFileSystem(Config{
			Targets: rr.Intn(7) + 1, StripeUnit: int64(rr.Intn(33) + 1),
			TargetBW: 1, NoncontigFactor: 1,
		})
		f := fs.Open("oracle")
		const max = 2048
		oracle := make([]byte, max)
		for i := 0; i < 20; i++ {
			off := rr.Int63n(max / 2)
			n := int(rr.Int63n(max/2)) + 1
			buf := make([]byte, n)
			for j := range buf {
				buf[j] = byte(rr.Uint64())
			}
			f.WriteAt(buf, off)
			copy(oracle[off:off+int64(n)], buf)
		}
		got := make([]byte, max)
		f.ReadAt(got, 0)
		return bytes.Equal(got, oracle)
	}, &quick.Config{MaxCount: 100, Rand: quickRand(r)})
	if err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentDisjointWrites(t *testing.T) {
	fs := testFS(t, 8, 64)
	f := fs.Open("par")
	const workers = 16
	const chunk = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buf := make([]byte, chunk)
			for i := range buf {
				buf[i] = byte(w)
			}
			f.WriteAt(buf, int64(w*chunk))
		}(w)
	}
	wg.Wait()
	got := make([]byte, workers*chunk)
	f.ReadAt(got, 0)
	for w := 0; w < workers; w++ {
		for i := 0; i < chunk; i++ {
			if got[w*chunk+i] != byte(w) {
				t.Fatalf("byte %d of worker %d region = %d", i, w, got[w*chunk+i])
			}
		}
	}
}
