package pfs

import (
	"reflect"
	"testing"
	"testing/quick"

	"mcio/internal/stats"
)

func TestNormalizeExtents(t *testing.T) {
	in := []Extent{
		{Offset: 30, Length: 10},
		{Offset: 0, Length: 10},
		{Offset: 10, Length: 5}, // adjacent to the first: merge
		{Offset: 32, Length: 3}, // inside the 30..40 extent
		{Offset: 50, Length: 0}, // empty: dropped
	}
	got := NormalizeExtents(in)
	want := []Extent{{Offset: 0, Length: 15}, {Offset: 30, Length: 10}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("NormalizeExtents = %v, want %v", got, want)
	}
}

func TestNormalizeExtentsPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NormalizeExtents([]Extent{{Offset: 0, Length: -1}})
}

func TestExtentHelpers(t *testing.T) {
	a := Extent{Offset: 0, Length: 10}
	b := Extent{Offset: 9, Length: 1}
	c := Extent{Offset: 10, Length: 5}
	if a.End() != 10 {
		t.Fatal("End")
	}
	if !a.Overlaps(b) || a.Overlaps(c) || !b.Overlaps(a) {
		t.Fatal("Overlaps")
	}
	if TotalBytes([]Extent{a, c}) != 15 {
		t.Fatal("TotalBytes")
	}
}

func TestMapExtentsContiguousSpansAllTargets(t *testing.T) {
	cfg := Config{Targets: 4, StripeUnit: 10, TargetBW: 1, NoncontigFactor: 1}
	// A single 80-byte extent covers two full stripe cycles: each target
	// gets one contiguous 20-byte object range in one request.
	acc := cfg.MapExtents([]Extent{{Offset: 0, Length: 80}})
	if len(acc) != 4 {
		t.Fatalf("got %d targets, want 4", len(acc))
	}
	for _, a := range acc {
		if a.Bytes != 20 || a.Requests != 1 || !a.Contiguous {
			t.Fatalf("target %d: %+v, want 20 bytes / 1 contiguous request", a.Target, a)
		}
	}
}

func TestMapExtentsFragmented(t *testing.T) {
	cfg := Config{Targets: 2, StripeUnit: 10, TargetBW: 1, NoncontigFactor: 1}
	// Two extents both landing on target 0 (stripes 0 and 2), with a gap in
	// object space: 2 requests, noncontiguous.
	acc := cfg.MapExtents([]Extent{
		{Offset: 0, Length: 5},
		{Offset: 20, Length: 5},
	})
	if len(acc) != 1 {
		t.Fatalf("got %d targets, want 1: %v", len(acc), acc)
	}
	a := acc[0]
	if a.Target != 0 || a.Bytes != 10 || a.Requests != 2 || a.Contiguous {
		t.Fatalf("access = %+v", a)
	}
}

func TestMapExtentsMergesAdjacentObjectRanges(t *testing.T) {
	cfg := Config{Targets: 2, StripeUnit: 10, TargetBW: 1, NoncontigFactor: 1}
	// Stripes 0 and 2 map to target 0 at object offsets 0..10 and 10..20:
	// adjacent in object space, so they merge into one request even though
	// they are 10 bytes apart in file space.
	acc := cfg.MapExtents([]Extent{
		{Offset: 0, Length: 10},
		{Offset: 20, Length: 10},
	})
	if len(acc) != 1 || acc[0].Requests != 1 || !acc[0].Contiguous {
		t.Fatalf("object-adjacent stripes not merged: %v", acc)
	}
}

func TestMapExtentsEmpty(t *testing.T) {
	cfg := Config{Targets: 2, StripeUnit: 10, TargetBW: 1, NoncontigFactor: 1}
	if acc := cfg.MapExtents(nil); len(acc) != 0 {
		t.Fatalf("MapExtents(nil) = %v", acc)
	}
	if acc := cfg.MapExtents([]Extent{{Offset: 5, Length: 0}}); len(acc) != 0 {
		t.Fatalf("MapExtents(empty extent) = %v", acc)
	}
}

// Property: MapExtents conserves bytes and never reports more requests
// than stripe-unit crossings.
func TestMapExtentsConservation(t *testing.T) {
	r := stats.NewRNG(43)
	err := quick.Check(func(seed uint64) bool {
		rr := stats.NewRNG(seed)
		cfg := Config{
			Targets:         rr.Intn(8) + 1,
			StripeUnit:      int64(rr.Intn(50) + 1),
			TargetBW:        1,
			NoncontigFactor: 1,
		}
		var exts []Extent
		n := rr.Intn(10) + 1
		for i := 0; i < n; i++ {
			exts = append(exts, Extent{Offset: rr.Int63n(1000), Length: rr.Int63n(200)})
		}
		norm := NormalizeExtents(exts)
		acc := cfg.MapExtents(exts)
		var gotBytes int64
		var gotReqs int
		for _, a := range acc {
			if a.Bytes <= 0 || a.Requests <= 0 {
				return false
			}
			gotBytes += a.Bytes
			gotReqs += a.Requests
		}
		if gotBytes != TotalBytes(norm) {
			return false
		}
		// Upper bound on requests: each extent crosses at most
		// len/su + 2 stripe units.
		var maxReqs int
		for _, e := range norm {
			maxReqs += int(e.Length/cfg.StripeUnit) + 2
		}
		return gotReqs <= maxReqs
	}, &quick.Config{MaxCount: 200, Rand: quickRand(r)})
	if err != nil {
		t.Fatal(err)
	}
}

// Property: the per-target object ranges MapExtents reports agree with
// what WriteAt actually stores (bytes land on the computed targets).
func TestMapExtentsAgreesWithStorage(t *testing.T) {
	cfg := Config{Targets: 3, StripeUnit: 7, TargetBW: 1, NoncontigFactor: 1}
	fs, _ := NewFileSystem(cfg)
	f := fs.Open("agree")
	ext := Extent{Offset: 11, Length: 40}
	buf := make([]byte, ext.Length)
	for i := range buf {
		buf[i] = 0xAB
	}
	f.WriteAt(buf, ext.Offset)
	acc := cfg.MapExtents([]Extent{ext})
	var total int64
	for _, a := range acc {
		obj := f.objects[a.Target]
		var stored int64
		for _, b := range obj {
			if b == 0xAB {
				stored++
			}
		}
		if stored != a.Bytes {
			t.Fatalf("target %d: stored %d bytes, MapExtents says %d", a.Target, stored, a.Bytes)
		}
		total += a.Bytes
	}
	if total != ext.Length {
		t.Fatalf("total mapped %d != extent length %d", total, ext.Length)
	}
}

func TestIntersect(t *testing.T) {
	a := []Extent{{0, 10}, {20, 10}}
	b := []Extent{{5, 20}}
	got := Intersect(a, b)
	want := []Extent{{5, 5}, {20, 5}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Intersect = %v, want %v", got, want)
	}
	if Intersect(a, nil) != nil {
		t.Fatal("Intersect with empty should be nil")
	}
	// Identical sets intersect to themselves.
	if got := Intersect(a, a); !reflect.DeepEqual(got, NormalizeExtents(a)) {
		t.Fatalf("self-intersection = %v", got)
	}
}

func TestIntersectDisjoint(t *testing.T) {
	a := []Extent{{0, 5}}
	b := []Extent{{5, 5}}
	if got := Intersect(a, b); got != nil {
		t.Fatalf("adjacent extents intersect: %v", got)
	}
}

func TestClip(t *testing.T) {
	exts := []Extent{{0, 10}, {20, 10}}
	got := Clip(exts, 5, 25)
	want := []Extent{{5, 5}, {20, 5}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Clip = %v, want %v", got, want)
	}
	if Clip(exts, 10, 10) != nil {
		t.Fatal("empty window should clip to nil")
	}
	if Clip(exts, 25, 10) != nil {
		t.Fatal("inverted window should clip to nil")
	}
}

func TestSpan(t *testing.T) {
	got := Span([]Extent{{20, 10}, {0, 5}})
	if got != (Extent{Offset: 0, Length: 30}) {
		t.Fatalf("Span = %v", got)
	}
	if Span(nil) != (Extent{}) {
		t.Fatal("Span of nothing should be zero")
	}
}

// Property: Intersect is commutative and its result is contained in both
// inputs with bytes never exceeding either side.
func TestIntersectProperties(t *testing.T) {
	r := stats.NewRNG(61)
	err := quick.Check(func(seed uint64) bool {
		rr := stats.NewRNG(seed)
		gen := func() []Extent {
			var out []Extent
			n := rr.Intn(6) + 1
			for i := 0; i < n; i++ {
				out = append(out, Extent{Offset: rr.Int63n(200), Length: rr.Int63n(50)})
			}
			return out
		}
		a, b := gen(), gen()
		ab, ba := Intersect(a, b), Intersect(b, a)
		if !reflect.DeepEqual(ab, ba) {
			return false
		}
		if TotalBytes(ab) > TotalBytes(NormalizeExtents(a)) ||
			TotalBytes(ab) > TotalBytes(NormalizeExtents(b)) {
			return false
		}
		// Containment: intersecting the result with either input is a no-op.
		return reflect.DeepEqual(Intersect(ab, a), ab) && reflect.DeepEqual(Intersect(ab, b), ab)
	}, &quick.Config{MaxCount: 200, Rand: quickRand(r)})
	if err != nil {
		t.Fatal(err)
	}
}
