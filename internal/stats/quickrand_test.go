package stats

import mrand "math/rand"

// quickRand adapts an RNG into the *math/rand.Rand that testing/quick
// expects, keeping property tests seeded and reproducible.
func quickRand(r *RNG) *mrand.Rand {
	return mrand.New(mrand.NewSource(int64(r.Uint64())))
}
