package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 || s.Stddev != 0 {
		t.Fatalf("empty summary not zero: %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{42})
	if s.N != 1 || s.Min != 42 || s.Max != 42 || s.Mean != 42 || s.Median != 42 {
		t.Fatalf("bad single-element summary: %+v", s)
	}
	if s.Stddev != 0 {
		t.Fatalf("single-element stddev = %v, want 0", s.Stddev)
	}
}

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.Mean != 5 {
		t.Errorf("mean = %v, want 5", s.Mean)
	}
	// Sample stddev of this classic set is sqrt(32/7).
	want := math.Sqrt(32.0 / 7.0)
	if math.Abs(s.Stddev-want) > 1e-12 {
		t.Errorf("stddev = %v, want %v", s.Stddev, want)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("min/max = %v/%v", s.Min, s.Max)
	}
}

func TestSummaryBounds(t *testing.T) {
	r := NewRNG(23)
	err := quick.Check(func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%100) + 1
		rr := NewRNG(seed)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rr.Normal(0, 10)
		}
		s := Summarize(xs)
		return s.Min <= s.P05 && s.P05 <= s.Median &&
			s.Median <= s.P95 && s.P95 <= s.Max &&
			s.Min <= s.Mean && s.Mean <= s.Max
	}, &quick.Config{MaxCount: 300, Rand: quickRand(r)})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPercentile(t *testing.T) {
	sorted := []float64{10, 20, 30, 40, 50}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 10}, {100, 50}, {50, 30}, {25, 20}, {75, 40}, {-5, 10}, {110, 50},
	}
	for _, c := range cases {
		if got := Percentile(sorted, c.p); got != c.want {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileInterpolates(t *testing.T) {
	sorted := []float64{0, 10}
	if got := Percentile(sorted, 50); got != 5 {
		t.Fatalf("interpolated percentile = %v, want 5", got)
	}
}

func TestCV(t *testing.T) {
	s := Summary{Mean: 10, Stddev: 2}
	if s.CV() != 0.2 {
		t.Fatalf("CV = %v, want 0.2", s.CV())
	}
	if (Summary{}).CV() != 0 {
		t.Fatal("zero-mean CV should be 0")
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 100}); math.Abs(got-10) > 1e-12 {
		t.Fatalf("GeoMean = %v, want 10", got)
	}
	if GeoMean(nil) != 0 {
		t.Fatal("GeoMean(nil) should be 0")
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) should be 0")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("Mean([1 2 3]) should be 2")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 9.99, 10, 15} {
		h.Add(x)
	}
	if h.Under != 1 || h.Over != 2 {
		t.Fatalf("under/over = %d/%d, want 1/2", h.Under, h.Over)
	}
	if h.Bins[0] != 2 { // 0 and 1.9
		t.Fatalf("bin0 = %d, want 2", h.Bins[0])
	}
	if h.Bins[1] != 1 { // 2
		t.Fatalf("bin1 = %d, want 1", h.Bins[1])
	}
	if h.Bins[4] != 1 { // 9.99
		t.Fatalf("bin4 = %d, want 1", h.Bins[4])
	}
	if h.Total() != 7 {
		t.Fatalf("total = %d, want 7", h.Total())
	}
}

func TestHistogramConservation(t *testing.T) {
	r := NewRNG(31)
	h := NewHistogram(-50, 50, 17)
	const n = 5000
	for i := 0; i < n; i++ {
		h.Add(r.Normal(0, 30))
	}
	if h.Total() != n {
		t.Fatalf("histogram lost samples: %d != %d", h.Total(), n)
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewHistogram(0, 10, 0) },
		func() { NewHistogram(10, 10, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}
