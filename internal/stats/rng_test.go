package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("streams diverged at %d: %d vs %d", i, av, bv)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical values", same)
	}
}

func TestRNGZeroSeedWorks(t *testing.T) {
	r := NewRNG(0)
	var zeroes int
	for i := 0; i < 100; i++ {
		if r.Uint64() == 0 {
			zeroes++
		}
	}
	if zeroes > 1 {
		t.Fatalf("zero seed produced a degenerate stream (%d zeroes)", zeroes)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := NewRNG(7)
	child := parent.Split()
	// Child derived at the same parent state must be reproducible.
	parent2 := NewRNG(7)
	child2 := parent2.Split()
	for i := 0; i < 100; i++ {
		if child.Uint64() != child2.Uint64() {
			t.Fatal("Split is not reproducible")
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRNG(9)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) did not cover all values: %v", seen)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestNormalMoments(t *testing.T) {
	r := NewRNG(11)
	const n = 200000
	mean, sd := 100.0, 15.0
	var sum, ss float64
	for i := 0; i < n; i++ {
		x := r.Normal(mean, sd)
		sum += x
	}
	m := sum / n
	r2 := NewRNG(11)
	for i := 0; i < n; i++ {
		d := r2.Normal(mean, sd) - m
		ss += d * d
	}
	s := math.Sqrt(ss / (n - 1))
	if math.Abs(m-mean) > 0.5 {
		t.Errorf("normal mean = %v, want ~%v", m, mean)
	}
	if math.Abs(s-sd) > 0.5 {
		t.Errorf("normal stddev = %v, want ~%v", s, sd)
	}
}

func TestParetoLowerBound(t *testing.T) {
	r := NewRNG(5)
	for i := 0; i < 10000; i++ {
		if v := r.Pareto(2.0, 1.5); v < 2.0 {
			t.Fatalf("Pareto below scale: %v", v)
		}
	}
}

func TestExponentialPositive(t *testing.T) {
	r := NewRNG(5)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.Exponential(0.5)
		if v < 0 {
			t.Fatalf("Exponential negative: %v", v)
		}
		sum += v
	}
	if m := sum / n; math.Abs(m-2.0) > 0.1 {
		t.Errorf("Exponential(0.5) mean = %v, want ~2", m)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(13)
	err := quick.Check(func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := NewRNG(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, &quick.Config{MaxCount: 200, Rand: quickRand(r)})
	if err != nil {
		t.Fatal(err)
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	r := NewRNG(17)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	sum2 := 0
	for _, x := range xs {
		sum2 += x
	}
	if sum != sum2 {
		t.Fatalf("shuffle changed contents: %v", xs)
	}
}
