package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds descriptive statistics over a sample.
type Summary struct {
	N      int
	Min    float64
	Max    float64
	Mean   float64
	Stddev float64 // sample standard deviation (n-1 denominator)
	Median float64
	P05    float64
	P95    float64
}

// Summarize computes descriptive statistics over xs. It returns the zero
// Summary for an empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Stddev = math.Sqrt(ss / float64(len(xs)-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Median = Percentile(sorted, 50)
	s.P05 = Percentile(sorted, 5)
	s.P95 = Percentile(sorted, 95)
	return s
}

// CV returns the coefficient of variation (stddev/mean), or 0 when the mean
// is zero. The paper uses aggregator memory-consumption variance as a
// first-class metric; CV is the scale-free form of it.
func (s Summary) CV() float64 {
	if s.Mean == 0 {
		return 0
	}
	return s.Stddev / s.Mean
}

// String renders the summary in one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%.3g mean=%.3g median=%.3g max=%.3g sd=%.3g",
		s.N, s.Min, s.Mean, s.Median, s.Max, s.Stddev)
}

// Percentile returns the p-th percentile (0..100) of an ascending-sorted
// sample using linear interpolation between closest ranks. It panics if the
// sample is empty or unsorted inputs are the caller's responsibility.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		panic("stats: Percentile of empty sample")
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeoMean returns the geometric mean of strictly positive xs, or 0 when the
// slice is empty. It panics on non-positive values.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var logsum float64
	for _, x := range xs {
		if x <= 0 {
			panic("stats: GeoMean of non-positive value")
		}
		logsum += math.Log(x)
	}
	return math.Exp(logsum / float64(len(xs)))
}

// Histogram is a fixed-width-bin histogram over [Lo, Hi).
type Histogram struct {
	Lo, Hi float64
	Bins   []int
	// Under and Over count samples outside [Lo, Hi).
	Under, Over int
}

// NewHistogram creates a histogram with nbins equal-width bins spanning
// [lo, hi). It panics if nbins <= 0 or hi <= lo.
func NewHistogram(lo, hi float64, nbins int) *Histogram {
	if nbins <= 0 {
		panic("stats: NewHistogram with non-positive bin count")
	}
	if hi <= lo {
		panic("stats: NewHistogram with empty range")
	}
	return &Histogram{Lo: lo, Hi: hi, Bins: make([]int, nbins)}
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Bins)))
		if i >= len(h.Bins) { // float edge case at the top boundary
			i = len(h.Bins) - 1
		}
		h.Bins[i]++
	}
}

// Total returns the number of recorded samples, including out-of-range ones.
func (h *Histogram) Total() int {
	n := h.Under + h.Over
	for _, b := range h.Bins {
		n += b
	}
	return n
}
