// Package stats provides the deterministic random-number generation,
// probability distributions, and summary statistics used throughout the
// memory-conscious collective I/O simulator.
//
// Every stochastic element of an experiment (per-node available memory,
// random IOR offsets, workload jitter) draws from a seeded generator from
// this package so that a given experiment configuration always reproduces
// identical results.
package stats

import "math"

// RNG is a small, fast, seedable pseudo-random number generator
// (xoshiro256** seeded via SplitMix64). It is deliberately independent of
// math/rand so that the stream is stable across Go releases; experiment
// reproducibility depends on it.
//
// RNG is not safe for concurrent use; give each goroutine its own stream
// via Split.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from seed. Two generators built from
// the same seed produce identical streams forever.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	// SplitMix64 expansion of the seed into 256 bits of state. SplitMix64
	// guarantees the state is never all-zero for any seed.
	x := seed
	for i := range r.s {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// Split derives an independent child generator. The child's stream is a
// pure function of the parent's current state, so calling Split in a fixed
// order remains reproducible.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() ^ 0xd2b74407b1ce6e93)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniformly distributed int64 in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("stats: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Normal returns a normally distributed value with the given mean and
// standard deviation, using the Box–Muller transform.
func (r *RNG) Normal(mean, stddev float64) float64 {
	// Box–Muller; discard the second variate for stream simplicity.
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// LogNormal returns exp(Normal(mu, sigma)).
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Normal(mu, sigma))
}

// Pareto returns a Pareto-distributed value with scale xm > 0 and shape
// alpha > 0. Heavy-tailed; used for adversarial memory-variance scenarios.
func (r *RNG) Pareto(xm, alpha float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// Exponential returns an exponentially distributed value with the given
// rate lambda > 0.
func (r *RNG) Exponential(lambda float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u) / lambda
}

// Perm returns a random permutation of [0, n), Fisher–Yates shuffled.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n elements using the supplied swap function.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
