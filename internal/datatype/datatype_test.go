package datatype

import (
	"reflect"
	"testing"
	"testing/quick"

	"mcio/internal/pfs"
	"mcio/internal/stats"
)

func TestContiguous(t *testing.T) {
	c := Contiguous{Bytes: 10}
	if c.Size() != 10 || c.Extent() != 10 {
		t.Fatal("size/extent")
	}
	if got := c.Flatten(); !reflect.DeepEqual(got, []Block{{0, 10}}) {
		t.Fatalf("flatten = %v", got)
	}
	if (Contiguous{}).Flatten() != nil {
		t.Fatal("empty contiguous should flatten to nil")
	}
}

func TestVector(t *testing.T) {
	v := Vector{Count: 3, BlockLen: 4, Stride: 10}
	if v.Size() != 12 {
		t.Fatalf("size = %d", v.Size())
	}
	if v.Extent() != 24 { // 2*10 + 4
		t.Fatalf("extent = %d", v.Extent())
	}
	want := []Block{{0, 4}, {10, 4}, {20, 4}}
	if got := v.Flatten(); !reflect.DeepEqual(got, want) {
		t.Fatalf("flatten = %v", got)
	}
}

func TestVectorDegenerate(t *testing.T) {
	// Stride == BlockLen means no holes: one block.
	v := Vector{Count: 5, BlockLen: 8, Stride: 8}
	if got := v.Flatten(); !reflect.DeepEqual(got, []Block{{0, 40}}) {
		t.Fatalf("flatten = %v", got)
	}
	if (Vector{Count: 0, BlockLen: 4, Stride: 8}).Flatten() != nil {
		t.Fatal("zero-count vector should flatten to nil")
	}
	if (Vector{Count: 0, BlockLen: 4, Stride: 8}).Extent() != 0 {
		t.Fatal("zero-count vector extent")
	}
}

func TestIndexed(t *testing.T) {
	x := Indexed{Blocks: []Block{{20, 5}, {0, 10}, {10, 10}}}
	if x.Size() != 25 || x.Extent() != 25 {
		t.Fatalf("size/extent = %d/%d", x.Size(), x.Extent())
	}
	// 0..10 and 10..20 coalesce; 20..25 is adjacent too: all one block.
	if got := x.Flatten(); !reflect.DeepEqual(got, []Block{{0, 25}}) {
		t.Fatalf("flatten = %v", got)
	}
}

func TestIndexedRejectsOverlap(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Indexed{Blocks: []Block{{0, 10}, {5, 10}}}.Flatten()
}

func TestIndexedDropsEmpty(t *testing.T) {
	x := Indexed{Blocks: []Block{{5, 0}, {0, 3}}}
	if got := x.Flatten(); !reflect.DeepEqual(got, []Block{{0, 3}}) {
		t.Fatalf("flatten = %v", got)
	}
}

func TestSubarray2D(t *testing.T) {
	// 4x6 array of 1-byte elements; take the 2x3 block at (1,2).
	s := Subarray{
		Sizes:     []int64{4, 6},
		Subsizes:  []int64{2, 3},
		Starts:    []int64{1, 2},
		ElemBytes: 1,
	}
	if s.Size() != 6 || s.Extent() != 24 {
		t.Fatalf("size/extent = %d/%d", s.Size(), s.Extent())
	}
	want := []Block{{8, 3}, {14, 3}} // rows 1 and 2, cols 2..5
	if got := s.Flatten(); !reflect.DeepEqual(got, want) {
		t.Fatalf("flatten = %v, want %v", got, want)
	}
}

func TestSubarray3D(t *testing.T) {
	// 2x2x4 array, elements 2 bytes; sub-block 2x1x2 at (0,1,1).
	s := Subarray{
		Sizes:     []int64{2, 2, 4},
		Subsizes:  []int64{2, 1, 2},
		Starts:    []int64{0, 1, 1},
		ElemBytes: 2,
	}
	// plane stride = 2*4*2 = 16, row stride = 4*2 = 8.
	// runs at plane 0 row 1 col 1 → 8+2=10, and plane 1 → 26. Each 4 bytes.
	want := []Block{{10, 4}, {26, 4}}
	if got := s.Flatten(); !reflect.DeepEqual(got, want) {
		t.Fatalf("flatten = %v, want %v", got, want)
	}
}

func TestSubarrayFullArrayIsContiguous(t *testing.T) {
	s := Subarray{
		Sizes:     []int64{3, 4},
		Subsizes:  []int64{3, 4},
		Starts:    []int64{0, 0},
		ElemBytes: 4,
	}
	if got := s.Flatten(); !reflect.DeepEqual(got, []Block{{0, 48}}) {
		t.Fatalf("full subarray should coalesce to one block: %v", got)
	}
}

func TestSubarrayValidate(t *testing.T) {
	bads := []Subarray{
		{},
		{Sizes: []int64{4}, Subsizes: []int64{2, 2}, Starts: []int64{0}, ElemBytes: 1},
		{Sizes: []int64{4}, Subsizes: []int64{2}, Starts: []int64{0}, ElemBytes: 0},
		{Sizes: []int64{4}, Subsizes: []int64{5}, Starts: []int64{0}, ElemBytes: 1},
		{Sizes: []int64{4}, Subsizes: []int64{2}, Starts: []int64{3}, ElemBytes: 1},
		{Sizes: []int64{0}, Subsizes: []int64{0}, Starts: []int64{0}, ElemBytes: 1},
	}
	for i, s := range bads {
		if err := s.Validate(); err == nil {
			t.Errorf("bad subarray %d accepted", i)
		}
	}
}

func TestViewContig(t *testing.T) {
	v := ContigView()
	got := v.Extents(100, 50)
	want := []pfs.Extent{{Offset: 100, Length: 50}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("extents = %v, want %v", got, want)
	}
}

func TestViewZeroLength(t *testing.T) {
	if got := ContigView().Extents(5, 0); got != nil {
		t.Fatalf("zero-length extents = %v", got)
	}
}

func TestViewVectorTiling(t *testing.T) {
	// Filetype: 4 data bytes then 4-byte hole (vector count=1 blocklen=4
	// stride=8 has extent 4 — use Indexed to get an explicit hole).
	ft := Indexed{Blocks: []Block{{0, 4}}}
	_ = ft
	// Instead use a Vector with two blocks so extent includes the hole.
	v := View{Disp: 100, Filetype: Vector{Count: 2, BlockLen: 4, Stride: 8}}
	// One tile: data bytes 0..8 -> file 100..104 and 108..112.
	got := v.Extents(0, 8)
	want := []pfs.Extent{{Offset: 100, Length: 4}, {Offset: 108, Length: 4}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("extents = %v, want %v", got, want)
	}
	// Second tile starts at disp + extent (12): data byte 8 -> file 112.
	got = v.Extents(8, 4)
	want = []pfs.Extent{{Offset: 112, Length: 4}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("tile-2 extents = %v, want %v", got, want)
	}
}

func TestViewMidBlockStart(t *testing.T) {
	v := View{Disp: 0, Filetype: Vector{Count: 2, BlockLen: 4, Stride: 8}}
	// Start 2 data bytes in: remaining 2 bytes of block 0, then block 1.
	got := v.Extents(2, 4)
	want := []pfs.Extent{{Offset: 2, Length: 2}, {Offset: 8, Length: 2}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("extents = %v, want %v", got, want)
	}
}

func TestViewExtentsPanics(t *testing.T) {
	for _, f := range []func(){
		func() { ContigView().Extents(-1, 5) },
		func() { ContigView().Extents(0, -5) },
		func() { (View{Filetype: Contiguous{}}).Extents(0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

// Property: Extents conserves bytes, is sorted and non-overlapping, and
// consecutive data ranges map to disjoint file ranges.
func TestViewExtentsProperties(t *testing.T) {
	r := stats.NewRNG(53)
	err := quick.Check(func(seed uint64) bool {
		rr := stats.NewRNG(seed)
		ft := Vector{
			Count:    rr.Intn(5) + 1,
			BlockLen: rr.Int63n(16) + 1,
		}
		ft.Stride = ft.BlockLen + rr.Int63n(16)
		v := View{Disp: rr.Int63n(64), Filetype: ft}
		dataOff := rr.Int63n(100)
		n := rr.Int63n(200) + 1
		exts := v.Extents(dataOff, n)
		if pfs.TotalBytes(exts) != n {
			return false
		}
		for i := 1; i < len(exts); i++ {
			if exts[i].Offset < exts[i-1].End() {
				return false
			}
		}
		// Adjacent data ranges tile disjointly and in order.
		a := v.Extents(dataOff, n/2)
		b := v.Extents(dataOff+n/2, n-n/2)
		if pfs.TotalBytes(a)+pfs.TotalBytes(b) != n {
			return false
		}
		for _, ea := range a {
			for _, eb := range b {
				if ea.Overlaps(eb) {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 300, Rand: quickRand(r)})
	if err != nil {
		t.Fatal(err)
	}
}

// Property: a subarray's flattened blocks exactly cover Size() bytes and
// stay within the extent.
func TestSubarrayFlattenProperties(t *testing.T) {
	r := stats.NewRNG(59)
	err := quick.Check(func(seed uint64) bool {
		rr := stats.NewRNG(seed)
		ndim := rr.Intn(3) + 1
		s := Subarray{ElemBytes: rr.Int63n(4) + 1}
		for d := 0; d < ndim; d++ {
			size := rr.Int63n(6) + 1
			sub := rr.Int63n(size) + 1
			start := rr.Int63n(size - sub + 1)
			s.Sizes = append(s.Sizes, size)
			s.Subsizes = append(s.Subsizes, sub)
			s.Starts = append(s.Starts, start)
		}
		blocks := s.Flatten()
		var total int64
		for i, b := range blocks {
			total += b.Length
			if b.Offset < 0 || b.Offset+b.Length > s.Extent() {
				return false
			}
			if i > 0 && b.Offset < blocks[i-1].Offset+blocks[i-1].Length {
				return false
			}
		}
		return total == s.Size()
	}, &quick.Config{MaxCount: 300, Rand: quickRand(r)})
	if err != nil {
		t.Fatal(err)
	}
}
