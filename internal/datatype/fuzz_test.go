package datatype

import "testing"

// FuzzViewExtents checks View.Extents against a naive byte-by-byte
// expansion of the tiled filetype for arbitrary vector geometries and
// data ranges.
func FuzzViewExtents(f *testing.F) {
	f.Add(uint8(3), uint8(4), uint8(2), uint8(5), uint16(7), uint16(20))
	f.Add(uint8(1), uint8(1), uint8(0), uint8(0), uint16(0), uint16(1))
	f.Fuzz(func(t *testing.T, countRaw, blockRaw, gapRaw, dispRaw uint8, offRaw, nRaw uint16) {
		count := int(countRaw%5) + 1
		block := int64(blockRaw%16) + 1
		stride := block + int64(gapRaw%16)
		disp := int64(dispRaw % 64)
		v := View{
			Disp:     disp,
			Filetype: Vector{Count: count, BlockLen: block, Stride: stride},
		}
		dataOff := int64(offRaw % 512)
		n := int64(nRaw%512) + 1

		got := v.Extents(dataOff, n)

		// Naive oracle: enumerate data bytes one by one through the tiled
		// type and collect their file offsets.
		tileSize := v.Filetype.Size()
		tileExtent := v.Filetype.Extent()
		blocks := v.Filetype.Flatten()
		fileOf := func(dataPos int64) int64 {
			tile := dataPos / tileSize
			within := dataPos % tileSize
			for _, b := range blocks {
				if within < b.Length {
					return disp + tile*tileExtent + b.Offset + within
				}
				within -= b.Length
			}
			t.Fatalf("dataPos %d outside tile of size %d", dataPos, tileSize)
			return 0
		}
		want := map[int64]bool{}
		for i := int64(0); i < n; i++ {
			want[fileOf(dataOff+i)] = true
		}
		var gotBytes int64
		for _, e := range got {
			for b := e.Offset; b < e.End(); b++ {
				if !want[b] {
					t.Fatalf("Extents produced byte %d not in oracle", b)
				}
				gotBytes++
			}
		}
		if gotBytes != int64(len(want)) {
			t.Fatalf("Extents covered %d bytes, oracle has %d", gotBytes, len(want))
		}
	})
}

// FuzzSubarrayFlatten checks the subarray invariants for arbitrary small
// geometries.
func FuzzSubarrayFlatten(f *testing.F) {
	f.Add(uint8(4), uint8(2), uint8(1), uint8(4), uint8(2), uint8(0), uint8(2))
	f.Fuzz(func(t *testing.T, s0, sub0, st0, s1, sub1, st1, elemRaw uint8) {
		size0 := int64(s0%6) + 1
		size1 := int64(s1%6) + 1
		ss0 := int64(sub0%uint8(size0)) + 1
		ss1 := int64(sub1%uint8(size1)) + 1
		start0 := int64(st0) % (size0 - ss0 + 1)
		start1 := int64(st1) % (size1 - ss1 + 1)
		elem := int64(elemRaw%4) + 1
		sa := Subarray{
			Sizes:     []int64{size0, size1},
			Subsizes:  []int64{ss0, ss1},
			Starts:    []int64{start0, start1},
			ElemBytes: elem,
		}
		if err := sa.Validate(); err != nil {
			t.Fatalf("geometry should be valid: %v", err)
		}
		blocks := sa.Flatten()
		var total int64
		for i, b := range blocks {
			total += b.Length
			if b.Offset < 0 || b.Offset+b.Length > sa.Extent() {
				t.Fatal("block outside extent")
			}
			if i > 0 && b.Offset < blocks[i-1].Offset+blocks[i-1].Length {
				t.Fatal("blocks overlap or unsorted")
			}
		}
		if total != sa.Size() {
			t.Fatalf("blocks cover %d bytes, size is %d", total, sa.Size())
		}
	})
}
