package datatype

import (
	"reflect"
	"testing"
	"testing/quick"

	mrand "math/rand"

	"mcio/internal/stats"
)

func TestDarrayValidate(t *testing.T) {
	good := Darray{
		Rank: 0, Sizes: []int64{8, 8},
		Distribs: []Distribution{DistBlock, DistBlock},
		PSizes:   []int{2, 2}, ElemBytes: 4,
	}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bads := []Darray{
		{},
		{Rank: 0, Sizes: []int64{8}, Distribs: []Distribution{DistBlock, DistBlock}, PSizes: []int{2}, ElemBytes: 4},
		{Rank: 0, Sizes: []int64{8}, Distribs: []Distribution{DistBlock}, PSizes: []int{2}, ElemBytes: 0},
		{Rank: 0, Sizes: []int64{8}, Distribs: []Distribution{DistBlock}, PSizes: []int{0}, ElemBytes: 4},
		{Rank: 0, Sizes: []int64{0}, Distribs: []Distribution{DistBlock}, PSizes: []int{2}, ElemBytes: 4},
		{Rank: 4, Sizes: []int64{8}, Distribs: []Distribution{DistBlock}, PSizes: []int{2}, ElemBytes: 4},
		{Rank: 0, Sizes: []int64{8}, Distribs: []Distribution{DistNone}, PSizes: []int{2}, ElemBytes: 4},
	}
	for i, d := range bads {
		if err := d.Validate(); err == nil {
			t.Errorf("bad darray %d accepted", i)
		}
	}
}

func TestDarrayBlockMatchesSubarray(t *testing.T) {
	// A block-distributed darray must flatten identically to the
	// equivalent subarray for every rank.
	sizes := []int64{12, 10}
	psizes := []int{3, 2}
	for rank := 0; rank < 6; rank++ {
		d := Darray{
			Rank: rank, Sizes: sizes,
			Distribs: []Distribution{DistBlock, DistBlock},
			PSizes:   psizes, ElemBytes: 4,
		}
		i, j := rank/2, rank%2
		s := Subarray{
			Sizes:     sizes,
			Subsizes:  []int64{blockLenIdx(12, 3, int64(i)), blockLenIdx(10, 2, int64(j))},
			Starts:    []int64{blockStartIdx(12, 3, int64(i)), blockStartIdx(10, 2, int64(j))},
			ElemBytes: 4,
		}
		if got, want := d.Flatten(), s.Flatten(); !reflect.DeepEqual(got, want) {
			t.Fatalf("rank %d: darray %v != subarray %v", rank, got, want)
		}
		if d.Size() != s.Size() {
			t.Fatalf("rank %d: size %d != %d", rank, d.Size(), s.Size())
		}
	}
}

func TestDarrayCyclic1D(t *testing.T) {
	// 10 elements cyclic over 3 processes: rank 1 owns 1,4,7.
	d := Darray{
		Rank: 1, Sizes: []int64{10},
		Distribs: []Distribution{DistCyclic},
		PSizes:   []int{3}, ElemBytes: 2,
	}
	want := []Block{{2, 2}, {8, 2}, {14, 2}}
	if got := d.Flatten(); !reflect.DeepEqual(got, want) {
		t.Fatalf("cyclic flatten = %v, want %v", got, want)
	}
	if d.Size() != 6 {
		t.Fatalf("size = %d", d.Size())
	}
}

func TestDarrayDistNone(t *testing.T) {
	// Undistributed first dimension, block second: each rank owns full
	// rows of its column block.
	d := Darray{
		Rank: 1, Sizes: []int64{3, 8},
		Distribs: []Distribution{DistNone, DistBlock},
		PSizes:   []int{1, 2}, ElemBytes: 1,
	}
	want := []Block{{4, 4}, {12, 4}, {20, 4}}
	if got := d.Flatten(); !reflect.DeepEqual(got, want) {
		t.Fatalf("flatten = %v, want %v", got, want)
	}
}

func TestDarrayExtent(t *testing.T) {
	d := Darray{
		Rank: 0, Sizes: []int64{4, 4},
		Distribs: []Distribution{DistBlock, DistBlock},
		PSizes:   []int{2, 2}, ElemBytes: 8,
	}
	if d.Extent() != 128 {
		t.Fatalf("extent = %d", d.Extent())
	}
}

// Property: over all grid ranks, darray portions tile the global array
// exactly and disjointly, for random dimensionality, sizes and
// distributions.
func TestDarrayTilesGlobalArray(t *testing.T) {
	r := stats.NewRNG(83)
	err := quick.Check(func(seed uint64) bool {
		rr := stats.NewRNG(seed)
		ndim := rr.Intn(3) + 1
		sizes := make([]int64, ndim)
		distribs := make([]Distribution, ndim)
		psizes := make([]int, ndim)
		nprocs := 1
		for dim := 0; dim < ndim; dim++ {
			sizes[dim] = rr.Int63n(6) + 1
			switch rr.Intn(3) {
			case 0:
				distribs[dim] = DistNone
				psizes[dim] = 1
			case 1:
				distribs[dim] = DistBlock
				psizes[dim] = rr.Intn(3) + 1
			default:
				distribs[dim] = DistCyclic
				psizes[dim] = rr.Intn(3) + 1
			}
			nprocs *= psizes[dim]
		}
		elem := rr.Int63n(4) + 1
		var totalElems int64 = 1
		for _, s := range sizes {
			totalElems *= s
		}
		covered := make([]int, totalElems*elem)
		var totalBytes int64
		for rank := 0; rank < nprocs; rank++ {
			d := Darray{Rank: rank, Sizes: sizes, Distribs: distribs, PSizes: psizes, ElemBytes: elem}
			if err := d.Validate(); err != nil {
				return false
			}
			for _, b := range d.Flatten() {
				for i := b.Offset; i < b.Offset+b.Length; i++ {
					covered[i]++
				}
				totalBytes += b.Length
			}
			if d.Size() != blocksBytes(d.Flatten()) {
				return false
			}
		}
		if totalBytes != totalElems*elem {
			return false
		}
		for _, c := range covered {
			if c != 1 {
				return false // hole or overlap
			}
		}
		return true
	}, &quick.Config{MaxCount: 150, Rand: mrand.New(mrand.NewSource(int64(r.Uint64())))})
	if err != nil {
		t.Fatal(err)
	}
}

func blocksBytes(bs []Block) int64 {
	var n int64
	for _, b := range bs {
		n += b.Length
	}
	return n
}

func TestRepeated(t *testing.T) {
	inner := Vector{Count: 2, BlockLen: 2, Stride: 4} // blocks 0..2, 4..6; extent 6
	rep := Repeated{Inner: inner, Count: 3}
	if rep.Size() != 12 || rep.Extent() != 18 {
		t.Fatalf("size/extent = %d/%d", rep.Size(), rep.Extent())
	}
	want := []Block{{0, 2}, {4, 4}, {10, 4}, {16, 2}}
	// Tile 1: 0..2,4..6; tile 2 at 6: 6..8,10..12; tile 3 at 12: 12..14,16..18.
	// 4..6 and 6..8 coalesce; 10..12 and 12..14 coalesce.
	if got := rep.Flatten(); !reflect.DeepEqual(got, want) {
		t.Fatalf("flatten = %v, want %v", got, want)
	}
	if (Repeated{Inner: inner, Count: 0}).Flatten() != nil {
		t.Fatal("zero count should flatten to nil")
	}
}

func TestRepeatedAsView(t *testing.T) {
	// Repeated composes with views: a repeated holey type tiles like its
	// expansion.
	inner := Vector{Count: 1, BlockLen: 3, Stride: 3}
	rep := Repeated{Inner: inner, Count: 4}
	v := View{Disp: 10, Filetype: rep}
	exts := v.Extents(0, 12)
	if len(exts) != 1 || exts[0].Offset != 10 || exts[0].Length != 12 {
		t.Fatalf("extents = %v", exts)
	}
}
