// Package datatype implements the MPI-derived-datatype machinery that
// collective I/O consumes: contiguous, vector (strided), indexed, and
// N-dimensional subarray layouts, plus file views (displacement + etype +
// filetype) that map a process's linear data stream to noncontiguous file
// offsets.
//
// Everything reduces to Flatten: the canonical sorted list of
// (offset, length) blocks one instance ("tile") of the type touches. File
// views tile the flattened filetype along the file to translate data-space
// ranges into file-space extents — exactly what ROMIO's flattening code
// does before two-phase aggregation.
package datatype

import (
	"fmt"
	"sort"

	"mcio/internal/pfs"
)

// Block is a contiguous run within a datatype, relative to the type's
// origin.
type Block struct {
	Offset int64
	Length int64
}

// Type is a data layout: a (possibly holey) pattern of bytes.
type Type interface {
	// Size returns the number of data bytes in one instance of the type.
	Size() int64
	// Extent returns the span of one instance including holes; tiling a
	// type advances by its extent.
	Extent() int64
	// Flatten returns the type's blocks sorted by offset, coalescing
	// adjacent blocks. The result must not be mutated.
	Flatten() []Block
}

// Contiguous is N contiguous bytes with no holes.
type Contiguous struct{ Bytes int64 }

// Size implements Type.
func (c Contiguous) Size() int64 { return c.Bytes }

// Extent implements Type.
func (c Contiguous) Extent() int64 { return c.Bytes }

// Flatten implements Type.
func (c Contiguous) Flatten() []Block {
	if c.Bytes <= 0 {
		return nil
	}
	return []Block{{Offset: 0, Length: c.Bytes}}
}

// Vector is Count blocks of BlockLen bytes, each Stride bytes apart
// (stride measured start-to-start, in bytes). The MPI_Type_vector of this
// simulator.
type Vector struct {
	Count    int
	BlockLen int64
	Stride   int64
}

// Size implements Type.
func (v Vector) Size() int64 { return int64(v.Count) * v.BlockLen }

// Extent implements Type.
func (v Vector) Extent() int64 {
	if v.Count == 0 {
		return 0
	}
	return int64(v.Count-1)*v.Stride + v.BlockLen
}

// Flatten implements Type.
func (v Vector) Flatten() []Block {
	if v.Count <= 0 || v.BlockLen <= 0 {
		return nil
	}
	if v.Stride == v.BlockLen {
		// Degenerate: no holes.
		return []Block{{Offset: 0, Length: int64(v.Count) * v.BlockLen}}
	}
	blocks := make([]Block, v.Count)
	for i := range blocks {
		blocks[i] = Block{Offset: int64(i) * v.Stride, Length: v.BlockLen}
	}
	return coalesce(blocks)
}

// Indexed is an explicit block list (MPI_Type_indexed with byte
// displacements). Blocks may be given unsorted; they must not overlap.
type Indexed struct{ Blocks []Block }

// Size implements Type.
func (x Indexed) Size() int64 {
	var n int64
	for _, b := range x.Blocks {
		n += b.Length
	}
	return n
}

// Extent implements Type.
func (x Indexed) Extent() int64 {
	var max int64
	for _, b := range x.Blocks {
		if end := b.Offset + b.Length; end > max {
			max = end
		}
	}
	return max
}

// Flatten implements Type.
func (x Indexed) Flatten() []Block {
	blocks := make([]Block, 0, len(x.Blocks))
	for _, b := range x.Blocks {
		if b.Length < 0 {
			panic(fmt.Sprintf("datatype: negative block length %d", b.Length))
		}
		if b.Length > 0 {
			blocks = append(blocks, b)
		}
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i].Offset < blocks[j].Offset })
	for i := 1; i < len(blocks); i++ {
		if blocks[i].Offset < blocks[i-1].Offset+blocks[i-1].Length {
			panic("datatype: overlapping blocks in Indexed type")
		}
	}
	return coalesce(blocks)
}

// Subarray selects an N-dimensional sub-block of an N-dimensional array
// stored in row-major order, as MPI_Type_create_subarray does. Sizes are
// element counts per dimension; ElemBytes is the element width.
type Subarray struct {
	Sizes     []int64 // full array dimensions, row-major (last varies fastest)
	Subsizes  []int64 // sub-block dimensions
	Starts    []int64 // sub-block origin
	ElemBytes int64
}

// Validate reports an error for inconsistent geometry.
func (s Subarray) Validate() error {
	if len(s.Sizes) == 0 {
		return fmt.Errorf("datatype: subarray with no dimensions")
	}
	if len(s.Subsizes) != len(s.Sizes) || len(s.Starts) != len(s.Sizes) {
		return fmt.Errorf("datatype: subarray dimension mismatch: sizes=%d subsizes=%d starts=%d",
			len(s.Sizes), len(s.Subsizes), len(s.Starts))
	}
	if s.ElemBytes <= 0 {
		return fmt.Errorf("datatype: subarray element size %d must be positive", s.ElemBytes)
	}
	for d := range s.Sizes {
		if s.Sizes[d] <= 0 || s.Subsizes[d] <= 0 {
			return fmt.Errorf("datatype: subarray dim %d: sizes must be positive", d)
		}
		if s.Starts[d] < 0 || s.Starts[d]+s.Subsizes[d] > s.Sizes[d] {
			return fmt.Errorf("datatype: subarray dim %d: start %d + subsize %d exceeds size %d",
				d, s.Starts[d], s.Subsizes[d], s.Sizes[d])
		}
	}
	return nil
}

// Size implements Type.
func (s Subarray) Size() int64 {
	n := s.ElemBytes
	for _, ss := range s.Subsizes {
		n *= ss
	}
	return n
}

// Extent implements Type.
func (s Subarray) Extent() int64 {
	n := s.ElemBytes
	for _, sz := range s.Sizes {
		n *= sz
	}
	return n
}

// Flatten implements Type. The innermost dimension yields contiguous runs
// of Subsizes[last] elements; outer dimensions enumerate their origins.
func (s Subarray) Flatten() []Block {
	if err := s.Validate(); err != nil {
		panic(err)
	}
	ndim := len(s.Sizes)
	// Row-major strides in bytes.
	stride := make([]int64, ndim)
	stride[ndim-1] = s.ElemBytes
	for d := ndim - 2; d >= 0; d-- {
		stride[d] = stride[d+1] * s.Sizes[d+1]
	}
	runLen := s.Subsizes[ndim-1] * s.ElemBytes
	// Iterate all index combinations of the outer ndim-1 dimensions.
	nRuns := int64(1)
	for d := 0; d < ndim-1; d++ {
		nRuns *= s.Subsizes[d]
	}
	blocks := make([]Block, 0, nRuns)
	idx := make([]int64, ndim-1)
	for r := int64(0); r < nRuns; r++ {
		var off int64
		for d := 0; d < ndim-1; d++ {
			off += (s.Starts[d] + idx[d]) * stride[d]
		}
		off += s.Starts[ndim-1] * stride[ndim-1]
		blocks = append(blocks, Block{Offset: off, Length: runLen})
		for d := ndim - 2; d >= 0; d-- {
			idx[d]++
			if idx[d] < s.Subsizes[d] {
				break
			}
			idx[d] = 0
		}
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i].Offset < blocks[j].Offset })
	return coalesce(blocks)
}

// coalesce merges adjacent blocks in a sorted non-overlapping block list.
func coalesce(blocks []Block) []Block {
	out := blocks[:0]
	for _, b := range blocks {
		if n := len(out); n > 0 && out[n-1].Offset+out[n-1].Length == b.Offset {
			out[n-1].Length += b.Length
			continue
		}
		out = append(out, b)
	}
	return out
}

// View is an MPI file view: from Disp onward the file is tiled with
// Filetype; the process's data stream maps into the filetype's data bytes
// tile by tile.
type View struct {
	Disp     int64
	Filetype Type
}

// ContigView is the default view: the whole file, byte for byte.
func ContigView() View {
	return View{Disp: 0, Filetype: Contiguous{Bytes: 1}}
}

// Extents translates the data-space range [dataOff, dataOff+n) into
// file-space extents under the view. The returned extents are sorted and
// non-overlapping.
func (v View) Extents(dataOff, n int64) []pfs.Extent {
	if dataOff < 0 || n < 0 {
		panic(fmt.Sprintf("datatype: negative view range (%d,%d)", dataOff, n))
	}
	if n == 0 {
		return nil
	}
	blocks := v.Filetype.Flatten()
	tileSize := v.Filetype.Size()
	tileExtent := v.Filetype.Extent()
	if tileSize <= 0 {
		panic("datatype: view filetype has no data bytes")
	}
	var out []pfs.Extent
	tile := dataOff / tileSize
	within := dataOff % tileSize // data bytes into the current tile
	remaining := n
	for remaining > 0 {
		base := v.Disp + tile*tileExtent
		var seen int64
		for _, b := range blocks {
			if remaining <= 0 {
				break
			}
			if within >= seen+b.Length {
				seen += b.Length
				continue
			}
			skip := within - seen // bytes of this block already consumed
			take := b.Length - skip
			if take > remaining {
				take = remaining
			}
			out = append(out, pfs.Extent{Offset: base + b.Offset + skip, Length: take})
			remaining -= take
			within += take
			seen += b.Length
		}
		tile++
		within = 0
	}
	return pfs.NormalizeExtents(out)
}
