package datatype

import (
	"fmt"
	"sort"
)

// Distribution selects how one dimension of a distributed array is split
// over a process-grid dimension, as in MPI_Type_create_darray.
type Distribution int

// Distributions supported by Darray.
const (
	// DistNone leaves the dimension undistributed: every process holds
	// the whole dimension.
	DistNone Distribution = iota
	// DistBlock gives each process one contiguous block (remainder to
	// the leading processes).
	DistBlock
	// DistCyclic deals single elements round-robin over the grid
	// dimension.
	DistCyclic
)

// Darray is a distributed-array datatype (MPI_Type_create_darray): the
// portion of an N-dimensional row-major global array owned by one process
// of an N-dimensional process grid. HPC applications use it to describe
// each rank's file view of a shared dataset; it is the general form of
// the block Subarray that coll_perf uses.
type Darray struct {
	// Rank is the process whose portion this type describes, numbered in
	// row-major order over the process grid.
	Rank int
	// Sizes are the global array dimensions (elements).
	Sizes []int64
	// Distribs selects the distribution per dimension.
	Distribs []Distribution
	// PSizes are the process grid dimensions; their product is the
	// process count.
	PSizes []int
	// ElemBytes is the element width.
	ElemBytes int64
}

// Validate reports an error for inconsistent geometry.
func (d Darray) Validate() error {
	n := len(d.Sizes)
	if n == 0 {
		return fmt.Errorf("datatype: darray with no dimensions")
	}
	if len(d.Distribs) != n || len(d.PSizes) != n {
		return fmt.Errorf("datatype: darray dimension mismatch: sizes=%d distribs=%d psizes=%d",
			n, len(d.Distribs), len(d.PSizes))
	}
	if d.ElemBytes <= 0 {
		return fmt.Errorf("datatype: darray element size %d must be positive", d.ElemBytes)
	}
	nprocs := 1
	for dim, p := range d.PSizes {
		if p <= 0 {
			return fmt.Errorf("datatype: darray grid dim %d = %d, must be positive", dim, p)
		}
		if d.Distribs[dim] == DistNone && p != 1 {
			return fmt.Errorf("datatype: darray dim %d undistributed but grid size %d", dim, p)
		}
		nprocs *= p
	}
	for dim, s := range d.Sizes {
		if s <= 0 {
			return fmt.Errorf("datatype: darray dim %d size %d must be positive", dim, s)
		}
	}
	if d.Rank < 0 || d.Rank >= nprocs {
		return fmt.Errorf("datatype: darray rank %d outside grid of %d", d.Rank, nprocs)
	}
	return nil
}

// coords returns the process's coordinates in the row-major grid.
func (d Darray) coords() []int {
	c := make([]int, len(d.PSizes))
	r := d.Rank
	for dim := len(d.PSizes) - 1; dim >= 0; dim-- {
		c[dim] = r % d.PSizes[dim]
		r /= d.PSizes[dim]
	}
	return c
}

// ownedIndices returns the global indices this process owns along one
// dimension, ascending.
func (d Darray) ownedIndices(dim int, coord int) []int64 {
	size := d.Sizes[dim]
	p := int64(d.PSizes[dim])
	switch d.Distribs[dim] {
	case DistNone:
		out := make([]int64, size)
		for i := range out {
			out[i] = int64(i)
		}
		return out
	case DistBlock:
		start := blockStartIdx(size, p, int64(coord))
		length := blockLenIdx(size, p, int64(coord))
		out := make([]int64, length)
		for i := range out {
			out[i] = start + int64(i)
		}
		return out
	case DistCyclic:
		var out []int64
		for i := int64(coord); i < size; i += p {
			out = append(out, i)
		}
		return out
	default:
		panic(fmt.Sprintf("datatype: unknown distribution %d", d.Distribs[dim]))
	}
}

func blockStartIdx(n, parts, idx int64) int64 {
	base := n / parts
	rem := n % parts
	if idx < rem {
		return idx * (base + 1)
	}
	return rem*(base+1) + (idx-rem)*base
}

func blockLenIdx(n, parts, idx int64) int64 {
	base := n / parts
	if idx < n%parts {
		return base + 1
	}
	return base
}

// Size implements Type.
func (d Darray) Size() int64 {
	if err := d.Validate(); err != nil {
		panic(err)
	}
	c := d.coords()
	n := d.ElemBytes
	for dim := range d.Sizes {
		n *= int64(len(d.ownedIndices(dim, c[dim])))
	}
	return n
}

// Extent implements Type: the whole global array.
func (d Darray) Extent() int64 {
	n := d.ElemBytes
	for _, s := range d.Sizes {
		n *= s
	}
	return n
}

// Flatten implements Type: the owned element set as maximal contiguous
// byte runs of the row-major global array.
func (d Darray) Flatten() []Block {
	if err := d.Validate(); err != nil {
		panic(err)
	}
	ndim := len(d.Sizes)
	c := d.coords()
	owned := make([][]int64, ndim)
	for dim := range owned {
		owned[dim] = d.ownedIndices(dim, c[dim])
		if len(owned[dim]) == 0 {
			return nil
		}
	}
	stride := make([]int64, ndim)
	stride[ndim-1] = d.ElemBytes
	for dim := ndim - 2; dim >= 0; dim-- {
		stride[dim] = stride[dim+1] * d.Sizes[dim+1]
	}

	// Runs along the last dimension: consecutive owned indices merge.
	type run struct{ off, length int64 }
	var lastRuns []run
	start := owned[ndim-1][0]
	prev := start
	for _, idx := range owned[ndim-1][1:] {
		if idx == prev+1 {
			prev = idx
			continue
		}
		lastRuns = append(lastRuns, run{off: start * stride[ndim-1], length: (prev - start + 1) * d.ElemBytes})
		start, prev = idx, idx
	}
	lastRuns = append(lastRuns, run{off: start * stride[ndim-1], length: (prev - start + 1) * d.ElemBytes})

	// Outer dimensions enumerate their owned index combinations.
	blocks := []Block{}
	idx := make([]int, ndim-1)
	for {
		var base int64
		for dim := 0; dim < ndim-1; dim++ {
			base += owned[dim][idx[dim]] * stride[dim]
		}
		for _, r := range lastRuns {
			blocks = append(blocks, Block{Offset: base + r.off, Length: r.length})
		}
		dim := ndim - 2
		for ; dim >= 0; dim-- {
			idx[dim]++
			if idx[dim] < len(owned[dim]) {
				break
			}
			idx[dim] = 0
		}
		if dim < 0 {
			break
		}
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i].Offset < blocks[j].Offset })
	return coalesce(blocks)
}

// Repeated tiles an inner datatype Count times end to end (by extent), as
// MPI_Type_contiguous does for derived types.
type Repeated struct {
	Inner Type
	Count int
}

// Size implements Type.
func (r Repeated) Size() int64 { return int64(r.Count) * r.Inner.Size() }

// Extent implements Type.
func (r Repeated) Extent() int64 { return int64(r.Count) * r.Inner.Extent() }

// Flatten implements Type.
func (r Repeated) Flatten() []Block {
	if r.Count <= 0 {
		return nil
	}
	inner := r.Inner.Flatten()
	ext := r.Inner.Extent()
	blocks := make([]Block, 0, len(inner)*r.Count)
	for i := 0; i < r.Count; i++ {
		base := int64(i) * ext
		for _, b := range inner {
			blocks = append(blocks, Block{Offset: base + b.Offset, Length: b.Length})
		}
	}
	return coalesce(blocks)
}
