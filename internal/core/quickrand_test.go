package core

import (
	mrand "math/rand"

	"mcio/internal/stats"
)

// quickRand adapts a stats.RNG into the *math/rand.Rand that testing/quick
// expects, keeping property tests seeded and reproducible.
func quickRand(r *stats.RNG) *mrand.Rand {
	return mrand.New(mrand.NewSource(int64(r.Uint64())))
}
