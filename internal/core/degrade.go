package core

import (
	"mcio/internal/collio"
	"mcio/internal/obs"
)

// maxShrinks bounds the degradation ladder: each step halves the
// aggregation appetite once more, so three steps reach an eighth of the
// configured sizes before the planner gives up on aggregation entirely.
const maxShrinks = 3

// DegradedPlan is the outcome of planning under memory starvation. When
// Independent is false, Plan/State hold a placeable aggregation plan and
// Params the (possibly shrunk) tunables it was planned with — Exec and
// the failover handler must use those Params, not the caller's. When
// Independent is true no aggregation was possible at any rung and the
// operation must run as independent I/O (collio.ExecIndependent /
// collio.CostIndependent).
type DegradedPlan struct {
	Plan        *collio.Plan
	State       *RecoveryState
	Params      collio.Params
	Independent bool
	// Shrinks is how many halving steps the ladder took (0 = the normal
	// planner placed the plan unshrunk).
	Shrinks int
}

// PlanWithDegradation is PlanWithState behind the graceful-degradation
// ladder of the tentpole: when no host clears Mem_min (the starvation
// case §3.3 leaves to "the I/O must proceed anyway"), it does not accept
// a paged fallback placement outright — it first shrinks the aggregation
// appetite (Msg_ind, the collective buffer, and Mem_min itself, halved
// per rung) and accepts the first rung that yields an unpaged plan; if
// no rung does, it falls back to independent I/O, which needs no
// aggregation memory at all. With at least one host above Mem_min it is
// exactly PlanWithState.
func (s *Strategy) PlanWithDegradation(ctx *collio.Context, reqs []collio.RankRequest) (*DegradedPlan, error) {
	if err := ctx.Validate(); err != nil {
		return nil, err
	}
	if !starved(ctx) {
		plan, state, err := s.PlanWithState(ctx, reqs)
		if err != nil {
			return nil, err
		}
		return &DegradedPlan{Plan: plan, State: state, Params: ctx.Params}, nil
	}
	for shrink := 1; shrink <= maxShrinks; shrink++ {
		eff := *ctx
		p := ctx.Params
		p.MsgInd = halveN(p.MsgInd, shrink)
		p.CollBufSize = halveN(p.CollBufSize, shrink)
		p.MemMin = p.MemMin >> shrink
		if p.MsgGroup < p.MsgInd {
			p.MsgGroup = p.MsgInd
		}
		eff.Params = p
		if starved(&eff) {
			continue // still no host clears even the shrunk Mem_min
		}
		plan, state, err := s.PlanWithState(&eff, reqs)
		if err != nil {
			continue
		}
		if paged(plan) {
			continue // a rung that still over-commits is no degradation win
		}
		if ctx.Obs != nil {
			ctx.Obs.Counter("plan.degraded", obs.L("strategy", s.Name()), obs.L("mode", "shrunk")).Inc()
			ctx.Obs.Gauge("plan.shrink_steps", obs.L("strategy", s.Name())).Set(float64(shrink))
		}
		return &DegradedPlan{Plan: plan, State: state, Params: p, Shrinks: shrink}, nil
	}
	if ctx.Obs != nil {
		ctx.Obs.Counter("plan.degraded", obs.L("strategy", s.Name()), obs.L("mode", "independent")).Inc()
	}
	return &DegradedPlan{Params: ctx.Params, Independent: true}, nil
}

// starved reports whether no node's available memory clears Mem_min —
// the condition under which aggregator location cannot succeed anywhere.
func starved(ctx *collio.Context) bool {
	for node := 0; node < ctx.Topo.Nodes(); node++ {
		if ctx.Avail[node] >= ctx.Params.MemMin {
			return false
		}
	}
	return true
}

// paged reports whether any domain of the plan over-commits its host.
func paged(p *collio.Plan) bool {
	for _, d := range p.Domains {
		if d.PagedSeverity > 0 {
			return true
		}
	}
	return false
}

// halveN halves v n times, flooring at 1.
func halveN(v int64, n int) int64 {
	v >>= n
	if v < 1 {
		v = 1
	}
	return v
}
