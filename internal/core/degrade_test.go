package core

import (
	"bytes"
	"reflect"
	"testing"

	"mcio/internal/collio"
	"mcio/internal/faults"
	"mcio/internal/integrity"
	"mcio/internal/machine"
	"mcio/internal/mpi"
	"mcio/internal/obs"
	"mcio/internal/pfs"
	"mcio/internal/sim"
)

// degradeCtx builds a small context with the given per-node availability
// and a serial 8-rank workload.
func degradeCtx(t *testing.T, availEach int64, params collio.Params) (*collio.Context, []collio.RankRequest) {
	t.Helper()
	topo, err := mpi.BlockTopology(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	mc := machine.Testbed640()
	mc.Nodes = topo.Nodes()
	avail := make([]int64, topo.Nodes())
	for i := range avail {
		avail[i] = availEach
	}
	fsCfg := pfs.DefaultConfig(4)
	fsCfg.StripeUnit = 64
	ctx := &collio.Context{Topo: topo, Machine: mc, Avail: avail,
		FS: fsCfg, Params: params, Obs: obs.New()}
	var reqs []collio.RankRequest
	for r := 0; r < 8; r++ {
		reqs = append(reqs, collio.RankRequest{Rank: r,
			Extents: []pfs.Extent{{Offset: int64(r) * 400, Length: 400}}})
	}
	return ctx, reqs
}

func TestPlanWithDegradationAmplePassThrough(t *testing.T) {
	params := collio.DefaultParams(128)
	params.MemMin = 512
	ctx, reqs := degradeCtx(t, 1<<20, params)

	dp, err := New().PlanWithDegradation(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if dp.Independent || dp.Shrinks != 0 {
		t.Fatalf("ample memory degraded: independent=%v shrinks=%d", dp.Independent, dp.Shrinks)
	}
	if dp.Params != ctx.Params {
		t.Fatalf("ample memory changed params: %+v", dp.Params)
	}
	plain, _, err := New().PlanWithState(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dp.Plan.Domains, plain.Domains) {
		t.Fatal("pass-through plan differs from PlanWithState")
	}
	if got := ctx.Obs.Counter("plan.degraded",
		obs.L("strategy", "memory-conscious"), obs.L("mode", "shrunk")).Value(); got != 0 {
		t.Fatalf("pass-through counted %d shrunk degradations", got)
	}
}

func TestPlanWithDegradationShrinksAppetite(t *testing.T) {
	params := collio.DefaultParams(128)
	params.MemMin = 512
	// Every node holds 300 bytes: below Mem_min (starved), above the
	// first rung's halved Mem_min of 256.
	ctx, reqs := degradeCtx(t, 300, params)

	dp, err := New().PlanWithDegradation(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if dp.Independent {
		t.Fatal("shrinkable starvation fell through to independent I/O")
	}
	if dp.Shrinks < 1 || dp.Shrinks > 3 {
		t.Fatalf("shrink steps = %d, want 1..3", dp.Shrinks)
	}
	if dp.Params.MemMin >= params.MemMin || dp.Params.MsgInd >= params.MsgInd ||
		dp.Params.CollBufSize >= params.CollBufSize {
		t.Fatalf("shrunk params did not shrink: %+v", dp.Params)
	}
	if err := dp.Plan.Validate(reqs); err != nil {
		t.Fatalf("shrunk plan invalid: %v", err)
	}
	for i, d := range dp.Plan.Domains {
		if d.PagedSeverity > 0 {
			t.Fatalf("shrunk plan accepted paged domain %d (severity %v)", i, d.PagedSeverity)
		}
		if ctx.Avail[d.AggNode] < dp.Params.MemMin {
			t.Fatalf("domain %d placed on node %d below the shrunk Mem_min", i, d.AggNode)
		}
	}
	if dp.State == nil {
		t.Fatal("shrunk plan carries no recovery state")
	}
	if got := ctx.Obs.Counter("plan.degraded",
		obs.L("strategy", "memory-conscious"), obs.L("mode", "shrunk")).Value(); got != 1 {
		t.Fatalf("plan.degraded{mode=shrunk} = %d, want 1", got)
	}
}

func TestPlanWithDegradationIndependentFallback(t *testing.T) {
	params := collio.DefaultParams(128)
	params.MemMin = 512
	// 16 bytes per node is below every rung (512 -> 256 -> 128 -> 64):
	// aggregation is impossible, but the I/O must still proceed.
	ctx, reqs := degradeCtx(t, 16, params)

	dp, err := New().PlanWithDegradation(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if !dp.Independent || dp.Plan != nil {
		t.Fatalf("fully starved machine did not fall back to independent I/O: %+v", dp)
	}
	if got := ctx.Obs.Counter("plan.degraded",
		obs.L("strategy", "memory-conscious"), obs.L("mode", "independent")).Value(); got != 1 {
		t.Fatalf("plan.degraded{mode=independent} = %d, want 1", got)
	}

	// The last rung really performs the I/O: independent write + read
	// round-trips byte-exactly, verified end to end.
	fsys, err := pfs.NewFileSystem(ctx.FS)
	if err != nil {
		t.Fatal(err)
	}
	file := fsys.Open("independent-fallback")
	chk := integrity.NewChecker(integrity.Config{Seed: 21, Repair: true})
	data := make([]collio.RankData, len(reqs))
	oracle := make([]byte, 8*400)
	for r := range data {
		buf := make([]byte, reqs[r].Bytes())
		for i := range buf {
			buf[i] = byte((r*131 + i*7 + 3) % 251)
		}
		data[r] = collio.RankData{Req: reqs[r], Buf: buf}
		copy(oracle[r*400:], buf)
	}
	if err := collio.ExecIndependent(ctx, data, file, collio.Write, chk); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(oracle))
	if _, err := file.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, oracle) {
		t.Fatal("independent fallback write differs from oracle")
	}
}

// TestFailoverUnderCombinedFaultSchedule is the satellite coverage for
// core.Failover under a schedule combining NodeCrash, MemCollapse and
// MsgDrop (plus the new corruption kinds): the faulted cost loop must
// complete, count every recovery class, and the remerged plan must tile
// the request union exactly once.
func TestFailoverUnderCombinedFaultSchedule(t *testing.T) {
	params := collio.DefaultParams(128)
	ctx, reqs := degradeCtx(t, 1<<16, params)

	plan, state, err := New().PlanWithState(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(reqs); err != nil {
		t.Fatal(err)
	}
	total := plan.TotalBytes()

	crash := plan.Domains[0].AggNode
	collapse := -1
	for _, d := range plan.Domains {
		if d.AggNode != crash {
			collapse = d.AggNode
			break
		}
	}
	if collapse < 0 {
		collapse = (crash + 1) % ctx.Topo.Nodes()
	}

	var events []faults.Event
	events = append(events,
		faults.Event{Kind: faults.NodeCrash, Time: 1e-5, Node: crash, Target: -1},
		faults.Event{Kind: faults.MemCollapse, Time: 2e-5, Node: collapse, Target: -1, Severity: 0.9})
	for n := 0; n < ctx.Topo.Nodes(); n++ {
		events = append(events, faults.Event{Kind: faults.MsgDrop, Time: 3e-5, Node: n, Target: -1})
	}
	for n := 0; n < ctx.Topo.Nodes(); n++ {
		events = append(events, faults.Event{Kind: faults.MsgBitFlip, Time: 4e-5, Node: n, Target: -1})
	}
	for tgt := 0; tgt < ctx.FS.Targets; tgt++ {
		events = append(events, faults.Event{Kind: faults.TornWrite, Time: 5e-5, Node: -1, Target: tgt})
	}
	fplan := &faults.Plan{
		Spec: faults.Spec{Horizon: 1, DropTimeoutSeconds: 0.005,
			RetryBackoff: 0.001, MaxRetries: 3, DetectSeconds: 0.01},
		Events: events,
	}

	handler := &Failover{State: state, Detect: 0.01}
	res, err := collio.CostWithFaults(ctx, plan, reqs, collio.Write,
		sim.DefaultOptions(), faults.NewInjector(fplan), handler)
	if err != nil {
		t.Fatalf("combined fault schedule did not complete: %v", err)
	}
	if res.Failovers == 0 {
		t.Fatal("crash + collapse produced no failovers")
	}
	if res.DroppedMessages == 0 {
		t.Fatal("MsgDrop events consumed no messages")
	}
	if res.CorruptedMessages == 0 {
		t.Fatal("MsgBitFlip events consumed no messages")
	}
	if res.TornWrites == 0 {
		t.Fatal("TornWrite events tore no accesses")
	}
	if res.RecoverySeconds <= 0 {
		t.Fatal("recovery charged no simulated time")
	}

	// Replay the same host faults through the handler directly and check
	// the exactly-once tiling of the remerged plan.
	plan2, state2, err := New().PlanWithState(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	handler2 := &Failover{State: state2, Detect: 0.01}
	for _, hf := range []collio.HostFault{
		{Node: crash, Kind: faults.NodeCrash},
		{Node: collapse, Kind: faults.MemCollapse, Severity: 0.9},
	} {
		var affected []int
		for i, d := range plan2.Domains {
			if d.Bytes > 0 && d.AggNode == hf.Node {
				affected = append(affected, i)
			}
		}
		ras, err := handler2.OnHostFault(ctx, hf, plan2.Domains, affected)
		if err != nil {
			t.Fatal(err)
		}
		if err := collio.ApplyReassignments(plan2.Domains, ras); err != nil {
			t.Fatal(err)
		}
	}
	recovered := plan2.Compact()
	// Validate enforces the tiling invariant: sorted, disjoint, exact
	// coverage of the requests — every byte in exactly one domain.
	if err := recovered.Validate(reqs); err != nil {
		t.Fatalf("remerged plan does not tile exactly once: %v", err)
	}
	var live int64
	for _, d := range recovered.Domains {
		if state2.Down(d.AggNode) {
			t.Fatalf("remerged plan aggregates on failed node %d", d.AggNode)
		}
		live += d.Bytes
	}
	if live != total {
		t.Fatalf("remerge leaked bytes: %d != %d", live, total)
	}
}
