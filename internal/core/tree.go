// Package core implements the paper's contribution: memory-conscious
// collective I/O. The strategy (1) divides a collective operation's
// workload into disjoint aggregation groups so shuffle traffic stays
// within a group (§3.1), (2) partitions each group's file region into file
// domains with a recursive-bisection binary partition tree terminated at
// the aggregator-saturating message size Msg_ind (§3.2), (3) remerges
// domains whose candidate hosts lack aggregation memory, using the
// partition tree's leaf-takeover rules (§3.2, Figures 5a/5b), and
// (4) locates each domain's aggregator at run time on the related host
// with the most available memory, subject to the per-host aggregator
// limit N_ah and the memory floor Mem_min (§3.3).
package core

import (
	"fmt"

	"mcio/internal/pfs"
)

// TreeNode is one vertex of the binary partition tree. Leaves are live
// file domains; internal vertices "stand for the portions that no longer
// exist, but were split at some previous time" (§3.2) — their Extents and
// Bytes record the portion at the moment it was split and are not updated
// by later remerges.
type TreeNode struct {
	Extents []pfs.Extent // data extents of the portion, normalized
	Bytes   int64        // total data bytes of the portion
	Parent  *TreeNode
	Left    *TreeNode
	Right   *TreeNode
}

// IsLeaf reports whether the vertex currently owns a file domain.
func (n *TreeNode) IsLeaf() bool { return n.Left == nil && n.Right == nil }

// Sibling returns the other child of n's parent, or nil for the root.
func (n *TreeNode) Sibling() *TreeNode {
	if n.Parent == nil {
		return nil
	}
	if n.Parent.Left == n {
		return n.Parent.Right
	}
	return n.Parent.Left
}

// isLeftChild reports whether n is its parent's left child.
func (n *TreeNode) isLeftChild() bool { return n.Parent != nil && n.Parent.Left == n }

// PartitionTree is the dynamic workload-partition structure of §3.2: a
// binary tree whose leaves tile a group's requested data exactly and
// disjointly, in file order.
type PartitionTree struct {
	Root *TreeNode
}

// BuildTree recursively bisects the data in exts until every portion holds
// at most msgInd bytes. Bisection is by data volume, not file span, so
// sparse regions produce few large-span domains and dense regions many
// small ones — "different number of file domains will be generated in each
// group depending on the amount and distribution of data" (§3.2).
func BuildTree(exts []pfs.Extent, msgInd int64) (*PartitionTree, error) {
	if msgInd <= 0 {
		return nil, fmt.Errorf("core: msgInd %d must be positive", msgInd)
	}
	norm := pfs.NormalizeExtents(exts)
	if len(norm) == 0 {
		return &PartitionTree{}, nil
	}
	return &PartitionTree{Root: buildNode(norm, msgInd)}, nil
}

func buildNode(exts []pfs.Extent, msgInd int64) *TreeNode {
	n := &TreeNode{Extents: exts, Bytes: pfs.TotalBytes(exts)}
	if n.Bytes <= msgInd {
		return n
	}
	// Split at a multiple of msgInd so the tree terminates in exactly
	// ceil(Bytes/msgInd) leaves, each at most msgInd — a plain halving
	// split would overshoot to the next power of two and produce
	// needlessly small domains.
	leaves := (n.Bytes + msgInd - 1) / msgInd
	half := (leaves + 1) / 2 * msgInd
	if half >= n.Bytes {
		half = n.Bytes / 2
	}
	left := pfs.SliceData(exts, 0, half)
	right := pfs.SliceData(exts, half, n.Bytes-half)
	n.Left = buildNode(left, msgInd)
	n.Right = buildNode(right, msgInd)
	n.Left.Parent = n
	n.Right.Parent = n
	return n
}

// Leaves returns the live file domains in file order (in-order traversal).
func (t *PartitionTree) Leaves() []*TreeNode {
	var out []*TreeNode
	var walk func(n *TreeNode)
	walk = func(n *TreeNode) {
		if n == nil {
			return
		}
		if n.IsLeaf() {
			out = append(out, n)
			return
		}
		walk(n.Left)
		walk(n.Right)
	}
	walk(t.Root)
	return out
}

// Remerge removes leaf from the tree and merges its file portion into the
// neighbouring domain, returning the leaf that absorbed it. It implements
// the two takeover cases of §3.2:
//
//   - Figure 5a: the sibling B is itself a leaf. B "takes over A
//     directly": the merged region is owned by vertex B, which moves up
//     into the former parent's position.
//   - Figure 5b: the sibling B was further split. A depth-first search in
//     B's subtree finds the leaf adjacent to A — visiting left children
//     first when A is the left sibling, right children first otherwise —
//     and that leaf C takes over A's portion; A's parent is spliced out.
//
// In both cases the absorbing vertex keeps its identity (the paper's
// "assign vertex B to that leaf"), so any aggregator decision already
// attached to it survives the merge. Remerging the root (the only
// remaining domain) is impossible and returns an error. "The remerge
// procedures are limited within each aggregation group" (§3.2) holds by
// construction: each group has its own tree.
func (t *PartitionTree) Remerge(leaf *TreeNode) (*TreeNode, error) {
	if leaf == nil || !leaf.IsLeaf() {
		return nil, fmt.Errorf("core: Remerge of a non-leaf vertex")
	}
	if leaf.Parent == nil {
		return nil, fmt.Errorf("core: cannot remerge the only remaining domain")
	}
	parent := leaf.Parent
	sibling := leaf.Sibling()

	// Figure 5a: the sibling is the absorber. Figure 5b: DFS into the
	// sibling subtree toward A finds the adjacent leaf.
	absorber := sibling
	leftFirst := leaf.isLeftChild() // A left of B → B's leftmost leaf is adjacent
	for !absorber.IsLeaf() {
		if leftFirst {
			absorber = absorber.Left
		} else {
			absorber = absorber.Right
		}
	}
	absorber.Extents = pfs.NormalizeExtents(
		append(append([]pfs.Extent(nil), absorber.Extents...), leaf.Extents...))
	absorber.Bytes += leaf.Bytes

	// Splice A's parent out: the sibling subtree takes the parent's place.
	grand := parent.Parent
	sibling.Parent = grand
	if grand == nil {
		t.Root = sibling
	} else if grand.Left == parent {
		grand.Left = sibling
	} else {
		grand.Right = sibling
	}
	return absorber, nil
}
