package core

import (
	"testing"

	"mcio/internal/collio"
	"mcio/internal/machine"
	"mcio/internal/mpi"
	"mcio/internal/pfs"
)

// fig4Context builds the scenario of the paper's Figure 4: 9 processes on
// 3 compute nodes with a serial (linearized) data distribution.
func fig4Context(t *testing.T, params collio.Params, avail []int64) *collio.Context {
	t.Helper()
	topo, err := mpi.BlockTopology(9, 3)
	if err != nil {
		t.Fatal(err)
	}
	mc := machine.Testbed640()
	mc.Nodes = 3
	if avail == nil {
		avail = []int64{mc.MemPerNode, mc.MemPerNode, mc.MemPerNode}
	}
	return &collio.Context{
		Topo:    topo,
		Machine: mc,
		Avail:   avail,
		FS:      pfs.DefaultConfig(4),
		Params:  params,
	}
}

// serialRequests gives rank r the contiguous range [r*size, (r+1)*size).
func serialRequests(n int, size int64) []collio.RankRequest {
	reqs := make([]collio.RankRequest, n)
	for r := 0; r < n; r++ {
		reqs[r] = collio.RankRequest{
			Rank:    r,
			Extents: []pfs.Extent{{Offset: int64(r) * size, Length: size}},
		}
	}
	return reqs
}

func TestDivideGroupsFig4(t *testing.T) {
	// 9 ranks x 300 bytes serial. MsgGroup = 800: the tentative boundary
	// after 800 bytes falls inside node 0's third rank (bytes 600..900),
	// so the group extends to that node's data end (900) — node-aligned
	// groups, exactly Figure 4's rule.
	params := collio.DefaultParams(100)
	params.MsgGroup = 800
	params.MsgInd = 300
	ctx := fig4Context(t, params, nil)
	reqs := serialRequests(9, 300)
	groups := DivideGroups(ctx, reqs)
	if len(groups) != 3 {
		t.Fatalf("got %d groups, want 3: %+v", len(groups), groups)
	}
	for i, g := range groups {
		want := pfs.Extent{Offset: int64(i) * 900, Length: 900}
		if g.Region != want {
			t.Errorf("group %d region = %v, want %v", i, g.Region, want)
		}
		wantRanks := []int{3 * i, 3*i + 1, 3*i + 2}
		if len(g.Ranks) != 3 {
			t.Fatalf("group %d ranks = %v", i, g.Ranks)
		}
		for j, r := range wantRanks {
			if g.Ranks[j] != r {
				t.Errorf("group %d ranks = %v, want %v", i, g.Ranks, wantRanks)
			}
		}
	}
}

func TestDivideGroupsInterleavedFallsBackToOffsets(t *testing.T) {
	// Interleaved pattern: every node's data spans the whole file, so the
	// Fig 4 extension would swallow everything; the guard caps it and
	// boundaries fall back to MsgGroup-sized offset windows.
	params := collio.DefaultParams(100)
	params.MsgGroup = 900
	ctx := fig4Context(t, params, nil)
	var reqs []collio.RankRequest
	const unit = 100
	for r := 0; r < 9; r++ {
		var exts []pfs.Extent
		for s := 0; s < 3; s++ { // 3 segments, stride 9*unit
			exts = append(exts, pfs.Extent{Offset: int64(s*9+r) * unit, Length: unit})
		}
		reqs = append(reqs, collio.RankRequest{Rank: r, Extents: exts})
	}
	groups := DivideGroups(ctx, reqs)
	if len(groups) != 3 {
		t.Fatalf("got %d groups, want 3", len(groups))
	}
	for i, g := range groups {
		if g.Region.Length != 900 {
			t.Errorf("group %d region = %v, want 900-byte window", i, g.Region)
		}
		if len(g.Ranks) != 9 {
			t.Errorf("group %d should contain all ranks, got %v", i, g.Ranks)
		}
	}
}

func TestDivideGroupsEmpty(t *testing.T) {
	ctx := fig4Context(t, collio.DefaultParams(100), nil)
	if g := DivideGroups(ctx, nil); g != nil {
		t.Fatalf("groups of nothing = %v", g)
	}
	if g := DivideGroups(ctx, []collio.RankRequest{{Rank: 0}}); g != nil {
		t.Fatalf("groups of empty request = %v", g)
	}
}

func TestPlanValidAndCovers(t *testing.T) {
	params := collio.DefaultParams(100)
	params.MsgGroup = 800
	params.MsgInd = 300
	params.MemMin = 50
	ctx := fig4Context(t, params, nil)
	reqs := serialRequests(9, 300)
	plan, err := New().Plan(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(reqs); err != nil {
		t.Fatal(err)
	}
	if plan.Groups != 3 {
		t.Fatalf("groups = %d", plan.Groups)
	}
	if plan.Strategy != "memory-conscious" {
		t.Fatalf("strategy = %q", plan.Strategy)
	}
}

func TestPlanPicksMaxAvailHost(t *testing.T) {
	params := collio.DefaultParams(1000)
	params.MsgGroup = 1 << 30 // one group
	params.MsgInd = 1 << 30   // one domain
	params.MemMin = 100
	params.Nah = 4
	avail := []int64{500, 20000, 700} // node 1 has the most memory
	ctx := fig4Context(t, params, avail)
	reqs := serialRequests(9, 300)
	plan, err := New().Plan(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Domains) != 1 {
		t.Fatalf("domains = %d, want 1", len(plan.Domains))
	}
	d := plan.Domains[0]
	if d.AggNode != 1 {
		t.Fatalf("aggregator on node %d, want the max-available node 1", d.AggNode)
	}
	if d.PagedSeverity != 0 {
		t.Fatal("fitting aggregator must not page")
	}
	if d.BufferBytes != params.CollBufSize {
		t.Fatalf("buffer = %d, want requested %d", d.BufferBytes, params.CollBufSize)
	}
	// The chosen rank lives on the chosen node and is data-local.
	if ctx.Topo.NodeOf(d.Aggregator) != 1 {
		t.Fatal("aggregator rank not on its host")
	}
}

func TestPlanAdaptsBufferToAvailability(t *testing.T) {
	params := collio.DefaultParams(10000)
	params.MsgGroup = 1 << 30
	params.MsgInd = 1 << 30
	params.MemMin = 100
	avail := []int64{600, 500, 400}
	ctx := fig4Context(t, params, avail)
	plan, err := New().Plan(ctx, serialRequests(9, 300))
	if err != nil {
		t.Fatal(err)
	}
	d := plan.Domains[0]
	if d.BufferBytes != 600 {
		t.Fatalf("buffer = %d, want the host's 600 available bytes", d.BufferBytes)
	}
	if d.PagedSeverity != 0 {
		t.Fatal("adapted buffer must not page")
	}
}

func TestPlanRespectsNah(t *testing.T) {
	params := collio.DefaultParams(100)
	params.MsgGroup = 1 << 30
	params.MsgInd = 300 // 2700 bytes -> at least 8 domains after bisection
	params.MemMin = 10
	params.Nah = 2
	ctx := fig4Context(t, params, nil)
	plan, err := New().Plan(ctx, serialRequests(9, 300))
	if err != nil {
		t.Fatal(err)
	}
	perHost := map[int]int{}
	for _, d := range plan.Domains {
		perHost[d.AggNode]++
	}
	for node, n := range perHost {
		if n > params.Nah {
			t.Fatalf("node %d hosts %d aggregators, N_ah = %d", node, n, params.Nah)
		}
	}
	if len(plan.Domains) < 2 {
		t.Fatalf("expected multiple domains, got %d", len(plan.Domains))
	}
}

func TestPlanRemergesWhenMemoryShort(t *testing.T) {
	// Node 1's hosts are memory-poor: domains whose only related host is
	// node 1 must be merged into neighbours rather than placed there.
	params := collio.DefaultParams(100)
	params.MsgGroup = 1 << 30
	params.MsgInd = 300
	params.MemMin = 150
	avail := []int64{10000, 50, 10000} // node 1 below MemMin
	ctx := fig4Context(t, params, avail)
	plan, err := New().Plan(ctx, serialRequests(9, 300))
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(serialRequests(9, 300)); err != nil {
		t.Fatal(err)
	}
	for _, d := range plan.Domains {
		if d.AggNode == 1 {
			t.Fatalf("domain placed on memory-poor node 1: %+v", d)
		}
	}
}

func TestPlanFallbackAdaptsBuffer(t *testing.T) {
	// No node clears MemMin: the strategy must still produce a valid
	// plan, shrinking the buffer to what the best host has rather than
	// over-committing.
	params := collio.DefaultParams(1000)
	params.MsgGroup = 1 << 30
	params.MsgInd = 1 << 30
	params.MemMin = 1 << 40
	avail := []int64{100, 200, 300}
	ctx := fig4Context(t, params, avail)
	reqs := serialRequests(9, 300)
	plan, err := New().Plan(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(reqs); err != nil {
		t.Fatal(err)
	}
	if len(plan.Domains) != 1 {
		t.Fatalf("domains = %d", len(plan.Domains))
	}
	d := plan.Domains[0]
	if d.AggNode != 2 {
		t.Fatalf("fallback should still pick the best host, got node %d", d.AggNode)
	}
	if d.BufferBytes != 300 {
		t.Fatalf("fallback buffer = %d, want the host's 300 available bytes", d.BufferBytes)
	}
	if d.PagedSeverity != 0 {
		t.Fatalf("adapted fallback must not page, severity = %v", d.PagedSeverity)
	}
}

func TestPlanFallbackPagesOnlyWhenTrulyStarved(t *testing.T) {
	// Hosts so starved that even the bounded minimum buffer (an eighth of
	// the desired size) over-commits: the plan records the residual
	// paging severity.
	params := collio.DefaultParams(1000)
	params.MsgGroup = 1 << 30
	params.MsgInd = 1 << 30
	params.MemMin = 1 << 40
	avail := []int64{1, 2, 3}
	ctx := fig4Context(t, params, avail)
	reqs := serialRequests(9, 300)
	plan, err := New().Plan(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	d := plan.Domains[0]
	if d.BufferBytes != 125 { // CollBufSize/8
		t.Fatalf("starved fallback buffer = %d, want bounded minimum 125", d.BufferBytes)
	}
	if d.PagedSeverity <= 0 {
		t.Fatal("starved fallback must record paging severity")
	}
}

func TestPlanEmptyRequests(t *testing.T) {
	ctx := fig4Context(t, collio.DefaultParams(100), nil)
	plan, err := New().Plan(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Domains) != 0 || plan.Groups != 0 {
		t.Fatalf("plan of nothing: %+v", plan)
	}
	if err := plan.Validate(nil); err != nil {
		t.Fatal(err)
	}
}

func TestPlanRejectsInvalidRank(t *testing.T) {
	ctx := fig4Context(t, collio.DefaultParams(100), nil)
	_, err := New().Plan(ctx, []collio.RankRequest{{Rank: 99, Extents: []pfs.Extent{{Offset: 0, Length: 1}}}})
	if err == nil {
		t.Fatal("invalid rank accepted")
	}
}

func TestPlanDeterministic(t *testing.T) {
	params := collio.DefaultParams(100)
	params.MsgGroup = 700
	params.MsgInd = 250
	params.MemMin = 50
	avail := []int64{3000, 100, 2000}
	reqs := serialRequests(9, 300)
	p1, err := New().Plan(fig4Context(t, params, avail), reqs)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := New().Plan(fig4Context(t, params, avail), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(p1.Domains) != len(p2.Domains) {
		t.Fatalf("nondeterministic domain count: %d vs %d", len(p1.Domains), len(p2.Domains))
	}
	for i := range p1.Domains {
		a, b := p1.Domains[i], p2.Domains[i]
		if a.Aggregator != b.Aggregator || a.AggNode != b.AggNode ||
			a.Bytes != b.Bytes || a.BufferBytes != b.BufferBytes {
			t.Fatalf("domain %d differs: %+v vs %+v", i, a, b)
		}
	}
}
