package core

import (
	"testing"

	"mcio/internal/collio"
	"mcio/internal/pfs"
)

func TestDivideGroupsSingleRank(t *testing.T) {
	ctx := fig4Context(t, collio.DefaultParams(100), nil)
	reqs := []collio.RankRequest{
		{Rank: 4, Extents: []pfs.Extent{{Offset: 1000, Length: 5000}}},
	}
	groups := DivideGroups(ctx, reqs)
	if len(groups) == 0 {
		t.Fatal("no groups")
	}
	var total int64
	for _, g := range groups {
		total += pfs.TotalBytes(g.Extents)
		if len(g.Ranks) != 1 || g.Ranks[0] != 4 {
			t.Fatalf("group ranks = %v", g.Ranks)
		}
	}
	if total != 5000 {
		t.Fatalf("groups cover %d bytes", total)
	}
}

func TestDivideGroupsWithFileGaps(t *testing.T) {
	// Two widely separated data clusters: group regions must not bridge
	// the gap with phantom data.
	params := collio.DefaultParams(100)
	params.MsgGroup = 10000
	ctx := fig4Context(t, params, nil)
	reqs := []collio.RankRequest{
		{Rank: 0, Extents: []pfs.Extent{{Offset: 0, Length: 4000}}},
		{Rank: 8, Extents: []pfs.Extent{{Offset: 1 << 20, Length: 4000}}},
	}
	groups := DivideGroups(ctx, reqs)
	var total int64
	for _, g := range groups {
		total += pfs.TotalBytes(g.Extents)
	}
	if total != 8000 {
		t.Fatalf("groups cover %d bytes, want 8000", total)
	}
}

func TestDivideGroupsTinyMsgGroup(t *testing.T) {
	// MsgGroup far below any rank's data: every boundary snaps to node
	// data ends per Fig 4, never producing empty groups.
	params := collio.DefaultParams(10)
	params.MsgGroup = 10
	ctx := fig4Context(t, params, nil)
	reqs := serialRequests(9, 300)
	groups := DivideGroups(ctx, reqs)
	var total int64
	for i, g := range groups {
		if pfs.TotalBytes(g.Extents) == 0 {
			t.Fatalf("group %d empty", i)
		}
		total += pfs.TotalBytes(g.Extents)
	}
	if total != 2700 {
		t.Fatalf("coverage %d", total)
	}
}

func TestPlanGroupRanksMatchDomains(t *testing.T) {
	// Every domain's contributors must be members of its group.
	params := collio.DefaultParams(100)
	params.MsgGroup = 700
	params.MsgInd = 250
	params.MemMin = 10
	ctx := fig4Context(t, params, nil)
	reqs := serialRequests(9, 300)
	plan, err := New().Plan(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range plan.Domains {
		members := map[int]bool{}
		for _, r := range plan.GroupRanks[d.Group] {
			members[r] = true
		}
		for _, req := range reqs {
			if len(pfs.Intersect(req.Extents, d.Extents)) > 0 && !members[req.Rank] {
				t.Fatalf("domain %d has contributor %d outside group %d", i, req.Rank, d.Group)
			}
		}
		if !members[d.Aggregator] {
			t.Fatalf("domain %d aggregator %d outside its group", i, d.Aggregator)
		}
	}
}
