package core

import (
	"testing"
	"testing/quick"

	mrand "math/rand"

	"mcio/internal/collio"
	"mcio/internal/faults"
	"mcio/internal/machine"
	"mcio/internal/mpi"
	"mcio/internal/pfs"
	"mcio/internal/stats"
)

func leavesTile(t *PartitionTree, want []pfs.Extent) bool {
	var got []pfs.Extent
	var prevEnd int64 = -1
	for _, l := range t.Leaves() {
		if len(l.Extents) == 0 {
			return false
		}
		if l.Extents[0].Offset <= prevEnd {
			return false // out of order or overlapping
		}
		prevEnd = l.Extents[len(l.Extents)-1].End() - 1
		got = append(got, l.Extents...)
	}
	gn, wn := pfs.NormalizeExtents(got), pfs.NormalizeExtents(want)
	if len(gn) != len(wn) {
		return false
	}
	for i := range gn {
		if gn[i] != wn[i] {
			return false
		}
	}
	return true
}

func TestBuildTreeSmallIsLeaf(t *testing.T) {
	exts := []pfs.Extent{{Offset: 0, Length: 100}}
	tree, err := BuildTree(exts, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !tree.Root.IsLeaf() {
		t.Fatal("portion within msgInd must not split")
	}
	if len(tree.Leaves()) != 1 {
		t.Fatal("want a single leaf")
	}
}

func TestBuildTreeBisects(t *testing.T) {
	exts := []pfs.Extent{{Offset: 0, Length: 400}}
	tree, err := BuildTree(exts, 100)
	if err != nil {
		t.Fatal(err)
	}
	leaves := tree.Leaves()
	if len(leaves) != 4 {
		t.Fatalf("got %d leaves, want 4", len(leaves))
	}
	for _, l := range leaves {
		if l.Bytes != 100 {
			t.Fatalf("leaf bytes = %d, want 100", l.Bytes)
		}
	}
	if !leavesTile(tree, exts) {
		t.Fatal("leaves do not tile the region")
	}
}

func TestBuildTreeBisectsByData(t *testing.T) {
	// Sparse region: 100 bytes at 0, 100 bytes at 10000. Bisection is by
	// data volume, so the split lands between the clusters.
	exts := []pfs.Extent{{Offset: 0, Length: 100}, {Offset: 10000, Length: 100}}
	tree, err := BuildTree(exts, 100)
	if err != nil {
		t.Fatal(err)
	}
	leaves := tree.Leaves()
	if len(leaves) != 2 {
		t.Fatalf("got %d leaves", len(leaves))
	}
	if leaves[0].Extents[0] != (pfs.Extent{Offset: 0, Length: 100}) ||
		leaves[1].Extents[0] != (pfs.Extent{Offset: 10000, Length: 100}) {
		t.Fatalf("data-volume bisection wrong: %v / %v", leaves[0].Extents, leaves[1].Extents)
	}
}

func TestBuildTreeEmpty(t *testing.T) {
	tree, err := BuildTree(nil, 10)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Root != nil || len(tree.Leaves()) != 0 {
		t.Fatal("empty input should give an empty tree")
	}
}

func TestBuildTreeRejectsBadMsgInd(t *testing.T) {
	if _, err := BuildTree([]pfs.Extent{{Offset: 0, Length: 1}}, 0); err == nil {
		t.Fatal("msgInd 0 accepted")
	}
}

func TestRemergeCase5a(t *testing.T) {
	// 200 bytes, msgInd 100: root with two leaf children A (0..100) and
	// B (100..200). Removing A: B takes over A directly and moves into
	// the former parent's position (Fig 5a).
	tree, _ := BuildTree([]pfs.Extent{{Offset: 0, Length: 200}}, 100)
	a, b := tree.Root.Left, tree.Root.Right
	absorber, err := tree.Remerge(a)
	if err != nil {
		t.Fatal(err)
	}
	if absorber != b {
		t.Fatal("Fig 5a: sibling B must absorb A, keeping its identity")
	}
	if tree.Root != b {
		t.Fatal("Fig 5a: B must take the former parent's position")
	}
	if !tree.Root.IsLeaf() || tree.Root.Bytes != 200 {
		t.Fatalf("merged root: leaf=%v bytes=%d", tree.Root.IsLeaf(), tree.Root.Bytes)
	}
	if !leavesTile(tree, []pfs.Extent{{Offset: 0, Length: 200}}) {
		t.Fatal("leaves do not tile after remerge")
	}
}

func TestRemergeCase5bLeftSibling(t *testing.T) {
	// 400 bytes, msgInd 100: root -> (AB)(CD); merge leaf A's sibling is
	// the (CD)... build deeper: use msgInd so left child is a leaf and
	// right child is split. Data: left 100 bytes, right 200 bytes.
	tree, _ := BuildTree([]pfs.Extent{{Offset: 0, Length: 300}}, 110)
	// bytes=300 > 110: split at 150: left=150>110 splits again into 75+75;
	// right=150>110 splits into 75+75. Get a full two-level tree.
	a := tree.Root.Left.Left // leftmost leaf, its sibling is a leaf: 5a...
	_ = a
	// Take A = left child of root's... choose A whose sibling is internal:
	// A = root.Left.Left has leaf sibling. Instead pick A = root.Left after
	// manual collapse? Simpler: A = root.Left.Right (leaf, sibling leaf).
	// To force 5b we need a leaf whose sibling is internal. With uneven
	// msgInd: data 300, msgInd 160: split 150/150, both leaves. Use 3-level:
	tree2, _ := BuildTree([]pfs.Extent{{Offset: 0, Length: 1000}}, 260)
	// 1000 -> 500/500 -> each 250/250 leaves. Now remerge one 250-leaf to
	// make its sibling-internal case: first merge root.Left.Left and
	// root.Left.Right (5a) so root.Left is a 500-leaf whose sibling
	// root.Right is internal: then remerging root.Left is case 5b with A
	// the LEFT child, so DFS must find root.Right's LEFTMOST leaf.
	if _, err := tree2.Remerge(tree2.Root.Left.Left); err != nil {
		t.Fatal(err)
	}
	aLeaf := tree2.Root.Left
	if !aLeaf.IsLeaf() {
		t.Fatalf("setup failed: left child should be a merged leaf")
	}
	aBytes := aLeaf.Bytes
	rightSubtree := tree2.Root.Right
	wantAbsorber := rightSubtree.Left // leftmost leaf under B
	wantBytes := aBytes + wantAbsorber.Bytes
	absorber, err := tree2.Remerge(aLeaf)
	if err != nil {
		t.Fatal(err)
	}
	if absorber != wantAbsorber {
		t.Fatal("Fig 5b: left-sibling removal must be absorbed by B's leftmost leaf")
	}
	if absorber.Bytes != wantBytes {
		t.Fatalf("absorber bytes = %d, want %d", absorber.Bytes, wantBytes)
	}
	// A's parent (the old root) was spliced out: B is the new root.
	if tree2.Root != rightSubtree {
		t.Fatal("Fig 5b: sibling subtree must replace the spliced-out parent")
	}
	if !leavesTile(tree2, []pfs.Extent{{Offset: 0, Length: 1000}}) {
		t.Fatal("leaves do not tile after 5b remerge")
	}
}

func TestRemergeCase5bRightSibling(t *testing.T) {
	tree, _ := BuildTree([]pfs.Extent{{Offset: 0, Length: 1000}}, 260)
	// Merge root.Right's two leaves so root.Right is a 500-leaf whose
	// sibling root.Left is internal: A is the RIGHT child, DFS must find
	// B's RIGHTMOST leaf.
	if _, err := tree.Remerge(tree.Root.Right.Right); err != nil {
		t.Fatal(err)
	}
	aLeaf := tree.Root.Right
	leftSubtree := tree.Root.Left
	wantAbsorber := leftSubtree.Right // rightmost leaf under B
	absorber, err := tree.Remerge(aLeaf)
	if err != nil {
		t.Fatal(err)
	}
	if absorber != wantAbsorber {
		t.Fatal("Fig 5b: right-sibling removal must be absorbed by B's rightmost leaf")
	}
	if !leavesTile(tree, []pfs.Extent{{Offset: 0, Length: 1000}}) {
		t.Fatal("leaves do not tile after remerge")
	}
}

func TestRemergeRootFails(t *testing.T) {
	tree, _ := BuildTree([]pfs.Extent{{Offset: 0, Length: 50}}, 100)
	if _, err := tree.Remerge(tree.Root); err == nil {
		t.Fatal("remerging the only domain must fail")
	}
}

func TestRemergeNonLeafFails(t *testing.T) {
	tree, _ := BuildTree([]pfs.Extent{{Offset: 0, Length: 400}}, 100)
	if _, err := tree.Remerge(tree.Root); err == nil {
		t.Fatal("remerging an internal vertex must fail")
	}
	if _, err := tree.Remerge(nil); err == nil {
		t.Fatal("remerging nil must fail")
	}
}

// Property: after any sequence of random remerges, the remaining leaves
// still tile the original data exactly, disjointly, and in order.
func TestRemergePreservesTiling(t *testing.T) {
	r := stats.NewRNG(67)
	err := quick.Check(func(seed uint64) bool {
		rr := stats.NewRNG(seed)
		// Random sparse data.
		var exts []pfs.Extent
		n := rr.Intn(5) + 1
		for i := 0; i < n; i++ {
			exts = append(exts, pfs.Extent{Offset: rr.Int63n(2000), Length: rr.Int63n(500) + 1})
		}
		norm := pfs.NormalizeExtents(exts)
		msgInd := rr.Int63n(200) + 20
		tree, err := BuildTree(norm, msgInd)
		if err != nil {
			return false
		}
		for _, l := range tree.Leaves() {
			if l.Bytes > msgInd && len(tree.Leaves()) > 1 {
				return false // termination criterion violated at build time
			}
		}
		// Random remerges down to one leaf.
		for {
			leaves := tree.Leaves()
			if len(leaves) <= 1 {
				break
			}
			if !leavesTile(tree, norm) {
				return false
			}
			victim := leaves[rr.Intn(len(leaves))]
			if _, err := tree.Remerge(victim); err != nil {
				return false
			}
		}
		return leavesTile(tree, norm)
	}, &quick.Config{MaxCount: 150, Rand: quickRand(r)})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSiblingAndIsLeftChild(t *testing.T) {
	tree, _ := BuildTree([]pfs.Extent{{Offset: 0, Length: 200}}, 100)
	l, rgt := tree.Root.Left, tree.Root.Right
	if l.Sibling() != rgt || rgt.Sibling() != l {
		t.Fatal("Sibling")
	}
	if tree.Root.Sibling() != nil {
		t.Fatal("root has no sibling")
	}
	if !l.isLeftChild() || rgt.isLeftChild() {
		t.Fatal("isLeftChild")
	}
}

// Property (satellite of the fault-injection PR): after ANY sequence of
// failure-driven remerges — crashes and memory collapses over random
// workloads, in random order, up to all-but-one node — the surviving
// domains still tile the requested region exactly and disjointly, and
// none of them is placed on a failed host.
func TestFailureDrivenRemergesPreserveTiling(t *testing.T) {
	check := func(seed uint64) bool {
		rr := stats.NewRNG(seed)
		ranks := rr.Intn(8) + 4
		perNode := rr.Intn(3) + 1
		topo, err := mpi.BlockTopology(ranks, perNode)
		if err != nil {
			t.Log(err)
			return false
		}
		mc := machine.Testbed640()
		mc.Nodes = topo.Nodes()
		avail := make([]int64, topo.Nodes())
		for i := range avail {
			avail[i] = int64(rr.Intn(1<<16) + 256)
		}
		buf := int64(rr.Intn(4096) + 128)
		params := collio.DefaultParams(buf)
		params.MsgInd = int64(rr.Intn(2000) + 100)
		params.MsgGroup = params.MsgInd * int64(rr.Intn(4)+1)
		params.MemMin = int64(rr.Intn(256))
		ctx := &collio.Context{
			Topo: topo, Machine: mc, Avail: avail,
			FS: pfs.DefaultConfig(4), Params: params,
		}
		var reqs []collio.RankRequest
		var off int64
		for r := 0; r < ranks; r++ {
			ln := int64(rr.Intn(900) + 100)
			reqs = append(reqs, collio.RankRequest{
				Rank:    r,
				Extents: []pfs.Extent{{Offset: off, Length: ln}},
			})
			off += ln
			if rr.Float64() < 0.3 {
				off += int64(rr.Intn(500)) // leave a hole in the file
			}
		}

		plan, state, err := New().PlanWithState(ctx, reqs)
		if err != nil {
			t.Log(err)
			return false
		}
		handler := &Failover{State: state, Detect: 0.01}
		total := plan.TotalBytes()

		order := rr.Perm(topo.Nodes())
		for _, n := range order[:topo.Nodes()-1] {
			kind, sev := faults.NodeCrash, 0.0
			if rr.Float64() < 0.3 {
				kind, sev = faults.MemCollapse, rr.Float64()
			}
			var affected []int
			for i, d := range plan.Domains {
				if d.Bytes > 0 && d.AggNode == n {
					affected = append(affected, i)
				}
			}
			ras, err := handler.OnHostFault(ctx, collio.HostFault{Node: n, Kind: kind, Severity: sev},
				plan.Domains, affected)
			if err != nil {
				t.Logf("seed %d: handler: %v", seed, err)
				return false
			}
			if err := collio.ApplyReassignments(plan.Domains, ras); err != nil {
				t.Logf("seed %d: apply: %v", seed, err)
				return false
			}
			var live int64
			for i, d := range plan.Domains {
				if d.Bytes == 0 {
					continue
				}
				if state.Down(d.AggNode) {
					t.Logf("seed %d: domain %d still on failed host %d", seed, i, d.AggNode)
					return false
				}
				live += d.Bytes
			}
			if live != total {
				t.Logf("seed %d: bytes leaked in remerge: %d != %d", seed, live, total)
				return false
			}
			// Validate re-checks the full tiling invariant: sorted,
			// disjoint, exact coverage of the requests.
			if err := plan.Compact().Validate(reqs); err != nil {
				t.Logf("seed %d: %v", seed, err)
				return false
			}
		}
		return true
	}
	seedRNG := stats.NewRNG(42)
	if err := quick.Check(check, &quick.Config{
		MaxCount: 60,
		Rand:     mrand.New(mrand.NewSource(int64(seedRNG.Uint64()))),
	}); err != nil {
		t.Fatal(err)
	}
}
