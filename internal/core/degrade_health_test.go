package core

import (
	"testing"

	"mcio/internal/collio"
	"mcio/internal/health"
	"mcio/internal/obs"
)

// Satellite coverage for the degradation-rung observability: each
// availability regime must land on its rung and publish matching
// plan.degraded{mode} counters and the plan.shrink_steps gauge.
func TestPlanWithDegradationRungCounters(t *testing.T) {
	cases := []struct {
		name      string
		availEach int64
		wantRung  int // 1..3 shrunk, RungIndependent for the fallback
	}{
		// MemMin 512 halves per rung: 256, 128, 64. Each availability sits
		// below the previous rung's bar and at or above its own.
		{"rung1", 300, 1},
		{"rung2", 200, 2},
		{"rung3", 100, 3},
		{"independent", 16, RungIndependent},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			params := collio.DefaultParams(128)
			params.MemMin = 512
			ctx, reqs := degradeCtx(t, tc.availEach, params)

			dp, err := New().PlanWithDegradation(ctx, reqs)
			if err != nil {
				t.Fatal(err)
			}
			shrunk := ctx.Obs.Counter("plan.degraded",
				obs.L("strategy", "memory-conscious"), obs.L("mode", "shrunk")).Value()
			indep := ctx.Obs.Counter("plan.degraded",
				obs.L("strategy", "memory-conscious"), obs.L("mode", "independent")).Value()
			if tc.wantRung == RungIndependent {
				if !dp.Independent {
					t.Fatalf("want independent fallback, got shrinks=%d", dp.Shrinks)
				}
				if shrunk != 0 || indep != 1 {
					t.Fatalf("counters shrunk=%d indep=%d, want 0/1", shrunk, indep)
				}
				return
			}
			if dp.Independent || dp.Shrinks != tc.wantRung {
				t.Fatalf("rung = %d (independent=%v), want %d", dp.Shrinks, dp.Independent, tc.wantRung)
			}
			if shrunk != 1 || indep != 0 {
				t.Fatalf("counters shrunk=%d indep=%d, want 1/0", shrunk, indep)
			}
			if g := ctx.Obs.Gauge("plan.shrink_steps",
				obs.L("strategy", "memory-conscious")).Value(); g != float64(tc.wantRung) {
				t.Fatalf("plan.shrink_steps = %v, want %d", g, tc.wantRung)
			}
		})
	}
}

// The controller masks suspected nodes out of the availability the
// ladder sees and records rung transitions as health changes.
func TestDegradationControllerMasksSuspectsAndRecordsTransitions(t *testing.T) {
	params := collio.DefaultParams(128)
	params.MemMin = 512
	ctx, reqs := degradeCtx(t, 1<<20, params)
	// Node 0 alone cannot clear Mem_min unshrunk but clears rung 1's.
	ctx.Avail[0] = 300

	det := health.NewDetector(health.Config{Warmup: 2, SuspectScore: 1})
	dc := NewDegradationController(New(), det)

	dp, err := dc.Plan(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if dp.Independent || dp.Shrinks != 0 || dc.Rung() != 0 {
		t.Fatalf("healthy machine degraded: %+v rung=%d", dp, dc.Rung())
	}
	if n := len(dc.Transitions()); n != 1 || dc.Transitions()[0].From != -1 || dc.Transitions()[0].To != 0 {
		t.Fatalf("initial plan transitions = %+v, want one -1->0", dc.Transitions())
	}

	// Suspect every node except 0: detector warmup on a healthy signal,
	// then sustained degradation.
	for n := 1; n < ctx.Topo.Nodes(); n++ {
		for i := 0; i < 4; i++ {
			det.Observe("node", n, 1.0)
		}
		for i := 0; i < 12; i++ {
			det.Observe("node", n, 20.0)
		}
		if !det.Suspected("node", n) {
			t.Fatalf("node %d not suspected after sustained degradation", n)
		}
	}

	dp, err = dc.Plan(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	// Only node 0 is trusted; its 300 bytes force rung 1.
	if dp.Independent || dp.Shrinks != 1 || dc.Rung() != 1 {
		t.Fatalf("masked replan rung = %d (independent=%v), want 1", dp.Shrinks, dp.Independent)
	}
	for i, d := range dp.Plan.Domains {
		if d.AggNode != 0 {
			t.Fatalf("domain %d placed on suspected node %d", i, d.AggNode)
		}
	}
	tr := dc.Transitions()
	if len(tr) != 2 || tr[1].From != 0 || tr[1].To != 1 || tr[1].Suspected != ctx.Topo.Nodes()-1 {
		t.Fatalf("transitions = %+v, want second 0->1 with %d suspects", tr, ctx.Topo.Nodes()-1)
	}
	if v := ctx.Obs.Counter("plan.rung_transitions",
		obs.L("strategy", "memory-conscious"), obs.L("to", "1")).Value(); v != 1 {
		t.Fatalf("plan.rung_transitions{to=1} = %d, want 1", v)
	}

	// A replan at the same rung records nothing new.
	if _, err := dc.Plan(ctx, reqs); err != nil {
		t.Fatal(err)
	}
	if len(dc.Transitions()) != 2 {
		t.Fatalf("steady-state replan recorded a transition: %+v", dc.Transitions())
	}
}

// When the detector distrusts the whole machine there is no trusted
// subset to prefer: the controller must not mask (planning on zeroed
// availability everywhere would spuriously force independent I/O).
func TestDegradationControllerAllSuspectedNoMask(t *testing.T) {
	params := collio.DefaultParams(128)
	params.MemMin = 512
	ctx, reqs := degradeCtx(t, 1<<20, params)

	det := health.NewDetector(health.Config{Warmup: 2, SuspectScore: 1})
	for n := 0; n < ctx.Topo.Nodes(); n++ {
		for i := 0; i < 4; i++ {
			det.Observe("node", n, 1.0)
		}
		for i := 0; i < 12; i++ {
			det.Observe("node", n, 20.0)
		}
	}
	dc := NewDegradationController(New(), det)
	dp, err := dc.Plan(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if dp.Independent || dp.Shrinks != 0 {
		t.Fatalf("fully suspected machine degraded to rung %d (independent=%v)", dp.Shrinks, dp.Independent)
	}
}
