package core

import (
	"sort"

	"mcio/internal/collio"
	"mcio/internal/pfs"
)

// Group is one aggregation group: a contiguous window of the file whose
// aggregation traffic is confined to the member ranks (§3.1). Groups are
// disjoint and together cover the whole aggregate access region.
type Group struct {
	Index int
	// Region is the file window [Region.Offset, Region.End()).
	Region pfs.Extent
	// Extents is the requested data inside the window, normalized.
	Extents []pfs.Extent
	// Ranks are the members: every rank with data inside the window,
	// ascending.
	Ranks []int
}

// DivideGroups splits the aggregate I/O workload into aggregation groups
// of roughly MsgGroup data bytes each.
//
// The boundary rule follows §3.1 and Figure 4: a tentative boundary is
// placed after MsgGroup data bytes ("an offset calculation guided by the
// optimal group message size"); when the data of some compute node
// straddles the tentative boundary, the boundary is extended to the ending
// offset of the data accessed by the last process of that node, so that
// "processes from the same physical node become I/O aggregators for
// different groups" is avoided. For interleaved patterns, where every
// node's data spans nearly the whole file and such an extension would
// swallow it (the paper defers these to file-view analysis), the extension
// is capped at half a group: boundaries fall back to pure offset
// calculation, dividing the file region into MsgGroup-sized windows.
func DivideGroups(ctx *collio.Context, reqs []collio.RankRequest) []Group {
	var all []pfs.Extent
	normReq := make(map[int][]pfs.Extent, len(reqs))
	for _, r := range reqs {
		n := pfs.NormalizeExtents(r.Extents)
		if len(n) > 0 {
			normReq[r.Rank] = n
			all = append(all, n...)
		}
	}
	norm := pfs.NormalizeExtents(all)
	if len(norm) == 0 {
		return nil
	}

	// Per-node data span (lowest start, highest end over the node's ranks).
	type span struct{ lo, hi int64 }
	nodeSpan := map[int]span{}
	for rank, exts := range normReq {
		node := ctx.Topo.NodeOf(rank)
		s, ok := nodeSpan[node]
		if !ok {
			s = span{lo: exts[0].Offset, hi: exts[len(exts)-1].End()}
		} else {
			if exts[0].Offset < s.lo {
				s.lo = exts[0].Offset
			}
			if e := exts[len(exts)-1].End(); e > s.hi {
				s.hi = e
			}
		}
		nodeSpan[node] = s
	}
	spans := make([]span, 0, len(nodeSpan))
	for _, s := range nodeSpan {
		spans = append(spans, s)
	}

	// Prefix sums over the aggregate extents turn the per-group "take
	// MsgGroup data bytes" boundary calculation into a binary search, and
	// window clipping into an index walk — O(log n) per group instead of
	// re-clipping the whole remaining region, which is what lets group
	// division run at million-rank scale.
	prefix := make([]int64, len(norm)+1)
	for i, e := range norm {
		prefix[i+1] = prefix[i] + e.Length
	}
	total := prefix[len(norm)]
	// dataAt returns the data-space position of file offset x: the
	// requested bytes strictly before x.
	dataAt := func(x int64) int64 {
		i := sort.Search(len(norm), func(i int) bool { return norm[i].End() > x })
		if i == len(norm) {
			return total
		}
		d := prefix[i]
		if x > norm[i].Offset {
			d += x - norm[i].Offset
		}
		return d
	}
	// clipRange is pfs.Clip(norm, lo, hi) via binary search on the
	// already-normalized aggregate extents.
	clipRange := func(lo, hi int64) []pfs.Extent {
		i := sort.Search(len(norm), func(i int) bool { return norm[i].End() > lo })
		var out []pfs.Extent
		for ; i < len(norm) && norm[i].Offset < hi; i++ {
			o, e := norm[i].Offset, norm[i].End()
			if o < lo {
				o = lo
			}
			if e > hi {
				e = hi
			}
			out = append(out, pfs.Extent{Offset: o, Length: e - o})
		}
		return out
	}

	msgGroup := ctx.Params.MsgGroup
	end := norm[len(norm)-1].End()
	var groups []Group
	cur := norm[0].Offset
	for cur < end {
		// Tentative boundary after MsgGroup data bytes: locate the extent
		// where the cumulative request data from cur reaches msgGroup.
		b := end
		if target := dataAt(cur) + msgGroup; target < total {
			j := sort.Search(len(norm), func(i int) bool { return prefix[i+1] >= target })
			b = norm[j].Offset + (target - prefix[j])
		}
		if b < end {
			// Fig 4 extension: snap to the ending offset of the data of any
			// node straddling the boundary, unless that extension exceeds
			// half a group (interleaved pattern guard).
			var ext int64
			for _, s := range spans {
				if s.lo < b && s.hi > b && s.hi > ext {
					ext = s.hi
				}
			}
			if ext > b && ext-b <= msgGroup/2 {
				b = ext
			}
			if b > end {
				b = end
			}
		}
		groups = append(groups, Group{
			Index:   len(groups),
			Region:  pfs.Extent{Offset: cur, Length: b - cur},
			Extents: clipRange(cur, b),
		})
		cur = b
	}

	// Membership: the group windows tile [norm[0].Offset, end), so an
	// extent belongs to exactly the windows its [Offset, End) range
	// overlaps — two binary searches per extent instead of clipping every
	// rank's request list against every window.
	windowOf := func(x int64) int {
		return sort.Search(len(groups), func(i int) bool { return groups[i].Region.End() > x })
	}
	for rank, exts := range normReq {
		for _, e := range exts {
			for w, wj := windowOf(e.Offset), windowOf(e.End()-1); w <= wj; w++ {
				groups[w].Ranks = append(groups[w].Ranks, rank)
			}
		}
	}
	for i := range groups {
		r := groups[i].Ranks
		sort.Ints(r)
		dedup := r[:0]
		for j, rank := range r {
			if j == 0 || rank != dedup[len(dedup)-1] {
				dedup = append(dedup, rank)
			}
		}
		groups[i].Ranks = dedup
	}
	return groups
}
