package core

import (
	"sort"

	"mcio/internal/collio"
	"mcio/internal/pfs"
)

// Group is one aggregation group: a contiguous window of the file whose
// aggregation traffic is confined to the member ranks (§3.1). Groups are
// disjoint and together cover the whole aggregate access region.
type Group struct {
	Index int
	// Region is the file window [Region.Offset, Region.End()).
	Region pfs.Extent
	// Extents is the requested data inside the window, normalized.
	Extents []pfs.Extent
	// Ranks are the members: every rank with data inside the window,
	// ascending.
	Ranks []int
}

// DivideGroups splits the aggregate I/O workload into aggregation groups
// of roughly MsgGroup data bytes each.
//
// The boundary rule follows §3.1 and Figure 4: a tentative boundary is
// placed after MsgGroup data bytes ("an offset calculation guided by the
// optimal group message size"); when the data of some compute node
// straddles the tentative boundary, the boundary is extended to the ending
// offset of the data accessed by the last process of that node, so that
// "processes from the same physical node become I/O aggregators for
// different groups" is avoided. For interleaved patterns, where every
// node's data spans nearly the whole file and such an extension would
// swallow it (the paper defers these to file-view analysis), the extension
// is capped at half a group: boundaries fall back to pure offset
// calculation, dividing the file region into MsgGroup-sized windows.
func DivideGroups(ctx *collio.Context, reqs []collio.RankRequest) []Group {
	var all []pfs.Extent
	normReq := make(map[int][]pfs.Extent, len(reqs))
	for _, r := range reqs {
		n := pfs.NormalizeExtents(r.Extents)
		if len(n) > 0 {
			normReq[r.Rank] = n
			all = append(all, n...)
		}
	}
	norm := pfs.NormalizeExtents(all)
	if len(norm) == 0 {
		return nil
	}

	// Per-node data span (lowest start, highest end over the node's ranks).
	type span struct{ lo, hi int64 }
	nodeSpan := map[int]span{}
	for rank, exts := range normReq {
		node := ctx.Topo.NodeOf(rank)
		s, ok := nodeSpan[node]
		if !ok {
			s = span{lo: exts[0].Offset, hi: exts[len(exts)-1].End()}
		} else {
			if exts[0].Offset < s.lo {
				s.lo = exts[0].Offset
			}
			if e := exts[len(exts)-1].End(); e > s.hi {
				s.hi = e
			}
		}
		nodeSpan[node] = s
	}
	nodes := make([]int, 0, len(nodeSpan))
	for n := range nodeSpan {
		nodes = append(nodes, n)
	}
	sort.Ints(nodes)

	msgGroup := ctx.Params.MsgGroup
	end := norm[len(norm)-1].End()
	var groups []Group
	cur := norm[0].Offset
	for cur < end {
		remaining := pfs.Clip(norm, cur, end)
		if len(remaining) == 0 {
			break
		}
		slice := pfs.SliceData(remaining, 0, msgGroup)
		b := slice[len(slice)-1].End() // tentative boundary after MsgGroup data bytes
		if b < end {
			// Fig 4 extension: snap to the ending offset of the data of any
			// node straddling the boundary, unless that extension exceeds
			// half a group (interleaved pattern guard).
			var ext int64
			for _, n := range nodes {
				s := nodeSpan[n]
				if s.lo < b && s.hi > b && s.hi > ext {
					ext = s.hi
				}
			}
			if ext > b && ext-b <= msgGroup/2 {
				b = ext
			}
			if b > end {
				b = end
			}
		}
		g := Group{
			Index:   len(groups),
			Region:  pfs.Extent{Offset: cur, Length: b - cur},
			Extents: pfs.Clip(norm, cur, b),
		}
		for rank, exts := range normReq {
			if len(pfs.Clip(exts, cur, b)) > 0 {
				g.Ranks = append(g.Ranks, rank)
			}
		}
		sort.Ints(g.Ranks)
		groups = append(groups, g)
		cur = b
	}
	return groups
}
