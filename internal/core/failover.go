package core

import (
	"fmt"
	"sort"

	"mcio/internal/collio"
	"mcio/internal/faults"
	"mcio/internal/memmodel"
)

// RecoveryState is the planner state a mid-operation Failover handler
// needs: the partition tree of each group (so failed domains remerge
// along the same §3.2 rules that built them), the leaf each live domain
// occupies, and the memory tracker the original placement reserved
// against. PlanWithState returns it alongside the plan.
type RecoveryState struct {
	trees       []*PartitionTree
	domainLeaf  []*TreeNode // aligned with the plan's domain order
	leafDomain  map[*TreeNode]int
	domainGroup []int
	groupRanks  [][]int
	tracker     *memmodel.Tracker
	down        map[int]bool
}

// Down reports whether a node has been declared failed (crashed, or
// memory-collapsed past hosting aggregators).
func (st *RecoveryState) Down(node int) bool { return st.down[node] }

// DownNodes returns the failed nodes in ascending order.
func (st *RecoveryState) DownNodes() []int {
	out := make([]int, 0, len(st.down))
	for n := range st.down {
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}

// Failover is the memory-conscious strategy's mid-operation recovery
// policy (collio.FaultHandler): when an aggregator's host crashes or
// its memory collapses, each of its file domains is remerged into its
// partition-tree sibling (the same leaf-takeover / order-aware DFS
// walk of Fig. 5 that planning uses), chaining past absorbers that are
// themselves on failed hosts. A group reduced to its last leaf instead
// relocates that domain to the live related host with the most
// available memory. Detect is the failure-detection latency charged as
// stall time per recovery.
type Failover struct {
	State  *RecoveryState
	Detect float64
}

// Name implements collio.FaultHandler.
func (f *Failover) Name() string { return "memory-conscious failover" }

// OnHostFault implements collio.FaultHandler.
func (f *Failover) OnHostFault(ctx *collio.Context, hf collio.HostFault,
	live []collio.Domain, affected []int) ([]collio.Reassignment, error) {
	st := f.State
	st.down[hf.Node] = true
	if hf.Kind == faults.MemCollapse {
		// The co-resident application took the memory: the node stays up
		// but can no longer back aggregation buffers.
		st.tracker.Collapse(hf.Node, hf.Severity)
	} else {
		st.tracker.SetAvail(hf.Node, 0)
	}

	var ras []collio.Reassignment
	handled := make(map[int]bool)
	for _, di := range affected {
		if handled[di] {
			continue
		}
		cur := di
		for {
			handled[cur] = true
			g := st.domainGroup[cur]
			leaf := st.domainLeaf[cur]
			var absorber *TreeNode
			err := fmt.Errorf("core: domain %d has no partition-tree leaf", cur)
			if leaf != nil {
				absorber, err = st.trees[g].Remerge(leaf)
			}
			if err != nil {
				// Last leaf of its group: nothing to merge into, relocate.
				ra, rerr := f.relocate(ctx, cur, g, live)
				if rerr != nil {
					return nil, rerr
				}
				ras = append(ras, ra)
				break
			}
			ai, ok := st.leafDomain[absorber]
			if !ok {
				return nil, fmt.Errorf("core: absorber leaf of domain %d has no domain", cur)
			}
			st.domainLeaf[cur] = nil
			delete(st.leafDomain, leaf)
			ras = append(ras, collio.Reassignment{
				Domain:       cur,
				MergeInto:    ai,
				StallSeconds: f.Detect,
			})
			if !st.down[live[ai].AggNode] {
				break
			}
			// The absorber sits on a failed host too (an earlier victim of
			// this event, or of a previous one): chain its merged load
			// onward until a live host absorbs it.
			cur = ai
		}
	}
	return ras, nil
}

// relocate places a domain standalone on the live related host with the
// most available memory (any live host if the whole group's hosts are
// down), sizing the buffer to what that host has, as planning's
// fallback does.
func (f *Failover) relocate(ctx *collio.Context, di, g int, live []collio.Domain) (collio.Reassignment, error) {
	st := f.State
	best, bestAvail := -1, int64(-1)
	consider := func(n int) {
		if st.down[n] {
			return
		}
		if a := st.tracker.Avail(n); a > bestAvail {
			best, bestAvail = n, a
		}
	}
	seen := make(map[int]bool)
	for _, r := range st.groupRanks[g] {
		if n := ctx.Topo.NodeOf(r); !seen[n] {
			seen[n] = true
			consider(n)
		}
	}
	if best < 0 {
		for n := 0; n < ctx.Topo.Nodes(); n++ {
			consider(n)
		}
	}
	if best < 0 {
		return collio.Reassignment{}, fmt.Errorf("core: no live host to relocate domain %d onto", di)
	}
	rank := -1
	for _, r := range st.groupRanks[g] {
		if ctx.Topo.NodeOf(r) == best {
			rank = r
			break
		}
	}
	if rank < 0 {
		ranks := ctx.Topo.RanksOnNode(best)
		if len(ranks) == 0 {
			return collio.Reassignment{}, fmt.Errorf("core: relocation host %d has no ranks", best)
		}
		rank = ranks[0]
	}

	buf := ctx.Params.CollBufSize
	if live[di].Bytes > 0 && buf > live[di].Bytes {
		buf = live[di].Bytes
	}
	minBuf := ctx.Params.CollBufSize / 8
	if minBuf < 1 {
		minBuf = 1
	}
	severity := 0.0
	if avail := st.tracker.Avail(best); avail < buf {
		buf = avail
		if buf < minBuf {
			buf = minBuf
		}
		if avail < buf {
			severity = float64(buf-avail) / float64(buf)
		}
	}
	if buf < 1 {
		buf = 1
	}
	st.tracker.Reserve(best, buf)
	return collio.Reassignment{
		Domain:        di,
		MergeInto:     -1,
		Aggregator:    rank,
		AggNode:       best,
		BufferBytes:   buf,
		PagedSeverity: severity,
		StallSeconds:  f.Detect,
	}, nil
}
