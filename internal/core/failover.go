package core

import (
	"fmt"
	"sort"

	"mcio/internal/collio"
	"mcio/internal/faults"
	"mcio/internal/memmodel"
)

// RecoveryState is the planner state a mid-operation Failover handler
// needs: the partition tree of each group (so failed domains remerge
// along the same §3.2 rules that built them), the leaf each live domain
// occupies, and the memory tracker the original placement reserved
// against. PlanWithState returns it alongside the plan.
type RecoveryState struct {
	trees       []*PartitionTree
	domainLeaf  []*TreeNode // aligned with the plan's domain order
	leafDomain  map[*TreeNode]int
	domainGroup []int
	groupRanks  [][]int
	tracker     *memmodel.Tracker
	down        map[int]bool
	// leakBase snapshots a node's leak-free memory budget the first time
	// a MemLeak decays it, so successive decay fractions apply against
	// the same base instead of compounding.
	leakBase map[int]int64
}

// Down reports whether a node has been declared failed (crashed, or
// memory-collapsed past hosting aggregators).
func (st *RecoveryState) Down(node int) bool { return st.down[node] }

// DownNodes returns the failed nodes in ascending order.
func (st *RecoveryState) DownNodes() []int {
	out := make([]int, 0, len(st.down))
	for n := range st.down {
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}

// Failover is the memory-conscious strategy's mid-operation recovery
// policy (collio.FaultHandler): when an aggregator's host crashes or
// its memory collapses, each of its file domains is remerged into its
// partition-tree sibling (the same leaf-takeover / order-aware DFS
// walk of Fig. 5 that planning uses), chaining past absorbers that are
// themselves on failed hosts. A group reduced to its last leaf instead
// relocates that domain to the live related host with the most
// available memory. Detect is the failure-detection latency charged as
// stall time per recovery.
type Failover struct {
	State  *RecoveryState
	Detect float64
	// ProactiveDetect is the (much smaller) stall charged for a
	// health-driven proactive re-placement: no failure had to be
	// detected, only a suspicion threshold crossed and the move
	// coordinated. Zero defaults to Detect/8.
	ProactiveDetect float64
}

// Name implements collio.FaultHandler.
func (f *Failover) Name() string { return "memory-conscious failover" }

// OnHostFault implements collio.FaultHandler.
func (f *Failover) OnHostFault(ctx *collio.Context, hf collio.HostFault,
	live []collio.Domain, affected []int) ([]collio.Reassignment, error) {
	st := f.State
	st.down[hf.Node] = true
	stall := f.Detect
	if hf.Proactive {
		// Health-driven re-placement off a suspected host: the node is
		// alive (its memory accounting stays truthful — being down only
		// excludes it from future placement), and no detection timeout
		// was paid, only the suspicion latency.
		stall = f.ProactiveDetect
		if stall <= 0 {
			stall = f.Detect / 8
		}
		// A proactive move needs somewhere better to go. When every
		// other host is already down (crashed, collapsed, or itself
		// suspected away), decline: the node still works — slowly — and
		// staying put beats relocating onto nothing.
		liveHosts := 0
		for n := 0; n < ctx.Topo.Nodes(); n++ {
			if !st.down[n] {
				liveHosts++
			}
		}
		if liveHosts == 0 {
			delete(st.down, hf.Node)
			return nil, nil
		}
	} else if hf.Kind == faults.MemCollapse {
		// The co-resident application took the memory: the node stays up
		// but can no longer back aggregation buffers.
		st.tracker.Collapse(hf.Node, hf.Severity)
	} else {
		st.tracker.SetAvail(hf.Node, 0)
	}

	var ras []collio.Reassignment
	handled := make(map[int]bool)
	for _, di := range affected {
		if handled[di] {
			continue
		}
		cur := di
		for {
			handled[cur] = true
			g := st.domainGroup[cur]
			leaf := st.domainLeaf[cur]
			var absorber *TreeNode
			err := fmt.Errorf("core: domain %d has no partition-tree leaf", cur)
			if leaf != nil {
				absorber, err = st.trees[g].Remerge(leaf)
			}
			if err != nil {
				// Last leaf of its group: nothing to merge into, relocate.
				ra, rerr := f.relocate(ctx, cur, g, live, stall)
				if rerr != nil {
					return nil, rerr
				}
				ras = append(ras, ra)
				break
			}
			ai, ok := st.leafDomain[absorber]
			if !ok {
				return nil, fmt.Errorf("core: absorber leaf of domain %d has no domain", cur)
			}
			st.domainLeaf[cur] = nil
			delete(st.leafDomain, leaf)
			ras = append(ras, collio.Reassignment{
				Domain:       cur,
				MergeInto:    ai,
				StallSeconds: stall,
			})
			if !st.down[live[ai].AggNode] {
				break
			}
			// The absorber sits on a failed host too (an earlier victim of
			// this event, or of a previous one): chain its merged load
			// onward until a live host absorbs it.
			cur = ai
		}
	}
	return ras, nil
}

// relocate places a domain standalone on the live related host with the
// most available memory (any live host if the whole group's hosts are
// down), sizing the buffer to what that host has, as planning's
// fallback does.
func (f *Failover) relocate(ctx *collio.Context, di, g int, live []collio.Domain, stall float64) (collio.Reassignment, error) {
	st := f.State
	best, bestAvail := -1, int64(-1)
	consider := func(n int) {
		if st.down[n] {
			return
		}
		if a := st.tracker.Avail(n); a > bestAvail {
			best, bestAvail = n, a
		}
	}
	seen := make(map[int]bool)
	for _, r := range st.groupRanks[g] {
		if n := ctx.Topo.NodeOf(r); !seen[n] {
			seen[n] = true
			consider(n)
		}
	}
	if best < 0 {
		for n := 0; n < ctx.Topo.Nodes(); n++ {
			consider(n)
		}
	}
	if best < 0 {
		return collio.Reassignment{}, fmt.Errorf("core: no live host to relocate domain %d onto", di)
	}
	rank := -1
	for _, r := range st.groupRanks[g] {
		if ctx.Topo.NodeOf(r) == best {
			rank = r
			break
		}
	}
	if rank < 0 {
		ranks := ctx.Topo.RanksOnNode(best)
		if len(ranks) == 0 {
			return collio.Reassignment{}, fmt.Errorf("core: relocation host %d has no ranks", best)
		}
		rank = ranks[0]
	}

	buf := ctx.Params.CollBufSize
	if live[di].Bytes > 0 && buf > live[di].Bytes {
		buf = live[di].Bytes
	}
	minBuf := ctx.Params.CollBufSize / 8
	if minBuf < 1 {
		minBuf = 1
	}
	severity := 0.0
	if avail := st.tracker.Avail(best); avail < buf {
		buf = avail
		if buf < minBuf {
			buf = minBuf
		}
		if avail < buf {
			severity = float64(buf-avail) / float64(buf)
		}
	}
	if buf < 1 {
		buf = 1
	}
	st.tracker.Reserve(best, buf)
	return collio.Reassignment{
		Domain:        di,
		MergeInto:     -1,
		Aggregator:    rank,
		AggNode:       best,
		BufferBytes:   buf,
		PagedSeverity: severity,
		StallSeconds:  stall,
	}, nil
}

// OnMemDecay implements collio.MemDecayHandler: a MemLeak has decayed
// node's memory budget to (1-leaked) of its leak-free value. The first
// decay snapshots the leak-free budget so later fractions apply to the
// same base, the tracker's budget is rewritten (reservations stay
// booked against the shrunken budget), and the node's resulting paged
// severity is returned for the cost engine. A node already declared
// down keeps its zeroed budget.
func (f *Failover) OnMemDecay(node int, leaked float64) float64 {
	st := f.State
	if st.down[node] {
		return st.tracker.Severity(node)
	}
	if st.leakBase == nil {
		st.leakBase = make(map[int]int64)
	}
	base, ok := st.leakBase[node]
	if !ok {
		base = st.tracker.Budget(node)
		st.leakBase[node] = base
	}
	if leaked < 0 {
		leaked = 0
	}
	if leaked > 1 {
		leaked = 1
	}
	st.tracker.SetAvail(node, int64(float64(base)*(1-leaked)))
	return st.tracker.Severity(node)
}
