package core

import (
	"fmt"
	"sort"

	"mcio/internal/collio"
	"mcio/internal/memmodel"
	"mcio/internal/obs"
	"mcio/internal/pfs"
)

// Strategy is the memory-conscious collective I/O planner.
type Strategy struct{}

// New returns the memory-conscious strategy.
func New() *Strategy { return &Strategy{} }

// Name implements collio.Strategy.
func (s *Strategy) Name() string { return "memory-conscious" }

// Plan implements collio.Strategy. It runs the four components of §3 in
// order: aggregation group division, workload partition, portion
// remerging, and aggregator location.
func (s *Strategy) Plan(ctx *collio.Context, reqs []collio.RankRequest) (*collio.Plan, error) {
	plan, _, err := s.PlanWithState(ctx, reqs)
	return plan, err
}

// PlanWithState is Plan plus the recovery state a Failover handler needs
// to remerge domains mid-operation: the partition trees, the leaf each
// domain came from, and the live memory tracker.
func (s *Strategy) PlanWithState(ctx *collio.Context, reqs []collio.RankRequest) (*collio.Plan, *RecoveryState, error) {
	if err := ctx.Validate(); err != nil {
		return nil, nil, err
	}
	for _, r := range reqs {
		if r.Rank < 0 || r.Rank >= ctx.Topo.Size() {
			return nil, nil, fmt.Errorf("core: request for invalid rank %d", r.Rank)
		}
	}
	// Determine the effective Msg_ind for this machine state, as §3's
	// parameter-determination step does: a file domain must be backed by
	// an aggregation buffer, so the domain count cannot usefully exceed
	// the aggregator slots the available memory supports (at most N_ah
	// per node, one CollBufSize buffer each). Planning with a smaller
	// Msg_ind would only trigger immediate remerging or over-commit.
	effCtx := *ctx
	effCtx.Params = capacityParams(ctx, reqs)
	ctx = &effCtx

	groups := DivideGroups(ctx, reqs)
	plan := &collio.Plan{Strategy: s.Name(), Groups: len(groups)}
	state := &RecoveryState{
		leafDomain: make(map[*TreeNode]int),
		down:       make(map[int]bool),
	}
	if len(groups) == 0 {
		plan.GroupRanks = [][]int{}
		state.groupRanks = plan.GroupRanks
		return plan, state, nil
	}

	normReq := make(map[int][]pfs.Extent, len(reqs))
	for _, r := range reqs {
		if n := pfs.NormalizeExtents(r.Extents); len(n) > 0 {
			normReq[r.Rank] = n
		}
	}

	// Aggregator bookkeeping spans groups: a host's N_ah budget and its
	// available memory are machine-wide resources.
	tracker := memmodel.NewTrackerFromAvail(ctx.Avail)
	tracker.SetObserver(ctx.Obs)
	memmodel.RecordAvailability(ctx.Obs, ctx.Avail[:ctx.Topo.Nodes()])
	aggsOnHost := make(map[int]int)
	strategyLabel := obs.L("strategy", s.Name())

	for _, g := range groups {
		plan.GroupRanks = append(plan.GroupRanks, g.Ranks)
		tree, err := BuildTree(g.Extents, ctx.Params.MsgInd)
		if err != nil {
			return nil, nil, err
		}
		if ctx.Obs != nil {
			ctx.Obs.Histogram("plan.group_bytes", strategyLabel).Observe(float64(pfs.TotalBytes(g.Extents)))
			ctx.Obs.Histogram("plan.tree_leaves", strategyLabel).Observe(float64(len(tree.Leaves())))
		}
		domains, leaves, err := s.placeGroup(ctx, tree, g, normReq, tracker, aggsOnHost)
		if err != nil {
			return nil, nil, err
		}
		state.trees = append(state.trees, tree)
		for i := range domains {
			di := len(plan.Domains) + i
			state.domainLeaf = append(state.domainLeaf, leaves[i])
			state.leafDomain[leaves[i]] = di
			state.domainGroup = append(state.domainGroup, g.Index)
		}
		plan.Domains = append(plan.Domains, domains...)
	}
	state.groupRanks = plan.GroupRanks
	state.tracker = tracker
	collio.RecordPlanMetrics(ctx.Obs, plan)
	return plan, state, nil
}

// placeGroup assigns an aggregator to every leaf of the group's partition
// tree, remerging leaves whose candidate hosts cannot satisfy Mem_min
// (§3.2-3.3). It returns the group's domains in file order, along with
// the tree leaf each domain was placed on (for mid-operation failover).
func (s *Strategy) placeGroup(
	ctx *collio.Context,
	tree *PartitionTree,
	g Group,
	normReq map[int][]pfs.Extent,
	tracker *memmodel.Tracker,
	aggsOnHost map[int]int,
) ([]collio.Domain, []*TreeNode, error) {
	placed := make(map[*TreeNode]*collio.Domain)

	// contributions computes, for the current leaf set, each contributing
	// rank's bytes per leaf in one merge-walk per rank. The overlap
	// scratch is shared across remerge iterations.
	var overlaps []int64
	contributions := func(leaves []*TreeNode) [][]rankContribution {
		buckets := make([][]pfs.Extent, len(leaves))
		for i, l := range leaves {
			buckets[i] = l.Extents
		}
		out := make([][]rankContribution, len(leaves))
		if len(leaves) == 0 {
			return out
		}
		index := collio.NewExtentIndex(buckets)
		for _, r := range g.Ranks {
			exts := normReq[r]
			if len(exts) == 0 {
				continue
			}
			overlaps = index.OverlapBytesInto(overlaps, exts)
			for i, b := range overlaps {
				if b > 0 {
					out[i] = append(out[i], rankContribution{rank: r, bytes: b})
				}
			}
		}
		return out
	}

	for {
		progressed := false
		leaves := tree.Leaves()
		contribs := contributions(leaves)
		for li, leaf := range leaves {
			if _, done := placed[leaf]; done {
				continue
			}
			host, rank, ok := s.locate(ctx, contribs[li], tracker, aggsOnHost)
			if ok {
				buf := ctx.Params.CollBufSize
				if avail := tracker.Avail(host); avail < buf {
					// Adapt the buffer to what the host really has — the
					// memory-conscious move that avoids paging entirely.
					buf = avail
				}
				if buf > leaf.Bytes {
					buf = leaf.Bytes
				}
				if buf < 1 {
					buf = 1
				}
				tracker.Reserve(host, buf)
				aggsOnHost[host]++
				placed[leaf] = &collio.Domain{
					Extents:     leaf.Extents,
					Bytes:       leaf.Bytes,
					Group:       g.Index,
					Aggregator:  rank,
					AggNode:     host,
					BufferBytes: buf,
				}
				progressed = true
				continue
			}
			// No related host can satisfy Mem_min: merge this portion into
			// the neighbouring domain and keep inspecting (§3.3).
			absorber, err := tree.Remerge(leaf)
			if err == nil {
				ctx.Obs.Counter("plan.remerges", obs.L("strategy", s.Name())).Inc()
			}
			if err != nil {
				// leaf is the group's only domain: nothing to merge with.
				// Fall back to the least-bad host — a real system must
				// still perform the I/O — and record the over-commit so
				// the cost model charges the paging it causes.
				host, rank, ferr := s.fallback(ctx, contribs[li], g, tracker)
				if ferr != nil {
					return nil, nil, ferr
				}
				ctx.Obs.Counter("plan.fallback_placements", obs.L("strategy", s.Name())).Inc()
				// Memory-conscious to the last: shrink the buffer toward
				// what the least-bad host still has (more rounds, no
				// paging) before accepting any over-commit; the shrink is
				// bounded at an eighth of the desired buffer so rounds
				// cannot explode.
				buf := ctx.Params.CollBufSize
				if buf > leaf.Bytes {
					buf = leaf.Bytes
				}
				minBuf := ctx.Params.CollBufSize / 8
				if minBuf < 1 {
					minBuf = 1
				}
				avail := tracker.Avail(host)
				if avail < buf {
					buf = avail
					if buf < minBuf {
						buf = minBuf
					}
				}
				if buf < 1 {
					buf = 1
				}
				severity := 0.0
				if avail < buf {
					severity = float64(buf-avail) / float64(buf)
				}
				tracker.Reserve(host, buf)
				aggsOnHost[host]++
				placed[leaf] = &collio.Domain{
					Extents:       leaf.Extents,
					Bytes:         leaf.Bytes,
					Group:         g.Index,
					Aggregator:    rank,
					AggNode:       host,
					BufferBytes:   buf,
					PagedSeverity: severity,
				}
				progressed = true
				continue
			}
			if dom, ok := placed[absorber]; ok {
				// The absorbing domain was already placed (Fig 5b with a
				// left neighbour): its region simply grows.
				dom.Extents = absorber.Extents
				dom.Bytes = absorber.Bytes
			}
			progressed = true
			break // leaf set changed; re-enumerate
		}
		// Check completion: every current leaf placed.
		allDone := true
		for _, leaf := range tree.Leaves() {
			if _, done := placed[leaf]; !done {
				allDone = false
				break
			}
		}
		if allDone {
			break
		}
		if !progressed {
			return nil, nil, fmt.Errorf("core: placement made no progress in group %d", g.Index)
		}
	}

	leaves := tree.Leaves()
	out := make([]collio.Domain, 0, len(leaves))
	for _, leaf := range leaves {
		dom := placed[leaf]
		if dom == nil {
			return nil, nil, fmt.Errorf("core: leaf left unplaced in group %d", g.Index)
		}
		out = append(out, *dom)
	}
	return out, leaves, nil
}

// capacityParams raises Msg_ind (and, transitively, Msg_group) so the
// workload's domain count fits the aggregator slots the current
// availability can host: slots = Σ_nodes min(N_ah, avail/CollBufSize).
func capacityParams(ctx *collio.Context, reqs []collio.RankRequest) collio.Params {
	p := ctx.Params
	var total int64
	for _, r := range reqs {
		total += r.Bytes()
	}
	if total == 0 {
		return p
	}
	var slots int64
	for node := 0; node < ctx.Topo.Nodes(); node++ {
		perNode := ctx.Avail[node] / p.CollBufSize
		if perNode > int64(p.Nah) {
			perNode = int64(p.Nah)
		}
		slots += perNode
	}
	if slots < 1 {
		slots = 1
	}
	if floor := total / slots; p.MsgInd < floor {
		p.MsgInd = floor
	}
	if p.MsgGroup < p.MsgInd {
		p.MsgGroup = p.MsgInd
	}
	return p
}

// rankContribution records how many bytes of one rank's request fall in a
// file domain.
type rankContribution struct {
	rank  int
	bytes int64
}

// locate implements §3.3's aggregator location for one file domain: among
// the hosts of processes whose requests fall in the domain, with fewer
// than N_ah aggregators already, pick the one with maximum available
// memory; succeed only if that maximum clears Mem_min. The chosen
// aggregator process is the related rank on that host with the most data
// in the domain (data-local placement), lowest rank on ties.
func (s *Strategy) locate(
	ctx *collio.Context,
	contribs []rankContribution,
	tracker *memmodel.Tracker,
	aggsOnHost map[int]int,
) (host, rank int, ok bool) {
	type hostInfo struct {
		bestRank  int
		bestBytes int64
	}
	related := make(map[int]*hostInfo)
	for _, c := range contribs {
		n := ctx.Topo.NodeOf(c.rank)
		hi := related[n]
		if hi == nil {
			related[n] = &hostInfo{bestRank: c.rank, bestBytes: c.bytes}
		} else if c.bytes > hi.bestBytes {
			hi.bestRank, hi.bestBytes = c.rank, c.bytes
		}
	}
	hosts := make([]int, 0, len(related))
	for n := range related {
		if aggsOnHost[n] < ctx.Params.Nah {
			hosts = append(hosts, n)
		}
	}
	sort.Ints(hosts)
	// Pick the host maximizing available memory discounted by the
	// aggregators it already carries: §3.3's max-Mem_avl selection,
	// tempered by the paper's stated goal of a "balanced memory
	// consumption design" — piling every domain onto the single richest
	// node would trade the memory win for a network hotspot.
	best := -1
	var bestScore float64 = -1
	for _, n := range hosts {
		if tracker.Avail(n) < ctx.Params.MemMin {
			continue
		}
		score := float64(tracker.Avail(n)) / float64(1+aggsOnHost[n])
		if score > bestScore {
			best, bestScore = n, score
		}
	}
	if best < 0 {
		return 0, 0, false
	}
	return best, related[best].bestRank, true
}

// fallback picks the related host with the most available memory ignoring
// the N_ah and Mem_min constraints — used only when a whole group cannot
// satisfy the memory requirement and the I/O must proceed anyway.
func (s *Strategy) fallback(
	ctx *collio.Context,
	contribs []rankContribution,
	g Group,
	tracker *memmodel.Tracker,
) (host, rank int, err error) {
	best := -1
	bestRank := -1
	var bestAvail int64 = -1
	var bestBytes int64 = -1
	for _, c := range contribs {
		n := ctx.Topo.NodeOf(c.rank)
		a := tracker.Avail(n)
		if a > bestAvail || (a == bestAvail && c.bytes > bestBytes) {
			best, bestAvail, bestRank, bestBytes = n, a, c.rank, c.bytes
		}
	}
	if best < 0 {
		return 0, 0, fmt.Errorf("core: domain in group %d has no related processes", g.Index)
	}
	return best, bestRank, nil
}
