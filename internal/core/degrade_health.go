package core

import (
	"fmt"
	"strconv"

	"mcio/internal/collio"
	"mcio/internal/health"
	"mcio/internal/obs"
	"mcio/internal/obs/timeline"
)

// RungIndependent is the rung number the controller reports for the
// aggregation-free fallback; rung 0 is the unshrunk plan and rungs
// 1..maxShrinks the halving ladder.
const RungIndependent = maxShrinks + 1

// RungTransition records one controller rung change: the Seq-th
// replan moved from rung From (-1 on the first plan) to rung To while
// Suspected nodes were masked out of the availability the ladder saw.
type RungTransition struct {
	Seq       int
	From, To  int
	Suspected int
}

// DegradationController upgrades PlanWithDegradation from the static
// starvation probe to live health state: nodes the suspicion detector
// currently distrusts are masked out of the availability the ladder
// sees — a host that answers at a tenth of its baseline is no better
// a place for an aggregation buffer than a starved one — so the
// ladder's rung choice tracks the machine's actual condition, not
// just its nominal memory. Every rung change across replans is
// recorded as a transition (and a plan.rung_transitions{strategy,to}
// counter) for the run ledger.
type DegradationController struct {
	Strategy *Strategy
	Detector *health.Detector

	planned     bool
	rung        int
	transitions []RungTransition
}

// NewDegradationController builds a controller over s driven by det
// (nil det degrades to the static ladder with transition recording).
func NewDegradationController(s *Strategy, det *health.Detector) *DegradationController {
	return &DegradationController{Strategy: s, Detector: det}
}

// Plan runs the health-masked degradation ladder once. Suspected
// nodes are masked only while at least one node stays trusted — when
// the detector distrusts the whole machine there is no better subset
// to prefer, and planning on zero availability everywhere would turn
// a gray-slow machine into a spuriously independent run.
func (dc *DegradationController) Plan(ctx *collio.Context, reqs []collio.RankRequest) (*DegradedPlan, error) {
	eff := *ctx
	masked := 0
	if dc.Detector != nil {
		if sus := dc.Detector.SuspectedIDs("node"); len(sus) > 0 && len(sus) < ctx.Topo.Nodes() {
			avail := append([]int64(nil), ctx.Avail...)
			for _, n := range sus {
				if n < len(avail) {
					avail[n] = 0
					masked++
				}
			}
			eff.Avail = avail
		}
	}
	dp, err := dc.Strategy.PlanWithDegradation(&eff, reqs)
	if err != nil {
		return nil, err
	}
	rung := dp.Shrinks
	if dp.Independent {
		rung = RungIndependent
	}
	if !dc.planned || rung != dc.rung {
		from := dc.rung
		if !dc.planned {
			from = -1
		}
		dc.transitions = append(dc.transitions, RungTransition{
			Seq: len(dc.transitions), From: from, To: rung, Suspected: masked,
		})
		// Planning has no simulated clock, so the journal entry is
		// sequence-ordered only.
		ctx.Timeline.J().RecordSeq(timeline.EvRung, "run",
			fmt.Sprintf("rung %d -> %d (%d nodes suspected)", from, rung, masked))
		if ctx.Obs != nil {
			ctx.Obs.Counter("plan.rung_transitions",
				obs.L("strategy", dc.Strategy.Name()),
				obs.L("to", strconv.Itoa(rung))).Inc()
		}
	}
	dc.planned, dc.rung = true, rung
	return dp, nil
}

// Rung returns the rung of the most recent Plan (0 before any).
func (dc *DegradationController) Rung() int {
	if dc == nil {
		return 0
	}
	return dc.rung
}

// Transitions returns every rung change recorded so far, in order.
func (dc *DegradationController) Transitions() []RungTransition {
	if dc == nil {
		return nil
	}
	return dc.transitions
}
