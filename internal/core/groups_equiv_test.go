package core

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"mcio/internal/collio"
	"mcio/internal/machine"
	"mcio/internal/mpi"
	"mcio/internal/pfs"
)

// divideGroupsNaive is the pre-optimization reference: boundary search by
// re-clipping the whole remaining region and membership by clipping every
// rank's request list against every window. Kept as the oracle for the
// prefix-sum/window-assignment implementation in DivideGroups.
func divideGroupsNaive(ctx *collio.Context, reqs []collio.RankRequest) []Group {
	var all []pfs.Extent
	normReq := make(map[int][]pfs.Extent, len(reqs))
	for _, r := range reqs {
		n := pfs.NormalizeExtents(r.Extents)
		if len(n) > 0 {
			normReq[r.Rank] = n
			all = append(all, n...)
		}
	}
	norm := pfs.NormalizeExtents(all)
	if len(norm) == 0 {
		return nil
	}
	type span struct{ lo, hi int64 }
	nodeSpan := map[int]span{}
	for rank, exts := range normReq {
		node := ctx.Topo.NodeOf(rank)
		s, ok := nodeSpan[node]
		if !ok {
			s = span{lo: exts[0].Offset, hi: exts[len(exts)-1].End()}
		} else {
			if exts[0].Offset < s.lo {
				s.lo = exts[0].Offset
			}
			if e := exts[len(exts)-1].End(); e > s.hi {
				s.hi = e
			}
		}
		nodeSpan[node] = s
	}
	msgGroup := ctx.Params.MsgGroup
	end := norm[len(norm)-1].End()
	var groups []Group
	cur := norm[0].Offset
	for cur < end {
		remaining := pfs.Clip(norm, cur, end)
		if len(remaining) == 0 {
			break
		}
		slice := pfs.SliceData(remaining, 0, msgGroup)
		b := slice[len(slice)-1].End()
		if b < end {
			var ext int64
			for _, s := range nodeSpan {
				if s.lo < b && s.hi > b && s.hi > ext {
					ext = s.hi
				}
			}
			if ext > b && ext-b <= msgGroup/2 {
				b = ext
			}
			if b > end {
				b = end
			}
		}
		g := Group{
			Index:   len(groups),
			Region:  pfs.Extent{Offset: cur, Length: b - cur},
			Extents: pfs.Clip(norm, cur, b),
		}
		for rank, exts := range normReq {
			if len(pfs.Clip(exts, cur, b)) > 0 {
				g.Ranks = append(g.Ranks, rank)
			}
		}
		sort.Ints(g.Ranks)
		groups = append(groups, g)
		cur = b
	}
	return groups
}

// TestDivideGroupsMatchesNaive drives the optimized group division
// against the reference on randomized sparse, dense, serial and
// interleaved request mixes.
func TestDivideGroupsMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		ranks := 2 + rng.Intn(24)
		perNode := 1 + rng.Intn(4)
		topo, err := mpi.BlockTopology(ranks, (ranks+perNode-1)/perNode)
		if err != nil {
			t.Fatal(err)
		}
		mc := machine.Testbed640()
		mc.Nodes = topo.Nodes()
		avail := make([]int64, mc.Nodes)
		for i := range avail {
			avail[i] = mc.MemPerNode
		}
		params := collio.DefaultParams(1 << 10)
		params.MsgGroup = int64(64 + rng.Intn(4096))
		ctx := &collio.Context{
			Topo:    topo,
			Machine: mc,
			Avail:   avail,
			FS:      pfs.DefaultConfig(4),
			Params:  params,
		}
		reqs := make([]collio.RankRequest, ranks)
		for r := 0; r < ranks; r++ {
			reqs[r].Rank = r
			for i, n := 0, rng.Intn(5); i < n; i++ {
				reqs[r].Extents = append(reqs[r].Extents, pfs.Extent{
					Offset: int64(rng.Intn(16 << 10)),
					Length: int64(rng.Intn(2 << 10)),
				})
			}
		}
		got := DivideGroups(ctx, reqs)
		want := divideGroupsNaive(ctx, reqs)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d (msgGroup=%d): groups diverge\ngot:  %+v\nwant: %+v",
				trial, params.MsgGroup, got, want)
		}
	}
}
