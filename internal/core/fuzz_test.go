package core

import (
	"reflect"
	"testing"

	"mcio/internal/collio"
	"mcio/internal/faults"
	"mcio/internal/machine"
	"mcio/internal/mpi"
	"mcio/internal/pfs"
)

// FuzzRemergeTiling drives the memory-conscious Failover handler with
// arbitrary crash/collapse sequences and checks the recovery invariant
// both cost engines rely on: after every event, the live domains'
// extents still tile the original file region exactly — same union,
// same total bytes, no overlap — and no surviving domain sits on a
// failed host. Remerge chains, last-leaf relocations and repeated
// events against the same group must all preserve it.
func FuzzRemergeTiling(f *testing.F) {
	f.Add(uint8(9), uint8(3), uint16(300), []byte{0, 1, 2})
	f.Add(uint8(12), uint8(4), uint16(700), []byte{2, 2, 5, 1, 0})
	f.Add(uint8(6), uint8(2), uint16(128), []byte{1, 3, 0, 2, 1, 3})
	f.Add(uint8(16), uint8(4), uint16(1024), []byte{7, 6, 5, 4, 3, 2, 1, 0})
	f.Fuzz(func(t *testing.T, ranksB, perNodeB uint8, size uint16, crashes []byte) {
		ranks := int(ranksB)%24 + 2
		perNode := int(perNodeB)%4 + 1
		topo, err := mpi.BlockTopology(ranks, (ranks+perNode-1)/perNode)
		if err != nil {
			t.Skip()
		}
		mc := machine.Testbed640()
		mc.Nodes = topo.Nodes()
		avail := make([]int64, mc.Nodes)
		for i := range avail {
			// Uneven endowments steer planning toward multi-leaf trees.
			avail[i] = int64(size)/int64(i%3+1) + 1
		}
		ctx := &collio.Context{
			Topo:    topo,
			Machine: mc,
			Avail:   avail,
			FS:      pfs.DefaultConfig(4),
			Params:  collio.DefaultParams(int64(size) + 1),
		}
		chunk := int64(size)%2048 + 1
		reqs := make([]collio.RankRequest, ranks)
		for r := 0; r < ranks; r++ {
			reqs[r] = collio.RankRequest{
				Rank:    r,
				Extents: []pfs.Extent{{Offset: int64(r) * chunk, Length: chunk}},
			}
		}
		plan, state, err := New().PlanWithState(ctx, reqs)
		if err != nil {
			t.Skip()
		}
		handler := &Failover{State: state, Detect: 0.1}

		live := append([]collio.Domain(nil), plan.Domains...)
		var origAll []pfs.Extent
		origBytes := int64(0)
		for _, d := range live {
			origAll = append(origAll, d.Extents...)
			origBytes += d.Bytes
		}
		origUnion := pfs.NormalizeExtents(origAll)

		for evi, b := range crashes {
			node := int(b) % mc.Nodes
			if state.Down(node) {
				continue
			}
			kind := faults.NodeCrash
			severity := 0.0
			if b >= 128 {
				kind = faults.MemCollapse
				severity = 0.9
			}
			var affected []int
			for di, d := range live {
				if d.Bytes > 0 && d.AggNode == node {
					affected = append(affected, di)
				}
			}
			ras, err := handler.OnHostFault(ctx, collio.HostFault{
				Node: node, Kind: kind, Time: float64(evi), Severity: severity,
			}, live, affected)
			if err != nil {
				// Legitimate only when the cluster has no live host left to
				// relocate onto.
				liveHosts := 0
				for n := 0; n < mc.Nodes; n++ {
					if !state.Down(n) {
						liveHosts++
					}
				}
				if liveHosts > 0 {
					t.Fatalf("event %d (node %d, %s): handler failed with %d live hosts: %v",
						evi, node, kind, liveHosts, err)
				}
				return
			}
			if err := collio.ApplyReassignments(live, ras); err != nil {
				t.Fatalf("event %d: apply: %v", evi, err)
			}

			// Tiling invariant: same union, same total, per-domain extent
			// sums intact (equal measure of union and sum proves disjointness
			// for integer extents), and every survivor on a live host.
			var all []pfs.Extent
			sum := int64(0)
			for di, d := range live {
				if d.Bytes == 0 {
					continue
				}
				if got := pfs.TotalBytes(d.Extents); got != d.Bytes {
					t.Fatalf("event %d: domain %d extents sum %d != Bytes %d", evi, di, got, d.Bytes)
				}
				if state.Down(d.AggNode) {
					t.Fatalf("event %d: domain %d still placed on failed node %d", evi, di, d.AggNode)
				}
				all = append(all, d.Extents...)
				sum += d.Bytes
			}
			union := pfs.NormalizeExtents(all)
			if !reflect.DeepEqual(union, origUnion) {
				t.Fatalf("event %d: live domains no longer tile the original region\n got %v\nwant %v",
					evi, union, origUnion)
			}
			if sum != origBytes {
				t.Fatalf("event %d: total bytes %d != original %d (overlap or loss)", evi, sum, origBytes)
			}
		}
	})
}
