// Package twophase implements the baseline the paper compares against:
// ROMIO's classic two-phase collective I/O. The aggregate access range is
// split evenly by file offset into one file domain per aggregator, with
// exactly one aggregator per compute node (ROMIO's default cb_nodes
// behaviour), a fixed collective buffer (cb_buffer_size), and a single
// global aggregation group — the assignment is "independent of the
// distribution of the data over the process" (§4) and of per-node memory
// availability, which is precisely the weakness the memory-conscious
// strategy targets.
package twophase

import (
	"fmt"

	"mcio/internal/collio"
	"mcio/internal/pfs"
)

// Strategy is the classic two-phase planner.
type Strategy struct {
	// AggregatorsPerNode overrides ROMIO's one-aggregator-per-node
	// default when > 1 (ROMIO hint cb_config_list); ablation experiments
	// use it.
	AggregatorsPerNode int
}

// New returns the default two-phase strategy (one aggregator per node).
func New() *Strategy { return &Strategy{AggregatorsPerNode: 1} }

// Name implements collio.Strategy.
func (s *Strategy) Name() string { return "two-phase" }

// Plan implements collio.Strategy.
func (s *Strategy) Plan(ctx *collio.Context, reqs []collio.RankRequest) (*collio.Plan, error) {
	if err := ctx.Validate(); err != nil {
		return nil, err
	}
	perNode := s.AggregatorsPerNode
	if perNode <= 0 {
		perNode = 1
	}

	var all []pfs.Extent
	ranksWithData := make([]int, 0, len(reqs))
	for _, r := range reqs {
		if r.Rank < 0 || r.Rank >= ctx.Topo.Size() {
			return nil, fmt.Errorf("twophase: request for invalid rank %d", r.Rank)
		}
		if len(r.Extents) > 0 {
			all = append(all, r.Extents...)
			ranksWithData = append(ranksWithData, r.Rank)
		}
	}
	norm := pfs.NormalizeExtents(all)
	plan := &collio.Plan{Strategy: s.Name(), Groups: 1, GroupRanks: [][]int{ranksWithData}}
	if len(norm) == 0 {
		collio.RecordPlanMetrics(ctx.Obs, plan)
		return plan, nil
	}

	// ROMIO default: the first rank on each node is an I/O aggregator
	// (with AggregatorsPerNode > 1, the first k ranks).
	var aggs []int
	for node := 0; node < ctx.Topo.Nodes(); node++ {
		ranks := ctx.Topo.RanksOnNode(node)
		for i := 0; i < perNode && i < len(ranks); i++ {
			aggs = append(aggs, ranks[i])
		}
	}
	if len(aggs) == 0 {
		return nil, fmt.Errorf("twophase: topology has no ranks")
	}

	// Divide the aggregate access range evenly by offset — oblivious to
	// where the data actually is, like ADIOI_Calc_file_domains.
	span := pfs.Span(norm)
	nAggs := int64(len(aggs))
	domSize := (span.Length + nAggs - 1) / nAggs
	for i := int64(0); i < nAggs; i++ {
		lo := span.Offset + i*domSize
		hi := lo + domSize
		if hi > span.End() {
			hi = span.End()
		}
		exts := pfs.Clip(norm, lo, hi)
		if len(exts) == 0 {
			continue // aggregator with an empty domain sits the call out
		}
		agg := aggs[i]
		node := ctx.Topo.NodeOf(agg)
		buf := ctx.Params.CollBufSize
		// The baseline allocates its fixed buffer regardless of what the
		// host actually has free; the shortfall pages.
		var severity float64
		if avail := ctx.Avail[node]; avail < buf {
			severity = float64(buf-avail) / float64(buf)
		}
		plan.Domains = append(plan.Domains, collio.Domain{
			Extents:       exts,
			Bytes:         pfs.TotalBytes(exts),
			Group:         0,
			Aggregator:    agg,
			AggNode:       node,
			BufferBytes:   buf,
			PagedSeverity: severity,
		})
	}
	collio.RecordPlanMetrics(ctx.Obs, plan)
	return plan, nil
}
