package twophase

import (
	"mcio/internal/collio"
	"mcio/internal/faults"
)

// StallRetry is the baseline's recovery policy (collio.FaultHandler):
// no failover. A crashed aggregator host is waited out — the classic
// checkpoint-restart reflex — and the same placement retries after
// StallSeconds. A memory collapse is not even noticed by the planner;
// the fixed collective buffer stays put and the shortfall pages, so
// the only reaction is a higher PagedSeverity on the affected domains.
// This is the foil the memory-conscious Failover is measured against.
type StallRetry struct {
	StallSeconds float64
	avail        []int64
}

// NewStallRetry builds the handler over a copy of the per-node
// availability the plan was built from, so collapses compound across
// events without mutating the caller's vector.
func NewStallRetry(avail []int64, stallSeconds float64) *StallRetry {
	return &StallRetry{
		StallSeconds: stallSeconds,
		avail:        append([]int64(nil), avail...),
	}
}

// Name implements collio.FaultHandler.
func (s *StallRetry) Name() string { return "two-phase stall-retry" }

// OnHostFault implements collio.FaultHandler.
func (s *StallRetry) OnHostFault(ctx *collio.Context, hf collio.HostFault,
	live []collio.Domain, affected []int) ([]collio.Reassignment, error) {
	var ras []collio.Reassignment
	switch hf.Kind {
	case faults.MemCollapse:
		if hf.Node >= 0 && hf.Node < len(s.avail) {
			frac := hf.Severity
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			s.avail[hf.Node] = int64(float64(s.avail[hf.Node]) * (1 - frac))
		}
		for _, di := range affected {
			d := live[di]
			sev := d.PagedSeverity
			if d.BufferBytes > 0 && hf.Node < len(s.avail) {
				if avail := s.avail[hf.Node]; avail < d.BufferBytes {
					if ns := float64(d.BufferBytes-avail) / float64(d.BufferBytes); ns > sev {
						sev = ns
					}
				}
			}
			ras = append(ras, collio.Reassignment{
				Domain:        di,
				MergeInto:     -1,
				Aggregator:    d.Aggregator,
				AggNode:       d.AggNode,
				BufferBytes:   d.BufferBytes,
				PagedSeverity: sev,
			})
		}
	default: // NodeCrash: stall, then retry the identical placement.
		for _, di := range affected {
			d := live[di]
			ras = append(ras, collio.Reassignment{
				Domain:        di,
				MergeInto:     -1,
				Aggregator:    d.Aggregator,
				AggNode:       d.AggNode,
				BufferBytes:   d.BufferBytes,
				PagedSeverity: d.PagedSeverity,
				StallSeconds:  s.StallSeconds,
			})
		}
	}
	return ras, nil
}
