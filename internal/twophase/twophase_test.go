package twophase

import (
	"testing"

	"mcio/internal/collio"
	"mcio/internal/machine"
	"mcio/internal/mpi"
	"mcio/internal/pfs"
)

func testContext(t *testing.T, ranks, perNode int, avail []int64) *collio.Context {
	t.Helper()
	topo, err := mpi.BlockTopology(ranks, perNode)
	if err != nil {
		t.Fatal(err)
	}
	mc := machine.Testbed640()
	mc.Nodes = topo.Nodes()
	if avail == nil {
		avail = make([]int64, topo.Nodes())
		for i := range avail {
			avail[i] = mc.MemPerNode
		}
	}
	return &collio.Context{
		Topo:    topo,
		Machine: mc,
		Avail:   avail,
		FS:      pfs.DefaultConfig(4),
		Params:  collio.DefaultParams(1 << 20),
	}
}

func serialRequests(n int, size int64) []collio.RankRequest {
	reqs := make([]collio.RankRequest, n)
	for r := 0; r < n; r++ {
		reqs[r] = collio.RankRequest{
			Rank:    r,
			Extents: []pfs.Extent{{Offset: int64(r) * size, Length: size}},
		}
	}
	return reqs
}

func TestPlanOneAggregatorPerNode(t *testing.T) {
	ctx := testContext(t, 12, 4, nil) // 3 nodes
	reqs := serialRequests(12, 1000)
	plan, err := New().Plan(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(reqs); err != nil {
		t.Fatal(err)
	}
	if plan.Groups != 1 {
		t.Fatalf("two-phase must use a single global group, got %d", plan.Groups)
	}
	aggs := plan.Aggregators()
	if len(aggs) != 3 {
		t.Fatalf("aggregators = %v, want one per node", aggs)
	}
	// ROMIO default: the first rank of each node.
	want := []int{0, 4, 8}
	for i := range want {
		if aggs[i] != want[i] {
			t.Fatalf("aggregators = %v, want %v", aggs, want)
		}
	}
}

func TestPlanEvenOffsetSplit(t *testing.T) {
	ctx := testContext(t, 12, 4, nil)
	reqs := serialRequests(12, 1000) // 12000 bytes over 3 domains
	plan, err := New().Plan(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Domains) != 3 {
		t.Fatalf("domains = %d", len(plan.Domains))
	}
	for i, d := range plan.Domains {
		if d.Bytes != 4000 {
			t.Errorf("domain %d bytes = %d, want even 4000", i, d.Bytes)
		}
		if d.BufferBytes != ctx.Params.CollBufSize {
			t.Errorf("domain %d buffer = %d, want fixed cb_buffer_size", i, d.BufferBytes)
		}
	}
}

func TestPlanObliviousToMemory(t *testing.T) {
	// A memory-starved node still gets its aggregator — with the paging
	// severity recorded — because the baseline ignores availability.
	avail := []int64{1 << 30, 0, 1 << 30}
	ctx := testContext(t, 12, 4, avail)
	reqs := serialRequests(12, 1000)
	plan, err := New().Plan(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	var starved *collio.Domain
	for i := range plan.Domains {
		if plan.Domains[i].AggNode == 1 {
			starved = &plan.Domains[i]
		}
	}
	if starved == nil {
		t.Fatal("baseline should still aggregate on the starved node")
	}
	if starved.PagedSeverity != 1 {
		t.Fatalf("starved aggregator severity = %v, want 1", starved.PagedSeverity)
	}
}

func TestPlanPartialSeverity(t *testing.T) {
	buf := ctxBuf()
	avail := []int64{buf / 2, buf * 2, buf * 2}
	ctx := testContext(t, 12, 4, avail)
	ctx.Params = collio.DefaultParams(buf)
	plan, err := New().Plan(ctx, serialRequests(12, 1000))
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range plan.Domains {
		if d.AggNode == 0 && d.PagedSeverity != 0.5 {
			t.Fatalf("half-fitting buffer severity = %v, want 0.5", d.PagedSeverity)
		}
		if d.AggNode != 0 && d.PagedSeverity != 0 {
			t.Fatalf("fitting buffer severity = %v, want 0", d.PagedSeverity)
		}
	}
}

func ctxBuf() int64 { return 1 << 20 }

func TestPlanEmptyRequests(t *testing.T) {
	ctx := testContext(t, 4, 2, nil)
	plan, err := New().Plan(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Domains) != 0 {
		t.Fatalf("plan of nothing has %d domains", len(plan.Domains))
	}
	if err := plan.Validate(nil); err != nil {
		t.Fatal(err)
	}
}

func TestPlanSkipsEmptyDomains(t *testing.T) {
	// All data in the first sixth of the range: later aggregators get
	// empty domains, which must be dropped, and the plan still covers
	// everything.
	ctx := testContext(t, 12, 4, nil)
	reqs := []collio.RankRequest{
		{Rank: 0, Extents: []pfs.Extent{{Offset: 0, Length: 100}}},
		{Rank: 1, Extents: []pfs.Extent{{Offset: 11900, Length: 100}}},
	}
	plan, err := New().Plan(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(reqs); err != nil {
		t.Fatal(err)
	}
	// Middle third of the offset range has no data: only 2 domains.
	if len(plan.Domains) != 2 {
		t.Fatalf("domains = %d, want 2 (empty middle dropped)", len(plan.Domains))
	}
}

func TestPlanMultipleAggregatorsPerNode(t *testing.T) {
	s := &Strategy{AggregatorsPerNode: 2}
	ctx := testContext(t, 12, 4, nil)
	reqs := serialRequests(12, 1000)
	plan, err := s.Plan(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(plan.Aggregators()); got != 6 {
		t.Fatalf("aggregators = %d, want 6", got)
	}
}

func TestPlanRejectsInvalidRank(t *testing.T) {
	ctx := testContext(t, 4, 2, nil)
	_, err := New().Plan(ctx, []collio.RankRequest{{Rank: -1, Extents: []pfs.Extent{{Offset: 0, Length: 1}}}})
	if err == nil {
		t.Fatal("invalid rank accepted")
	}
}

func TestName(t *testing.T) {
	if New().Name() != "two-phase" {
		t.Fatal("name")
	}
}
