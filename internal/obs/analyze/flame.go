package analyze

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// WriteFlame writes the analysis in collapsed-stack format — one
// "frame;frame;frame value" line per distinct stack, the input of
// flamegraph.pl, inferno, speedscope and friends. Values are integer
// microseconds of simulated critical-path time, so the flamegraph's x
// axis is the run's wall clock and each process's per-phase totals sum
// (within one microsecond per line of rounding) to its simulated wall
// time.
//
// Stacks have three frames: process (strategy run), round kind, phase —
//
//	two-phase;data;shuffle 184223
//	two-phase;data;paging 97110
//	two-phase;metadata;metadata 312
//	memory-conscious;recovery;recovery 1044
//
// Lines are emitted in deterministic order (process registration order,
// then kind, then phase) and zero-valued stacks are omitted.
func WriteFlame(w io.Writer, a *Analysis) error {
	for _, p := range a.Processes {
		// Aggregate per (kind, phase) over rounds; out-of-round time
		// (stalls, flat latency) is rolled up under its own kind frames.
		agg := map[string]Blame{}
		inRounds := Blame{}
		for _, rb := range p.Rounds {
			kind := rb.Kind
			if kind == "" {
				kind = "data"
			}
			b := agg[kind]
			if b == nil {
				b = Blame{}
				agg[kind] = b
			}
			b.merge(rb.Blame)
			inRounds.merge(rb.Blame)
		}
		// Process-level blame not covered by any round: recovery stalls
		// and unattributed latency analyzed at the process level.
		for _, phase := range Phases() {
			if rest := p.Blame[phase] - inRounds[phase]; rest > 1e-12 {
				kind := "stall"
				if phase == PhaseOther {
					kind = "other"
				}
				b := agg[kind]
				if b == nil {
					b = Blame{}
					agg[kind] = b
				}
				b.add(phase, rest)
			}
		}
		kinds := make([]string, 0, len(agg))
		for k := range agg {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		name := flameFrame(p.Name)
		if name == "" {
			name = fmt.Sprintf("pid %d", p.PID)
		}
		for _, kind := range kinds {
			for _, phase := range Phases() {
				us := int64(math.Round(agg[kind][phase] * 1e6))
				if us <= 0 {
					continue
				}
				if _, err := fmt.Fprintf(w, "%s;%s;%s %d\n", name, flameFrame(kind), phase, us); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// flameFrame sanitizes a frame name: semicolons separate frames and
// spaces separate the stack from its value in the collapsed format.
func flameFrame(s string) string {
	s = strings.ReplaceAll(s, ";", ",")
	return strings.ReplaceAll(s, " ", "_")
}
