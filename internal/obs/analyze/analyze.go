// Package analyze is the second-generation observability layer: it
// consumes the span tree the simulator emits (and, for lighter callers,
// the engine's per-round TraceEntry records) and answers the question the
// raw telemetry cannot — per round and per run, is the collective bound
// by shuffle, file I/O, paging, recovery, or the metadata exchange, and
// by how much?
//
// The unit of analysis is the critical path. Rounds of one collective
// operation are serial, so the run's critical path is the concatenation
// of the rounds' internal critical paths: without phase overlap a round
// contributes its communication phase followed by its I/O phase; with
// overlap the two phases ran concurrently, so the round's wall time is
// split between them in proportion to their durations (the shadowed
// remainder is not counted twice). Every second of the path is blamed on
// exactly one phase —
// shuffle, metadata, read, write, paging, recovery, or other — so the
// per-phase totals sum to the run's simulated wall time, which is what
// makes the numbers comparable across runs and exportable as a
// flamegraph.
//
// Paging blame is the *excess* time: a phase bound by a node whose
// aggregation buffers page is split into the time the same traffic would
// have taken at full DRAM speed (blamed on the phase) and the slowdown
// (blamed on paging). Injected fault delay inside an I/O phase is blamed
// on recovery, as are recovery rounds and stall spans. Residual wall
// time no span accounts for (e.g. message-drop timeouts charged as flat
// latency) lands in PhaseOther.
package analyze

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"mcio/internal/obs"
	"mcio/internal/sim"
)

// The blame phases, in stable display/export order.
const (
	PhaseShuffle  = "shuffle"
	PhaseMetadata = "metadata"
	PhaseRead     = "read"
	PhaseWrite    = "write"
	PhasePaging   = "paging"
	PhaseRecovery = "recovery"
	PhaseOther    = "other"
)

// Phases lists every phase in stable order.
func Phases() []string {
	return []string{PhaseShuffle, PhaseMetadata, PhaseRead, PhaseWrite,
		PhasePaging, PhaseRecovery, PhaseOther}
}

// Blame maps phase name -> seconds on the critical path.
type Blame map[string]float64

// Total sums all phases. Summation runs in sorted key order so the
// result is bit-identical across runs: map iteration order is random,
// and float addition is not associative, so an unordered sum can wobble
// by an ULP between otherwise identical runs — enough to break the
// ledger's byte-determinism guarantee downstream.
func (b Blame) Total() float64 {
	keys := make([]string, 0, len(b))
	for k := range b {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var t float64
	for _, k := range keys {
		t += b[k]
	}
	return t
}

// add accumulates non-negative time; negatives (float noise) are dropped.
func (b Blame) add(phase string, seconds float64) {
	if seconds > 0 {
		b[phase] += seconds
	}
}

// merge adds every phase of o into b.
func (b Blame) merge(o Blame) {
	for k, v := range o {
		b.add(k, v)
	}
}

// Dominant returns the phase with the largest share, breaking ties in
// Phases() order; "" when empty.
func (b Blame) Dominant() string {
	best, bestT := "", 0.0
	for _, p := range Phases() {
		if v := b[p]; v > bestT {
			best, bestT = p, v
		}
	}
	return best
}

// RoundBlame is one round on a run's critical path.
type RoundBlame struct {
	Round    int     // round index parsed from the span name
	Start    float64 // seconds, simulated time
	Dur      float64
	Kind     string // "data", "metadata", "recovery"
	Binding  string // the engine's bottleneck rendering, e.g. "comm node 3 (mem)"
	Bound    string // dominant blame phase of this round
	Recovery bool
	Blame    Blame
}

// TrackSummary is the busy-time rollup of one non-timeline track — a
// per-node shuffle lane or a per-OST storage lane.
type TrackSummary struct {
	TID   int
	Name  string
	Busy  float64 // summed span seconds
	Spans int
	// Utilization is Busy over the process wall time (0 when wall is 0).
	Utilization float64
}

// ProcessAnalysis is the critical-path analysis of one process track —
// one priced strategy run.
type ProcessAnalysis struct {
	PID    int
	Name   string
	Wall   float64 // simulated wall time: latest span end on the track
	Blame  Blame   // per-phase seconds; sums to Wall within float noise
	Rounds []RoundBlame
	Tracks []TrackSummary
}

// Analysis is the per-process critical-path breakdown of one trace.
type Analysis struct {
	Processes []ProcessAnalysis
}

// Process returns the analysis for the named process, or nil.
func (a *Analysis) Process(name string) *ProcessAnalysis {
	for i := range a.Processes {
		if a.Processes[i].Name == name {
			return &a.Processes[i]
		}
	}
	return nil
}

// attr returns the value of key on s, "" when absent.
func attr(s obs.Span, key string) string {
	for _, a := range s.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// attrFrac parses a fraction attribute, clamped to [0, 1].
func attrFrac(s obs.Span, key string) float64 {
	v := attr(s, key)
	if v == "" {
		return 0
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil || f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

// end returns the span's end timestamp.
func end(s obs.Span) float64 { return s.Start + s.Dur }

// Analyze computes the critical path with per-phase blame for every
// process in the tracer's span tree. Nil-safe: a nil tracer yields an
// empty analysis.
func Analyze(t *obs.Tracer) *Analysis {
	a := &Analysis{}
	if t == nil {
		return a
	}
	names := t.ProcessNames()
	byPID := map[int][]obs.Span{}
	for _, s := range t.Spans() { // already sorted by (Start, PID, TID, Dur desc)
		byPID[s.PID] = append(byPID[s.PID], s)
	}
	pids := make([]int, 0, len(byPID))
	for pid := range byPID {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	for _, pid := range pids {
		p := analyzeProcess(pid, names[pid], byPID[pid], t)
		a.Processes = append(a.Processes, p)
	}
	return a
}

// analyzeProcess walks one process's spans: round spans and their comm/io
// phase children on the timeline track, recovery stalls between rounds,
// and the per-node/per-OST lanes for the track summary.
func analyzeProcess(pid int, name string, spans []obs.Span, t *obs.Tracer) ProcessAnalysis {
	p := ProcessAnalysis{PID: pid, Name: name, Blame: Blame{}}
	var rounds []RoundBlame
	var phaseSpans []obs.Span // "comm"/"io" spans awaiting assignment
	var covered float64       // wall time accounted to rounds + stalls
	tracks := map[int]*TrackSummary{}
	for _, s := range spans {
		if e := end(s); e > p.Wall {
			p.Wall = e
		}
		if s.TID != sim.TIDTimeline {
			ts := tracks[s.TID]
			if ts == nil {
				ts = &TrackSummary{TID: s.TID, Name: t.ThreadName(pid, s.TID)}
				tracks[s.TID] = ts
			}
			ts.Busy += s.Dur
			ts.Spans++
			continue
		}
		switch {
		case s.Name == "comm" || s.Name == "io":
			phaseSpans = append(phaseSpans, s)
		case strings.HasPrefix(s.Name, "recovery: "):
			p.Blame.add(PhaseRecovery, s.Dur)
			covered += s.Dur
		case strings.HasPrefix(s.Name, "round ") || strings.HasPrefix(s.Name, "recovery round "):
			rb := RoundBlame{
				Start:    s.Start,
				Dur:      s.Dur,
				Binding:  attr(s, "binding"),
				Kind:     attr(s, "kind"),
				Recovery: strings.HasPrefix(s.Name, "recovery round "),
				Blame:    Blame{},
			}
			rb.Round, _ = strconv.Atoi(s.Name[strings.LastIndexByte(s.Name, ' ')+1:])
			rounds = append(rounds, rb)
			covered += s.Dur
		}
	}

	// Assign each phase span to the round containing it (rounds are
	// disjoint and sorted by start; phase spans arrive in start order).
	for _, s := range phaseSpans {
		i := sort.Search(len(rounds), func(i int) bool {
			return rounds[i].Start+rounds[i].Dur >= end(s)
		})
		if i >= len(rounds) || s.Start < rounds[i].Start-1e-12 {
			continue // orphan phase span; its round was not traced
		}
		blamePhase(&rounds[i], s)
	}
	for i := range rounds {
		finishRound(&rounds[i])
		p.Blame.merge(rounds[i].Blame)
	}
	p.Rounds = rounds

	// Wall time no round or stall covers (flat latency charges such as
	// message-drop timeouts) is real critical-path time with no span of
	// its own: report it rather than silently shrinking the total.
	if gap := p.Wall - covered; gap > 1e-12 {
		p.Blame.add(PhaseOther, gap)
	}

	tids := make([]int, 0, len(tracks))
	for tid := range tracks {
		tids = append(tids, tid)
	}
	sort.Ints(tids)
	for _, tid := range tids {
		ts := tracks[tid]
		if p.Wall > 0 {
			ts.Utilization = ts.Busy / p.Wall
		}
		p.Tracks = append(p.Tracks, *ts)
	}
	return p
}

// blamePhase splits one comm/io phase span into blame phases and
// accumulates it into the round.
func blamePhase(rb *RoundBlame, s obs.Span) {
	if rb.Recovery {
		// A recovery round's traffic is failure handling wholesale; the
		// round-level accounting below charges it all to recovery.
		return
	}
	paged := attrFrac(s, "paged_frac") * s.Dur
	delay := attrFrac(s, "delay_frac") * s.Dur
	phase := attr(s, "phase")
	switch s.Name {
	case "comm":
		if phase != PhaseMetadata {
			phase = PhaseShuffle
		}
		rb.Blame.add(PhasePaging, paged)
		rb.Blame.add(phase, s.Dur-paged)
	case "io":
		switch phase {
		case PhaseRead, PhaseWrite:
		default:
			phase = PhaseWrite // "mixed" and unknown default to write
		}
		rb.Blame.add(PhasePaging, paged)
		rb.Blame.add(PhaseRecovery, delay)
		rb.Blame.add(phase, s.Dur-paged-delay)
	}
}

// finishRound reconciles a round's blame with its duration: recovery
// rounds are charged wholly to recovery; overlapped phases are rescaled
// so the shadowed portion is not double-counted; any residual (a round
// with no phase spans, or float noise) lands in PhaseOther. After this,
// rb.Blame.Total() == rb.Dur within float noise.
func finishRound(rb *RoundBlame) {
	if rb.Recovery {
		rb.Blame = Blame{PhaseRecovery: rb.Dur}
		rb.Bound = PhaseRecovery
		return
	}
	total := rb.Blame.Total()
	if total > rb.Dur*(1+1e-9) && total > 0 {
		// Overlapped phases: comm and io ran concurrently and the round
		// lasted max(comm, io). Scale blame down proportionally so the
		// path still sums to wall time while both phases keep their
		// relative shares.
		scale := rb.Dur / total
		for k := range rb.Blame {
			rb.Blame[k] *= scale
		}
	} else if gap := rb.Dur - total; gap > 1e-12 {
		rb.Blame.add(PhaseOther, gap)
	}
	rb.Bound = rb.Blame.Dominant()
}

// BlameFromTrace computes the same per-phase blame from the engine's
// per-round TraceEntry records — the light-weight path for harnesses
// that priced with sim.Options.Trace but did not collect spans. Stall
// latency charged outside rounds (AddRecoveryLatency, AddLatency) is not
// in the entries; callers reconcile against the known wall time with
// Blame.Total(). overlap mirrors sim.Options.Overlap.
func BlameFromTrace(entries []sim.TraceEntry, overlap bool) Blame {
	b := Blame{}
	for _, e := range entries {
		if e.Recovery {
			b.add(PhaseRecovery, e.Cost.Time)
			continue
		}
		comm, io := e.Cost.CommTime, e.Cost.IOTime
		scale := 1.0
		if overlap && comm+io > 0 {
			scale = e.Cost.Time / (comm + io)
		}
		commPhase := PhaseShuffle
		if e.Kind == sim.RoundMetadata {
			commPhase = PhaseMetadata
		}
		paged := e.CommPagedFrac * comm
		b.add(PhasePaging, paged*scale)
		b.add(commPhase, (comm-paged)*scale)
		ioPhase := PhaseWrite
		if e.IODir == "read" {
			ioPhase = PhaseRead
		}
		ioPaged := e.IOPagedFrac * io
		ioDelay := e.IODelayFrac * io
		b.add(PhasePaging, ioPaged*scale)
		b.add(PhaseRecovery, ioDelay*scale)
		b.add(ioPhase, (io-ioPaged-ioDelay)*scale)
	}
	return b
}

// RenderBlame renders one process's per-phase critical-path table.
func (p *ProcessAnalysis) RenderBlame() string {
	var b strings.Builder
	fmt.Fprintf(&b, "critical path (%s): %.4fs over %d rounds\n", p.Name, p.Wall, len(p.Rounds))
	for _, phase := range Phases() {
		v := p.Blame[phase]
		if v <= 0 {
			continue
		}
		share := 0.0
		if p.Wall > 0 {
			share = v / p.Wall * 100
		}
		fmt.Fprintf(&b, "  %-9s %10.4fs  %5.1f%%\n", phase, v, share)
	}
	return b.String()
}

// RenderTracks renders the per-lane (per-node shuffle, per-OST storage)
// timeline summary of one process, busiest lanes first.
func (p *ProcessAnalysis) RenderTracks(max int) string {
	tracks := append([]TrackSummary(nil), p.Tracks...)
	sort.SliceStable(tracks, func(i, j int) bool { return tracks[i].Busy > tracks[j].Busy })
	if max > 0 && len(tracks) > max {
		tracks = tracks[:max]
	}
	var b strings.Builder
	fmt.Fprintf(&b, "busiest lanes (%s):\n", p.Name)
	for _, ts := range tracks {
		name := ts.Name
		if name == "" {
			name = fmt.Sprintf("tid %d", ts.TID)
		}
		fmt.Fprintf(&b, "  %-16s %10.4fs busy  %5.1f%%  (%d spans)\n",
			name, ts.Busy, ts.Utilization*100, ts.Spans)
	}
	return b.String()
}
