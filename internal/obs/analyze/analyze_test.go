package analyze

import (
	"bufio"
	"bytes"
	"math"
	"strconv"
	"strings"
	"testing"

	"mcio/internal/machine"
	"mcio/internal/obs"
	"mcio/internal/sim"
)

// syntheticTracer builds a trace shaped like a faulted engine run: a
// metadata round, a paged data round, a recovery stall, a recovery
// round, and a trailing gap of flat latency no span covers.
func syntheticTracer() *obs.Tracer {
	tr := obs.NewTracer()
	pid := tr.PID("two-phase")
	tr.SetThreadName(pid, sim.TIDTimeline, "rounds")
	tr.SetThreadName(pid, 101, "node 1 shuffle")
	tr.SetThreadName(pid, 200, "ost 0")

	op := tr.Begin(pid, sim.TIDTimeline, "two-phase write", 0)

	// Metadata round: comm only, 1 ms.
	r0 := tr.Begin(pid, sim.TIDTimeline, "round 0", 0, obs.A("kind", "metadata"))
	tr.Begin(pid, sim.TIDTimeline, "comm", 0, obs.A("phase", "metadata")).End(0.001)
	r0.End(0.001)

	// Data round: 2 ms comm half-paged, then 3 ms io with 1/3 delay.
	r1 := tr.Begin(pid, sim.TIDTimeline, "round 1", 0.001, obs.A("kind", "data"))
	c1 := tr.Begin(pid, sim.TIDTimeline, "comm", 0.001,
		obs.A("phase", "shuffle"), obs.A("paged_frac", "0.5"))
	c1.End(0.003)
	io1 := tr.Begin(pid, sim.TIDTimeline, "io", 0.003,
		obs.A("phase", "write"), obs.A("delay_frac", "0.333333333333"))
	io1.End(0.006)
	r1.End(0.006)
	tr.Begin(pid, 101, "shuffle", 0.001).End(0.003)
	tr.Begin(pid, 200, "io", 0.003).End(0.006)

	// Recovery stall then a recovery round.
	tr.Begin(pid, sim.TIDTimeline, "recovery: node-crash", 0.006,
		obs.A("phase", "recovery")).End(0.008)
	r2 := tr.Begin(pid, sim.TIDTimeline, "recovery round 2", 0.008, obs.A("kind", "recovery"))
	tr.Begin(pid, sim.TIDTimeline, "comm", 0.008, obs.A("phase", "shuffle")).End(0.009)
	r2.End(0.009)

	// Flat latency: 1 ms of wall time with no round span.
	op.End(0.010)
	return tr
}

func TestAnalyzeBlame(t *testing.T) {
	a := Analyze(syntheticTracer())
	if len(a.Processes) != 1 {
		t.Fatalf("got %d processes, want 1", len(a.Processes))
	}
	p := a.Process("two-phase")
	if p == nil {
		t.Fatal("process two-phase not found")
	}
	if got, want := p.Wall, 0.010; math.Abs(got-want) > 1e-12 {
		t.Fatalf("wall = %v, want %v", got, want)
	}
	approx := func(phase string, want float64) {
		t.Helper()
		if got := p.Blame[phase]; math.Abs(got-want) > 1e-9 {
			t.Errorf("blame[%s] = %v, want %v", phase, got, want)
		}
	}
	approx(PhaseMetadata, 0.001)
	approx(PhaseShuffle, 0.001)  // data-round comm minus paging
	approx(PhasePaging, 0.001)   // half of the 2 ms comm
	approx(PhaseWrite, 0.002)    // 3 ms io minus 1 ms delay
	approx(PhaseRecovery, 0.004) // 1 ms delay + 2 ms stall + 1 ms recovery round
	approx(PhaseOther, 0.001)    // the uncovered trailing latency
	if got := p.Blame.Total(); math.Abs(got-p.Wall) > 1e-9 {
		t.Fatalf("blame total %v != wall %v", got, p.Wall)
	}
	if len(p.Rounds) != 3 {
		t.Fatalf("got %d rounds, want 3", len(p.Rounds))
	}
	if p.Rounds[1].Bound != PhaseWrite {
		t.Errorf("round 1 bound by %q, want write", p.Rounds[1].Bound)
	}
	if !p.Rounds[2].Recovery || p.Rounds[2].Bound != PhaseRecovery {
		t.Errorf("recovery round not attributed: %+v", p.Rounds[2])
	}
	// Per-round blame sums to the round duration.
	for _, rb := range p.Rounds {
		if math.Abs(rb.Blame.Total()-rb.Dur) > 1e-9 {
			t.Errorf("round %d blame %v != dur %v", rb.Round, rb.Blame.Total(), rb.Dur)
		}
	}
}

func TestAnalyzeTracks(t *testing.T) {
	p := Analyze(syntheticTracer()).Process("two-phase")
	if len(p.Tracks) != 2 {
		t.Fatalf("got %d tracks, want 2: %+v", len(p.Tracks), p.Tracks)
	}
	byName := map[string]TrackSummary{}
	for _, ts := range p.Tracks {
		byName[ts.Name] = ts
	}
	sh := byName["node 1 shuffle"]
	if math.Abs(sh.Busy-0.002) > 1e-12 || sh.Spans != 1 {
		t.Errorf("shuffle lane = %+v, want 2 ms busy, 1 span", sh)
	}
	if math.Abs(sh.Utilization-0.2) > 1e-9 {
		t.Errorf("shuffle utilization = %v, want 0.2", sh.Utilization)
	}
	if out := p.RenderTracks(8); !strings.Contains(out, "node 1 shuffle") {
		t.Errorf("RenderTracks misses lane:\n%s", out)
	}
}

func TestAnalyzeOverlapRescales(t *testing.T) {
	tr := obs.NewTracer()
	pid := tr.PID("mc")
	// Overlapped round: comm 2 ms and io 3 ms both start at t=0; the
	// round lasts max = 3 ms. Blame must sum to 3 ms, split 2:3.
	r := tr.Begin(pid, sim.TIDTimeline, "round 0", 0, obs.A("kind", "data"))
	tr.Begin(pid, sim.TIDTimeline, "comm", 0, obs.A("phase", "shuffle")).End(0.002)
	tr.Begin(pid, sim.TIDTimeline, "io", 0, obs.A("phase", "read")).End(0.003)
	r.End(0.003)
	p := Analyze(tr).Process("mc")
	if math.Abs(p.Blame.Total()-0.003) > 1e-9 {
		t.Fatalf("overlap blame total = %v, want 0.003", p.Blame.Total())
	}
	if math.Abs(p.Blame[PhaseShuffle]-0.0012) > 1e-9 || math.Abs(p.Blame[PhaseRead]-0.0018) > 1e-9 {
		t.Fatalf("overlap split = %v, want shuffle 0.0012 / read 0.0018", p.Blame)
	}
}

// engineRun prices a few rounds on a real engine with both the span
// sink and round tracing on, so span-based and trace-based blame can be
// cross-checked.
func engineRun(t *testing.T, overlap bool) (*obs.Observer, []sim.TraceEntry, float64) {
	t.Helper()
	mc := machine.Testbed640()
	mc.Nodes = 8
	st := sim.StorageParams{Targets: 4, TargetBW: 300e6, ReqOverhead: 1e-4, NoncontigFactor: 2}
	opt := sim.DefaultOptions()
	opt.Trace = true
	opt.Overlap = overlap
	e, err := sim.NewEngine(mc, st, opt)
	if err != nil {
		t.Fatal(err)
	}
	o := obs.New()
	e.SetObserver(o, o.Tracer().PID("probe"))
	e.SetAggregators([]sim.AggregatorPlacement{
		{Node: 1, BufferBytes: 8 << 20, PagedSeverity: 0.6},
		{Node: 2, BufferBytes: 8 << 20},
	})
	e.RunRound(sim.Round{Kind: sim.RoundMetadata, Messages: []sim.Message{
		{SrcNode: 0, DstNode: 1, Bytes: 4 << 10},
		{SrcNode: 3, DstNode: 2, Bytes: 4 << 10},
	}})
	for i := 0; i < 3; i++ {
		e.RunRound(sim.Round{
			Messages: []sim.Message{
				{SrcNode: 0, DstNode: 1, Bytes: 8 << 20},
				{SrcNode: 3, DstNode: 2, Bytes: 4 << 20},
			},
			IOOps: []sim.IOOp{
				{Target: 1, Node: 1, Bytes: 8 << 20, Requests: 2, Contiguous: true, Write: true},
				{Target: 2, Node: 2, Bytes: 4 << 20, Requests: 1, Contiguous: false, Write: true, DelaySeconds: 0.002},
			},
		})
	}
	e.AddRecoveryLatency(0.005, "node-crash")
	e.RunRecoveryRound(sim.Round{Messages: []sim.Message{{SrcNode: 0, DstNode: 2, Bytes: 1 << 10}}})
	return o, e.Trace(), e.Elapsed()
}

func TestAnalyzeMatchesEngine(t *testing.T) {
	for _, overlap := range []bool{false, true} {
		o, entries, elapsed := engineRun(t, overlap)
		p := Analyze(o.Trace).Process("probe")
		if p == nil {
			t.Fatal("probe process missing")
		}
		if math.Abs(p.Wall-elapsed) > 1e-12 {
			t.Fatalf("overlap=%v: wall %v != engine elapsed %v", overlap, p.Wall, elapsed)
		}
		if math.Abs(p.Blame.Total()-elapsed) > 1e-9*elapsed {
			t.Fatalf("overlap=%v: blame total %v != elapsed %v", overlap, p.Blame.Total(), elapsed)
		}
		for _, phase := range []string{PhaseMetadata, PhaseShuffle, PhaseWrite, PhasePaging, PhaseRecovery} {
			if p.Blame[phase] <= 0 {
				t.Errorf("overlap=%v: phase %s got no blame: %v", overlap, phase, p.Blame)
			}
		}
		// The trace-entry path agrees with the span path on everything the
		// entries can see (stall latency is span-only by contract).
		tb := BlameFromTrace(entries, overlap)
		for _, phase := range Phases() {
			want := p.Blame[phase]
			if phase == PhaseRecovery {
				want -= 0.005 // the AddRecoveryLatency stall
			}
			if phase == PhaseOther {
				continue
			}
			// paged_frac/delay_frac attrs carry 6 significant digits, so
			// the span path is quantized relative to the exact trace path.
			if math.Abs(tb[phase]-want) > 1e-7 {
				t.Errorf("overlap=%v: BlameFromTrace[%s] = %v, span path %v", overlap, phase, tb[phase], want)
			}
		}
	}
}

func TestWriteFlameSumsToWall(t *testing.T) {
	o, _, elapsed := engineRun(t, false)
	a := Analyze(o.Trace)
	var buf bytes.Buffer
	if err := WriteFlame(&buf, a); err != nil {
		t.Fatal(err)
	}
	var totalUS int64
	lines := 0
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		line := sc.Text()
		lines++
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed collapsed-stack line %q", line)
		}
		stack, val := line[:sp], line[sp+1:]
		if frames := strings.Split(stack, ";"); len(frames) != 3 {
			t.Fatalf("stack %q has %d frames, want 3", stack, len(frames))
		}
		us, err := strconv.ParseInt(val, 10, 64)
		if err != nil || us <= 0 {
			t.Fatalf("bad value %q in line %q", val, line)
		}
		totalUS += us
	}
	if lines == 0 {
		t.Fatal("flame output empty")
	}
	wallUS := elapsed * 1e6
	if math.Abs(float64(totalUS)-wallUS) > float64(lines)+1 {
		t.Fatalf("flame total %d µs, wall %.3f µs: off by more than rounding", totalUS, wallUS)
	}
}

func TestAnalyzeNil(t *testing.T) {
	if a := Analyze(nil); len(a.Processes) != 0 {
		t.Fatal("nil tracer produced processes")
	}
	if b := BlameFromTrace(nil, false); len(b) != 0 {
		t.Fatal("empty trace produced blame")
	}
}
