package timeline

import (
	"fmt"
	"sort"
	"strings"
)

// SatOptions tunes the saturation analyzer; the zero value selects the
// noted defaults.
type SatOptions struct {
	// SatUtil is the utilization fraction at which a resource counts as
	// saturated (default 0.9).
	SatUtil float64
	// SustainBins is how many consecutive bins must cross SatUtil
	// before the crossing counts (default 2) — a single hot bin is
	// noise, a sustained plateau is a bottleneck.
	SustainBins int
}

func (o SatOptions) satUtil() float64 {
	if o.SatUtil > 0 {
		return o.SatUtil
	}
	return 0.9
}

func (o SatOptions) sustain() int {
	if o.SustainBins > 0 {
		return o.SustainBins
	}
	return 2
}

// Resource is the saturation verdict for one entity's busy series.
type Resource struct {
	Entity string
	Peak   float64 // peak per-bin utilization
	Mean   float64 // mean utilization over the active window
	// KneeT is when utilization ramps hardest toward its peak (the
	// knee of the curve): the start of the bin with the largest
	// smoothed utilization increase. -1 when the series never ramps
	// (flat or empty).
	KneeT float64
	// SatT is the first sustained crossing of SatUtil; -1 when the
	// resource never saturates.
	SatT float64
}

// Phase is one journal-delimited segment of the run with its
// bottleneck verdict.
type Phase struct {
	Name       string
	Start, End float64
	// First names the first resource to saturate inside the phase;
	// when none does, the resource with the highest mean utilization
	// (Saturated false).
	First     string
	FirstT    float64 // saturation time, or -1 when merely busiest
	FirstUtil float64 // the deciding utilization (SatUtil crossing or mean)
	Saturated bool
}

// SatReport is the full saturation analysis of one recorded run.
type SatReport struct {
	Opt       SatOptions
	Tick      float64
	Span      float64
	Resources []Resource
	Phases    []Phase
}

// Analyze runs the saturation analyzer over the recorder's busy
// series, segmenting phases on the journal's EvPhase events. The
// result is a pure function of the recorder's contents.
func Analyze(rec *Recorder, opt SatOptions) *SatReport {
	rep := &SatReport{Opt: opt, Tick: rec.Tick(), Span: rec.Span()}
	if rec == nil {
		return rep
	}
	var busies []SeriesView
	for _, v := range rec.Snapshot() {
		if v.Kind == Busy && v.Metric == "busy" {
			busies = append(busies, v)
		}
	}
	for _, v := range busies {
		rep.Resources = append(rep.Resources, analyzeResource(v, opt))
	}
	rep.Phases = analyzePhases(busies, rec.J().Events(), rec.Span(), opt)
	return rep
}

func analyzeResource(v SeriesView, opt SatOptions) Resource {
	r := Resource{Entity: v.Entity, Peak: v.Max(), Mean: v.Mean(), KneeT: -1, SatT: -1}
	if sb := sustainedCross(v, 0, len(v.Values), opt); sb >= 0 {
		r.SatT = float64(sb) * v.Tick
	}
	// Knee: the largest bin-to-bin increase of the 3-bin-smoothed
	// utilization. A flat series (max rise under 5% of peak) has none.
	sm := smooth3(v.Values)
	best, bestAt := 0.0, -1
	for i := 1; i < len(sm); i++ {
		if d := sm[i] - sm[i-1]; d > best {
			best, bestAt = d, i
		}
	}
	if bestAt >= 0 && best > 0.05*r.Peak {
		r.KneeT = float64(bestAt) * v.Tick
	}
	return r
}

// sustainedCross returns the first bin in [lo, hi) where v stays at or
// above SatUtil for SustainBins consecutive bins (clipped to hi), or
// -1.
func sustainedCross(v SeriesView, lo, hi int, opt SatOptions) int {
	if hi > len(v.Values) {
		hi = len(v.Values)
	}
	need := opt.sustain()
	run := 0
	for i := lo; i < hi; i++ {
		if v.Values[i] >= opt.satUtil() {
			run++
			if run == need || i == hi-1 {
				return i - run + 1
			}
		} else {
			run = 0
		}
	}
	return -1
}

func smooth3(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i := range xs {
		sum, n := xs[i], 1.0
		if i > 0 {
			sum, n = sum+xs[i-1], n+1
		}
		if i+1 < len(xs) {
			sum, n = sum+xs[i+1], n+1
		}
		out[i] = sum / n
	}
	return out
}

// analyzePhases segments [0, span) on the journal's phase events and
// names the first-saturating (or, failing that, busiest) resource in
// each segment. Adjacent segments with the same phase name merge.
func analyzePhases(busies []SeriesView, events []Event, span float64, opt SatOptions) []Phase {
	type seg struct {
		name  string
		start float64
	}
	var segs []seg
	for _, ev := range events {
		if ev.Kind != EvPhase || ev.T < 0 {
			continue
		}
		if n := len(segs); n > 0 && segs[n-1].name == ev.Detail {
			continue
		}
		segs = append(segs, seg{name: ev.Detail, start: ev.T})
	}
	if len(segs) == 0 {
		if span <= 0 {
			return nil
		}
		segs = []seg{{name: "run", start: 0}}
	}
	var out []Phase
	for i, sg := range segs {
		end := span
		if i+1 < len(segs) {
			end = segs[i+1].start
		}
		if end <= sg.start {
			continue
		}
		p := Phase{Name: sg.name, Start: sg.start, End: end, FirstT: -1}
		for _, v := range busies {
			lo := int(sg.start / v.Tick)
			hi := int(end/v.Tick) + 1
			if sb := sustainedCross(v, lo, hi, opt); sb >= 0 {
				t := float64(sb) * v.Tick
				if !p.Saturated || t < p.FirstT {
					p.Saturated = true
					p.First, p.FirstT, p.FirstUtil = v.Entity, t, opt.satUtil()
				}
			}
		}
		if !p.Saturated {
			for _, v := range busies {
				m := meanWindow(v, sg.start, end)
				if m > p.FirstUtil {
					p.First, p.FirstUtil = v.Entity, m
				}
			}
		}
		out = append(out, p)
	}
	return out
}

func meanWindow(v SeriesView, start, end float64) float64 {
	lo := int(start / v.Tick)
	hi := int(end/v.Tick) + 1
	if hi > len(v.Values) {
		hi = len(v.Values)
	}
	if hi <= lo {
		return 0
	}
	sum := 0.0
	for i := lo; i < hi; i++ {
		sum += v.Values[i]
	}
	return sum / float64(hi-lo)
}

// Render prints the analysis as the fixed-format text block the
// profile summary and tests consume.
func (s *SatReport) Render() string {
	var b strings.Builder
	res := append([]Resource(nil), s.Resources...)
	sort.Slice(res, func(i, j int) bool {
		if res[i].Peak != res[j].Peak {
			return res[i].Peak > res[j].Peak
		}
		return entityLess(res[i].Entity, res[j].Entity)
	})
	fmt.Fprintf(&b, "saturation (>= %.0f%% for %d bins, tick %.3gs):\n",
		s.Opt.satUtil()*100, s.Opt.sustain(), s.Tick)
	for _, r := range res {
		line := fmt.Sprintf("  %-10s peak %3.0f%% mean %3.0f%%", r.Entity, r.Peak*100, r.Mean*100)
		if r.SatT >= 0 {
			line += fmt.Sprintf("  saturated at %.4gs", r.SatT)
		}
		if r.KneeT >= 0 {
			line += fmt.Sprintf("  knee at %.4gs", r.KneeT)
		}
		b.WriteString(line + "\n")
	}
	for _, p := range s.Phases {
		verdict := fmt.Sprintf("busiest %s (mean %.0f%%)", p.First, p.FirstUtil*100)
		if p.Saturated {
			verdict = fmt.Sprintf("first saturated %s at %.4gs", p.First, p.FirstT)
		}
		if p.First == "" {
			verdict = "idle"
		}
		fmt.Fprintf(&b, "  phase %-9s [%.4gs, %.4gs): %s\n", p.Name, p.Start, p.End, verdict)
	}
	return b.String()
}
