package timeline

import "sort"

// Event kinds, one constant per structured thing the stack journals.
// Kinds are stable strings (they appear in CSV exports and reports);
// add, never rename.
const (
	// EvFault is a fault onset from the injector schedule (the event's
	// scheduled time, not the round boundary that discovered it).
	EvFault = "fault"
	// EvSuspect / EvClear are suspicion-detector threshold crossings.
	EvSuspect = "suspect"
	EvClear   = "clear"
	// Breaker state changes on a storage target.
	EvBreakerOpen  = "breaker-open"
	EvBreakerProbe = "breaker-probe"
	EvBreakerClose = "breaker-close"
	// EvFailover is a reactive reassignment after a host fault;
	// EvProactive a health-driven move before one; EvStall a
	// stall-and-retry recovery charging dead time.
	EvFailover  = "failover"
	EvProactive = "proactive-failover"
	EvStall     = "stall"
	// EvRung is a degradation-controller rung change.
	EvRung = "degrade-rung"
	// EvHedge is a hedged re-request; EvRepair a detected corruption
	// being re-requested or re-issued.
	EvHedge  = "hedge"
	EvRepair = "repair"
	// EvPhase marks a run-phase boundary (metadata / data / recovery
	// rounds), emitted by the engine; the saturation analyzer segments
	// on these.
	EvPhase = "phase"
)

// Event is one journal entry. T is simulated seconds; T < 0 marks an
// unstamped event (recorded from a layer without a simulated clock,
// ordered by sequence only).
type Event struct {
	T      float64
	Seq    int
	Kind   string
	Entity string // Ent()-formatted, matching the series labels
	Detail string
}

// Journal is an append-only structured event log. Like the Recorder it
// is single-goroutine and nil-safe.
type Journal struct {
	events []Event
}

// Record appends one timestamped event.
func (j *Journal) Record(t float64, kind, entity, detail string) {
	if j == nil {
		return
	}
	j.events = append(j.events, Event{T: t, Seq: len(j.events), Kind: kind, Entity: entity, Detail: detail})
}

// RecordSeq appends one unstamped event (T = -1): layers with no
// simulated clock (the byte-level integrity path) still journal, in
// sequence order.
func (j *Journal) RecordSeq(kind, entity, detail string) {
	if j == nil {
		return
	}
	j.events = append(j.events, Event{T: -1, Seq: len(j.events), Kind: kind, Entity: entity, Detail: detail})
}

// Len returns the number of recorded events.
func (j *Journal) Len() int {
	if j == nil {
		return 0
	}
	return len(j.events)
}

// Events returns the journal sorted by (time, sequence), unstamped
// events last in sequence order. The sort is stable and the result a
// copy.
func (j *Journal) Events() []Event {
	if j == nil {
		return nil
	}
	out := append([]Event(nil), j.events...)
	sort.SliceStable(out, func(a, b int) bool {
		ta, tb := out[a].T, out[b].T
		ua, ub := ta < 0, tb < 0
		if ua != ub {
			return ub // stamped before unstamped
		}
		if !ua && ta != tb {
			return ta < tb
		}
		return out[a].Seq < out[b].Seq
	})
	return out
}

// Lag is the detection-lag decomposition for one entity: when its
// first fault set on, when suspicion first crossed, and when the stack
// first reacted (breaker open, proactive or reactive failover). A
// stage that never happened is -1.
type Lag struct {
	Entity  string
	Onset   float64
	Suspect float64
	React   float64
}

// OnsetToSuspect returns the onset→suspicion lag, -1 if unmeasurable.
func (l Lag) OnsetToSuspect() float64 {
	if l.Onset < 0 || l.Suspect < 0 {
		return -1
	}
	return l.Suspect - l.Onset
}

// OnsetToReact returns the onset→reaction lag, -1 if unmeasurable.
func (l Lag) OnsetToReact() float64 {
	if l.Onset < 0 || l.React < 0 {
		return -1
	}
	return l.React - l.Onset
}

// DetectionLags computes, per entity with at least one fault onset,
// the first onset, the first suspicion at or after it, and the first
// reaction at or after it. Entities come out in natural order.
func DetectionLags(events []Event) []Lag {
	byEnt := map[string]*Lag{}
	var order []string
	get := func(ent string) *Lag {
		l := byEnt[ent]
		if l == nil {
			l = &Lag{Entity: ent, Onset: -1, Suspect: -1, React: -1}
			byEnt[ent] = l
			order = append(order, ent)
		}
		return l
	}
	for _, ev := range events {
		if ev.T < 0 || ev.Entity == "" {
			continue
		}
		switch ev.Kind {
		case EvFault:
			if l := get(ev.Entity); l.Onset < 0 {
				l.Onset = ev.T
			}
		case EvSuspect:
			l := get(ev.Entity)
			if l.Onset >= 0 && l.Suspect < 0 && ev.T >= l.Onset {
				l.Suspect = ev.T
			}
		case EvBreakerOpen, EvProactive, EvFailover:
			l := get(ev.Entity)
			if l.Onset >= 0 && l.React < 0 && ev.T >= l.Onset {
				l.React = ev.T
			}
		}
	}
	var out []Lag
	for _, ent := range order {
		if l := byEnt[ent]; l.Onset >= 0 {
			out = append(out, *l)
		}
	}
	sort.Slice(out, func(i, j int) bool { return entityLess(out[i].Entity, out[j].Entity) })
	return out
}
