// Package timeline is a simulated-time sampling profiler and a
// structured event journal for the collective-I/O stack.
//
// The Recorder samples per-entity utilization series — per-OST busy
// fraction and queue depth, per-NIC bytes in flight, per-node memory
// pressure, suspicion scores — on a fixed simulated-time tick. Series
// are bounded: when a run outgrows the sample budget the tick doubles
// and adjacent bins merge (sums for accumulators, maxima for gauges),
// so every series stays aligned on one shared tick and memory stays
// O(budget) regardless of run length. All coarsening is deterministic:
// the same inputs always produce the same bins, so reports built from
// a Recorder are byte-identical across reruns and under -race.
//
// The Journal records typed, timestamped events from across the stack
// (fault onsets, suspicion transitions, breaker state changes,
// failovers, degradation rung changes, hedges, repairs) which the
// report layer overlays on the utilization timelines.
//
// The package is a leaf: it imports only the standard library, so sim,
// pfs, health, core, collio and bench can all feed one recorder
// without import cycles. All methods are nil-receiver-safe — a nil
// *Recorder (profiling off) makes every call a cheap no-op.
package timeline

import (
	"sort"
	"strconv"
	"strings"
)

// SeriesKind says how a series accumulates within a bin and how bins
// merge when the tick doubles.
type SeriesKind int

const (
	// Busy accumulates busy seconds per bin; value/tick is the
	// utilization fraction. Merged bins sum.
	Busy SeriesKind = iota
	// Rate accumulates a quantity per bin (bytes, events). Merged bins
	// sum.
	Rate
	// Gauge keeps the maximum sampled value per bin. Merged bins take
	// the maximum of the set halves.
	Gauge
)

// String names the kind for reports and CSV export.
func (k SeriesKind) String() string {
	switch k {
	case Busy:
		return "busy"
	case Rate:
		return "rate"
	default:
		return "gauge"
	}
}

// Ent builds the canonical entity label shared by series and journal
// events: "ost 3", "node 7". The journal's overlay matching depends on
// every layer using the same labels, so build them here.
func Ent(kind string, id int) string { return kind + " " + strconv.Itoa(id) }

// Series is one bounded per-entity metric series on the recorder's
// shared tick.
type Series struct {
	Entity string // "ost 0", "node 3", "run"
	Metric string // "busy", "queue", "nic_bytes", "suspicion", ...
	Kind   SeriesKind

	bins []float64
	set  []bool // which bins hold at least one sample (gauges render gaps)
}

func (s *Series) grow(n int) {
	for len(s.bins) < n {
		s.bins = append(s.bins, 0)
		s.set = append(s.set, false)
	}
}

func (s *Series) halve() {
	n := (len(s.bins) + 1) / 2
	for i := 0; i < n; i++ {
		a := s.bins[2*i]
		sa := s.set[2*i]
		var b float64
		var sb bool
		if 2*i+1 < len(s.bins) {
			b, sb = s.bins[2*i+1], s.set[2*i+1]
		}
		switch s.Kind {
		case Gauge:
			m := a
			if !sa || (sb && b > m) {
				m = b
			}
			s.bins[i] = m
		default:
			s.bins[i] = a + b
		}
		s.set[i] = sa || sb
	}
	s.bins = s.bins[:n]
	s.set = s.set[:n]
}

// DefaultBudget is the per-series sample budget when NewRecorder gets
// zero: small enough that a full profile of every OST, NIC and node
// stays cheap, large enough for a few hundred pixels per lane.
const DefaultBudget = 512

// defaultTick is the initial tick when NewRecorder gets zero: far
// below any round time, so the budget-driven doubling alone picks the
// effective resolution and short runs keep microsecond detail.
const defaultTick = 1e-6

// Recorder collects bounded utilization series on one shared
// simulated-time tick, plus the event journal. Not safe for concurrent
// use: the single-goroutine cost loop owns it.
type Recorder struct {
	tick   float64
	budget int
	series map[string]*Series
	order  []string // insertion order; Snapshot sorts
	meta   map[string]string
	j      Journal
	span   float64
}

// NewRecorder builds a recorder. tick <= 0 selects a microsecond
// initial tick; budget <= 0 selects DefaultBudget. The effective tick
// doubles as needed so no series ever exceeds the budget.
func NewRecorder(tick float64, budget int) *Recorder {
	if tick <= 0 {
		tick = defaultTick
	}
	if budget <= 0 {
		budget = DefaultBudget
	}
	return &Recorder{
		tick:   tick,
		budget: budget,
		series: map[string]*Series{},
		meta:   map[string]string{},
	}
}

// J returns the recorder's journal; nil for a nil recorder, and a nil
// *Journal is itself a safe no-op sink.
func (r *Recorder) J() *Journal {
	if r == nil {
		return nil
	}
	return &r.j
}

// Tick returns the current effective tick in simulated seconds.
func (r *Recorder) Tick() float64 {
	if r == nil {
		return 0
	}
	return r.tick
}

// Span returns the largest simulated time observed so far.
func (r *Recorder) Span() float64 {
	if r == nil {
		return 0
	}
	return r.span
}

// SetMeta attaches one run-level annotation (strategy, op, Mem_min)
// rendered in the report header.
func (r *Recorder) SetMeta(key, value string) {
	if r == nil {
		return
	}
	r.meta[key] = value
}

// Meta returns the annotations as sorted key=value strings.
func (r *Recorder) Meta() []string {
	if r == nil {
		return nil
	}
	out := make([]string, 0, len(r.meta))
	for k, v := range r.meta {
		out = append(out, k+"="+v)
	}
	sort.Strings(out)
	return out
}

func (r *Recorder) get(entity, metric string, kind SeriesKind) *Series {
	key := entity + "\x00" + metric
	s := r.series[key]
	if s == nil {
		s = &Series{Entity: entity, Metric: metric, Kind: kind}
		r.series[key] = s
		r.order = append(r.order, key)
	}
	return s
}

// extend notes time t and doubles the tick until bin(t) fits the
// budget, merging every series in lockstep so all stay aligned.
func (r *Recorder) extend(t float64) {
	if t > r.span {
		r.span = t
	}
	for int(t/r.tick) >= r.budget {
		r.tick *= 2
		for _, s := range r.series {
			s.halve()
		}
	}
}

// AddSpan accumulates busy time [start, end) into entity's metric,
// split across the bins the span covers.
func (r *Recorder) AddSpan(entity, metric string, start, end float64) {
	if r == nil || end <= start || start < 0 {
		return
	}
	r.extend(end)
	s := r.get(entity, metric, Busy)
	b0, b1 := int(start/r.tick), int(end/r.tick)
	if b1 >= r.budget { // end exactly on the last boundary
		b1 = r.budget - 1
	}
	s.grow(b1 + 1)
	for b := b0; b <= b1; b++ {
		lo, hi := float64(b)*r.tick, float64(b+1)*r.tick
		if start > lo {
			lo = start
		}
		if end < hi {
			hi = end
		}
		if hi > lo {
			s.bins[b] += hi - lo
			s.set[b] = true
		}
	}
}

// AddRate accumulates quantity v (bytes, events) into the bin holding
// time t.
func (r *Recorder) AddRate(entity, metric string, t, v float64) {
	if r == nil || t < 0 {
		return
	}
	r.extend(t)
	s := r.get(entity, metric, Rate)
	b := int(t / r.tick)
	s.grow(b + 1)
	s.bins[b] += v
	s.set[b] = true
}

// AddGauge samples a level (queue depth, suspicion score, buffer
// occupancy) at time t; a bin keeps the maximum of its samples.
func (r *Recorder) AddGauge(entity, metric string, t, v float64) {
	if r == nil || t < 0 {
		return
	}
	r.extend(t)
	s := r.get(entity, metric, Gauge)
	b := int(t / r.tick)
	s.grow(b + 1)
	if !s.set[b] || v > s.bins[b] {
		s.bins[b] = v
	}
	s.set[b] = true
}

// SeriesView is one series prepared for reporting: Values holds the
// utilization fraction per bin for Busy series (busy seconds / tick)
// and the raw per-bin value otherwise; Set marks bins holding samples.
type SeriesView struct {
	Entity string
	Metric string
	Kind   SeriesKind
	Tick   float64
	Values []float64
	Set    []bool
}

// Max returns the largest sampled value in the view (0 when empty).
func (v SeriesView) Max() float64 {
	m := 0.0
	for i, x := range v.Values {
		if v.Set[i] && x > m {
			m = x
		}
	}
	return m
}

// Mean returns the mean over all bins up to the last set one (unset
// bins count as zero — the resource was idle).
func (v SeriesView) Mean() float64 {
	last := -1
	for i := range v.Values {
		if v.Set[i] {
			last = i
		}
	}
	if last < 0 {
		return 0
	}
	sum := 0.0
	for i := 0; i <= last; i++ {
		sum += v.Values[i]
	}
	return sum / float64(last+1)
}

// entityLess orders entities naturally: by kind prefix, then by the
// numeric suffix ("node 2" before "node 10"), so per-entity lanes come
// out stable and human-ordered.
func entityLess(a, b string) bool {
	pa, na := splitEnt(a)
	pb, nb := splitEnt(b)
	if pa != pb {
		return pa < pb
	}
	if na != nb {
		return na < nb
	}
	return a < b
}

func splitEnt(s string) (string, int) {
	i := strings.LastIndexByte(s, ' ')
	if i < 0 {
		return s, -1
	}
	n, err := strconv.Atoi(s[i+1:])
	if err != nil {
		return s, -1
	}
	return s[:i], n
}

// Snapshot returns every series, sorted by (entity natural order,
// metric), with Busy bins converted to utilization fractions. The
// result is a pure function of the recorded inputs.
func (r *Recorder) Snapshot() []SeriesView {
	if r == nil {
		return nil
	}
	views := make([]SeriesView, 0, len(r.order))
	for _, key := range r.order {
		s := r.series[key]
		v := SeriesView{
			Entity: s.Entity,
			Metric: s.Metric,
			Kind:   s.Kind,
			Tick:   r.tick,
			Values: append([]float64(nil), s.bins...),
			Set:    append([]bool(nil), s.set...),
		}
		if s.Kind == Busy {
			for i := range v.Values {
				v.Values[i] /= r.tick
			}
		}
		views = append(views, v)
	}
	sort.Slice(views, func(i, j int) bool {
		if views[i].Entity != views[j].Entity {
			return entityLess(views[i].Entity, views[j].Entity)
		}
		return views[i].Metric < views[j].Metric
	})
	return views
}
