package timeline

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestNilRecorderIsNoOp(t *testing.T) {
	var r *Recorder
	r.AddSpan("ost 0", "busy", 0, 1)
	r.AddRate("node 0", "nic_bytes", 0, 10)
	r.AddGauge("ost 0", "queue", 0, 3)
	r.SetMeta("k", "v")
	r.J().Record(1, EvFault, "ost 0", "x")
	r.J().RecordSeq(EvRepair, "run", "y")
	if r.Snapshot() != nil || r.Meta() != nil || r.Span() != 0 || r.Tick() != 0 {
		t.Fatal("nil recorder leaked state")
	}
	if r.J().Len() != 0 || r.J().Events() != nil {
		t.Fatal("nil journal leaked state")
	}
	rep := Analyze(r, SatOptions{})
	if len(rep.Resources) != 0 || len(rep.Phases) != 0 {
		t.Fatal("nil recorder produced analysis")
	}
}

func TestSpanBinning(t *testing.T) {
	r := NewRecorder(1, 0)
	// A span covering [0.5, 2.5) splits 0.5 / 1.0 / 0.5 across bins.
	r.AddSpan("ost 0", "busy", 0.5, 2.5)
	views := r.Snapshot()
	if len(views) != 1 {
		t.Fatalf("want 1 series, got %d", len(views))
	}
	v := views[0]
	want := []float64{0.5, 1.0, 0.5}
	if len(v.Values) != len(want) {
		t.Fatalf("want %d bins, got %d", len(want), len(v.Values))
	}
	for i := range want {
		if math.Abs(v.Values[i]-want[i]) > 1e-12 {
			t.Fatalf("bin %d: want %g, got %g", i, want[i], v.Values[i])
		}
	}
	if r.Span() != 2.5 {
		t.Fatalf("span: want 2.5, got %g", r.Span())
	}
}

func TestTickDoublingKeepsBudget(t *testing.T) {
	r := NewRecorder(1, 4)
	for i := 0; i < 64; i++ {
		r.AddSpan("ost 0", "busy", float64(i), float64(i)+0.5)
		r.AddGauge("ost 0", "queue", float64(i), float64(i%7))
		r.AddRate("node 0", "nic_bytes", float64(i), 100)
	}
	for _, v := range r.Snapshot() {
		if len(v.Values) > 4 {
			t.Fatalf("%s %s: %d bins exceeds budget 4", v.Entity, v.Metric, len(v.Values))
		}
	}
	if r.Tick() != 16 {
		t.Fatalf("tick: want 16 after doubling, got %g", r.Tick())
	}
	// Busy mass is preserved through the merges: 64 spans of 0.5s.
	for _, v := range r.Snapshot() {
		if v.Kind != Busy {
			continue
		}
		sum := 0.0
		for _, x := range v.Values {
			sum += x * v.Tick // utilization back to seconds
		}
		if math.Abs(sum-32) > 1e-9 {
			t.Fatalf("busy seconds not preserved: want 32, got %g", sum)
		}
	}
}

func TestDownsampleMatchesCoarseRecorder(t *testing.T) {
	// Recording at a fine tick then downsampling must agree (to float
	// tolerance) with recording at the coarse tick directly.
	fine := NewRecorder(1, 8)   // will double to tick 4 over 32s
	coarse := NewRecorder(4, 8) // starts there
	for i := 0; i < 32; i++ {
		s, e := float64(i)+0.25, float64(i)+0.75
		fine.AddSpan("ost 0", "busy", s, e)
		coarse.AddSpan("ost 0", "busy", s, e)
		fine.AddGauge("ost 0", "queue", float64(i), float64((i*13)%29))
		coarse.AddGauge("ost 0", "queue", float64(i), float64((i*13)%29))
	}
	fv, cv := fine.Snapshot(), coarse.Snapshot()
	if fine.Tick() != coarse.Tick() {
		t.Fatalf("ticks differ: %g vs %g", fine.Tick(), coarse.Tick())
	}
	for i := range fv {
		if len(fv[i].Values) != len(cv[i].Values) {
			t.Fatalf("%s %s: bin counts differ", fv[i].Entity, fv[i].Metric)
		}
		for b := range fv[i].Values {
			if math.Abs(fv[i].Values[b]-cv[i].Values[b]) > 1e-9 {
				t.Fatalf("%s %s bin %d: fine %g vs coarse %g",
					fv[i].Entity, fv[i].Metric, b, fv[i].Values[b], cv[i].Values[b])
			}
		}
	}
}

func TestGaugeKeepsBinMax(t *testing.T) {
	r := NewRecorder(1, 8)
	r.AddGauge("ost 0", "queue", 0.2, 3)
	r.AddGauge("ost 0", "queue", 0.8, 7)
	r.AddGauge("ost 0", "queue", 0.9, 5)
	v := r.Snapshot()[0]
	if v.Values[0] != 7 {
		t.Fatalf("gauge bin: want max 7, got %g", v.Values[0])
	}
}

func TestSnapshotNaturalOrder(t *testing.T) {
	r := NewRecorder(1, 8)
	r.AddGauge("node 10", "queue", 0, 1)
	r.AddGauge("node 2", "queue", 0, 1)
	r.AddGauge("ost 1", "busy", 0, 1)
	var ents []string
	for _, v := range r.Snapshot() {
		ents = append(ents, v.Entity)
	}
	want := "node 2,node 10,ost 1"
	if got := strings.Join(ents, ","); got != want {
		t.Fatalf("order: want %q, got %q", want, got)
	}
}

func TestJournalOrdering(t *testing.T) {
	j := &Journal{}
	j.Record(2.0, EvSuspect, "ost 0", "")
	j.RecordSeq(EvRepair, "run", "late unstamped")
	j.Record(1.0, EvFault, "ost 0", "")
	j.Record(1.0, EvFault, "ost 1", "") // same T: sequence breaks the tie
	evs := j.Events()
	if len(evs) != 4 {
		t.Fatalf("want 4 events, got %d", len(evs))
	}
	if evs[0].Entity != "ost 0" || evs[0].T != 1.0 {
		t.Fatalf("first event wrong: %+v", evs[0])
	}
	if evs[1].Entity != "ost 1" {
		t.Fatalf("tie not broken by seq: %+v", evs[1])
	}
	if evs[2].Kind != EvSuspect {
		t.Fatalf("want suspect third: %+v", evs[2])
	}
	if evs[3].T >= 0 {
		t.Fatalf("unstamped must sort last: %+v", evs[3])
	}
}

func TestDetectionLags(t *testing.T) {
	j := &Journal{}
	j.Record(0.5, EvSuspect, "ost 0", "pre-onset noise") // before onset: ignored
	j.Record(1.0, EvFault, "ost 0", "slowdown")
	j.Record(1.5, EvSuspect, "ost 0", "")
	j.Record(2.5, EvBreakerOpen, "ost 0", "")
	j.Record(3.0, EvFault, "node 2", "crash")
	j.Record(3.2, EvFailover, "node 2", "")
	j.Record(9.0, EvSuspect, "ost 5", "no onset here") // no fault: excluded
	lags := DetectionLags(j.Events())
	if len(lags) != 2 {
		t.Fatalf("want 2 lag entries, got %d: %+v", len(lags), lags)
	}
	if lags[0].Entity != "node 2" || lags[1].Entity != "ost 0" {
		t.Fatalf("lag order wrong: %+v", lags)
	}
	ost := lags[1]
	if got := ost.OnsetToSuspect(); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("onset→suspect: want 0.5, got %g", got)
	}
	if got := ost.OnsetToReact(); math.Abs(got-1.5) > 1e-12 {
		t.Fatalf("onset→react: want 1.5, got %g", got)
	}
	node := lags[0]
	if node.Suspect >= 0 {
		t.Fatalf("node 2 never suspected, got %g", node.Suspect)
	}
	if got := node.OnsetToSuspect(); got != -1 {
		t.Fatalf("unmeasurable lag must be -1, got %g", got)
	}
}

func TestAnalyzeSaturation(t *testing.T) {
	r := NewRecorder(1, 64)
	// ost 0 ramps to sustained saturation from t=4; ost 1 stays at 40%.
	for i := 0; i < 10; i++ {
		frac := 0.2
		if i >= 4 {
			frac = 0.95
		}
		r.AddSpan("ost 0", "busy", float64(i), float64(i)+frac)
		r.AddSpan("ost 1", "busy", float64(i), float64(i)+0.4)
	}
	rep := Analyze(r, SatOptions{})
	if len(rep.Resources) != 2 {
		t.Fatalf("want 2 resources, got %d", len(rep.Resources))
	}
	var ost0 Resource
	for _, res := range rep.Resources {
		if res.Entity == "ost 0" {
			ost0 = res
		} else if res.SatT >= 0 {
			t.Fatalf("%s should not saturate: %+v", res.Entity, res)
		}
	}
	if ost0.SatT != 4 {
		t.Fatalf("ost 0 saturation: want t=4, got %g", ost0.SatT)
	}
	if ost0.KneeT < 3 || ost0.KneeT > 5 {
		t.Fatalf("ost 0 knee: want near 4, got %g", ost0.KneeT)
	}
	if len(rep.Phases) != 1 || rep.Phases[0].Name != "run" {
		t.Fatalf("want single fallback phase, got %+v", rep.Phases)
	}
	if !rep.Phases[0].Saturated || rep.Phases[0].First != "ost 0" {
		t.Fatalf("phase verdict wrong: %+v", rep.Phases[0])
	}
}

func TestAnalyzePhaseSegmentation(t *testing.T) {
	r := NewRecorder(1, 64)
	r.J().Record(0, EvPhase, "run", "metadata")
	r.J().Record(2, EvPhase, "run", "data")
	r.J().Record(3, EvPhase, "run", "data") // same name: merges
	// Metadata phase: node 0 busy; data phase: ost 0 saturates.
	r.AddSpan("node 0", "busy", 0, 1.2)
	for i := 2; i < 8; i++ {
		r.AddSpan("ost 0", "busy", float64(i), float64(i)+0.95)
	}
	rep := Analyze(r, SatOptions{})
	if len(rep.Phases) != 2 {
		t.Fatalf("want 2 phases, got %+v", rep.Phases)
	}
	if rep.Phases[0].Name != "metadata" || rep.Phases[1].Name != "data" {
		t.Fatalf("phase names wrong: %+v", rep.Phases)
	}
	if !rep.Phases[1].Saturated || rep.Phases[1].First != "ost 0" {
		t.Fatalf("data phase should saturate on ost 0: %+v", rep.Phases[1])
	}
	out := rep.Render()
	if !strings.Contains(out, "phase data") || !strings.Contains(out, "first saturated ost 0") {
		t.Fatalf("render missing phase verdict:\n%s", out)
	}
}

func buildSampleRecorder() *Recorder {
	r := NewRecorder(0.5, 64)
	r.SetMeta("strategy", "memory-conscious")
	r.SetMeta("op", "write")
	r.J().Record(0, EvPhase, "run", "data")
	for i := 0; i < 12; i++ {
		t0 := float64(i)
		r.AddSpan("ost 0", "busy", t0, t0+0.8)
		r.AddSpan("node 1", "busy", t0, t0+0.3)
		r.AddGauge("ost 0", "queue", t0, float64(i%5))
		r.AddRate("node 1", "nic_bytes", t0, 1<<20)
	}
	r.J().Record(3, EvFault, "ost 0", "OSTSlowdown sev 5")
	r.J().Record(4.5, EvSuspect, "ost 0", "score 0.91")
	r.J().Record(5, EvBreakerOpen, "ost 0", "3 consecutive failures")
	r.J().RecordSeq(EvRepair, "run", "1 torn write rewritten")
	return r
}

func TestReportDeterministicAndSelfContained(t *testing.T) {
	render := func() string {
		r := buildSampleRecorder()
		var b bytes.Buffer
		if err := WriteReport(&b, r, Analyze(r, SatOptions{})); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	a, b := render(), render()
	if a != b {
		t.Fatal("report not byte-identical across reruns")
	}
	for _, banned := range []string{"<script", "http://", "https://", "@import"} {
		if strings.Contains(a, banned) {
			t.Fatalf("report not self-contained: found %q", banned)
		}
	}
	for _, want := range []string{"<svg", "ost 0", "breaker-open", "strategy=memory-conscious", "Saturation"} {
		if !strings.Contains(a, want) {
			t.Fatalf("report missing %q", want)
		}
	}
}

func TestReportEscapesDetails(t *testing.T) {
	r := NewRecorder(1, 8)
	r.AddSpan("ost 0", "busy", 0, 1)
	r.J().Record(0.5, EvFault, "ost 0", `<img src=x onerror=alert(1)> & "quotes"`)
	r.SetMeta("op", "<b>write</b>")
	var b bytes.Buffer
	if err := WriteReport(&b, r, Analyze(r, SatOptions{})); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if strings.Contains(out, "<img") || strings.Contains(out, "<b>write") {
		t.Fatal("report failed to escape user-controlled text")
	}
	if !strings.Contains(out, "&lt;img") {
		t.Fatal("escaped detail missing from report")
	}
}

func TestWriteCSV(t *testing.T) {
	r := buildSampleRecorder()
	var b bytes.Buffer
	if err := WriteCSV(&b, r); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if lines[0] != "row,entity,metric,kind,t_seconds,value,detail" {
		t.Fatalf("csv header wrong: %q", lines[0])
	}
	if !strings.Contains(out, "series,ost 0,busy,busy,") {
		t.Fatal("csv missing series rows")
	}
	if !strings.Contains(out, "event,ost 0,fault,,3,,OSTSlowdown sev 5") {
		t.Fatal("csv missing event row")
	}
	// Fields with commas/quotes must be quoted.
	r2 := NewRecorder(1, 8)
	r2.J().Record(1, EvFault, "ost 0", `a,b "c"`)
	var b2 bytes.Buffer
	if err := WriteCSV(&b2, r2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b2.String(), `"a,b ""c"""`) {
		t.Fatalf("csv quoting wrong:\n%s", b2.String())
	}
}
