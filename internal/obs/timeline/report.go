package timeline

import (
	"fmt"
	"html"
	"io"
	"strconv"
	"strings"
)

// Lane geometry: every series renders as one fixed-size SVG lane so
// the report needs no JavaScript and stays byte-identical across
// reruns (all coordinates are fixed-precision).
const (
	laneW   = 640
	laneH   = 44
	lanePad = 4
)

// maxLanes bounds the rendered series lanes (an exascale run has
// thousands of entities); the report states how many were omitted —
// a silent cap would read as "covered everything".
const maxLanes = 160

// maxEventRows bounds the event table the same way.
const maxEventRows = 400

// WriteReport renders the recorded timelines, the event overlay and
// the saturation analysis as one fully self-contained HTML page: no
// JavaScript, no external assets, every plot an inline SVG. The output
// is a pure function of the recorder's contents — byte-identical
// across reruns — so CI can diff it and archive it as an artifact.
func WriteReport(w io.Writer, rec *Recorder, sat *SatReport) error {
	b := &strings.Builder{}
	writeHead(b)
	views := rec.Snapshot()
	events := rec.J().Events()
	writeSummary(b, rec, views, events)
	writeSaturation(b, sat)
	writeLanes(b, rec, views, events)
	writeEventTable(b, events)
	b.WriteString("</body>\n</html>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// writeHead emits the embedded stylesheet, following the obs/history
// report conventions: role-based custom properties with a dark scheme
// via prefers-color-scheme, everything under .viz-root.
func writeHead(b *strings.Builder) {
	b.WriteString(`<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>mcio timeline</title>
<style>
.viz-root {
  color-scheme: light;
  --surface-1: #fcfcfb;
  --surface-2: #f1f0ee;
  --text-primary: #0b0b0b;
  --text-secondary: #52514e;
  --series-1: #2a78d6;
  --status-good: #0ca30c;
  --status-serious: #ec835a;
  --status-critical: #d03b3b;
  background: var(--surface-1);
  color: var(--text-primary);
  font: 14px/1.45 system-ui, sans-serif;
  margin: 0 auto;
  max-width: 72rem;
  padding: 1.5rem;
}
@media (prefers-color-scheme: dark) {
  .viz-root {
    color-scheme: dark;
    --surface-1: #1a1a19;
    --surface-2: #262625;
    --text-primary: #ffffff;
    --text-secondary: #c3c2b7;
    --series-1: #3987e5;
  }
}
h1 { font-size: 1.4rem; margin: 0 0 0.25rem; }
h2 { font-size: 1.1rem; margin: 1.5rem 0 0.5rem; }
.sub { color: var(--text-secondary); margin: 0 0 1rem; }
table { border-collapse: collapse; width: 100%; }
th, td { text-align: left; padding: 0.25rem 0.75rem 0.25rem 0;
         border-bottom: 1px solid var(--surface-2); }
th { color: var(--text-secondary); font-weight: 600; }
td.num, th.num { text-align: right; font-variant-numeric: tabular-nums; }
.lane { display: flex; align-items: center; gap: 0.75rem;
        padding: 0.25rem 0; border-bottom: 1px solid var(--surface-2); }
.lane .label { min-width: 13rem; font-variant-numeric: tabular-nums; }
.lane .label .metric { color: var(--text-secondary); }
.lane svg rect.bg { fill: var(--surface-2); }
.lane svg polyline { fill: none; stroke: var(--series-1); stroke-width: 1.5;
                     stroke-linejoin: round; }
.lane svg line.evt { stroke: var(--status-critical); stroke-width: 1.5; }
.lane svg line.evt-good { stroke: var(--status-good); }
.lane svg line.evt-warn { stroke: var(--status-serious); }
.badge { font-size: 0.8rem; font-weight: 600; padding: 0.05rem 0.4rem;
         border-radius: 4px; border: 1.5px solid var(--status-serious); }
</style>
</head>
<body class="viz-root">
`)
}

// ft renders a simulated time deterministically for report text.
func ft(t float64) string { return strconv.FormatFloat(t, 'g', 6, 64) }

func writeSummary(b *strings.Builder, rec *Recorder, views []SeriesView, events []Event) {
	b.WriteString("<h1>mcio timeline</h1>\n")
	fmt.Fprintf(b, "<p class=\"sub\">span %ss &middot; tick %ss &middot; %d series &middot; %d events",
		ft(rec.Span()), ft(rec.Tick()), len(views), len(events))
	for _, kv := range rec.Meta() {
		fmt.Fprintf(b, " &middot; %s", html.EscapeString(kv))
	}
	b.WriteString("</p>\n")
}

func writeSaturation(b *strings.Builder, sat *SatReport) {
	if sat == nil || (len(sat.Resources) == 0 && len(sat.Phases) == 0) {
		return
	}
	b.WriteString("<h2>Saturation</h2>\n<table>\n<tr><th>resource</th><th class=\"num\">peak util</th><th class=\"num\">mean util</th><th class=\"num\">knee</th><th class=\"num\">saturated at</th></tr>\n")
	for _, r := range sat.Resources {
		knee, satAt := "-", "-"
		if r.KneeT >= 0 {
			knee = ft(r.KneeT) + "s"
		}
		if r.SatT >= 0 {
			satAt = ft(r.SatT) + "s"
		}
		fmt.Fprintf(b, "<tr><td>%s</td><td class=\"num\">%.0f%%</td><td class=\"num\">%.0f%%</td><td class=\"num\">%s</td><td class=\"num\">%s</td></tr>\n",
			html.EscapeString(r.Entity), r.Peak*100, r.Mean*100, knee, satAt)
	}
	b.WriteString("</table>\n")
	if len(sat.Phases) > 0 {
		b.WriteString("<h2>Phases</h2>\n<table>\n<tr><th>phase</th><th class=\"num\">window</th><th>verdict</th></tr>\n")
		for _, p := range sat.Phases {
			verdict := fmt.Sprintf("busiest: %s (mean %.0f%%)", html.EscapeString(p.First), p.FirstUtil*100)
			if p.Saturated {
				verdict = fmt.Sprintf("first saturated: %s at %ss", html.EscapeString(p.First), ft(p.FirstT))
			}
			if p.First == "" {
				verdict = "idle"
			}
			fmt.Fprintf(b, "<tr><td>%s</td><td class=\"num\">%ss &ndash; %ss</td><td>%s</td></tr>\n",
				html.EscapeString(p.Name), ft(p.Start), ft(p.End), verdict)
		}
		b.WriteString("</table>\n")
	}
}

// evtClass maps journal kinds to marker colors: faults and breaker
// opens are critical, recoveries good, the rest warnings.
func evtClass(kind string) string {
	switch kind {
	case EvFault, EvBreakerOpen:
		return "evt"
	case EvBreakerClose, EvClear:
		return "evt evt-good"
	default:
		return "evt evt-warn"
	}
}

func writeLanes(b *strings.Builder, rec *Recorder, views []SeriesView, events []Event) {
	if len(views) == 0 {
		return
	}
	span := rec.Span()
	if span <= 0 {
		return
	}
	// Busy lanes first (the utilization picture), then the rest, both
	// in the snapshot's natural order; the cap keeps exascale runs
	// renderable and is reported, never silent.
	ordered := make([]SeriesView, 0, len(views))
	for _, v := range views {
		if v.Kind == Busy {
			ordered = append(ordered, v)
		}
	}
	for _, v := range views {
		if v.Kind != Busy {
			ordered = append(ordered, v)
		}
	}
	shown := ordered
	if len(shown) > maxLanes {
		shown = shown[:maxLanes]
	}
	b.WriteString("<h2>Timelines</h2>\n")
	fmt.Fprintf(b, "<p class=\"sub\">%d lanes", len(shown))
	if omitted := len(ordered) - len(shown); omitted > 0 {
		fmt.Fprintf(b, " (%d more series omitted; use -csv for the full set)", omitted)
	}
	b.WriteString(" &middot; markers are journal events on the lane's entity</p>\n")

	// Events per entity, preserving journal order.
	byEnt := map[string][]Event{}
	for _, ev := range events {
		if ev.T >= 0 && ev.Entity != "" {
			byEnt[ev.Entity] = append(byEnt[ev.Entity], ev)
		}
	}
	for _, v := range shown {
		writeLane(b, v, byEnt[v.Entity], span)
	}
}

func writeLane(b *strings.Builder, v SeriesView, events []Event, span float64) {
	peak := v.Max()
	scale := peak
	if v.Kind == Busy || scale <= 0 {
		scale = 1
		if peak > 1 {
			scale = peak // overlapping spans can exceed one tick of busy time
		}
	}
	unit := ""
	if v.Kind == Busy {
		unit = fmt.Sprintf(" peak %.0f%%", peak*100)
	} else {
		unit = " peak " + strconv.FormatFloat(peak, 'g', 4, 64)
	}
	fmt.Fprintf(b, "<div class=\"lane\"><span class=\"label\">%s <span class=\"metric\">%s</span></span>\n",
		html.EscapeString(v.Entity), html.EscapeString(v.Metric))
	fmt.Fprintf(b, "<svg width=\"%d\" height=\"%d\" role=\"img\"><title>%s %s (%s):%s</title>\n",
		laneW, laneH, html.EscapeString(v.Entity), html.EscapeString(v.Metric), v.Kind, html.EscapeString(unit))
	fmt.Fprintf(b, "<rect class=\"bg\" x=\"0\" y=\"0\" width=\"%d\" height=\"%d\"></rect>\n", laneW, laneH)

	// The value polyline: one point per bin, step-ish through bin
	// centers; fixed %.2f coordinates keep the bytes deterministic.
	x := func(t float64) float64 {
		if span <= 0 {
			return 0
		}
		return lanePad + (float64(laneW)-2*lanePad)*t/span
	}
	y := func(val float64) float64 {
		f := val / scale
		if f < 0 {
			f = 0
		}
		if f > 1 {
			f = 1
		}
		return float64(laneH) - lanePad - (float64(laneH)-2*lanePad)*f
	}
	if len(v.Values) > 0 {
		var pts strings.Builder
		for i, val := range v.Values {
			t := (float64(i) + 0.5) * v.Tick
			if t > span {
				t = span
			}
			fmt.Fprintf(&pts, "%.2f,%.2f ", x(t), y(val))
		}
		fmt.Fprintf(b, "<polyline points=\"%s\"></polyline>\n", strings.TrimSpace(pts.String()))
	}
	for _, ev := range events {
		fmt.Fprintf(b, "<line class=\"%s\" x1=\"%.2f\" y1=\"%d\" x2=\"%.2f\" y2=\"%d\"><title>%s @ %ss: %s</title></line>\n",
			evtClass(ev.Kind), x(ev.T), lanePad, x(ev.T), laneH-lanePad,
			html.EscapeString(ev.Kind), ft(ev.T), html.EscapeString(ev.Detail))
	}
	b.WriteString("</svg></div>\n")
}

func writeEventTable(b *strings.Builder, events []Event) {
	if len(events) == 0 {
		return
	}
	b.WriteString("<h2>Events</h2>\n")
	shown := events
	if len(shown) > maxEventRows {
		shown = shown[:maxEventRows]
		fmt.Fprintf(b, "<p class=\"sub\">first %d of %d events; use -csv for the full journal</p>\n",
			maxEventRows, len(events))
	}
	b.WriteString("<table>\n<tr><th class=\"num\">t (s)</th><th>kind</th><th>entity</th><th>detail</th></tr>\n")
	for _, ev := range shown {
		t := "-"
		if ev.T >= 0 {
			t = ft(ev.T)
		}
		fmt.Fprintf(b, "<tr><td class=\"num\">%s</td><td>%s</td><td>%s</td><td>%s</td></tr>\n",
			t, html.EscapeString(ev.Kind), html.EscapeString(ev.Entity), html.EscapeString(ev.Detail))
	}
	b.WriteString("</table>\n")
}

// WriteCSV exports every series bin and every journal event as one
// flat CSV: series rows carry (row=series, entity, metric, kind, t,
// value), event rows (row=event, entity, kind-as-metric, t, detail).
// Deterministic, same ordering as the report.
func WriteCSV(w io.Writer, rec *Recorder) error {
	b := &strings.Builder{}
	b.WriteString("row,entity,metric,kind,t_seconds,value,detail\n")
	for _, v := range rec.Snapshot() {
		for i, val := range v.Values {
			if !v.Set[i] {
				continue
			}
			fmt.Fprintf(b, "series,%s,%s,%s,%s,%s,\n",
				csvField(v.Entity), csvField(v.Metric), v.Kind,
				ft(float64(i)*v.Tick), strconv.FormatFloat(val, 'g', -1, 64))
		}
	}
	for _, ev := range rec.J().Events() {
		t := ""
		if ev.T >= 0 {
			t = ft(ev.T)
		}
		fmt.Fprintf(b, "event,%s,%s,,%s,,%s\n",
			csvField(ev.Entity), csvField(ev.Kind), t, csvField(ev.Detail))
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func csvField(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return "\"" + strings.ReplaceAll(s, "\"", "\"\"") + "\""
	}
	return s
}
