package obs

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// promRegistry builds a fixed registry exercising every instrument kind,
// dotted names, labels needing escaping, and multi-bucket histograms.
func promRegistry() *Registry {
	r := NewRegistry()
	r.Counter("mpi.bytes_sent", L("rank", "0")).Add(4096)
	r.Counter("mpi.bytes_sent", L("rank", "1")).Add(8192)
	r.Gauge("plan.groups", L("strategy", "two-phase")).Set(4)
	r.Gauge("mem.frac", L("note", `say "hi"`)).Set(0.25)
	h := r.Histogram("sim.round_seconds", L("op", "write"))
	for _, v := range []float64{0.125, 0.25, 0.25, 1.0} {
		h.Observe(v)
	}
	return r
}

func TestWriteMetricsPromGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMetricsProm(&buf, promRegistry()); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "metrics_prom.golden")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("prom exposition drifted from golden file\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

func TestWriteMetricsPromDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := WriteMetricsProm(&a, promRegistry()); err != nil {
		t.Fatal(err)
	}
	if err := WriteMetricsProm(&b, promRegistry()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two identical registries produced different prom output")
	}
}

func TestPromEscape(t *testing.T) {
	// The exposition format escapes exactly backslash, newline and double
	// quote inside label values — and backslash must be escaped first, or
	// the escapes of the other two get double-escaped.
	cases := map[string]string{
		`plain`:          `plain`,
		`back\slash`:     `back\\slash`,
		"new\nline":      `new\nline`,
		`quo"te`:         `quo\"te`,
		`\` + "\n" + `"`: `\\\n\"`,
		`already\n`:      `already\\n`, // literal backslash-n stays two chars
	}
	for in, want := range cases {
		if got := promEscape(in); got != want {
			t.Errorf("promEscape(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestPromLabelValueEscaping(t *testing.T) {
	// End to end: a label value holding all three special characters
	// must come out as a single parseable exposition line.
	r := NewRegistry()
	r.Counter("x.total", L("path", "a\\b\"c\nd")).Add(1)
	var buf bytes.Buffer
	if err := WriteMetricsProm(&buf, r); err != nil {
		t.Fatal(err)
	}
	want := "x_total{path=\"a\\\\b\\\"c\\nd\"} 1\n"
	if !strings.Contains(buf.String(), want) {
		t.Errorf("exposition output %q missing escaped series %q", buf.String(), want)
	}
	if strings.Contains(buf.String(), "\nd\"}") {
		t.Error("raw newline leaked into a label value")
	}
}

func TestPromNameSanitization(t *testing.T) {
	cases := map[string]string{
		"mpi.bytes_sent":  "mpi_bytes_sent",
		"sim.round-time":  "sim_round_time",
		"0weird":          "_0weird",
		"already_fine:ok": "already_fine:ok",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}
