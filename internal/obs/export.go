package obs

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteChromeTrace serializes the tracer's spans as Chrome trace-event
// JSON (the "JSON Array Format" Perfetto and chrome://tracing load).
// Events are hand-serialized so field order is stable and golden-testable:
// metadata events (process/thread names) first, then complete events
// sorted by timestamp — monotonic ts, parents before children. Timestamps
// are microseconds on the emitting clock (the simulator's simulated time).
func WriteChromeTrace(w io.Writer, t *Tracer) error {
	bw := &errWriter{w: w}
	bw.writeString(`{"displayTimeUnit":"ms","traceEvents":[`)
	first := true
	sep := func() {
		if !first {
			bw.writeString(",\n")
		} else {
			bw.writeString("\n")
		}
		first = false
	}
	if t != nil {
		for _, p := range t.processes() {
			sep()
			bw.writeString(fmt.Sprintf(`{"name":"process_name","ph":"M","pid":%d,"tid":0,"args":{"name":%s}}`,
				p.pid, jsonString(p.name)))
		}
		for _, th := range t.threadNames() {
			sep()
			bw.writeString(fmt.Sprintf(`{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":%s}}`,
				th.pid, th.tid, jsonString(th.name)))
		}
		for _, s := range t.Spans() {
			sep()
			bw.writeString(`{"name":` + jsonString(s.Name))
			bw.writeString(`,"ph":"X","ts":` + formatMicros(s.Start))
			bw.writeString(`,"dur":` + formatMicros(s.Dur))
			bw.writeString(`,"pid":` + strconv.Itoa(s.PID))
			bw.writeString(`,"tid":` + strconv.Itoa(s.TID))
			if len(s.Attrs) > 0 {
				bw.writeString(`,"args":{`)
				for i, a := range s.Attrs {
					if i > 0 {
						bw.writeString(",")
					}
					bw.writeString(jsonString(a.Key) + ":" + jsonString(a.Value))
				}
				bw.writeString("}")
			}
			bw.writeString("}")
		}
	}
	bw.writeString("\n]}\n")
	return bw.err
}

// formatMicros renders seconds as a microsecond decimal with stable,
// locale-free formatting (3 fractional digits = nanosecond resolution).
func formatMicros(seconds float64) string {
	s := strconv.FormatFloat(seconds*1e6, 'f', 3, 64)
	// Trim trailing zeros but keep integers bare for compactness.
	s = strings.TrimRight(s, "0")
	s = strings.TrimSuffix(s, ".")
	if s == "" || s == "-" || s == "-0" {
		return "0"
	}
	return s
}

// jsonString renders s as a JSON string literal.
func jsonString(s string) string {
	b, _ := json.Marshal(s) // cannot fail for a string
	return string(b)
}

// errWriter folds write errors so export code stays linear.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) writeString(s string) {
	if e.err != nil {
		return
	}
	_, e.err = io.WriteString(e.w, s)
}

// metricsSnapshot is the JSON envelope of a metrics export.
type metricsSnapshot struct {
	Metrics []MetricPoint `json:"metrics"`
}

// WriteMetricsJSON serializes the registry snapshot as indented JSON with
// deterministic ordering (points sorted by name/labels; label maps
// marshal with sorted keys).
func WriteMetricsJSON(w io.Writer, r *Registry) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(metricsSnapshot{Metrics: r.Snapshot()})
}

// WriteMetricsCSV serializes the registry snapshot as CSV with the
// columns name,labels,type,value,count,sum,min,max,p50,p99.
func WriteMetricsCSV(w io.Writer, r *Registry) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"name", "labels", "type", "value", "count", "sum", "min", "max", "p50", "p99"}); err != nil {
		return err
	}
	for _, p := range r.Snapshot() {
		value := strconv.FormatFloat(p.Value, 'g', -1, 64)
		if p.Type == "counter" {
			value = strconv.FormatInt(int64(p.Value), 10)
		}
		rec := []string{
			p.Name,
			labelsOf(p),
			p.Type,
			value,
			strconv.FormatInt(p.Count, 10),
			strconv.FormatFloat(p.Sum, 'g', -1, 64),
			strconv.FormatFloat(p.Min, 'g', -1, 64),
			strconv.FormatFloat(p.Max, 'g', -1, 64),
			strconv.FormatFloat(p.P50, 'g', -1, 64),
			strconv.FormatFloat(p.P99, 'g', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
