package obs

import (
	"math"
	"strconv"
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("mpi.msgs_sent", L("rank", "3"))
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	// Same name+labels resolves to the same instrument, regardless of
	// label order.
	c2 := r.Counter("mpi.msgs_sent", L("rank", "3"))
	if c2 != c {
		t.Fatal("same name+labels returned a different counter")
	}
	multi := r.Counter("x", L("b", "2"), L("a", "1"))
	if r.Counter("x", L("a", "1"), L("b", "2")) != multi {
		t.Fatal("label order changed instrument identity")
	}
}

func TestNilSafety(t *testing.T) {
	// Every instrument and the observer itself tolerate nil: the
	// disabled path of instrumented code.
	var o *Observer
	o.Counter("a").Inc()
	o.Counter("a").Add(5)
	o.Gauge("b").Set(1)
	o.Histogram("c").Observe(2)
	o.Tracer().Emit(Span{})
	var c *Counter
	c.Inc()
	c.Add(3)
	if c.Value() != 0 {
		t.Fatal("nil counter has a value")
	}
	var g *Gauge
	g.Set(7)
	if g.Value() != 0 {
		t.Fatal("nil gauge has a value")
	}
	var h *Histogram
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram recorded")
	}
	var tr *Tracer
	tr.Emit(Span{Name: "x"})
	ref := tr.Begin(1, 1, "y", 0)
	ref.Attr("k", "v")
	ref.End(1)
	if tr.Spans() != nil {
		t.Fatal("nil tracer has spans")
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("memmodel.avail_bytes", L("node", "0"))
	g.Set(1.5)
	g.Set(-3)
	if got := g.Value(); got != -3 {
		t.Fatalf("gauge = %v, want -3", got)
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("sim.round_seconds")
	for _, v := range []float64{0.5, 1, 2, 4} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	if h.Sum() != 7.5 {
		t.Fatalf("sum = %v, want 7.5", h.Sum())
	}
	var pt MetricPoint
	for _, p := range r.Snapshot() {
		if p.Name == "sim.round_seconds" {
			pt = p
		}
	}
	if pt.Name == "" {
		t.Fatal("histogram missing from snapshot")
	}
	if pt.Min != 0.5 || pt.Max != 4 {
		t.Fatalf("min/max = %v/%v, want 0.5/4", pt.Min, pt.Max)
	}
	if want := 7.5 / 4; math.Abs(pt.Mean-want) > 1e-12 {
		t.Fatalf("mean = %v, want %v", pt.Mean, want)
	}
	var total int64
	for _, b := range pt.Bucket {
		total += b.Count
	}
	if total != 4 {
		t.Fatalf("bucket counts sum to %d, want 4", total)
	}
}

func TestHistogramExtremes(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h")
	// Zero, negative, tiny, huge: all must land in some bucket without
	// panicking, and min/max must track the true range.
	for _, v := range []float64{0, -1, 1e-300, 1e300} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		r.Counter("b", L("x", "1")).Add(2)
		r.Counter("a").Inc()
		r.Gauge("c", L("n", "0")).Set(4)
		r.Histogram("d").Observe(1)
		r.Counter("b", L("x", "0")).Add(3)
		return r
	}
	s1, s2 := build().Snapshot(), build().Snapshot()
	if len(s1) != 5 || len(s2) != 5 {
		t.Fatalf("snapshot sizes %d/%d, want 5", len(s1), len(s2))
	}
	for i := range s1 {
		if s1[i].Name != s2[i].Name || labelsOf(s1[i]) != labelsOf(s2[i]) {
			t.Fatalf("snapshot order differs at %d: %v vs %v", i, s1[i], s2[i])
		}
	}
	// Sorted by name then labels.
	for i := 1; i < len(s1); i++ {
		a, b := s1[i-1], s1[i]
		if a.Name > b.Name || (a.Name == b.Name && labelsOf(a) > labelsOf(b)) {
			t.Fatalf("snapshot not sorted: %s{%s} before %s{%s}",
				a.Name, labelsOf(a), b.Name, labelsOf(b))
		}
	}
}

// TestRegistryConcurrency hammers one registry from many goroutines —
// the goroutine-per-rank mpi runtime shape — and checks totals. Run
// under -race this is the data-race proof for the whole metrics path.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const workers = 16
	const iters = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Half the workers share instruments, half resolve their own
			// each iteration (exercising the registry lock).
			shared := r.Counter("shared")
			for i := 0; i < iters; i++ {
				shared.Inc()
				r.Counter("per", L("w", strconv.Itoa(w%4))).Inc()
				r.Gauge("g", L("w", strconv.Itoa(w%4))).Set(float64(i))
				r.Histogram("h").Observe(float64(i%7) + 0.5)
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != workers*iters {
		t.Fatalf("shared = %d, want %d", got, workers*iters)
	}
	var per int64
	for w := 0; w < 4; w++ {
		per += r.Counter("per", L("w", strconv.Itoa(w))).Value()
	}
	if per != workers*iters {
		t.Fatalf("per total = %d, want %d", per, workers*iters)
	}
	if got := r.Histogram("h").Count(); got != workers*iters {
		t.Fatalf("histogram count = %d, want %d", got, workers*iters)
	}
}
