package obs

import (
	"fmt"
	"sync"
	"testing"
)

func TestPIDRegistration(t *testing.T) {
	tr := NewTracer()
	a := tr.PID("two-phase")
	b := tr.PID("memory-conscious")
	if a != 1 || b != 2 {
		t.Fatalf("pids = %d, %d; want 1, 2", a, b)
	}
	if tr.PID("two-phase") != a {
		t.Fatal("re-registration changed the pid")
	}
}

func TestSpansSorted(t *testing.T) {
	tr := NewTracer()
	// Emit out of order; a parent (longer) and child at the same start.
	tr.Emit(Span{PID: 1, TID: 1, Name: "child", Start: 2, Dur: 1})
	tr.Emit(Span{PID: 1, TID: 1, Name: "late", Start: 5, Dur: 1})
	tr.Emit(Span{PID: 1, TID: 1, Name: "parent", Start: 2, Dur: 3})
	tr.Emit(Span{PID: 1, TID: 1, Name: "early", Start: 0, Dur: 1})
	got := tr.Spans()
	want := []string{"early", "parent", "child", "late"}
	if len(got) != len(want) {
		t.Fatalf("got %d spans, want %d", len(got), len(want))
	}
	for i, s := range got {
		if s.Name != want[i] {
			t.Fatalf("span %d = %q, want %q", i, s.Name, want[i])
		}
	}
}

func TestBeginEnd(t *testing.T) {
	tr := NewTracer()
	ref := tr.Begin(1, 1, "round 0", 1.5, A("k", "v"))
	ref.Attr("k2", "v2")
	ref.End(2.0)
	spans := tr.Spans()
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(spans))
	}
	s := spans[0]
	if s.Start != 1.5 || s.Dur != 0.5 {
		t.Fatalf("span [%v, +%v], want [1.5, +0.5]", s.Start, s.Dur)
	}
	if len(s.Attrs) != 2 || s.Attrs[0].Key != "k" || s.Attrs[1].Key != "k2" {
		t.Fatalf("attrs = %v", s.Attrs)
	}
	// End before start clamps to zero duration.
	tr.Begin(1, 1, "backwards", 3).End(2)
	for _, s := range tr.Spans() {
		if s.Name == "backwards" && s.Dur != 0 {
			t.Fatalf("backwards span has dur %v, want 0", s.Dur)
		}
	}
}

// TestTracerConcurrency emits from many goroutines across tracks; under
// -race this proves the sharded sink is safe.
func TestTracerConcurrency(t *testing.T) {
	tr := NewTracer()
	const workers = 8
	const spans = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			pid := tr.PID(fmt.Sprintf("proc-%d", w%3))
			for i := 0; i < spans; i++ {
				tr.Begin(pid, w, "work", float64(i)).End(float64(i) + 0.5)
			}
		}(w)
	}
	wg.Wait()
	if got := len(tr.Spans()); got != workers*spans {
		t.Fatalf("got %d spans, want %d", got, workers*spans)
	}
}
