package obs

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func ledgerFixture() *RunRecord {
	return &RunRecord{
		Name:   "fig6",
		Params: map[string]string{"scale": "65536", "seed": "1"},
		Entries: []RunEntry{
			{Name: "two-phase/mem=1.0", BandwidthMBps: 1000, WallSeconds: 2.0, Rounds: 16,
				Blame: map[string]float64{"shuffle": 1.2, "write": 0.8}},
			{Name: "memory-conscious/mem=1.0", BandwidthMBps: 1200, WallSeconds: 1.7, Rounds: 16},
		},
	}
}

func TestRunRecordRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_fig6.json")
	rec := ledgerFixture()
	if err := SaveRunRecord(path, rec); err != nil {
		t.Fatal(err)
	}
	got, err := LoadRunRecord(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != RunRecordVersion {
		t.Errorf("version = %d, want %d", got.Version, RunRecordVersion)
	}
	if got.Name != rec.Name || len(got.Entries) != len(rec.Entries) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if got.Entries[0].Blame["shuffle"] != 1.2 {
		t.Errorf("blame lost in round trip: %+v", got.Entries[0])
	}
}

func TestLoadRunRecordRejectsNewerVersion(t *testing.T) {
	// Bypass Save (which restamps the version) by writing by hand.
	path := filepath.Join(t.TempDir(), "v999.json")
	if err := os.WriteFile(path, []byte(`{"version": 999, "name": "x", "entries": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := LoadRunRecord(path)
	if err == nil {
		t.Fatal("expected version error")
	}
	if !errors.Is(err, ErrNewerVersion) {
		t.Errorf("version error not tagged ErrNewerVersion: %v", err)
	}
	if !strings.Contains(err.Error(), path) {
		t.Errorf("version error does not name the file: %v", err)
	}
}

func TestLoadRunRecordV1BackwardCompatible(t *testing.T) {
	// A v1 record (no timestamp, host or telemetry) must load cleanly
	// with the new fields absent.
	path := filepath.Join(t.TempDir(), "v1.json")
	v1 := `{"version": 1, "name": "fig6", "params": {"seed": "1"},
	        "entries": [{"name": "a", "bandwidth_mbps": 100, "wall_seconds": 2}]}`
	if err := os.WriteFile(path, []byte(v1), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := LoadRunRecord(path)
	if err != nil {
		t.Fatal(err)
	}
	if r.Version != 1 || r.UnixNanos != 0 || r.Host != nil || r.Telemetry != nil {
		t.Fatalf("v1 record gained phantom v2 fields: %+v", r)
	}
	if r.Entries[0].BandwidthMBps != 100 {
		t.Fatalf("v1 entries mangled: %+v", r.Entries)
	}
}

func TestRunRecordV2RoundTripKeepsProvenance(t *testing.T) {
	path := filepath.Join(t.TempDir(), "v2.json")
	rec := ledgerFixture()
	rec.UnixNanos = 1754524800000000000
	rec.Host = CaptureHost()
	rec.Telemetry = &Telemetry{HostWallSeconds: 1.5, TotalAllocBytes: 4096, PeakHeapBytes: 1 << 20}
	if err := SaveRunRecord(path, rec); err != nil {
		t.Fatal(err)
	}
	got, err := LoadRunRecord(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != RunRecordVersion || got.UnixNanos != rec.UnixNanos {
		t.Fatalf("v2 header lost: %+v", got)
	}
	if got.Host == nil || got.Host.GoVersion == "" || got.Host.GOMAXPROCS <= 0 || got.Host.NumCPU <= 0 || got.Host.GitCommit == "" {
		t.Fatalf("host stamp incomplete: %+v", got.Host)
	}
	if got.Telemetry == nil || got.Telemetry.TotalAllocBytes != 4096 || got.Telemetry.PeakHeapBytes != 1<<20 {
		t.Fatalf("telemetry lost: %+v", got.Telemetry)
	}
}

func TestDiffIdenticalLedgersClean(t *testing.T) {
	old, new := ledgerFixture(), ledgerFixture()
	res := DiffRunRecords(old, new, DiffOptions{})
	if n := len(res.Regressions()); n != 0 {
		t.Fatalf("identical ledgers produced %d regressions: %s", n, res.Render())
	}
	if !strings.Contains(res.Render(), "no regressions") {
		t.Errorf("render missing clean verdict:\n%s", res.Render())
	}
}

func TestDiffFlagsBandwidthDrop(t *testing.T) {
	old, new := ledgerFixture(), ledgerFixture()
	new.Entries[0].BandwidthMBps = 900 // -10%, beyond the 5% default
	res := DiffRunRecords(old, new, DiffOptions{})
	regs := res.Regressions()
	if len(regs) != 1 {
		t.Fatalf("got %d regressions, want 1: %s", len(regs), res.Render())
	}
	if regs[0].Name != "two-phase/mem=1.0" || !strings.Contains(regs[0].RegressionWhy, "bandwidth") {
		t.Errorf("wrong regression: %+v", regs[0])
	}
	// A 10% drop passes under a 15% tolerance.
	res = DiffRunRecords(old, new, DiffOptions{BandwidthTol: 0.15})
	if n := len(res.Regressions()); n != 0 {
		t.Errorf("10%% drop flagged under 15%% tolerance: %d", n)
	}
}

func TestDiffFlagsWallRiseAndMissing(t *testing.T) {
	old, new := ledgerFixture(), ledgerFixture()
	new.Entries[1].WallSeconds = 2.0 // +17.6%
	new.Entries = new.Entries[1:]    // drop the two-phase entry entirely
	res := DiffRunRecords(old, new, DiffOptions{})
	regs := res.Regressions()
	if len(regs) != 2 {
		t.Fatalf("got %d regressions, want 2: %s", len(regs), res.Render())
	}
	var sawMissing, sawWall bool
	for _, r := range regs {
		if r.Missing {
			sawMissing = true
		}
		if strings.Contains(r.RegressionWhy, "wall time") {
			sawWall = true
		}
	}
	if !sawMissing || !sawWall {
		t.Errorf("missing=%v wall=%v, want both: %s", sawMissing, sawWall, res.Render())
	}
}

func TestDiffReportsAddedEntries(t *testing.T) {
	old, new := ledgerFixture(), ledgerFixture()
	new.Entries = append(new.Entries, RunEntry{Name: "extra", BandwidthMBps: 1})
	res := DiffRunRecords(old, new, DiffOptions{})
	if n := len(res.Regressions()); n != 0 {
		t.Fatalf("added entry counted as regression: %s", res.Render())
	}
	if !strings.Contains(res.Render(), "new entry") {
		t.Errorf("render missing added entry:\n%s", res.Render())
	}
}
