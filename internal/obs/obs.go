// Package obs is the observability layer of the collective-I/O stack: a
// metrics registry (counters, gauges, histograms with labels) and a
// span-based structured tracer, plus exporters for Chrome/Perfetto
// trace-event JSON and metrics snapshots (JSON/CSV).
//
// The package has no dependencies on the rest of the repository, so every
// layer — the goroutine-per-rank mpi runtime, the pfs file store, the
// planners and the cost engine — can publish into it without import
// cycles.
//
// Design constraints, in order:
//
//  1. Cheap enough to stay enabled. Counters and gauges are single atomic
//     words; histograms are fixed arrays of atomic buckets; the tracer
//     appends to sharded, mutex-protected sinks. Instrument lookup (which
//     builds a label key) is meant for setup time — hot paths pre-resolve
//     instruments once and then pay only the atomic operation.
//  2. A nil fast path. Every method is safe on a nil receiver and costs a
//     branch: a nil *Registry returns nil instruments, a nil *Counter
//     drops the Add, a nil *Tracer drops the span. Code can therefore be
//     instrumented unconditionally and wired to a sink only when a caller
//     asks for observability.
//  3. Safe for concurrent use. The mpi runtime runs one goroutine per
//     rank; all sinks accept concurrent writers.
//
// Time is explicit. The simulator owns a simulated clock, so spans take
// their timestamps as arguments (seconds, converted to microseconds on
// export) instead of reading a wall clock.
package obs

// Label is one key=value dimension attached to a metric.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Observer bundles the two sinks a component may publish into. Either
// field (or the Observer itself) may be nil; all publishing paths treat
// nil as "disabled".
type Observer struct {
	Metrics *Registry
	Trace   *Tracer
}

// New returns an Observer with a fresh registry and tracer.
func New() *Observer {
	return &Observer{Metrics: NewRegistry(), Trace: NewTracer()}
}

// Counter resolves a counter on the observer's registry; nil-safe.
func (o *Observer) Counter(name string, labels ...Label) *Counter {
	if o == nil {
		return nil
	}
	return o.Metrics.Counter(name, labels...)
}

// Gauge resolves a gauge on the observer's registry; nil-safe.
func (o *Observer) Gauge(name string, labels ...Label) *Gauge {
	if o == nil {
		return nil
	}
	return o.Metrics.Gauge(name, labels...)
}

// Histogram resolves a histogram on the observer's registry; nil-safe.
func (o *Observer) Histogram(name string, labels ...Label) *Histogram {
	if o == nil {
		return nil
	}
	return o.Metrics.Histogram(name, labels...)
}

// Tracer returns the observer's tracer; nil-safe (returns nil when
// disabled, and a nil *Tracer is itself a valid no-op sink).
func (o *Observer) Tracer() *Tracer {
	if o == nil {
		return nil
	}
	return o.Trace
}
