package obs

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"os/exec"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
)

// RunRecordVersion is the schema version stamped into every ledger
// file. Bump it only for incompatible changes; readers reject files
// with a newer major version than they understand. Version 2 added the
// record timestamp, host metadata and host-side resource telemetry;
// version-1 records load unchanged (the new fields read as absent).
const RunRecordVersion = 2

// ErrNewerVersion marks a ledger whose version is newer than this
// binary supports. Callers that stream over many records (the history
// loader) test for it with errors.Is to abort rather than skip: a
// too-new record is an operator error, not a corrupt file.
var ErrNewerVersion = errors.New("run record version newer than supported")

// RunRecord is the stable on-disk record of one benchmark run — the
// "run ledger". It is what `mcio bench -out` writes and `mcio diff`
// compares, so its JSON shape is a compatibility surface: fields may be
// added, but existing names and meanings must not change.
type RunRecord struct {
	Version int    `json:"version"`
	Name    string `json:"name"` // experiment name (fig6, trajectory, ...)
	// UnixNanos is when the run started, as nanoseconds since the Unix
	// epoch (v2). Zero on v1 records; the history loader and `mcio diff`
	// order records by it, falling back to file order on ties.
	UnixNanos int64             `json:"unix_nanos,omitempty"`
	Host      *HostInfo         `json:"host,omitempty"`      // v2: provenance of the producing host
	Telemetry *Telemetry        `json:"telemetry,omitempty"` // v2: host-side resource usage around the run
	Params    map[string]string `json:"params,omitempty"`    // scale, seed, op, ... as strings
	Entries   []RunEntry        `json:"entries"`
}

// HostInfo is the provenance stamp of the machine and build that
// produced a record — enough to explain why two records of the same
// experiment might lawfully differ.
type HostInfo struct {
	GitCommit  string `json:"git_commit,omitempty"` // short revision, or "local" when unknown
	GoVersion  string `json:"go_version,omitempty"`
	GOMAXPROCS int    `json:"gomaxprocs,omitempty"`
	NumCPU     int    `json:"num_cpu,omitempty"`
}

// Telemetry is host-side resource usage captured around one experiment
// via runtime.ReadMemStats — real wall clock and allocator pressure, as
// opposed to the simulated wall time inside the entries.
type Telemetry struct {
	HostWallSeconds float64 `json:"host_wall_seconds,omitempty"`
	TotalAllocBytes uint64  `json:"total_alloc_bytes,omitempty"` // heap bytes allocated during the run
	PeakHeapBytes   uint64  `json:"peak_heap_bytes,omitempty"`   // heap footprint high-water (HeapSys)
}

// CaptureHost stamps the current process's provenance: git commit
// (from build info when the binary was stamped, else the git CLI, else
// "local"), Go version, GOMAXPROCS and CPU count.
func CaptureHost() *HostInfo {
	return &HostInfo{
		GitCommit:  gitCommit(),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
}

// gitCommit finds the short revision: embedded VCS build info first
// (set for `go build` in a checkout), then `git rev-parse` (covers
// `go run`), else "local".
func gitCommit() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" && len(s.Value) >= 12 {
				return s.Value[:12]
			}
		}
	}
	out, err := exec.Command("git", "rev-parse", "--short=12", "HEAD").Output()
	if rev := strings.TrimSpace(string(out)); err == nil && rev != "" {
		return rev
	}
	return "local"
}

// RunEntry is one measured configuration within a run (one sweep point:
// a strategy at a memory fraction, a trajectory step, a fault case).
type RunEntry struct {
	Name          string             `json:"name"`
	BandwidthMBps float64            `json:"bandwidth_mbps,omitempty"`
	WallSeconds   float64            `json:"wall_seconds,omitempty"`
	Rounds        int                `json:"rounds,omitempty"`
	Blame         map[string]float64 `json:"blame,omitempty"`   // phase -> critical-path seconds
	Metrics       map[string]float64 `json:"metrics,omitempty"` // free-form extras (peak_buffer_mb, ...)
}

// WriteRunRecord writes the record as indented JSON with entries in
// their given order and a trailing newline.
func WriteRunRecord(w io.Writer, r *RunRecord) error {
	r.Version = RunRecordVersion
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// SaveRunRecord writes the record to a file.
func SaveRunRecord(path string, r *RunRecord) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteRunRecord(f, r); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ParseRunRecord decodes a ledger from bytes, rejecting versions newer
// than this binary supports (test with errors.Is(err, ErrNewerVersion)).
func ParseRunRecord(b []byte) (*RunRecord, error) {
	var r RunRecord
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, err
	}
	if r.Version > RunRecordVersion {
		return nil, fmt.Errorf("%w: %d > %d", ErrNewerVersion, r.Version, RunRecordVersion)
	}
	return &r, nil
}

// LoadRunRecord reads a ledger file, rejecting unknown versions.
func LoadRunRecord(path string) (*RunRecord, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	r, err := ParseRunRecord(b)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

// DiffOptions sets the relative thresholds above which a change counts
// as a regression. Zero values mean "use the default" (5%).
type DiffOptions struct {
	BandwidthTol float64 // relative bandwidth drop tolerated, e.g. 0.05
	WallTol      float64 // relative wall-time rise tolerated
}

// DefaultDiffTol is the relative change tolerated before a metric
// movement counts as a regression.
const DefaultDiffTol = 0.05

func (o DiffOptions) bandwidthTol() float64 {
	if o.BandwidthTol > 0 {
		return o.BandwidthTol
	}
	return DefaultDiffTol
}

func (o DiffOptions) wallTol() float64 {
	if o.WallTol > 0 {
		return o.WallTol
	}
	return DefaultDiffTol
}

// EntryDelta is the comparison of one entry across two ledgers.
type EntryDelta struct {
	Name          string
	OldBandwidth  float64
	NewBandwidth  float64
	BandwidthRel  float64 // (new-old)/old, 0 if old == 0
	OldWall       float64
	NewWall       float64
	WallRel       float64
	Missing       bool // present in old, absent in new
	Added         bool // absent in old, present in new
	Regression    bool
	RegressionWhy string
}

// DiffResult is the outcome of comparing two run ledgers.
type DiffResult struct {
	OldName string
	NewName string
	Deltas  []EntryDelta
}

// Regressions returns the deltas flagged as regressions.
func (d *DiffResult) Regressions() []EntryDelta {
	var out []EntryDelta
	for _, e := range d.Deltas {
		if e.Regression {
			out = append(out, e)
		}
	}
	return out
}

// DiffRunRecords compares two ledgers entry-by-entry (matched by entry
// name). A regression is a bandwidth drop beyond tolerance, a wall-time
// rise beyond tolerance, or an entry that disappeared. New entries are
// reported but are not regressions.
func DiffRunRecords(old, new *RunRecord, opt DiffOptions) *DiffResult {
	res := &DiffResult{OldName: old.Name, NewName: new.Name}
	newByName := make(map[string]RunEntry, len(new.Entries))
	seen := make(map[string]bool, len(new.Entries))
	for _, e := range new.Entries {
		newByName[e.Name] = e
	}
	for _, oe := range old.Entries {
		ne, ok := newByName[oe.Name]
		if !ok {
			res.Deltas = append(res.Deltas, EntryDelta{
				Name: oe.Name, OldBandwidth: oe.BandwidthMBps, OldWall: oe.WallSeconds,
				Missing: true, Regression: true, RegressionWhy: "entry missing from new ledger",
			})
			continue
		}
		seen[oe.Name] = true
		d := EntryDelta{
			Name:         oe.Name,
			OldBandwidth: oe.BandwidthMBps, NewBandwidth: ne.BandwidthMBps,
			OldWall: oe.WallSeconds, NewWall: ne.WallSeconds,
		}
		if oe.BandwidthMBps > 0 {
			d.BandwidthRel = (ne.BandwidthMBps - oe.BandwidthMBps) / oe.BandwidthMBps
		}
		if oe.WallSeconds > 0 {
			d.WallRel = (ne.WallSeconds - oe.WallSeconds) / oe.WallSeconds
		}
		var why []string
		if d.BandwidthRel < -opt.bandwidthTol() {
			why = append(why, fmt.Sprintf("bandwidth %.1f%% below baseline (tol %.1f%%)",
				-d.BandwidthRel*100, opt.bandwidthTol()*100))
		}
		if d.WallRel > opt.wallTol() {
			why = append(why, fmt.Sprintf("wall time %.1f%% above baseline (tol %.1f%%)",
				d.WallRel*100, opt.wallTol()*100))
		}
		if len(why) > 0 {
			d.Regression = true
			d.RegressionWhy = strings.Join(why, "; ")
		}
		res.Deltas = append(res.Deltas, d)
	}
	var added []string
	for name := range newByName {
		if !seen[name] {
			added = append(added, name)
		}
	}
	sort.Strings(added)
	for _, name := range added {
		ne := newByName[name]
		res.Deltas = append(res.Deltas, EntryDelta{
			Name: name, NewBandwidth: ne.BandwidthMBps, NewWall: ne.WallSeconds, Added: true,
		})
	}
	return res
}

// Render formats the diff as an aligned text table, one row per entry,
// flagged rows marked REGRESSION.
func (d *DiffResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "ledger diff: %s -> %s\n", d.OldName, d.NewName)
	fmt.Fprintf(&b, "%-28s %12s %12s %8s %10s %10s %8s  %s\n",
		"entry", "old MB/s", "new MB/s", "Δbw", "old wall", "new wall", "Δwall", "status")
	for _, e := range d.Deltas {
		status := "ok"
		switch {
		case e.Missing:
			status = "REGRESSION: " + e.RegressionWhy
		case e.Added:
			status = "new entry"
		case e.Regression:
			status = "REGRESSION: " + e.RegressionWhy
		}
		fmt.Fprintf(&b, "%-28s %12s %12s %8s %10s %10s %8s  %s\n",
			e.Name,
			fmtLedgerVal(e.OldBandwidth), fmtLedgerVal(e.NewBandwidth), fmtLedgerRel(e.BandwidthRel, e.Missing || e.Added),
			fmtLedgerSec(e.OldWall), fmtLedgerSec(e.NewWall), fmtLedgerRel(e.WallRel, e.Missing || e.Added),
			status)
	}
	n := len(d.Regressions())
	if n == 0 {
		fmt.Fprintf(&b, "no regressions (%d entries compared)\n", len(d.Deltas))
	} else {
		fmt.Fprintf(&b, "%d regression(s)\n", n)
	}
	return b.String()
}

func fmtLedgerVal(v float64) string {
	if v == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f", v)
}

func fmtLedgerSec(v float64) string {
	if v == 0 {
		return "-"
	}
	return fmt.Sprintf("%.4fs", v)
}

func fmtLedgerRel(rel float64, na bool) string {
	if na {
		return "-"
	}
	if math.Abs(rel) < 5e-5 {
		return "0.0%"
	}
	return fmt.Sprintf("%+.1f%%", rel*100)
}
