package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds named, labelled instruments. Lookup methods are safe for
// concurrent use and idempotent: the same (name, labels) always returns
// the same instrument. Lookups build a canonical key and take a lock, so
// hot paths should resolve their instruments once up front and keep the
// pointers; the instruments themselves are lock-free.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	keys     map[string]instrumentKey // canonical key -> parsed identity
}

// instrumentKey remembers an instrument's identity for snapshots.
type instrumentKey struct {
	name   string
	labels []Label
	kind   string // "counter", "gauge", "histogram"
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		keys:     map[string]instrumentKey{},
	}
}

// canonicalLabels returns a sorted copy of labels.
func canonicalLabels(labels []Label) []Label {
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	return ls
}

// labelString renders sorted labels as "k=v,k2=v2".
func labelString(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String()
}

// key builds the registry key for an instrument.
func key(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	return name + "{" + labelString(labels) + "}"
}

// Counter resolves (creating if absent) a monotonically increasing
// counter. Returns nil on a nil registry.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	ls := canonicalLabels(labels)
	k := key(name, ls)
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[k]
	if c == nil {
		c = &Counter{}
		r.counters[k] = c
		r.keys[k] = instrumentKey{name: name, labels: ls, kind: "counter"}
	}
	return c
}

// Gauge resolves (creating if absent) a last-value gauge. Returns nil on
// a nil registry.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	ls := canonicalLabels(labels)
	k := key(name, ls)
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[k]
	if g == nil {
		g = &Gauge{}
		r.gauges[k] = g
		r.keys[k] = instrumentKey{name: name, labels: ls, kind: "gauge"}
	}
	return g
}

// Histogram resolves (creating if absent) a histogram with power-of-two
// buckets. Returns nil on a nil registry.
func (r *Registry) Histogram(name string, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	ls := canonicalLabels(labels)
	k := key(name, ls)
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[k]
	if h == nil {
		h = newHistogram()
		r.hists[k] = h
		r.keys[k] = instrumentKey{name: name, labels: ls, kind: "histogram"}
	}
	return h
}

// Counter is a monotonically increasing sum. The zero value is ready to
// use; a nil *Counter drops every update.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n; nil-safe.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one; nil-safe.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current sum; 0 on nil.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-written float64 value. The zero value is ready to use;
// a nil *Gauge drops every update.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores the value; nil-safe.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the last stored value; 0 on nil.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// histBuckets is the number of exponential histogram buckets. Bucket i
// counts observations v with v <= 2^(i+histMinExp); the last bucket is a
// catch-all (+Inf).
const (
	histBuckets = 64
	histMinExp  = -24 // 2^-24 ≈ 60 ns when observing seconds
)

// Histogram accumulates observations into lock-free power-of-two
// buckets, plus count/sum/min/max. A nil *Histogram drops every update.
type Histogram struct {
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-updated
	minBits atomic.Uint64 // float64 bits; valid only when count > 0
	maxBits atomic.Uint64
	buckets [histBuckets]atomic.Int64
}

func newHistogram() *Histogram {
	h := &Histogram{}
	h.minBits.Store(math.Float64bits(math.Inf(1)))
	h.maxBits.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// bucketFor maps an observation to its bucket index.
func bucketFor(v float64) int {
	if v <= 0 {
		return 0
	}
	exp := math.Ilogb(v)
	// Bucket upper bound 2^e must be >= v: round up for non-powers of two.
	if v > math.Ldexp(1, exp) {
		exp++
	}
	idx := exp - histMinExp
	if idx < 0 {
		idx = 0
	}
	if idx >= histBuckets {
		idx = histBuckets - 1
	}
	return idx
}

// Observe records one observation; nil-safe.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			break
		}
	}
	for {
		old := h.minBits.Load()
		if math.Float64frombits(old) <= v {
			break
		}
		if h.minBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	for {
		old := h.maxBits.Load()
		if math.Float64frombits(old) >= v {
			break
		}
		if h.maxBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	h.buckets[bucketFor(v)].Add(1)
}

// Count returns the number of observations; 0 on nil.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations; 0 on nil.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Quantile estimates the p-quantile of the observations by linear
// interpolation within the power-of-two bucket containing the rank.
// p <= 0 returns the exact minimum and p >= 1 the exact maximum; the
// estimate is clamped to [Min, Max] so interpolation never invents a
// value outside the observed range. Returns 0 with no observations or
// on a nil histogram.
func (h *Histogram) Quantile(p float64) float64 {
	if h == nil {
		return 0
	}
	count := h.count.Load()
	if count == 0 {
		return 0
	}
	min := math.Float64frombits(h.minBits.Load())
	max := math.Float64frombits(h.maxBits.Load())
	if p <= 0 {
		return min
	}
	if p >= 1 {
		return max
	}
	rank := p * float64(count)
	var cum int64
	for i := 0; i < histBuckets; i++ {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		if float64(cum)+float64(n) >= rank {
			lo := 0.0
			if i > 0 {
				lo = math.Ldexp(1, i-1+histMinExp)
			}
			hi := math.Ldexp(1, i+histMinExp)
			v := lo + (hi-lo)*(rank-float64(cum))/float64(n)
			return math.Min(math.Max(v, min), max)
		}
		cum += n
	}
	return max
}

// Bucket is one non-empty histogram bucket in a snapshot.
type Bucket struct {
	UpperBound float64 `json:"le"` // observations are <= this bound
	Count      int64   `json:"count"`
}

// MetricPoint is one instrument's state in a snapshot. Field order is the
// JSON/CSV column order and is part of the exporter's stable format.
type MetricPoint struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Type   string            `json:"type"`
	Value  float64           `json:"value,omitempty"` // counter/gauge value
	Count  int64             `json:"count,omitempty"` // histogram only
	Sum    float64           `json:"sum,omitempty"`
	Min    float64           `json:"min,omitempty"`
	Max    float64           `json:"max,omitempty"`
	Mean   float64           `json:"mean,omitempty"`
	P50    float64           `json:"p50,omitempty"` // bucket-interpolated median
	P99    float64           `json:"p99,omitempty"`
	Bucket []Bucket          `json:"buckets,omitempty"`
}

// Snapshot returns every instrument's current state, sorted by name then
// label string — a stable order for export and diffing. Nil-safe.
func (r *Registry) Snapshot() []MetricPoint {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	keys := make([]string, 0, len(r.keys))
	for k := range r.keys {
		keys = append(keys, k)
	}
	idents := make(map[string]instrumentKey, len(r.keys))
	for k, v := range r.keys {
		idents[k] = v
	}
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()

	sort.Strings(keys)
	out := make([]MetricPoint, 0, len(keys))
	for _, k := range keys {
		id := idents[k]
		p := MetricPoint{Name: id.name, Type: id.kind}
		if len(id.labels) > 0 {
			p.Labels = make(map[string]string, len(id.labels))
			for _, l := range id.labels {
				p.Labels[l.Key] = l.Value
			}
		}
		switch id.kind {
		case "counter":
			p.Value = float64(counters[k].Value())
		case "gauge":
			p.Value = gauges[k].Value()
		case "histogram":
			h := hists[k]
			p.Count = h.count.Load()
			p.Sum = math.Float64frombits(h.sumBits.Load())
			if p.Count > 0 {
				p.Min = math.Float64frombits(h.minBits.Load())
				p.Max = math.Float64frombits(h.maxBits.Load())
				p.Mean = p.Sum / float64(p.Count)
				p.P50 = h.Quantile(0.50)
				p.P99 = h.Quantile(0.99)
			}
			for i := range h.buckets {
				if n := h.buckets[i].Load(); n > 0 {
					p.Bucket = append(p.Bucket, Bucket{
						UpperBound: math.Ldexp(1, i+histMinExp),
						Count:      n,
					})
				}
			}
		}
		out = append(out, p)
	}
	return out
}

// labelsOf reconstructs the sorted label string of a point for CSV.
func labelsOf(p MetricPoint) string {
	if len(p.Labels) == 0 {
		return ""
	}
	ls := make([]Label, 0, len(p.Labels))
	for k, v := range p.Labels {
		ls = append(ls, Label{Key: k, Value: v})
	}
	return labelString(canonicalLabels(ls))
}

// String renders the snapshot compactly for logs and tests.
func (r *Registry) String() string {
	var b strings.Builder
	for _, p := range r.Snapshot() {
		if p.Type == "histogram" {
			fmt.Fprintf(&b, "%s{%s} histogram count=%d sum=%g\n", p.Name, labelsOf(p), p.Count, p.Sum)
			continue
		}
		fmt.Fprintf(&b, "%s{%s} %s %g\n", p.Name, labelsOf(p), p.Type, p.Value)
	}
	return b.String()
}
