package obs

import (
	"math"
	"testing"
)

func TestQuantileEmptyAndNil(t *testing.T) {
	var nilH *Histogram
	if got := nilH.Quantile(0.5); got != 0 {
		t.Errorf("nil histogram quantile = %v, want 0", got)
	}
	if got := newHistogram().Quantile(0.5); got != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", got)
	}
}

func TestQuantileZeroWidthBucket(t *testing.T) {
	// When every observation is the same value the observed range has
	// zero width (min == max), including the degenerate all-zero case
	// where interpolation inside bucket 0 would otherwise invent a
	// positive value. Property: for any p the quantile is exactly that
	// value — never NaN, never outside the range.
	for _, v := range []float64{0, 0.125, 1, 3.5, 1e-300, 1e12} {
		h := newHistogram()
		for i := 0; i < 17; i++ {
			h.Observe(v)
		}
		for p := 0.0; p <= 1.0; p += 0.01 {
			got := h.Quantile(p)
			if math.IsNaN(got) {
				t.Fatalf("v=%g p=%v: quantile is NaN", v, p)
			}
			if got != v {
				t.Fatalf("v=%g p=%v: quantile = %v, want exactly that value", v, p, got)
			}
		}
	}
}

func TestQuantileEndpoints(t *testing.T) {
	h := newHistogram()
	for _, v := range []float64{0.1, 0.2, 0.4, 0.8} {
		h.Observe(v)
	}
	if got := h.Quantile(0); got != 0.1 {
		t.Errorf("p0 = %v, want exact min 0.1", got)
	}
	if got := h.Quantile(-3); got != 0.1 {
		t.Errorf("p<0 = %v, want exact min 0.1", got)
	}
	if got := h.Quantile(1); got != 0.8 {
		t.Errorf("p1 = %v, want exact max 0.8", got)
	}
	if got := h.Quantile(2); got != 0.8 {
		t.Errorf("p>1 = %v, want exact max 0.8", got)
	}
}

func TestQuantileSingleBucketInterpolates(t *testing.T) {
	// 100 observations of 0.75 land in the (0.5, 1] bucket. The p50
	// estimate interpolates halfway into the bucket: 0.5 + 0.5*0.5.
	h := newHistogram()
	for i := 0; i < 100; i++ {
		h.Observe(0.75)
	}
	if got, want := h.Quantile(0.5), 0.75; math.Abs(got-want) > 1e-12 {
		t.Errorf("p50 = %v, want %v", got, want)
	}
	// p0.99 interpolates near the bucket top but clamps to the max.
	if got := h.Quantile(0.99); got != 0.75 {
		t.Errorf("p99 = %v, want clamp to max 0.75", got)
	}
}

func TestQuantileAcrossBuckets(t *testing.T) {
	// 50 observations in (0.25, 0.5], 50 in (0.5, 1]: p25 sits mid-way
	// through the low bucket, p75 mid-way through the high one.
	h := newHistogram()
	for i := 0; i < 50; i++ {
		h.Observe(0.5)
		h.Observe(1.0)
	}
	// p25 interpolates to 0.375 inside the low bucket but clamps to the
	// observed minimum 0.5.
	if got, want := h.Quantile(0.25), 0.5; math.Abs(got-want) > 1e-12 {
		t.Errorf("p25 = %v, want %v", got, want)
	}
	if got, want := h.Quantile(0.75), 0.75; math.Abs(got-want) > 1e-12 {
		t.Errorf("p75 = %v, want %v", got, want)
	}
	// Monotone in p.
	last := h.Quantile(0)
	for p := 0.05; p <= 1.0; p += 0.05 {
		q := h.Quantile(p)
		if q < last-1e-12 {
			t.Fatalf("quantile not monotone at p=%v: %v < %v", p, q, last)
		}
		last = q
	}
}

func TestQuantileClampedToObservedRange(t *testing.T) {
	// One observation at the bottom edge of a wide bucket: interpolation
	// alone would report a value inside the bucket, clamping pins it.
	h := newHistogram()
	h.Observe(0.51)
	for _, p := range []float64{0.1, 0.5, 0.9} {
		if got := h.Quantile(p); got != 0.51 {
			t.Errorf("p%v = %v, want 0.51 (clamped)", p, got)
		}
	}
}

func TestSnapshotCarriesQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("x.latency")
	for i := 0; i < 100; i++ {
		h.Observe(0.001)
	}
	h.Observe(10)
	for _, p := range r.Snapshot() {
		if p.Type != "histogram" {
			continue
		}
		if p.P50 <= 0 || p.P99 <= 0 {
			t.Fatalf("snapshot p50/p99 missing: %+v", p)
		}
		// p50 lands inside 0.001's power-of-two bucket (bound 2^-9), p99
		// anywhere up to the 10-second outlier.
		if p.P50 > 0.002 || p.P99 > 10 {
			t.Fatalf("snapshot quantiles out of range: p50=%v p99=%v", p.P50, p.P99)
		}
	}
}
