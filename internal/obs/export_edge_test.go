package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
)

func TestFormatMicrosEdges(t *testing.T) {
	cases := map[float64]string{
		0:        "0",     // zero-length span
		1e-10:    "0",     // 0.1 ns rounds below the 3-digit resolution
		5e-10:    "0.001", // 0.5 ns: FormatFloat rounds half away from zero
		1e-9:     "0.001", // exactly one nanosecond
		2.5e-7:   "0.25",  // sub-microsecond duration
		-5e-7:    "-0.5",  // negative timestamp (clock offsets)
		-1e-12:   "0",     // negative underflow must not render "-"
		0.000001: "1",     // exactly one microsecond
		3600:     "3600000000",
	}
	for in, want := range cases {
		if got := formatMicros(in); got != want {
			t.Errorf("formatMicros(%v) = %q, want %q", in, got, want)
		}
	}
}

// chromeEvent mirrors the exported event fields for round-trip checks.
type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args"`
}

// TestChromeExportRoundTrip verifies that zero-length spans, sub-µs
// durations, and attributes (such as an elided-round count) survive the
// Chrome export: the JSON parses back to the same values.
func TestChromeExportRoundTrip(t *testing.T) {
	tr := NewTracer()
	pid := tr.PID("p")
	tr.Emit(Span{PID: pid, TID: 1, Name: "zero", Start: 0.001})              // zero-length
	tr.Emit(Span{PID: pid, TID: 1, Name: "tiny", Start: 0.002, Dur: 2.5e-7}) // sub-µs
	tr.Emit(Span{PID: pid, TID: 1, Name: "round 7", Start: 0.003, Dur: 0.01,
		Attrs: []Attr{A("elided_rounds", "95"), A("kind", "data")}})

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, buf.Bytes())
	}
	byName := map[string]chromeEvent{}
	for _, e := range doc.TraceEvents {
		if e.Ph == "X" {
			byName[e.Name] = e
		}
	}
	if len(byName) != 3 {
		t.Fatalf("got %d complete events, want 3", len(byName))
	}
	if z := byName["zero"]; z.Dur != 0 || z.Ts != 1000 {
		t.Errorf("zero-length span round-trip: ts=%v dur=%v, want 1000, 0", z.Ts, z.Dur)
	}
	if ti := byName["tiny"]; math.Abs(ti.Dur-0.25) > 1e-9 {
		t.Errorf("sub-µs duration round-trip: dur=%v µs, want 0.25", ti.Dur)
	}
	r := byName["round 7"]
	if r.Args["elided_rounds"] != "95" || r.Args["kind"] != "data" {
		t.Errorf("attrs lost in round trip: %v", r.Args)
	}
}
