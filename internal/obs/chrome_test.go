package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenTracer builds a small fixed trace shaped like a real run: two
// strategy processes, op/round/phase nesting, named tracks.
func goldenTracer() *Tracer {
	tr := NewTracer()
	tp := tr.PID("two-phase")
	mc := tr.PID("memory-conscious")
	tr.SetThreadName(tp, 1, "rounds")
	tr.SetThreadName(mc, 1, "rounds")
	tr.SetThreadName(tp, 200, "ost 0 io")

	op := tr.Begin(tp, 1, "two-phase write", 0, A("rounds", "2"))
	r0 := tr.Begin(tp, 1, "round 0", 0, A("bound", "comm node 1 (nic-out)"))
	tr.Begin(tp, 1, "comm", 0).End(0.0015)
	tr.Begin(tp, 200, "io", 0.0015).End(0.0035)
	r0.End(0.0035)
	r1 := tr.Begin(tp, 1, "round 1", 0.0035)
	r1.Attr("bound", "io ost 0")
	r1.End(0.007)
	op.End(0.007)

	tr.Begin(mc, 1, "memory-conscious write", 0, A("rounds", "1")).End(0.004)
	tr.Begin(mc, 1, "round 0", 0).End(0.004)
	return tr
}

func TestChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, goldenTracer()); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome_trace.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("chrome trace drifted from golden file\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestChromeTraceWellFormed checks the structural contract on a
// larger trace: parses as JSON, metadata first, complete events with
// monotonically non-decreasing ts, non-negative durations.
func TestChromeTraceWellFormed(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, goldenTracer()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			PID  int     `json:"pid"`
			TID  int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	seenX := false
	lastTs := -1.0
	for i, e := range doc.TraceEvents {
		switch e.Ph {
		case "M":
			if seenX {
				t.Fatalf("metadata event %d after complete events", i)
			}
		case "X":
			seenX = true
			if e.Ts < lastTs {
				t.Fatalf("event %d ts %v < previous %v: not monotonic", i, e.Ts, lastTs)
			}
			lastTs = e.Ts
			if e.Dur < 0 {
				t.Fatalf("event %d has negative dur %v", i, e.Dur)
			}
		default:
			t.Fatalf("unexpected phase %q", e.Ph)
		}
	}
	if !seenX {
		t.Fatal("no complete events emitted")
	}
}

func TestMetricsExports(t *testing.T) {
	r := NewRegistry()
	r.Counter("mpi.bytes_sent", L("rank", "0")).Add(1024)
	r.Gauge("plan.groups", L("strategy", "two-phase")).Set(1)
	r.Histogram("sim.round_seconds").Observe(0.25)

	var js bytes.Buffer
	if err := WriteMetricsJSON(&js, r); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Metrics []map[string]any `json:"metrics"`
	}
	if err := json.Unmarshal(js.Bytes(), &doc); err != nil {
		t.Fatalf("metrics JSON invalid: %v", err)
	}
	if len(doc.Metrics) != 3 {
		t.Fatalf("got %d metric points, want 3", len(doc.Metrics))
	}

	var cs bytes.Buffer
	if err := WriteMetricsCSV(&cs, r); err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSpace(cs.Bytes()), []byte("\n"))
	if len(lines) != 4 { // header + 3 points
		t.Fatalf("got %d CSV lines, want 4:\n%s", len(lines), cs.Bytes())
	}
	if want := "name,labels,type,value,count,sum,min,max,p50,p99"; string(lines[0]) != want {
		t.Fatalf("CSV header = %q, want %q", lines[0], want)
	}
}

func TestFormatMicros(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		1:       "1000000",
		0.0015:  "1500",
		1.25e-6: "1.25",
	}
	for in, want := range cases {
		if got := formatMicros(in); got != want {
			t.Errorf("formatMicros(%v) = %q, want %q", in, got, want)
		}
	}
}
