package obs

import (
	"sort"
	"sync"
)

// Attr is one key/value attribute on a span.
type Attr struct {
	Key   string
	Value string
}

// A is shorthand for constructing an Attr.
func A(key, value string) Attr { return Attr{Key: key, Value: value} }

// Span is one timed unit of work on a (PID, TID) track. Time is in
// seconds on whatever clock the emitter uses — the simulator emits
// simulated time — and is converted to microseconds on Chrome export.
// Spans on one track nest by containment, Perfetto-style: a span whose
// [Start, Start+Dur] interval lies inside another's renders as its child,
// which is how collective op → round → phase nesting is expressed.
type Span struct {
	PID   int     // process track (e.g. one strategy's run)
	TID   int     // thread track within the process
	Name  string  // display name
	Start float64 // seconds
	Dur   float64 // seconds
	Attrs []Attr
}

// traceShards spreads concurrent emitters over independent locks.
const traceShards = 16

type traceShard struct {
	mu    sync.Mutex
	spans []Span
}

// Tracer collects spans from concurrent emitters into sharded sinks.
// A nil *Tracer is a valid no-op sink. Create with NewTracer.
type Tracer struct {
	shards [traceShards]traceShard

	mu      sync.Mutex
	procs   map[int]string    // pid -> process name
	threads map[[2]int]string // (pid, tid) -> thread name
	pids    map[string]int    // process name -> pid
	nextPID int
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer {
	return &Tracer{
		procs:   map[int]string{},
		threads: map[[2]int]string{},
		pids:    map[string]int{},
		nextPID: 1,
	}
}

// PID returns a stable process track id for a name, registering it on
// first use (ids start at 1 in registration order). On a nil tracer it
// returns 0.
func (t *Tracer) PID(name string) int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if pid, ok := t.pids[name]; ok {
		return pid
	}
	pid := t.nextPID
	t.nextPID++
	t.pids[name] = pid
	t.procs[pid] = name
	return pid
}

// SetThreadName names a (pid, tid) track for display; nil-safe.
func (t *Tracer) SetThreadName(pid, tid int, name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.threads[[2]int{pid, tid}] = name
	t.mu.Unlock()
}

// Emit records one complete span; nil-safe and safe for concurrent use.
func (t *Tracer) Emit(s Span) {
	if t == nil {
		return
	}
	sh := &t.shards[(s.PID*31+s.TID)&(traceShards-1)]
	sh.mu.Lock()
	sh.spans = append(sh.spans, s)
	sh.mu.Unlock()
}

// SpanRef is an open span returned by Begin; call End to emit it.
// The zero SpanRef (from a nil tracer) is a valid no-op.
type SpanRef struct {
	t *Tracer
	s Span
}

// Begin opens a span at timestamp ts (seconds); nil-safe.
func (t *Tracer) Begin(pid, tid int, name string, ts float64, attrs ...Attr) SpanRef {
	if t == nil {
		return SpanRef{}
	}
	return SpanRef{t: t, s: Span{PID: pid, TID: tid, Name: name, Start: ts, Attrs: attrs}}
}

// Attr appends an attribute to an open span; no-op on the zero ref.
func (r *SpanRef) Attr(key, value string) {
	if r.t == nil {
		return
	}
	r.s.Attrs = append(r.s.Attrs, Attr{Key: key, Value: value})
}

// End closes the span at timestamp ts and emits it; no-op on the zero
// ref. Ends before the start emit a zero-duration span at the start.
func (r SpanRef) End(ts float64) {
	if r.t == nil {
		return
	}
	if ts > r.s.Start {
		r.s.Dur = ts - r.s.Start
	}
	r.t.Emit(r.s)
}

// Spans returns every collected span sorted by (Start, PID, TID, longer
// first) — parents before children at equal timestamps. Nil-safe.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	var out []Span
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		out = append(out, sh.spans...)
		sh.mu.Unlock()
	}
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.PID != b.PID {
			return a.PID < b.PID
		}
		if a.TID != b.TID {
			return a.TID < b.TID
		}
		return a.Dur > b.Dur
	})
	return out
}

// ProcessNames returns a copy of the pid -> process-name registrations,
// in no particular order. Nil-safe.
func (t *Tracer) ProcessNames() map[int]string {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[int]string, len(t.procs))
	for pid, name := range t.procs {
		out[pid] = name
	}
	return out
}

// ThreadName returns the display name registered for (pid, tid), or ""
// when the track is unnamed. Nil-safe.
func (t *Tracer) ThreadName(pid, tid int) string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.threads[[2]int{pid, tid}]
}

// processes returns (pid, name) pairs sorted by pid.
func (t *Tracer) processes() []struct {
	pid  int
	name string
} {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]struct {
		pid  int
		name string
	}, 0, len(t.procs))
	for pid, name := range t.procs {
		out = append(out, struct {
			pid  int
			name string
		}{pid, name})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].pid < out[j].pid })
	return out
}

// threadNames returns ((pid, tid), name) pairs sorted by pid then tid.
func (t *Tracer) threadNames() []struct {
	pid, tid int
	name     string
} {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]struct {
		pid, tid int
		name     string
	}, 0, len(t.threads))
	for k, name := range t.threads {
		out = append(out, struct {
			pid, tid int
			name     string
		}{k[0], k[1], name})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].pid != out[j].pid {
			return out[i].pid < out[j].pid
		}
		return out[i].tid < out[j].tid
	})
	return out
}
