package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WriteMetricsProm serializes the registry snapshot in the Prometheus
// text exposition format (version 0.0.4), so snapshots can be scraped
// or pushed into any Prometheus-compatible stack. Output is fully
// deterministic: families in snapshot order (name, then label string),
// one # TYPE line per family, histogram buckets cumulative with a
// trailing +Inf, and _sum/_count series after the buckets.
//
// Metric names have dots replaced by underscores to satisfy the
// Prometheus data model ("mpi.bytes_sent" becomes "mpi_bytes_sent");
// label names get the same treatment. Label values are escaped per the
// exposition format rules (backslash, double quote, newline).
func WriteMetricsProm(w io.Writer, r *Registry) error {
	ew := &errWriter{w: w}
	typed := map[string]bool{} // family name -> # TYPE emitted
	for _, p := range r.Snapshot() {
		name := promName(p.Name)
		if !typed[name] {
			ew.writeString(fmt.Sprintf("# TYPE %s %s\n", name, p.Type))
			typed[name] = true
		}
		labels := promLabels(p.Labels)
		switch p.Type {
		case "counter", "gauge":
			ew.writeString(fmt.Sprintf("%s%s %s\n", name, labels, promFloat(p.Value)))
		case "histogram":
			var cum int64
			for _, b := range p.Bucket {
				cum += b.Count
				ew.writeString(fmt.Sprintf("%s_bucket%s %d\n",
					name, promLabels(p.Labels, Label{Key: "le", Value: promFloat(b.UpperBound)}), cum))
			}
			ew.writeString(fmt.Sprintf("%s_bucket%s %d\n",
				name, promLabels(p.Labels, Label{Key: "le", Value: "+Inf"}), p.Count))
			ew.writeString(fmt.Sprintf("%s_sum%s %s\n", name, labels, promFloat(p.Sum)))
			ew.writeString(fmt.Sprintf("%s_count%s %d\n", name, labels, p.Count))
		}
	}
	return ew.err
}

// promName maps an internal dotted metric name onto the Prometheus
// name charset [a-zA-Z0-9_:].
func promName(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promLabels renders a label set (plus any extras) as {k="v",...} with
// sorted keys, or "" when empty.
func promLabels(m map[string]string, extra ...Label) string {
	if len(m) == 0 && len(extra) == 0 {
		return ""
	}
	ls := make([]Label, 0, len(m)+len(extra))
	for k, v := range m {
		ls = append(ls, Label{Key: k, Value: v})
	}
	ls = append(ls, extra...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(promName(l.Key))
		b.WriteString(`="`)
		b.WriteString(promEscape(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// promEscape escapes a label value per the exposition format.
func promEscape(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// promFloat renders a float the way Prometheus expects.
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
