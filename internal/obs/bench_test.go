package obs

import "testing"

// The disabled path must cost a few nanoseconds at most: instrumented
// code in the mpi/pfs hot paths runs with a nil observer whenever
// observability is off, so the nil checks below are the entire overhead.

func BenchmarkDisabledCounterAdd(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkDisabledObserverCounter(b *testing.B) {
	var o *Observer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o.Counter("mpi.msgs_sent").Inc()
	}
}

func BenchmarkDisabledSpan(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Begin(1, 1, "round", 0).End(1)
	}
}

// Enabled-path costs, for comparison: a pre-resolved counter is one
// atomic add; a span is one allocation-in-append under a sharded lock.

func BenchmarkEnabledCounterAdd(b *testing.B) {
	c := NewRegistry().Counter("mpi.msgs_sent", L("rank", "0"))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkEnabledCounterResolve(b *testing.B) {
	r := NewRegistry()
	l := L("rank", "0")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Counter("mpi.msgs_sent", l).Inc()
	}
}

func BenchmarkEnabledSpan(b *testing.B) {
	tr := NewTracer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Begin(1, 1, "round", float64(i)).End(float64(i) + 1)
	}
}

func BenchmarkEnabledHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("sim.round_seconds")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.001)
	}
}
