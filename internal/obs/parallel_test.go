package obs

import (
	"strings"
	"sync"
	"testing"
)

// The parallel sweep engine drives one shared Observer from several
// goroutines: tracer PIDs are pre-registered so ids do not depend on the
// schedule, each worker emits on its own (PID, TID) tracks, and shared
// counters take commutative adds. This test emits the same span and
// metric set serially and from concurrent goroutines and asserts the
// exported artifacts are byte-identical; under -race it also proves the
// sinks are race-clean.
func TestConcurrentEmissionDeterministic(t *testing.T) {
	const workers = 8
	const spansPer = 50

	build := func(concurrent bool) (string, string) {
		o := New()
		// Pre-register process tracks in a fixed order, as the sweep
		// engine does before fanning out.
		pids := make([]int, workers)
		for w := 0; w < workers; w++ {
			pids[w] = o.Tracer().PID("strategy-" + string(rune('a'+w)))
		}
		emit := func(w int) {
			c := o.Counter("sweep.cells", L("worker", "shared"))
			for i := 0; i < spansPer; i++ {
				o.Tracer().Emit(Span{
					PID:   pids[w],
					TID:   1,
					Name:  "round",
					Start: float64(i),
					Dur:   0.5,
				})
				c.Add(1)
				o.Histogram("sweep.round_seconds").Observe(0.5)
			}
		}
		if concurrent {
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					emit(w)
				}(w)
			}
			wg.Wait()
		} else {
			for w := 0; w < workers; w++ {
				emit(w)
			}
		}
		var trace, metrics strings.Builder
		if err := WriteChromeTrace(&trace, o.Trace); err != nil {
			t.Fatal(err)
		}
		if err := WriteMetricsJSON(&metrics, o.Metrics); err != nil {
			t.Fatal(err)
		}
		return trace.String(), metrics.String()
	}

	wantTrace, wantMetrics := build(false)
	for trial := 0; trial < 3; trial++ {
		gotTrace, gotMetrics := build(true)
		if gotTrace != wantTrace {
			t.Fatalf("trial %d: concurrent trace differs from serial export", trial)
		}
		if gotMetrics != wantMetrics {
			t.Fatalf("trial %d: concurrent metrics differ from serial export", trial)
		}
	}
}
