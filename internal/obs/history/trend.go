package history

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"mcio/internal/obs"
)

// Direction says which way a metric is allowed to move.
type Direction int

const (
	// HigherBetter metrics (bandwidth) regress by falling.
	HigherBetter Direction = iota
	// LowerBetter metrics (wall seconds) regress by rising.
	LowerBetter
	// Steady metrics (chaos detection counts, repair bytes, degradation
	// rungs) regress by moving at all: any sustained change either way
	// is a behavioural shift worth failing on.
	Steady
)

func (d Direction) String() string {
	switch d {
	case HigherBetter:
		return "higher-better"
	case LowerBetter:
		return "lower-better"
	default:
		return "steady"
	}
}

// Options tunes the trend detector. Zero values mean defaults.
type Options struct {
	// Tol is the relative tolerance shared by both detectors: a step is
	// a single-run deviation from the rolling median beyond Tol, a
	// drift is a fitted total change across the series beyond Tol.
	// Default obs.DefaultDiffTol (5%) — the same tolerance at which
	// pairwise `mcio diff` runs, which is the point: N sub-tolerance
	// steps that accumulate past Tol are exactly what diff cannot see.
	Tol float64
	// Window is the rolling-median changepoint window. Default 5.
	Window int
	// MinRuns is the fewest points a series needs before the drift
	// (slope) detector speaks; below it only steps are detectable.
	// Default 4.
	MinRuns int
}

func (o Options) tol() float64 {
	if o.Tol > 0 {
		return o.Tol
	}
	return obs.DefaultDiffTol
}

func (o Options) window() int {
	if o.Window > 0 {
		return o.Window
	}
	return 5
}

func (o Options) minRuns() int {
	if o.MinRuns > 0 {
		return o.MinRuns
	}
	return 4
}

// Point is one observation in a metric series.
type Point struct {
	RecordIndex int // index into the loaded record series (oldest = 0)
	Value       float64
}

// Series is one tracked metric of one experiment entry across the
// record history.
type Series struct {
	Entry  string // entry name, e.g. "two-phase/write/mem=16"
	Metric string // "bandwidth_mbps", "wall_seconds", or a Metrics key
	Better Direction
	Points []Point
}

// Values returns just the observation values, oldest first.
func (s *Series) Values() []float64 {
	vs := make([]float64, len(s.Points))
	for i, p := range s.Points {
		vs[i] = p.Value
	}
	return vs
}

// Verdict classifies one series: ok, step (an abrupt changepoint
// against the rolling median) or drift (a slow fitted slope whose
// accumulated change crosses tolerance even though every single run
// stayed inside it).
type Verdict struct {
	Series      *Series
	Kind        string  // "ok", "step", "drift"
	First, Last float64 // first and last observed values
	SlopePerRun float64 // fitted relative change per run
	TotalRel    float64 // fitted relative change across the whole series
	StepAt      int     // record index of the first bad step, -1 if none
	StepRel     float64 // relative deviation from the rolling median at StepAt
	Why         string  // human explanation when Kind != "ok"
}

// Flagged reports whether this verdict should fail a gate.
func (v *Verdict) Flagged() bool { return v.Kind != "ok" }

// TrendResult is the analysis of a whole record series.
type TrendResult struct {
	Records  []RecordFile
	Verdicts []Verdict // sorted by entry name, then metric name
	Opt      Options
}

// Flagged returns the verdicts that should fail a gate (step or drift).
func (t *TrendResult) Flagged() []Verdict {
	var out []Verdict
	for _, v := range t.Verdicts {
		if v.Flagged() {
			out = append(out, v)
		}
	}
	return out
}

// Trend builds the per-entry metric series from a loaded record
// history (oldest first) and classifies each one. Entries are matched
// across records by name; entries absent from some records simply
// contribute shorter series (the pairwise diff gate already fails on
// vanished entries). Single-point series are ok by definition.
func Trend(recs []RecordFile, opt Options) *TrendResult {
	type key struct{ entry, metric string }
	series := map[key]*Series{}
	var order []key
	add := func(entry, metric string, better Direction, ri int, val float64) {
		k := key{entry, metric}
		s, ok := series[k]
		if !ok {
			s = &Series{Entry: entry, Metric: metric, Better: better}
			series[k] = s
			order = append(order, k)
		}
		s.Points = append(s.Points, Point{RecordIndex: ri, Value: val})
	}
	for ri, rf := range recs {
		for _, e := range rf.Rec.Entries {
			tracked := false
			if e.BandwidthMBps > 0 {
				add(e.Name, "bandwidth_mbps", HigherBetter, ri, e.BandwidthMBps)
				tracked = true
			}
			if e.WallSeconds > 0 {
				add(e.Name, "wall_seconds", LowerBetter, ri, e.WallSeconds)
				tracked = true
			}
			if !tracked {
				// Metrics-only entries (chaos detection counts, repair
				// bytes, degradation rungs): every key is a steady series.
				keys := make([]string, 0, len(e.Metrics))
				for k := range e.Metrics {
					keys = append(keys, k)
				}
				sort.Strings(keys)
				for _, k := range keys {
					add(e.Name, k, Steady, ri, e.Metrics[k])
				}
			}
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].entry != order[j].entry {
			return order[i].entry < order[j].entry
		}
		return order[i].metric < order[j].metric
	})
	res := &TrendResult{Records: recs, Opt: opt}
	for _, k := range order {
		res.Verdicts = append(res.Verdicts, classify(series[k], opt))
	}
	return res
}

// classify runs both detectors over one series. Step takes precedence
// over drift: an abrupt changepoint explains any fitted slope.
func classify(s *Series, opt Options) Verdict {
	v := Verdict{Series: s, Kind: "ok", StepAt: -1}
	n := len(s.Points)
	if n > 0 {
		v.First, v.Last = s.Points[0].Value, s.Points[n-1].Value
	}
	if n < 2 {
		return v
	}
	vals := s.Values()
	tol := opt.tol()

	// Rolling-median changepoint: each point against the median of up
	// to Window preceding points. The median absorbs single outliers in
	// the window, so a genuine level shift stands out even if the runs
	// just before it were noisy.
	for i := 1; i < n; i++ {
		lo := i - opt.window()
		if lo < 0 {
			lo = 0
		}
		m := median(vals[lo:i])
		if m == 0 {
			if vals[i] != 0 && s.Better == Steady {
				v.Kind, v.StepAt, v.StepRel = "step", s.Points[i].RecordIndex, 0
				v.Why = fmt.Sprintf("value moved off zero to %s at run %d", fmtVal(vals[i]), v.StepAt)
				return v
			}
			continue
		}
		rel := (vals[i] - m) / m
		if bad(s.Better, rel, tol) {
			v.Kind, v.StepAt, v.StepRel = "step", s.Points[i].RecordIndex, rel
			v.Why = fmt.Sprintf("step of %+.1f%% vs rolling median at run %d (tol %.1f%%)",
				rel*100, v.StepAt, tol*100)
			return v
		}
	}

	// Least-squares drift: fit value = a + b·x over the series; the
	// fitted relative change across the whole series is b·(n-1)/a.
	// Each individual run may be well inside tolerance — that is the
	// slow-compounding regression the pairwise gate cannot see.
	if n >= opt.minRuns() {
		a, b := leastSquares(vals)
		base := a
		if base == 0 {
			base = mean(vals)
		}
		if base != 0 {
			v.SlopePerRun = b / base
			v.TotalRel = b * float64(n-1) / base
			if bad(s.Better, v.TotalRel, tol) {
				v.Kind = "drift"
				v.Why = fmt.Sprintf("drift of %+.2f%%/run accumulating to %+.1f%% over %d runs (tol %.1f%%)",
					v.SlopePerRun*100, v.TotalRel*100, n, tol*100)
			}
		}
	}
	return v
}

// bad reports whether a relative change rel beyond tolerance moves in
// a failing direction for the metric.
func bad(d Direction, rel, tol float64) bool {
	switch d {
	case HigherBetter:
		return rel < -tol
	case LowerBetter:
		return rel > tol
	default: // Steady
		return rel < -tol || rel > tol
	}
}

// median of a non-empty slice (copied, input left unsorted).
func median(xs []float64) float64 {
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	n := len(c)
	if n%2 == 1 {
		return c[n/2]
	}
	return (c[n/2-1] + c[n/2]) / 2
}

func mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// leastSquares fits y = a + b·x with x = 0..n-1 and returns (a, b).
func leastSquares(ys []float64) (a, b float64) {
	n := float64(len(ys))
	var sx, sy, sxx, sxy float64
	for i, y := range ys {
		x := float64(i)
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return mean(ys), 0
	}
	b = (n*sxy - sx*sy) / den
	a = (sy - b*sx) / n
	return a, b
}

// Render formats the verdict table, one row per tracked series,
// flagged rows marked STEP/DRIFT, mirroring DiffResult.Render.
func (t *TrendResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "perf trend: %d records, %d series (tol %.1f%%, window %d, min-runs %d)\n",
		len(t.Records), len(t.Verdicts), t.Opt.tol()*100, t.Opt.window(), t.Opt.minRuns())
	fmt.Fprintf(&b, "%-28s %-18s %5s %12s %12s %11s %9s  %s\n",
		"entry", "metric", "runs", "first", "last", "slope/run", "total", "status")
	for i := range t.Verdicts {
		v := &t.Verdicts[i]
		status := "ok"
		switch v.Kind {
		case "step":
			status = "STEP: " + v.Why
		case "drift":
			status = "DRIFT: " + v.Why
		}
		fmt.Fprintf(&b, "%-28s %-18s %5d %12s %12s %11s %9s  %s\n",
			v.Series.Entry, v.Series.Metric, len(v.Series.Points),
			fmtVal(v.First), fmtVal(v.Last),
			fmtPct(v.SlopePerRun), fmtPct(v.TotalRel), status)
	}
	flagged := t.Flagged()
	if len(flagged) == 0 {
		fmt.Fprintf(&b, "no steps or drift (%d series analyzed)\n", len(t.Verdicts))
	} else {
		steps, drifts := 0, 0
		for _, v := range flagged {
			if v.Kind == "step" {
				steps++
			} else {
				drifts++
			}
		}
		fmt.Fprintf(&b, "%d series flagged (%d step, %d drift)\n", len(flagged), steps, drifts)
	}
	return b.String()
}

// fmtVal renders a metric value compactly and deterministically.
func fmtVal(v float64) string {
	if v == 0 {
		return "-"
	}
	return fmt.Sprintf("%.6g", v)
}

// fmtPct renders a relative change. Values that are zero up to float
// rounding (a least-squares fit of a constant series is only zero to
// ~1e-16) render as "-", never as a signed -0.00%.
func fmtPct(rel float64) string {
	if math.Abs(rel) < 5e-7 {
		return "-"
	}
	return fmt.Sprintf("%+.2f%%", rel*100)
}
