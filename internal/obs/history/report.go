package history

import (
	"fmt"
	"html"
	"io"
	"path/filepath"
	"strings"
	"time"
)

// WriteReport renders the perf history as a fully self-contained HTML
// page: no JavaScript, no external assets, every plot an inline SVG
// sparkline. The output is a pure function of the loaded records and
// options — byte-identical across reruns — so it can be diffed,
// archived next to the ledgers it describes, and attached as a CI
// artifact without a rendering service.
func WriteReport(w io.Writer, t *TrendResult) error {
	b := &strings.Builder{}
	writeHead(b)
	writeSummary(b, t)
	writeRecordTable(b, t.Records)
	writeSeriesSections(b, t)
	writeVerdictTable(b, t)
	b.WriteString("</body>\n</html>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// writeHead emits the document head with the embedded stylesheet.
// Colors are defined once as custom properties (light and dark via
// prefers-color-scheme) so the body is written against roles.
func writeHead(b *strings.Builder) {
	b.WriteString(`<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>mcio perf history</title>
<style>
.viz-root {
  color-scheme: light;
  --surface-1: #fcfcfb;
  --surface-2: #f1f0ee;
  --text-primary: #0b0b0b;
  --text-secondary: #52514e;
  --series-1: #2a78d6;
  --status-good: #0ca30c;
  --status-serious: #ec835a;
  --status-critical: #d03b3b;
  background: var(--surface-1);
  color: var(--text-primary);
  font: 14px/1.45 system-ui, sans-serif;
  margin: 0 auto;
  max-width: 72rem;
  padding: 1.5rem;
}
@media (prefers-color-scheme: dark) {
  .viz-root {
    color-scheme: dark;
    --surface-1: #1a1a19;
    --surface-2: #262625;
    --text-primary: #ffffff;
    --text-secondary: #c3c2b7;
    --series-1: #3987e5;
  }
}
h1 { font-size: 1.4rem; margin: 0 0 0.25rem; }
h2 { font-size: 1.1rem; margin: 1.5rem 0 0.5rem; }
h3 { font-size: 1rem; margin: 1rem 0 0.25rem; }
.sub { color: var(--text-secondary); margin: 0 0 1rem; }
table { border-collapse: collapse; width: 100%; }
th, td { text-align: left; padding: 0.25rem 0.75rem 0.25rem 0;
         border-bottom: 1px solid var(--surface-2); }
th { color: var(--text-secondary); font-weight: 600; }
td.num, th.num { text-align: right; font-variant-numeric: tabular-nums; }
.series { display: flex; align-items: center; gap: 0.75rem;
          padding: 0.3rem 0; border-bottom: 1px solid var(--surface-2); }
.series .metric { min-width: 11rem; }
.series .vals { color: var(--text-secondary); font-variant-numeric: tabular-nums; }
.series .why { color: var(--text-secondary); }
.badge { min-width: 3.5rem; text-align: center; font-size: 0.8rem;
         font-weight: 600; padding: 0.05rem 0.4rem; border-radius: 4px;
         border: 1.5px solid; }
.badge-ok { border-color: var(--status-good); }
.badge-drift { border-color: var(--status-serious); }
.badge-step { border-color: var(--status-critical); }
.spark line.base { stroke: var(--surface-2); stroke-width: 1; }
.spark polyline { fill: none; stroke: var(--series-1); stroke-width: 2;
                  stroke-linejoin: round; stroke-linecap: round; }
.spark circle { fill: var(--series-1); }
</style>
</head>
<body class="viz-root">
`)
}

func writeSummary(b *strings.Builder, t *TrendResult) {
	flagged := t.Flagged()
	b.WriteString("<h1>mcio perf history</h1>\n")
	fmt.Fprintf(b, "<p class=\"sub\">%d records &middot; %d series &middot; %d flagged (tol %.1f%%, window %d, min-runs %d)</p>\n",
		len(t.Records), len(t.Verdicts), len(flagged),
		t.Opt.tol()*100, t.Opt.window(), t.Opt.minRuns())
}

func writeRecordTable(b *strings.Builder, recs []RecordFile) {
	b.WriteString("<h2>Records</h2>\n<table>\n<tr><th class=\"num\">run</th><th>file</th><th>experiment</th><th>time (UTC)</th><th>commit</th><th>go</th><th class=\"num\">entries</th></tr>\n")
	for i, rf := range recs {
		commit, gover := "-", "-"
		if rf.Rec.Host != nil {
			if rf.Rec.Host.GitCommit != "" {
				commit = rf.Rec.Host.GitCommit
			}
			if rf.Rec.Host.GoVersion != "" {
				gover = rf.Rec.Host.GoVersion
			}
		}
		when := "-"
		if rf.Rec.UnixNanos != 0 {
			when = time.Unix(0, rf.Rec.UnixNanos).UTC().Format(time.RFC3339)
		}
		fmt.Fprintf(b, "<tr><td class=\"num\">%d</td><td>%s</td><td>%s</td><td>%s</td><td>%s</td><td>%s</td><td class=\"num\">%d</td></tr>\n",
			i, html.EscapeString(filepath.Base(rf.Path)), html.EscapeString(rf.Rec.Name),
			when, html.EscapeString(commit), html.EscapeString(gover), len(rf.Rec.Entries))
	}
	b.WriteString("</table>\n")
}

// writeSeriesSections renders one sparkline row per tracked series,
// grouped by entry (verdicts are already sorted entry-then-metric).
func writeSeriesSections(b *strings.Builder, t *TrendResult) {
	b.WriteString("<h2>Series</h2>\n")
	lastEntry := ""
	for i := range t.Verdicts {
		v := &t.Verdicts[i]
		if v.Series.Entry != lastEntry {
			if lastEntry != "" {
				b.WriteString("</section>\n")
			}
			lastEntry = v.Series.Entry
			fmt.Fprintf(b, "<section>\n<h3>%s</h3>\n", html.EscapeString(v.Series.Entry))
		}
		badge := map[string]string{"ok": "ok", "step": "step", "drift": "drift"}[v.Kind]
		fmt.Fprintf(b, "<div class=\"series\"><span class=\"badge badge-%s\">%s</span><span class=\"metric\">%s</span>",
			badge, strings.ToUpper(badge), html.EscapeString(v.Series.Metric))
		writeSparkline(b, v.Series)
		fmt.Fprintf(b, "<span class=\"vals\">%s &rarr; %s", fmtVal(v.First), fmtVal(v.Last))
		if v.TotalRel != 0 {
			fmt.Fprintf(b, " (%s fitted)", fmtPct(v.TotalRel))
		}
		b.WriteString("</span>")
		if v.Why != "" {
			fmt.Fprintf(b, "<span class=\"why\">%s</span>", html.EscapeString(v.Why))
		}
		b.WriteString("</div>\n")
	}
	if lastEntry != "" {
		b.WriteString("</section>\n")
	}
}

// Sparkline geometry: fixed viewport, values scaled into it with a
// little vertical headroom. Coordinates are formatted to fixed
// precision so the SVG bytes are reproducible.
const (
	sparkW   = 260.0
	sparkH   = 44.0
	sparkPad = 5.0
)

// writeSparkline emits one inline SVG sparkline for a series. Every
// point carries a native <title> tooltip (run index and value) so the
// page stays interactive without JavaScript. A single-series plot
// needs no legend; the row label names it.
func writeSparkline(b *strings.Builder, s *Series) {
	n := len(s.Points)
	vals := s.Values()
	min, max := vals[0], vals[0]
	for _, v := range vals {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	x := func(i int) float64 {
		if n == 1 {
			return sparkW / 2
		}
		return sparkPad + float64(i)*(sparkW-2*sparkPad)/float64(n-1)
	}
	y := func(v float64) float64 {
		if max == min {
			return sparkH / 2
		}
		return sparkH - sparkPad - (v-min)*(sparkH-2*sparkPad)/(max-min)
	}
	fmt.Fprintf(b, `<svg class="spark" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f" role="img" aria-label="%s over %d runs">`,
		sparkW, sparkH, sparkW, sparkH, html.EscapeString(s.Metric), n)
	// Faint reference line at the first value's level: drift reads as
	// the gap between the line's end and where it started.
	fmt.Fprintf(b, `<line class="base" x1="%.2f" y1="%.2f" x2="%.2f" y2="%.2f"/>`,
		sparkPad, y(vals[0]), sparkW-sparkPad, y(vals[0]))
	if n > 1 {
		var pts []string
		for i, v := range vals {
			pts = append(pts, fmt.Sprintf("%.2f,%.2f", x(i), y(v)))
		}
		fmt.Fprintf(b, `<polyline points="%s"/>`, strings.Join(pts, " "))
	}
	for i, v := range vals {
		r := 2.5
		if i == n-1 {
			r = 3.5 // current run emphasized
		}
		fmt.Fprintf(b, `<circle cx="%.2f" cy="%.2f" r="%.1f"><title>run %d: %s</title></circle>`,
			x(i), y(v), r, s.Points[i].RecordIndex, fmtVal(v))
	}
	b.WriteString("</svg>")
}

// writeVerdictTable is the table view of the whole analysis — the same
// rows as the text renderer, readable without color or graphics.
func writeVerdictTable(b *strings.Builder, t *TrendResult) {
	b.WriteString("<h2>Verdicts</h2>\n<table>\n<tr><th>entry</th><th>metric</th><th class=\"num\">runs</th><th class=\"num\">first</th><th class=\"num\">last</th><th class=\"num\">slope/run</th><th class=\"num\">total</th><th>status</th></tr>\n")
	for i := range t.Verdicts {
		v := &t.Verdicts[i]
		status := "ok"
		switch v.Kind {
		case "step":
			status = "STEP: " + v.Why
		case "drift":
			status = "DRIFT: " + v.Why
		}
		fmt.Fprintf(b, "<tr><td>%s</td><td>%s</td><td class=\"num\">%d</td><td class=\"num\">%s</td><td class=\"num\">%s</td><td class=\"num\">%s</td><td class=\"num\">%s</td><td>%s</td></tr>\n",
			html.EscapeString(v.Series.Entry), html.EscapeString(v.Series.Metric),
			len(v.Series.Points), fmtVal(v.First), fmtVal(v.Last),
			fmtPct(v.SlopePerRun), fmtPct(v.TotalRel), html.EscapeString(status))
	}
	b.WriteString("</table>\n")
}
