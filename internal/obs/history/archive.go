// Package history is the perf-history subsystem: an append-only
// archive of run-ledger records (one obs.RunRecord per benchmark run),
// a trend analyzer that detects step changes and slow drift across a
// record series, and a deterministic self-contained HTML/SVG report.
//
// The archive layout is one JSON file per run under a directory
// (conventionally baselines/history/), named
//
//	<seq>-<commit>-<experiment>.json
//
// where <seq> is a zero-padded sequence number so lexicographic file
// order matches append order even for records without timestamps.
package history

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"mcio/internal/obs"
)

// RecordFile is one archived run ledger plus where it came from.
type RecordFile struct {
	Path string
	Rec  *obs.RunRecord
}

// Time returns the record's timestamp (0 for v1 records).
func (r RecordFile) Time() int64 { return r.Rec.UnixNanos }

// Append writes rec into the archive directory dir under the next
// sequence number, creating dir if needed. The file is created
// exclusively — an existing file with the chosen name is an error, the
// archive is append-only by construction. Returns the path written.
func Append(dir string, rec *obs.RunRecord) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	seq, err := nextSeq(dir)
	if err != nil {
		return "", err
	}
	commit := "local"
	if rec.Host != nil && rec.Host.GitCommit != "" {
		commit = rec.Host.GitCommit
	}
	path := filepath.Join(dir, fmt.Sprintf("%05d-%s-%s.json", seq, commit, rec.Name))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return "", fmt.Errorf("history: archive append: %w", err)
	}
	if err := obs.WriteRunRecord(f, rec); err != nil {
		f.Close()
		return "", err
	}
	return path, f.Close()
}

// nextSeq scans dir for the highest <seq>- file prefix and returns the
// successor, starting at 1 in an empty archive.
func nextSeq(dir string) (int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	max := 0
	for _, e := range entries {
		name := e.Name()
		dash := strings.IndexByte(name, '-')
		if dash <= 0 {
			continue
		}
		n, err := strconv.Atoi(name[:dash])
		if err != nil {
			continue
		}
		if n > max {
			max = n
		}
	}
	return max + 1, nil
}

// Expand resolves each argument into ledger file paths: a directory
// yields its *.json entries (lexicographic), a glob pattern its
// matches (sorted), anything else passes through as a literal path.
// The order of the arguments is preserved.
func Expand(args []string) ([]string, error) {
	var paths []string
	for _, a := range args {
		st, err := os.Stat(a)
		switch {
		case err == nil && st.IsDir():
			matches, err := filepath.Glob(filepath.Join(a, "*.json"))
			if err != nil {
				return nil, err
			}
			sort.Strings(matches)
			if len(matches) == 0 {
				return nil, fmt.Errorf("history: no *.json records in directory %s", a)
			}
			paths = append(paths, matches...)
		case err == nil:
			paths = append(paths, a)
		default:
			// Not a file on disk: try it as a glob before giving up.
			matches, gerr := filepath.Glob(a)
			if gerr != nil || len(matches) == 0 {
				return nil, fmt.Errorf("history: %s matches no record file", a)
			}
			sort.Strings(matches)
			paths = append(paths, matches...)
		}
	}
	return paths, nil
}

// Load reads every path as a run-ledger record and returns the series
// sorted oldest-first by record timestamp (stable, so records without
// timestamps — v1 — keep their file order). Records that fail to parse
// as JSON are skipped with a warning line on warn rather than aborting
// the series; a record with a version newer than this binary supports
// is a hard error naming the file, as are unreadable paths.
func Load(paths []string, warn io.Writer) ([]RecordFile, error) {
	var recs []RecordFile
	for _, p := range paths {
		b, err := os.ReadFile(p)
		if err != nil {
			return nil, err
		}
		rec, err := obs.ParseRunRecord(b)
		if err != nil {
			if errors.Is(err, obs.ErrNewerVersion) {
				return nil, fmt.Errorf("%s: %w", p, err)
			}
			if warn != nil {
				fmt.Fprintf(warn, "history: skipping %s: %v\n", p, err)
			}
			continue
		}
		recs = append(recs, RecordFile{Path: p, Rec: rec})
	}
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].Time() < recs[j].Time() })
	return recs, nil
}

// LoadArgs is Expand followed by Load — the loader behind `mcio trend`,
// `mcio report` and the directory form of `mcio diff`.
func LoadArgs(args []string, warn io.Writer) ([]RecordFile, error) {
	paths, err := Expand(args)
	if err != nil {
		return nil, err
	}
	return Load(paths, warn)
}
