package history

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mcio/internal/obs"
)

func rec(name string, nanos int64, entries ...obs.RunEntry) *obs.RunRecord {
	return &obs.RunRecord{Name: name, UnixNanos: nanos, Entries: entries}
}

func bwEntry(name string, bw float64) obs.RunEntry {
	return obs.RunEntry{Name: name, BandwidthMBps: bw, WallSeconds: 1000 / bw}
}

func TestAppendSequencesAndRefusesCollision(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "history")
	r := rec("fig6", 100, bwEntry("a", 1000))
	r.Host = &obs.HostInfo{GitCommit: "abc123def456"}
	p1, err := Append(dir, r)
	if err != nil {
		t.Fatal(err)
	}
	if base := filepath.Base(p1); base != "00001-abc123def456-fig6.json" {
		t.Fatalf("first archive name = %s", base)
	}
	p2, err := Append(dir, rec("fig6", 200, bwEntry("a", 1001)))
	if err != nil {
		t.Fatal(err)
	}
	if base := filepath.Base(p2); base != "00002-local-fig6.json" {
		t.Fatalf("second archive name = %s (commit-less record should stamp 'local')", base)
	}
	// Sequencing survives junk in the directory and gaps in the series:
	// the next append always lands above the highest existing number.
	for _, junk := range []string{"notes.txt", "x-local-fig6.json"} {
		if err := os.WriteFile(filepath.Join(dir, junk), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.Remove(p1); err != nil {
		t.Fatal(err)
	}
	p3, err := Append(dir, rec("fig6", 300, bwEntry("a", 1002)))
	if err != nil {
		t.Fatal(err)
	}
	if base := filepath.Base(p3); base != "00003-local-fig6.json" {
		t.Fatalf("third archive name = %s (gap must not recycle seq 1)", base)
	}
}

func TestExpandDirGlobAndLiteral(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"00002-x-fig6.json", "00001-x-fig6.json", "notes.txt"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	paths, err := Expand([]string{dir})
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 || filepath.Base(paths[0]) != "00001-x-fig6.json" {
		t.Fatalf("dir expansion wrong: %v", paths)
	}
	paths, err = Expand([]string{filepath.Join(dir, "*-fig6.json")})
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("glob expansion wrong: %v", paths)
	}
	paths, err = Expand([]string{paths[0], paths[1]})
	if err != nil || len(paths) != 2 {
		t.Fatalf("literal expansion wrong: %v, %v", paths, err)
	}
	if _, err := Expand([]string{filepath.Join(dir, "absent-*.json")}); err == nil {
		t.Fatal("expected error for a pattern matching nothing")
	}
	if _, err := Expand([]string{filepath.Join(dir, "empty")}); err == nil {
		t.Fatal("expected error for a missing path")
	}
}

func TestLoadMixedVersionsSortsByTimestamp(t *testing.T) {
	dir := t.TempDir()
	// A v1 record (no timestamp) written first, then two v2 records out
	// of lexicographic order by time.
	v1 := `{"version":1,"name":"fig6","entries":[{"name":"a","bandwidth_mbps":990}]}`
	if err := os.WriteFile(filepath.Join(dir, "00001-x-fig6.json"), []byte(v1), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, r := range []*obs.RunRecord{
		rec("fig6", 300, bwEntry("a", 1010)),
		rec("fig6", 200, bwEntry("a", 1000)),
	} {
		if _, err := Append(dir, r); err != nil {
			t.Fatal(err)
		}
	}
	recs, err := LoadArgs([]string{dir}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("loaded %d records, want 3", len(recs))
	}
	// v1 (time 0) first, then 200, then 300 — not file order.
	if recs[0].Time() != 0 || recs[1].Time() != 200 || recs[2].Time() != 300 {
		t.Fatalf("records out of time order: %d %d %d", recs[0].Time(), recs[1].Time(), recs[2].Time())
	}
	if recs[0].Rec.Version != 1 || recs[2].Rec.Version != obs.RunRecordVersion {
		t.Fatalf("mixed versions mangled: v%d, v%d", recs[0].Rec.Version, recs[2].Rec.Version)
	}
}

func TestLoadSkipsCorruptWithWarning(t *testing.T) {
	dir := t.TempDir()
	if _, err := Append(dir, rec("fig6", 100, bwEntry("a", 1000))); err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(dir, "00002-x-fig6.json")
	if err := os.WriteFile(bad, []byte(`{"version": 2, "name": truncated`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Append(dir, rec("fig6", 300, bwEntry("a", 1001))); err != nil {
		t.Fatal(err)
	}
	var warn bytes.Buffer
	recs, err := LoadArgs([]string{dir}, &warn)
	if err != nil {
		t.Fatalf("corrupt record aborted the load: %v", err)
	}
	if len(recs) != 2 {
		t.Fatalf("loaded %d records, want 2 (corrupt one skipped)", len(recs))
	}
	if !strings.Contains(warn.String(), filepath.Base(bad)) {
		t.Errorf("warning does not name the skipped file: %q", warn.String())
	}
}

func TestLoadRejectsNewerVersionNamingFile(t *testing.T) {
	dir := t.TempDir()
	if _, err := Append(dir, rec("fig6", 100, bwEntry("a", 1000))); err != nil {
		t.Fatal(err)
	}
	tooNew := filepath.Join(dir, "00009-x-fig6.json")
	if err := os.WriteFile(tooNew, []byte(`{"version": 99, "name": "fig6", "entries": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var warn bytes.Buffer
	_, err := LoadArgs([]string{dir}, &warn)
	if err == nil {
		t.Fatal("a newer-than-supported record must abort the load, not be skipped")
	}
	if !strings.Contains(err.Error(), filepath.Base(tooNew)) {
		t.Errorf("error does not name the offending file: %v", err)
	}
}
