package history

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mcio/internal/obs"
)

// driftHistory builds n records where entry "mc/write/mem=16" decays
// by perRun (relative) each run while "steady" stays put.
func driftHistory(n int, perRun float64) []RecordFile {
	var recs []RecordFile
	bw := 1000.0
	for i := 0; i < n; i++ {
		r := rec("fig6", int64(i+1)*1000,
			bwEntry("mc/write/mem=16", bw),
			bwEntry("steady", 500))
		recs = append(recs, RecordFile{Path: fmt.Sprintf("run%02d.json", i), Rec: r})
		bw *= 1 - perRun
	}
	return recs
}

// TestDriftFlaggedWherePairwiseDiffPasses is the tentpole acceptance
// property: a 1%-per-run bandwidth decline over 10 runs is invisible to
// the pairwise diff gate at the same 5% tolerance (every adjacent step
// is 1%), yet the trend detector flags it as drift.
func TestDriftFlaggedWherePairwiseDiffPasses(t *testing.T) {
	recs := driftHistory(10, 0.01)

	// Pairwise: every adjacent diff is clean at the default tolerance.
	for i := 1; i < len(recs); i++ {
		res := obs.DiffRunRecords(recs[i-1].Rec, recs[i].Rec, obs.DiffOptions{})
		if n := len(res.Regressions()); n != 0 {
			t.Fatalf("adjacent diff %d->%d flagged %d regressions; the drift must be sub-tolerance pairwise", i-1, i, n)
		}
	}

	// Trend: the decayed entry is flagged as drift, the steady one is ok.
	tr := Trend(recs, Options{})
	byKey := map[string]Verdict{}
	for _, v := range tr.Verdicts {
		byKey[v.Series.Entry+"/"+v.Series.Metric] = v
	}
	drifted := byKey["mc/write/mem=16/bandwidth_mbps"]
	if drifted.Kind != "drift" {
		t.Fatalf("decaying bandwidth verdict = %q, want drift (%s)", drifted.Kind, drifted.Why)
	}
	// ~1%/run decay accumulating to ~9% fitted drop.
	if drifted.SlopePerRun > -0.005 || drifted.TotalRel > -0.05 {
		t.Errorf("drift magnitudes off: slope/run %.4f total %.4f", drifted.SlopePerRun, drifted.TotalRel)
	}
	// The corresponding wall series rises 1%/run — flagged too.
	if v := byKey["mc/write/mem=16/wall_seconds"]; v.Kind != "drift" {
		t.Errorf("rising wall verdict = %q, want drift", v.Kind)
	}
	if v := byKey["steady/bandwidth_mbps"]; v.Kind != "ok" {
		t.Errorf("steady entry verdict = %q, want ok (%s)", v.Kind, v.Why)
	}
	if len(tr.Flagged()) == 0 {
		t.Fatal("trend result reports nothing flagged")
	}
}

func TestImprovementIsNotFlagged(t *testing.T) {
	// Bandwidth *rising* 1%/run is a trend but not a regression; only
	// the wall series (falling — also an improvement) must stay ok too.
	recs := driftHistory(10, -0.01)
	tr := Trend(recs, Options{})
	for _, v := range tr.Verdicts {
		if v.Kind != "ok" {
			t.Errorf("improving series %s/%s flagged %s: %s", v.Series.Entry, v.Series.Metric, v.Kind, v.Why)
		}
	}
}

func TestStepChangeDetected(t *testing.T) {
	var recs []RecordFile
	for i := 0; i < 8; i++ {
		bw := 1000.0
		if i >= 5 {
			bw = 880 // a single 12% level drop at run 5
		}
		recs = append(recs, RecordFile{
			Path: fmt.Sprintf("run%d.json", i),
			Rec:  rec("fig6", int64(i+1), bwEntry("e", bw)),
		})
	}
	tr := Trend(recs, Options{})
	var v Verdict
	for _, c := range tr.Verdicts {
		if c.Series.Metric == "bandwidth_mbps" {
			v = c
		}
	}
	if v.Kind != "step" {
		t.Fatalf("verdict = %q, want step (%s)", v.Kind, v.Why)
	}
	if v.StepAt != 5 {
		t.Errorf("step located at run %d, want 5", v.StepAt)
	}
	if math.Abs(v.StepRel+0.12) > 0.01 {
		t.Errorf("step magnitude %.3f, want about -0.12", v.StepRel)
	}
}

func TestSteadyMetricsFlagBothDirections(t *testing.T) {
	mk := func(vals map[int]float64) []RecordFile {
		var recs []RecordFile
		for i := 0; i < 6; i++ {
			v := 301.0
			if alt, ok := vals[i]; ok {
				v = alt
			}
			r := rec("chaos", int64(i+1), obs.RunEntry{
				Name:    "chaos/detection",
				Metrics: map[string]float64{"detected": v},
			})
			recs = append(recs, RecordFile{Path: fmt.Sprintf("r%d", i), Rec: r})
		}
		return recs
	}
	// Constant counts: ok.
	tr := Trend(mk(nil), Options{})
	if v := tr.Verdicts[0]; v.Kind != "ok" || v.Series.Better != Steady {
		t.Fatalf("constant steady metric: %+v", v)
	}
	// A jump *up* — more detections — is still a behavioural step for a
	// steady metric (the workload or the detector changed).
	tr = Trend(mk(map[int]float64{5: 400}), Options{})
	if v := tr.Verdicts[0]; v.Kind != "step" {
		t.Fatalf("rising steady metric verdict = %q, want step (%s)", v.Kind, v.Why)
	}
	// Moving off zero is a step even though the relative change is
	// undefined.
	var recs []RecordFile
	for i := 0; i < 4; i++ {
		v := 0.0
		if i == 3 {
			v = 7
		}
		recs = append(recs, RecordFile{Path: fmt.Sprintf("r%d", i), Rec: rec("chaos", int64(i+1),
			obs.RunEntry{Name: "chaos/detection", Metrics: map[string]float64{"undetected": v}})})
	}
	tr = Trend(recs, Options{})
	if v := tr.Verdicts[0]; v.Kind != "step" {
		t.Fatalf("off-zero steady metric verdict = %q, want step", v.Kind)
	}
}

func TestShortSeriesAndMissingEntriesAreOk(t *testing.T) {
	// Two runs with a 1% move: below step tolerance, too short for the
	// slope fit — ok. An entry present in only one record: ok.
	recs := []RecordFile{
		{Path: "a", Rec: rec("fig6", 1, bwEntry("e", 1000), bwEntry("once", 10))},
		{Path: "b", Rec: rec("fig6", 2, bwEntry("e", 990))},
	}
	tr := Trend(recs, Options{})
	for _, v := range tr.Verdicts {
		if v.Kind != "ok" {
			t.Errorf("%s/%s flagged %s on a short series", v.Series.Entry, v.Series.Metric, v.Kind)
		}
	}
}

// TestTrendRenderGolden pins the verdict-table rendering — the exact
// bytes `mcio trend` prints for a fixed synthetic history.
func TestTrendRenderGolden(t *testing.T) {
	recs := driftHistory(10, 0.01)
	recs = append(recs, RecordFile{Path: "chaos.json", Rec: rec("chaos", 99999,
		obs.RunEntry{Name: "chaos/detection", Metrics: map[string]float64{"detected": 301, "undetected": 0}})})
	got := Trend(recs, Options{}).Render()
	golden := filepath.Join("testdata", "trend_golden.txt")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with UPDATE_GOLDEN=1 to create)", err)
	}
	if got != string(want) {
		t.Errorf("trend table drifted from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	for _, must := range []string{"DRIFT:", "mc/write/mem=16", "no steps or drift", "flagged"} {
		if must == "no steps or drift" {
			if strings.Contains(got, must) {
				t.Errorf("flagged history rendered as clean:\n%s", got)
			}
			continue
		}
		if !strings.Contains(got, must) {
			t.Errorf("render missing %q:\n%s", must, got)
		}
	}
}
