package history

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"mcio/internal/obs"
)

func reportHistory() *TrendResult {
	recs := driftHistory(10, 0.01)
	host := &obs.HostInfo{GitCommit: "abc123def456", GoVersion: "go1.22", GOMAXPROCS: 4, NumCPU: 4}
	for i := range recs {
		recs[i].Rec.Host = host
	}
	recs = append(recs, RecordFile{Path: "chaos.json", Rec: rec("chaos", 7777,
		obs.RunEntry{Name: "chaos/detection", Metrics: map[string]float64{"detected": 301, "repair_bytes": 1024}})})
	return Trend(recs, Options{})
}

// TestReportDeterministic is the acceptance check: the HTML report is
// byte-identical across reruns on the same history (run under -race by
// the CI observability race step).
func TestReportDeterministic(t *testing.T) {
	tr := reportHistory()
	render := func() []byte {
		var b bytes.Buffer
		if err := WriteReport(&b, tr); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}
	first := render()
	for i := 0; i < 3; i++ {
		if !bytes.Equal(render(), first) {
			t.Fatalf("report rendering differs across reruns (attempt %d)", i)
		}
	}
	// And across a fresh analysis of the same records, not just a
	// re-render of one TrendResult.
	var b bytes.Buffer
	if err := WriteReport(&b, reportHistory()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b.Bytes(), first) {
		t.Fatal("report differs across fresh Trend() analyses of the same history")
	}
}

func TestReportSelfContainedHTML(t *testing.T) {
	var b bytes.Buffer
	if err := WriteReport(&b, reportHistory()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, banned := range []string{"<script", "http://", "https://", "src=", "@import"} {
		if strings.Contains(out, banned) {
			t.Errorf("report is not self-contained: found %q", banned)
		}
	}
	for _, must := range []string{
		"<!DOCTYPE html>", "<svg", "polyline", "DRIFT",
		"mc/write/mem=16",                  // the drifting entry is named
		"chaos/detection", "repair_bytes",  // chaos records flow through
		"abc123def456", "go1.22",           // provenance surfaces
		"prefers-color-scheme: dark",       // dark mode is selected, not flipped
		"<title>",                          // native tooltips, no JS
	} {
		if !strings.Contains(out, must) {
			t.Errorf("report missing %q", must)
		}
	}
	// One sparkline per tracked series.
	if got, want := strings.Count(out, "<svg"), len(reportHistory().Verdicts); got != want {
		t.Errorf("%d sparklines for %d series", got, want)
	}
}

func TestReportEscapesEntryNames(t *testing.T) {
	recs := []RecordFile{
		{Path: "a", Rec: rec("fig6", 1, bwEntry(`x<b>&"inject"`, 1000))},
		{Path: "b", Rec: rec("fig6", 2, bwEntry(`x<b>&"inject"`, 1001))},
	}
	var b bytes.Buffer
	if err := WriteReport(&b, Trend(recs, Options{})); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "x<b>") {
		t.Error("entry name not HTML-escaped")
	}
	if !strings.Contains(b.String(), "x&lt;b&gt;") {
		t.Error("escaped entry name missing from report")
	}
}

func TestSparklineGeometryStaysInViewport(t *testing.T) {
	s := &Series{Entry: "e", Metric: "bandwidth_mbps", Better: HigherBetter}
	for i := 0; i < 12; i++ {
		s.Points = append(s.Points, Point{RecordIndex: i, Value: 100 + float64(i%5)*30})
	}
	var b strings.Builder
	writeSparkline(&b, s)
	svg := b.String()
	var x, y float64
	for _, part := range strings.Split(svg, "cx=\"")[1:] {
		if _, err := fmt.Sscanf(part, "%f\" cy=\"%f\"", &x, &y); err != nil {
			t.Fatalf("unparseable circle in %s: %v", part, err)
		}
		if x < 0 || x > sparkW || y < 0 || y > sparkH {
			t.Errorf("point (%.1f, %.1f) outside %gx%g viewport", x, y, sparkW, sparkH)
		}
	}
}
