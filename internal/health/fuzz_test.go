package health

import (
	"encoding/binary"
	"math"
	"testing"
)

// FuzzHealthDetector feeds random latency series into the suspicion
// detector and asserts the structural properties every caller relies
// on: scores stay finite whatever the input, sustained degradation
// drives the score monotonically up (and eventually to suspicion), and
// sustained health drives it monotonically down (and eventually clear).
func FuzzHealthDetector(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{0xff, 0x00, 0xff, 0x00, 0xaa, 0x55})
	f.Add(make([]byte, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDetector(Config{})

		// Phase 0: arbitrary samples derived from the fuzz input must
		// never produce a non-finite score — including zeros, huge
		// values and denormals.
		for i := 0; i+8 <= len(data); i += 8 {
			bits := binary.LittleEndian.Uint64(data[i:])
			v := math.Float64frombits(bits)
			d.Observe("fuzz", 0, v)
			if s := d.Score("fuzz", 0); math.IsNaN(s) || math.IsInf(s, 0) {
				t.Fatalf("non-finite score %v after sample %v", s, v)
			}
		}

		// Phases 1-3 run on a fresh entity with a baseline and a
		// degradation level derived from the input, so the property is
		// checked across a family of scales, not one magic number.
		base := 0.5
		degr := 3.0
		if len(data) > 0 {
			base = 0.5 + float64(data[0])/128.0 // [0.5, 2.5)
		}
		if len(data) > 1 {
			degr = 2.5 + float64(data[1])/64.0 // [2.5, 6.5)× baseline
		}

		// Phase 1: healthy baseline.
		for i := 0; i < 40; i++ {
			d.Observe("fuzz", 1, base)
			if s := d.Score("fuzz", 1); math.IsNaN(s) || math.IsInf(s, 0) {
				t.Fatalf("non-finite score %v during warmup", s)
			}
		}
		if d.Suspected("fuzz", 1) {
			t.Fatal("constant healthy signal suspected")
		}

		// Phase 2: sustained degradation — the score must be monotone
		// non-decreasing and end suspected.
		prev := d.Score("fuzz", 1)
		for i := 0; i < 60; i++ {
			d.Observe("fuzz", 1, base*degr)
			s := d.Score("fuzz", 1)
			if math.IsNaN(s) || math.IsInf(s, 0) {
				t.Fatalf("non-finite score %v under degradation", s)
			}
			if s < prev-1e-9 {
				t.Fatalf("score fell under sustained degradation: %v -> %v at step %d", prev, s, i)
			}
			prev = s
		}
		if !d.Suspected("fuzz", 1) {
			t.Fatalf("sustained %.2f× degradation not suspected (score %v)", degr, prev)
		}

		// Phase 3: sustained health — the score must be monotone
		// non-increasing and suspicion must clear.
		prev = d.Score("fuzz", 1)
		for i := 0; i < 80; i++ {
			d.Observe("fuzz", 1, base)
			s := d.Score("fuzz", 1)
			if math.IsNaN(s) || math.IsInf(s, 0) {
				t.Fatalf("non-finite score %v during recovery", s)
			}
			if s > prev+1e-9 {
				t.Fatalf("score rose under sustained health: %v -> %v at step %d", prev, s, i)
			}
			prev = s
		}
		if d.Suspected("fuzz", 1) {
			t.Fatalf("sustained health did not clear suspicion (score %v)", prev)
		}
	})
}
