// Package health is the gray-failure detection subsystem: a φ-accrual
// style suspicion detector fed from observed per-entity latencies in
// the simulated clock, and a circuit breaker driven by its verdicts.
//
// Hard faults announce themselves — a crash is a missing heartbeat, a
// transient OST an error return. Gray faults don't: a disk at 10%
// bandwidth still answers, a flaky NIC still delivers most messages.
// The only evidence is statistical, so the detector keeps, per entity,
// an EWMA baseline of the observed signal and an EWMA of its absolute
// deviation, scores each new sample by how many deviations it sits
// above the baseline (the accrual φ), smooths that score, and declares
// the entity suspected when the smoothed score crosses a threshold.
// Hysteresis (a lower clear threshold) keeps flapping components from
// thrashing the planner, and the baseline freezes while a sample is
// anomalous so a long degradation cannot teach the detector that slow
// is the new normal.
//
// Everything runs in simulated time on deterministic inputs: the same
// observation sequence yields the same suspicion verdicts forever.
package health

import (
	"math"
	"sort"
	"strconv"

	"mcio/internal/obs"
)

// Config tunes the suspicion detector. The zero value selects the
// defaults noted on each field.
type Config struct {
	// BaselineAlpha is the EWMA weight for the baseline mean and
	// deviation (default 0.1: ~10 samples of memory).
	BaselineAlpha float64
	// ScoreBeta is the EWMA weight for the smoothed suspicion score
	// (default 0.3: suspicion reacts in a few samples, not one).
	ScoreBeta float64
	// AnomalyGate is the instantaneous φ beyond which a sample is
	// considered anomalous and the baseline freezes (default 3).
	AnomalyGate float64
	// SuspectScore is the smoothed score at or above which an entity
	// becomes suspected (default 2).
	SuspectScore float64
	// ClearFraction sets the hysteresis: suspicion clears only when the
	// smoothed score falls to SuspectScore*ClearFraction (default 0.5).
	ClearFraction float64
	// Warmup is how many samples an entity needs before suspicion can
	// fire; the baseline always absorbs warmup samples (default 8).
	Warmup int
}

func (c Config) withDefaults() Config {
	if c.BaselineAlpha <= 0 || c.BaselineAlpha > 1 {
		c.BaselineAlpha = 0.1
	}
	if c.ScoreBeta <= 0 || c.ScoreBeta > 1 {
		c.ScoreBeta = 0.3
	}
	if c.AnomalyGate <= 0 {
		c.AnomalyGate = 3
	}
	if c.SuspectScore <= 0 {
		c.SuspectScore = 2
	}
	if c.ClearFraction <= 0 || c.ClearFraction >= 1 {
		c.ClearFraction = 0.5
	}
	if c.Warmup <= 0 {
		c.Warmup = 8
	}
	return c
}

// maxPhi caps the instantaneous accrual score so absurd samples (a
// target 10^6× its baseline) still produce finite, comparable scores.
const maxPhi = 64.0

type key struct {
	kind string
	id   int
}

type entity struct {
	n         int
	mean      float64
	dev       float64
	score     float64
	suspected bool
	events    int
}

// Detector accrues suspicion per (kind, id) entity — e.g. ("ost", 3)
// or ("node", 7). It is deterministic and not safe for concurrent use;
// the single-goroutine cost loop owns it.
type Detector struct {
	cfg         Config
	ents        map[key]*entity
	transitions int

	o          *obs.Observer
	scoreGauge map[key]*obs.Gauge
	suspGauge  map[string]*obs.Gauge
	eventCtr   map[key]*obs.Counter
}

// NewDetector builds a detector; zero-value cfg fields take defaults.
func NewDetector(cfg Config) *Detector {
	return &Detector{
		cfg:        cfg.withDefaults(),
		ents:       map[key]*entity{},
		scoreGauge: map[key]*obs.Gauge{},
		suspGauge:  map[string]*obs.Gauge{},
		eventCtr:   map[key]*obs.Counter{},
	}
}

// Config returns the detector's effective (defaulted) configuration.
func (d *Detector) Config() Config { return d.cfg }

// SetObserver attaches metrics: health.suspicion{kind,id} gauges,
// health.suspected{kind} entity counts, health.suspect_events{kind,id}
// transition counters.
func (d *Detector) SetObserver(o *obs.Observer) {
	if d == nil {
		return
	}
	d.o = o
	d.scoreGauge = map[key]*obs.Gauge{}
	d.suspGauge = map[string]*obs.Gauge{}
	d.eventCtr = map[key]*obs.Counter{}
}

// Observe feeds one sample for entity (kind, id) and returns whether
// the entity is suspected afterwards. The signal is a normalized
// service ratio — observed latency over nominal, so 1 is healthy and 4
// is "four times slower than it should be" — but any stationary
// positive signal works. Non-finite samples are ignored.
func (d *Detector) Observe(kind string, id int, value float64) bool {
	if d == nil {
		return false
	}
	if math.IsNaN(value) || math.IsInf(value, 0) {
		return d.Suspected(kind, id)
	}
	k := key{kind, id}
	e := d.ents[k]
	if e == nil {
		e = &entity{mean: value}
		d.ents[k] = e
	}

	eps := 0.05*math.Abs(e.mean) + 1e-9
	phi := 0.0
	if value > e.mean {
		phi = (value - e.mean) / (e.dev + eps)
	}
	if phi > maxPhi {
		phi = maxPhi
	}
	// Robust baseline: anomalous samples (φ at or beyond the gate) are
	// scored but not absorbed, so sustained degradation keeps looking
	// degraded instead of becoming the new baseline. Warmup samples
	// always absorb — there is no baseline to defend yet.
	if e.n < d.cfg.Warmup || phi < d.cfg.AnomalyGate {
		a := d.cfg.BaselineAlpha
		e.mean += a * (value - e.mean)
		e.dev += a * (math.Abs(value-e.mean) - e.dev)
	}
	e.score += d.cfg.ScoreBeta * (phi - e.score)
	e.n++

	if e.n > d.cfg.Warmup {
		if !e.suspected && e.score >= d.cfg.SuspectScore {
			e.suspected = true
			e.events++
			d.transitions++
			if d.o != nil {
				c := d.eventCtr[k]
				if c == nil {
					c = d.o.Counter("health.suspect_events",
						obs.L("kind", kind), obs.L("id", strconv.Itoa(id)))
					d.eventCtr[k] = c
				}
				c.Inc()
			}
		} else if e.suspected && e.score <= d.cfg.SuspectScore*d.cfg.ClearFraction {
			e.suspected = false
		}
	}
	d.export(k, e)
	return e.suspected
}

func (d *Detector) export(k key, e *entity) {
	if d.o == nil {
		return
	}
	g := d.scoreGauge[k]
	if g == nil {
		g = d.o.Gauge("health.suspicion", obs.L("kind", k.kind), obs.L("id", strconv.Itoa(k.id)))
		d.scoreGauge[k] = g
	}
	g.Set(e.score)
	sg := d.suspGauge[k.kind]
	if sg == nil {
		sg = d.o.Gauge("health.suspected", obs.L("kind", k.kind))
		d.suspGauge[k.kind] = sg
	}
	n := 0
	for kk, ee := range d.ents {
		if kk.kind == k.kind && ee.suspected {
			n++
		}
	}
	sg.Set(float64(n))
}

// Suspected reports whether entity (kind, id) is currently suspected.
func (d *Detector) Suspected(kind string, id int) bool {
	if d == nil {
		return false
	}
	e := d.ents[key{kind, id}]
	return e != nil && e.suspected
}

// Score returns the entity's smoothed suspicion score (0 when unseen).
func (d *Detector) Score(kind string, id int) float64 {
	if d == nil {
		return 0
	}
	e := d.ents[key{kind, id}]
	if e == nil {
		return 0
	}
	return e.score
}

// SuspectedIDs returns the currently suspected entity ids of one kind,
// ascending.
func (d *Detector) SuspectedIDs(kind string) []int {
	if d == nil {
		return nil
	}
	var out []int
	for k, e := range d.ents {
		if k.kind == kind && e.suspected {
			out = append(out, k.id)
		}
	}
	sort.Ints(out)
	return out
}

// Transitions returns how many healthy→suspected transitions have
// fired across all entities.
func (d *Detector) Transitions() int {
	if d == nil {
		return 0
	}
	return d.transitions
}
