package health

import (
	"math"
	"testing"

	"mcio/internal/obs"
)

func feed(d *Detector, kind string, id int, value float64, n int) {
	for i := 0; i < n; i++ {
		d.Observe(kind, id, value)
	}
}

func TestDetectorSuspectsSustainedDegradation(t *testing.T) {
	d := NewDetector(Config{})
	feed(d, "ost", 0, 1.0, 30)
	if d.Suspected("ost", 0) {
		t.Fatal("healthy baseline must not be suspected")
	}
	if s := d.Score("ost", 0); s > 0.5 {
		t.Fatalf("healthy score = %v, want ~0", s)
	}
	feed(d, "ost", 0, 5.0, 30)
	if !d.Suspected("ost", 0) {
		t.Fatalf("5× degradation for 30 samples not suspected (score %v)", d.Score("ost", 0))
	}
	if d.Transitions() != 1 {
		t.Fatalf("transitions = %d, want 1", d.Transitions())
	}
	if ids := d.SuspectedIDs("ost"); len(ids) != 1 || ids[0] != 0 {
		t.Fatalf("suspected ids = %v, want [0]", ids)
	}
}

func TestDetectorRecoversWithHysteresis(t *testing.T) {
	d := NewDetector(Config{})
	feed(d, "node", 3, 1.0, 30)
	feed(d, "node", 3, 6.0, 30)
	if !d.Suspected("node", 3) {
		t.Fatal("degraded node not suspected")
	}
	// One healthy sample must NOT clear it (hysteresis).
	d.Observe("node", 3, 1.0)
	if !d.Suspected("node", 3) {
		t.Fatal("a single healthy sample cleared suspicion — hysteresis missing")
	}
	feed(d, "node", 3, 1.0, 40)
	if d.Suspected("node", 3) {
		t.Fatalf("sustained health did not clear suspicion (score %v)", d.Score("node", 3))
	}
	// Re-degrading fires a second transition.
	feed(d, "node", 3, 6.0, 30)
	if d.Transitions() != 2 {
		t.Fatalf("transitions = %d, want 2", d.Transitions())
	}
}

// The robust baseline must not learn that slow is normal: after a long
// degradation the baseline mean stays near the healthy level.
func TestDetectorBaselineFreezesUnderAnomaly(t *testing.T) {
	d := NewDetector(Config{})
	feed(d, "ost", 1, 1.0, 30)
	feed(d, "ost", 1, 10.0, 200)
	e := d.ents[key{"ost", 1}]
	if e.mean > 2 {
		t.Fatalf("baseline absorbed the degradation: mean = %v", e.mean)
	}
	if !e.suspected {
		t.Fatal("still-degraded entity lost suspicion")
	}
}

func TestDetectorFlappingDoesNotThrash(t *testing.T) {
	d := NewDetector(Config{})
	feed(d, "ost", 2, 1.0, 30)
	// Alternate healthy/degraded: suspicion may enter, but must not
	// enter-and-clear on every flap cycle.
	for i := 0; i < 100; i++ {
		v := 1.0
		if i%2 == 0 {
			v = 6.0
		}
		d.Observe("ost", 2, v)
	}
	if tr := d.Transitions(); tr > 3 {
		t.Fatalf("flapping caused %d suspicion transitions — hysteresis too weak", tr)
	}
}

func TestDetectorExportsGauges(t *testing.T) {
	o := obs.New()
	d := NewDetector(Config{})
	d.SetObserver(o)
	feed(d, "ost", 0, 1.0, 30)
	feed(d, "ost", 0, 8.0, 30)
	if g := o.Gauge("health.suspicion", obs.L("kind", "ost"), obs.L("id", "0")).Value(); g < 2 {
		t.Fatalf("health.suspicion gauge = %v, want >= threshold", g)
	}
	if g := o.Gauge("health.suspected", obs.L("kind", "ost")).Value(); g != 1 {
		t.Fatalf("health.suspected gauge = %v, want 1", g)
	}
	if c := o.Counter("health.suspect_events", obs.L("kind", "ost"), obs.L("id", "0")).Value(); c != 1 {
		t.Fatalf("health.suspect_events = %d, want 1", c)
	}
}

func TestDetectorNilSafe(t *testing.T) {
	var d *Detector
	if d.Observe("ost", 0, 1) || d.Suspected("ost", 0) || d.Score("ost", 0) != 0 ||
		d.SuspectedIDs("ost") != nil || d.Transitions() != 0 {
		t.Fatal("nil detector must be inert")
	}
}

func TestBreakerStateMachine(t *testing.T) {
	b := NewBreaker(BreakerConfig{FailureThreshold: 3, OpenSeconds: 1})
	if b.State() != BreakerClosed || !b.Allow(0) {
		t.Fatal("new breaker must be closed and allowing")
	}
	b.OnFailure(0.1)
	b.OnFailure(0.2)
	if b.State() != BreakerClosed {
		t.Fatal("breaker opened below threshold")
	}
	b.OnFailure(0.3) // third strike
	if b.State() != BreakerOpen || b.Opens() != 1 {
		t.Fatalf("state=%v opens=%d, want open/1", b.State(), b.Opens())
	}
	if b.Allow(0.5) {
		t.Fatal("open breaker allowed traffic before the probe deadline")
	}
	if b.FastFails() != 1 {
		t.Fatalf("fast fails = %d, want 1", b.FastFails())
	}
	// Probe deadline at 0.3+1: the next access is the half-open probe.
	if !b.Allow(1.5) || b.State() != BreakerHalfOpen {
		t.Fatalf("probe not admitted at deadline (state %v)", b.State())
	}
	// While the probe is in flight, everything else is still denied.
	if b.Allow(1.5) {
		t.Fatal("second access admitted during half-open probe")
	}
	b.OnSuccess(1.6)
	if b.State() != BreakerClosed {
		t.Fatalf("successful probe left state %v, want closed", b.State())
	}
}

func TestBreakerFailedProbeBacksOff(t *testing.T) {
	b := NewBreaker(BreakerConfig{FailureThreshold: 1, OpenSeconds: 1, BackoffFactor: 2})
	b.OnFailure(0) // opens; probe at 1
	if !b.Allow(1) {
		t.Fatal("probe not admitted")
	}
	b.OnFailure(1) // failed probe: reopen with doubled window, probe at 3
	if b.State() != BreakerOpen || b.Opens() != 2 {
		t.Fatalf("state=%v opens=%d, want open/2", b.State(), b.Opens())
	}
	if b.Allow(2.5) {
		t.Fatal("reopened breaker did not back off harder")
	}
	if !b.Allow(3.1) {
		t.Fatal("second probe not admitted after the grown window")
	}
	b.OnSuccess(3.2)
	if b.State() != BreakerClosed {
		t.Fatal("second probe success did not close")
	}
	// Closing resets the open span back to the base window.
	b.OnFailure(4) // opens; probe at 5, not 8
	if !b.Allow(5.1) {
		t.Fatal("open span did not reset after close")
	}
}

func TestWindowQuantile(t *testing.T) {
	w := NewWindow(8)
	if q := w.Quantile(0.95); q != 0 {
		t.Fatalf("empty window quantile = %v, want 0", q)
	}
	for _, v := range []float64{5, 1, 4, 2, 3} {
		w.Add(v)
	}
	if q := w.Quantile(0); q != 1 {
		t.Fatalf("p0 = %v, want 1", q)
	}
	if q := w.Quantile(1); q != 5 {
		t.Fatalf("p100 = %v, want 5", q)
	}
	if q := w.Quantile(0.5); q != 3 {
		t.Fatalf("p50 = %v, want 3", q)
	}
	// Ring behaviour: old samples age out.
	for i := 0; i < 8; i++ {
		w.Add(100)
	}
	if q := w.Quantile(0); q != 100 {
		t.Fatalf("aged-out samples still visible (p0 = %v)", q)
	}
	if w.Len() != 8 {
		t.Fatalf("len = %d, want 8", w.Len())
	}
}

func TestDetectorIgnoresNonFinite(t *testing.T) {
	d := NewDetector(Config{})
	feed(d, "ost", 0, 1.0, 20)
	d.Observe("ost", 0, math.NaN())
	d.Observe("ost", 0, math.Inf(1))
	if s := d.Score("ost", 0); math.IsNaN(s) || math.IsInf(s, 0) {
		t.Fatalf("non-finite samples poisoned the score: %v", s)
	}
}
