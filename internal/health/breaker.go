package health

import (
	"fmt"
	"sort"
)

// BreakerState is the circuit-breaker state machine position.
type BreakerState int

const (
	// BreakerClosed passes traffic and counts failures.
	BreakerClosed BreakerState = iota
	// BreakerOpen fails fast until the probe deadline.
	BreakerOpen
	// BreakerHalfOpen lets one probe through; its outcome decides.
	BreakerHalfOpen
)

// String names the state for reports and metrics labels.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// BreakerConfig tunes one circuit breaker. The zero value selects the
// defaults noted on each field.
type BreakerConfig struct {
	// FailureThreshold opens the breaker after N suspicion events
	// without an intervening success (default 3).
	FailureThreshold int
	// OpenSeconds is how long the breaker fails fast before letting a
	// half-open probe through (default 0.05 simulated seconds).
	OpenSeconds float64
	// BackoffFactor grows the open window each time a probe fails
	// (default 2).
	BackoffFactor float64
	// MaxOpenSeconds caps the grown open window (default 20×OpenSeconds).
	MaxOpenSeconds float64
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 3
	}
	if c.OpenSeconds <= 0 {
		c.OpenSeconds = 0.05
	}
	if c.BackoffFactor < 1 {
		c.BackoffFactor = 2
	}
	if c.MaxOpenSeconds <= 0 {
		c.MaxOpenSeconds = 20 * c.OpenSeconds
	}
	return c
}

// Breaker is one deterministic circuit breaker driven by an explicit
// simulated clock: Closed → (N failures) → Open → (deadline) →
// HalfOpen probe → Closed on success, back to Open (longer) on a
// failed probe. It is not safe for concurrent use; the
// single-goroutine cost loop owns it and passes simulated `now`
// everywhere, so the same call sequence reproduces the same decisions
// forever.
type Breaker struct {
	cfg       BreakerConfig
	state     BreakerState
	failures  int
	probeAt   float64
	openSpan  float64
	opens     int
	fastFails int
}

// NewBreaker builds a breaker; zero-value cfg fields take defaults.
func NewBreaker(cfg BreakerConfig) *Breaker {
	c := cfg.withDefaults()
	return &Breaker{cfg: c, openSpan: c.OpenSeconds}
}

// Allow reports whether an access may proceed at simulated time now.
// Closed always allows. Open allows nothing until the probe deadline,
// at which point the breaker moves to HalfOpen and admits exactly one
// probe. Denied accesses are counted as fast-fails.
func (b *Breaker) Allow(now float64) bool {
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if now >= b.probeAt {
			b.state = BreakerHalfOpen
			return true
		}
		b.fastFails++
		return false
	default: // BreakerHalfOpen: the probe is in flight; hold the line.
		b.fastFails++
		return false
	}
}

// OnFailure records one suspicion event (a retry ladder fired, a
// probe failed) at simulated time now.
func (b *Breaker) OnFailure(now float64) {
	switch b.state {
	case BreakerClosed:
		b.failures++
		if b.failures >= b.cfg.FailureThreshold {
			b.open(now)
		}
	case BreakerHalfOpen:
		// Failed probe: back off harder.
		b.openSpan *= b.cfg.BackoffFactor
		if b.openSpan > b.cfg.MaxOpenSeconds {
			b.openSpan = b.cfg.MaxOpenSeconds
		}
		b.open(now)
	case BreakerOpen:
		// Already failing fast; nothing to learn.
	}
}

// OnSuccess records one healthy access at simulated time now: it
// resets the failure count and closes a half-open breaker.
func (b *Breaker) OnSuccess(now float64) {
	b.failures = 0
	if b.state == BreakerHalfOpen {
		b.state = BreakerClosed
		b.openSpan = b.cfg.OpenSeconds
	}
}

func (b *Breaker) open(now float64) {
	b.state = BreakerOpen
	b.failures = 0
	b.probeAt = now + b.openSpan
	b.opens++
}

// State returns the current state.
func (b *Breaker) State() BreakerState { return b.state }

// Opens returns how many times the breaker has opened.
func (b *Breaker) Opens() int { return b.opens }

// FastFails returns how many accesses were denied while open.
func (b *Breaker) FastFails() int { return b.fastFails }

// Window is a small fixed-size sliding window with deterministic
// quantile queries, used for the hedging trigger ("re-request when a
// message is slower than the p95 of recent deliveries"). Not safe for
// concurrent use.
type Window struct {
	buf  []float64
	next int
	full bool
}

// NewWindow builds a window holding the last n samples (min 8).
func NewWindow(n int) *Window {
	if n < 8 {
		n = 8
	}
	return &Window{buf: make([]float64, n)}
}

// Add records one sample.
func (w *Window) Add(v float64) {
	w.buf[w.next] = v
	w.next++
	if w.next == len(w.buf) {
		w.next = 0
		w.full = true
	}
}

// Len returns how many samples the window currently holds.
func (w *Window) Len() int {
	if w.full {
		return len(w.buf)
	}
	return w.next
}

// Quantile returns the p-quantile (0..1) of the held samples by
// nearest-rank on a sorted copy; 0 when empty.
func (w *Window) Quantile(p float64) float64 {
	n := w.Len()
	if n == 0 {
		return 0
	}
	sorted := make([]float64, n)
	copy(sorted, w.buf[:n])
	sort.Float64s(sorted)
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	idx := int(p * float64(n-1))
	return sorted[idx]
}
