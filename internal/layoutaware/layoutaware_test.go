package layoutaware

import (
	"testing"

	"mcio/internal/collio"
	"mcio/internal/machine"
	"mcio/internal/mpi"
	"mcio/internal/pfs"
)

func testContext(t *testing.T, ranks, perNode int, stripe int64) *collio.Context {
	t.Helper()
	topo, err := mpi.BlockTopology(ranks, perNode)
	if err != nil {
		t.Fatal(err)
	}
	mc := machine.Testbed640()
	mc.Nodes = topo.Nodes()
	avail := make([]int64, topo.Nodes())
	for i := range avail {
		avail[i] = mc.MemPerNode
	}
	fsCfg := pfs.DefaultConfig(4)
	fsCfg.StripeUnit = stripe
	return &collio.Context{
		Topo:    topo,
		Machine: mc,
		Avail:   avail,
		FS:      fsCfg,
		Params:  collio.DefaultParams(1 << 10),
	}
}

func contiguousRequests(n int, size int64) []collio.RankRequest {
	reqs := make([]collio.RankRequest, n)
	for r := 0; r < n; r++ {
		reqs[r] = collio.RankRequest{
			Rank:    r,
			Extents: []pfs.Extent{{Offset: int64(r) * size, Length: size}},
		}
	}
	return reqs
}

func TestPlanAlignsDomainsToStripes(t *testing.T) {
	const stripe = 256
	ctx := testContext(t, 12, 4, stripe) // 3 nodes, 3 aggregators
	reqs := contiguousRequests(12, 1000) // 12000 bytes: not stripe-friendly
	plan, err := New().Plan(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(reqs); err != nil {
		t.Fatal(err)
	}
	// Every interior domain boundary must sit on a stripe boundary.
	for i, d := range plan.Domains[:len(plan.Domains)-1] {
		end := d.Extents[len(d.Extents)-1].End()
		if end%stripe != 0 {
			t.Errorf("domain %d ends at %d, not stripe-aligned", i, end)
		}
	}
	// No stripe unit is shared by two domains.
	owner := map[int64]int{}
	for i, d := range plan.Domains {
		for _, e := range d.Extents {
			for s := e.Offset / stripe; s <= (e.End()-1)/stripe; s++ {
				if prev, ok := owner[s]; ok && prev != i {
					t.Fatalf("stripe %d owned by domains %d and %d", s, prev, i)
				}
				owner[s] = i
			}
		}
	}
}

func TestPlanCoversEverything(t *testing.T) {
	ctx := testContext(t, 6, 2, 64)
	reqs := []collio.RankRequest{
		{Rank: 0, Extents: []pfs.Extent{{Offset: 13, Length: 700}}},
		{Rank: 4, Extents: []pfs.Extent{{Offset: 1000, Length: 333}}},
	}
	plan, err := New().Plan(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(reqs); err != nil {
		t.Fatal(err)
	}
}

func TestPlanEmpty(t *testing.T) {
	ctx := testContext(t, 4, 2, 64)
	plan, err := New().Plan(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Domains) != 0 {
		t.Fatal("empty plan expected")
	}
}

func TestPlanInvalidRank(t *testing.T) {
	ctx := testContext(t, 4, 2, 64)
	_, err := New().Plan(ctx, []collio.RankRequest{{Rank: 9, Extents: []pfs.Extent{{Offset: 0, Length: 1}}}})
	if err == nil {
		t.Fatal("invalid rank accepted")
	}
}

func TestName(t *testing.T) {
	if New().Name() != "layout-aware" {
		t.Fatal("name")
	}
}

func TestFewerRequestsThanUnaligned(t *testing.T) {
	// The point of layout awareness: aligned domains decompose into fewer
	// per-target requests than oblivious even splits when the split point
	// lands mid-stripe.
	const stripe = 256
	ctx := testContext(t, 12, 4, stripe)
	reqs := contiguousRequests(12, 1000)
	plan, err := New().Plan(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	var alignedReqs int
	for _, d := range plan.Domains {
		for _, acc := range ctx.FS.MapExtents(d.Extents) {
			alignedReqs += acc.Requests
		}
	}
	if alignedReqs == 0 {
		t.Fatal("no requests mapped")
	}
	// 12000 bytes over stripes of 256 = 47 stripe units; one owner each
	// means per-domain accesses merge into one run per target.
	if alignedReqs > 4*len(plan.Domains) {
		t.Fatalf("aligned plan still fragments: %d requests", alignedReqs)
	}
}
