// Package layoutaware implements the layout-aware collective I/O strategy
// the paper's related-work section compares against (LACIO, Chen et al.,
// IPDPS'11): classic two-phase aggregation, but with file-domain
// boundaries snapped to the parallel file system's stripe layout so that
// no two aggregators ever touch the same stripe unit.
//
// It shares the baseline's weaknesses the paper targets — fixed
// one-aggregator-per-node placement, no memory awareness — which makes it
// the natural third point of comparison: layout awareness alone versus
// memory consciousness alone.
package layoutaware

import (
	"fmt"

	"mcio/internal/collio"
	"mcio/internal/pfs"
)

// Strategy is the layout-aware planner.
type Strategy struct {
	// AggregatorsPerNode mirrors the two-phase knob; default 1.
	AggregatorsPerNode int
}

// New returns the default layout-aware strategy.
func New() *Strategy { return &Strategy{AggregatorsPerNode: 1} }

// Name implements collio.Strategy.
func (s *Strategy) Name() string { return "layout-aware" }

// Plan implements collio.Strategy: an even offset split like two-phase,
// with every domain boundary rounded down to a stripe-unit multiple, so
// each stripe unit has exactly one owning aggregator.
func (s *Strategy) Plan(ctx *collio.Context, reqs []collio.RankRequest) (*collio.Plan, error) {
	if err := ctx.Validate(); err != nil {
		return nil, err
	}
	perNode := s.AggregatorsPerNode
	if perNode <= 0 {
		perNode = 1
	}
	var all []pfs.Extent
	ranksWithData := make([]int, 0, len(reqs))
	for _, r := range reqs {
		if r.Rank < 0 || r.Rank >= ctx.Topo.Size() {
			return nil, fmt.Errorf("layoutaware: request for invalid rank %d", r.Rank)
		}
		if len(r.Extents) > 0 {
			all = append(all, r.Extents...)
			ranksWithData = append(ranksWithData, r.Rank)
		}
	}
	norm := pfs.NormalizeExtents(all)
	plan := &collio.Plan{Strategy: s.Name(), Groups: 1, GroupRanks: [][]int{ranksWithData}}
	if len(norm) == 0 {
		return plan, nil
	}

	var aggs []int
	for node := 0; node < ctx.Topo.Nodes(); node++ {
		ranks := ctx.Topo.RanksOnNode(node)
		for i := 0; i < perNode && i < len(ranks); i++ {
			aggs = append(aggs, ranks[i])
		}
	}
	if len(aggs) == 0 {
		return nil, fmt.Errorf("layoutaware: topology has no ranks")
	}

	su := ctx.FS.StripeUnit
	span := pfs.Span(norm)
	nAggs := int64(len(aggs))
	domSize := (span.Length + nAggs - 1) / nAggs
	// Round the domain size up to a whole stripe unit: the layout-aware
	// alignment that keeps every stripe with a single owner.
	domSize = (domSize + su - 1) / su * su
	if domSize < su {
		domSize = su
	}
	// Align the start down to a stripe boundary too.
	start := span.Offset / su * su
	cur := start
	for i := int64(0); i < nAggs && cur < span.End(); i++ {
		hi := cur + domSize
		if i == nAggs-1 || hi > span.End() {
			hi = span.End()
		}
		exts := pfs.Clip(norm, cur, hi)
		cur = hi
		if len(exts) == 0 {
			continue
		}
		agg := aggs[i]
		node := ctx.Topo.NodeOf(agg)
		buf := ctx.Params.CollBufSize
		var severity float64
		if avail := ctx.Avail[node]; avail < buf {
			severity = float64(buf-avail) / float64(buf)
		}
		plan.Domains = append(plan.Domains, collio.Domain{
			Extents:       exts,
			Bytes:         pfs.TotalBytes(exts),
			Group:         0,
			Aggregator:    agg,
			AggNode:       node,
			BufferBytes:   buf,
			PagedSeverity: severity,
		})
	}
	// The loop above caps the last domain at the span end; if rounding
	// left a tail uncovered (cur < end with all aggregators used), fold
	// it into the final domain.
	if cur < span.End() && len(plan.Domains) > 0 {
		last := &plan.Domains[len(plan.Domains)-1]
		tail := pfs.Clip(norm, cur, span.End())
		last.Extents = pfs.NormalizeExtents(append(append([]pfs.Extent(nil), last.Extents...), tail...))
		last.Bytes = pfs.TotalBytes(last.Extents)
	}
	return plan, nil
}
