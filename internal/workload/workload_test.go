package workload

import (
	"testing"
	"testing/quick"

	mrand "math/rand"

	"mcio/internal/collio"
	"mcio/internal/pfs"
	"mcio/internal/stats"
)

func TestDimsCreate(t *testing.T) {
	cases := []struct {
		n    int
		want [3]int
	}{
		{1, [3]int{1, 1, 1}},
		{8, [3]int{2, 2, 2}},
		{120, [3]int{6, 5, 4}},
		{1080, [3]int{12, 10, 9}},
		{7, [3]int{7, 1, 1}},
		{12, [3]int{3, 2, 2}},
	}
	for _, c := range cases {
		got, err := DimsCreate(c.n)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("DimsCreate(%d) = %v, want %v", c.n, got, c.want)
		}
		if got[0]*got[1]*got[2] != c.n {
			t.Errorf("DimsCreate(%d) does not multiply out", c.n)
		}
	}
	if _, err := DimsCreate(0); err == nil {
		t.Error("DimsCreate(0) accepted")
	}
}

func TestCollPerfValidate(t *testing.T) {
	good := CollPerf{ArrayDim: 16, ElemBytes: 4, Grid: [3]int{2, 2, 2}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bads := []CollPerf{
		{ArrayDim: 0, ElemBytes: 4, Grid: [3]int{1, 1, 1}},
		{ArrayDim: 4, ElemBytes: 0, Grid: [3]int{1, 1, 1}},
		{ArrayDim: 4, ElemBytes: 4, Grid: [3]int{0, 1, 1}},
		{ArrayDim: 4, ElemBytes: 4, Grid: [3]int{8, 1, 1}},
	}
	for i, c := range bads {
		if err := c.Validate(); err == nil {
			t.Errorf("bad coll_perf %d accepted", i)
		}
	}
}

func TestCollPerfCoversFileExactly(t *testing.T) {
	c := CollPerf{ArrayDim: 12, ElemBytes: 4, Grid: [3]int{3, 2, 2}}
	reqs, err := c.Requests()
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 12 {
		t.Fatalf("got %d requests", len(reqs))
	}
	var all []pfs.Extent
	var total int64
	for _, r := range reqs {
		b := r.Bytes()
		if b == 0 {
			t.Fatalf("rank %d has no data", r.Rank)
		}
		total += b
		all = append(all, r.Extents...)
	}
	if total != c.TotalBytes() {
		t.Fatalf("ranks hold %d bytes, file is %d", total, c.TotalBytes())
	}
	norm := pfs.NormalizeExtents(all)
	if len(norm) != 1 || norm[0] != (pfs.Extent{Offset: 0, Length: c.TotalBytes()}) {
		t.Fatalf("requests do not tile the file exactly: %v", norm)
	}
}

func TestCollPerfDisjoint(t *testing.T) {
	c := CollPerf{ArrayDim: 10, ElemBytes: 2, Grid: [3]int{2, 3, 2}} // uneven
	reqs, err := c.Requests()
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, r := range reqs {
		total += r.Bytes()
	}
	// Disjointness: sum of per-rank bytes equals bytes of the union.
	var all []pfs.Extent
	for _, r := range reqs {
		all = append(all, r.Extents...)
	}
	if union := pfs.TotalBytes(pfs.NormalizeExtents(all)); union != total {
		t.Fatalf("requests overlap: union %d != sum %d", union, total)
	}
}

func TestIORInterleaved(t *testing.T) {
	w := IOR{Ranks: 3, BlockSize: 100, TransferSize: 50, Segments: 2}
	reqs, err := w.Requests()
	if err != nil {
		t.Fatal(err)
	}
	if w.TotalBytes() != 600 || w.BytesPerRank() != 200 {
		t.Fatalf("sizes: total=%d perRank=%d", w.TotalBytes(), w.BytesPerRank())
	}
	// Rank 1: segment 0 at 100, segment 1 at 400.
	want := []pfs.Extent{{Offset: 100, Length: 100}, {Offset: 400, Length: 100}}
	got := reqs[1].Extents
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("rank 1 extents = %v, want %v", got, want)
	}
}

func TestIORValidate(t *testing.T) {
	bads := []IOR{
		{Ranks: 0, BlockSize: 10, TransferSize: 10, Segments: 1},
		{Ranks: 1, BlockSize: 0, TransferSize: 10, Segments: 1},
		{Ranks: 1, BlockSize: 10, TransferSize: 0, Segments: 1},
		{Ranks: 1, BlockSize: 10, TransferSize: 10, Segments: 0},
		{Ranks: 1, BlockSize: 10, TransferSize: 3, Segments: 1},
	}
	for i, w := range bads {
		if err := w.Validate(); err == nil {
			t.Errorf("bad IOR %d accepted", i)
		}
	}
}

func TestIORRandomKeepsVolumes(t *testing.T) {
	w := IOR{Ranks: 4, BlockSize: 60, TransferSize: 20, Segments: 3, Random: true, Seed: 7}
	reqs, err := w.Requests()
	if err != nil {
		t.Fatal(err)
	}
	var all []pfs.Extent
	for _, r := range reqs {
		if r.Bytes() != w.BytesPerRank() {
			t.Fatalf("rank %d holds %d bytes, want %d", r.Rank, r.Bytes(), w.BytesPerRank())
		}
		all = append(all, r.Extents...)
	}
	norm := pfs.NormalizeExtents(all)
	if pfs.TotalBytes(norm) != w.TotalBytes() {
		t.Fatalf("random mode lost bytes: %d != %d", pfs.TotalBytes(norm), w.TotalBytes())
	}
	if len(norm) != 1 {
		t.Fatalf("random mode must still cover the file exactly: %v", norm)
	}
}

func TestIORRandomReproducible(t *testing.T) {
	w := IOR{Ranks: 4, BlockSize: 60, TransferSize: 20, Segments: 3, Random: true, Seed: 7}
	a, _ := w.Requests()
	b, _ := w.Requests()
	for r := range a {
		if len(a[r].Extents) != len(b[r].Extents) {
			t.Fatal("random IOR not reproducible")
		}
		for i := range a[r].Extents {
			if a[r].Extents[i] != b[r].Extents[i] {
				t.Fatal("random IOR not reproducible")
			}
		}
	}
	w2 := w
	w2.Seed = 8
	c, _ := w2.Requests()
	same := true
	for r := range a {
		for i := range a[r].Extents {
			if i < len(c[r].Extents) && a[r].Extents[i] != c[r].Extents[i] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds gave identical random layout")
	}
}

func TestContiguousAndStrided(t *testing.T) {
	c := Contiguous(3, 100)
	if len(c) != 3 || c[2].Extents[0].Offset != 200 {
		t.Fatalf("Contiguous = %+v", c)
	}
	s := Strided(2, 3, 10)
	// rank 1: blocks at (0*2+1)*10=10, (1*2+1)*10=30, (2*2+1)*10=50.
	want := []pfs.Extent{{Offset: 10, Length: 10}, {Offset: 30, Length: 10}, {Offset: 50, Length: 10}}
	for i, e := range s[1].Extents {
		if e != want[i] {
			t.Fatalf("Strided rank 1 = %v, want %v", s[1].Extents, want)
		}
	}
}

// Property: every generated workload covers its declared TotalBytes
// exactly and disjointly.
func TestWorkloadCoverageProperty(t *testing.T) {
	r := stats.NewRNG(73)
	err := quick.Check(func(seed uint64) bool {
		rr := stats.NewRNG(seed)
		switch rr.Intn(3) {
		case 0:
			n := rr.Intn(32) + 4
			grid, _ := DimsCreate(n)
			c := CollPerf{ArrayDim: int64(rr.Intn(10) + 8), ElemBytes: int64(rr.Intn(8) + 1), Grid: grid}
			if c.Validate() != nil {
				return true // grid larger than dim: skip
			}
			reqs, err := c.Requests()
			if err != nil {
				return false
			}
			return coversExactly(reqs, c.TotalBytes())
		case 1:
			tr := int64(rr.Intn(8)+1) * 10
			w := IOR{
				Ranks:        rr.Intn(8) + 1,
				BlockSize:    tr * int64(rr.Intn(4)+1),
				TransferSize: tr,
				Segments:     rr.Intn(4) + 1,
			}
			reqs, err := w.Requests()
			if err != nil {
				return false
			}
			return coversExactly(reqs, w.TotalBytes())
		default:
			tr := int64(rr.Intn(8)+1) * 10
			w := IOR{
				Ranks:        rr.Intn(8) + 1,
				BlockSize:    tr * int64(rr.Intn(4)+1),
				TransferSize: tr,
				Segments:     rr.Intn(4) + 1,
				Random:       true,
				Seed:         rr.Uint64(),
			}
			reqs, err := w.Requests()
			if err != nil {
				return false
			}
			return coversExactly(reqs, w.TotalBytes())
		}
	}, &quick.Config{MaxCount: 150, Rand: mrand.New(mrand.NewSource(int64(r.Uint64())))})
	if err != nil {
		t.Fatal(err)
	}
}

// coversExactly reports whether the requests' union holds exactly total
// bytes with no overlap between ranks.
func coversExactly(reqs []collio.RankRequest, total int64) bool {
	var all []pfs.Extent
	var sum int64
	for _, r := range reqs {
		sum += r.Bytes()
		all = append(all, r.Extents...)
	}
	return sum == total && pfs.TotalBytes(pfs.NormalizeExtents(all)) == total
}

func TestUnbalanced(t *testing.T) {
	reqs := Unbalanced(4, 10)
	if len(reqs) != 4 {
		t.Fatalf("ranks = %d", len(reqs))
	}
	// Rank r holds (r+1)*10 bytes; ranges are contiguous end to end.
	var off int64
	for r, req := range reqs {
		want := pfs.Extent{Offset: off, Length: int64(r+1) * 10}
		if req.Extents[0] != want {
			t.Fatalf("rank %d extent = %v, want %v", r, req.Extents[0], want)
		}
		off += want.Length
	}
	if !coversExactly(reqs, 100) { // 10+20+30+40
		t.Fatal("unbalanced requests do not tile")
	}
}

func TestReversedNodes(t *testing.T) {
	reqs := ReversedNodes(3, 100)
	if reqs[0].Extents[0].Offset != 200 || reqs[2].Extents[0].Offset != 0 {
		t.Fatalf("reversal wrong: %v", reqs)
	}
	if !coversExactly(reqs, 300) {
		t.Fatal("reversed requests do not tile")
	}
}
