// Package workload generates the access patterns of the paper's
// evaluation: the coll_perf benchmark from the ROMIO test suite (a 3-D
// block-distributed array written and read in row-major file order) and
// LLNL's IOR benchmark (interleaved/segmented and random access), plus
// synthetic patterns used by the extended test suite.
//
// A generator produces one collio.RankRequest per rank — the flattened
// file extents a real MPI-IO run would derive from each rank's file view —
// along with the per-process data volume, so the harness can report
// bandwidth exactly as the original benchmarks do.
package workload

import (
	"fmt"

	"mcio/internal/collio"
	"mcio/internal/datatype"
	"mcio/internal/pfs"
	"mcio/internal/stats"
)

// CollPerf describes a coll_perf run: an N×N×N element array, distributed
// in 3-D blocks over a process grid, stored row-major in one shared file.
// The paper runs 2048³ 4-byte elements over 120 processes (a 32 GB file).
type CollPerf struct {
	// ArrayDim is N, the cube's edge length in elements.
	ArrayDim int64
	// ElemBytes is the element width (coll_perf uses 4-byte ints).
	ElemBytes int64
	// Grid is the process grid; Grid[0]*Grid[1]*Grid[2] must equal the
	// rank count. Use DimsCreate to factor a rank count.
	Grid [3]int
}

// Validate reports an error for impossible geometry.
func (c CollPerf) Validate() error {
	if c.ArrayDim <= 0 || c.ElemBytes <= 0 {
		return fmt.Errorf("workload: coll_perf dims must be positive")
	}
	for _, g := range c.Grid {
		if g <= 0 {
			return fmt.Errorf("workload: coll_perf grid %v must be positive", c.Grid)
		}
		if int64(g) > c.ArrayDim {
			return fmt.Errorf("workload: coll_perf grid %v exceeds array dim %d", c.Grid, c.ArrayDim)
		}
	}
	return nil
}

// TotalBytes returns the file size of the run.
func (c CollPerf) TotalBytes() int64 {
	return c.ArrayDim * c.ArrayDim * c.ArrayDim * c.ElemBytes
}

// Requests generates one request per rank. Uneven divisions hand the
// remainder elements to the leading ranks of each dimension, so any rank
// count with a valid grid works.
func (c CollPerf) Requests() ([]collio.RankRequest, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	nprocs := c.Grid[0] * c.Grid[1] * c.Grid[2]
	reqs := make([]collio.RankRequest, 0, nprocs)
	rank := 0
	for i := 0; i < c.Grid[0]; i++ {
		for j := 0; j < c.Grid[1]; j++ {
			for k := 0; k < c.Grid[2]; k++ {
				sub := datatype.Subarray{
					Sizes: []int64{c.ArrayDim, c.ArrayDim, c.ArrayDim},
					Subsizes: []int64{
						blockLen(c.ArrayDim, c.Grid[0], i),
						blockLen(c.ArrayDim, c.Grid[1], j),
						blockLen(c.ArrayDim, c.Grid[2], k),
					},
					Starts: []int64{
						blockStart(c.ArrayDim, c.Grid[0], i),
						blockStart(c.ArrayDim, c.Grid[1], j),
						blockStart(c.ArrayDim, c.Grid[2], k),
					},
					ElemBytes: c.ElemBytes,
				}
				blocks := sub.Flatten()
				exts := make([]pfs.Extent, len(blocks))
				for b, blk := range blocks {
					exts[b] = pfs.Extent{Offset: blk.Offset, Length: blk.Length}
				}
				reqs = append(reqs, collio.RankRequest{Rank: rank, Extents: exts})
				rank++
			}
		}
	}
	return reqs, nil
}

// blockStart/blockLen implement MPI_BLOCK-style distribution with the
// remainder spread over the leading blocks.
func blockStart(n int64, parts, idx int) int64 {
	base := n / int64(parts)
	rem := n % int64(parts)
	i := int64(idx)
	if i < rem {
		return i * (base + 1)
	}
	return rem*(base+1) + (i-rem)*base
}

func blockLen(n int64, parts, idx int) int64 {
	base := n / int64(parts)
	if int64(idx) < n%int64(parts) {
		return base + 1
	}
	return base
}

// DimsCreate factors nprocs into a balanced 3-D grid, mirroring
// MPI_Dims_create: dimensions as close to each other as possible,
// non-increasing.
func DimsCreate(nprocs int) ([3]int, error) {
	if nprocs <= 0 {
		return [3]int{}, fmt.Errorf("workload: nprocs %d must be positive", nprocs)
	}
	best := [3]int{nprocs, 1, 1}
	bestSpread := nprocs - 1
	for a := 1; a*a*a <= nprocs; a++ {
		if nprocs%a != 0 {
			continue
		}
		rest := nprocs / a
		for b := a; b*b <= rest; b++ {
			if rest%b != 0 {
				continue
			}
			cDim := rest / b
			if spread := cDim - a; spread < bestSpread {
				best = [3]int{cDim, b, a}
				bestSpread = spread
			}
		}
	}
	return best, nil
}

// IOR describes an IOR run in its segmented (interleaved) layout: the file
// is a sequence of segments; each segment holds one contiguous block per
// rank, in rank order. TransferSize is the unit of each I/O call and must
// divide BlockSize; the access pattern of one collective call is the whole
// file, as in IOR's collective MPI-IO mode.
//
//	file = [seg 0: r0 block, r1 block, ...][seg 1: r0 block, ...]...
type IOR struct {
	Ranks        int
	BlockSize    int64 // contiguous bytes per rank per segment
	TransferSize int64 // granularity of individual transfers
	Segments     int   // number of segments ("-s")
	// Random shuffles each rank's transfer offsets pseudo-randomly within
	// its own blocks (IOR's random-offset mode, "Interleaved Or Random").
	Random bool
	// Seed drives the random mode reproducibly.
	Seed uint64
}

// Validate reports an error for impossible geometry.
func (w IOR) Validate() error {
	switch {
	case w.Ranks <= 0:
		return fmt.Errorf("workload: IOR ranks must be positive")
	case w.BlockSize <= 0 || w.TransferSize <= 0 || w.Segments <= 0:
		return fmt.Errorf("workload: IOR sizes must be positive")
	case w.BlockSize%w.TransferSize != 0:
		return fmt.Errorf("workload: IOR transfer size %d must divide block size %d",
			w.TransferSize, w.BlockSize)
	}
	return nil
}

// TotalBytes returns the file size of the run.
func (w IOR) TotalBytes() int64 {
	return int64(w.Ranks) * w.BlockSize * int64(w.Segments)
}

// BytesPerRank returns the per-process data volume ("I/O data message per
// MPI process" in the paper's wording).
func (w IOR) BytesPerRank() int64 { return w.BlockSize * int64(w.Segments) }

// Requests generates one request per rank.
func (w IOR) Requests() ([]collio.RankRequest, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	segStride := int64(w.Ranks) * w.BlockSize
	reqs := make([]collio.RankRequest, w.Ranks)
	for r := 0; r < w.Ranks; r++ {
		var exts []pfs.Extent
		for s := 0; s < w.Segments; s++ {
			base := int64(s)*segStride + int64(r)*w.BlockSize
			exts = append(exts, pfs.Extent{Offset: base, Length: w.BlockSize})
		}
		reqs[r] = collio.RankRequest{Rank: r, Extents: exts}
	}
	if !w.Random {
		return reqs, nil
	}
	// Random mode: each rank's data volume is unchanged but lands at
	// shuffled transfer-sized slots of the whole file region. Slots are
	// partitioned among ranks by a seeded global permutation, keeping the
	// per-rank volume and the file coverage identical to the interleaved
	// mode (what IOR's random mode randomizes is locality).
	slots := w.TotalBytes() / w.TransferSize
	perRank := w.BytesPerRank() / w.TransferSize
	perm := stats.NewRNG(w.Seed).Perm(int(slots))
	for r := 0; r < w.Ranks; r++ {
		var exts []pfs.Extent
		for i := int64(0); i < perRank; i++ {
			slot := perm[int64(r)*perRank+i]
			exts = append(exts, pfs.Extent{
				Offset: int64(slot) * w.TransferSize,
				Length: w.TransferSize,
			})
		}
		reqs[r] = collio.RankRequest{Rank: r, Extents: pfs.NormalizeExtents(exts)}
	}
	return reqs, nil
}

// Contiguous gives each of n ranks one contiguous range of size bytes, in
// rank order — the simplest well-formed pattern.
func Contiguous(n int, size int64) []collio.RankRequest {
	reqs := make([]collio.RankRequest, n)
	for r := 0; r < n; r++ {
		reqs[r] = collio.RankRequest{
			Rank:    r,
			Extents: []pfs.Extent{{Offset: int64(r) * size, Length: size}},
		}
	}
	return reqs
}

// Strided gives each rank a vector pattern: count blocks of blockLen,
// rank-interleaved (rank r's block i at offset (i*n + r)*blockLen).
func Strided(n int, count int, blockLen int64) []collio.RankRequest {
	reqs := make([]collio.RankRequest, n)
	for r := 0; r < n; r++ {
		var exts []pfs.Extent
		for i := 0; i < count; i++ {
			exts = append(exts, pfs.Extent{
				Offset: int64(i*n+r) * blockLen,
				Length: blockLen,
			})
		}
		reqs[r] = collio.RankRequest{Rank: r, Extents: exts}
	}
	return reqs
}

// Unbalanced gives rank r a contiguous range of (r+1)*unit bytes, laid
// end to end — a triangular load where the last rank writes n times the
// first's. It stresses the workload-partition and placement logic, which
// the balanced IOR/coll_perf patterns never do.
func Unbalanced(n int, unit int64) []collio.RankRequest {
	reqs := make([]collio.RankRequest, n)
	var off int64
	for r := 0; r < n; r++ {
		length := int64(r+1) * unit
		reqs[r] = collio.RankRequest{
			Rank:    r,
			Extents: []pfs.Extent{{Offset: off, Length: length}},
		}
		off += length
	}
	return reqs
}

// ReversedNodes gives rank r the range belonging to position (n-1-r) of a
// contiguous layout: data locality is the exact opposite of rank order,
// an adversarial case for aggregator placement heuristics that assume
// rank-major locality.
func ReversedNodes(n int, size int64) []collio.RankRequest {
	reqs := make([]collio.RankRequest, n)
	for r := 0; r < n; r++ {
		reqs[r] = collio.RankRequest{
			Rank:    r,
			Extents: []pfs.Extent{{Offset: int64(n-1-r) * size, Length: size}},
		}
	}
	return reqs
}
