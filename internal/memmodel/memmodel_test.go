package memmodel

import (
	"math"
	"testing"
	"testing/quick"

	"mcio/internal/machine"
	"mcio/internal/stats"
)

func testMachine(nodes int) *machine.Machine {
	cfg := machine.Testbed640()
	cfg.Nodes = nodes
	return machine.MustNew(cfg)
}

func TestFixedDistribution(t *testing.T) {
	d := Fixed{Bytes: 123}
	r := stats.NewRNG(1)
	for i := 0; i < 10; i++ {
		if d.Sample(r) != 123 {
			t.Fatal("Fixed must always return Bytes")
		}
	}
}

func TestApplyAvailabilityClamps(t *testing.T) {
	m := testMachine(8)
	cap := m.Cfg.MemPerNode
	// A distribution far beyond capacity must clamp down; far below the
	// floor must clamp up.
	ApplyAvailability(m, Fixed{Bytes: cap * 10}, stats.NewRNG(1), 0)
	for _, n := range m.Nodes {
		if n.Avail != cap {
			t.Fatalf("avail %d not clamped to capacity %d", n.Avail, cap)
		}
	}
	ApplyAvailability(m, Fixed{Bytes: -5}, stats.NewRNG(1), 4096)
	for _, n := range m.Nodes {
		if n.Avail != 4096 {
			t.Fatalf("avail %d not clamped to floor", n.Avail)
		}
	}
}

func TestApplyAvailabilityReproducible(t *testing.T) {
	m1, m2 := testMachine(32), testMachine(32)
	d := Normal{Mean: 1 << 30, Sigma: 1 << 28}
	a1 := ApplyAvailability(m1, d, stats.NewRNG(99), 0)
	a2 := ApplyAvailability(m2, d, stats.NewRNG(99), 0)
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("node %d: %d != %d under same seed", i, a1[i], a2[i])
		}
	}
}

func TestApplyAvailabilityVariance(t *testing.T) {
	m := testMachine(256)
	d := Normal{Mean: 4 << 30, Sigma: 1 << 30}
	av := ApplyAvailability(m, d, stats.NewRNG(7), 0)
	xs := make([]float64, len(av))
	distinct := map[int64]bool{}
	for i, v := range av {
		xs[i] = float64(v)
		distinct[v] = true
	}
	if len(distinct) < 100 {
		t.Fatalf("normal availability produced only %d distinct values", len(distinct))
	}
	s := stats.Summarize(xs)
	if math.Abs(s.Mean-float64(4<<30)) > float64(1<<28) {
		t.Fatalf("availability mean %g too far from configured mean", s.Mean)
	}
}

func TestTrackerReserveRelease(t *testing.T) {
	tr := NewTrackerFromAvail([]int64{100, 50})
	if !tr.Reserve(0, 60) {
		t.Fatal("reservation within availability must fit")
	}
	if tr.Avail(0) != 40 || tr.Reserved(0) != 60 || tr.Overrun(0) != 0 {
		t.Fatalf("state after reserve: avail=%d reserved=%d overrun=%d",
			tr.Avail(0), tr.Reserved(0), tr.Overrun(0))
	}
	if tr.Reserve(0, 60) {
		t.Fatal("second reservation must over-commit")
	}
	if tr.Overrun(0) != 20 {
		t.Fatalf("overrun = %d, want 20", tr.Overrun(0))
	}
	if tr.Avail(0) != 0 {
		t.Fatalf("over-committed avail = %d, want 0", tr.Avail(0))
	}
	tr.Release(0, 60)
	if tr.Overrun(0) != 0 || tr.Avail(0) != 40 {
		t.Fatalf("release did not restore: avail=%d overrun=%d", tr.Avail(0), tr.Overrun(0))
	}
}

func TestTrackerOverrunCappedByReservation(t *testing.T) {
	tr := NewTrackerFromAvail([]int64{0})
	tr.Reserve(0, 10)
	if tr.Overrun(0) != 10 {
		t.Fatalf("overrun = %d, want 10", tr.Overrun(0))
	}
}

func TestTrackerPanics(t *testing.T) {
	tr := NewTrackerFromAvail([]int64{10})
	for _, f := range []func(){
		func() { tr.Reserve(0, -1) },
		func() { tr.Release(0, -1) },
		func() { tr.Release(0, 1) }, // nothing reserved yet
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestTrackerFromMachine(t *testing.T) {
	m := testMachine(3)
	m.Nodes[1].Avail = 777
	tr := NewTracker(m)
	if tr.Nodes() != 3 {
		t.Fatalf("Nodes = %d", tr.Nodes())
	}
	if tr.Avail(1) != 777 {
		t.Fatalf("tracker did not copy node availability: %d", tr.Avail(1))
	}
	// Tracker must be a snapshot: mutating it leaves the machine alone.
	tr.Reserve(1, 100)
	if m.Nodes[1].Avail != 777 {
		t.Fatal("tracker mutated machine state")
	}
}

// Property: for any sequence of reservations, avail + reserved - overrun is
// conserved per node at the initial availability (when avail is clamped at
// 0, the overrun accounts for the difference).
func TestTrackerConservation(t *testing.T) {
	r := stats.NewRNG(5)
	err := quick.Check(func(seed uint64, opsRaw uint8) bool {
		rr := stats.NewRNG(seed)
		const initial = 1000
		tr := NewTrackerFromAvail([]int64{initial})
		ops := int(opsRaw%20) + 1
		for i := 0; i < ops; i++ {
			if rr.Float64() < 0.7 {
				tr.Reserve(0, rr.Int63n(400))
			} else if tr.Reserved(0) > 0 {
				tr.Release(0, rr.Int63n(tr.Reserved(0)+1))
			}
			got := tr.Avail(0) + initial - tr.Avail(0) // avail clamp sanity
			_ = got
			// Conservation: reserved - overrun = initial - rawAvail where
			// rawAvail = Avail when non-negative. Check the public identity:
			if tr.Avail(0) > 0 && tr.Overrun(0) != 0 {
				return false // cannot have headroom and overrun at once
			}
			if tr.Avail(0)+tr.Reserved(0)-tr.Overrun(0) != initial {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 300, Rand: quickRand(r)})
	if err != nil {
		t.Fatal(err)
	}
}

func TestConsumptionSummary(t *testing.T) {
	tr := NewTrackerFromAvail([]int64{100, 100, 100, 100})
	tr.Reserve(0, 10)
	tr.Reserve(2, 30)
	s := tr.ConsumptionSummary()
	if s.N != 2 {
		t.Fatalf("summary over %d nodes, want 2 (only hosts with reservations)", s.N)
	}
	if s.Mean != 20 {
		t.Fatalf("mean = %v, want 20", s.Mean)
	}
}

func TestDistributionStrings(t *testing.T) {
	for _, d := range []Distribution{
		Fixed{Bytes: 1}, Normal{Mean: 1, Sigma: 2},
		Uniform{Lo: 0, Hi: 10}, Pareto{Xm: 1, Alpha: 2},
	} {
		if d.String() == "" {
			t.Errorf("%T has empty String()", d)
		}
	}
}

func TestUniformRange(t *testing.T) {
	d := Uniform{Lo: 10, Hi: 20}
	r := stats.NewRNG(3)
	for i := 0; i < 1000; i++ {
		v := d.Sample(r)
		if v < 10 || v >= 20 {
			t.Fatalf("uniform sample out of range: %v", v)
		}
	}
}

func TestBimodal(t *testing.T) {
	d := Bimodal{PBusy: 0.5, BusyMean: 100, IdleMean: 10000, Sigma: 1}
	r := stats.NewRNG(9)
	var lo, hi int
	for i := 0; i < 2000; i++ {
		v := d.Sample(r)
		switch {
		case v < 1000:
			lo++
		case v > 9000:
			hi++
		default:
			t.Fatalf("bimodal sample %v between modes", v)
		}
	}
	if lo < 800 || hi < 800 {
		t.Fatalf("modes unbalanced: lo=%d hi=%d", lo, hi)
	}
	if d.String() == "" {
		t.Fatal("empty String")
	}
}
