// Package memmodel models per-node memory availability for aggregation
// buffers: the variance the paper identifies as a first-class exascale
// phenomenon ("the available memory per node can vary significantly among
// nodes"), and the accounting of aggregation-buffer reservations against
// that availability.
//
// Section 4 of the paper sets per-process memory buffers as normally
// distributed random variables whose mean equals the baseline's fixed
// aggregator buffer size (σ = 50 in their runs). Availability distributions
// here reproduce that setup with a seeded RNG so experiments are
// reproducible.
package memmodel

import (
	"fmt"
	"math"
	"strconv"

	"mcio/internal/machine"
	"mcio/internal/obs"
	"mcio/internal/stats"
)

// Distribution produces per-node available-memory samples in bytes.
type Distribution interface {
	// Sample returns one availability draw in bytes. Implementations may
	// return values outside any sensible range; callers clamp.
	Sample(r *stats.RNG) float64
	// String describes the distribution for experiment logs.
	String() string
}

// Fixed is a degenerate distribution: every node has exactly Bytes
// available. Used for baseline/no-variance ablations.
type Fixed struct{ Bytes int64 }

// Sample implements Distribution.
func (f Fixed) Sample(*stats.RNG) float64 { return float64(f.Bytes) }

func (f Fixed) String() string { return fmt.Sprintf("fixed(%d)", f.Bytes) }

// Normal draws availability from N(Mean, Sigma²), both in bytes. This is
// the paper's experimental setup (mean = baseline aggregator buffer size).
type Normal struct{ Mean, Sigma float64 }

// Sample implements Distribution.
func (n Normal) Sample(r *stats.RNG) float64 { return r.Normal(n.Mean, n.Sigma) }

func (n Normal) String() string { return fmt.Sprintf("normal(μ=%.0f,σ=%.0f)", n.Mean, n.Sigma) }

// Uniform draws availability uniformly from [Lo, Hi) bytes.
type Uniform struct{ Lo, Hi float64 }

// Sample implements Distribution.
func (u Uniform) Sample(r *stats.RNG) float64 { return u.Lo + (u.Hi-u.Lo)*r.Float64() }

func (u Uniform) String() string { return fmt.Sprintf("uniform[%.0f,%.0f)", u.Lo, u.Hi) }

// Pareto draws heavy-tailed availability: most nodes near the scale Xm,
// a few with much more. Models machines where co-located application state
// leaves wildly uneven headroom.
type Pareto struct{ Xm, Alpha float64 }

// Sample implements Distribution.
func (p Pareto) Sample(r *stats.RNG) float64 { return r.Pareto(p.Xm, p.Alpha) }

func (p Pareto) String() string { return fmt.Sprintf("pareto(xm=%.0f,α=%.2f)", p.Xm, p.Alpha) }

// Bimodal models a machine where nodes are either "busy" (application
// state consuming most memory) or "idle": with probability PBusy a node
// draws from N(BusyMean, Sigma²), otherwise from N(IdleMean, Sigma²).
// This is the adversarial regime for oblivious aggregator placement.
type Bimodal struct {
	PBusy    float64
	BusyMean float64
	IdleMean float64
	Sigma    float64
}

// Sample implements Distribution.
func (b Bimodal) Sample(r *stats.RNG) float64 {
	mean := b.IdleMean
	if r.Float64() < b.PBusy {
		mean = b.BusyMean
	}
	return r.Normal(mean, b.Sigma)
}

func (b Bimodal) String() string {
	return fmt.Sprintf("bimodal(p=%.2f,busy=%.0f,idle=%.0f,σ=%.0f)", b.PBusy, b.BusyMean, b.IdleMean, b.Sigma)
}

// ApplyAvailability samples dist once per node of m and sets each node's
// Avail to the draw clamped to [floor, node capacity]. It returns the
// resulting availability vector. A floor of 0 is allowed; draws below it
// clamp up to it.
func ApplyAvailability(m *machine.Machine, dist Distribution, r *stats.RNG, floor int64) []int64 {
	out := make([]int64, len(m.Nodes))
	for i, n := range m.Nodes {
		v := int64(dist.Sample(r))
		if v < floor {
			v = floor
		}
		if v > n.Capacity {
			v = n.Capacity
		}
		n.Avail = v
		out[i] = v
	}
	return out
}

// Tracker accounts aggregation-buffer reservations against node
// availability. Reservations may exceed availability — real systems page
// rather than fail — but the tracker records the over-commit so the cost
// engine can charge the paging penalty.
type Tracker struct {
	avail    []int64 // remaining un-reserved memory per node
	reserved []int64 // total bytes reserved per node
	overrun  []int64 // bytes reserved beyond initial availability
	o        *obs.Observer
}

// NewTracker builds a tracker over the current availability of m's nodes.
func NewTracker(m *machine.Machine) *Tracker {
	t := &Tracker{
		avail:    make([]int64, len(m.Nodes)),
		reserved: make([]int64, len(m.Nodes)),
		overrun:  make([]int64, len(m.Nodes)),
	}
	for i, n := range m.Nodes {
		t.avail[i] = n.Avail
	}
	return t
}

// NewTrackerFromAvail builds a tracker directly from an availability
// vector (bytes per node).
func NewTrackerFromAvail(avail []int64) *Tracker {
	t := &Tracker{
		avail:    append([]int64(nil), avail...),
		reserved: make([]int64, len(avail)),
		overrun:  make([]int64, len(avail)),
	}
	return t
}

// SetObserver attaches metrics to the tracker: every reservation that
// over-commits its node increments
// memmodel.overcommit_reservations{node} and adds the shortfall to
// memmodel.overcommit_bytes{node} — the planner-side view of the paging
// the cost engine will later charge. A nil observer detaches.
func (t *Tracker) SetObserver(o *obs.Observer) { t.o = o }

// RecordAvailability publishes one availability vector as
// memmodel.avail_bytes{node} gauges — the per-node samples the paper's
// run-time aggregator selection inspects. Nil-safe in both arguments.
func RecordAvailability(o *obs.Observer, avail []int64) {
	if o == nil {
		return
	}
	for node, v := range avail {
		o.Gauge("memmodel.avail_bytes", obs.L("node", strconv.Itoa(node))).Set(float64(v))
	}
}

// Nodes returns the number of nodes tracked.
func (t *Tracker) Nodes() int { return len(t.avail) }

// Avail returns the remaining un-reserved memory of a node in bytes.
// Over-committed nodes report 0, never negative.
func (t *Tracker) Avail(node int) int64 {
	if t.avail[node] < 0 {
		return 0
	}
	return t.avail[node]
}

// Reserved returns the total bytes reserved on a node.
func (t *Tracker) Reserved(node int) int64 { return t.reserved[node] }

// Overrun returns how many reserved bytes exceed the node's initial
// availability — the amount that would page.
func (t *Tracker) Overrun(node int) int64 { return t.overrun[node] }

// Reserve books bytes of aggregation buffer on a node. It returns true
// when the reservation fits entirely in the remaining availability; false
// means the node is now over-committed (the reservation still happens, as
// on a real machine, but the caller should expect paged bandwidth).
func (t *Tracker) Reserve(node int, bytes int64) bool {
	if bytes < 0 {
		panic("memmodel: negative reservation")
	}
	fits := t.avail[node] >= bytes
	t.avail[node] -= bytes
	t.reserved[node] += bytes
	if t.avail[node] < 0 {
		over := -t.avail[node]
		if over > bytes {
			over = bytes
		}
		t.overrun[node] += over
		if !fits && t.o != nil {
			l := obs.L("node", strconv.Itoa(node))
			t.o.Counter("memmodel.overcommit_reservations", l).Inc()
			t.o.Counter("memmodel.overcommit_bytes", l).Add(over)
		}
	}
	return fits
}

// Release returns bytes of a previous reservation to the node. Releasing
// more than is reserved panics: it indicates an accounting bug in the
// caller.
func (t *Tracker) Release(node int, bytes int64) {
	if bytes < 0 {
		panic("memmodel: negative release")
	}
	if bytes > t.reserved[node] {
		panic(fmt.Sprintf("memmodel: release %d exceeds reserved %d on node %d",
			bytes, t.reserved[node], node))
	}
	t.reserved[node] -= bytes
	t.avail[node] += bytes
	if t.avail[node] >= 0 {
		t.overrun[node] = 0
	} else {
		t.overrun[node] = -t.avail[node]
	}
}

// SetAvail rewrites a node's total memory budget to bytes mid-run,
// keeping existing reservations booked against the new budget: the
// remaining availability becomes bytes - reserved, and the overrun (the
// reserved bytes the new budget can no longer back — the amount that
// will page) is recomputed. The new budget is published as the node's
// memmodel.avail_bytes gauge when an observer is attached.
func (t *Tracker) SetAvail(node int, bytes int64) {
	if bytes < 0 {
		bytes = 0
	}
	t.avail[node] = bytes - t.reserved[node]
	if t.avail[node] >= 0 {
		t.overrun[node] = 0
	} else {
		t.overrun[node] = -t.avail[node]
	}
	if t.o != nil {
		t.o.Gauge("memmodel.avail_bytes", obs.L("node", strconv.Itoa(node))).Set(float64(bytes))
	}
}

// Budget returns a node's current total memory budget — remaining
// availability plus booked reservations, floored at zero. Gradual
// decay (a MemLeak fault) is applied against this: the leak fraction
// scales the budget a leak-free run would have, independent of how
// much of it is currently reserved.
func (t *Tracker) Budget(node int) int64 {
	b := t.avail[node] + t.reserved[node]
	if b < 0 {
		b = 0
	}
	return b
}

// Collapse removes fraction (clamped to [0,1]) of a node's current
// memory budget — the mid-operation availability collapse a co-resident
// application causes — and returns the new budget. Reservations stay
// booked; Severity reports how badly they now over-commit the node.
func (t *Tracker) Collapse(node int, fraction float64) int64 {
	if fraction < 0 {
		fraction = 0
	}
	if fraction > 1 {
		fraction = 1
	}
	budget := t.avail[node] + t.reserved[node]
	if budget < 0 {
		budget = 0
	}
	budget = int64(math.Round(float64(budget) * (1 - fraction)))
	t.SetAvail(node, budget)
	if t.o != nil {
		l := obs.L("node", strconv.Itoa(node))
		t.o.Counter("memmodel.collapse_events", l).Inc()
	}
	return budget
}

// Severity returns the paged fraction of a node's reservations in
// [0, 1]: 0 when every reserved byte is backed by the budget, 1 when
// none is. This is the PagedSeverity the cost engine charges for, so a
// mid-run SetAvail or Collapse immediately recomputes what the next
// round pays.
func (t *Tracker) Severity(node int) float64 {
	if t.reserved[node] <= 0 {
		return 0
	}
	s := float64(t.overrun[node]) / float64(t.reserved[node])
	if s > 1 {
		s = 1
	}
	return s
}

// ConsumptionSummary summarizes the reserved bytes per node that host at
// least one reservation. The paper reports aggregator memory-consumption
// variance; this is the sample it is computed over.
func (t *Tracker) ConsumptionSummary() stats.Summary {
	var xs []float64
	for _, r := range t.reserved {
		if r > 0 {
			xs = append(xs, float64(r))
		}
	}
	return stats.Summarize(xs)
}
