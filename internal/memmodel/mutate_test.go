package memmodel

import (
	"testing"

	"mcio/internal/obs"
)

func TestSetAvailRecomputesSeverityMidRun(t *testing.T) {
	tr := NewTrackerFromAvail([]int64{100, 100})
	if !tr.Reserve(0, 80) {
		t.Fatal("80 of 100 should fit")
	}
	if got := tr.Severity(0); got != 0 {
		t.Fatalf("severity with backed reservation = %v, want 0", got)
	}

	// Mid-run the budget drops to 20: 60 of the 80 reserved bytes now page.
	tr.SetAvail(0, 20)
	if got := tr.Severity(0); got != 0.75 {
		t.Fatalf("severity after SetAvail(20) = %v, want 0.75", got)
	}
	if got := tr.Avail(0); got != 0 {
		t.Fatalf("Avail on over-committed node = %d, want 0", got)
	}
	if got := tr.Overrun(0); got != 60 {
		t.Fatalf("overrun = %d, want 60", got)
	}

	// Budget restored: severity returns to 0 and headroom reappears.
	tr.SetAvail(0, 200)
	if got := tr.Severity(0); got != 0 {
		t.Fatalf("severity after restore = %v, want 0", got)
	}
	if got := tr.Avail(0); got != 120 {
		t.Fatalf("Avail after restore = %d, want 120", got)
	}
}

func TestCollapseRemovesFractionOfBudget(t *testing.T) {
	tr := NewTrackerFromAvail([]int64{100})
	tr.Reserve(0, 40) // budget 100: 40 reserved, 60 free
	got := tr.Collapse(0, 0.9)
	if got != 10 {
		t.Fatalf("collapsed budget = %d, want 10", got)
	}
	// 40 reserved against a 10-byte budget: 30 bytes page.
	if s := tr.Severity(0); s != 0.75 {
		t.Fatalf("severity after collapse = %v, want 0.75", s)
	}
	// Clamping: a >1 fraction removes everything.
	tr2 := NewTrackerFromAvail([]int64{50})
	tr2.Reserve(0, 50)
	if b := tr2.Collapse(0, 2); b != 0 {
		t.Fatalf("over-clamped collapse left budget %d", b)
	}
	if s := tr2.Severity(0); s != 1 {
		t.Fatalf("severity with zero budget = %v, want 1", s)
	}
}

func TestMutationObsGauges(t *testing.T) {
	o := obs.New()
	tr := NewTrackerFromAvail([]int64{100})
	tr.SetObserver(o)
	tr.Reserve(0, 50)
	tr.Collapse(0, 0.5) // budget 100 -> 50

	if got := o.Gauge("memmodel.avail_bytes", obs.L("node", "0")).Value(); got != 50 {
		t.Fatalf("avail_bytes gauge = %v, want 50 (the new budget)", got)
	}
	if got := o.Counter("memmodel.collapse_events", obs.L("node", "0")).Value(); got != 1 {
		t.Fatalf("collapse_events = %v, want 1", got)
	}
	tr.SetAvail(0, 75)
	if got := o.Gauge("memmodel.avail_bytes", obs.L("node", "0")).Value(); got != 75 {
		t.Fatalf("avail_bytes gauge after SetAvail = %v, want 75", got)
	}
}

func TestSeverityZeroWithoutReservations(t *testing.T) {
	tr := NewTrackerFromAvail([]int64{10})
	tr.Collapse(0, 1)
	if s := tr.Severity(0); s != 0 {
		t.Fatalf("severity with nothing reserved = %v, want 0", s)
	}
}
