// Package forwarding models an I/O forwarding layer in the style of ZOID
// and IOFSL, which the paper's related-work section situates itself
// against: compute processes ship their I/O calls to a small set of
// dedicated I/O nodes ("forwarders"), which merge the calls they receive
// and perform the storage accesses on the clients' behalf.
//
// Forwarding sits between independent I/O and collective I/O on the
// paper's spectrum: it reduces the number of file-system clients and
// merges requests per forwarder, but it does not reorganize data by file
// locality the way two-phase aggregation does — each forwarder still
// issues its clients' (interleaved, fragmented) extents.
package forwarding

import (
	"fmt"

	"mcio/internal/collio"
	"mcio/internal/pfs"
	"mcio/internal/sim"
)

// Config places the forwarding layer.
type Config struct {
	// Forwarders is the number of dedicated I/O nodes. They occupy the
	// machine's node indices after the compute nodes, so the machine
	// config must have at least topology-nodes + Forwarders nodes.
	Forwarders int
	// BufferBytes is each forwarder's staging buffer; a forwarder cycles
	// its clients' data through it in rounds, like an aggregator.
	BufferBytes int64
}

// Validate reports an error for an unusable layout.
func (c Config) Validate() error {
	if c.Forwarders <= 0 {
		return fmt.Errorf("forwarding: Forwarders must be positive")
	}
	if c.BufferBytes <= 0 {
		return fmt.Errorf("forwarding: BufferBytes must be positive")
	}
	return nil
}

// Cost prices the requests issued through the forwarding layer: every
// compute node ships its processes' data to its assigned forwarder
// (round-robin by node), and the forwarder performs the merged storage
// accesses, cycling its staging buffer.
func Cost(ctx *collio.Context, reqs []collio.RankRequest, op collio.Op, opt sim.Options, fcfg Config) (*collio.CostResult, error) {
	if err := ctx.Validate(); err != nil {
		return nil, err
	}
	if err := fcfg.Validate(); err != nil {
		return nil, err
	}
	computeNodes := ctx.Topo.Nodes()
	if ctx.Machine.Nodes < computeNodes+fcfg.Forwarders {
		return nil, fmt.Errorf("forwarding: machine has %d nodes, need %d compute + %d forwarders",
			ctx.Machine.Nodes, computeNodes, fcfg.Forwarders)
	}
	st := sim.StorageParams{
		Targets:         ctx.FS.Targets,
		TargetBW:        ctx.FS.TargetBW,
		ReqOverhead:     ctx.FS.ReqOverhead,
		NoncontigFactor: ctx.FS.NoncontigFactor,
		ReadBWFactor:    ctx.FS.ReadBWFactor,
	}
	eng, err := sim.NewEngine(ctx.Machine, st, opt)
	if err != nil {
		return nil, err
	}

	// Assign compute nodes to forwarders round-robin; gather each
	// forwarder's merged extent set and per-client-node volumes.
	type fwdState struct {
		extents []pfs.Extent
		clients map[int]int64 // compute node -> bytes
	}
	fwd := make([]*fwdState, fcfg.Forwarders)
	for i := range fwd {
		fwd[i] = &fwdState{clients: map[int]int64{}}
	}
	var userBytes int64
	for _, r := range reqs {
		norm := pfs.NormalizeExtents(r.Extents)
		if len(norm) == 0 {
			continue
		}
		b := pfs.TotalBytes(norm)
		userBytes += b
		node := ctx.Topo.NodeOf(r.Rank)
		f := fwd[node%fcfg.Forwarders]
		f.extents = append(f.extents, norm...)
		f.clients[node] += b
	}
	maxRounds := 0
	type fwdPlan struct {
		node    int
		extents []pfs.Extent
		bytes   int64
		rounds  int
		clients map[int]int64
	}
	plans := make([]fwdPlan, 0, fcfg.Forwarders)
	for i, f := range fwd {
		norm := pfs.NormalizeExtents(f.extents)
		if len(norm) == 0 {
			continue
		}
		bytes := pfs.TotalBytes(norm)
		rounds := int((bytes + fcfg.BufferBytes - 1) / fcfg.BufferBytes)
		if rounds > maxRounds {
			maxRounds = rounds
		}
		plans = append(plans, fwdPlan{
			node:    computeNodes + i, // forwarder i's dedicated node
			extents: norm,
			bytes:   bytes,
			rounds:  rounds,
			clients: f.clients,
		})
	}

	for k := 0; k < maxRounds; k++ {
		var round sim.Round
		for i, p := range plans {
			if k >= p.rounds {
				continue
			}
			for client, b := range p.clients {
				per := b / int64(p.rounds)
				if int64(k) < b%int64(p.rounds) {
					per++
				}
				if per == 0 {
					continue
				}
				m := sim.Message{SrcNode: client, DstNode: p.node, Bytes: per}
				if op == collio.Read {
					m.SrcNode, m.DstNode = m.DstNode, m.SrcNode
				}
				round.Messages = append(round.Messages, m)
			}
			slice := pfs.SliceData(p.extents, int64((k+i)%p.rounds)*fcfg.BufferBytes, fcfg.BufferBytes)
			for _, acc := range ctx.FS.MapExtents(slice) {
				round.IOOps = append(round.IOOps, sim.IOOp{
					Target:     acc.Target,
					Node:       p.node,
					Bytes:      acc.Bytes,
					Requests:   acc.Requests,
					Contiguous: acc.Contiguous,
					Write:      op == collio.Write,
				})
			}
		}
		eng.RunRound(round)
	}
	return &collio.CostResult{
		Strategy:    "io-forwarding",
		Op:          op,
		UserBytes:   userBytes,
		Seconds:     eng.Elapsed(),
		Bandwidth:   eng.Bandwidth(userBytes),
		Totals:      eng.Totals(),
		Aggregators: len(plans),
		Domains:     len(plans),
		Groups:      len(plans),
		MaxRounds:   maxRounds,
	}, nil
}
