package forwarding

import (
	"testing"

	"mcio/internal/collio"
	"mcio/internal/machine"
	"mcio/internal/mpi"
	"mcio/internal/pfs"
	"mcio/internal/sim"
	"mcio/internal/workload"
)

func testContext(t *testing.T, extraNodes int) (*collio.Context, []collio.RankRequest) {
	t.Helper()
	topo, err := mpi.BlockTopology(24, 4) // 6 compute nodes
	if err != nil {
		t.Fatal(err)
	}
	mc := machine.Testbed640()
	mc.Nodes = topo.Nodes() + extraNodes
	avail := make([]int64, mc.Nodes)
	for i := range avail {
		avail[i] = mc.MemPerNode
	}
	ctx := &collio.Context{
		Topo:    topo,
		Machine: mc,
		Avail:   avail,
		FS:      pfs.DefaultConfig(8),
		Params:  collio.DefaultParams(1 << 20),
	}
	w := workload.IOR{Ranks: 24, BlockSize: 256 << 10, TransferSize: 256 << 10, Segments: 4}
	reqs, err := w.Requests()
	if err != nil {
		t.Fatal(err)
	}
	return ctx, reqs
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{Forwarders: 2, BufferBytes: 1}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Config{Forwarders: 0, BufferBytes: 1}).Validate(); err == nil {
		t.Fatal("zero forwarders accepted")
	}
	if err := (Config{Forwarders: 1}).Validate(); err == nil {
		t.Fatal("zero buffer accepted")
	}
}

func TestCostBasics(t *testing.T) {
	ctx, reqs := testContext(t, 2)
	res, err := Cost(ctx, reqs, collio.Write, sim.DefaultOptions(), Config{Forwarders: 2, BufferBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if res.Strategy != "io-forwarding" {
		t.Fatalf("strategy = %q", res.Strategy)
	}
	if res.UserBytes != 24<<20 {
		t.Fatalf("user bytes = %d", res.UserBytes)
	}
	if res.Bandwidth <= 0 || res.Aggregators != 2 {
		t.Fatalf("result: %+v", res)
	}
	// Forwarding moves every byte over the network to the I/O nodes.
	if res.Totals.NetBytes < res.UserBytes {
		t.Fatalf("net bytes %d < user bytes %d", res.Totals.NetBytes, res.UserBytes)
	}
}

func TestCostNeedsForwarderNodes(t *testing.T) {
	ctx, reqs := testContext(t, 0) // no room for forwarders
	_, err := Cost(ctx, reqs, collio.Write, sim.DefaultOptions(), Config{Forwarders: 2, BufferBytes: 1 << 20})
	if err == nil {
		t.Fatal("missing forwarder nodes accepted")
	}
}

func TestCostReducesRequestsVsIndependent(t *testing.T) {
	ctx, reqs := testContext(t, 2)
	indep, err := collio.CostIndependent(ctx, reqs, collio.Write, sim.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	fwd, err := Cost(ctx, reqs, collio.Write, sim.DefaultOptions(), Config{Forwarders: 2, BufferBytes: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	// Merging at the forwarders must not issue more storage requests than
	// the clients would independently.
	if fwd.Totals.Requests > indep.Totals.Requests {
		t.Fatalf("forwarding requests %d > independent %d", fwd.Totals.Requests, indep.Totals.Requests)
	}
}

func TestCostDeterministic(t *testing.T) {
	ctx, reqs := testContext(t, 3)
	cfg := Config{Forwarders: 3, BufferBytes: 512 << 10}
	a, err := Cost(ctx, reqs, collio.Read, sim.DefaultOptions(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Cost(ctx, reqs, collio.Read, sim.DefaultOptions(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Seconds != b.Seconds {
		t.Fatal("nondeterministic")
	}
}

func TestCostEmptyRequests(t *testing.T) {
	ctx, _ := testContext(t, 1)
	res, err := Cost(ctx, nil, collio.Write, sim.DefaultOptions(), Config{Forwarders: 1, BufferBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.UserBytes != 0 || res.MaxRounds != 0 {
		t.Fatalf("empty result: %+v", res)
	}
}

func TestBufferSizeControlsRounds(t *testing.T) {
	ctx, reqs := testContext(t, 2)
	big, err := Cost(ctx, reqs, collio.Write, sim.DefaultOptions(), Config{Forwarders: 2, BufferBytes: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	small, err := Cost(ctx, reqs, collio.Write, sim.DefaultOptions(), Config{Forwarders: 2, BufferBytes: 256 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if small.MaxRounds <= big.MaxRounds {
		t.Fatalf("rounds: small buffer %d, big buffer %d", small.MaxRounds, big.MaxRounds)
	}
}
