package collio_test

import (
	"bytes"
	"testing"

	"mcio/internal/collio"
	"mcio/internal/faults"
	"mcio/internal/integrity"
	"mcio/internal/pfs"
	"mcio/internal/twophase"
)

// verifySetup plans a serial write workload and returns everything a
// verified-execution test needs: context, plan, requests, filled rank
// buffers and the fault-free oracle.
func verifySetup(t *testing.T, ranks, perNode int) (*collio.Context, *collio.Plan, []collio.RankRequest, []collio.RankData, []byte) {
	t.Helper()
	ctx := buildContext(t, ranks, perNode, collio.DefaultParams(256), nil)
	reqs := make([]collio.RankRequest, ranks)
	const chunk = 512
	for r := 0; r < ranks; r++ {
		reqs[r] = collio.RankRequest{Rank: r, Extents: []pfs.Extent{
			{Offset: int64(r) * chunk, Length: chunk},
		}}
	}
	plan, err := twophase.New().Plan(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]collio.RankData, ranks)
	oracle := make([]byte, int64(ranks)*chunk)
	for r := range data {
		buf := make([]byte, reqs[r].Bytes())
		fillPattern(r, buf)
		data[r] = collio.RankData{Req: reqs[r], Buf: buf}
		copy(oracle[int64(r)*chunk:], buf)
	}
	return ctx, plan, reqs, data, oracle
}

// flipPlan schedules n MsgBitFlip events on every node of the topology.
func flipPlan(nodes, n int) *faults.Plan {
	p := &faults.Plan{}
	for node := 0; node < nodes; node++ {
		for i := 0; i < n; i++ {
			p.Events = append(p.Events, faults.Event{
				Kind: faults.MsgBitFlip, Time: float64(i), Node: node, Target: -1})
		}
	}
	return p
}

// tornPlan schedules n TornWrite events on every target.
func tornPlan(targets, n int) *faults.Plan {
	p := &faults.Plan{}
	for tgt := 0; tgt < targets; tgt++ {
		for i := 0; i < n; i++ {
			p.Events = append(p.Events, faults.Event{
				Kind: faults.TornWrite, Time: float64(i), Node: -1, Target: tgt})
		}
	}
	return p
}

func ranksByNode(ctx *collio.Context) [][]int {
	out := make([][]int, ctx.Topo.Nodes())
	for r := 0; r < ctx.Topo.Size(); r++ {
		n := ctx.Topo.NodeOf(r)
		out[n] = append(out[n], r)
	}
	return out
}

func TestExecVerifiedCleanRoundTrip(t *testing.T) {
	ctx, plan, reqs, data, oracle := verifySetup(t, 6, 2)
	fsys, err := pfs.NewFileSystem(ctx.FS)
	if err != nil {
		t.Fatal(err)
	}
	file := fsys.Open("clean")
	chk := integrity.NewChecker(integrity.Config{Seed: 3, Repair: true})

	if err := collio.ExecVerified(ctx, plan, data, file, collio.Write, chk, nil); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(oracle))
	if _, err := file.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, oracle) {
		t.Fatal("verified write differs from oracle")
	}

	readData := make([]collio.RankData, len(data))
	for i := range readData {
		readData[i] = collio.RankData{Req: reqs[i], Buf: make([]byte, len(data[i].Buf))}
	}
	if err := collio.ExecVerified(ctx, plan, readData, file, collio.Read, chk, nil); err != nil {
		t.Fatal(err)
	}
	for i := range readData {
		if !bytes.Equal(readData[i].Buf, data[i].Buf) {
			t.Fatalf("rank %d read back different bytes", i)
		}
	}

	rep := chk.Report()
	if rep.Stamped == 0 || rep.Verified == 0 {
		t.Fatalf("integrity layer idle on the verified path: %+v", rep)
	}
	if rep.Detected != 0 || rep.Repaired != 0 || rep.Unrepaired != 0 || rep.RewrittenBytes != 0 {
		t.Fatalf("clean run reported corruption: %+v", rep)
	}
}

func TestExecVerifiedNilCheckerIsExec(t *testing.T) {
	ctx, plan, _, data, oracle := verifySetup(t, 6, 2)
	fsys, err := pfs.NewFileSystem(ctx.FS)
	if err != nil {
		t.Fatal(err)
	}
	file := fsys.Open("legacy")
	if err := collio.ExecVerified(ctx, plan, data, file, collio.Write, nil, nil); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(oracle))
	if _, err := file.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, oracle) {
		t.Fatal("nil-checker ExecVerified is not byte-identical to Exec")
	}
}

func TestExecVerifiedRepairsMessageFlips(t *testing.T) {
	ctx, plan, _, data, oracle := verifySetup(t, 6, 2)
	fsys, err := pfs.NewFileSystem(ctx.FS)
	if err != nil {
		t.Fatal(err)
	}
	file := fsys.Open("flips")
	corr := faults.NewCorrupter(flipPlan(ctx.Topo.Nodes(), 2), ranksByNode(ctx))
	chk := integrity.NewChecker(integrity.Config{Seed: 5, Repair: true, MaxRepairs: 16})

	if err := collio.ExecVerified(ctx, plan, data, file, collio.Write, chk, corr); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(oracle))
	if _, err := file.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, oracle) {
		t.Fatal("repair-enabled write left corrupted bytes in the file")
	}
	rep := chk.Report()
	if corr.InjectedFlips() == 0 {
		t.Fatal("no flips were injected; the test exercised nothing")
	}
	if int(rep.Detected) != corr.Injected() {
		t.Fatalf("detected %d of %d injected corruptions", rep.Detected, corr.Injected())
	}
	if rep.Repaired == 0 || rep.Unrepaired != 0 {
		t.Fatalf("repair accounting: %+v", rep)
	}
}

func TestExecVerifiedDetectsFlipsWithoutRepair(t *testing.T) {
	ctx, plan, _, data, _ := verifySetup(t, 6, 2)
	fsys, err := pfs.NewFileSystem(ctx.FS)
	if err != nil {
		t.Fatal(err)
	}
	file := fsys.Open("flips-norepair")
	corr := faults.NewCorrupter(flipPlan(ctx.Topo.Nodes(), 2), ranksByNode(ctx))
	chk := integrity.NewChecker(integrity.Config{Seed: 5})

	if err := collio.ExecVerified(ctx, plan, data, file, collio.Write, chk, corr); err != nil {
		t.Fatal(err)
	}
	rep := chk.Report()
	if corr.InjectedFlips() == 0 {
		t.Fatal("no flips were injected; the test exercised nothing")
	}
	// The detection-equality guarantee: without repair, every injected
	// corruption is detected exactly once, and every detection is
	// accounted unrepaired.
	if int(rep.Detected) != corr.Injected() {
		t.Fatalf("detected %d of %d injected corruptions", rep.Detected, corr.Injected())
	}
	if rep.Unrepaired != rep.Detected || rep.Repaired != 0 || rep.RewrittenBytes != 0 {
		t.Fatalf("repair-off accounting: %+v", rep)
	}
}

func TestExecVerifiedRepairsTornWrites(t *testing.T) {
	ctx, plan, _, data, oracle := verifySetup(t, 6, 2)
	fsys, err := pfs.NewFileSystem(ctx.FS)
	if err != nil {
		t.Fatal(err)
	}
	file := fsys.Open("torn")
	corr := faults.NewCorrupter(tornPlan(ctx.FS.Targets, 2), ranksByNode(ctx))
	fsys.SetCorrupter(corr)
	defer fsys.SetCorrupter(nil)
	chk := integrity.NewChecker(integrity.Config{Seed: 9, Repair: true, MaxRepairs: 16})

	if err := collio.ExecVerified(ctx, plan, data, file, collio.Write, chk, corr); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(oracle))
	if _, err := file.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, oracle) {
		t.Fatal("repair-enabled write left torn bytes in the file")
	}
	rep := chk.Report()
	if corr.InjectedTorn() == 0 {
		t.Fatal("no torn writes were injected; the test exercised nothing")
	}
	if int(rep.Detected) != corr.Injected() {
		t.Fatalf("detected %d of %d injected tears", rep.Detected, corr.Injected())
	}
	if rep.RewrittenBytes == 0 || rep.Repaired == 0 || rep.Unrepaired != 0 {
		t.Fatalf("rewrite accounting: %+v", rep)
	}
}

func TestExecIndependentRoundTrip(t *testing.T) {
	ctx, _, reqs, data, oracle := verifySetup(t, 6, 2)
	fsys, err := pfs.NewFileSystem(ctx.FS)
	if err != nil {
		t.Fatal(err)
	}
	file := fsys.Open("independent")
	chk := integrity.NewChecker(integrity.Config{Seed: 11, Repair: true, MaxRepairs: 16})
	corr := faults.NewCorrupter(tornPlan(ctx.FS.Targets, 1), ranksByNode(ctx))
	fsys.SetCorrupter(corr)
	defer fsys.SetCorrupter(nil)

	if err := collio.ExecIndependent(ctx, data, file, collio.Write, chk); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(oracle))
	if _, err := file.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, oracle) {
		t.Fatal("independent write (with repair) differs from oracle")
	}
	rep := chk.Report()
	if corr.InjectedTorn() == 0 || rep.Detected == 0 || rep.Unrepaired != 0 {
		t.Fatalf("independent path accounting: injected %d, report %+v", corr.InjectedTorn(), rep)
	}

	readData := make([]collio.RankData, len(data))
	for i := range readData {
		readData[i] = collio.RankData{Req: reqs[i], Buf: make([]byte, len(data[i].Buf))}
	}
	if err := collio.ExecIndependent(ctx, readData, file, collio.Read, chk); err != nil {
		t.Fatal(err)
	}
	for i := range readData {
		if !bytes.Equal(readData[i].Buf, data[i].Buf) {
			t.Fatalf("rank %d independent read back different bytes", i)
		}
	}
}
