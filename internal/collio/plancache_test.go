package collio_test

import (
	"sync"
	"testing"

	"mcio/internal/collio"
	"mcio/internal/core"
	"mcio/internal/obs"
	"mcio/internal/pfs"
	"mcio/internal/twophase"
)

func cacheReqs(n int) []collio.RankRequest {
	reqs := make([]collio.RankRequest, n)
	for r := range reqs {
		reqs[r] = collio.RankRequest{
			Rank:    r,
			Extents: []pfs.Extent{{Offset: int64(r) * 300, Length: 300}},
		}
	}
	return reqs
}

func cacheCtx(t testing.TB) *collio.Context {
	params := collio.DefaultParams(128)
	params.MsgGroup = 1200
	params.MsgInd = 400
	params.MemMin = 16
	return buildContext(t, 9, 3, params, nil)
}

func TestCachedPlanMemoizes(t *testing.T) {
	collio.ResetPlanCache()
	defer collio.ResetPlanCache()
	ctx := cacheCtx(t)
	reqs := cacheReqs(9)
	s := core.New()

	a, err := collio.CachedPlan(s, ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := collio.CachedPlan(s, ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("second identical call replanned instead of hitting the cache")
	}
	// The cached plan is what direct planning produces.
	direct, err := s.Plan(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalBytes() != direct.TotalBytes() || len(a.Domains) != len(direct.Domains) {
		t.Fatalf("cached plan differs from direct plan: %d/%d bytes, %d/%d domains",
			a.TotalBytes(), direct.TotalBytes(), len(a.Domains), len(direct.Domains))
	}
	// A fresh strategy instance with equal configuration hits the same key.
	c, err := collio.CachedPlan(core.New(), ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if c != a {
		t.Fatal("equal strategy configuration missed the cache")
	}

	collio.ResetPlanCache()
	d, err := collio.CachedPlan(s, ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if d == a {
		t.Fatal("ResetPlanCache did not drop the entry")
	}
}

func TestCachedPlanKeyDistinguishesInputs(t *testing.T) {
	collio.ResetPlanCache()
	defer collio.ResetPlanCache()
	ctx := cacheCtx(t)
	reqs := cacheReqs(9)

	base, err := collio.CachedPlan(twophase.New(), ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	// Same Name(), different configuration: the key must separate them.
	wide, err := collio.CachedPlan(&twophase.Strategy{AggregatorsPerNode: 2}, ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if wide == base {
		t.Fatal("strategy configuration not part of the cache key")
	}
	if len(wide.Aggregators()) <= len(base.Aggregators()) {
		t.Fatalf("AggregatorsPerNode=2 plan has %d aggregators, base %d",
			len(wide.Aggregators()), len(base.Aggregators()))
	}
	// Different availability vector: a new planning input, a new entry.
	ctx2 := cacheCtx(t)
	ctx2.Avail = append([]int64(nil), ctx.Avail...)
	ctx2.Avail[0] /= 2
	other, err := collio.CachedPlan(twophase.New(), ctx2, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if other == base {
		t.Fatal("availability vector not part of the cache key")
	}
	// Different requests: likewise.
	reqs2 := cacheReqs(9)
	reqs2[3].Extents[0].Length = 150
	third, err := collio.CachedPlan(twophase.New(), ctx, reqs2)
	if err != nil {
		t.Fatal(err)
	}
	if third == base {
		t.Fatal("request fingerprint not part of the cache key")
	}
}

// Observed runs publish planner metrics and spans; a cache hit would
// silently drop them, so CachedPlan must bypass the cache when an
// Observer is attached.
func TestCachedPlanBypassesCacheWhenObserved(t *testing.T) {
	collio.ResetPlanCache()
	defer collio.ResetPlanCache()
	ctx := cacheCtx(t)
	ctx.Obs = obs.New()
	reqs := cacheReqs(9)
	s := core.New()

	a, err := collio.CachedPlan(s, ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := collio.CachedPlan(s, ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("observed run hit the cache")
	}
	// And the observed runs must not have populated it for others.
	ctx.Obs = nil
	c, err := collio.CachedPlan(s, ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if c == a || c == b {
		t.Fatal("observed run leaked into the cache")
	}
}

// Concurrent misses on one key must plan exactly once and all return the
// same plan (run under -race in CI).
func TestCachedPlanConcurrent(t *testing.T) {
	collio.ResetPlanCache()
	defer collio.ResetPlanCache()
	ctx := cacheCtx(t)
	reqs := cacheReqs(9)

	const goroutines = 8
	plans := make([]*collio.Plan, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			p, err := collio.CachedPlan(core.New(), ctx, reqs)
			if err != nil {
				t.Error(err)
				return
			}
			plans[g] = p
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		if plans[g] != plans[0] {
			t.Fatal("concurrent callers got different plans for one key")
		}
	}
}
