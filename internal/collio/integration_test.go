package collio_test

import (
	"bytes"
	"testing"
	"testing/quick"

	mrand "math/rand"

	"mcio/internal/collio"
	"mcio/internal/core"
	"mcio/internal/layoutaware"
	"mcio/internal/machine"
	"mcio/internal/mpi"
	"mcio/internal/pfs"
	"mcio/internal/sim"
	"mcio/internal/stats"
	"mcio/internal/twophase"
	"mcio/internal/workload"
)

// strategies under test: the baseline and the paper's contribution must
// both move bytes correctly under every access pattern.
func strategies() []collio.Strategy {
	return []collio.Strategy{twophase.New(), layoutaware.New(), core.New()}
}

func buildContext(t testing.TB, ranks, perNode int, params collio.Params, avail []int64) *collio.Context {
	topo, err := mpi.BlockTopology(ranks, perNode)
	if err != nil {
		t.Fatal(err)
	}
	mc := machine.Testbed640()
	mc.Nodes = topo.Nodes()
	if avail == nil {
		avail = make([]int64, topo.Nodes())
		for i := range avail {
			avail[i] = mc.MemPerNode
		}
	}
	fsCfg := pfs.DefaultConfig(4)
	fsCfg.StripeUnit = 64 // small stripes exercise striping in small tests
	return &collio.Context{Topo: topo, Machine: mc, Avail: avail, FS: fsCfg, Params: params}
}

// fillPattern gives each request's buffer a content derived from rank and
// position so misplaced bytes are detectable.
func fillPattern(rank int, buf []byte) {
	for i := range buf {
		buf[i] = byte((rank*131 + i*7 + 3) % 251)
	}
}

// roundTrip plans, writes, reads back with fresh buffers, and compares —
// and additionally verifies the file contents against an oracle built from
// the declared extents.
func roundTrip(t *testing.T, ctx *collio.Context, s collio.Strategy, reqs []collio.RankRequest) {
	t.Helper()
	plan, err := s.Plan(ctx, reqs)
	if err != nil {
		t.Fatalf("%s: plan: %v", s.Name(), err)
	}
	if err := plan.Validate(reqs); err != nil {
		t.Fatalf("%s: invalid plan: %v", s.Name(), err)
	}

	fsys, err := pfs.NewFileSystem(ctx.FS)
	if err != nil {
		t.Fatal(err)
	}
	file := fsys.Open("roundtrip")

	writeData := make([]collio.RankData, ctx.Topo.Size())
	var oracleSize int64
	for r := range writeData {
		var req collio.RankRequest
		req.Rank = r
		for _, q := range reqs {
			if q.Rank == r {
				req = q
			}
		}
		buf := make([]byte, req.Bytes())
		fillPattern(r, buf)
		writeData[r] = collio.RankData{Req: req, Buf: buf}
		for _, e := range pfs.NormalizeExtents(req.Extents) {
			if e.End() > oracleSize {
				oracleSize = e.End()
			}
		}
	}
	if err := collio.Exec(ctx, plan, writeData, file, collio.Write); err != nil {
		t.Fatalf("%s: write exec: %v", s.Name(), err)
	}

	// Oracle: apply every rank's extents to a flat buffer in rank order.
	oracle := make([]byte, oracleSize)
	for r := range writeData {
		exts := pfs.NormalizeExtents(writeData[r].Req.Extents)
		var pos int64
		for _, e := range exts {
			copy(oracle[e.Offset:e.End()], writeData[r].Buf[pos:pos+e.Length])
			pos += e.Length
		}
	}
	got := make([]byte, oracleSize)
	if _, err := file.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, oracle) {
		t.Fatalf("%s: file contents differ from oracle", s.Name())
	}

	// Collective read into fresh buffers must reproduce the written data.
	readData := make([]collio.RankData, ctx.Topo.Size())
	for r := range readData {
		readData[r] = collio.RankData{
			Req: writeData[r].Req,
			Buf: make([]byte, len(writeData[r].Buf)),
		}
	}
	if err := collio.Exec(ctx, plan, readData, file, collio.Read); err != nil {
		t.Fatalf("%s: read exec: %v", s.Name(), err)
	}
	for r := range readData {
		if !bytes.Equal(readData[r].Buf, writeData[r].Buf) {
			t.Fatalf("%s: rank %d read back different data", s.Name(), r)
		}
	}
}

func TestRoundTripSerial(t *testing.T) {
	params := collio.DefaultParams(128)
	params.MsgGroup = 1200
	params.MsgInd = 400
	params.MemMin = 16
	ctx := buildContext(t, 9, 3, params, nil)
	var reqs []collio.RankRequest
	for r := 0; r < 9; r++ {
		reqs = append(reqs, collio.RankRequest{
			Rank:    r,
			Extents: []pfs.Extent{{Offset: int64(r) * 300, Length: 300}},
		})
	}
	for _, s := range strategies() {
		roundTrip(t, ctx, s, reqs)
	}
}

func TestRoundTripInterleaved(t *testing.T) {
	params := collio.DefaultParams(64)
	params.MsgGroup = 600
	params.MsgInd = 200
	params.MemMin = 8
	ctx := buildContext(t, 6, 2, params, nil)
	var reqs []collio.RankRequest
	const unit = 50
	for r := 0; r < 6; r++ {
		var exts []pfs.Extent
		for seg := 0; seg < 4; seg++ {
			exts = append(exts, pfs.Extent{Offset: int64(seg*6+r) * unit, Length: unit})
		}
		reqs = append(reqs, collio.RankRequest{Rank: r, Extents: exts})
	}
	for _, s := range strategies() {
		roundTrip(t, ctx, s, reqs)
	}
}

func TestRoundTripWithIdleRanks(t *testing.T) {
	params := collio.DefaultParams(64)
	params.MemMin = 8
	ctx := buildContext(t, 6, 2, params, nil)
	reqs := []collio.RankRequest{
		{Rank: 1, Extents: []pfs.Extent{{Offset: 0, Length: 500}}},
		{Rank: 4, Extents: []pfs.Extent{{Offset: 700, Length: 300}}},
	}
	for _, s := range strategies() {
		roundTrip(t, ctx, s, reqs)
	}
}

func TestRoundTripMemoryStarved(t *testing.T) {
	// Two of three nodes have almost no aggregation memory; the
	// memory-conscious plan must still move every byte correctly.
	params := collio.DefaultParams(256)
	params.MsgGroup = 1000
	params.MsgInd = 300
	params.MemMin = 128
	avail := []int64{64, 1 << 20, 32}
	ctx := buildContext(t, 9, 3, params, avail)
	var reqs []collio.RankRequest
	for r := 0; r < 9; r++ {
		reqs = append(reqs, collio.RankRequest{
			Rank:    r,
			Extents: []pfs.Extent{{Offset: int64(r) * 250, Length: 250}},
		})
	}
	for _, s := range strategies() {
		roundTrip(t, ctx, s, reqs)
	}
}

// Property: both strategies round-trip arbitrary disjoint random access
// patterns.
func TestRoundTripRandomPatterns(t *testing.T) {
	if testing.Short() {
		t.Skip("property test")
	}
	r := stats.NewRNG(71)
	err := quick.Check(func(seed uint64) bool {
		rr := stats.NewRNG(seed)
		ranks := rr.Intn(6) + 2
		perNode := rr.Intn(3) + 1
		params := collio.DefaultParams(int64(rr.Intn(200) + 32))
		params.MsgGroup = int64(rr.Intn(2000) + 200)
		params.MsgInd = int64(rr.Intn(500) + 50)
		params.MemMin = int64(rr.Intn(64))
		ctx := buildContext(t, ranks, perNode, params, nil)

		// Disjoint random extents: slice a permuted block list among ranks.
		const blocks = 24
		const blockLen = 37
		perm := rr.Perm(blocks)
		reqs := make([]collio.RankRequest, ranks)
		for i := range reqs {
			reqs[i].Rank = i
		}
		for i, b := range perm {
			if rr.Float64() < 0.2 {
				continue // leave holes in the file
			}
			r := i % ranks
			reqs[r].Extents = append(reqs[r].Extents,
				pfs.Extent{Offset: int64(b * blockLen), Length: blockLen})
		}
		for _, s := range strategies() {
			// roundTrip calls t.Fatalf on failure, which aborts the quick
			// function; reaching the end means success.
			roundTrip(t, ctx, s, reqs)
		}
		return true
	}, &quick.Config{MaxCount: 25, Rand: mrand.New(mrand.NewSource(int64(r.Uint64())))})
	if err != nil {
		t.Fatal(err)
	}
}

// The headline behavioural claim: under memory pressure with variance, the
// memory-conscious strategy prices faster than classic two-phase.
func TestMemConsciousBeatsBaselineUnderPressure(t *testing.T) {
	const ranks, perNode = 24, 4 // 6 nodes
	buf := int64(1 << 20)
	params := collio.DefaultParams(buf)
	params.MsgInd = 8 * buf
	params.MsgGroup = 32 * buf
	params.MemMin = buf / 2
	// Available memory varies widely: half the nodes are nearly starved
	// (the baseline's fixed one-aggregator-per-node placement pages
	// there), the rest have ample headroom for the memory-conscious
	// placement to use.
	avail := []int64{buf / 16, 8 * buf, buf / 32, 12 * buf, buf / 16, 8 * buf}
	ctx := buildContext(t, ranks, perNode, params, avail)
	ctx.FS = pfs.DefaultConfig(8)

	var reqs []collio.RankRequest
	const per = 4 << 20
	for r := 0; r < ranks; r++ {
		reqs = append(reqs, collio.RankRequest{
			Rank:    r,
			Extents: []pfs.Extent{{Offset: int64(r) * per, Length: per}},
		})
	}
	run := func(s collio.Strategy) float64 {
		plan, err := s.Plan(ctx, reqs)
		if err != nil {
			t.Fatal(err)
		}
		if err := plan.Validate(reqs); err != nil {
			t.Fatal(err)
		}
		res, err := collio.Cost(ctx, plan, reqs, collio.Write, sim.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		return res.Bandwidth
	}
	base := run(twophase.New())
	mc := run(core.New())
	if mc <= base {
		t.Fatalf("memory-conscious (%.1f MB/s) not faster than two-phase (%.1f MB/s) under pressure",
			mc/1e6, base/1e6)
	}
}

// Adversarial access patterns: the strategies must round-trip unbalanced
// and locality-reversed workloads too.
func TestRoundTripAdversarialPatterns(t *testing.T) {
	params := collio.DefaultParams(128)
	params.MsgInd = 400
	params.MsgGroup = 1600
	params.MemMin = 16
	ctx := buildContext(t, 8, 2, params, nil)
	for name, reqs := range map[string][]collio.RankRequest{
		"unbalanced": workload.Unbalanced(8, 64),
		"reversed":   workload.ReversedNodes(8, 200),
	} {
		for _, s := range strategies() {
			t.Run(name+"/"+s.Name(), func(t *testing.T) {
				roundTrip(t, ctx, s, reqs)
			})
		}
	}
}
