package collio

import (
	"fmt"
	"strconv"

	"mcio/internal/health"
	"mcio/internal/obs/timeline"
	"mcio/internal/sim"
)

// tlAttach wires ctx.Timeline into the engine and stamps the run-level
// metadata. A nil recorder leaves everything off; pricing never
// depends on the recorder's presence.
func tlAttach(ctx *Context, eng *sim.Engine, plan *Plan, op Op) {
	rec := ctx.Timeline
	if rec == nil {
		return
	}
	eng.SetTimeline(rec)
	rec.SetMeta("strategy", plan.Strategy)
	rec.SetMeta("op", op.String())
	rec.SetMeta("mem_min_bytes", strconv.FormatInt(ctx.Params.MemMin, 10))
}

// tlBufferGauges samples each aggregator node's staging-buffer
// occupancy and its memory pressure against the node's available
// memory at simulated time t. Called at plan time and again after any
// reassignment changes the placement; domains is the current live set.
func tlBufferGauges(ctx *Context, domains []Domain, t float64) {
	rec := ctx.Timeline
	if rec == nil {
		return
	}
	perNode := map[int]int64{}
	for _, d := range domains {
		if d.Bytes > 0 {
			perNode[d.AggNode] += d.BufferBytes
		}
	}
	for node, buf := range perNode {
		ent := timeline.Ent("node", node)
		rec.AddGauge(ent, "agg_buffer_bytes", t, float64(buf))
		if node < len(ctx.Avail) && ctx.Avail[node] > 0 {
			rec.AddGauge(ent, "mem_used_frac", t, float64(buf)/float64(ctx.Avail[node]))
		}
	}
}

// tlSuspicion samples an entity's suspicion score and journals
// threshold crossings: wasSus is the entity's suspicion before the
// detector observation the caller just made.
func tlSuspicion(rec *timeline.Recorder, d *health.Detector, kind string, id int, wasSus bool, t float64) {
	if rec == nil || d == nil {
		return
	}
	ent := timeline.Ent(kind, id)
	score := d.Score(kind, id)
	if sus := d.Suspected(kind, id); sus != wasSus {
		ev := timeline.EvClear
		if sus {
			ev = timeline.EvSuspect
		}
		rec.J().Record(t, ev, ent, fmt.Sprintf("score %.3g", score))
	}
	rec.AddGauge(ent, "suspicion", t, score)
}

// tlBreakerEvent journals a breaker state change on a storage target.
// Callers snapshot the state before and after the breaker call and
// hand both here; equal states journal nothing.
func tlBreakerEvent(rec *timeline.Recorder, before, after health.BreakerState, target int, t float64) {
	if rec == nil || before == after {
		return
	}
	kind := ""
	switch {
	case after == health.BreakerOpen:
		kind = timeline.EvBreakerOpen
	case before == health.BreakerOpen && after == health.BreakerHalfOpen:
		kind = timeline.EvBreakerProbe
	case after == health.BreakerClosed:
		kind = timeline.EvBreakerClose
	default:
		return
	}
	rec.J().Record(t, kind, timeline.Ent("ost", target),
		fmt.Sprintf("%s -> %s", before, after))
}
