package collio

import (
	"strings"
	"testing"

	"mcio/internal/mpi"
)

func TestDescribe(t *testing.T) {
	plan, _ := validPlan()
	plan.Domains[1].PagedSeverity = 0.5
	topo, err := mpi.BlockTopology(6, 2)
	if err != nil {
		t.Fatal(err)
	}
	out := plan.Describe(topo)
	for _, want := range []string{
		`plan "test": 1 groups, 2 domains`,
		"group 0: ranks 0-1",
		"domain 0: file [0..120) 120 bytes",
		"rank 0 on node 0, buffer 64",
		"PAGED 50%",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Describe missing %q in:\n%s", want, out)
		}
	}
}

func TestCompactRanks(t *testing.T) {
	cases := []struct {
		in   []int
		want string
	}{
		{nil, "none"},
		{[]int{5}, "5"},
		{[]int{0, 1, 2, 3}, "0-3"},
		{[]int{3, 1, 0, 2}, "0-3"},
		{[]int{0, 2, 3, 4, 9}, "0 2-4 9"},
		{[]int{1, 1, 2}, "1-2"},
	}
	for _, c := range cases {
		if got := compactRanks(c.in); got != c.want {
			t.Errorf("compactRanks(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestDescribeEmptyPlan(t *testing.T) {
	plan := &Plan{Strategy: "empty", Groups: 0, GroupRanks: [][]int{}}
	topo, _ := mpi.BlockTopology(2, 2)
	out := plan.Describe(topo)
	if !strings.Contains(out, "0 domains") {
		t.Fatalf("empty describe:\n%s", out)
	}
}
