package collio

import (
	"mcio/internal/faults"
	"mcio/internal/health"
	"mcio/internal/pfs"
	"mcio/internal/sim"
)

// Adaptive is the health-driven response policy CostAdaptive layers on
// the faulted cost loop: a suspicion detector observing per-node and
// per-target service signals, circuit breakers taking chronically
// degraded storage targets out of normal service, hedged re-requests
// for straggling shuffle messages, and proactive aggregator
// re-placement off suspected hosts. Fault *pricing* is identical to
// CostWithFaults — only the response differs — so an adaptive run and
// a static run of the same schedule are directly comparable.
type Adaptive struct {
	// Detector accrues per-entity suspicion; nil disables observation,
	// proactive failover and breaker feeding.
	Detector *health.Detector
	// Breakers holds the per-OST circuit breakers layered under the
	// retry ladder; nil disables fast-fail.
	Breakers *pfs.BreakerSet
	// Proactive enables health-driven aggregator re-placement: a
	// suspected node with active work gets a synthetic Straggler host
	// event (HostFault.Proactive=true) so the handler can move its
	// domains before a hard fault fires.
	Proactive bool

	// HedgeQuantile is the delay quantile after which a straggling
	// shuffle message is hedged with a duplicate re-request (default
	// 0.95). HedgeMinSamples is how many delay observations the window
	// needs before hedging arms (default 32). HedgeOverheadSeconds is
	// the extra latency a hedge pays over the quantile deadline; when
	// zero it defaults to a quarter of the injector's drop timeout.
	HedgeQuantile        float64
	HedgeMinSamples      int
	HedgeOverheadSeconds float64

	window  *health.Window
	handled map[int]bool // nodes already proactively failed over
}

// NewAdaptive returns an Adaptive with a default-configured detector,
// breaker set, proactive failover enabled, and default hedging.
func NewAdaptive() *Adaptive {
	return &Adaptive{
		Detector:  health.NewDetector(health.Config{}),
		Breakers:  pfs.NewBreakerSet(health.BreakerConfig{}),
		Proactive: true,
	}
}

// init resolves defaults against the injector spec at run start.
func (ad *Adaptive) init(spec faults.Spec) {
	if ad.HedgeQuantile <= 0 || ad.HedgeQuantile >= 1 {
		ad.HedgeQuantile = 0.95
	}
	if ad.HedgeMinSamples <= 0 {
		ad.HedgeMinSamples = 32
	}
	if ad.HedgeOverheadSeconds <= 0 {
		ad.HedgeOverheadSeconds = spec.DropTimeoutSeconds / 4
	}
	if ad.window == nil {
		ad.window = health.NewWindow(256)
	}
	if ad.handled == nil {
		ad.handled = map[int]bool{}
	}
}

// hedgeDeadline returns the hedged-delivery latency (quantile deadline
// plus re-request overhead) and whether enough delay samples exist for
// hedging to be armed.
func (ad *Adaptive) hedgeDeadline() (float64, bool) {
	if ad.window == nil || ad.window.Len() < ad.HedgeMinSamples {
		return 0, false
	}
	return ad.window.Quantile(ad.HedgeQuantile) + ad.HedgeOverheadSeconds, true
}

// MemDecayHandler is implemented by FaultHandlers that own memory
// accounting (core.Failover does, through its memmodel.Tracker): when a
// MemLeak has decayed a node's budget to (1-leaked) of its leak-free
// value, OnMemDecay applies the decay and returns the node's new paged
// severity in [0,1]. Handlers without it get an inline approximation
// from the live domains' buffer reservations against ctx.Avail.
type MemDecayHandler interface {
	OnMemDecay(node int, leaked float64) float64
}

// CostAdaptive prices plan like CostWithFaults but with the adaptive
// response policy ad active: suspicion-driven proactive failover,
// per-OST circuit breakers under the retry ladder, and hedged
// re-requests for straggling shuffle messages. A nil ad gets
// NewAdaptive defaults. Deterministic like every cost path: same plan,
// schedule, handler and policy — same result.
func CostAdaptive(ctx *Context, plan *Plan, reqs []RankRequest, op Op, opt sim.Options,
	inj *faults.Injector, handler FaultHandler, ad *Adaptive) (*FaultResult, error) {
	if ad == nil {
		ad = NewAdaptive()
	}
	return costFaulted(ctx, plan, reqs, op, opt, inj, handler, ad)
}
