package collio_test

import (
	"reflect"
	"testing"

	"mcio/internal/collio"
	"mcio/internal/core"
	"mcio/internal/faults"
	"mcio/internal/pfs"
	"mcio/internal/sim"
	"mcio/internal/twophase"
)

func faultReqs(ranks int, per int64) []collio.RankRequest {
	var reqs []collio.RankRequest
	for r := 0; r < ranks; r++ {
		reqs = append(reqs, collio.RankRequest{
			Rank:    r,
			Extents: []pfs.Extent{{Offset: int64(r) * per, Length: per}},
		})
	}
	return reqs
}

func faultCtx(t testing.TB) *collio.Context {
	buf := int64(1 << 16)
	params := collio.DefaultParams(buf)
	params.MsgInd = 4 * buf
	params.MsgGroup = 16 * buf
	params.MemMin = buf / 2
	return buildContext(t, 12, 3, params, nil) // 4 nodes
}

// With no injector (or an all-zero-rate one) CostWithFaults must be
// byte-identical to Cost: the fault path is fully inert.
func TestCostWithFaultsInertWithoutFaults(t *testing.T) {
	ctx := faultCtx(t)
	reqs := faultReqs(12, 1<<18)
	for _, s := range []collio.Strategy{twophase.New(), core.New()} {
		plan, err := s.Plan(ctx, reqs)
		if err != nil {
			t.Fatal(err)
		}
		want, err := collio.Cost(ctx, plan, reqs, collio.Write, sim.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		zeroed := faults.DefaultSpec(1, 100).WithRate(0)
		fplan, err := zeroed.Generate(4, ctx.FS.Targets)
		if err != nil {
			t.Fatal(err)
		}
		for _, inj := range []*faults.Injector{nil, faults.NewInjector(fplan)} {
			got, err := collio.CostWithFaults(ctx, plan, reqs, collio.Write, sim.DefaultOptions(), inj, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got.CostResult, *want) {
				t.Fatalf("%s: zero-fault CostWithFaults differs from Cost:\n got %+v\nwant %+v",
					s.Name(), got.CostResult, *want)
			}
			if got.Failovers != 0 || got.Stalls != 0 || got.RecoverySeconds != 0 {
				t.Fatalf("%s: zero-fault run reported recovery work: %+v", s.Name(), got)
			}
		}
	}
}

// crashPlan builds a single-event fault schedule killing node at time.
func crashPlan(spec faults.Spec, node int, at float64) *faults.Plan {
	return &faults.Plan{Spec: spec, Events: []faults.Event{
		{Kind: faults.NodeCrash, Time: at, Node: node},
	}}
}

// A node crash mid-operation must fail the memory-conscious plan over
// to a live sibling: work completes, recovery time is attributed, and
// the run costs more than the fault-free one.
func TestNodeCrashFailsOverToSibling(t *testing.T) {
	ctx := faultCtx(t)
	reqs := faultReqs(12, 1<<18)
	s := core.New()

	clean, err := s.Plan(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := collio.Cost(ctx, clean, reqs, collio.Write, sim.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}

	plan, state, err := s.PlanWithState(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Domains) < 2 {
		t.Fatalf("want a multi-domain plan to fail over within, got %d domains", len(plan.Domains))
	}
	spec := faults.DefaultSpec(7, ref.Seconds*4)
	victim := plan.Domains[0].AggNode
	inj := faults.NewInjector(crashPlan(spec, victim, ref.Seconds/2))
	handler := &core.Failover{State: state, Detect: spec.DetectSeconds}

	res, err := collio.CostWithFaults(ctx, plan, reqs, collio.Write, sim.DefaultOptions(), inj, handler)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failovers == 0 {
		t.Fatal("crash did not trigger a failover")
	}
	if res.Injected["node-crash"] != 1 {
		t.Fatalf("injected counts = %v, want one node-crash", res.Injected)
	}
	if res.RecoverySeconds <= 0 {
		t.Fatal("recovery time was not attributed")
	}
	if res.Seconds <= ref.Seconds {
		t.Fatalf("faulted run (%.4fs) not slower than fault-free (%.4fs)", res.Seconds, ref.Seconds)
	}
	if !state.Down(victim) {
		t.Fatal("crashed node not marked down in recovery state")
	}
}

// The baseline stalls and retries in place: no failover, and at least
// the configured stall charged as recovery time.
func TestBaselineStallsInPlaceOnCrash(t *testing.T) {
	ctx := faultCtx(t)
	reqs := faultReqs(12, 1<<18)
	s := twophase.New()
	plan, err := s.Plan(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := collio.Cost(ctx, plan, reqs, collio.Write, sim.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	spec := faults.DefaultSpec(7, ref.Seconds*4)
	victim := plan.Domains[0].AggNode
	inj := faults.NewInjector(crashPlan(spec, victim, ref.Seconds/2))
	handler := twophase.NewStallRetry(ctx.Avail, spec.StallSeconds)

	res, err := collio.CostWithFaults(ctx, plan, reqs, collio.Write, sim.DefaultOptions(), inj, handler)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failovers != 0 {
		t.Fatalf("baseline moved work (%d failovers); it must stall in place", res.Failovers)
	}
	if res.Stalls == 0 {
		t.Fatal("baseline crash recovery recorded no stall")
	}
	if res.RecoverySeconds < spec.StallSeconds {
		t.Fatalf("recovery time %.4fs below the stall %.4fs", res.RecoverySeconds, spec.StallSeconds)
	}
}

// Same plan, same fault schedule, same handler state: the faulted cost
// must be fully deterministic.
func TestFaultedCostDeterministic(t *testing.T) {
	ctx := faultCtx(t)
	reqs := faultReqs(12, 1<<18)
	run := func() *collio.FaultResult {
		s := core.New()
		plan, state, err := s.PlanWithState(ctx, reqs)
		if err != nil {
			t.Fatal(err)
		}
		spec := faults.DefaultSpec(99, 2.0)
		fplan, err := spec.WithRate(4).Generate(ctx.Topo.Nodes(), ctx.FS.Targets)
		if err != nil {
			t.Fatal(err)
		}
		res, err := collio.CostWithFaults(ctx, plan, reqs, collio.Write, sim.DefaultOptions(),
			faults.NewInjector(fplan), &core.Failover{State: state, Detect: spec.DetectSeconds})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("faulted runs with identical seeds diverged:\n a %+v\n b %+v", a, b)
	}
}

// ApplyReassignments + Compact: merges fold the victim into the
// absorber keeping indices stable, and the compacted plan revalidates.
func TestApplyReassignmentsMergeAndCompact(t *testing.T) {
	doms := []collio.Domain{
		{Extents: []pfs.Extent{{Offset: 0, Length: 100}}, Bytes: 100, Aggregator: 0, AggNode: 0, BufferBytes: 64},
		{Extents: []pfs.Extent{{Offset: 100, Length: 100}}, Bytes: 100, Aggregator: 3, AggNode: 1, BufferBytes: 64},
	}
	err := collio.ApplyReassignments(doms, []collio.Reassignment{{Domain: 0, MergeInto: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if doms[0].Bytes != 0 || doms[0].Extents != nil {
		t.Fatalf("victim not emptied: %+v", doms[0])
	}
	want := []pfs.Extent{{Offset: 0, Length: 200}}
	if doms[1].Bytes != 200 || !reflect.DeepEqual(doms[1].Extents, want) {
		t.Fatalf("absorber = %+v, want 200 bytes over %v", doms[1], want)
	}

	plan := &collio.Plan{Strategy: "x", Groups: 1, GroupRanks: [][]int{{0, 3}}, Domains: doms}
	compact := plan.Compact()
	if len(compact.Domains) != 1 {
		t.Fatalf("Compact kept %d domains, want 1", len(compact.Domains))
	}
	reqs := []collio.RankRequest{
		{Rank: 0, Extents: []pfs.Extent{{Offset: 0, Length: 100}}},
		{Rank: 3, Extents: []pfs.Extent{{Offset: 100, Length: 100}}},
	}
	if err := compact.Validate(reqs); err != nil {
		t.Fatalf("compacted plan invalid: %v", err)
	}

	// Invalid merges are rejected.
	if err := collio.ApplyReassignments(doms, []collio.Reassignment{{Domain: 1, MergeInto: 1}}); err == nil {
		t.Fatal("self-merge accepted")
	}
	if err := collio.ApplyReassignments(doms, []collio.Reassignment{{Domain: 5, MergeInto: 0}}); err == nil {
		t.Fatal("out-of-range domain accepted")
	}
}

// OST transient errors price retries without corrupting the result:
// bytes still move, retries are counted, and the run is slower.
func TestOSTTransientRetriesPriced(t *testing.T) {
	ctx := faultCtx(t)
	reqs := faultReqs(12, 1<<18)
	s := core.New()
	plan, state, err := s.PlanWithState(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := collio.Cost(ctx, plan, reqs, collio.Write, sim.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	spec := faults.DefaultSpec(3, ref.Seconds*4)
	fplan := &faults.Plan{Spec: spec, Events: []faults.Event{
		{Kind: faults.OSTTransient, Time: 0, Target: 0, Duration: ref.Seconds * 4},
	}}
	res, err := collio.CostWithFaults(ctx, plan, reqs, collio.Write, sim.DefaultOptions(),
		faults.NewInjector(fplan), &core.Failover{State: state, Detect: spec.DetectSeconds})
	if err != nil {
		t.Fatal(err)
	}
	if res.StorageRetries == 0 {
		t.Fatal("transient OST window produced no retries")
	}
	if res.Seconds <= ref.Seconds {
		t.Fatalf("retried run (%.4fs) not slower than clean (%.4fs)", res.Seconds, ref.Seconds)
	}
	if res.UserBytes != ref.UserBytes {
		t.Fatalf("user bytes changed under retries: %d vs %d", res.UserBytes, ref.UserBytes)
	}
}
