package collio

import (
	"testing"

	"mcio/internal/pfs"
)

// FuzzExtentIndexOverlapBytes cross-checks the merge-walk against the
// naive per-bucket intersection for arbitrary bucket shapes and arbitrary
// (possibly unnormalized) queries, and checks OverlapBytesInto's scratch
// reuse agrees with the allocating path.
func FuzzExtentIndexOverlapBytes(f *testing.F) {
	// Seed corpus: a plain interleave, an adjacency-heavy layout, a
	// single-bucket index with an empty/overlapping query, and an empty
	// query against many buckets.
	f.Add([]byte{3, 10, 5, 8, 2, 12, 9, 4}, []byte{1, 20, 6, 0, 40, 9})
	f.Add([]byte{0, 1, 0, 1, 0, 1, 0, 1}, []byte{0, 2, 1, 2, 2, 2})
	f.Add([]byte{7, 30}, []byte{5, 0, 3, 15, 3, 15})
	f.Add([]byte{1, 5, 1, 5, 1, 5, 1, 5, 1, 5, 1, 5}, []byte{})
	f.Fuzz(func(t *testing.T, bucketData, queryData []byte) {
		// Decode disjoint ascending buckets: byte pairs are (gap, length),
		// two extents per bucket. Gaps of at least one keep buckets and
		// extents strictly disjoint, as NewExtentIndex requires.
		var buckets [][]pfs.Extent
		var exts []pfs.Extent
		var cur int64
		for i := 0; i+2 <= len(bucketData); i += 2 {
			cur += int64(bucketData[i]) + 1
			length := int64(bucketData[i+1])%40 + 1
			exts = append(exts, pfs.Extent{Offset: cur, Length: length})
			cur += length
			if len(exts) == 2 {
				buckets = append(buckets, exts)
				exts = nil
			}
		}
		if len(exts) > 0 {
			buckets = append(buckets, exts)
		}
		// Decode the query: byte pairs are (offset, length) with no
		// constraints — empty, overlapping and unsorted extents exercise
		// the normalizing slow path.
		var query []pfs.Extent
		span := cur + 1
		for i := 0; i+2 <= len(queryData); i += 2 {
			query = append(query, pfs.Extent{
				Offset: int64(queryData[i]) % span,
				Length: int64(queryData[i+1]) % 50,
			})
		}

		idx := NewExtentIndex(buckets)
		got := idx.OverlapBytes(query)
		if len(got) != len(buckets) {
			t.Fatalf("%d buckets, %d results", len(buckets), len(got))
		}
		for b := range buckets {
			want := pfs.TotalBytes(pfs.Intersect(query, buckets[b]))
			if got[b] != want {
				t.Fatalf("bucket %d: got %d, naive %d", b, got[b], want)
			}
		}
		// Scratch reuse (dirty and undersized) agrees with the fresh path.
		scratch := make([]int64, len(buckets)/2)
		for i := range scratch {
			scratch[i] = -1
		}
		again := idx.OverlapBytesInto(scratch, query)
		for b := range got {
			if again[b] != got[b] {
				t.Fatalf("bucket %d: Into %d != fresh %d", b, again[b], got[b])
			}
		}
	})
}
