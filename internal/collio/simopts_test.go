package collio

import "mcio/internal/sim"

// simOptions returns the default engine options used across collio tests.
func simOptions() sim.Options { return sim.DefaultOptions() }
