package collio

import (
	"fmt"
	"sort"
	"strings"

	"mcio/internal/mpi"
)

// Describe renders a plan as human-readable text: groups, file domains,
// aggregator placements and buffer sizes — the view a developer wants
// when asking "where did my aggregators go and why".
func (p *Plan) Describe(topo mpi.Topology) string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan %q: %d groups, %d domains, %d aggregators, %d bytes\n",
		p.Strategy, p.Groups, len(p.Domains), len(p.Aggregators()), p.TotalBytes())
	byGroup := make(map[int][]int, p.Groups)
	for i, d := range p.Domains {
		byGroup[d.Group] = append(byGroup[d.Group], i)
	}
	groups := make([]int, 0, len(byGroup))
	for g := range byGroup {
		groups = append(groups, g)
	}
	sort.Ints(groups)
	for _, g := range groups {
		ranks := "-"
		if g < len(p.GroupRanks) {
			ranks = compactRanks(p.GroupRanks[g])
		}
		fmt.Fprintf(&b, "  group %d: ranks %s\n", g, ranks)
		for _, i := range byGroup[g] {
			d := p.Domains[i]
			span := d.Extents[0].Offset
			end := d.Extents[len(d.Extents)-1].End()
			paged := ""
			if d.PagedSeverity > 0 {
				paged = fmt.Sprintf(" PAGED %.0f%%", d.PagedSeverity*100)
			}
			fmt.Fprintf(&b, "    domain %d: file [%d..%d) %d bytes in %d extents -> rank %d on node %d, buffer %d%s\n",
				i, span, end, d.Bytes, len(d.Extents), d.Aggregator, d.AggNode, d.BufferBytes, paged)
		}
	}
	return b.String()
}

// compactRanks renders a sorted rank list with ranges: "0-3 7 9-11".
func compactRanks(ranks []int) string {
	if len(ranks) == 0 {
		return "none"
	}
	sorted := append([]int(nil), ranks...)
	sort.Ints(sorted)
	var parts []string
	start, prev := sorted[0], sorted[0]
	flush := func() {
		if start == prev {
			parts = append(parts, fmt.Sprintf("%d", start))
		} else {
			parts = append(parts, fmt.Sprintf("%d-%d", start, prev))
		}
	}
	for _, r := range sorted[1:] {
		if r == prev || r == prev+1 {
			prev = r
			continue
		}
		flush()
		start, prev = r, r
	}
	flush()
	return strings.Join(parts, " ")
}
