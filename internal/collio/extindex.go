package collio

import (
	"fmt"

	"mcio/internal/pfs"
)

// ExtentIndex answers "how many bytes of this rank's request fall into
// each bucket" in one merge-walk per rank, where the buckets (file domains
// or partition-tree leaves) are disjoint and ascending in file order. The
// naive per-bucket intersection is O(buckets × extents) per rank, which is
// prohibitive for coll_perf-scale requests; the index makes it
// O(extents + bucket extents).
type ExtentIndex struct {
	flat   []pfs.Extent // all bucket extents, ascending, disjoint
	bucket []int        // bucket id per flat extent
	n      int          // number of buckets
}

// NewExtentIndex builds an index over the buckets. Each bucket's extents
// must be normalized, and buckets must be disjoint and ascending (bucket
// i's last byte before bucket i+1's first) — which plan domains and
// partition-tree leaves are by construction. It panics otherwise, as that
// indicates a planner bug.
func NewExtentIndex(buckets [][]pfs.Extent) *ExtentIndex {
	idx := &ExtentIndex{n: len(buckets)}
	var prevEnd int64 = -1
	for b, exts := range buckets {
		for _, e := range exts {
			if e.Length <= 0 {
				panic(fmt.Sprintf("collio: bucket %d has empty extent", b))
			}
			if e.Offset < prevEnd {
				panic(fmt.Sprintf("collio: bucket %d extents overlap or are out of order", b))
			}
			prevEnd = e.End()
			idx.flat = append(idx.flat, e)
			idx.bucket = append(idx.bucket, b)
		}
	}
	return idx
}

// OverlapBytes returns the bytes of exts (normalized or not) landing in
// each bucket, indexed by bucket id.
func (x *ExtentIndex) OverlapBytes(exts []pfs.Extent) []int64 {
	return x.OverlapBytesInto(nil, exts)
}

// OverlapBytesInto is OverlapBytes with a caller-owned scratch slice:
// dst is grown (or allocated when nil/too small), zeroed, filled and
// returned, so a caller querying many requests against one index reuses
// a single allocation. Extents already in canonical form take a fast
// path that skips the normalizing copy entirely — request lists in the
// hot paths are generated normalized.
func (x *ExtentIndex) OverlapBytesInto(dst []int64, exts []pfs.Extent) []int64 {
	if cap(dst) < x.n {
		dst = make([]int64, x.n)
	} else {
		dst = dst[:x.n]
		clear(dst)
	}
	out := dst
	norm := exts
	if !pfs.IsNormalized(exts) {
		norm = pfs.NormalizeExtents(exts)
	}
	i, j := 0, 0
	for i < len(norm) && j < len(x.flat) {
		a, b := norm[i], x.flat[j]
		lo := a.Offset
		if b.Offset > lo {
			lo = b.Offset
		}
		hi := a.End()
		if b.End() < hi {
			hi = b.End()
		}
		if hi > lo {
			out[x.bucket[j]] += hi - lo
		}
		if a.End() < b.End() {
			i++
		} else {
			j++
		}
	}
	return out
}
