package collio

import (
	"fmt"
	"sort"

	"mcio/internal/pfs"
)

// ExtentIndex answers "how many bytes of this rank's request fall into
// each bucket" in one merge-walk per rank, where the buckets (file domains
// or partition-tree leaves) are disjoint and ascending in file order. The
// naive per-bucket intersection is O(buckets × extents) per rank, which is
// prohibitive for coll_perf-scale requests; the index makes it
// O(extents + bucket extents).
type ExtentIndex struct {
	flat   []pfs.Extent // all bucket extents, ascending, disjoint
	bucket []int        // bucket id per flat extent
	n      int          // number of buckets
}

// NewExtentIndex builds an index over the buckets. Each bucket's extents
// must be normalized, and buckets must be disjoint and ascending (bucket
// i's last byte before bucket i+1's first) — which plan domains and
// partition-tree leaves are by construction. It panics otherwise, as that
// indicates a planner bug.
func NewExtentIndex(buckets [][]pfs.Extent) *ExtentIndex {
	idx := &ExtentIndex{n: len(buckets)}
	var prevEnd int64 = -1
	for b, exts := range buckets {
		for _, e := range exts {
			if e.Length <= 0 {
				panic(fmt.Sprintf("collio: bucket %d has empty extent", b))
			}
			if e.Offset < prevEnd {
				panic(fmt.Sprintf("collio: bucket %d extents overlap or are out of order", b))
			}
			prevEnd = e.End()
			idx.flat = append(idx.flat, e)
			idx.bucket = append(idx.bucket, b)
		}
	}
	return idx
}

// OverlapBytes returns the bytes of exts (normalized or not) landing in
// each bucket, indexed by bucket id.
func (x *ExtentIndex) OverlapBytes(exts []pfs.Extent) []int64 {
	return x.OverlapBytesInto(nil, exts)
}

// BucketBytes is one bucket's overlap with a request: the sparse form
// of an OverlapBytes result row.
type BucketBytes struct {
	Bucket int
	Bytes  int64
}

// OverlapAppend appends the non-zero overlaps of exts with the buckets
// to dst, ascending by bucket id, and returns the extended slice. It is
// the sparse counterpart of OverlapBytesInto: a request touching a
// handful of the index's buckets costs O(extents + touched), not the
// O(buckets) clear of a dense result row — the difference between
// pricing a million-rank operation and timing out on it.
func (x *ExtentIndex) OverlapAppend(dst []BucketBytes, exts []pfs.Extent) []BucketBytes {
	base := len(dst)
	norm := exts
	if !pfs.IsNormalized(exts) {
		norm = pfs.NormalizeExtents(exts)
	}
	i, j := 0, 0
	for i < len(norm) && j < len(x.flat) {
		a := norm[i]
		if x.flat[j].End() <= a.Offset {
			// Gallop past the bucket extents wholly before this request
			// extent: a sparse request touching k of n flat extents costs
			// O(k log n), not the O(n) of stepping one extent at a time —
			// which is what keeps shape-building linear in ranks when a
			// million sparse requests query a hundred-thousand-extent index.
			j += sort.Search(len(x.flat)-j, func(k int) bool { return x.flat[j+k].End() > a.Offset })
			continue
		}
		b := x.flat[j]
		lo := a.Offset
		if b.Offset > lo {
			lo = b.Offset
		}
		hi := a.End()
		if b.End() < hi {
			hi = b.End()
		}
		if hi > lo {
			// A bucket's flat extents are contiguous and j only advances,
			// so hits for one bucket are consecutive: accumulate in place.
			if bk := x.bucket[j]; len(dst) > base && dst[len(dst)-1].Bucket == bk {
				dst[len(dst)-1].Bytes += hi - lo
			} else {
				dst = append(dst, BucketBytes{Bucket: bk, Bytes: hi - lo})
			}
		}
		if a.End() < b.End() {
			i++
		} else {
			j++
		}
	}
	return dst
}

// OverlapBytesInto is OverlapBytes with a caller-owned scratch slice:
// dst is grown (or allocated when nil/too small), zeroed, filled and
// returned, so a caller querying many requests against one index reuses
// a single allocation. Extents already in canonical form take a fast
// path that skips the normalizing copy entirely — request lists in the
// hot paths are generated normalized.
func (x *ExtentIndex) OverlapBytesInto(dst []int64, exts []pfs.Extent) []int64 {
	if cap(dst) < x.n {
		dst = make([]int64, x.n)
	} else {
		dst = dst[:x.n]
		clear(dst)
	}
	out := dst
	norm := exts
	if !pfs.IsNormalized(exts) {
		norm = pfs.NormalizeExtents(exts)
	}
	i, j := 0, 0
	for i < len(norm) && j < len(x.flat) {
		a, b := norm[i], x.flat[j]
		lo := a.Offset
		if b.Offset > lo {
			lo = b.Offset
		}
		hi := a.End()
		if b.End() < hi {
			hi = b.End()
		}
		if hi > lo {
			out[x.bucket[j]] += hi - lo
		}
		if a.End() < b.End() {
			i++
		} else {
			j++
		}
	}
	return out
}
