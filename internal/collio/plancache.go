package collio

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sync"
)

// The plan cache memoizes validated plans. Sweeps re-derive identical
// partition trees constantly — every (config, memory point, strategy)
// cell is planned once per op pair, the tuner revisits parameter combos,
// and repeated experiment invocations (benchmarks, ablation overlap
// pairs) replan the very same inputs. Planning is deterministic, so the
// cache can only return what Plan would have computed.
//
// The key covers everything planning reads: the concrete strategy type
// and its exported fields (Name() alone is ambiguous — two-phase reports
// "two-phase" for every AggregatorsPerNode), the machine, filesystem and
// parameter configs, the topology's rank→node map, the availability
// vector, and a fingerprint of the request list.
var planCache = struct {
	sync.Mutex
	m map[string]*planEntry
}{m: map[string]*planEntry{}}

// planCacheLimit bounds the cache; on overflow the whole map is dropped
// (sweeps re-warm it in one pass, an LRU would be ceremony here).
const planCacheLimit = 512

type planEntry struct {
	once sync.Once
	plan *Plan
	err  error
}

// ResetPlanCache empties the cache — benchmarks use it to measure the
// cold path.
func ResetPlanCache() {
	planCache.Lock()
	planCache.m = map[string]*planEntry{}
	planCache.Unlock()
}

// planKey derives the cache key for one planning input.
func planKey(s Strategy, ctx *Context, reqs []RankRequest) string {
	h := fnv.New64a()
	var buf [8]byte
	w := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	for r := 0; r < ctx.Topo.Size(); r++ {
		w(int64(ctx.Topo.NodeOf(r)))
	}
	w(int64(len(ctx.Avail)))
	for _, a := range ctx.Avail {
		w(a)
	}
	w(int64(len(reqs)))
	for _, r := range reqs {
		w(int64(r.Rank))
		w(int64(len(r.Extents)))
		for _, e := range r.Extents {
			w(e.Offset)
			w(e.Length)
		}
	}
	return fmt.Sprintf("%T|%+v|%+v|%+v|%+v|%x",
		s, s, ctx.Machine, ctx.FS, ctx.Params, h.Sum64())
}

// CachedPlan returns s.Plan(ctx, reqs) with the plan validated against
// reqs, memoized. The returned *Plan is shared: callers must treat it as
// immutable (Cost only reads it; fault-injected paths, whose recovery
// mutates plans mid-operation, must keep planning directly). Safe for
// concurrent use — concurrent misses on one key plan once.
//
// When ctx.Obs is set the cache is bypassed entirely: planning publishes
// observer metrics and spans, which a cache hit would silently drop.
func CachedPlan(s Strategy, ctx *Context, reqs []RankRequest) (*Plan, error) {
	if ctx.Obs != nil {
		plan, err := s.Plan(ctx, reqs)
		if err != nil {
			return nil, err
		}
		if err := plan.Validate(reqs); err != nil {
			return nil, err
		}
		return plan, nil
	}
	key := planKey(s, ctx, reqs)
	planCache.Lock()
	e := planCache.m[key]
	if e == nil {
		if len(planCache.m) >= planCacheLimit {
			planCache.m = make(map[string]*planEntry, planCacheLimit)
		}
		e = &planEntry{}
		planCache.m[key] = e
	}
	planCache.Unlock()
	e.once.Do(func() {
		e.plan, e.err = s.Plan(ctx, reqs)
		if e.err == nil {
			e.err = e.plan.Validate(reqs)
		}
	})
	if e.err != nil {
		return nil, e.err
	}
	return e.plan, nil
}
