package collio

import (
	"sort"

	"mcio/internal/pfs"
	"mcio/internal/sim"
)

// Shape is the round structure of a planned collective operation,
// described without executing it: what the metadata exchange moves
// between nodes, and what every data round shuffles and stores, as
// aggregate per-route and per-node quantities. It is the plan-side half
// of the analytical fast path (internal/fastsim): Cost derives the same
// quantities implicitly by replaying one message per rank, Shape exposes
// them in O(aggregators + contributing nodes) so an engine can price a
// million-rank operation from a few thousand numbers.
type Shape struct {
	// MaxRounds is the global round count: rounds are priced in lockstep
	// across domains, and domain i is staggered by i buffer slots.
	MaxRounds int
	// MetaExchanges is the metadata scatter, one all-to-all exchange per
	// group with aggregators and contributing members: each source node's
	// extent-list bytes to each aggregator slot. The exchange form stays
	// linear in nodes where the per-route form is a dense source × slot
	// product (the whole machine squared, for the single-group two-phase
	// baseline).
	MetaExchanges []sim.Exchange
	// MetaMessages is the number of point-to-point metadata messages the
	// exchanges stand for (one per member rank per group aggregator).
	MetaMessages int
	// Domains holds one entry per plan domain, aligned with
	// Plan.Domains.
	Domains []DomainShape
}

// DomainShape is one file domain's round structure: its geometry plus
// the per-node shuffle contributions, pre-split so any round's exact
// share is a binary search away.
type DomainShape struct {
	// Index is the domain's position in Plan.Domains; the cyclic round
	// stagger is keyed on it.
	Index int
	// Rounds is Domain.Rounds(): collective-buffer cycles to drain the
	// domain.
	Rounds int
	// AggNode hosts the domain's aggregator.
	AggNode int
	// BufferBytes is the aggregator's collective buffer.
	BufferBytes int64
	// Extents aliases the domain's (normalized) data extents.
	Extents []pfs.Extent
	// Contribs lists the nodes shuffling data with the aggregator,
	// ascending by node.
	Contribs []NodeContrib
}

// NodeContrib aggregates one node's shuffle contributions to a domain
// across the domain's rounds. The byte path splits each rank's
// contribution evenly over the rounds, giving round k
// floor(bytes/rounds) plus one extra byte while k < bytes%rounds; the
// per-node aggregate of that split is reconstructed exactly from the
// floor sum and the sorted remainder multiset.
type NodeContrib struct {
	// Node is the contributing compute node.
	Node int
	// Count is the number of contributing ranks on the node.
	Count int
	// Bytes is the node's total contribution to the domain.
	Bytes int64

	floorSum int64   // Σ floor(rankBytes/rounds) over the node's ranks
	posFloor int     // ranks whose floor share is positive
	rems     []int64 // positive remainders rankBytes%rounds, sorted
	remsZero []int64 // subset of rems where the floor share is zero, sorted
}

// RoundShare returns the node's exact shuffle bytes and positive-byte
// message count in round k of the domain — what the byte path's
// per-rank even split produces, summed over the node's ranks.
func (c *NodeContrib) RoundShare(k int) (bytes int64, msgs int) {
	kk := int64(k)
	extra := len(c.rems) - sort.Search(len(c.rems), func(i int) bool { return c.rems[i] > kk })
	zero := len(c.remsZero) - sort.Search(len(c.remsZero), func(i int) bool { return c.remsZero[i] > kk })
	return c.floorSum + int64(extra), c.posFloor + zero
}

// RoundSlice returns the file extents the domain's aggregator drains in
// round k: the staggered collective-buffer window the byte path uses.
func (d *DomainShape) RoundSlice(k int) []pfs.Extent {
	return d.RoundSliceAppend(nil, k)
}

// RoundSliceAppend is RoundSlice appending to a caller-owned slice, so a
// pricing loop over every (domain, round) pair reuses one allocation.
func (d *DomainShape) RoundSliceAppend(dst []pfs.Extent, k int) []pfs.Extent {
	return pfs.SliceDataAppend(dst, d.Extents, int64((k+d.Index)%d.Rounds)*d.BufferBytes, d.BufferBytes)
}

// BuildShape derives the round structure of plan for the given requests.
// The result is deterministic and self-contained: building it walks each
// rank's request list once (metadata sizes and domain overlaps) and
// never materializes per-rank rounds.
func BuildShape(ctx *Context, plan *Plan, reqs []RankRequest) (*Shape, error) {
	if err := ctx.Validate(); err != nil {
		return nil, err
	}
	sh := &Shape{}
	sh.MetaExchanges, sh.MetaMessages = buildMetaExchanges(ctx, plan, reqs)
	// Domain shapes: geometry plus per-node contribution aggregates.
	sh.Domains = make([]DomainShape, len(plan.Domains))
	buckets := make([][]pfs.Extent, len(plan.Domains))
	contribs := make([]map[int]*NodeContrib, len(plan.Domains))
	for i, d := range plan.Domains {
		rd := d.Rounds()
		if rd > sh.MaxRounds {
			sh.MaxRounds = rd
		}
		sh.Domains[i] = DomainShape{
			Index:       i,
			Rounds:      rd,
			AggNode:     d.AggNode,
			BufferBytes: d.BufferBytes,
			Extents:     d.Extents,
		}
		buckets[i] = d.Extents
		contribs[i] = map[int]*NodeContrib{}
	}
	if len(plan.Domains) > 0 {
		index := NewExtentIndex(buckets)
		var overlaps []BucketBytes // one scratch allocation for all requests
		for _, r := range reqs {
			if len(r.Extents) == 0 {
				continue
			}
			node := ctx.Topo.NodeOf(r.Rank)
			overlaps = index.OverlapAppend(overlaps[:0], r.Extents)
			for _, bb := range overlaps {
				rounds := int64(sh.Domains[bb.Bucket].Rounds)
				nc := contribs[bb.Bucket][node]
				if nc == nil {
					nc = &NodeContrib{Node: node}
					contribs[bb.Bucket][node] = nc
				}
				nc.Count++
				nc.Bytes += bb.Bytes
				fl, rem := bb.Bytes/rounds, bb.Bytes%rounds
				nc.floorSum += fl
				if fl > 0 {
					nc.posFloor++
				}
				if rem > 0 {
					nc.rems = append(nc.rems, rem)
					if fl == 0 {
						nc.remsZero = append(nc.remsZero, rem)
					}
				}
			}
		}
	}
	for i := range sh.Domains {
		d := &sh.Domains[i]
		d.Contribs = make([]NodeContrib, 0, len(contribs[i]))
		for _, nc := range contribs[i] {
			sortInt64s(nc.rems)
			sortInt64s(nc.remsZero)
			d.Contribs = append(d.Contribs, *nc)
		}
		sort.Slice(d.Contribs, func(a, b int) bool { return d.Contribs[a].Node < d.Contribs[b].Node })
	}
	return sh, nil
}

// buildMetaExchanges derives the metadata scatter in closed form, one
// exchange per group: every member rank ships its flattened extent list
// to each group aggregator. Ranks are folded per source node and
// aggregators per destination node (duplicate aggregator ranks on one
// node are slots, each counting, as on the byte path); the engine
// prices the cross product in O(sources + destinations). Returns the
// exchanges and the point-to-point message count they stand for. Both
// BuildShape and BuildFaultedShape share it.
func buildMetaExchanges(ctx *Context, plan *Plan, reqs []RankRequest) ([]sim.Exchange, int) {
	extCount := make(map[int]int, len(reqs))
	for _, r := range reqs {
		n := len(r.Extents)
		if !pfs.IsNormalized(r.Extents) {
			n = len(pfs.NormalizeExtents(r.Extents))
		}
		extCount[r.Rank] = n
	}
	aggsByGroup := make(map[int][]int)
	for _, d := range plan.Domains {
		aggsByGroup[d.Group] = append(aggsByGroup[d.Group], d.Aggregator)
	}
	var exchanges []sim.Exchange
	messages := 0
	srcBytes := map[int]*sim.ExchangeSrc{} // per-group scratch: src node -> bytes, rank count
	for g, ranks := range plan.GroupRanks {
		aggs := dedupInts(aggsByGroup[g])
		if len(aggs) == 0 {
			continue
		}
		clear(srcBytes)
		for _, r := range ranks {
			bytes := int64(extCount[r]) * extentListEntryBytes
			if bytes == 0 {
				continue
			}
			node := ctx.Topo.NodeOf(r)
			f := srcBytes[node]
			if f == nil {
				f = &sim.ExchangeSrc{Node: node}
				srcBytes[node] = f
			}
			f.Bytes += bytes
			f.Count++
		}
		if len(srcBytes) == 0 {
			continue
		}
		x := sim.Exchange{Srcs: make([]sim.ExchangeSrc, 0, len(srcBytes))}
		srcRanks := 0
		for _, f := range srcBytes {
			x.Srcs = append(x.Srcs, *f)
			srcRanks += f.Count
		}
		sort.Slice(x.Srcs, func(i, j int) bool { return x.Srcs[i].Node < x.Srcs[j].Node })
		slots := map[int]int{}
		for _, a := range aggs {
			slots[ctx.Topo.NodeOf(a)]++
		}
		x.Dsts = make([]sim.ExchangeDst, 0, len(slots))
		for node, n := range slots {
			x.Dsts = append(x.Dsts, sim.ExchangeDst{Node: node, Slots: n})
		}
		sort.Slice(x.Dsts, func(i, j int) bool { return x.Dsts[i].Node < x.Dsts[j].Node })
		exchanges = append(exchanges, x)
		messages += srcRanks * len(aggs)
	}
	return exchanges, messages
}

// sortInt64s sorts xs ascending.
func sortInt64s(xs []int64) {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
}
