package collio

import (
	"fmt"
	"sort"
	"strconv"

	"mcio/internal/obs"
	"mcio/internal/pfs"
	"mcio/internal/sim"
	"mcio/internal/stats"
)

// CostResult is the priced outcome of one collective operation.
type CostResult struct {
	Strategy  string
	Op        Op
	UserBytes int64
	Seconds   float64
	// Bandwidth is UserBytes/Seconds in bytes per second — the number the
	// paper's figures plot.
	Bandwidth float64
	Totals    sim.Totals

	// Aggregator-side accounting, the paper's secondary metrics.
	Aggregators      int
	PagedAggregators int
	Domains          int
	Groups           int
	MaxRounds        int
	// BufferSummary summarizes per-domain aggregation buffer sizes (memory
	// consumption per aggregator); its CV is the "variance among
	// processes" the paper's strategy minimizes.
	BufferSummary stats.Summary

	// Trace holds per-round records when sim.Options.Trace was set.
	Trace []sim.TraceEntry
}

// extentListEntryBytes is the wire size of one (offset, length) record in
// the metadata exchange, as in ROMIO's flattened offset/length lists.
const extentListEntryBytes = 16

// costObs carries Cost's rank-level observability wiring: per-rank MPI
// traffic counters (the engine only sees nodes) and per-domain shuffle
// counters, pre-resolved so the per-round loop pays one atomic add per
// update. Nil means disabled.
type costObs struct {
	o     *obs.Observer
	pid   int
	sentB []*obs.Counter // bytes sent, by world rank
	sentM []*obs.Counter // messages sent, by world rank
	recvB []*obs.Counter // bytes received, by world rank
	recvM []*obs.Counter // messages received, by world rank
	shuf  []*obs.Counter // shuffle bytes, by domain index
}

// newCostObs pre-resolves the instruments for one priced operation.
func newCostObs(ctx *Context, plan *Plan, op Op) *costObs {
	if ctx.Obs == nil {
		return nil
	}
	co := &costObs{o: ctx.Obs, pid: ctx.Obs.Tracer().PID(plan.Strategy)}
	base := []obs.Label{obs.L("strategy", plan.Strategy), obs.L("op", op.String())}
	n := ctx.Topo.Size()
	co.sentB = make([]*obs.Counter, n)
	co.sentM = make([]*obs.Counter, n)
	co.recvB = make([]*obs.Counter, n)
	co.recvM = make([]*obs.Counter, n)
	for r := 0; r < n; r++ {
		labels := append(append([]obs.Label(nil), base...), obs.L("rank", strconv.Itoa(r)))
		co.sentB[r] = ctx.Obs.Counter("mpi.bytes_sent", labels...)
		co.sentM[r] = ctx.Obs.Counter("mpi.msgs_sent", labels...)
		co.recvB[r] = ctx.Obs.Counter("mpi.bytes_recv", labels...)
		co.recvM[r] = ctx.Obs.Counter("mpi.msgs_recv", labels...)
	}
	co.shuf = make([]*obs.Counter, len(plan.Domains))
	for i, d := range plan.Domains {
		labels := append(append([]obs.Label(nil), base...),
			obs.L("group", strconv.Itoa(d.Group)),
			obs.L("aggregator", strconv.Itoa(d.Aggregator)))
		co.shuf[i] = ctx.Obs.Counter("collio.shuffle_bytes", labels...)
	}
	return co
}

// transfer accounts one rank-to-rank transfer.
func (co *costObs) transfer(src, dst int, bytes int64) {
	if co == nil {
		return
	}
	co.sentB[src].Add(bytes)
	co.sentM[src].Inc()
	co.recvB[dst].Add(bytes)
	co.recvM[dst].Inc()
}

// Cost prices plan against the context's machine and storage models
// without moving any data. The same plan and requests always produce the
// same result.
func Cost(ctx *Context, plan *Plan, reqs []RankRequest, op Op, opt sim.Options) (*CostResult, error) {
	if err := ctx.Validate(); err != nil {
		return nil, err
	}
	st := sim.StorageParams{
		Targets:         ctx.FS.Targets,
		TargetBW:        ctx.FS.TargetBW,
		ReqOverhead:     ctx.FS.ReqOverhead,
		NoncontigFactor: ctx.FS.NoncontigFactor,
		ReadBWFactor:    ctx.FS.ReadBWFactor,
	}
	eng, err := sim.NewEngine(ctx.Machine, st, opt)
	if err != nil {
		return nil, err
	}
	co := newCostObs(ctx, plan, op)
	if co != nil {
		eng.SetObserver(ctx.Obs, co.pid,
			obs.L("strategy", plan.Strategy), obs.L("op", op.String()))
	}

	placements := make([]sim.AggregatorPlacement, len(plan.Domains))
	for i, d := range plan.Domains {
		placements[i] = sim.AggregatorPlacement{
			Node:          d.AggNode,
			BufferBytes:   d.BufferBytes,
			PagedSeverity: d.PagedSeverity,
		}
	}
	eng.SetAggregators(placements)
	tlAttach(ctx, eng, plan, op)
	tlBufferGauges(ctx, plan.Domains, 0)

	// Metadata exchange: within each group, every member rank ships its
	// flattened offset/length list to each of the group's aggregators.
	// The baseline has one group spanning all ranks, so this is the
	// global request exchange of classic two-phase I/O; the
	// memory-conscious strategy confines it to each group.
	extCount := make(map[int]int, len(reqs))
	for _, r := range reqs {
		n := len(r.Extents)
		if !pfs.IsNormalized(r.Extents) {
			n = len(pfs.NormalizeExtents(r.Extents))
		}
		extCount[r.Rank] = n
	}
	aggsByGroup := make(map[int][]int)
	for _, d := range plan.Domains {
		aggsByGroup[d.Group] = append(aggsByGroup[d.Group], d.Aggregator)
	}
	meta := sim.Round{Kind: sim.RoundMetadata}
	for g, ranks := range plan.GroupRanks {
		aggs := dedupInts(aggsByGroup[g])
		for _, r := range ranks {
			bytes := int64(extCount[r]) * extentListEntryBytes
			if bytes == 0 {
				continue
			}
			for _, a := range aggs {
				meta.Messages = append(meta.Messages, sim.Message{
					SrcNode: ctx.Topo.NodeOf(r),
					DstNode: ctx.Topo.NodeOf(a),
					Bytes:   bytes,
				})
				co.transfer(r, a, bytes)
			}
		}
	}
	if len(meta.Messages) > 0 {
		eng.RunRound(meta)
	}

	// Per-domain, per-rank contribution bytes (distributed evenly over the
	// domain's rounds — the shuffle volume is exact, the per-round split
	// is the even approximation). One merge-walk per rank against the
	// domain index keeps this linear in the total extent count.
	type contrib struct {
		rank  int
		node  int
		bytes int64
	}
	domainContribs := make([][]contrib, len(plan.Domains))
	buckets := make([][]pfs.Extent, len(plan.Domains))
	maxRounds := 0
	for i, d := range plan.Domains {
		buckets[i] = d.Extents
		if rd := d.Rounds(); rd > maxRounds {
			maxRounds = rd
		}
	}
	if len(plan.Domains) > 0 {
		index := NewExtentIndex(buckets)
		var overlaps []int64 // one scratch allocation for all requests
		for _, r := range reqs {
			if len(r.Extents) == 0 {
				continue
			}
			node := ctx.Topo.NodeOf(r.Rank)
			overlaps = index.OverlapBytesInto(overlaps, r.Extents)
			for i, b := range overlaps {
				if b > 0 {
					domainContribs[i] = append(domainContribs[i], contrib{rank: r.Rank, node: node, bytes: b})
				}
			}
		}
	}

	// The engine does not retain a Round's slices past RunRound, so one
	// Round's backing arrays are recycled across the whole loop.
	var round sim.Round
	for k := 0; k < maxRounds; k++ {
		round.Messages = round.Messages[:0]
		round.IOOps = round.IOOps[:0]
		for i, d := range plan.Domains {
			rounds := d.Rounds()
			if k >= rounds {
				continue
			}
			// Shuffle phase: contributions to/from the aggregator.
			for _, c := range domainContribs[i] {
				per := c.bytes / int64(rounds)
				if int64(k) < c.bytes%int64(rounds) {
					per++
				}
				if per == 0 {
					continue
				}
				m := sim.Message{SrcNode: c.node, DstNode: d.AggNode, Bytes: per}
				if op == Read {
					m.SrcNode, m.DstNode = m.DstNode, m.SrcNode
					co.transfer(d.Aggregator, c.rank, per)
				} else {
					co.transfer(c.rank, d.Aggregator, per)
				}
				if co != nil {
					co.shuf[i].Add(per)
				}
				round.Messages = append(round.Messages, m)
			}
			// I/O phase: this round's slice of the domain through the
			// collective buffer. Slices are staggered cyclically across
			// domains: aggregators do not run in lockstep on a real
			// machine, and without the stagger, stripe-cycle-aligned
			// domains would hit the same storage target in every round —
			// an artificial convoy the global-round pricing would
			// otherwise create.
			slice := pfs.SliceData(d.Extents, int64((k+i)%rounds)*d.BufferBytes, d.BufferBytes)
			for _, acc := range ctx.FS.MapExtents(slice) {
				round.IOOps = append(round.IOOps, sim.IOOp{
					Target:     acc.Target,
					Node:       d.AggNode,
					Bytes:      acc.Bytes,
					Requests:   acc.Requests,
					Contiguous: acc.Contiguous,
					Write:      op == Write,
				})
			}
		}
		eng.RunRound(round)
	}

	userBytes := plan.TotalBytes()
	if co != nil {
		span := ctx.Obs.Tracer().Begin(co.pid, sim.TIDTimeline,
			plan.Strategy+" "+op.String(), 0,
			obs.A("groups", strconv.Itoa(plan.Groups)),
			obs.A("domains", strconv.Itoa(len(plan.Domains))),
			obs.A("rounds", strconv.Itoa(maxRounds)),
			obs.A("user_bytes", strconv.FormatInt(userBytes, 10)))
		span.End(eng.Elapsed())
	}
	res := &CostResult{
		Strategy:  plan.Strategy,
		Op:        op,
		UserBytes: userBytes,
		Seconds:   eng.Elapsed(),
		Bandwidth: eng.Bandwidth(userBytes),
		Totals:    eng.Totals(),
		Domains:   len(plan.Domains),
		Groups:    plan.Groups,
		MaxRounds: maxRounds,
	}
	res.Aggregators = len(plan.Aggregators())
	buffers := make([]float64, 0, len(plan.Domains))
	for _, d := range plan.Domains {
		buffers = append(buffers, float64(d.BufferBytes))
		if d.PagedSeverity > 0 {
			res.PagedAggregators++
		}
	}
	res.BufferSummary = stats.Summarize(buffers)
	if opt.Trace {
		res.Trace = eng.Trace()
	}
	return res, nil
}

// String renders the result in one line for experiment logs.
func (r *CostResult) String() string {
	return fmt.Sprintf("%s %s: %.2f MB/s (%.4fs, %d groups, %d domains, %d aggs, %d paged, %d rounds)",
		r.Strategy, r.Op, r.Bandwidth/1e6, r.Seconds, r.Groups, r.Domains,
		r.Aggregators, r.PagedAggregators, r.MaxRounds)
}

// dedupInts sorts xs in place and compacts out duplicates — O(n log n),
// no allocation. The returned slice aliases xs. Callers only feed the
// result into order-independent accumulations (per-node byte sums,
// commutative counters), so the ordering is free to change.
func dedupInts(xs []int) []int {
	if len(xs) < 2 {
		return xs
	}
	sort.Ints(xs)
	out := xs[:1]
	for _, x := range xs[1:] {
		if x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}
