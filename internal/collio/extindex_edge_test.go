package collio

import (
	"reflect"
	"testing"

	"mcio/internal/pfs"
	"mcio/internal/stats"
)

// A bucket with no extents is legal (an aggregator whose domain nobody
// touches) and must simply collect zero bytes.
func TestExtentIndexEmptyBucketAmongOthers(t *testing.T) {
	idx := NewExtentIndex([][]pfs.Extent{
		{{Offset: 0, Length: 10}},
		{}, // empty bucket
		{{Offset: 20, Length: 10}},
	})
	got := idx.OverlapBytes([]pfs.Extent{{Offset: 0, Length: 30}})
	if !reflect.DeepEqual(got, []int64{10, 0, 10}) {
		t.Fatalf("overlaps = %v, want [10 0 10]", got)
	}
}

// Zero-length query extents contribute nothing; the index must normalize
// them away rather than miscount or loop.
func TestExtentIndexZeroLengthQueryExtents(t *testing.T) {
	idx := NewExtentIndex([][]pfs.Extent{{{Offset: 10, Length: 10}}})
	got := idx.OverlapBytes([]pfs.Extent{
		{Offset: 12, Length: 0},
		{Offset: 15, Length: 2},
		{Offset: 30, Length: 0},
	})
	if got[0] != 2 {
		t.Fatalf("overlaps = %v, want [2]", got)
	}
	if got := idx.OverlapBytes([]pfs.Extent{{Offset: 12, Length: 0}}); got[0] != 0 {
		t.Fatalf("all-empty query overlaps = %v, want [0]", got)
	}
}

// Adjacency is not overlap: a query ending exactly where a bucket begins
// (and vice versa) contributes zero bytes to it.
func TestExtentIndexAdjacentNotOverlapping(t *testing.T) {
	idx := NewExtentIndex([][]pfs.Extent{
		{{Offset: 0, Length: 10}},
		{{Offset: 10, Length: 10}}, // starts exactly at bucket 0's end
	})
	if got := idx.OverlapBytes([]pfs.Extent{{Offset: 5, Length: 5}}); got[0] != 5 || got[1] != 0 {
		t.Fatalf("query ending at boundary: overlaps = %v, want [5 0]", got)
	}
	if got := idx.OverlapBytes([]pfs.Extent{{Offset: 10, Length: 3}}); got[0] != 0 || got[1] != 3 {
		t.Fatalf("query starting at boundary: overlaps = %v, want [0 3]", got)
	}
	if got := idx.OverlapBytes([]pfs.Extent{{Offset: 20, Length: 5}}); got[0] != 0 || got[1] != 0 {
		t.Fatalf("query past all buckets: overlaps = %v, want [0 0]", got)
	}
}

// OverlapBytesInto must reuse the caller's scratch (no realloc when the
// capacity suffices), zero stale contents, and agree with OverlapBytes.
func TestOverlapBytesIntoReusesScratch(t *testing.T) {
	idx := NewExtentIndex([][]pfs.Extent{
		{{Offset: 0, Length: 10}},
		{{Offset: 20, Length: 10}},
	})
	q1 := []pfs.Extent{{Offset: 0, Length: 30}}
	q2 := []pfs.Extent{{Offset: 25, Length: 100}}

	dst := idx.OverlapBytesInto(nil, q1)
	if !reflect.DeepEqual(dst, []int64{10, 10}) {
		t.Fatalf("first query = %v", dst)
	}
	p := &dst[0]
	dst = idx.OverlapBytesInto(dst, q2)
	if &dst[0] != p {
		t.Fatal("second query reallocated instead of reusing scratch")
	}
	if !reflect.DeepEqual(dst, []int64{0, 5}) {
		t.Fatalf("second query = %v (stale bytes not cleared?)", dst)
	}
	// Oversized scratch is trimmed to the bucket count.
	big := make([]int64, 64)
	out := idx.OverlapBytesInto(big, q1)
	if len(out) != 2 || !reflect.DeepEqual(out, []int64{10, 10}) {
		t.Fatalf("oversized scratch result = %v", out)
	}
}

// Unnormalized queries (overlapping, unsorted, empty extents) take the
// normalizing slow path and must match the canonical answer.
func TestOverlapBytesUnnormalizedQuery(t *testing.T) {
	idx := NewExtentIndex([][]pfs.Extent{
		{{Offset: 0, Length: 50}},
		{{Offset: 60, Length: 50}},
	})
	messy := []pfs.Extent{
		{Offset: 40, Length: 30}, // spans the gap
		{Offset: 0, Length: 20},  // out of order
		{Offset: 10, Length: 20}, // overlaps previous
		{Offset: 5, Length: 0},   // empty
	}
	canonical := pfs.NormalizeExtents(messy)
	if !reflect.DeepEqual(idx.OverlapBytes(messy), idx.OverlapBytes(canonical)) {
		t.Fatalf("messy %v != canonical %v",
			idx.OverlapBytes(messy), idx.OverlapBytes(canonical))
	}
}

// benchIndex builds a coll_perf-like index: many disjoint bucket extents
// and a normalized interleaved query.
func benchIndex(buckets, extsPer int) (*ExtentIndex, []pfs.Extent) {
	r := stats.NewRNG(11)
	var all [][]pfs.Extent
	var cur int64
	for b := 0; b < buckets; b++ {
		var exts []pfs.Extent
		for e := 0; e < extsPer; e++ {
			cur += r.Int63n(64) + 1
			length := r.Int63n(256) + 1
			exts = append(exts, pfs.Extent{Offset: cur, Length: length})
			cur += length
		}
		all = append(all, exts)
	}
	var query []pfs.Extent
	for off := int64(0); off < cur; off += 512 {
		query = append(query, pfs.Extent{Offset: off, Length: 200})
	}
	return NewExtentIndex(all), query
}

func BenchmarkOverlapBytes(b *testing.B) {
	idx, query := benchIndex(64, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.OverlapBytes(query)
	}
}

func BenchmarkOverlapBytesInto(b *testing.B) {
	idx, query := benchIndex(64, 16)
	var scratch []int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scratch = idx.OverlapBytesInto(scratch, query)
	}
}
