package collio

import (
	"fmt"
	"sort"
	"sync"

	"mcio/internal/mpi"
	"mcio/internal/pfs"
)

// stagePool recycles the gather/scatter staging buffers of Exec. Ranks
// run as goroutines and a collective write churns one chunk per
// (domain, contributor) plus one domain buffer per aggregator; pooling
// them keeps the shuffle hot path allocation-free after warm-up. A chunk
// handed to mpi.Proc.Send transfers ownership with the message — the
// receiver releases it after scattering.
var stagePool sync.Pool

// getStage returns a length-n buffer with unspecified contents — every
// use either fully overwrites it (gather output) or zeroes it first
// (domain assembly).
func getStage(n int64) []byte {
	if v := stagePool.Get(); v != nil {
		b := *(v.(*[]byte))
		if int64(cap(b)) >= n {
			return b[:n]
		}
	}
	return make([]byte, n)
}

// putStage recycles a buffer obtained from getStage (or received in a
// message whose sender staged it there).
func putStage(b []byte) {
	if cap(b) == 0 {
		return
	}
	b = b[:0]
	stagePool.Put(&b)
}

// RankData pairs one rank's request with its in-memory buffer. The buffer
// is the concatenation of the request's normalized extents in file order
// (the "data space" of the request): buffer byte 0 is the first byte of
// the lowest extent, and so on. Its length must equal the request's total
// bytes.
type RankData struct {
	Req RankRequest
	Buf []byte
}

// Exec really performs the collective operation described by plan: ranks
// run as goroutines, shuffle their contributions to the plan's
// aggregators, and the aggregators read or write the striped file. On
// write, each aggregator assembles its whole file domain in memory before
// issuing the writes; tests run at sizes where that is the simplest
// faithful rendering of the data path (the cost executor models the
// buffer-cycling rounds).
//
// For overlapping write requests the lowest-ranked writer's bytes may be
// overwritten by higher ranks, matching the unspecified outcome MPI gives
// concurrent overlapping collective writes.
func Exec(ctx *Context, plan *Plan, data []RankData, file *pfs.File, op Op) error {
	if err := ctx.Validate(); err != nil {
		return err
	}
	if len(data) != ctx.Topo.Size() {
		return fmt.Errorf("collio: Exec got %d rank buffers for %d ranks", len(data), ctx.Topo.Size())
	}
	for r, d := range data {
		if d.Req.Rank != r {
			return fmt.Errorf("collio: rank buffer %d labeled rank %d", r, d.Req.Rank)
		}
		if want := d.Req.Bytes(); int64(len(d.Buf)) != want {
			return fmt.Errorf("collio: rank %d buffer is %d bytes, request needs %d", r, len(d.Buf), want)
		}
	}

	normReq, scheds := buildScheds(plan, data)

	world := mpi.NewWorld(ctx.Topo)
	world.SetObserver(ctx.Obs)
	return world.Run(func(p *mpi.Proc) {
		me := p.Rank()
		for i, d := range plan.Domains {
			sched := &scheds[i]
			myIdx := -1
			for j, r := range sched.contributors {
				if r == me {
					myIdx = j
					break
				}
			}
			if op == Write {
				// Contributors ship their overlap bytes to the aggregator,
				// which releases the chunk once scattered.
				if myIdx >= 0 && me != d.Aggregator {
					p.Send(d.Aggregator, i, gather(normReq[me], data[me].Buf, sched.overlap[myIdx]))
				}
				if me != d.Aggregator {
					continue
				}
				// Zeroed: domain bytes no contributor covers must land on
				// disk as zeros, exactly as a fresh allocation would.
				domBuf := getStage(d.Bytes)
				clear(domBuf)
				for j, r := range sched.contributors {
					var chunk []byte
					if r == me {
						chunk = gather(normReq[me], data[me].Buf, sched.overlap[j])
					} else {
						chunk = p.Recv(r, i)
					}
					scatter(d.Extents, domBuf, sched.overlap[j], chunk)
					putStage(chunk)
				}
				var pos int64
				for _, e := range d.Extents {
					if _, err := file.WriteAt(domBuf[pos:pos+e.Length], e.Offset); err != nil {
						panic(err)
					}
					pos += e.Length
				}
				putStage(domBuf)
				continue
			}
			// Read: the aggregator loads the domain and distributes. The
			// extents sum to d.Bytes, so the reads fill the whole buffer —
			// no zeroing needed.
			if me == d.Aggregator {
				domBuf := getStage(d.Bytes)
				var pos int64
				for _, e := range d.Extents {
					if _, err := file.ReadAt(domBuf[pos:pos+e.Length], e.Offset); err != nil {
						panic(err)
					}
					pos += e.Length
				}
				for j, r := range sched.contributors {
					chunk := gather(d.Extents, domBuf, sched.overlap[j])
					if r == me {
						scatter(normReq[me], data[me].Buf, sched.overlap[j], chunk)
						putStage(chunk)
					} else {
						p.Send(r, i, chunk)
					}
				}
				putStage(domBuf)
			}
			if myIdx >= 0 && me != d.Aggregator {
				chunk := p.Recv(d.Aggregator, i)
				scatter(normReq[me], data[me].Buf, sched.overlap[myIdx], chunk)
				putStage(chunk)
			}
		}
	})
}

// domSched lists, for one domain, each contributing rank and the extents
// of its request that fall inside the domain.
type domSched struct {
	contributors []int          // ranks with data in the domain, ascending
	overlap      [][]pfs.Extent // indexed like contributors
}

// buildScheds precomputes, per domain, each contributing rank's overlap —
// every rank derives the identical schedule, as real two-phase code does
// from the allgathered offset lists.
func buildScheds(plan *Plan, data []RankData) (normReq [][]pfs.Extent, scheds []domSched) {
	normReq = make([][]pfs.Extent, len(data))
	for r := range data {
		normReq[r] = pfs.NormalizeExtents(data[r].Req.Extents)
	}
	scheds = make([]domSched, len(plan.Domains))
	for i, d := range plan.Domains {
		ranks := append([]int(nil), plan.GroupRanks[d.Group]...)
		sort.Ints(ranks)
		for _, r := range ranks {
			ov := pfs.Intersect(normReq[r], d.Extents)
			if len(ov) > 0 {
				scheds[i].contributors = append(scheds[i].contributors, r)
				scheds[i].overlap = append(scheds[i].overlap, ov)
			}
		}
	}
	return normReq, scheds
}

// dataPos returns the data-space position of file offset off within the
// normalized extent list exts. off must lie inside one of the extents.
func dataPos(exts []pfs.Extent, off int64) int64 {
	var pos int64
	for _, e := range exts {
		if off >= e.Offset && off < e.End() {
			return pos + (off - e.Offset)
		}
		pos += e.Length
	}
	panic(fmt.Sprintf("collio: offset %d outside extents %v", off, exts))
}

// gather copies the bytes of the want extents (each contained in a single
// extent of exts) out of a buffer laid out per exts, concatenated in file
// order. The result comes from stagePool; the consumer returns it with
// putStage once scattered.
func gather(exts []pfs.Extent, buf []byte, want []pfs.Extent) []byte {
	out := getStage(pfs.TotalBytes(want))[:0]
	for _, w := range want {
		pos := dataPos(exts, w.Offset)
		out = append(out, buf[pos:pos+w.Length]...)
	}
	return out
}

// scatter is the inverse of gather: it places data (the concatenation of
// the want extents in file order) into a buffer laid out per exts.
func scatter(exts []pfs.Extent, buf []byte, want []pfs.Extent, data []byte) {
	var read int64
	for _, w := range want {
		pos := dataPos(exts, w.Offset)
		copy(buf[pos:pos+w.Length], data[read:read+w.Length])
		read += w.Length
	}
	if read != int64(len(data)) {
		panic(fmt.Sprintf("collio: scatter consumed %d of %d bytes", read, len(data)))
	}
}
