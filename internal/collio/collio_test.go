package collio

import (
	"strings"
	"testing"

	"mcio/internal/machine"
	"mcio/internal/mpi"
	"mcio/internal/pfs"
)

func testContext(t *testing.T) *Context {
	t.Helper()
	topo, err := mpi.BlockTopology(6, 2)
	if err != nil {
		t.Fatal(err)
	}
	mc := machine.Testbed640()
	mc.Nodes = 3
	return &Context{
		Topo:    topo,
		Machine: mc,
		Avail:   []int64{1 << 30, 1 << 30, 1 << 30},
		FS:      pfs.DefaultConfig(4),
		Params:  DefaultParams(1 << 20),
	}
}

func TestOpString(t *testing.T) {
	if Read.String() != "read" || Write.String() != "write" {
		t.Fatal("Op strings")
	}
}

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams(1 << 20).Validate(); err != nil {
		t.Fatal(err)
	}
	bads := []Params{
		{CollBufSize: 0, MsgInd: 1, MsgGroup: 1, Nah: 1},
		{CollBufSize: 1, MsgInd: 0, MsgGroup: 1, Nah: 1},
		{CollBufSize: 1, MsgInd: 1, MsgGroup: 0, Nah: 1},
		{CollBufSize: 1, MsgInd: 1, MsgGroup: 1, Nah: 0},
		{CollBufSize: 1, MsgInd: 1, MsgGroup: 1, Nah: 1, MemMin: -1},
	}
	for i, p := range bads {
		if err := p.Validate(); err == nil {
			t.Errorf("bad params %d accepted", i)
		}
	}
}

func TestContextValidate(t *testing.T) {
	ctx := testContext(t)
	if err := ctx.Validate(); err != nil {
		t.Fatal(err)
	}
	short := *ctx
	short.Avail = []int64{1}
	if err := short.Validate(); err == nil {
		t.Fatal("short Avail accepted")
	}
	badFS := *ctx
	badFS.FS.Targets = 0
	if err := badFS.Validate(); err == nil {
		t.Fatal("bad FS accepted")
	}
	badParams := *ctx
	badParams.Params.Nah = 0
	if err := badParams.Validate(); err == nil {
		t.Fatal("bad params accepted")
	}
}

func TestDomainRounds(t *testing.T) {
	d := Domain{Bytes: 100, BufferBytes: 30}
	if d.Rounds() != 4 {
		t.Fatalf("rounds = %d, want 4", d.Rounds())
	}
	d = Domain{Bytes: 90, BufferBytes: 30}
	if d.Rounds() != 3 {
		t.Fatalf("rounds = %d, want 3", d.Rounds())
	}
	if (Domain{Bytes: 0, BufferBytes: 30}).Rounds() != 0 {
		t.Fatal("empty domain needs no rounds")
	}
}

func validPlan() (*Plan, []RankRequest) {
	reqs := []RankRequest{
		{Rank: 0, Extents: []pfs.Extent{{Offset: 0, Length: 100}}},
		{Rank: 1, Extents: []pfs.Extent{{Offset: 100, Length: 100}}},
	}
	plan := &Plan{
		Strategy: "test",
		Groups:   1,
		GroupRanks: [][]int{
			{0, 1},
		},
		Domains: []Domain{
			{Extents: []pfs.Extent{{Offset: 0, Length: 120}}, Bytes: 120, Group: 0, Aggregator: 0, AggNode: 0, BufferBytes: 64},
			{Extents: []pfs.Extent{{Offset: 120, Length: 80}}, Bytes: 80, Group: 0, Aggregator: 1, AggNode: 0, BufferBytes: 64},
		},
	}
	return plan, reqs
}

func TestPlanValidateAccepts(t *testing.T) {
	plan, reqs := validPlan()
	if err := plan.Validate(reqs); err != nil {
		t.Fatal(err)
	}
}

func TestPlanValidateRejects(t *testing.T) {
	mutations := map[string]func(p *Plan){
		"empty domain":   func(p *Plan) { p.Domains[0].Extents = nil; p.Domains[0].Bytes = 0 },
		"bytes mismatch": func(p *Plan) { p.Domains[0].Bytes = 999 },
		"no buffer":      func(p *Plan) { p.Domains[0].BufferBytes = 0 },
		"overlap": func(p *Plan) {
			p.Domains[1].Extents = []pfs.Extent{{Offset: 100, Length: 100}}
			p.Domains[1].Bytes = 100
		},
		"no aggregator": func(p *Plan) { p.Domains[0].Aggregator = -1 },
		"bad group":     func(p *Plan) { p.Domains[0].Group = 5 },
		"coverage hole": func(p *Plan) {
			p.Domains[1].Extents = []pfs.Extent{{Offset: 120, Length: 70}}
			p.Domains[1].Bytes = 70
		},
	}
	for name, mutate := range mutations {
		plan, reqs := validPlan()
		mutate(plan)
		if err := plan.Validate(reqs); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestPlanAggregatorsAndBytes(t *testing.T) {
	plan, _ := validPlan()
	aggs := plan.Aggregators()
	if len(aggs) != 2 || aggs[0] != 0 || aggs[1] != 1 {
		t.Fatalf("aggregators = %v", aggs)
	}
	if plan.TotalBytes() != 200 {
		t.Fatalf("total bytes = %d", plan.TotalBytes())
	}
}

func TestCostBasics(t *testing.T) {
	ctx := testContext(t)
	plan, reqs := validPlan()
	res, err := Cost(ctx, plan, reqs, Write, simOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.UserBytes != 200 {
		t.Fatalf("user bytes = %d", res.UserBytes)
	}
	if res.Seconds <= 0 || res.Bandwidth <= 0 {
		t.Fatalf("degenerate cost: %+v", res)
	}
	if res.Domains != 2 || res.Groups != 1 || res.Aggregators != 2 {
		t.Fatalf("structure: %+v", res)
	}
	if res.MaxRounds != 2 { // 120 bytes over 64-byte buffer
		t.Fatalf("rounds = %d, want 2", res.MaxRounds)
	}
	if !strings.Contains(res.String(), "write") {
		t.Fatal("String misses op")
	}
}

func TestCostDeterministic(t *testing.T) {
	ctx := testContext(t)
	plan, reqs := validPlan()
	a, err := Cost(ctx, plan, reqs, Read, simOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Cost(ctx, plan, reqs, Read, simOptions())
	if err != nil {
		t.Fatal(err)
	}
	if a.Seconds != b.Seconds || a.Bandwidth != b.Bandwidth {
		t.Fatalf("nondeterministic cost: %v vs %v", a.Seconds, b.Seconds)
	}
}

func TestCostPagingHurts(t *testing.T) {
	ctx := testContext(t)
	plan, reqs := validPlan()
	healthy, err := Cost(ctx, plan, reqs, Write, simOptions())
	if err != nil {
		t.Fatal(err)
	}
	plan2, _ := validPlan()
	plan2.Domains[0].PagedSeverity = 1
	plan2.Domains[1].PagedSeverity = 1
	paged, err := Cost(ctx, plan2, reqs, Write, simOptions())
	if err != nil {
		t.Fatal(err)
	}
	if paged.Seconds <= healthy.Seconds {
		t.Fatalf("paged plan not slower: %v vs %v", paged.Seconds, healthy.Seconds)
	}
	if paged.PagedAggregators != 2 {
		t.Fatalf("paged aggregators = %d", paged.PagedAggregators)
	}
}

func TestCostReadMirrorsWrite(t *testing.T) {
	// With a symmetric cost model, read and write of the same plan price
	// identically except for message direction — equal here because the
	// topology is symmetric.
	ctx := testContext(t)
	plan, reqs := validPlan()
	w, err := Cost(ctx, plan, reqs, Write, simOptions())
	if err != nil {
		t.Fatal(err)
	}
	r, err := Cost(ctx, plan, reqs, Read, simOptions())
	if err != nil {
		t.Fatal(err)
	}
	if w.Totals.ShufBytes != r.Totals.ShufBytes || w.Totals.IOBytes != r.Totals.IOBytes {
		t.Fatalf("byte accounting differs between read and write: %+v vs %+v", w.Totals, r.Totals)
	}
}
