package collio

import (
	"fmt"
	"sort"
	"strconv"

	"mcio/internal/faults"
	"mcio/internal/obs"
	"mcio/internal/obs/timeline"
	"mcio/internal/pfs"
	"mcio/internal/sim"
	"mcio/internal/stats"
)

// HostFault is one host-level fault (crash or memory collapse)
// delivered to a FaultHandler at a round boundary.
type HostFault struct {
	Node     int
	Kind     faults.Kind
	Time     float64 // simulated seconds, event schedule time
	Severity float64 // collapse fraction for MemCollapse
	// Proactive marks a health-driven re-placement: no hard fault has
	// fired — the suspicion detector crossed threshold — so the node's
	// in-flight round completed fine and the handler should charge
	// re-coordination cost, not failure-detection latency.
	Proactive bool
}

// Reassignment is a handler's decision for one affected domain.
//
// MergeInto >= 0 merges the domain's remaining work into that live
// domain (the memory-conscious leaf-takeover path): the absorber keeps
// its own aggregator and buffer. MergeInto < 0 re-places the domain
// standalone with the given aggregator, host, buffer and severity (the
// relocation fallback, or the baseline's stall-on-the-same-host, which
// re-places without moving). A zero BufferBytes keeps the domain's
// current buffer. StallSeconds is recovery dead time (detection or
// reboot); the cost loop charges the maximum across one event's
// reassignments once.
type Reassignment struct {
	Domain        int
	MergeInto     int
	Aggregator    int
	AggNode       int
	BufferBytes   int64
	PagedSeverity float64
	StallSeconds  float64
}

// FaultHandler is a strategy's mid-operation recovery policy: given a
// host fault and the indices of the live domains with remaining work on
// the failed host, decide where that work goes. live is the current
// domain set (placements reflect earlier recoveries); handlers must not
// mutate it — they return Reassignments and the cost loop applies them
// in order.
type FaultHandler interface {
	Name() string
	OnHostFault(ctx *Context, f HostFault, live []Domain, affected []int) ([]Reassignment, error)
}

// FaultResult extends CostResult with the resilience accounting of a
// faulted run.
type FaultResult struct {
	CostResult
	// Injected counts the fault events that fired, by kind name.
	Injected map[string]int
	// Failovers counts domain reassignments that moved work (merge or
	// relocation); Stalls counts same-host stall-and-retry recoveries.
	Failovers int
	Stalls    int
	// ReplayedRounds counts in-flight rounds re-run because their
	// aggregator was lost mid-round.
	ReplayedRounds int
	// StorageRetries counts OST requests re-issued inside transient
	// error windows; DroppedMessages/DelayedMessages count message
	// faults consumed.
	StorageRetries  int
	DroppedMessages int
	DelayedMessages int
	// CorruptedMessages counts MsgBitFlip events consumed: the chunk is
	// detected by end-to-end verification and re-requested, so its bytes
	// move twice plus a detection round-trip. TornWrites counts TornWrite
	// events consumed: the read-back verify re-issues the torn access.
	CorruptedMessages int
	TornWrites        int
	// Gray-failure accounting. FlakyDrops counts NICFlaky drops (a
	// subset of DroppedMessages); LeakedNodes counts nodes whose memory
	// budget a MemLeak decayed.
	FlakyDrops  int
	LeakedNodes int
	// Hedging accounting (CostAdaptive only). A hedged message's bytes
	// move twice — original and re-request — and the checksum path
	// discards the loser, so DedupedBytes never reach user accounting.
	HedgedMessages int
	HedgedBytes    int64
	DedupedBytes   int64
	// Adaptive-failover accounting (CostAdaptive only).
	ProactiveFailovers int
	SuspectEvents      int
	BreakerOpens       int
	BreakerFastFails   int
	// RecoverySeconds is simulated time spent on failure handling
	// (stalls + recovery rounds), a subset of Seconds.
	RecoverySeconds float64
	RecoveryRounds  int
}

// applyReassignment applies one handler decision to the live domain
// set. Merged victims are emptied (Bytes 0, Extents nil) rather than
// removed so domain indices stay stable across a faulted run.
func applyReassignment(live []Domain, ra Reassignment) error {
	if ra.Domain < 0 || ra.Domain >= len(live) {
		return fmt.Errorf("collio: reassignment of invalid domain %d", ra.Domain)
	}
	if ra.MergeInto >= 0 {
		if ra.MergeInto >= len(live) || ra.MergeInto == ra.Domain {
			return fmt.Errorf("collio: domain %d merged into invalid domain %d", ra.Domain, ra.MergeInto)
		}
		v, a := &live[ra.Domain], &live[ra.MergeInto]
		if v.Bytes > 0 {
			a.Extents = pfs.NormalizeExtents(
				append(append([]pfs.Extent(nil), a.Extents...), v.Extents...))
			a.Bytes += v.Bytes
		}
		v.Extents, v.Bytes = nil, 0
		return nil
	}
	d := &live[ra.Domain]
	d.Aggregator = ra.Aggregator
	d.AggNode = ra.AggNode
	if ra.BufferBytes > 0 {
		d.BufferBytes = ra.BufferBytes
	}
	d.PagedSeverity = ra.PagedSeverity
	return nil
}

// ApplyReassignments rewrites a domain set after host faults, the same
// bookkeeping CostWithFaults performs: merges fold the victim's extents
// into the absorber and empty the victim (indices stay stable);
// standalone entries rewrite placement. Use Plan.Compact afterwards to
// drop the emptied victims before Validate or Exec.
func ApplyReassignments(live []Domain, ras []Reassignment) error {
	for _, ra := range ras {
		if err := applyReassignment(live, ra); err != nil {
			return err
		}
	}
	return nil
}

// Compact returns a copy of the plan without emptied (fully merged)
// domains — the executable plan after fault recovery.
func (p *Plan) Compact() *Plan {
	q := &Plan{Strategy: p.Strategy, Groups: p.Groups, GroupRanks: p.GroupRanks}
	for _, d := range p.Domains {
		if d.Bytes > 0 {
			q.Domains = append(q.Domains, d)
		}
	}
	return q
}

// CostWithFaults prices plan like Cost, but with a fault injector
// advancing in simulated time and a FaultHandler deciding where the
// work of crashed or collapsed hosts goes. With a nil or empty injector
// it delegates to Cost, so the result is byte-identical to the
// fault-free path. The same plan, injector schedule and handler always
// produce the same result — faulted runs are as reproducible as clean
// ones.
func CostWithFaults(ctx *Context, plan *Plan, reqs []RankRequest, op Op, opt sim.Options,
	inj *faults.Injector, handler FaultHandler) (*FaultResult, error) {
	return costFaulted(ctx, plan, reqs, op, opt, inj, handler, nil)
}

// costFaulted is the shared engine behind CostWithFaults (ad == nil:
// the static retry-only policy) and CostAdaptive (ad != nil: health
// observation, circuit breakers, hedging and proactive failover).
// Fault *pricing* — including the gray kinds — is identical either
// way; only the response policy differs.
func costFaulted(ctx *Context, plan *Plan, reqs []RankRequest, op Op, opt sim.Options,
	inj *faults.Injector, handler FaultHandler, ad *Adaptive) (*FaultResult, error) {
	if inj.Empty() {
		res, err := Cost(ctx, plan, reqs, op, opt)
		if err != nil {
			return nil, err
		}
		return &FaultResult{CostResult: *res, Injected: map[string]int{}}, nil
	}
	if handler == nil {
		return nil, fmt.Errorf("collio: fault injection without a FaultHandler")
	}
	if err := ctx.Validate(); err != nil {
		return nil, err
	}
	st := sim.StorageParams{
		Targets:         ctx.FS.Targets,
		TargetBW:        ctx.FS.TargetBW,
		ReqOverhead:     ctx.FS.ReqOverhead,
		NoncontigFactor: ctx.FS.NoncontigFactor,
		ReadBWFactor:    ctx.FS.ReadBWFactor,
	}
	eng, err := sim.NewEngine(ctx.Machine, st, opt)
	if err != nil {
		return nil, err
	}
	co := newCostObs(ctx, plan, op)
	if co != nil {
		eng.SetObserver(ctx.Obs, co.pid,
			obs.L("strategy", plan.Strategy), obs.L("op", op.String()))
	}
	inj.SetObserver(ctx.Obs)

	placements := make([]sim.AggregatorPlacement, len(plan.Domains))
	for i, d := range plan.Domains {
		placements[i] = sim.AggregatorPlacement{
			Node:          d.AggNode,
			BufferBytes:   d.BufferBytes,
			PagedSeverity: d.PagedSeverity,
		}
	}
	eng.SetAggregators(placements)
	tlAttach(ctx, eng, plan, op)
	tlBufferGauges(ctx, plan.Domains, 0)
	tlr := ctx.Timeline

	// Metadata exchange, identical to Cost.
	extCount := make(map[int]int, len(reqs))
	for _, r := range reqs {
		extCount[r.Rank] = len(pfs.NormalizeExtents(r.Extents))
	}
	aggsByGroup := make(map[int][]int)
	for _, d := range plan.Domains {
		aggsByGroup[d.Group] = append(aggsByGroup[d.Group], d.Aggregator)
	}
	meta := sim.Round{Kind: sim.RoundMetadata}
	for g, ranks := range plan.GroupRanks {
		aggs := dedupInts(aggsByGroup[g])
		for _, r := range ranks {
			bytes := int64(extCount[r]) * extentListEntryBytes
			if bytes == 0 {
				continue
			}
			for _, a := range aggs {
				meta.Messages = append(meta.Messages, sim.Message{
					SrcNode: ctx.Topo.NodeOf(r),
					DstNode: ctx.Topo.NodeOf(a),
					Bytes:   bytes,
				})
				co.transfer(r, a, bytes)
			}
		}
	}
	if len(meta.Messages) > 0 {
		eng.RunRound(meta)
	}

	// Live domain set (placements mutate on recovery) and work items.
	live := append([]Domain(nil), plan.Domains...)
	items := make([]*FaultItem, 0, len(live))
	domainContribs := buildFaultContribs(ctx, live, reqs)
	totalRounds := 0
	for i, d := range live {
		rounds := d.Rounds()
		totalRounds += rounds
		if rounds == 0 {
			continue
		}
		items = append(items, &FaultItem{
			Domain:   i,
			Base:     d.Extents,
			Bytes:    d.Bytes,
			Buf:      d.BufferBytes,
			Rounds:   rounds,
			Rot:      i,
			Contribs: domainContribs[i],
		})
	}

	res := &FaultResult{}
	spec := inj.Spec()
	nodes := ctx.Topo.Nodes()
	if ad != nil {
		ad.init(spec)
		ad.Detector.SetObserver(ctx.Obs)
		ad.Breakers.SetObserver(ctx.Obs)
	}
	// leakFrac tracks the largest MemLeak fraction already applied per
	// node; leakSev the paging severity that decay produced (kept apart
	// from nodeSeverity so adaptive observation can attribute it).
	leakFrac := make([]float64, nodes)
	leakSev := make([]float64, nodes)
	// nodeSeverity tracks the worst paging severity declared per node so
	// recoveries never accidentally lower another domain's penalty.
	nodeSeverity := map[int]float64{}
	for _, d := range live {
		if d.PagedSeverity > nodeSeverity[d.AggNode] {
			nodeSeverity[d.AggNode] = d.PagedSeverity
		}
	}

	// handleHostEvent applies one host-level event through the handler
	// and returns how many reassignments it decided (a handler may
	// lawfully decline a proactive move — e.g. no live host to take the
	// work — in which case nothing changes and nothing is charged).
	handleHostEvent := func(ev faults.Event, proactive bool) (int, error) {
		evKind := timeline.EvFailover
		if proactive {
			evKind = timeline.EvProactive
		}
		// Which items (and through them, live domains) lose their host?
		var affectedItems []int
		domainSet := map[int]bool{}
		for ii, it := range items {
			if it.Active() && live[it.Domain].AggNode == ev.Node {
				affectedItems = append(affectedItems, ii)
				domainSet[it.Domain] = true
			}
		}
		affected := make([]int, 0, len(domainSet))
		for d := range domainSet {
			affected = append(affected, d)
		}
		sort.Ints(affected)

		// The round in flight when the host died is lost: replay it. A
		// proactive move happens between rounds on a live host — nothing
		// was lost, nothing replays.
		if !proactive {
			for _, ii := range affectedItems {
				if items[ii].Done > 0 {
					items[ii].Done--
					res.ReplayedRounds++
				}
			}
		}

		ras, err := handler.OnHostFault(ctx, HostFault{
			Node: ev.Node, Kind: ev.Kind, Time: ev.Time, Severity: ev.Severity,
			Proactive: proactive,
		}, live, affected)
		if err != nil {
			return 0, err
		}

		var stall float64
		var rec sim.Round
		// refold retires every item bound to domain src and re-creates
		// its remaining work bound to domain dst, shipping the
		// contributors' remaining extent lists to dst's aggregator as
		// recovery-round metadata (each list approximated by the item's
		// extent count, as in the initial exchange).
		refold := func(src, dst int, reExchange bool) {
			// Snapshot the length: folding appends successors, and when
			// src == dst (an in-place re-placement) a successor would
			// match the filter and fold itself forever.
			n := len(items)
			for ii := 0; ii < n; ii++ {
				it := items[ii]
				if it.Domain != src || !it.Active() {
					continue
				}
				nit := it.Fold(dst, live)
				it.Done = it.Rounds // retire
				if nit == nil {
					continue
				}
				items = append(items, nit)
				if !reExchange {
					continue
				}
				bytes := nit.RecoveryMetaBytes()
				for _, c := range nit.Contribs {
					rec.Messages = append(rec.Messages, sim.Message{
						SrcNode: c.Node,
						DstNode: live[dst].AggNode,
						Bytes:   bytes,
					})
					co.transfer(c.Rank, live[dst].Aggregator, bytes)
				}
			}
		}
		for _, ra := range ras {
			if ra.StallSeconds > stall {
				stall = ra.StallSeconds
			}
			if ra.MergeInto >= 0 {
				refold(ra.Domain, ra.MergeInto, true)
				if err := applyReassignment(live, ra); err != nil {
					return 0, err
				}
				res.Failovers++
				if tlr != nil {
					tlr.J().Record(ev.Time, evKind, timeline.Ent("node", ev.Node),
						fmt.Sprintf("domain %d merged into %d (node %d)",
							ra.Domain, ra.MergeInto, live[ra.MergeInto].AggNode))
				}
				continue
			}
			moved := live[ra.Domain].AggNode != ra.AggNode
			bufChanged := ra.BufferBytes > 0 && live[ra.Domain].BufferBytes != ra.BufferBytes
			if err := applyReassignment(live, ra); err != nil {
				return 0, err
			}
			if s := ra.PagedSeverity; s > nodeSeverity[ra.AggNode] {
				nodeSeverity[ra.AggNode] = s
			}
			eng.SetNodePaged(ra.AggNode, nodeSeverity[ra.AggNode])
			if moved || bufChanged {
				refold(ra.Domain, ra.Domain, moved)
				res.Failovers++
				if tlr != nil {
					tlr.J().Record(ev.Time, evKind, timeline.Ent("node", ev.Node),
						fmt.Sprintf("domain %d re-placed on node %d", ra.Domain, ra.AggNode))
				}
			} else {
				res.Stalls++
			}
		}
		if len(ras) > 0 {
			tlBufferGauges(ctx, live, ev.Time)
		}
		if stall > 0 {
			eng.AddRecoveryLatency(stall, ev.Kind.String())
		}
		if len(rec.Messages) > 0 {
			eng.RunRecoveryRound(rec)
		}
		return len(ras), nil
	}

	// Main loop: one data round per iteration, fault events applied at
	// round boundaries. The guard bounds pathological refold cascades;
	// a correct handler converges far below it.
	guard := 16*(totalRounds+1) + 1024
	executed := 0
	for {
		now := eng.Elapsed()
		for _, ev := range inj.Advance(now) {
			if tlr != nil {
				// The event's own schedule time, not the round boundary
				// that discovered it: detection lag is measured from here.
				tlr.J().Record(ev.Time, timeline.EvFault, ev.EntityLabel(), ev.Describe())
			}
			if ev.Kind != faults.NodeCrash && ev.Kind != faults.MemCollapse {
				continue
			}
			if _, err := handleHostEvent(ev, false); err != nil {
				return nil, err
			}
		}
		for n := 0; n < nodes; n++ {
			eng.SetNodeSlowdown(n, inj.NodeSlowdown(n, now))
		}

		// Gray-fault pricing, identical for static and adaptive runs: a
		// slowed-down OST stretches honest streaming (the excess lands in
		// delay blame), a leaking node pages harder every round.
		for t := 0; t < ctx.FS.Targets; t++ {
			eng.SetTargetSlowdown(t, inj.OSTSlowdownFactor(t, now))
		}
		for n := 0; n < nodes; n++ {
			frac := inj.MemLeakFraction(n, now)
			if frac <= leakFrac[n] {
				continue
			}
			if leakFrac[n] == 0 {
				res.LeakedNodes++
			}
			leakFrac[n] = frac
			if tlr != nil {
				tlr.AddGauge(timeline.Ent("node", n), "leak_frac", now, frac)
			}
			var sev float64
			if mh, ok := handler.(MemDecayHandler); ok {
				sev = mh.OnMemDecay(n, frac)
			} else {
				sev = LeakSeverity(live, ctx.Avail[n], n, frac)
			}
			if sev > leakSev[n] {
				leakSev[n] = sev
			}
			if leakSev[n] > nodeSeverity[n] {
				nodeSeverity[n] = leakSev[n]
			}
			eng.SetNodePaged(n, nodeSeverity[n])
		}

		// Adaptive policy: feed the suspicion detector the per-entity
		// service signals this round boundary exposes, open breakers on
		// newly suspected targets, and proactively move work off
		// suspected hosts before a hard fault makes the decision for us.
		if ad != nil && ad.Detector != nil {
			unit := spec.DropTimeoutSeconds
			if unit <= 0 {
				unit = 0.01
			}
			for t := 0; t < ctx.FS.Targets; t++ {
				wasSus := ad.Detector.Suspected("ost", t)
				if ad.Detector.Observe("ost", t, inj.OSTSlowdownFactor(t, now)) {
					// Every round a target stays suspected is one suspicion
					// event against its breaker — the Nth opens it.
					before := ad.Breakers.State(t)
					ad.Breakers.OnFailure(t, now)
					tlBreakerEvent(tlr, before, ad.Breakers.State(t), t, now)
				}
				tlSuspicion(tlr, ad.Detector, "ost", t, wasSus, now)
			}
			for n := 0; n < nodes; n++ {
				sig := inj.NodeSlowdown(n, now) +
					(inj.MsgDelaySeconds(n, now)+inj.NICDelaySeconds(n, now))/unit +
					4*leakSev[n]
				wasSus := ad.Detector.Suspected("node", n)
				ad.Detector.Observe("node", n, sig)
				tlSuspicion(tlr, ad.Detector, "node", n, wasSus, now)
			}
			if ad.Proactive {
				for _, n := range ad.Detector.SuspectedIDs("node") {
					if ad.handled[n] {
						continue
					}
					hasWork := false
					for _, it := range items {
						if it.Active() && live[it.Domain].AggNode == n {
							hasWork = true
							break
						}
					}
					if !hasWork {
						continue
					}
					ad.handled[n] = true
					ev := faults.Event{Kind: faults.Straggler, Time: now, Node: n, Severity: 1}
					moved, err := handleHostEvent(ev, true)
					if err != nil {
						return nil, err
					}
					// A declined move (handler found no live host to take
					// the work) counts as nothing: the node keeps its
					// domains and its suspicion stays on record.
					if moved > 0 {
						res.ProactiveFailovers++
					}
				}
			}
		}

		anyActive := false
		for _, it := range items {
			if it.Active() {
				anyActive = true
				break
			}
		}
		if !anyActive {
			break
		}

		var round sim.Round
		var extraLat float64
		for _, it := range items {
			if !it.Active() {
				continue
			}
			d := live[it.Domain]
			s := it.Done
			for _, c := range it.Contribs {
				per := EvenShare(c.Bytes, s, it.Rounds)
				if per == 0 {
					continue
				}
				m := sim.Message{SrcNode: c.Node, DstNode: d.AggNode, Bytes: per}
				srcRank, dstRank := c.Rank, d.Aggregator
				if op == Read {
					m.SrcNode, m.DstNode = m.DstNode, m.SrcNode
					srcRank, dstRank = dstRank, srcRank
				}
				co.transfer(srcRank, dstRank, per)
				if co != nil {
					co.shuf[it.Domain].Add(per)
				}
				if delay := inj.MsgDelaySeconds(m.SrcNode, now) + inj.NICDelaySeconds(m.SrcNode, now); delay > 0 {
					charged := delay
					if ad != nil {
						if dl, armed := ad.hedgeDeadline(); armed && dl < delay {
							// Hedge the straggler: at the quantile deadline a
							// duplicate re-request goes out and the first
							// arrival wins. The duplicate's bytes move on the
							// wire but the checksum path discards the loser,
							// so they never reach user accounting.
							charged = dl
							round.Messages = append(round.Messages, m)
							res.HedgedMessages++
							res.HedgedBytes += m.Bytes
							res.DedupedBytes += m.Bytes
							if tlr != nil {
								tlr.J().Record(now, timeline.EvHedge, timeline.Ent("node", m.SrcNode),
									fmt.Sprintf("%d bytes re-requested", m.Bytes))
							}
						}
					}
					extraLat += charged
					res.DelayedMessages++
				}
				if ad != nil {
					ad.window.Add(inj.MsgDelaySeconds(m.SrcNode, now) + inj.NICDelaySeconds(m.SrcNode, now))
				}
				if inj.TakeDrop(m.SrcNode) {
					// Lost and resent after the drop timeout: the bytes
					// move twice and the round absorbs the timeout.
					round.Messages = append(round.Messages, m)
					extraLat += spec.DropTimeoutSeconds
					res.DroppedMessages++
				}
				if inj.TakeNICDrop(m.SrcNode, now) {
					// A flaky-NIC burst drop, priced like any other drop.
					round.Messages = append(round.Messages, m)
					extraLat += spec.DropTimeoutSeconds
					res.DroppedMessages++
					res.FlakyDrops++
				}
				if inj.TakeMsgFlip(m.SrcNode) {
					// Silently corrupted: end-to-end verification detects
					// the flip and re-requests the chunk, so the bytes move
					// twice and the round absorbs the detect+resend
					// round-trip (priced like a drop timeout).
					round.Messages = append(round.Messages, m)
					extraLat += spec.DropTimeoutSeconds
					res.CorruptedMessages++
					if tlr != nil {
						tlr.J().Record(now, timeline.EvRepair, timeline.Ent("node", m.SrcNode),
							fmt.Sprintf("corrupted message re-requested (%d bytes)", m.Bytes))
					}
				}
				round.Messages = append(round.Messages, m)
			}
			idx := (s + it.Rot) % it.Rounds
			slice := pfs.SliceData(it.Base, int64(idx)*it.Buf, it.Buf)
			for _, acc := range ctx.FS.MapExtents(slice) {
				fastFail := false
				if ad != nil {
					// Allow may move the breaker Open -> HalfOpen at the
					// probe deadline; the state diff journals it.
					before := ad.Breakers.State(acc.Target)
					fastFail = !ad.Breakers.Allow(acc.Target, now)
					tlBreakerEvent(tlr, before, ad.Breakers.State(acc.Target), acc.Target, now)
				}
				if fastFail {
					// Open breaker: fail fast into degraded service. The
					// access skips the retry ladder entirely and pays only
					// the degraded streaming factor — the whole point of
					// the breaker is not paying the full backoff walk per
					// access against a target known to be sick.
					bw := ctx.FS.TargetBW
					if op == Read && ctx.FS.ReadBWFactor > 0 {
						bw *= ctx.FS.ReadBWFactor
					}
					df := spec.DegradedFactor
					if df < 1 {
						df = 1
					}
					torn := 0
					if op == Write && inj.TakeTornWrite(acc.Target) {
						torn = 1
						res.TornWrites++
						if tlr != nil {
							tlr.J().Record(now, timeline.EvRepair, timeline.Ent("ost", acc.Target),
								"torn write re-issued")
						}
					}
					round.IOOps = append(round.IOOps, sim.IOOp{
						Target:       acc.Target,
						Node:         d.AggNode,
						Bytes:        acc.Bytes,
						Requests:     acc.Requests + torn,
						Contiguous:   acc.Contiguous,
						Write:        op == Write,
						DelaySeconds: float64(acc.Bytes) / bw * (df - 1),
						Degraded:     true,
					})
					continue
				}
				retries, backoff, degraded := inj.OSTPenalty(acc.Target, now)
				delay := backoff
				if degraded {
					bw := ctx.FS.TargetBW
					if op == Read && ctx.FS.ReadBWFactor > 0 {
						bw *= ctx.FS.ReadBWFactor
					}
					delay += float64(acc.Bytes) / bw * (spec.DegradedFactor - 1)
				}
				res.StorageRetries += retries
				if ad != nil {
					before := ad.Breakers.State(acc.Target)
					if retries > 0 {
						ad.Breakers.OnFailure(acc.Target, now)
					} else if !inj.OSTWindowActive(acc.Target, now) &&
						!(ad.Detector != nil && ad.Detector.Suspected("ost", acc.Target)) {
						// A clean access only votes "healthy" when the
						// detector agrees — a suspected-slow target must not
						// have its breaker failure count washed out by
						// accesses that merely completed (slowly).
						ad.Breakers.OnSuccess(acc.Target, now)
					}
					tlBreakerEvent(tlr, before, ad.Breakers.State(acc.Target), acc.Target, now)
				}
				torn := 0
				if op == Write && inj.TakeTornWrite(acc.Target) {
					// A torn object write is caught by the read-back verify
					// and re-issued: one extra request on the target.
					torn = 1
					res.TornWrites++
					if tlr != nil {
						tlr.J().Record(now, timeline.EvRepair, timeline.Ent("ost", acc.Target),
							"torn write re-issued")
					}
				}
				round.IOOps = append(round.IOOps, sim.IOOp{
					Target:       acc.Target,
					Node:         d.AggNode,
					Bytes:        acc.Bytes,
					Requests:     acc.Requests + retries + torn,
					Contiguous:   acc.Contiguous,
					Write:        op == Write,
					DelaySeconds: delay,
				})
			}
			it.Done++
		}
		if extraLat > 0 {
			eng.AddLatency(extraLat)
		}
		eng.RunRound(round)
		executed++
		if executed > guard {
			return nil, fmt.Errorf("collio: fault recovery did not converge after %d rounds", executed)
		}
	}

	userBytes := plan.TotalBytes()
	if co != nil {
		span := ctx.Obs.Tracer().Begin(co.pid, sim.TIDTimeline,
			plan.Strategy+" "+op.String()+" (faults)", 0,
			obs.A("groups", strconv.Itoa(plan.Groups)),
			obs.A("domains", strconv.Itoa(len(plan.Domains))),
			obs.A("rounds", strconv.Itoa(executed)),
			obs.A("user_bytes", strconv.FormatInt(userBytes, 10)))
		span.End(eng.Elapsed())
	}
	totals := eng.Totals()
	res.CostResult = CostResult{
		Strategy:  plan.Strategy,
		Op:        op,
		UserBytes: userBytes,
		Seconds:   eng.Elapsed(),
		Bandwidth: eng.Bandwidth(userBytes),
		Totals:    totals,
		Domains:   len(plan.Domains),
		Groups:    plan.Groups,
		MaxRounds: executed,
	}
	res.Aggregators = len(plan.Aggregators())
	buffers := make([]float64, 0, len(plan.Domains))
	for _, d := range plan.Domains {
		buffers = append(buffers, float64(d.BufferBytes))
		if d.PagedSeverity > 0 {
			res.PagedAggregators++
		}
	}
	res.BufferSummary = stats.Summarize(buffers)
	if opt.Trace {
		res.Trace = eng.Trace()
	}
	res.Injected = inj.Counts()
	res.RecoverySeconds = totals.RecoverySeconds
	res.RecoveryRounds = totals.RecoveryRounds
	if ad != nil {
		res.SuspectEvents = ad.Detector.Transitions()
		res.BreakerOpens = ad.Breakers.Opens()
		res.BreakerFastFails = ad.Breakers.FastFails()
	}
	if o := ctx.Obs; o != nil {
		base := []obs.Label{obs.L("strategy", plan.Strategy), obs.L("op", op.String())}
		o.Counter("faults.failovers", base...).Add(int64(res.Failovers))
		o.Counter("faults.stalls", base...).Add(int64(res.Stalls))
		o.Counter("faults.replayed_rounds", base...).Add(int64(res.ReplayedRounds))
		o.Counter("faults.storage_retries", base...).Add(int64(res.StorageRetries))
		o.Counter("faults.dropped_messages", base...).Add(int64(res.DroppedMessages))
		o.Counter("faults.delayed_messages", base...).Add(int64(res.DelayedMessages))
		o.Counter("faults.corrupted_messages", base...).Add(int64(res.CorruptedMessages))
		o.Counter("faults.torn_writes", base...).Add(int64(res.TornWrites))
		o.Counter("faults.flaky_drops", base...).Add(int64(res.FlakyDrops))
		o.Counter("faults.leaked_nodes", base...).Add(int64(res.LeakedNodes))
		if ad != nil {
			o.Counter("faults.hedged_messages", base...).Add(int64(res.HedgedMessages))
			o.Counter("faults.hedged_bytes", base...).Add(res.HedgedBytes)
			o.Counter("faults.deduped_bytes", base...).Add(res.DedupedBytes)
			o.Counter("faults.proactive_failovers", base...).Add(int64(res.ProactiveFailovers))
		}
	}
	return res, nil
}

// leakSeverity is the inline MemLeak fallback for handlers without
// memory accounting: the live domains' buffer reservations on node
// against the decayed budget give the paged fraction.
func LeakSeverity(live []Domain, avail int64, node int, frac float64) float64 {
	var reserved int64
	for _, d := range live {
		if d.AggNode == node && d.Bytes > 0 {
			reserved += d.BufferBytes
		}
	}
	if reserved <= 0 {
		return 0
	}
	budget := int64(float64(avail) * (1 - frac))
	over := reserved - budget
	if over <= 0 {
		return 0
	}
	s := float64(over) / float64(reserved)
	if s > 1 {
		s = 1
	}
	return s
}
