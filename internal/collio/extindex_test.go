package collio

import (
	"reflect"
	"testing"
	"testing/quick"

	mrand "math/rand"

	"mcio/internal/pfs"
	"mcio/internal/stats"
)

func TestExtentIndexBasic(t *testing.T) {
	idx := NewExtentIndex([][]pfs.Extent{
		{{Offset: 0, Length: 10}, {Offset: 20, Length: 10}},
		{{Offset: 40, Length: 20}},
	})
	got := idx.OverlapBytes([]pfs.Extent{{Offset: 5, Length: 40}})
	// Bucket 0: bytes 5..10 and 20..30 = 15; bucket 1: 40..45 = 5.
	if !reflect.DeepEqual(got, []int64{15, 5}) {
		t.Fatalf("overlaps = %v", got)
	}
}

func TestExtentIndexNoOverlap(t *testing.T) {
	idx := NewExtentIndex([][]pfs.Extent{{{Offset: 100, Length: 10}}})
	got := idx.OverlapBytes([]pfs.Extent{{Offset: 0, Length: 50}})
	if got[0] != 0 {
		t.Fatalf("overlaps = %v", got)
	}
}

func TestExtentIndexEmptyBuckets(t *testing.T) {
	idx := NewExtentIndex(nil)
	if got := idx.OverlapBytes([]pfs.Extent{{Offset: 0, Length: 5}}); len(got) != 0 {
		t.Fatalf("overlaps = %v", got)
	}
}

func TestExtentIndexPanics(t *testing.T) {
	for name, buckets := range map[string][][]pfs.Extent{
		"overlapping buckets": {
			{{Offset: 0, Length: 10}},
			{{Offset: 5, Length: 10}},
		},
		"out of order": {
			{{Offset: 100, Length: 10}},
			{{Offset: 0, Length: 10}},
		},
		"empty extent": {
			{{Offset: 0, Length: 0}},
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			NewExtentIndex(buckets)
		}()
	}
}

// Property: OverlapBytes agrees with the naive per-bucket Intersect.
func TestExtentIndexMatchesNaive(t *testing.T) {
	r := stats.NewRNG(79)
	err := quick.Check(func(seed uint64) bool {
		rr := stats.NewRNG(seed)
		// Build disjoint ascending buckets by slicing a region.
		var buckets [][]pfs.Extent
		cur := rr.Int63n(50)
		n := rr.Intn(6) + 1
		for i := 0; i < n; i++ {
			var exts []pfs.Extent
			m := rr.Intn(3) + 1
			for j := 0; j < m; j++ {
				cur += rr.Int63n(20) // gap
				length := rr.Int63n(30) + 1
				exts = append(exts, pfs.Extent{Offset: cur, Length: length})
				cur += length
			}
			buckets = append(buckets, exts)
		}
		var query []pfs.Extent
		for i := 0; i < rr.Intn(8)+1; i++ {
			query = append(query, pfs.Extent{Offset: rr.Int63n(int64(cur)), Length: rr.Int63n(60)})
		}
		idx := NewExtentIndex(buckets)
		got := idx.OverlapBytes(query)
		for b := range buckets {
			want := pfs.TotalBytes(pfs.Intersect(query, buckets[b]))
			if got[b] != want {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200, Rand: mrand.New(mrand.NewSource(int64(r.Uint64())))})
	if err != nil {
		t.Fatal(err)
	}
}
