package collio

import (
	"fmt"

	"mcio/internal/integrity"
	"mcio/internal/pfs"
	"mcio/internal/sim"
)

// ExecIndependent really performs the requests as independent
// (non-collective) I/O — the degradation ladder's last rung, used when no
// aggregation plan can be placed. Each rank issues its own normalized
// extents straight against the file, serially in ascending rank order so
// overlapping writes resolve exactly as Exec's aggregators would (higher
// ranks overwrite lower ones). chk, when enabled, read-verifies each
// rank's write-back just like the collective path, so torn writes are
// detected (and repaired) even with no aggregator in the loop; there is
// no shuffle, so there are no messages to checksum.
func ExecIndependent(ctx *Context, data []RankData, file *pfs.File, op Op, chk *integrity.Checker) error {
	if err := ctx.Validate(); err != nil {
		return err
	}
	if len(data) != ctx.Topo.Size() {
		return fmt.Errorf("collio: ExecIndependent got %d rank buffers for %d ranks", len(data), ctx.Topo.Size())
	}
	for r, d := range data {
		if d.Req.Rank != r {
			return fmt.Errorf("collio: rank buffer %d labeled rank %d", r, d.Req.Rank)
		}
		if want := d.Req.Bytes(); int64(len(d.Buf)) != want {
			return fmt.Errorf("collio: rank %d buffer is %d bytes, request needs %d", r, len(d.Buf), want)
		}
	}
	for r := range data {
		norm := pfs.NormalizeExtents(data[r].Req.Extents)
		if len(norm) == 0 {
			continue
		}
		var pos int64
		for _, e := range norm {
			if op == Write {
				if _, err := file.WriteAt(data[r].Buf[pos:pos+e.Length], e.Offset); err != nil {
					return fmt.Errorf("collio: independent write rank %d: %w", r, err)
				}
			} else {
				if _, err := file.ReadAt(data[r].Buf[pos:pos+e.Length], e.Offset); err != nil {
					return fmt.Errorf("collio: independent read rank %d: %w", r, err)
				}
			}
			pos += e.Length
		}
		if op == Write && chk.Enabled() {
			verifyWriteBack(file, norm, data[r].Buf, chk)
		}
	}
	return nil
}

// CostIndependent prices the same requests issued as independent
// (non-collective) I/O: every rank sends its own flattened extents
// straight to the storage targets, with no aggregation, no shuffle, and
// no request merging beyond what a single rank's own extents provide.
// This is the §2 motivation baseline: many small noncontiguous requests
// hitting the file system directly.
//
// Each rank's accesses are priced in one logical round — independent I/O
// has no collective buffer to cycle — so the bottleneck is the most
// loaded storage target plus each node's own traffic.
func CostIndependent(ctx *Context, reqs []RankRequest, op Op, opt sim.Options) (*CostResult, error) {
	if err := ctx.Validate(); err != nil {
		return nil, err
	}
	st := sim.StorageParams{
		Targets:         ctx.FS.Targets,
		TargetBW:        ctx.FS.TargetBW,
		ReqOverhead:     ctx.FS.ReqOverhead,
		NoncontigFactor: ctx.FS.NoncontigFactor,
		ReadBWFactor:    ctx.FS.ReadBWFactor,
	}
	eng, err := sim.NewEngine(ctx.Machine, st, opt)
	if err != nil {
		return nil, err
	}
	var round sim.Round
	var userBytes int64
	for _, r := range reqs {
		norm := pfs.NormalizeExtents(r.Extents)
		if len(norm) == 0 {
			continue
		}
		userBytes += pfs.TotalBytes(norm)
		node := ctx.Topo.NodeOf(r.Rank)
		for _, acc := range ctx.FS.MapExtents(norm) {
			round.IOOps = append(round.IOOps, sim.IOOp{
				Target:     acc.Target,
				Node:       node,
				Bytes:      acc.Bytes,
				Requests:   acc.Requests,
				Contiguous: acc.Contiguous,
				Write:      op == Write,
			})
		}
	}
	eng.RunRound(round)
	return &CostResult{
		Strategy:  "independent",
		Op:        op,
		UserBytes: userBytes,
		Seconds:   eng.Elapsed(),
		Bandwidth: eng.Bandwidth(userBytes),
		Totals:    eng.Totals(),
		MaxRounds: 1,
	}, nil
}
