package collio

import (
	"mcio/internal/pfs"
	"mcio/internal/sim"
)

// CostIndependent prices the same requests issued as independent
// (non-collective) I/O: every rank sends its own flattened extents
// straight to the storage targets, with no aggregation, no shuffle, and
// no request merging beyond what a single rank's own extents provide.
// This is the §2 motivation baseline: many small noncontiguous requests
// hitting the file system directly.
//
// Each rank's accesses are priced in one logical round — independent I/O
// has no collective buffer to cycle — so the bottleneck is the most
// loaded storage target plus each node's own traffic.
func CostIndependent(ctx *Context, reqs []RankRequest, op Op, opt sim.Options) (*CostResult, error) {
	if err := ctx.Validate(); err != nil {
		return nil, err
	}
	st := sim.StorageParams{
		Targets:         ctx.FS.Targets,
		TargetBW:        ctx.FS.TargetBW,
		ReqOverhead:     ctx.FS.ReqOverhead,
		NoncontigFactor: ctx.FS.NoncontigFactor,
		ReadBWFactor:    ctx.FS.ReadBWFactor,
	}
	eng, err := sim.NewEngine(ctx.Machine, st, opt)
	if err != nil {
		return nil, err
	}
	var round sim.Round
	var userBytes int64
	for _, r := range reqs {
		norm := pfs.NormalizeExtents(r.Extents)
		if len(norm) == 0 {
			continue
		}
		userBytes += pfs.TotalBytes(norm)
		node := ctx.Topo.NodeOf(r.Rank)
		for _, acc := range ctx.FS.MapExtents(norm) {
			round.IOOps = append(round.IOOps, sim.IOOp{
				Target:     acc.Target,
				Node:       node,
				Bytes:      acc.Bytes,
				Requests:   acc.Requests,
				Contiguous: acc.Contiguous,
				Write:      op == Write,
			})
		}
	}
	eng.RunRound(round)
	return &CostResult{
		Strategy:  "independent",
		Op:        op,
		UserBytes: userBytes,
		Seconds:   eng.Elapsed(),
		Bandwidth: eng.Bandwidth(userBytes),
		Totals:    eng.Totals(),
		MaxRounds: 1,
	}, nil
}
