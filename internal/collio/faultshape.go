package collio

import (
	"sort"

	"mcio/internal/pfs"
	"mcio/internal/sim"
)

// FaultContrib is one rank's contribution to a fault-loop work item:
// the per-rank granularity the faulted cost loop needs to replay, fold
// and re-exchange work when hosts fail. It is the per-rank form of
// NodeContrib.
type FaultContrib struct {
	Rank  int
	Node  int
	Bytes int64
}

// FaultItem is a unit of remaining shuffle+I/O work in the faulted cost
// loop. One item starts per plan domain; a recovery folds an item's
// remaining work into a fresh item bound to the absorbing (or
// re-placed) domain. Items reference live domains by index for
// placement, so later reassignments of the same domain move them too.
// Both pricing engines share the type: the byte path walks Contribs
// per rank each round, the fast path prices per-node aggregates (Aggs)
// and falls back to the per-rank walk only where fault state demands
// it.
type FaultItem struct {
	Domain   int // index into the live domain set; placement is read per round
	Base     []pfs.Extent
	Bytes    int64
	Buf      int64
	Rounds   int
	Done     int
	Rot      int // slice stagger rotation (domain index at creation)
	Contribs []FaultContrib

	aggs []NodeContrib // per-node aggregates, built on first Aggs call
}

// Active reports whether the item still has rounds to run.
func (it *FaultItem) Active() bool { return it.Bytes > 0 && it.Done < it.Rounds }

// Aggs returns the item's per-node contribution aggregates, building
// them from Contribs on first use. Each NodeContrib reconstructs the
// node's exact per-round share of the byte path's front-loaded even
// split (RoundShare), so aggregate pricing is bit-identical to walking
// the ranks.
func (it *FaultItem) Aggs() []NodeContrib {
	if it.aggs == nil {
		it.aggs = BuildAggs(it.Contribs, it.Rounds)
	}
	return it.aggs
}

// EvenShare is the front-loaded even split Cost uses: step s of rounds
// moves b/rounds bytes, plus one while s < b mod rounds. NodeContrib.
// RoundShare is its exact per-node aggregate.
func EvenShare(b int64, s, rounds int) int64 {
	per := b / int64(rounds)
	if int64(s) < b%int64(rounds) {
		per++
	}
	return per
}

// remaining returns the item's unmoved extents and per-contributor
// bytes after the steps it has completed (slices are staggered, so the
// remainder is the union of the uncompleted slices).
func (it *FaultItem) remaining() ([]pfs.Extent, []FaultContrib) {
	if it.Done == 0 {
		return it.Base, it.Contribs
	}
	var rem []pfs.Extent
	for j := it.Done; j < it.Rounds; j++ {
		idx := (j + it.Rot) % it.Rounds
		rem = append(rem, pfs.SliceData(it.Base, int64(idx)*it.Buf, it.Buf)...)
	}
	var cs []FaultContrib
	for _, c := range it.Contribs {
		moved := int64(it.Done)*(c.Bytes/int64(it.Rounds)) + minI64(int64(it.Done), c.Bytes%int64(it.Rounds))
		if left := c.Bytes - moved; left > 0 {
			cs = append(cs, FaultContrib{Rank: c.Rank, Node: c.Node, Bytes: left})
		}
	}
	return pfs.NormalizeExtents(rem), cs
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// Fold builds the successor item carrying it's remaining work on the
// (possibly re-placed) domain target. Returns nil when nothing remains.
func (it *FaultItem) Fold(target int, live []Domain) *FaultItem {
	rem, cs := it.remaining()
	bytes := pfs.TotalBytes(rem)
	if bytes == 0 {
		return nil
	}
	buf := live[target].BufferBytes
	if buf < 1 {
		buf = 1
	}
	return &FaultItem{
		Domain:   target,
		Base:     rem,
		Bytes:    bytes,
		Buf:      buf,
		Rounds:   int((bytes + buf - 1) / buf),
		Rot:      target,
		Contribs: cs,
	}
}

// RecoveryMetaBytes is the extent-list payload each surviving
// contributor re-ships to the absorbing aggregator after a fold: one
// wire record per remaining extent, floored at one record so an empty
// hand-off still costs a message. Both engines price recovery rounds
// from it.
func (it *FaultItem) RecoveryMetaBytes() int64 {
	bytes := int64(len(it.Base)) * extentListEntryBytes
	if bytes == 0 {
		bytes = extentListEntryBytes
	}
	return bytes
}

// BuildAggs folds per-rank contributions into per-node aggregates,
// ascending by node — the same construction BuildShape performs for
// fault-free domains, applied to a fault item's (possibly refolded)
// contributor list.
func BuildAggs(contribs []FaultContrib, rounds int) []NodeContrib {
	if rounds < 1 {
		rounds = 1
	}
	byNode := map[int]*NodeContrib{}
	for _, c := range contribs {
		nc := byNode[c.Node]
		if nc == nil {
			nc = &NodeContrib{Node: c.Node}
			byNode[c.Node] = nc
		}
		nc.Count++
		nc.Bytes += c.Bytes
		fl, rem := c.Bytes/int64(rounds), c.Bytes%int64(rounds)
		nc.floorSum += fl
		if fl > 0 {
			nc.posFloor++
		}
		if rem > 0 {
			nc.rems = append(nc.rems, rem)
			if fl == 0 {
				nc.remsZero = append(nc.remsZero, rem)
			}
		}
	}
	out := make([]NodeContrib, 0, len(byNode))
	for _, nc := range byNode {
		sortInt64s(nc.rems)
		sortInt64s(nc.remsZero)
		out = append(out, *nc)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Node < out[b].Node })
	return out
}

// FaultShape is the fault-loop round structure of a planned collective
// operation: the metadata scatter in closed form plus one work item per
// non-empty domain, carrying both the per-rank contributor lists the
// recovery machinery folds and the per-node aggregates the fast path
// prices. It is BuildShape's counterpart for faulted runs.
type FaultShape struct {
	// MetaExchanges is the metadata scatter, as in Shape.
	MetaExchanges []sim.Exchange
	// MetaMessages is the point-to-point message count the exchanges
	// stand for.
	MetaMessages int
	// Items holds one work item per domain with at least one round,
	// in domain order — the initial state of the faulted cost loop.
	Items []*FaultItem
	// TotalRounds sums the initial items' round counts; the loop's
	// divergence guard keys on it.
	TotalRounds int
}

// BuildFaultedShape derives the faulted round structure of plan for the
// given requests: the same metadata exchanges BuildShape produces, plus
// per-rank work items (the byte-path fault loop's state) with per-node
// aggregates attached. Building it walks each rank's request list once.
func BuildFaultedShape(ctx *Context, plan *Plan, reqs []RankRequest) (*FaultShape, error) {
	if err := ctx.Validate(); err != nil {
		return nil, err
	}
	fs := &FaultShape{}
	fs.MetaExchanges, fs.MetaMessages = buildMetaExchanges(ctx, plan, reqs)
	contribs := buildFaultContribs(ctx, plan.Domains, reqs)
	for i, d := range plan.Domains {
		rounds := d.Rounds()
		fs.TotalRounds += rounds
		if rounds == 0 {
			continue
		}
		fs.Items = append(fs.Items, &FaultItem{
			Domain:   i,
			Base:     d.Extents,
			Bytes:    d.Bytes,
			Buf:      d.BufferBytes,
			Rounds:   rounds,
			Rot:      i,
			Contribs: contribs[i],
		})
	}
	return fs, nil
}

// buildFaultContribs computes each domain's per-rank contributor list,
// in request order (the order the faulted round loop walks). The sparse
// overlap walk visits only (rank, domain) pairs that actually overlap,
// so the build is near-linear in total extents rather than ranks ×
// domains.
func buildFaultContribs(ctx *Context, domains []Domain, reqs []RankRequest) [][]FaultContrib {
	out := make([][]FaultContrib, len(domains))
	if len(domains) == 0 {
		return out
	}
	buckets := make([][]pfs.Extent, len(domains))
	for i, d := range domains {
		buckets[i] = d.Extents
	}
	index := NewExtentIndex(buckets)
	var overlaps []BucketBytes
	for _, r := range reqs {
		if len(r.Extents) == 0 {
			continue
		}
		node := ctx.Topo.NodeOf(r.Rank)
		overlaps = index.OverlapAppend(overlaps[:0], r.Extents)
		for _, bb := range overlaps {
			out[bb.Bucket] = append(out[bb.Bucket],
				FaultContrib{Rank: r.Rank, Node: node, Bytes: bb.Bytes})
		}
	}
	return out
}
