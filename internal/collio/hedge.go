package collio

import (
	"sync/atomic"

	"mcio/internal/faults"
	"mcio/internal/integrity"
	"mcio/internal/pfs"
)

// Hedger injects hedged duplicate deliveries into ExecVerified's
// verified shuffle: for a seeded, deterministic subset of
// (domain, contributor) chunks the verifier requests one duplicate
// resend through the existing ack/repair protocol even though the
// original already verified — the real-byte analogue of the cost
// model's quantile hedging, where the duplicate loses the race. The
// checksum path then enforces the invariant the chaos battery checks:
// a hedged duplicate is verified, counted and discarded, never
// scattered into user buffers, so hedged bytes are never
// double-counted.
//
// Hedging rides the ack/resend machinery, so it is active only when
// the checker has repair enabled. Counters are atomics: verifier
// goroutines for different domains hedge concurrently.
type Hedger struct {
	// Seed pins the hedged subset across runs; Every hedges roughly one
	// in Every verified remote chunks (0 disables hedging).
	Seed  int64
	Every int

	hedged  atomic.Int64
	deduped atomic.Int64
}

// Hedge reports whether the chunk of domain i from contributor rank is
// hedged. A pure function of (Seed, i, rank): verifiers decide
// unilaterally — the producer's ack loop serves any resend request —
// and the selection is identical across runs and goroutine schedules.
func (h *Hedger) Hedge(i, rank int) bool {
	if h == nil || h.Every <= 0 {
		return false
	}
	x := uint64(h.Seed)*0x9E3779B97F4A7C15 ^
		uint64(i+1)*0xBF58476D1CE4E5B9 ^
		uint64(rank+1)*0x94D049BB133111EB
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x%uint64(h.Every) == 0
}

// CountHedged records one hedged duplicate request.
func (h *Hedger) CountHedged() {
	if h != nil {
		h.hedged.Add(1)
	}
}

// CountDeduped records n duplicate bytes verified and discarded.
func (h *Hedger) CountDeduped(n int64) {
	if h != nil {
		h.deduped.Add(n)
	}
}

// Hedged returns how many duplicate deliveries were requested.
func (h *Hedger) Hedged() int64 {
	if h == nil {
		return 0
	}
	return h.hedged.Load()
}

// DedupedBytes returns how many duplicate bytes arrived verified and
// were discarded without reaching user buffers.
func (h *Hedger) DedupedBytes() int64 {
	if h == nil {
		return 0
	}
	return h.deduped.Load()
}

// ExecVerifiedHedged is ExecVerified with a Hedger active on the
// verified shuffle. A nil (or disabled) hedger makes it exactly
// ExecVerified; hedging additionally requires chk with repair enabled,
// since duplicates flow over the repair protocol.
func ExecVerifiedHedged(ctx *Context, plan *Plan, data []RankData, file *pfs.File, op Op,
	chk *integrity.Checker, corr *faults.Corrupter, h *Hedger) error {
	return execVerified(ctx, plan, data, file, op, chk, corr, h)
}
