package collio_test

import (
	"bytes"
	"reflect"
	"testing"

	"mcio/internal/collio"
	"mcio/internal/core"
	"mcio/internal/faults"
	"mcio/internal/health"
	"mcio/internal/integrity"
	"mcio/internal/pfs"
	"mcio/internal/sim"
)

// testAdaptive builds an adaptive policy with a short detector warmup
// so small test workloads cross it.
func testAdaptive() *collio.Adaptive {
	ad := collio.NewAdaptive()
	ad.Detector = health.NewDetector(health.Config{Warmup: 2})
	ad.HedgeMinSamples = 8
	return ad
}

// With no faults scheduled, CostAdaptive must be byte-identical to
// Cost — the whole policy is inert.
func TestCostAdaptiveInertWithoutFaults(t *testing.T) {
	ctx := faultCtx(t)
	reqs := faultReqs(12, 1<<18)
	s := core.New()
	plan, state, err := s.PlanWithState(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	want, err := collio.Cost(ctx, plan, reqs, collio.Write, sim.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	zeroed := faults.DefaultSpec(1, 100).WithRate(0)
	fplan, err := zeroed.Generate(4, ctx.FS.Targets)
	if err != nil {
		t.Fatal(err)
	}
	got, err := collio.CostAdaptive(ctx, plan, reqs, collio.Write, sim.DefaultOptions(),
		faults.NewInjector(fplan), &core.Failover{State: state, Detect: 0.01}, testAdaptive())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.CostResult, *want) {
		t.Fatalf("zero-fault CostAdaptive differs from Cost:\n got %+v\nwant %+v", got.CostResult, *want)
	}
	if got.ProactiveFailovers != 0 || got.HedgedMessages != 0 || got.BreakerOpens != 0 {
		t.Fatalf("zero-fault adaptive run reported policy work: %+v", got)
	}
}

// grayDuelSchedule pins the acceptance scenario: a degrading OST and a
// straggling aggregator host, both starting after the detector has a
// healthy baseline.
func grayDuelSchedule(spec faults.Spec, victim int, onset, horizon float64) *faults.Plan {
	return &faults.Plan{Spec: spec, Events: []faults.Event{
		{Kind: faults.Straggler, Time: onset, Node: victim, Target: -1,
			Duration: horizon, Severity: 8},
		{Kind: faults.OSTSlowdown, Time: onset, Node: -1, Target: 0,
			Duration: horizon, Severity: 5, Profile: faults.ProfileStep},
	}}
}

// The acceptance duel: under a seeded gray schedule the health-driven
// plan must complete in strictly less simulated time than the static
// retry-only baseline, because it proactively moves work off the
// straggling host instead of paying the slowdown to the end.
func TestAdaptiveBeatsStaticUnderGraySchedule(t *testing.T) {
	ctx := faultCtx(t)
	reqs := faultReqs(12, 1<<18)
	s := core.New()

	ref, err := collio.Cost(ctx, mustPlan(t, s, ctx, reqs), reqs, collio.Write, sim.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	horizon := ref.Seconds * 6
	spec := faults.DefaultSpec(11, horizon).WithRate(0)
	spec.Horizon = horizon

	run := func(adaptive bool) *collio.FaultResult {
		plan, state, err := s.PlanWithState(ctx, reqs)
		if err != nil {
			t.Fatal(err)
		}
		victim := plan.Domains[0].AggNode
		inj := faults.NewInjector(grayDuelSchedule(spec, victim, ref.Seconds/3, horizon))
		handler := &core.Failover{State: state, Detect: spec.DetectSeconds}
		if !adaptive {
			res, err := collio.CostWithFaults(ctx, plan, reqs, collio.Write, sim.DefaultOptions(), inj, handler)
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		res, err := collio.CostAdaptive(ctx, plan, reqs, collio.Write, sim.DefaultOptions(), inj, handler, testAdaptive())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	static := run(false)
	adaptive := run(true)

	if adaptive.UserBytes != static.UserBytes {
		t.Fatalf("user bytes diverged: %d vs %d", adaptive.UserBytes, static.UserBytes)
	}
	if adaptive.SuspectEvents == 0 {
		t.Fatal("gray schedule raised no suspicion")
	}
	if adaptive.ProactiveFailovers == 0 {
		t.Fatal("suspected straggler triggered no proactive failover")
	}
	if adaptive.Seconds >= static.Seconds {
		t.Fatalf("adaptive (%.4fs) not strictly faster than static (%.4fs)",
			adaptive.Seconds, static.Seconds)
	}
}

// Same schedule, same policy, twice: adaptive runs must be fully
// deterministic.
func TestCostAdaptiveDeterministic(t *testing.T) {
	ctx := faultCtx(t)
	reqs := faultReqs(12, 1<<18)
	run := func() *collio.FaultResult {
		s := core.New()
		plan, state, err := s.PlanWithState(ctx, reqs)
		if err != nil {
			t.Fatal(err)
		}
		spec := faults.DefaultSpec(99, 2.0).WithGray(2)
		fplan, err := spec.WithRate(4).Generate(ctx.Topo.Nodes(), ctx.FS.Targets)
		if err != nil {
			t.Fatal(err)
		}
		res, err := collio.CostAdaptive(ctx, plan, reqs, collio.Write, sim.DefaultOptions(),
			faults.NewInjector(fplan), &core.Failover{State: state, Detect: spec.DetectSeconds}, testAdaptive())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("adaptive runs with identical seeds diverged:\n a %+v\n b %+v", a, b)
	}
}

// Sustained message delay on one host gets hedged: duplicates are
// requested, their bytes counted and deduped, and the hedged run beats
// the static one because stragglers are charged the hedge deadline,
// not the full delay.
func TestCostAdaptiveHedgesStragglingMessages(t *testing.T) {
	ctx := faultCtx(t)
	reqs := faultReqs(12, 1<<18)
	s := core.New()

	ref, err := collio.Cost(ctx, mustPlan(t, s, ctx, reqs), reqs, collio.Write, sim.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	horizon := ref.Seconds * 8
	spec := faults.DefaultSpec(5, horizon).WithRate(0)
	spec.Horizon = horizon
	delayed := ctx.Topo.NodeOf(reqs[1].Rank)
	sched := &faults.Plan{Spec: spec, Events: []faults.Event{
		{Kind: faults.MsgDelay, Time: ref.Seconds / 4, Node: delayed, Target: -1,
			Duration: horizon, Severity: spec.DropTimeoutSeconds * 4},
	}}

	run := func(ad *collio.Adaptive) *collio.FaultResult {
		plan, state, err := s.PlanWithState(ctx, reqs)
		if err != nil {
			t.Fatal(err)
		}
		inj := faults.NewInjector(sched)
		handler := &core.Failover{State: state, Detect: spec.DetectSeconds}
		var res *collio.FaultResult
		if ad == nil {
			res, err = collio.CostWithFaults(ctx, plan, reqs, collio.Write, sim.DefaultOptions(), inj, handler)
		} else {
			ad.Proactive = false // isolate hedging from failover
			res, err = collio.CostAdaptive(ctx, plan, reqs, collio.Write, sim.DefaultOptions(), inj, handler, ad)
		}
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	static := run(nil)
	adaptive := run(testAdaptive())

	if adaptive.HedgedMessages == 0 {
		t.Fatal("sustained stragglers were never hedged")
	}
	if adaptive.HedgedBytes == 0 || adaptive.DedupedBytes != adaptive.HedgedBytes {
		t.Fatalf("hedge accounting: hedged=%d deduped=%d, want equal and nonzero",
			adaptive.HedgedBytes, adaptive.DedupedBytes)
	}
	if adaptive.UserBytes != static.UserBytes {
		t.Fatalf("hedging changed user bytes: %d vs %d", adaptive.UserBytes, static.UserBytes)
	}
	if adaptive.Seconds >= static.Seconds {
		t.Fatalf("hedged run (%.4fs) not faster than static (%.4fs)", adaptive.Seconds, static.Seconds)
	}
}

func mustPlan(t *testing.T, s collio.Strategy, ctx *collio.Context, reqs []collio.RankRequest) *collio.Plan {
	t.Helper()
	plan, err := s.Plan(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

// The real-byte hedge invariant: hedged duplicates are verified and
// discarded, so the file is byte-identical to the oracle and no
// duplicate byte is double-counted into user buffers.
func TestExecVerifiedHedgedDedups(t *testing.T) {
	ctx, plan, reqs, data, oracle := verifySetup(t, 6, 2)
	fsys, err := pfs.NewFileSystem(ctx.FS)
	if err != nil {
		t.Fatal(err)
	}
	file := fsys.Open("hedged")
	chk := integrity.NewChecker(integrity.Config{Seed: 9, Repair: true})
	hed := &collio.Hedger{Seed: 42, Every: 2}

	if err := collio.ExecVerifiedHedged(ctx, plan, data, file, collio.Write, chk, nil, hed); err != nil {
		t.Fatal(err)
	}
	if hed.Hedged() == 0 {
		t.Fatal("Every=2 hedger hedged nothing")
	}
	if hed.DedupedBytes() == 0 {
		t.Fatal("clean duplicates were not counted as deduped")
	}
	got := make([]byte, len(oracle))
	if _, err := file.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, oracle) {
		t.Fatal("hedged write differs from fault-free oracle")
	}

	// Read path hedges too, and the buffers still round-trip exactly.
	readData := make([]collio.RankData, len(data))
	for i := range readData {
		readData[i] = collio.RankData{Req: reqs[i], Buf: make([]byte, len(data[i].Buf))}
	}
	if err := collio.ExecVerifiedHedged(ctx, plan, readData, file, collio.Read, chk, nil, hed); err != nil {
		t.Fatal(err)
	}
	for i := range readData {
		if !bytes.Equal(readData[i].Buf, data[i].Buf) {
			t.Fatalf("rank %d read back different bytes under hedging", i)
		}
	}
	if rep := chk.Report(); rep.Detected != 0 || rep.Unrepaired != 0 {
		t.Fatalf("clean hedged run reported corruption: %+v", rep)
	}

	// A nil hedger must leave ExecVerifiedHedged exactly ExecVerified.
	file2 := fsys.Open("unhedged")
	data2 := make([]collio.RankData, len(data))
	for i := range data2 {
		buf := make([]byte, len(data[i].Buf))
		copy(buf, data[i].Buf)
		data2[i] = collio.RankData{Req: reqs[i], Buf: buf}
	}
	if err := collio.ExecVerifiedHedged(ctx, plan, data2, file2, collio.Write, chk, nil, nil); err != nil {
		t.Fatal(err)
	}
	got2 := make([]byte, len(oracle))
	if _, err := file2.ReadAt(got2, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got2, oracle) {
		t.Fatal("nil-hedger write differs from oracle")
	}
}
