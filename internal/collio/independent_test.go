package collio

import (
	"testing"

	"mcio/internal/pfs"
)

func TestCostIndependentBasics(t *testing.T) {
	ctx := testContext(t)
	reqs := []RankRequest{
		{Rank: 0, Extents: []pfs.Extent{{Offset: 0, Length: 1 << 20}}},
		{Rank: 3, Extents: []pfs.Extent{{Offset: 1 << 20, Length: 1 << 20}}},
		{Rank: 5}, // sits out
	}
	res, err := CostIndependent(ctx, reqs, Write, simOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Strategy != "independent" {
		t.Fatalf("strategy = %q", res.Strategy)
	}
	if res.UserBytes != 2<<20 {
		t.Fatalf("user bytes = %d", res.UserBytes)
	}
	if res.Bandwidth <= 0 || res.Seconds <= 0 {
		t.Fatalf("degenerate result: %+v", res)
	}
	if res.MaxRounds != 1 {
		t.Fatalf("independent I/O has no rounds, got %d", res.MaxRounds)
	}
	if res.Totals.ShufBytes != 0 {
		t.Fatal("independent I/O must not shuffle")
	}
}

func TestCostIndependentPenalizesFragmentation(t *testing.T) {
	ctx := testContext(t)
	// Same volume, contiguous vs finely strided per rank.
	contiguous := []RankRequest{
		{Rank: 0, Extents: []pfs.Extent{{Offset: 0, Length: 4 << 20}}},
	}
	var strided []RankRequest
	var exts []pfs.Extent
	const piece = 4 << 10
	for i := 0; i < (4<<20)/piece; i++ {
		exts = append(exts, pfs.Extent{Offset: int64(i) * 2 * piece, Length: piece})
	}
	strided = []RankRequest{{Rank: 0, Extents: exts}}

	a, err := CostIndependent(ctx, contiguous, Write, simOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := CostIndependent(ctx, strided, Write, simOptions())
	if err != nil {
		t.Fatal(err)
	}
	if b.Bandwidth >= a.Bandwidth {
		t.Fatalf("fragmented independent I/O not slower: %v vs %v", b.Bandwidth, a.Bandwidth)
	}
	if b.Totals.Requests <= a.Totals.Requests {
		t.Fatal("fragmentation must issue more requests")
	}
}

func TestCostIndependentEmpty(t *testing.T) {
	ctx := testContext(t)
	res, err := CostIndependent(ctx, nil, Read, simOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.UserBytes != 0 || res.Bandwidth != 0 {
		t.Fatalf("empty request result: %+v", res)
	}
}

func TestCostIndependentValidatesContext(t *testing.T) {
	ctx := testContext(t)
	ctx.Avail = nil
	if _, err := CostIndependent(ctx, nil, Read, simOptions()); err == nil {
		t.Fatal("invalid context accepted")
	}
}

func TestExecErrorPaths(t *testing.T) {
	ctx := testContext(t)
	reqs := []RankRequest{
		{Rank: 0, Extents: []pfs.Extent{{Offset: 0, Length: 64}}},
		{Rank: 1}, {Rank: 2}, {Rank: 3}, {Rank: 4}, {Rank: 5},
	}
	plan := &Plan{
		Strategy:   "test",
		Groups:     1,
		GroupRanks: [][]int{{0}},
		Domains: []Domain{{
			Extents: []pfs.Extent{{Offset: 0, Length: 64}}, Bytes: 64,
			Aggregator: 0, AggNode: 0, BufferBytes: 64,
		}},
	}
	fsys, err := pfs.NewFileSystem(ctx.FS)
	if err != nil {
		t.Fatal(err)
	}
	file := fsys.Open("errs")

	// Wrong number of rank buffers.
	if err := Exec(ctx, plan, make([]RankData, 2), file, Write); err == nil {
		t.Fatal("short data accepted")
	}
	// Mislabeled rank.
	data := make([]RankData, 6)
	for r := range data {
		data[r].Req.Rank = r
	}
	data[0].Req = reqs[0]
	data[0].Buf = make([]byte, 64)
	data[3].Req.Rank = 4
	if err := Exec(ctx, plan, data, file, Write); err == nil {
		t.Fatal("mislabeled rank accepted")
	}
	data[3].Req.Rank = 3
	// Wrong buffer size.
	data[0].Buf = make([]byte, 10)
	if err := Exec(ctx, plan, data, file, Write); err == nil {
		t.Fatal("wrong buffer size accepted")
	}
	data[0].Buf = make([]byte, 64)
	if err := Exec(ctx, plan, data, file, Write); err != nil {
		t.Fatal(err)
	}
}

func TestExecOverlappingWritesLastRankWins(t *testing.T) {
	// Two ranks write the same extent: the documented outcome is that a
	// higher rank's bytes survive (aggregator assembles in rank order).
	ctx := testContext(t)
	ext := []pfs.Extent{{Offset: 0, Length: 32}}
	reqs := []RankRequest{
		{Rank: 0, Extents: ext},
		{Rank: 1, Extents: ext},
		{Rank: 2}, {Rank: 3}, {Rank: 4}, {Rank: 5},
	}
	plan := &Plan{
		Strategy:   "test",
		Groups:     1,
		GroupRanks: [][]int{{0, 1}},
		Domains: []Domain{{
			Extents: ext, Bytes: 32, Aggregator: 2, AggNode: 1, BufferBytes: 32,
		}},
	}
	fsys, err := pfs.NewFileSystem(ctx.FS)
	if err != nil {
		t.Fatal(err)
	}
	file := fsys.Open("overlap")
	data := make([]RankData, 6)
	for r := range data {
		data[r].Req.Rank = r
	}
	data[0] = RankData{Req: reqs[0], Buf: bytesOf(0xAA, 32)}
	data[1] = RankData{Req: reqs[1], Buf: bytesOf(0xBB, 32)}
	if err := Exec(ctx, plan, data, file, Write); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 32)
	file.ReadAt(got, 0)
	for i, b := range got {
		if b != 0xBB {
			t.Fatalf("byte %d = %#x, want rank 1's 0xBB", i, b)
		}
	}
}

func bytesOf(v byte, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = v
	}
	return out
}
