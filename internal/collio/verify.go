package collio

import (
	"bytes"
	"fmt"

	"mcio/internal/faults"
	"mcio/internal/integrity"
	"mcio/internal/mpi"
	"mcio/internal/pfs"
)

// The verified shuffle adds three message classes on top of Exec's data
// chunks, all addressed with tag arithmetic over nd = len(plan.Domains):
//
//	data     tag i        the chunk itself (same as Exec)
//	sums     tag nd+i     the producer's stamped checksums for the chunk
//	ack      tag 2nd+i    verifier -> producer: ackOK or ackResend
//	re-data  tag 3nd+i    a re-requested chunk (repair path)
//	re-sums  tag 4nd+i    its fresh checksums
//
// Acks only flow when repair is enabled, and each producer serves one
// verifier's ack loop to completion before moving on; since every rank
// processes domains in ascending index, the protocol is deadlock-free by
// induction on the domain order (the aggregator of domain i reaches it
// after all parties finished every domain < i, and each per-chunk ack
// loop is bounded by the repair budget).
const (
	ackResend = 0
	ackOK     = 1
)

// ExecVerified is Exec with the end-to-end integrity layer threaded
// through the data path: producers stamp seeded checksums on every chunk
// they ship, verifiers re-check them after the shuffle, and aggregators
// read their file domains back after write-back and compare against the
// staged bytes, object access by object access. When chk has repair
// enabled, a chunk that fails verification is re-requested from its
// producer and a torn object access is rewritten, each up to the
// checker's repair budget.
//
// corr, when non-nil, replays the plan's silent-corruption events on the
// real bytes: one bit flip per scheduled MsgBitFlip on a data chunk
// leaving the flipped rank, one torn object write per scheduled
// TornWrite on the affected target (installed on the file system by the
// caller via pfs.SetCorrupter).
//
// A nil chk and nil corr make ExecVerified exactly Exec — the fault-free
// hot path pays nothing.
func ExecVerified(ctx *Context, plan *Plan, data []RankData, file *pfs.File, op Op,
	chk *integrity.Checker, corr *faults.Corrupter) error {
	return execVerified(ctx, plan, data, file, op, chk, corr, nil)
}

func execVerified(ctx *Context, plan *Plan, data []RankData, file *pfs.File, op Op,
	chk *integrity.Checker, corr *faults.Corrupter, hed *Hedger) error {
	if chk == nil && corr == nil {
		return Exec(ctx, plan, data, file, op)
	}
	if err := ctx.Validate(); err != nil {
		return err
	}
	if len(data) != ctx.Topo.Size() {
		return fmt.Errorf("collio: ExecVerified got %d rank buffers for %d ranks", len(data), ctx.Topo.Size())
	}
	for r, d := range data {
		if d.Req.Rank != r {
			return fmt.Errorf("collio: rank buffer %d labeled rank %d", r, d.Req.Rank)
		}
		if want := d.Req.Bytes(); int64(len(d.Buf)) != want {
			return fmt.Errorf("collio: rank %d buffer is %d bytes, request needs %d", r, len(d.Buf), want)
		}
	}

	normReq, scheds := buildScheds(plan, data)
	nd := len(plan.Domains)

	world := mpi.NewWorld(ctx.Topo)
	world.SetObserver(ctx.Obs)
	return world.Run(func(p *mpi.Proc) {
		me := p.Rank()
		for i, d := range plan.Domains {
			sched := &scheds[i]
			myIdx := -1
			for j, r := range sched.contributors {
				if r == me {
					myIdx = j
					break
				}
			}
			if op == Write {
				if myIdx >= 0 && me != d.Aggregator {
					sendVerified(p, d.Aggregator, nd, i, chk, corr,
						func() []byte { return gather(normReq[me], data[me].Buf, sched.overlap[myIdx]) },
						sched.overlap[myIdx])
				}
				if me != d.Aggregator {
					continue
				}
				domBuf := getStage(d.Bytes)
				clear(domBuf)
				for j, r := range sched.contributors {
					ov := sched.overlap[j]
					var chunk []byte
					if r == me {
						// Local copy: no wire hop, nothing to corrupt or verify.
						chunk = gather(normReq[me], data[me].Buf, ov)
					} else {
						chunk = recvVerified(p, r, nd, i, chk, ov, hed)
					}
					scatter(d.Extents, domBuf, ov, chunk)
					putStage(chunk)
				}
				var pos int64
				for _, e := range d.Extents {
					if _, err := file.WriteAt(domBuf[pos:pos+e.Length], e.Offset); err != nil {
						panic(err)
					}
					pos += e.Length
				}
				if chk.Enabled() {
					verifyWriteBack(file, d.Extents, domBuf, chk)
				}
				putStage(domBuf)
				continue
			}
			// Read: the aggregator loads the domain and distributes; each
			// consumer verifies its slice and may re-request it.
			if me == d.Aggregator {
				domBuf := getStage(d.Bytes)
				var pos int64
				for _, e := range d.Extents {
					if _, err := file.ReadAt(domBuf[pos:pos+e.Length], e.Offset); err != nil {
						panic(err)
					}
					pos += e.Length
				}
				for j, r := range sched.contributors {
					ov := sched.overlap[j]
					if r == me {
						chunk := gather(d.Extents, domBuf, ov)
						scatter(normReq[me], data[me].Buf, ov, chunk)
						putStage(chunk)
						continue
					}
					sendVerified(p, r, nd, i, chk, corr,
						func() []byte { return gather(d.Extents, domBuf, ov) }, ov)
				}
				putStage(domBuf)
			}
			if myIdx >= 0 && me != d.Aggregator {
				ov := sched.overlap[myIdx]
				chunk := recvVerified(p, d.Aggregator, nd, i, chk, ov, hed)
				scatter(normReq[me], data[me].Buf, ov, chunk)
				putStage(chunk)
			}
		}
	})
}

// sendVerified ships one chunk (regenerated by mk for each attempt) to
// dst, stamping sums and serving dst's ack loop when repair is on. The
// corrupter sees every outgoing data chunk — including resends, which may
// be freshly corrupted — but never the sums side-channel, so one consumed
// flip event corrupts exactly one verifiable message.
func sendVerified(p *mpi.Proc, dst, nd, i int, chk *integrity.Checker, corr *faults.Corrupter,
	mk func() []byte, ov []pfs.Extent) {
	chunk := mk()
	sums := chk.Stamp(ov, chunk)
	corr.CorruptMsg(p.Rank(), chunk)
	p.Send(dst, i, chunk)
	if !chk.Enabled() {
		return
	}
	p.Send(dst, nd+i, integrity.EncodeSums(sums))
	if !chk.Repair() {
		return
	}
	for {
		ack := p.Recv(dst, 2*nd+i)
		if len(ack) > 0 && ack[0] == ackOK {
			return
		}
		re := mk()
		reSums := chk.Stamp(ov, re)
		corr.CorruptMsg(p.Rank(), re)
		p.Send(dst, 3*nd+i, re)
		p.Send(dst, 4*nd+i, integrity.EncodeSums(reSums))
	}
}

// recvVerified receives one chunk from src and verifies it against the
// producer's sums. With repair on it re-requests a failing chunk up to
// the checker's budget, counting each freshly corrupted resend as a new
// detection, then releases the producer with a final ackOK. The returned
// chunk is the best copy obtained (with repair off or an exhausted
// budget, a corrupted one — detected and counted, as a checksummed-but-
// unrepaired transport would leave it).
func recvVerified(p *mpi.Proc, src, nd, i int, chk *integrity.Checker, ov []pfs.Extent, hed *Hedger) []byte {
	chunk := p.Recv(src, i)
	if !chk.Enabled() {
		return chunk
	}
	sums, err := integrity.DecodeSums(p.Recv(src, nd+i))
	if err != nil {
		// The corrupter never touches sums messages; a malformed one is a
		// protocol bug, not an injected fault.
		panic(err)
	}
	verr := chk.Verify(ov, chunk, sums)
	if verr != nil {
		if chk.Repair() {
			healed := false
			for attempt := 0; attempt < chk.MaxRepairs(); attempt++ {
				p.Send(src, 2*nd+i, []byte{ackResend})
				putStage(chunk)
				chunk = p.Recv(src, 3*nd+i)
				reSums, rerr := integrity.DecodeSums(p.Recv(src, 4*nd+i))
				if rerr != nil {
					panic(rerr)
				}
				if chk.Recheck(ov, chunk, reSums) {
					healed = true
					break
				}
				// The producer regenerates from its pristine buffer, so a
				// failing resend means a fresh flip landed on it.
				chk.CountDetected()
			}
			if healed {
				chk.CountRepaired()
			} else {
				chk.CountUnrepaired()
			}
		} else {
			chk.CountUnrepaired()
		}
	}
	if verr == nil && chk.Repair() && hed.Hedge(i, src) {
		// Hedged duplicate delivery: the original already verified (it
		// "won the race"), but a duplicate was requested before it
		// arrived. Pull the duplicate through the resend path, verify
		// it, and discard it — the winner's bytes are the only copy
		// that ever reaches the user buffer.
		hed.CountHedged()
		p.Send(src, 2*nd+i, []byte{ackResend})
		dup := p.Recv(src, 3*nd+i)
		dupSums, derr := integrity.DecodeSums(p.Recv(src, 4*nd+i))
		if derr != nil {
			panic(derr)
		}
		if chk.Recheck(ov, dup, dupSums) {
			hed.CountDeduped(int64(len(dup)))
		} else {
			// A fresh flip landed on the duplicate in flight; it is
			// detected and discarded all the same.
			chk.CountDetected()
		}
		putStage(dup)
	}
	if chk.Repair() {
		p.Send(src, 2*nd+i, []byte{ackOK})
	}
	return chunk
}

// verifyWriteBack reads the just-written extents back and compares them
// against the staged domain buffer, one object access at a time (the
// same stripe-unit-aligned pieces pfs.WriteAt issues, so one torn access
// is exactly one detectable mismatch). With repair on, a mismatching
// piece is rewritten and re-read up to the checker's budget; a rewrite
// that is itself torn counts as a fresh detection.
func verifyWriteBack(file *pfs.File, exts []pfs.Extent, domBuf []byte, chk *integrity.Checker) {
	su := file.Layout().StripeUnit
	var pos int64
	for _, e := range exts {
		rb := getStage(e.Length)
		if _, err := file.ReadAt(rb, e.Offset); err != nil {
			panic(err)
		}
		var off int64
		for off < e.Length {
			n := su - (e.Offset+off)%su
			if n > e.Length-off {
				n = e.Length - off
			}
			want := domBuf[pos+off : pos+off+n]
			got := rb[off : off+n]
			if !bytes.Equal(got, want) {
				chk.CountDetected()
				if chk.Repair() {
					healed := false
					for attempt := 0; attempt < chk.MaxRepairs(); attempt++ {
						if _, err := file.WriteAt(want, e.Offset+off); err != nil {
							panic(err)
						}
						chk.CountRewritten(n)
						if _, err := file.ReadAt(got, e.Offset+off); err != nil {
							panic(err)
						}
						if bytes.Equal(got, want) {
							healed = true
							break
						}
						chk.CountDetected() // the rewrite itself was torn
					}
					if healed {
						chk.CountRepaired()
					} else {
						chk.CountUnrepaired()
					}
				} else {
					chk.CountUnrepaired()
				}
			}
			off += n
		}
		putStage(rb)
		pos += e.Length
	}
}
