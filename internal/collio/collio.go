// Package collio defines the shared machinery of collective I/O
// strategies: the planning contract every strategy implements, the cost
// executor that prices a plan on the simulated machine, and the data
// executor that really moves bytes between ranks and the striped file
// system to verify a plan's semantics.
//
// A collective operation is processed in two separable stages, mirroring
// how ROMIO structures two-phase I/O:
//
//  1. Plan — from every rank's flattened access list, decide aggregation
//     groups, file domains, aggregator placement and buffer sizes. This is
//     the algorithmic content of both the baseline and the paper's
//     memory-conscious strategy, and it is pure metadata: it works
//     unchanged whether the operation covers kilobytes or terabytes.
//  2. Execute — either really move the bytes (Exec, used by the library
//     API and the correctness tests) or price the movement on the machine
//     model (Cost, used by the benchmark harness at the paper's full data
//     sizes, where materializing the bytes would be pointless).
package collio

import (
	"fmt"
	"sort"
	"strconv"

	"mcio/internal/machine"
	"mcio/internal/mpi"
	"mcio/internal/obs"
	"mcio/internal/obs/timeline"
	"mcio/internal/pfs"
)

// Op is the direction of a collective operation.
type Op int

// Collective operation directions.
const (
	Read Op = iota
	Write
)

// String returns "read" or "write".
func (o Op) String() string {
	if o == Write {
		return "write"
	}
	return "read"
}

// RankRequest is one rank's declared access: the file-space extents its
// file view resolves to for this collective call.
type RankRequest struct {
	Rank    int
	Extents []pfs.Extent
}

// Bytes returns the total data bytes of the request.
func (r RankRequest) Bytes() int64 { return pfs.TotalBytes(pfs.NormalizeExtents(r.Extents)) }

// Params carries the tunables the paper names.
type Params struct {
	// CollBufSize is the per-aggregator collective buffer size — the
	// x-axis of every figure in the paper (ROMIO's cb_buffer_size). The
	// baseline uses it verbatim; the memory-conscious strategy treats it
	// as the desired buffer and adapts to host memory.
	CollBufSize int64
	// MsgInd is the per-aggregator message size that saturates one
	// aggregator's I/O path (the paper's Msg_ind); file domains are
	// bisected until a domain's data fits within it.
	MsgInd int64
	// MsgGroup is the target data volume of one aggregation group (the
	// paper's Msg_group).
	MsgGroup int64
	// Nah is the maximum number of aggregators one host accommodates
	// before losing performance (the paper's N_ah).
	Nah int
	// MemMin is the minimum available memory a node must have to host an
	// aggregator effectively (the paper's Mem_min).
	MemMin int64
}

// Validate reports an error for unusable parameters.
func (p Params) Validate() error {
	switch {
	case p.CollBufSize <= 0:
		return fmt.Errorf("collio: CollBufSize must be positive")
	case p.MsgInd <= 0:
		return fmt.Errorf("collio: MsgInd must be positive")
	case p.MsgGroup <= 0:
		return fmt.Errorf("collio: MsgGroup must be positive")
	case p.Nah <= 0:
		return fmt.Errorf("collio: Nah must be positive")
	case p.MemMin < 0:
		return fmt.Errorf("collio: MemMin must be non-negative")
	}
	return nil
}

// DefaultParams returns parameters sized for a given collective buffer:
// MsgInd = the buffer (one round fills one buffer), MsgGroup = 32 buffers,
// Nah = 4, MemMin = half the buffer.
func DefaultParams(collBuf int64) Params {
	return Params{
		CollBufSize: collBuf,
		MsgInd:      collBuf,
		MsgGroup:    32 * collBuf,
		Nah:         4,
		MemMin:      collBuf / 2,
	}
}

// Context is everything a strategy may consult while planning.
type Context struct {
	Topo    mpi.Topology
	Machine machine.Config
	// Avail is the available aggregation memory per node (bytes), indexed
	// by node ID — the quantity the paper's run-time aggregator selection
	// inspects.
	Avail  []int64
	FS     pfs.Config
	Params Params
	// Obs, when non-nil, receives metrics and spans from planning and
	// execution: planners publish placement decisions, Cost publishes the
	// per-round timeline and traffic counters, Exec wires the mpi runtime.
	// Nil disables observability at near-zero cost.
	Obs *obs.Observer
	// Timeline, when non-nil, receives time-resolved utilization series
	// and journal events from pricing: per-node and per-target busy
	// fractions from the engine, buffer-occupancy and memory-pressure
	// gauges, and fault/suspicion/breaker/failover events. Recording is
	// pure observation — costs are identical with or without it. Nil
	// (the default) disables profiling.
	Timeline *timeline.Recorder
}

// Validate reports an error when the context is internally inconsistent.
func (c *Context) Validate() error {
	if err := c.Params.Validate(); err != nil {
		return err
	}
	if err := c.FS.Validate(); err != nil {
		return err
	}
	if c.Topo.Size() == 0 {
		return fmt.Errorf("collio: empty topology")
	}
	if c.Topo.Nodes() > len(c.Avail) {
		return fmt.Errorf("collio: topology spans %d nodes but Avail has %d entries",
			c.Topo.Nodes(), len(c.Avail))
	}
	return nil
}

// Domain is one file domain: a set of file extents serviced by exactly one
// aggregator.
type Domain struct {
	// Extents is the data in this domain (normalized). The domain's span
	// may include holes no rank requested.
	Extents []pfs.Extent
	// Bytes is the total data bytes (sum of extent lengths).
	Bytes int64
	// Group is the aggregation group index this domain belongs to.
	Group int
	// Aggregator is the rank that services the domain.
	Aggregator int
	// AggNode is the node hosting the aggregator.
	AggNode int
	// BufferBytes is the collective buffer the aggregator cycles data
	// through; the operation needs ceil(Bytes/BufferBytes) rounds.
	BufferBytes int64
	// PagedSeverity is the fraction of the buffer that over-commits the
	// host's available memory, in [0,1].
	PagedSeverity float64
}

// Rounds returns how many collective buffer cycles the domain needs.
func (d Domain) Rounds() int {
	if d.Bytes == 0 {
		return 0
	}
	return int((d.Bytes + d.BufferBytes - 1) / d.BufferBytes)
}

// Plan is a strategy's decision for one collective operation.
type Plan struct {
	Strategy string
	// Domains, across all groups, ordered by file offset.
	Domains []Domain
	// Groups is the number of aggregation groups.
	Groups int
	// GroupRanks[g] lists the ranks whose data falls in group g —
	// metadata exchange is confined to these.
	GroupRanks [][]int
}

// Aggregators returns the distinct aggregator ranks of the plan, sorted.
func (p *Plan) Aggregators() []int {
	seen := map[int]bool{}
	for _, d := range p.Domains {
		seen[d.Aggregator] = true
	}
	out := make([]int, 0, len(seen))
	for r := range seen {
		out = append(out, r)
	}
	sort.Ints(out)
	return out
}

// TotalBytes returns the data bytes covered by the plan's domains.
func (p *Plan) TotalBytes() int64 {
	var n int64
	for _, d := range p.Domains {
		n += d.Bytes
	}
	return n
}

// Validate checks the structural invariants every plan must satisfy:
// domains are non-empty, disjoint, sorted, and they exactly cover the
// union of the requested extents.
func (p *Plan) Validate(reqs []RankRequest) error {
	var all []pfs.Extent
	for _, r := range reqs {
		all = append(all, r.Extents...)
	}
	want := pfs.NormalizeExtents(all)
	var got []pfs.Extent
	var prevEnd int64 = -1
	for i, d := range p.Domains {
		if len(d.Extents) == 0 || d.Bytes == 0 {
			return fmt.Errorf("collio: plan %s: domain %d is empty", p.Strategy, i)
		}
		if d.Bytes != pfs.TotalBytes(d.Extents) {
			return fmt.Errorf("collio: plan %s: domain %d bytes %d != extents %d",
				p.Strategy, i, d.Bytes, pfs.TotalBytes(d.Extents))
		}
		if d.BufferBytes <= 0 {
			return fmt.Errorf("collio: plan %s: domain %d has no buffer", p.Strategy, i)
		}
		if d.Extents[0].Offset <= prevEnd {
			return fmt.Errorf("collio: plan %s: domain %d overlaps or is out of order", p.Strategy, i)
		}
		prevEnd = d.Extents[len(d.Extents)-1].End() - 1
		if d.Aggregator < 0 {
			return fmt.Errorf("collio: plan %s: domain %d has no aggregator", p.Strategy, i)
		}
		if d.Group < 0 || d.Group >= p.Groups {
			return fmt.Errorf("collio: plan %s: domain %d group %d outside [0,%d)",
				p.Strategy, i, d.Group, p.Groups)
		}
		got = append(got, d.Extents...)
	}
	gotNorm := pfs.NormalizeExtents(got)
	if len(gotNorm) != len(want) {
		return fmt.Errorf("collio: plan %s: domains cover %d extents, requests need %d",
			p.Strategy, len(gotNorm), len(want))
	}
	for i := range want {
		if gotNorm[i] != want[i] {
			return fmt.Errorf("collio: plan %s: coverage mismatch at extent %d: %v != %v",
				p.Strategy, i, gotNorm[i], want[i])
		}
	}
	return nil
}

// RecordPlanMetrics publishes a plan's shape — group count, domain count,
// aggregator placement, buffer sizing, paging exposure — into an
// observer, labelled by strategy so runs comparing strategies on one
// registry stay separable. Nil-safe; planners call this unconditionally.
func RecordPlanMetrics(o *obs.Observer, p *Plan) {
	if o == nil {
		return
	}
	s := obs.L("strategy", p.Strategy)
	o.Gauge("plan.groups", s).Set(float64(p.Groups))
	o.Gauge("plan.domains", s).Set(float64(len(p.Domains)))
	o.Gauge("plan.aggregators", s).Set(float64(len(p.Aggregators())))
	bufH := o.Histogram("plan.buffer_bytes", s)
	paged := 0
	aggsOnNode := map[int]int{}
	for _, d := range p.Domains {
		bufH.Observe(float64(d.BufferBytes))
		aggsOnNode[d.AggNode]++
		if d.PagedSeverity > 0 {
			paged++
		}
	}
	o.Gauge("plan.paged_domains", s).Set(float64(paged))
	for node, n := range aggsOnNode {
		o.Gauge("plan.aggs_on_node", s, obs.L("node", strconv.Itoa(node))).Set(float64(n))
	}
}

// Strategy plans collective operations.
type Strategy interface {
	// Name identifies the strategy in reports.
	Name() string
	// Plan decides groups, domains and aggregators for the given requests.
	// Requests with no extents are permitted (ranks may sit out a
	// collective call).
	Plan(ctx *Context, reqs []RankRequest) (*Plan, error)
}
