package collio

import (
	"reflect"
	"sort"
	"testing"

	"mcio/internal/stats"
)

func TestDedupInts(t *testing.T) {
	cases := []struct {
		name string
		in   []int
		want []int
	}{
		{"nil", nil, nil},
		{"empty", []int{}, []int{}},
		{"single", []int{5}, []int{5}},
		{"already unique sorted", []int{1, 2, 3}, []int{1, 2, 3}},
		{"reversed", []int{3, 2, 1}, []int{1, 2, 3}},
		{"duplicates", []int{3, 1, 2, 3, 1}, []int{1, 2, 3}},
		{"all equal", []int{7, 7, 7, 7}, []int{7}},
		{"negative and zero", []int{0, -2, 5, -2, 0}, []int{-2, 0, 5}},
	}
	for _, c := range cases {
		in := append([]int(nil), c.in...)
		got := dedupInts(in)
		if len(got) == 0 && len(c.want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("%s: dedupInts(%v) = %v, want %v", c.name, c.in, got, c.want)
		}
	}
}

// Property: dedupInts returns exactly the distinct elements of its input,
// sorted ascending, for arbitrary inputs.
func TestDedupIntsMatchesNaive(t *testing.T) {
	r := stats.NewRNG(83)
	for trial := 0; trial < 200; trial++ {
		n := r.Intn(50)
		in := make([]int, n)
		for i := range in {
			in[i] = r.Intn(20) - 10 // dense range forces duplicates
		}
		seen := map[int]bool{}
		for _, x := range in {
			seen[x] = true
		}
		var want []int
		for x := range seen {
			want = append(want, x)
		}
		sort.Ints(want)
		got := dedupInts(append([]int(nil), in...))
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: dedupInts(%v) = %v, want %v", trial, in, got, want)
		}
	}
}
