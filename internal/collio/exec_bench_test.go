package collio_test

import (
	"testing"

	"mcio/internal/collio"
	"mcio/internal/core"
	"mcio/internal/pfs"
)

// execFixture builds a planned interleaved workload and its write-side
// rank buffers — the data-movement hot path the staging-buffer pool
// serves.
func execFixture(b *testing.B) (*collio.Context, *collio.Plan, []collio.RankData, *pfs.File) {
	b.Helper()
	params := collio.DefaultParams(4096)
	params.MsgGroup = 1 << 16
	params.MsgInd = 1 << 14
	params.MemMin = 1024
	ctx := buildContext(b, 12, 3, params, nil)
	const unit = 2048
	reqs := make([]collio.RankRequest, 12)
	for r := range reqs {
		reqs[r].Rank = r
		for seg := 0; seg < 8; seg++ {
			reqs[r].Extents = append(reqs[r].Extents,
				pfs.Extent{Offset: int64(seg*12+r) * unit, Length: unit})
		}
	}
	plan, err := core.New().Plan(ctx, reqs)
	if err != nil {
		b.Fatal(err)
	}
	if err := plan.Validate(reqs); err != nil {
		b.Fatal(err)
	}
	data := make([]collio.RankData, 12)
	for r := range data {
		buf := make([]byte, reqs[r].Bytes())
		fillPattern(r, buf)
		data[r] = collio.RankData{Req: reqs[r], Buf: buf}
	}
	fsys, err := pfs.NewFileSystem(ctx.FS)
	if err != nil {
		b.Fatal(err)
	}
	return ctx, plan, data, fsys.Open("bench")
}

func BenchmarkExecWrite(b *testing.B) {
	ctx, plan, data, file := execFixture(b)
	b.SetBytes(plan.TotalBytes())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := collio.Exec(ctx, plan, data, file, collio.Write); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExecRead(b *testing.B) {
	ctx, plan, data, file := execFixture(b)
	if err := collio.Exec(ctx, plan, data, file, collio.Write); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(plan.TotalBytes())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := collio.Exec(ctx, plan, data, file, collio.Read); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCachedPlan prices the memoized planning path against a cold
// plan each iteration.
func BenchmarkCachedPlan(b *testing.B) {
	params := collio.DefaultParams(128)
	params.MemMin = 16
	ctx := buildContext(b, 24, 4, params, nil)
	reqs := make([]collio.RankRequest, 24)
	for r := range reqs {
		reqs[r] = collio.RankRequest{
			Rank:    r,
			Extents: []pfs.Extent{{Offset: int64(r) * 4096, Length: 4096}},
		}
	}
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			collio.ResetPlanCache()
			if _, err := collio.CachedPlan(core.New(), ctx, reqs); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		collio.ResetPlanCache()
		if _, err := collio.CachedPlan(core.New(), ctx, reqs); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := collio.CachedPlan(core.New(), ctx, reqs); err != nil {
				b.Fatal(err)
			}
		}
	})
	collio.ResetPlanCache()
}
