package machine

import (
	"fmt"
	"strings"
)

// PresetNames lists the machine presets Preset resolves, in display
// order — the single source of truth for CLI usage text (the CLI layers
// its own choice formatting on top; this package stays dependency-free).
var PresetNames = []string{"testbed640", "petascale2010", "exascale2018"}

// Preset resolves a named machine design point. The empty name selects
// the paper's testbed, so callers can thread an optional flag through
// unchanged.
func Preset(name string) (Config, error) {
	switch name {
	case "", "testbed640":
		return Testbed640(), nil
	case "petascale2010":
		return Petascale2010(), nil
	case "exascale2018":
		return Exascale2018(), nil
	}
	return Config{}, fmt.Errorf("machine: unknown preset %q (have %s)",
		name, strings.Join(PresetNames, ", "))
}
