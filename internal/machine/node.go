package machine

import "fmt"

// Node is one compute node instance of a Machine. Resource figures start
// out uniform (copied from the Config); the memory model perturbs
// Avail per node to create the availability variance the paper studies.
type Node struct {
	ID       int
	Capacity int64   // total DRAM, bytes
	Avail    int64   // memory currently available for aggregation buffers
	MemBW    float64 // off-chip bandwidth, bytes/s
	NICBW    float64 // injection bandwidth, bytes/s
}

// Machine is an instantiated cluster: a validated Config plus one Node per
// configured node.
type Machine struct {
	Cfg   Config
	Nodes []*Node
}

// New instantiates a Machine from cfg. The instance starts with every
// node's available memory equal to its capacity.
func New(cfg Config) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Machine{Cfg: cfg, Nodes: make([]*Node, cfg.Nodes)}
	for i := range m.Nodes {
		m.Nodes[i] = &Node{
			ID:       i,
			Capacity: cfg.MemPerNode,
			Avail:    cfg.MemPerNode,
			MemBW:    cfg.MemBandwidth,
			NICBW:    cfg.NICBandwidth,
		}
	}
	return m, nil
}

// MustNew is New, panicking on invalid configuration. Use in tests and
// examples where the config is a literal.
func MustNew(cfg Config) *Machine {
	m, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Node returns the node with the given ID, or an error if out of range.
func (m *Machine) Node(id int) (*Node, error) {
	if id < 0 || id >= len(m.Nodes) {
		return nil, fmt.Errorf("machine: node %d out of range [0,%d)", id, len(m.Nodes))
	}
	return m.Nodes[id], nil
}

// AvailMemory returns each node's available memory, indexed by node ID.
func (m *Machine) AvailMemory() []int64 {
	out := make([]int64, len(m.Nodes))
	for i, n := range m.Nodes {
		out[i] = n.Avail
	}
	return out
}
