// Package machine models the compute platform a collective I/O operation
// runs on: nodes with cores, per-node memory capacity and availability,
// off-chip memory bandwidth, and NIC injection bandwidth.
//
// The package ships three presets: the paper's 640-node Lustre testbed
// (Testbed640) and the 2010-petascale / 2018-exascale design points of the
// paper's Table 1 (Petascale2010, Exascale2018). The simulator only ever
// consumes the per-node resource figures, so an experiment can scale any
// preset down to the rank counts the paper uses (120, 1080) while keeping
// the resource *ratios* — which is what the paper's argument is about.
package machine

import "fmt"

// Byte-size units. Bandwidths are bytes per second.
const (
	KB int64 = 1 << 10
	MB int64 = 1 << 20
	GB int64 = 1 << 30
	TB int64 = 1 << 40
	PB int64 = 1 << 50
)

// Config describes one machine design point.
type Config struct {
	Name string

	// Compute-side resources.
	Nodes        int   // number of compute nodes
	CoresPerNode int   // hardware concurrency per node
	MemPerNode   int64 // bytes of DRAM per node

	// Per-node bandwidths in bytes/second.
	MemBandwidth float64 // off-chip (DRAM) bandwidth per node
	NICBandwidth float64 // interconnect injection bandwidth per node

	// NetLatency is the fixed per-message network cost in seconds.
	NetLatency float64

	// PagedBandwidthFraction is the fraction of MemBandwidth an aggregator
	// achieves once its aggregation buffer no longer fits in the host's
	// available memory (the machine starts paging / evicting). The paper
	// induces exactly this regime by flushing caches and shrinking buffers.
	PagedBandwidthFraction float64

	// System-level design figures; carried for Table 1 reporting and for
	// provisioning the storage model, not consumed per-operation.
	PeakFlops    float64 // system peak, flop/s
	PowerWatts   float64
	SystemMemory int64   // total bytes
	NodeFlops    float64 // per-node peak, flop/s
	Storage      int64   // total storage bytes
	IOBandwidth  float64 // aggregate storage bandwidth, bytes/s
	TotalConcurr int64   // total hardware concurrency (Table 1 row)
	InterconnBW  float64 // interconnect bandwidth per node (Table 1 row, bytes/s)
}

// Validate reports an error when the configuration cannot drive the
// simulator (non-positive counts or bandwidths).
func (c Config) Validate() error {
	switch {
	case c.Nodes <= 0:
		return fmt.Errorf("machine %q: Nodes = %d, must be positive", c.Name, c.Nodes)
	case c.CoresPerNode <= 0:
		return fmt.Errorf("machine %q: CoresPerNode = %d, must be positive", c.Name, c.CoresPerNode)
	case c.MemPerNode <= 0:
		return fmt.Errorf("machine %q: MemPerNode = %d, must be positive", c.Name, c.MemPerNode)
	case c.MemBandwidth <= 0:
		return fmt.Errorf("machine %q: MemBandwidth must be positive", c.Name)
	case c.NICBandwidth <= 0:
		return fmt.Errorf("machine %q: NICBandwidth must be positive", c.Name)
	case c.NetLatency < 0:
		return fmt.Errorf("machine %q: NetLatency must be non-negative", c.Name)
	case c.PagedBandwidthFraction <= 0 || c.PagedBandwidthFraction > 1:
		return fmt.Errorf("machine %q: PagedBandwidthFraction must be in (0,1]", c.Name)
	}
	return nil
}

// MemPerCore returns the paper's headline scarcity metric: bytes of memory
// per hardware core.
func (c Config) MemPerCore() int64 {
	return c.MemPerNode / int64(c.CoresPerNode)
}

// MemBWPerCore returns off-chip bandwidth per core in bytes/second.
func (c Config) MemBWPerCore() float64 {
	return c.MemBandwidth / float64(c.CoresPerNode)
}

// Testbed640 models the evaluation platform of the paper's Section 4: a
// 640-node Linux cluster, two 6-core 2.8 GHz Xeons and 24 GB per node, DDR
// InfiniBand (~2 GB/s injection), DDN-backed Lustre.
func Testbed640() Config {
	return Config{
		Name:                   "testbed-640",
		Nodes:                  640,
		CoresPerNode:           12,
		MemPerNode:             24 * GB,
		MemBandwidth:           25 * float64(GB),
		NICBandwidth:           2 * float64(GB),
		NetLatency:             5e-6,
		PagedBandwidthFraction: 0.25,
		PeakFlops:              640 * 12 * 2.8e9 * 4,
		SystemMemory:           640 * 24 * GB,
		NodeFlops:              12 * 2.8e9 * 4,
		Storage:                600 * TB,
		IOBandwidth:            12 * float64(GB),
		TotalConcurr:           640 * 12,
		InterconnBW:            2 * float64(GB),
	}
}

// Petascale2010 is the "2010" column of the paper's Table 1.
func Petascale2010() Config {
	return Config{
		Name:                   "petascale-2010",
		Nodes:                  20_000,
		CoresPerNode:           12,
		MemPerNode:             3 * PB / 10 / 20_000,
		MemBandwidth:           25 * float64(GB),
		NICBandwidth:           1.5 * float64(GB),
		NetLatency:             2e-6,
		PagedBandwidthFraction: 0.25,
		PeakFlops:              2e15,
		PowerWatts:             6e6,
		SystemMemory:           3 * PB / 10,
		NodeFlops:              0.125e12,
		Storage:                15 * PB,
		IOBandwidth:            0.2 * float64(TB),
		TotalConcurr:           225_000,
		InterconnBW:            1.5 * float64(GB),
	}
}

// Exascale2018 is the "2018" column of the paper's Table 1: a projected
// exascale design with 1M nodes of 1000 cores, where memory per core drops
// to ~10 MB and per-core off-chip bandwidth to ~0.4 GB/s.
func Exascale2018() Config {
	return Config{
		Name:                   "exascale-2018",
		Nodes:                  1_000_000,
		CoresPerNode:           1000,
		MemPerNode:             10 * PB / 1_000_000,
		MemBandwidth:           400 * float64(GB),
		NICBandwidth:           50 * float64(GB),
		NetLatency:             1e-6,
		PagedBandwidthFraction: 0.25,
		PeakFlops:              1e18,
		PowerWatts:             20e6,
		SystemMemory:           10 * PB,
		NodeFlops:              10e12,
		Storage:                300 * PB,
		IOBandwidth:            20 * float64(TB),
		TotalConcurr:           1_000_000_000,
		InterconnBW:            50 * float64(GB),
	}
}

// Scaled returns a copy of c with the node count replaced by nodes, leaving
// all per-node resources untouched. Experiments use this to run the paper's
// 120- and 1080-process configurations on a preset's per-node resource
// ratios.
func (c Config) Scaled(nodes int) Config {
	out := c
	out.Nodes = nodes
	out.Name = fmt.Sprintf("%s/x%d", c.Name, nodes)
	out.SystemMemory = int64(nodes) * c.MemPerNode
	out.TotalConcurr = int64(nodes) * int64(c.CoresPerNode)
	return out
}
