package machine

import (
	"strings"
	"testing"
)

func TestPresetsValidate(t *testing.T) {
	for _, cfg := range []Config{Testbed640(), Petascale2010(), Exascale2018()} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("preset %s invalid: %v", cfg.Name, err)
		}
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	base := Testbed640()
	mutations := []func(*Config){
		func(c *Config) { c.Nodes = 0 },
		func(c *Config) { c.CoresPerNode = -1 },
		func(c *Config) { c.MemPerNode = 0 },
		func(c *Config) { c.MemBandwidth = 0 },
		func(c *Config) { c.NICBandwidth = -5 },
		func(c *Config) { c.NetLatency = -1 },
		func(c *Config) { c.PagedBandwidthFraction = 0 },
		func(c *Config) { c.PagedBandwidthFraction = 1.5 },
	}
	for i, mut := range mutations {
		cfg := base
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d: expected validation error", i)
		}
	}
}

func TestMemPerCoreShrinksAtExascale(t *testing.T) {
	p, e := Petascale2010(), Exascale2018()
	// The paper's central observation: memory per core drops from GBs to
	// around 10 MB, even though total memory grows 33x.
	if p.MemPerCore() <= e.MemPerCore() {
		t.Fatalf("memory per core should shrink: 2010=%d 2018=%d",
			p.MemPerCore(), e.MemPerCore())
	}
	if e.MemPerCore() > 16*MB {
		t.Fatalf("exascale memory per core = %d, expected ~10 MB", e.MemPerCore())
	}
	if e.MemBWPerCore() >= p.MemBWPerCore() {
		t.Fatalf("per-core memory BW should shrink: 2010=%g 2018=%g",
			p.MemBWPerCore(), e.MemBWPerCore())
	}
}

func TestTable1FactorChanges(t *testing.T) {
	rows := Table1()
	want := map[string]string{
		"System Peak":         "500",
		"System Memory":       "33",
		"Node Performance":    "80",
		"Node Memory BW":      "16",
		"Node Concurrency":    "83",
		"Interconnect BW":     "33",
		"System Size (nodes)": "50",
		"Storage":             "20",
		"I/O Bandwidth":       "100",
		"Power":               "3",
	}
	got := map[string]string{}
	for _, r := range rows {
		got[r.Metric] = r.Factor
	}
	for metric, factor := range want {
		if got[metric] != factor {
			t.Errorf("Table1 %s factor = %q, want %q (paper)", metric, got[metric], factor)
		}
	}
	// Total concurrency: paper says 4444.
	if got["Total Concurrency"] != "4444" {
		t.Errorf("Total Concurrency factor = %q, want 4444", got["Total Concurrency"])
	}
}

func TestRenderTable1(t *testing.T) {
	s := RenderTable1()
	for _, want := range []string{"System Peak", "2010", "2018", "Factor", "I/O Bandwidth"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered table missing %q:\n%s", want, s)
		}
	}
}

func TestNewMachine(t *testing.T) {
	cfg := Testbed640()
	cfg.Nodes = 4
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Nodes) != 4 {
		t.Fatalf("got %d nodes", len(m.Nodes))
	}
	for i, n := range m.Nodes {
		if n.ID != i {
			t.Errorf("node %d has ID %d", i, n.ID)
		}
		if n.Avail != cfg.MemPerNode || n.Capacity != cfg.MemPerNode {
			t.Errorf("node %d memory not initialized from config", i)
		}
	}
}

func TestNewRejectsInvalid(t *testing.T) {
	cfg := Testbed640()
	cfg.Nodes = -1
	if _, err := New(cfg); err == nil {
		t.Fatal("expected error")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	cfg := Testbed640()
	cfg.MemBandwidth = 0
	MustNew(cfg)
}

func TestNodeLookup(t *testing.T) {
	cfg := Testbed640()
	cfg.Nodes = 3
	m := MustNew(cfg)
	if _, err := m.Node(2); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Node(3); err == nil {
		t.Fatal("expected out-of-range error")
	}
	if _, err := m.Node(-1); err == nil {
		t.Fatal("expected out-of-range error")
	}
}

func TestScaled(t *testing.T) {
	cfg := Exascale2018().Scaled(90)
	if cfg.Nodes != 90 {
		t.Fatalf("Nodes = %d", cfg.Nodes)
	}
	if cfg.MemPerNode != Exascale2018().MemPerNode {
		t.Fatal("Scaled must keep per-node resources")
	}
	if cfg.SystemMemory != 90*cfg.MemPerNode {
		t.Fatal("Scaled must recompute system memory")
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAvailMemory(t *testing.T) {
	cfg := Testbed640()
	cfg.Nodes = 2
	m := MustNew(cfg)
	m.Nodes[1].Avail = 7
	av := m.AvailMemory()
	if av[0] != cfg.MemPerNode || av[1] != 7 {
		t.Fatalf("AvailMemory = %v", av)
	}
}

func TestInterpolateEndpoints(t *testing.T) {
	p0 := Interpolate(0)
	if p0.Nodes != Petascale2010().Nodes || p0.CoresPerNode != Petascale2010().CoresPerNode {
		t.Fatalf("t=0 != petascale: %+v", p0)
	}
	p1 := Interpolate(1)
	if p1.Nodes != Exascale2018().Nodes || p1.CoresPerNode != Exascale2018().CoresPerNode {
		t.Fatalf("t=1 != exascale: %+v", p1)
	}
	// Clamping.
	if Interpolate(-3).Nodes != p0.Nodes || Interpolate(7).Nodes != p1.Nodes {
		t.Fatal("t not clamped")
	}
}

func TestInterpolateMonotone(t *testing.T) {
	prevConcurrency := int64(0)
	prevMemPerCore := int64(1 << 62)
	for _, tt := range []float64{0, 0.2, 0.4, 0.6, 0.8, 1} {
		cfg := Interpolate(tt)
		if err := cfg.Validate(); err != nil {
			t.Fatalf("t=%v invalid: %v", tt, err)
		}
		if cfg.TotalConcurr < prevConcurrency {
			t.Fatalf("concurrency not monotone at t=%v", tt)
		}
		if cfg.MemPerCore() > prevMemPerCore {
			t.Fatalf("memory per core not shrinking at t=%v", tt)
		}
		prevConcurrency = cfg.TotalConcurr
		prevMemPerCore = cfg.MemPerCore()
	}
}
