package machine

import (
	"fmt"
	"strings"
)

// Table1Row is one row of the paper's Table 1 ("Potential exascale computer
// design and its relationship to current HPC designs").
type Table1Row struct {
	Metric string
	V2010  string
	V2018  string
	Factor string
}

// Table1 regenerates the paper's Table 1 from the two design-point presets.
// Every figure is computed from the Config fields, not hard-coded strings,
// so the table stays consistent with what the simulator actually uses.
func Table1() []Table1Row {
	p, e := Petascale2010(), Exascale2018()
	factor := func(a, b float64) string {
		if a == 0 {
			return "-"
		}
		return fmt.Sprintf("%.0f", b/a)
	}
	return []Table1Row{
		{"System Peak", flops(p.PeakFlops), flops(e.PeakFlops), factor(p.PeakFlops, e.PeakFlops)},
		{"Power", watts(p.PowerWatts), watts(e.PowerWatts), factor(p.PowerWatts, e.PowerWatts)},
		{"System Memory", bytesStr(p.SystemMemory), bytesStr(e.SystemMemory), factor(float64(p.SystemMemory), float64(e.SystemMemory))},
		{"Node Performance", flops(p.NodeFlops), flops(e.NodeFlops), factor(p.NodeFlops, e.NodeFlops)},
		{"Node Memory BW", bw(p.MemBandwidth), bw(e.MemBandwidth), factor(p.MemBandwidth, e.MemBandwidth)},
		{"Node Concurrency", fmt.Sprintf("%d CPUs", p.CoresPerNode), fmt.Sprintf("%d CPUs", e.CoresPerNode), factor(float64(p.CoresPerNode), float64(e.CoresPerNode))},
		{"Interconnect BW", bw(p.InterconnBW), bw(e.InterconnBW), factor(p.InterconnBW, e.InterconnBW)},
		{"System Size (nodes)", count(int64(p.Nodes)), count(int64(e.Nodes)), factor(float64(p.Nodes), float64(e.Nodes))},
		{"Total Concurrency", count(p.TotalConcurr), count(e.TotalConcurr), factor(float64(p.TotalConcurr), float64(e.TotalConcurr))},
		{"Storage", bytesStr(p.Storage), bytesStr(e.Storage), factor(float64(p.Storage), float64(e.Storage))},
		{"I/O Bandwidth", bw(p.IOBandwidth), bw(e.IOBandwidth), factor(p.IOBandwidth, e.IOBandwidth)},
		{"Memory per Core", bytesStr(p.MemPerCore()), bytesStr(e.MemPerCore()),
			factor(float64(p.MemPerCore()), float64(e.MemPerCore()))},
		{"Memory BW per Core", bw(p.MemBWPerCore()), bw(e.MemBWPerCore()),
			factor(p.MemBWPerCore(), e.MemBWPerCore())},
	}
}

// RenderTable1 formats Table1 as an aligned text table.
func RenderTable1() string {
	rows := Table1()
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %14s %14s %8s\n", "Metric", "2010", "2018", "Factor")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s %14s %14s %8s\n", r.Metric, r.V2010, r.V2018, r.Factor)
	}
	return b.String()
}

func flops(f float64) string {
	switch {
	case f >= 1e18:
		return fmt.Sprintf("%.3g Ef/s", f/1e18)
	case f >= 1e15:
		return fmt.Sprintf("%.3g Pf/s", f/1e15)
	case f >= 1e12:
		return fmt.Sprintf("%.3g Tf/s", f/1e12)
	default:
		return fmt.Sprintf("%.3g Gf/s", f/1e9)
	}
}

func watts(w float64) string {
	if w == 0 {
		return "-"
	}
	return fmt.Sprintf("%.3g MW", w/1e6)
}

func bytesStr(n int64) string {
	f := float64(n)
	switch {
	case n >= PB:
		return fmt.Sprintf("%.3g PB", f/float64(PB))
	case n >= TB:
		return fmt.Sprintf("%.3g TB", f/float64(TB))
	case n >= GB:
		return fmt.Sprintf("%.3g GB", f/float64(GB))
	case n >= MB:
		return fmt.Sprintf("%.3g MB", f/float64(MB))
	case n >= KB:
		return fmt.Sprintf("%.3g KB", f/float64(KB))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

func bw(b float64) string {
	switch {
	case b >= float64(TB):
		return fmt.Sprintf("%.3g TB/s", b/float64(TB))
	case b >= float64(GB):
		return fmt.Sprintf("%.3g GB/s", b/float64(GB))
	case b >= float64(MB):
		return fmt.Sprintf("%.3g MB/s", b/float64(MB))
	default:
		return fmt.Sprintf("%.3g B/s", b)
	}
}

func count(n int64) string {
	switch {
	case n >= 1_000_000_000:
		return fmt.Sprintf("%.3g B", float64(n)/1e9)
	case n >= 1_000_000:
		return fmt.Sprintf("%.3g M", float64(n)/1e6)
	case n >= 1_000:
		return fmt.Sprintf("%.3g K", float64(n)/1e3)
	default:
		return fmt.Sprintf("%d", n)
	}
}
