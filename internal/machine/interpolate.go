package machine

import (
	"fmt"
	"math"
)

// Interpolate returns a machine design point on the 2010→2018 trajectory
// of the paper's Table 1, with t = 0 at Petascale2010 and t = 1 at
// Exascale2018. Every resource figure moves geometrically (hardware
// trends are exponential), so t = 0.5 is the notional ~2014 machine. The
// projection is the paper's own argument made continuous: memory per core
// and bandwidth per core decay along the whole path while total
// concurrency explodes.
func Interpolate(t float64) Config {
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	p, e := Petascale2010(), Exascale2018()
	geoF := func(a, b float64) float64 {
		return a * math.Pow(b/a, t)
	}
	geoI := func(a, b int64) int64 {
		v := int64(math.Round(geoF(float64(a), float64(b))))
		if v < 1 {
			return 1
		}
		return v
	}
	cfg := Config{
		Name:                   fmt.Sprintf("trajectory-t%.2f", t),
		Nodes:                  int(geoI(int64(p.Nodes), int64(e.Nodes))),
		CoresPerNode:           int(geoI(int64(p.CoresPerNode), int64(e.CoresPerNode))),
		MemBandwidth:           geoF(p.MemBandwidth, e.MemBandwidth),
		NICBandwidth:           geoF(p.NICBandwidth, e.NICBandwidth),
		NetLatency:             geoF(p.NetLatency, e.NetLatency),
		PagedBandwidthFraction: p.PagedBandwidthFraction,
		PeakFlops:              geoF(p.PeakFlops, e.PeakFlops),
		PowerWatts:             geoF(p.PowerWatts, e.PowerWatts),
		SystemMemory:           geoI(p.SystemMemory, e.SystemMemory),
		NodeFlops:              geoF(p.NodeFlops, e.NodeFlops),
		Storage:                geoI(p.Storage, e.Storage),
		IOBandwidth:            geoF(p.IOBandwidth, e.IOBandwidth),
		InterconnBW:            geoF(p.InterconnBW, e.InterconnBW),
	}
	cfg.MemPerNode = cfg.SystemMemory / int64(cfg.Nodes)
	cfg.TotalConcurr = int64(cfg.Nodes) * int64(cfg.CoresPerNode)
	return cfg
}
