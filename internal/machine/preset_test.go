package machine

import (
	"strings"
	"testing"
)

// TestPresetResolvesAllNames pins the name → design-point mapping: every
// advertised preset resolves, validates, and carries its own name; the
// empty string is the paper's testbed so optional flags thread through.
func TestPresetResolvesAllNames(t *testing.T) {
	for _, name := range PresetNames {
		cfg, err := Preset(name)
		if err != nil {
			t.Fatalf("Preset(%q): %v", name, err)
		}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("Preset(%q) is not usable: %v", name, err)
		}
	}
	def, err := Preset("")
	if err != nil {
		t.Fatalf("empty preset: %v", err)
	}
	tb := Testbed640()
	if def.Name != tb.Name || def.Nodes != tb.Nodes {
		t.Fatalf("empty preset resolved to %q, want the paper testbed %q", def.Name, tb.Name)
	}
}

// TestPresetUnknownErrorListsChoices pins the error path: a typo must
// name the offender and every valid choice, so the CLI message is
// actionable without reading source.
func TestPresetUnknownErrorListsChoices(t *testing.T) {
	_, err := Preset("exascale2019")
	if err == nil {
		t.Fatal("unknown preset accepted")
	}
	msg := err.Error()
	if !strings.Contains(msg, `unknown preset "exascale2019"`) {
		t.Fatalf("error does not name the offender: %v", err)
	}
	for _, name := range PresetNames {
		if !strings.Contains(msg, name) {
			t.Fatalf("error omits valid choice %q: %v", name, err)
		}
	}
}
