package fastsim

import (
	"fmt"
	"sort"
	"strconv"

	"mcio/internal/collio"
	"mcio/internal/faults"
	"mcio/internal/obs"
	"mcio/internal/pfs"
	"mcio/internal/sim"
	"mcio/internal/stats"
)

// CostWithFaults prices a faulted run analytically, bit-identical to
// collio.CostWithFaults on the byte path. The exactness argument, per
// fault dimension:
//
//   - Engine round pricing reduces messages to commutative per-node
//     integer loads, so healthy traffic aggregates freely: one
//     AggMessage per (node, domain) pair per round, reconstructed
//     exactly by NodeContrib.RoundShare.
//   - Message-level fault state (drop/flip budgets, delay windows,
//     flaky-NIC counters) is keyed by source node, and every injector
//     query on a node without live state is a pure no-op. Each round
//     the loop computes the hot-node set; items whose messages
//     originate from a hot node walk their contributors per rank in
//     byte-path order — preserving both the injector's per-node query
//     sequence and the order extra latency terms are summed in (floats
//     only accumulate from hot messages, so skipping healthy ones
//     changes nothing) — while healthy nodes stay aggregated.
//   - Storage fault state (retry ladders, torn-write budgets) is keyed
//     by target and the byte path is already per-item there, so the
//     access loop ports verbatim: same accesses, same order, same
//     ladder walks.
//   - Crash/collapse recovery folds per-rank contributor lists exactly
//     as the byte path does; the recovery metadata re-exchange is
//     bundled per source node into an aggregate recovery round (every
//     contributor of one folded item ships the same payload).
//   - Identical per-round costs keep the engine clock identical, so
//     fault windows open and close on the same boundaries.
//
// Differences are observational only, as for Cost: per-rank mpi.* and
// per-domain collio.shuffle_bytes counters and ctx.Timeline recording
// are not emitted (the fast path never materializes ranks); the
// engine-level metrics, the faults.* counters, spans and traces are
// identical. Adaptive policies (collio.CostAdaptive) stay byte-path:
// hedging and breaker decisions are inherently per-message.
func CostWithFaults(ctx *collio.Context, plan *collio.Plan, reqs []collio.RankRequest,
	op collio.Op, opt sim.Options, inj *faults.Injector, handler collio.FaultHandler) (*collio.FaultResult, error) {
	if inj.Empty() {
		res, err := Cost(ctx, plan, reqs, op, opt)
		if err != nil {
			return nil, err
		}
		return &collio.FaultResult{CostResult: *res, Injected: map[string]int{}}, nil
	}
	if handler == nil {
		return nil, fmt.Errorf("fastsim: fault injection without a FaultHandler")
	}
	fshape, err := collio.BuildFaultedShape(ctx, plan, reqs)
	if err != nil {
		return nil, err
	}
	st := sim.StorageParams{
		Targets:         ctx.FS.Targets,
		TargetBW:        ctx.FS.TargetBW,
		ReqOverhead:     ctx.FS.ReqOverhead,
		NoncontigFactor: ctx.FS.NoncontigFactor,
		ReadBWFactor:    ctx.FS.ReadBWFactor,
	}
	eng, err := sim.NewEngine(ctx.Machine, st, opt)
	if err != nil {
		return nil, err
	}
	pid := 0
	if ctx.Obs != nil {
		pid = ctx.Obs.Tracer().PID(plan.Strategy)
		eng.SetObserver(ctx.Obs, pid,
			obs.L("strategy", plan.Strategy), obs.L("op", op.String()))
	}
	inj.SetObserver(ctx.Obs)

	placements := make([]sim.AggregatorPlacement, len(plan.Domains))
	for i, d := range plan.Domains {
		placements[i] = sim.AggregatorPlacement{
			Node:          d.AggNode,
			BufferBytes:   d.BufferBytes,
			PagedSeverity: d.PagedSeverity,
		}
	}
	eng.SetAggregators(placements)

	// Metadata scatter in closed form, identical to the fault-free fast
	// path (the byte path's faulted metadata round is the same exchange).
	if len(fshape.MetaExchanges) > 0 {
		eng.RunAggRound(sim.AggRound{Kind: sim.RoundMetadata, Exchanges: fshape.MetaExchanges})
	}

	// Live domain set (placements mutate on recovery) and work items.
	live := append([]collio.Domain(nil), plan.Domains...)
	items := fshape.Items
	totalRounds := fshape.TotalRounds

	res := &collio.FaultResult{}
	spec := inj.Spec()
	nodes := ctx.Topo.Nodes()
	// leakFrac tracks the largest MemLeak fraction already applied per
	// node; leakSev the paging severity that decay produced.
	leakFrac := make([]float64, nodes)
	leakSev := make([]float64, nodes)
	// nodeSeverity tracks the worst paging severity declared per node so
	// recoveries never accidentally lower another domain's penalty.
	nodeSeverity := map[int]float64{}
	for _, d := range live {
		if d.PagedSeverity > nodeSeverity[d.AggNode] {
			nodeSeverity[d.AggNode] = d.PagedSeverity
		}
	}

	// handleHostEvent applies one host-level event through the handler,
	// the aggregate form of the byte path's recovery: the same replay
	// bookkeeping and refolds, with the metadata re-exchange bundled per
	// source node instead of one message per surviving contributor.
	handleHostEvent := func(ev faults.Event) error {
		var affectedItems []int
		domainSet := map[int]bool{}
		for ii, it := range items {
			if it.Active() && live[it.Domain].AggNode == ev.Node {
				affectedItems = append(affectedItems, ii)
				domainSet[it.Domain] = true
			}
		}
		affected := make([]int, 0, len(domainSet))
		for d := range domainSet {
			affected = append(affected, d)
		}
		sort.Ints(affected)

		// The round in flight when the host died is lost: replay it.
		for _, ii := range affectedItems {
			if items[ii].Done > 0 {
				items[ii].Done--
				res.ReplayedRounds++
			}
		}

		ras, err := handler.OnHostFault(ctx, collio.HostFault{
			Node: ev.Node, Kind: ev.Kind, Time: ev.Time, Severity: ev.Severity,
		}, live, affected)
		if err != nil {
			return err
		}

		var stall float64
		var rec sim.AggRound
		refold := func(src, dst int, reExchange bool) {
			// Snapshot the length: folding appends successors, and when
			// src == dst (an in-place re-placement) a successor would
			// match the filter and fold itself forever.
			n := len(items)
			for ii := 0; ii < n; ii++ {
				it := items[ii]
				if it.Domain != src || !it.Active() {
					continue
				}
				nit := it.Fold(dst, live)
				it.Done = it.Rounds // retire
				if nit == nil {
					continue
				}
				items = append(items, nit)
				if !reExchange {
					continue
				}
				// Every contributor of this folded item ships the same
				// extent-list payload, so consecutive same-node senders
				// bundle into one aggregate message (MemCopy is linear for
				// integral copy factors, so any bundling partition prices
				// identically to per-message accumulation).
				bytes := nit.RecoveryMetaBytes()
				dstNode := live[dst].AggNode
				for _, c := range nit.Contribs {
					if k := len(rec.Messages); k > 0 {
						if m := &rec.Messages[k-1]; m.SrcNode == c.Node && m.DstNode == dstNode {
							m.Bytes += bytes
							m.Count++
							continue
						}
					}
					rec.Messages = append(rec.Messages, sim.AggMessage{
						SrcNode: c.Node, DstNode: dstNode, Bytes: bytes, Count: 1,
					})
				}
			}
		}
		for _, ra := range ras {
			if ra.StallSeconds > stall {
				stall = ra.StallSeconds
			}
			if ra.MergeInto >= 0 {
				refold(ra.Domain, ra.MergeInto, true)
				if err := collio.ApplyReassignments(live, []collio.Reassignment{ra}); err != nil {
					return err
				}
				res.Failovers++
				continue
			}
			moved := live[ra.Domain].AggNode != ra.AggNode
			bufChanged := ra.BufferBytes > 0 && live[ra.Domain].BufferBytes != ra.BufferBytes
			if err := collio.ApplyReassignments(live, []collio.Reassignment{ra}); err != nil {
				return err
			}
			if s := ra.PagedSeverity; s > nodeSeverity[ra.AggNode] {
				nodeSeverity[ra.AggNode] = s
			}
			eng.SetNodePaged(ra.AggNode, nodeSeverity[ra.AggNode])
			if moved || bufChanged {
				refold(ra.Domain, ra.Domain, moved)
				res.Failovers++
			} else {
				res.Stalls++
			}
		}
		if stall > 0 {
			eng.AddRecoveryLatency(stall, ev.Kind.String())
		}
		if len(rec.Messages) > 0 {
			eng.RunAggRecoveryRound(rec)
		}
		return nil
	}

	// Main loop: one data round per iteration, fault events applied at
	// round boundaries — the byte path's loop with per-node aggregation
	// wherever fault state allows it.
	guard := 16*(totalRounds+1) + 1024
	executed := 0
	hot := make([]bool, nodes)
	var round sim.AggRound
	var slice []pfs.Extent
	mapper := ctx.FS.NewMapper()
	for {
		now := eng.Elapsed()
		for _, ev := range inj.Advance(now) {
			if ev.Kind != faults.NodeCrash && ev.Kind != faults.MemCollapse {
				continue
			}
			if err := handleHostEvent(ev); err != nil {
				return nil, err
			}
		}
		for n := 0; n < nodes; n++ {
			eng.SetNodeSlowdown(n, inj.NodeSlowdown(n, now))
		}
		for t := 0; t < ctx.FS.Targets; t++ {
			eng.SetTargetSlowdown(t, inj.OSTSlowdownFactor(t, now))
		}
		for n := 0; n < nodes; n++ {
			frac := inj.MemLeakFraction(n, now)
			if frac <= leakFrac[n] {
				continue
			}
			if leakFrac[n] == 0 {
				res.LeakedNodes++
			}
			leakFrac[n] = frac
			var sev float64
			if mh, ok := handler.(collio.MemDecayHandler); ok {
				sev = mh.OnMemDecay(n, frac)
			} else {
				sev = collio.LeakSeverity(live, ctx.Avail[n], n, frac)
			}
			if sev > leakSev[n] {
				leakSev[n] = sev
			}
			if leakSev[n] > nodeSeverity[n] {
				nodeSeverity[n] = leakSev[n]
			}
			eng.SetNodePaged(n, nodeSeverity[n])
		}

		anyActive := false
		for _, it := range items {
			if it.Active() {
				anyActive = true
				break
			}
		}
		if !anyActive {
			break
		}

		// Hot nodes carry message-level fault state this round: a live
		// delay window, pending drop/flip budgets, or an active flaky-NIC
		// drop cadence. Messages from them must be walked per rank to
		// preserve injector query order and latency summation order;
		// everything else aggregates. Events only apply at round
		// boundaries, so a node healthy here stays query-inert all round.
		for n := 0; n < nodes; n++ {
			hot[n] = inj.MsgDelaySeconds(n, now)+inj.NICDelaySeconds(n, now) > 0 ||
				inj.PendingDrops(n) > 0 || inj.PendingFlips(n) > 0 ||
				inj.NICDropActive(n, now)
		}

		round.Messages = round.Messages[:0]
		round.IOOps = round.IOOps[:0]
		var extraLat float64
		for _, it := range items {
			if !it.Active() {
				continue
			}
			d := live[it.Domain]
			s := it.Done
			aggs := it.Aggs()
			// An item is hot when any of its messages' source node is: the
			// aggregator node on reads (every message originates there), any
			// contributing node on writes.
			itemHot := false
			if op == collio.Read {
				itemHot = hot[d.AggNode]
			} else {
				for i := range aggs {
					if hot[aggs[i].Node] {
						itemHot = true
						break
					}
				}
			}
			if itemHot {
				// Per-rank walk of the hot sources, in byte-path contributor
				// order. Healthy-node messages are skipped here (their
				// queries are no-ops and they add no latency) and emitted as
				// aggregates below.
				for _, c := range it.Contribs {
					srcNode := c.Node
					if op == collio.Read {
						srcNode = d.AggNode
					}
					if !hot[srcNode] {
						continue
					}
					per := collio.EvenShare(c.Bytes, s, it.Rounds)
					if per == 0 {
						continue
					}
					m := sim.AggMessage{SrcNode: c.Node, DstNode: d.AggNode, Bytes: per, Count: 1}
					if op == collio.Read {
						m.SrcNode, m.DstNode = m.DstNode, m.SrcNode
					}
					if delay := inj.MsgDelaySeconds(m.SrcNode, now) + inj.NICDelaySeconds(m.SrcNode, now); delay > 0 {
						extraLat += delay
						res.DelayedMessages++
					}
					if inj.TakeDrop(m.SrcNode) {
						// Lost and resent after the drop timeout: the bytes
						// move twice and the round absorbs the timeout.
						round.Messages = append(round.Messages, m)
						extraLat += spec.DropTimeoutSeconds
						res.DroppedMessages++
					}
					if inj.TakeNICDrop(m.SrcNode, now) {
						round.Messages = append(round.Messages, m)
						extraLat += spec.DropTimeoutSeconds
						res.DroppedMessages++
						res.FlakyDrops++
					}
					if inj.TakeMsgFlip(m.SrcNode) {
						// Detected by end-to-end verification and re-requested:
						// bytes move twice plus a detect+resend round-trip.
						round.Messages = append(round.Messages, m)
						extraLat += spec.DropTimeoutSeconds
						res.CorruptedMessages++
					}
					round.Messages = append(round.Messages, m)
				}
			}
			if op == collio.Write || !itemHot {
				for i := range aggs {
					nc := &aggs[i]
					if op == collio.Write && hot[nc.Node] {
						continue
					}
					bytes, msgs := nc.RoundShare(s)
					if bytes == 0 {
						continue
					}
					m := sim.AggMessage{SrcNode: nc.Node, DstNode: d.AggNode, Bytes: bytes, Count: msgs}
					if op == collio.Read {
						m.SrcNode, m.DstNode = m.DstNode, m.SrcNode
					}
					round.Messages = append(round.Messages, m)
				}
			}
			// Storage: the byte path is already per item here, so this is a
			// verbatim port — same accesses in the same order drive the same
			// per-target retry-ladder and torn-write state.
			idx := (s + it.Rot) % it.Rounds
			slice = pfs.SliceDataAppend(slice[:0], it.Base, int64(idx)*it.Buf, it.Buf)
			for _, acc := range mapper.Map(slice) {
				retries, backoff, degraded := inj.OSTPenalty(acc.Target, now)
				delay := backoff
				if degraded {
					bw := ctx.FS.TargetBW
					if op == collio.Read && ctx.FS.ReadBWFactor > 0 {
						bw *= ctx.FS.ReadBWFactor
					}
					delay += float64(acc.Bytes) / bw * (spec.DegradedFactor - 1)
				}
				res.StorageRetries += retries
				torn := 0
				if op == collio.Write && inj.TakeTornWrite(acc.Target) {
					torn = 1
					res.TornWrites++
				}
				round.IOOps = append(round.IOOps, sim.IOOp{
					Target:       acc.Target,
					Node:         d.AggNode,
					Bytes:        acc.Bytes,
					Requests:     acc.Requests + retries + torn,
					Contiguous:   acc.Contiguous,
					Write:        op == collio.Write,
					DelaySeconds: delay,
				})
			}
			it.Done++
		}
		if extraLat > 0 {
			eng.AddLatency(extraLat)
		}
		eng.RunAggRound(round)
		executed++
		if executed > guard {
			return nil, fmt.Errorf("fastsim: fault recovery did not converge after %d rounds", executed)
		}
	}

	userBytes := plan.TotalBytes()
	if ctx.Obs != nil {
		span := ctx.Obs.Tracer().Begin(pid, sim.TIDTimeline,
			plan.Strategy+" "+op.String()+" (faults)", 0,
			obs.A("groups", strconv.Itoa(plan.Groups)),
			obs.A("domains", strconv.Itoa(len(plan.Domains))),
			obs.A("rounds", strconv.Itoa(executed)),
			obs.A("user_bytes", strconv.FormatInt(userBytes, 10)))
		span.End(eng.Elapsed())
	}
	totals := eng.Totals()
	res.CostResult = collio.CostResult{
		Strategy:  plan.Strategy,
		Op:        op,
		UserBytes: userBytes,
		Seconds:   eng.Elapsed(),
		Bandwidth: eng.Bandwidth(userBytes),
		Totals:    totals,
		Domains:   len(plan.Domains),
		Groups:    plan.Groups,
		MaxRounds: executed,
	}
	res.Aggregators = len(plan.Aggregators())
	buffers := make([]float64, 0, len(plan.Domains))
	for _, d := range plan.Domains {
		buffers = append(buffers, float64(d.BufferBytes))
		if d.PagedSeverity > 0 {
			res.PagedAggregators++
		}
	}
	res.BufferSummary = stats.Summarize(buffers)
	if opt.Trace {
		res.Trace = eng.Trace()
	}
	res.Injected = inj.Counts()
	res.RecoverySeconds = totals.RecoverySeconds
	res.RecoveryRounds = totals.RecoveryRounds
	if o := ctx.Obs; o != nil {
		base := []obs.Label{obs.L("strategy", plan.Strategy), obs.L("op", op.String())}
		o.Counter("faults.failovers", base...).Add(int64(res.Failovers))
		o.Counter("faults.stalls", base...).Add(int64(res.Stalls))
		o.Counter("faults.replayed_rounds", base...).Add(int64(res.ReplayedRounds))
		o.Counter("faults.storage_retries", base...).Add(int64(res.StorageRetries))
		o.Counter("faults.dropped_messages", base...).Add(int64(res.DroppedMessages))
		o.Counter("faults.delayed_messages", base...).Add(int64(res.DelayedMessages))
		o.Counter("faults.corrupted_messages", base...).Add(int64(res.CorruptedMessages))
		o.Counter("faults.torn_writes", base...).Add(int64(res.TornWrites))
		o.Counter("faults.flaky_drops", base...).Add(int64(res.FlakyDrops))
		o.Counter("faults.leaked_nodes", base...).Add(int64(res.LeakedNodes))
	}
	return res, nil
}
