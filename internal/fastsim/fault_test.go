package fastsim

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"mcio/internal/collio"
	"mcio/internal/core"
	"mcio/internal/faults"
	"mcio/internal/pfs"
	"mcio/internal/sim"
	"mcio/internal/twophase"
)

// faultedPlan builds a fresh plan and fault handler for one engine run.
// Recovery mutates handler state (and, for the memory-conscious
// strategy, the plan's partition trees), so cross-checks must never
// share either between engines.
func faultedPlan(ctx *collio.Context, strategy string, reqs []collio.RankRequest,
	spec faults.Spec) (*collio.Plan, collio.FaultHandler, error) {
	switch strategy {
	case "memory-conscious":
		p, state, err := core.New().PlanWithState(ctx, reqs)
		if err != nil {
			return nil, nil, err
		}
		return p, &core.Failover{State: state, Detect: spec.DetectSeconds}, nil
	case "two-phase":
		p, err := twophase.New().Plan(ctx, reqs)
		if err != nil {
			return nil, nil, err
		}
		return p, twophase.NewStallRetry(ctx.Avail, spec.StallSeconds), nil
	}
	return nil, nil, fmt.Errorf("unknown strategy %q", strategy)
}

// priceFaultedBoth prices one faulted cell with both engines — each
// from its own freshly built plan, injector and handler — and fails on
// any divergence in the full FaultResult: costs, engine totals, fault
// tallies, injected-event counts (the schedule must be engine-
// invariant), and round traces.
func priceFaultedBoth(t *testing.T, ctx *collio.Context, strategy string,
	reqs []collio.RankRequest, op collio.Op, opt sim.Options, spec faults.Spec) *collio.FaultResult {
	t.Helper()
	run := func(engine func(*collio.Context, *collio.Plan, []collio.RankRequest, collio.Op,
		sim.Options, *faults.Injector, collio.FaultHandler) (*collio.FaultResult, error)) (*collio.FaultResult, error) {
		fplan, err := spec.Generate(ctx.Topo.Nodes(), ctx.FS.Targets)
		if err != nil {
			t.Fatal(err)
		}
		plan, handler, err := faultedPlan(ctx, strategy, reqs, spec)
		if err != nil {
			t.Fatal(err)
		}
		if err := plan.Validate(reqs); err != nil {
			t.Fatal(err)
		}
		return engine(ctx, plan, reqs, op, opt, faults.NewInjector(fplan), handler)
	}
	want, wantErr := run(collio.CostWithFaults)
	got, gotErr := run(CostWithFaults)
	if wantErr != nil {
		// A schedule can legitimately kill the whole cluster; the handler's
		// refusal must surface identically from both engines.
		if gotErr == nil || gotErr.Error() != wantErr.Error() {
			t.Fatalf("%s %s: error divergence\nfast: %v\nbyte: %v",
				strategy, op, gotErr, wantErr)
		}
		return nil
	}
	if gotErr != nil {
		t.Fatalf("%s %s: fast path errored where byte path priced: %v", strategy, op, gotErr)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("%s %s: faulted engines diverge\nfast: %+v\nbyte: %+v",
			strategy, op, got, want)
	}
	return got
}

// TestFaultedEnginesMatchCrash pins a schedule dominated by host-level
// events — crashes and memory collapses forcing remerges, replays and
// recovery rounds — and checks bit-identity on a workload with uneven
// rounds.
func TestFaultedEnginesMatchCrash(t *testing.T) {
	ctx := testContext(t, 16, 4, 8, 8<<10)
	reqs := make([]collio.RankRequest, 16)
	const rec = 700
	for r := range reqs {
		for b := 0; b < 6; b++ {
			reqs[r].Extents = append(reqs[r].Extents, pfs.Extent{
				Offset: int64(b*16+r) * rec,
				Length: rec,
			})
		}
		reqs[r].Rank = r
	}
	opt := sim.DefaultOptions()
	opt.Trace = true
	// Rate 5 survives under both strategies (remerges and stalls price to
	// completion); rate 8 wipes the cluster under memory-conscious and
	// must surface the identical handler error from both engines.
	failovers := 0
	for _, rate := range []float64{5, 8} {
		for _, strategy := range []string{"two-phase", "memory-conscious"} {
			ref := priceFaultedBoth(t, ctx, strategy, reqs, collio.Write, opt,
				faults.DefaultSpec(3, 1).WithRate(0))
			spec := faults.DefaultSpec(3, ref.Seconds*4).WithRate(rate)
			for _, op := range []collio.Op{collio.Write, collio.Read} {
				res := priceFaultedBoth(t, ctx, strategy, reqs, op, opt, spec)
				if res == nil {
					continue
				}
				if len(res.Injected) == 0 {
					t.Fatalf("%s %s rate %g: schedule injected no events — test exercises nothing", strategy, op, rate)
				}
				failovers += res.Failovers
			}
		}
	}
	if failovers == 0 {
		t.Fatal("no cell exercised a failover — crash recovery untested")
	}
}

// TestFaultedEnginesMatchRandom is the property test: random seeded
// topologies, workloads and fault schedules — cycling plain, gray
// (stragglers, flaky NICs, slow OSTs, leaks) and corruption (bit
// flips, torn writes) profiles — must price identically under both
// engines, strategies and directions.
func TestFaultedEnginesMatchRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	trials := 18
	if testing.Short() {
		trials = 6
	}
	for trial := 0; trial < trials; trial++ {
		ranks := 4 + rng.Intn(16)
		perNode := 1 + rng.Intn(4)
		targets := 1 + rng.Intn(6)
		avail := int64(1+rng.Intn(16)) << 9
		ctx := testContext(t, ranks, perNode, targets, avail)
		reqs := make([]collio.RankRequest, ranks)
		for r := 0; r < ranks; r++ {
			reqs[r].Rank = r
			for i, n := 0, rng.Intn(5); i < n; i++ {
				reqs[r].Extents = append(reqs[r].Extents, pfs.Extent{
					Offset: int64(rng.Intn(24 << 10)),
					Length: int64(rng.Intn(3 << 10)),
				})
			}
		}
		opt := sim.DefaultOptions()
		opt.Overlap = trial%2 == 0
		opt.Trace = true
		seed := uint64(trial)*31 + 5
		for _, strategy := range []string{"two-phase", "memory-conscious"} {
			ref := priceFaultedBoth(t, ctx, strategy, reqs, collio.Write, opt,
				faults.DefaultSpec(seed, 1).WithRate(0))
			horizon := ref.Seconds * 4
			if horizon <= 0 {
				horizon = 1
			}
			spec := faults.DefaultSpec(seed, horizon).WithRate(2 + float64(rng.Intn(8)))
			switch trial % 3 {
			case 1:
				spec = spec.WithGray(1 + float64(rng.Intn(4)))
			case 2:
				spec = spec.WithCorruption(1 + float64(rng.Intn(4)))
			}
			for _, op := range []collio.Op{collio.Write, collio.Read} {
				priceFaultedBoth(t, ctx, strategy, reqs, op, opt, spec)
			}
		}
	}
}

// TestFaultedEmptyInjectorDelegates checks the inert paths: a nil or
// event-free injector must reduce to the fault-free fast path (same
// CostResult, empty Injected map), and a missing handler must be an
// error, both exactly as on the byte path.
func TestFaultedEmptyInjectorDelegates(t *testing.T) {
	ctx := testContext(t, 12, 4, 4, 16<<10)
	reqs := make([]collio.RankRequest, 12)
	const chunk = 3 << 10
	for r := range reqs {
		reqs[r] = collio.RankRequest{Rank: r, Extents: []pfs.Extent{
			{Offset: int64(r) * chunk, Length: chunk},
		}}
	}
	opt := sim.DefaultOptions()
	opt.Trace = true
	spec := faults.DefaultSpec(1, 1).WithRate(0)
	priceFaultedBoth(t, ctx, "two-phase", reqs, collio.Write, opt, spec)

	plan, handler, err := faultedPlan(ctx, "two-phase", reqs, spec)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := collio.Cost(ctx, plan, reqs, collio.Write, opt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := CostWithFaults(ctx, plan, reqs, collio.Write, opt, nil, handler)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.CostResult, *clean) || len(res.Injected) != 0 {
		t.Fatalf("empty injector did not reduce to the clean run: %+v", res)
	}

	fplan, err := faults.DefaultSpec(1, 10).WithRate(4).Generate(ctx.Topo.Nodes(), ctx.FS.Targets)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CostWithFaults(ctx, plan, reqs, collio.Write, opt, faults.NewInjector(fplan), nil); err == nil {
		t.Fatal("faulted pricing without a handler should error")
	}
}

// TestFaultScheduleEngineInvariant pins a fault schedule and proves the
// event stream both engines consume is the same object, not merely
// same-shaped: the generated plans are identical, and after a full
// priced run each engine's injector has applied the same events — same
// per-kind counts, same dead-node set, same escalations. Together with
// the bit-identity checks this closes the loop: same schedule in, same
// recovery out, regardless of engine.
func TestFaultScheduleEngineInvariant(t *testing.T) {
	ctx := testContext(t, 24, 4, 8, 12<<10)
	reqs := make([]collio.RankRequest, 24)
	for r := range reqs {
		reqs[r] = collio.RankRequest{Rank: r,
			Extents: []pfs.Extent{{Offset: int64(r) * 900, Length: 900}}}
	}
	opt := sim.DefaultOptions()
	opt.Trace = true
	for _, strategy := range []string{"two-phase", "memory-conscious"} {
		ref := priceFaultedBoth(t, ctx, strategy, reqs, collio.Write, opt,
			faults.DefaultSpec(11, 1).WithRate(0))
		spec := faults.DefaultSpec(11, ref.Seconds*4).WithRate(3).WithGray(2).WithCorruption(2)

		planA, err := spec.Generate(ctx.Topo.Nodes(), ctx.FS.Targets)
		if err != nil {
			t.Fatal(err)
		}
		planB, err := spec.Generate(ctx.Topo.Nodes(), ctx.FS.Targets)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(planA, planB) {
			t.Fatal("Generate is not a pure function of the spec: plans diverge")
		}

		type engineRun struct {
			name string
			cost func(*collio.Context, *collio.Plan, []collio.RankRequest, collio.Op,
				sim.Options, *faults.Injector, collio.FaultHandler) (*collio.FaultResult, error)
			inj *faults.Injector
		}
		runs := []engineRun{
			{"byte", collio.CostWithFaults, faults.NewInjector(planA)},
			{"fast", CostWithFaults, faults.NewInjector(planB)},
		}
		for i := range runs {
			plan, handler, err := faultedPlan(ctx, strategy, reqs, spec)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := runs[i].cost(ctx, plan, reqs, collio.Write, opt, runs[i].inj, handler); err != nil {
				t.Fatalf("%s: %s: %v", strategy, runs[i].name, err)
			}
		}
		byte_, fast := runs[0].inj, runs[1].inj
		if !reflect.DeepEqual(fast.Counts(), byte_.Counts()) {
			t.Fatalf("%s: applied-event counts diverge\nfast %v\nbyte %v",
				strategy, fast.Counts(), byte_.Counts())
		}
		if len(byte_.Counts()) == 0 {
			t.Fatalf("%s: schedule applied no events — invariance proved vacuously", strategy)
		}
		if !reflect.DeepEqual(fast.DeadNodes(), byte_.DeadNodes()) {
			t.Fatalf("%s: dead-node sets diverge: fast %v byte %v",
				strategy, fast.DeadNodes(), byte_.DeadNodes())
		}
		if fast.Escalations() != byte_.Escalations() {
			t.Fatalf("%s: escalation counts diverge: fast %d byte %d",
				strategy, fast.Escalations(), byte_.Escalations())
		}
	}
}
