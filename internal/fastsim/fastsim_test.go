package fastsim

import (
	"math/rand"
	"reflect"
	"testing"

	"mcio/internal/collio"
	"mcio/internal/core"
	"mcio/internal/machine"
	"mcio/internal/mpi"
	"mcio/internal/pfs"
	"mcio/internal/sim"
	"mcio/internal/twophase"
)

// testContext builds a small self-consistent pricing context.
func testContext(t *testing.T, ranks, perNode, targets int, avail int64) *collio.Context {
	t.Helper()
	topo, err := mpi.BlockTopology(ranks, (ranks+perNode-1)/perNode)
	if err != nil {
		t.Fatal(err)
	}
	mc := machine.Testbed640()
	mc.Nodes = topo.Nodes()
	av := make([]int64, mc.Nodes)
	for i := range av {
		av[i] = avail
	}
	return &collio.Context{
		Topo:    topo,
		Machine: mc,
		Avail:   av,
		FS:      pfs.DefaultConfig(targets),
		Params:  collio.DefaultParams(avail),
	}
}

// priceBoth prices the plan with both engines and fails the test on any
// divergence in the full CostResult.
func priceBoth(t *testing.T, ctx *collio.Context, s collio.Strategy, reqs []collio.RankRequest, opt sim.Options) {
	t.Helper()
	plan, err := collio.CachedPlan(s, ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := New(ctx, plan, reqs)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range []collio.Op{collio.Write, collio.Read} {
		want, err := collio.Cost(ctx, plan, reqs, op, opt)
		if err != nil {
			t.Fatal(err)
		}
		got, err := fs.Cost(op, opt)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s %s: engines diverge\nfast: %+v\nbyte: %+v",
				s.Name(), op, got, want)
		}
	}
}

// TestFastMatchesByteContiguous cross-checks both engines on a dense
// contiguous workload under both strategies and both overlap modes.
func TestFastMatchesByteContiguous(t *testing.T) {
	ctx := testContext(t, 12, 4, 4, 16<<10)
	reqs := make([]collio.RankRequest, 12)
	const chunk = 3 << 10
	for r := range reqs {
		reqs[r] = collio.RankRequest{Rank: r, Extents: []pfs.Extent{
			{Offset: int64(r) * chunk, Length: chunk},
		}}
	}
	for _, overlap := range []bool{false, true} {
		opt := sim.DefaultOptions()
		opt.Overlap = overlap
		opt.Trace = true
		priceBoth(t, ctx, twophase.New(), reqs, opt)
		priceBoth(t, ctx, core.New(), reqs, opt)
	}
}

// TestFastMatchesByteInterleaved cross-checks a strided pattern where
// every round carries uneven remainders and multi-target stripe maps.
func TestFastMatchesByteInterleaved(t *testing.T) {
	ctx := testContext(t, 16, 4, 8, 8<<10)
	reqs := make([]collio.RankRequest, 16)
	const rec = 700
	for r := range reqs {
		for b := 0; b < 6; b++ {
			reqs[r].Extents = append(reqs[r].Extents, pfs.Extent{
				Offset: int64(b*16+r) * rec,
				Length: rec,
			})
		}
		reqs[r].Rank = r
	}
	opt := sim.DefaultOptions()
	opt.Trace = true
	priceBoth(t, ctx, twophase.New(), reqs, opt)
	priceBoth(t, ctx, core.New(), reqs, opt)
}

// TestFastMatchesByteRandom is the property test: random small seeded
// topologies and workloads (sparse, overlapping, some ranks idle) must
// price identically under both engines, strategies and directions.
func TestFastMatchesByteRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		ranks := 2 + rng.Intn(20)
		perNode := 1 + rng.Intn(4)
		targets := 1 + rng.Intn(8)
		avail := int64(1+rng.Intn(32)) << 9
		ctx := testContext(t, ranks, perNode, targets, avail)
		reqs := make([]collio.RankRequest, ranks)
		for r := 0; r < ranks; r++ {
			reqs[r].Rank = r
			for i, n := 0, rng.Intn(5); i < n; i++ {
				reqs[r].Extents = append(reqs[r].Extents, pfs.Extent{
					Offset: int64(rng.Intn(24 << 10)),
					Length: int64(rng.Intn(3 << 10)),
				})
			}
		}
		opt := sim.DefaultOptions()
		opt.Overlap = trial%2 == 0
		opt.Trace = true
		priceBoth(t, ctx, twophase.New(), reqs, opt)
		priceBoth(t, ctx, core.New(), reqs, opt)
	}
}
