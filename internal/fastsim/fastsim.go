// Package fastsim is the analytical fast path for pricing collective
// I/O: it prices a plan from the aggregate round structure
// (collio.Shape) instead of replaying one message per rank, so a
// 10k-node / million-rank sweep costs seconds and O(aggregators +
// storage targets) memory where the byte path would materialize millions
// of messages per round.
//
// Both engines consume the same pricing core (internal/sim/pricing)
// through the same sim.Engine: the fast path feeds it per-route
// aggregates via RunAggRound, the byte path per-rank messages via
// RunRound. The engine reduces messages to per-node byte loads before
// pricing either way, so with the default integral MemCopyFactor the two
// paths produce bit-identical seconds, totals and traces — an invariant
// the cross-check tests (and the CI gate) enforce on every fig6/fig7/
// fig8 cell.
//
// Differences from collio.Cost are observational only: the fast path
// never sees individual ranks, so the per-rank mpi.* counters, the
// per-domain collio.shuffle_bytes counters and the ctx.Timeline
// buffer-occupancy gauges are not emitted. Engine-level metrics, spans
// and traces are identical.
package fastsim

import (
	"strconv"

	"mcio/internal/collio"
	"mcio/internal/obs"
	"mcio/internal/pfs"
	"mcio/internal/sim"
	"mcio/internal/stats"
)

// Sim prices one planned collective operation analytically. Building it
// derives the plan's round structure once; Cost can then price both
// directions (and arbitrary engine options) without touching the
// requests again.
type Sim struct {
	ctx   *collio.Context
	plan  *collio.Plan
	shape *collio.Shape
}

// New derives the round structure of plan for the given requests.
func New(ctx *collio.Context, plan *collio.Plan, reqs []collio.RankRequest) (*Sim, error) {
	shape, err := collio.BuildShape(ctx, plan, reqs)
	if err != nil {
		return nil, err
	}
	return &Sim{ctx: ctx, plan: plan, shape: shape}, nil
}

// Shape exposes the derived round structure (for inspection and tests).
func (s *Sim) Shape() *collio.Shape { return s.shape }

// Cost prices the operation. The result mirrors collio.Cost field for
// field: same engine, same per-round quantities, same accounting.
func (s *Sim) Cost(op collio.Op, opt sim.Options) (*collio.CostResult, error) {
	ctx, plan, sh := s.ctx, s.plan, s.shape
	st := sim.StorageParams{
		Targets:         ctx.FS.Targets,
		TargetBW:        ctx.FS.TargetBW,
		ReqOverhead:     ctx.FS.ReqOverhead,
		NoncontigFactor: ctx.FS.NoncontigFactor,
		ReadBWFactor:    ctx.FS.ReadBWFactor,
	}
	eng, err := sim.NewEngine(ctx.Machine, st, opt)
	if err != nil {
		return nil, err
	}
	pid := 0
	if ctx.Obs != nil {
		pid = ctx.Obs.Tracer().PID(plan.Strategy)
		eng.SetObserver(ctx.Obs, pid,
			obs.L("strategy", plan.Strategy), obs.L("op", op.String()))
	}

	placements := make([]sim.AggregatorPlacement, len(plan.Domains))
	for i, d := range plan.Domains {
		placements[i] = sim.AggregatorPlacement{
			Node:          d.AggNode,
			BufferBytes:   d.BufferBytes,
			PagedSeverity: d.PagedSeverity,
		}
	}
	eng.SetAggregators(placements)

	// Metadata scatter: one all-to-all exchange per group, priced in
	// closed form — the per-route product is dense for the single-group
	// baseline and would dominate everything else at scale.
	if len(sh.MetaExchanges) > 0 {
		eng.RunAggRound(sim.AggRound{Kind: sim.RoundMetadata, Exchanges: sh.MetaExchanges})
	}

	// Data rounds: per domain, the node-aggregated shuffle share plus the
	// storage accesses of the round's staggered buffer slice — the same
	// quantities the byte path reduces its per-rank messages to. The
	// AggRound backing arrays, the slice scratch and the stripe mapper
	// are all recycled across the (domain, round) loop, so steady-state
	// pricing allocates nothing per round.
	var round sim.AggRound
	var slice []pfs.Extent
	mapper := ctx.FS.NewMapper()
	for k := 0; k < sh.MaxRounds; k++ {
		round.Messages = round.Messages[:0]
		round.IOOps = round.IOOps[:0]
		for i := range sh.Domains {
			d := &sh.Domains[i]
			if k >= d.Rounds {
				continue
			}
			for ci := range d.Contribs {
				c := &d.Contribs[ci]
				bytes, msgs := c.RoundShare(k)
				if bytes == 0 {
					continue
				}
				m := sim.AggMessage{SrcNode: c.Node, DstNode: d.AggNode, Bytes: bytes, Count: msgs}
				if op == collio.Read {
					m.SrcNode, m.DstNode = m.DstNode, m.SrcNode
				}
				round.Messages = append(round.Messages, m)
			}
			slice = d.RoundSliceAppend(slice[:0], k)
			for _, acc := range mapper.Map(slice) {
				round.IOOps = append(round.IOOps, sim.IOOp{
					Target:     acc.Target,
					Node:       d.AggNode,
					Bytes:      acc.Bytes,
					Requests:   acc.Requests,
					Contiguous: acc.Contiguous,
					Write:      op == collio.Write,
				})
			}
		}
		eng.RunAggRound(round)
	}

	userBytes := plan.TotalBytes()
	if ctx.Obs != nil {
		span := ctx.Obs.Tracer().Begin(pid, sim.TIDTimeline,
			plan.Strategy+" "+op.String(), 0,
			obs.A("groups", strconv.Itoa(plan.Groups)),
			obs.A("domains", strconv.Itoa(len(plan.Domains))),
			obs.A("rounds", strconv.Itoa(sh.MaxRounds)),
			obs.A("user_bytes", strconv.FormatInt(userBytes, 10)))
		span.End(eng.Elapsed())
	}
	res := &collio.CostResult{
		Strategy:  plan.Strategy,
		Op:        op,
		UserBytes: userBytes,
		Seconds:   eng.Elapsed(),
		Bandwidth: eng.Bandwidth(userBytes),
		Totals:    eng.Totals(),
		Domains:   len(plan.Domains),
		Groups:    plan.Groups,
		MaxRounds: sh.MaxRounds,
	}
	res.Aggregators = len(plan.Aggregators())
	buffers := make([]float64, 0, len(plan.Domains))
	for _, d := range plan.Domains {
		buffers = append(buffers, float64(d.BufferBytes))
		if d.PagedSeverity > 0 {
			res.PagedAggregators++
		}
	}
	res.BufferSummary = stats.Summarize(buffers)
	if opt.Trace {
		res.Trace = eng.Trace()
	}
	return res, nil
}

// Cost builds the shape and prices one operation in one call — the
// drop-in analytical replacement for collio.Cost.
func Cost(ctx *collio.Context, plan *collio.Plan, reqs []collio.RankRequest, op collio.Op, opt sim.Options) (*collio.CostResult, error) {
	s, err := New(ctx, plan, reqs)
	if err != nil {
		return nil, err
	}
	return s.Cost(op, opt)
}
