package bench

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestSetParallelism(t *testing.T) {
	defer SetParallelism(0)
	SetParallelism(3)
	if got := Parallelism(); got != 3 {
		t.Fatalf("Parallelism() = %d, want 3", got)
	}
	// Non-positive resets to the default worker budget.
	SetParallelism(0)
	if got, want := Parallelism(), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("default Parallelism() = %d, want GOMAXPROCS %d", got, want)
	}
	SetParallelism(-5)
	if got, want := Parallelism(), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("Parallelism() after -5 = %d, want GOMAXPROCS %d", got, want)
	}
}

func TestForEachVisitsEveryIndexOnce(t *testing.T) {
	defer SetParallelism(0)
	for _, workers := range []int{1, 2, 4, 16} {
		SetParallelism(workers)
		const n = 100
		var hits [n]int32
		if err := ForEach(n, func(i int) error {
			atomic.AddInt32(&hits[i], 1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range hits {
			if hits[i] != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, hits[i])
			}
		}
	}
}

// The parallel path must report the same error the serial path would:
// the lowest-indexed one.
func TestForEachReturnsLowestIndexedError(t *testing.T) {
	defer SetParallelism(0)
	for _, workers := range []int{1, 4} {
		SetParallelism(workers)
		err := ForEach(10, func(i int) error {
			if i == 3 || i == 7 {
				return fmt.Errorf("item %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "item 3" {
			t.Fatalf("workers=%d: err = %v, want item 3", workers, err)
		}
	}
}

// With a budget of one, ForEach is the exact legacy loop: sequential and
// aborting at the first error.
func TestForEachSerialStopsAtFirstError(t *testing.T) {
	defer SetParallelism(0)
	SetParallelism(1)
	sentinel := errors.New("boom")
	calls := 0
	err := ForEach(10, func(i int) error {
		calls++
		if i == 2 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if calls != 3 {
		t.Fatalf("serial path made %d calls after an error at index 2, want 3", calls)
	}
}

// Nested fan-out (experiments spawning sweeps spawning cells) shares one
// global token budget, so it must complete rather than deadlock.
func TestForEachNestedDoesNotDeadlock(t *testing.T) {
	defer SetParallelism(0)
	SetParallelism(4)
	var total int64
	err := ForEach(8, func(i int) error {
		return ForEach(8, func(j int) error {
			atomic.AddInt64(&total, 1)
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if total != 64 {
		t.Fatalf("nested ForEach ran %d items, want 64", total)
	}
}

// The semaphore holds n-1 tokens and the caller is the n-th worker, so
// at most Parallelism() items may ever run concurrently.
func TestForEachBoundsConcurrency(t *testing.T) {
	defer SetParallelism(0)
	SetParallelism(3)
	var cur, peak int64
	err := ForEach(64, func(i int) error {
		c := atomic.AddInt64(&cur, 1)
		for {
			p := atomic.LoadInt64(&peak)
			if c <= p || atomic.CompareAndSwapInt64(&peak, p, c) {
				break
			}
		}
		atomic.AddInt64(&cur, -1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if peak > 3 {
		t.Fatalf("observed %d concurrent items with a budget of 3", peak)
	}
}

func TestForEachEmptyAndSingle(t *testing.T) {
	defer SetParallelism(0)
	SetParallelism(4)
	if err := ForEach(0, func(int) error { t.Fatal("called"); return nil }); err != nil {
		t.Fatal(err)
	}
	calls := 0
	if err := ForEach(1, func(int) error { calls++; return nil }); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("calls = %d", calls)
	}
}
