package bench

import (
	"fmt"
	"strings"
)

// Render formats a series as the aligned text table the figures plot:
// one row per memory size, write and read bandwidth for both strategies,
// and the memory-conscious improvement.
func Render(s *Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s (scale 1/%d, seed %d)\n",
		s.Name, s.Workload, s.Config.Scale, s.Config.Seed)
	fmt.Fprintf(&b, "%-8s %14s %14s %8s %14s %14s %8s\n",
		"mem", "2ph write", "mc write", "Δwrite", "2ph read", "mc read", "Δread")
	for _, memMB := range s.Config.MemMB {
		bw := func(strategy, op string) float64 {
			if p := s.find(memMB, strategy, op); p != nil {
				return p.MBps
			}
			return 0
		}
		imp := func(op string) string {
			base, mc := bw("two-phase", op), bw("memory-conscious", op)
			if base == 0 {
				return "-"
			}
			return fmt.Sprintf("%+.1f%%", (mc/base-1)*100)
		}
		fmt.Fprintf(&b, "%-8s %11.1f MB/s %11.1f MB/s %8s %11.1f MB/s %11.1f MB/s %8s\n",
			fmt.Sprintf("%d MB", memMB),
			bw("two-phase", "write"), bw("memory-conscious", "write"), imp("write"),
			bw("two-phase", "read"), bw("memory-conscious", "read"), imp("read"))
	}
	fmt.Fprintf(&b, "average improvement: write %+.1f%%, read %+.1f%%\n",
		s.Improvement("write")*100, s.Improvement("read")*100)
	return b.String()
}

// RenderDetails adds the aggregator-side metrics per point: aggregator
// count, paged aggregators, rounds, and buffer-consumption variance — the
// paper's secondary claims (reduced memory consumption and variance).
func RenderDetails(s *Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — aggregator detail\n", s.Name)
	fmt.Fprintf(&b, "%-8s %-18s %6s %6s %7s %7s %8s %8s\n",
		"mem", "strategy", "groups", "aggs", "paged", "rounds", "bufMean", "bufCV")
	for _, memMB := range s.Config.MemMB {
		for _, strategy := range []string{"two-phase", "memory-conscious"} {
			p := s.find(memMB, strategy, "write")
			if p == nil {
				continue
			}
			r := p.Result
			fmt.Fprintf(&b, "%-8s %-18s %6d %6d %7d %7d %7.1fM %8.3f\n",
				fmt.Sprintf("%d MB", memMB), strategy,
				r.Groups, r.Aggregators, r.PagedAggregators, r.MaxRounds,
				r.BufferSummary.Mean/1e6, r.BufferSummary.CV())
		}
	}
	return b.String()
}
